// Command tables regenerates the paper's two evaluation tables with
// measured columns appended:
//
//   - Table 1 (Section 3.3): the expected convergence times of the
//     seven fundamental probabilistic processes, with measured means,
//     measured/analytic ratios and fitted scaling exponents;
//   - Table 2 (Sections 4–5): the nine protocols with their state
//     counts (verified programmatically) and measured convergence-time
//     sweeps, plus the Section 7 Faster-vs-Fast comparison.
//
// A fourth table reports the sparsity sweep: convergence of
// Simple-Global-Line and Cycle-Cover under restricted interaction
// topologies of increasing expected degree (-topology picks the
// random-graph model).
//
// Usage: tables [-trials 5] [-seed 1] [-quick] [-engine auto] [-topology gnp]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/processes"
	"repro/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trials = flag.Int("trials", 5, "trials per (process, n) cell")
		seed   = flag.Uint64("seed", 1, "base RNG seed")
		quick  = flag.Bool("quick", false, "smaller sweeps for a fast pass")
		engine = flag.String("engine", "auto", "execution path: auto, baseline, fast, sparse, or batch")
		topo   = flag.String("topology", "gnp", "topology model for the sparsity table: gnp or rgg")
	)
	flag.Parse()

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	if err := table1(*trials, *seed, *quick, eng); err != nil {
		return err
	}
	fmt.Println()
	if err := table2(*trials, *seed, *quick, eng); err != nil {
		return err
	}
	fmt.Println()
	if err := fasterVsFast(*trials, *seed, *quick, eng); err != nil {
		return err
	}
	fmt.Println()
	return sparsityTable(*trials, *seed, *quick, eng, *topo)
}

func table1(trials int, seed uint64, quick bool, engine core.Engine) error {
	sizes := experiments.Table1Sizes()
	if quick {
		sizes = sizes[:4]
	}
	fmt.Println("Table 1 — fundamental probabilistic processes (expected time to convergence)")
	fmt.Printf("%-24s %-14s %-10s %-14s %-10s\n", "Process", "Paper", "fit α", "ratio spread", "mean@max-n")
	for _, proc := range processes.All() {
		series, err := experiments.MeasureProcess(proc, sizes, trials, seed, engine)
		if err != nil {
			return err
		}
		alpha, err := series.FitExponent()
		if err != nil {
			return err
		}
		spread, err := series.RatioSpread()
		if err != nil {
			return err
		}
		last := series.Points[len(series.Points)-1]
		fmt.Printf("%-24s %-14s %-10.2f %-14.2f %-10.0f\n",
			series.Name, proc.Theta, alpha, spread, last.Mean)
	}
	return nil
}

func table2(trials int, seed uint64, quick bool, engine core.Engine) error {
	fmt.Println("Table 2 — protocols (states, measured expected convergence time)")
	fmt.Printf("%-22s %-7s %-18s %-10s %s\n", "Protocol", "states", "Paper time", "fit α", "mean steps per n")
	rows := []struct {
		key       string
		paperTime string
	}{
		{"simple-global-line", "Ω(n⁴), O(n⁵)"},
		{"fast-global-line", "O(n³)"},
		{"cycle-cover", "Θ(n²) (opt)"},
		{"global-star", "Θ(n² log n) (opt)"},
		{"global-ring", "(Ω(n²) LB)"},
		{"2rc", "(Ω(n log n) LB)"},
		{"3rc", "(Ω(n log n) LB)"},
		{"3-cliques", "(Ω(n log n) LB)"},
	}
	for _, row := range rows {
		c, err := protocols.Lookup(row.key)
		if err != nil {
			return err
		}
		sizes := experiments.Table2Sizes(row.key)
		if quick && len(sizes) > 3 {
			sizes = sizes[:3]
		}
		series, err := experiments.MeasureProtocol(c, sizes, trials, seed, engine)
		if err != nil {
			return err
		}
		alpha, err := series.FitExponent()
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-7d %-18s %-10.2f ", row.key, c.Proto.Size(), row.paperTime, alpha)
		for _, p := range series.Points {
			fmt.Printf("n=%d:%.0f ", p.N, p.Mean)
		}
		fmt.Println()
	}
	// Graph-Replication needs its input-graph initial configuration.
	sizes := experiments.Table2Sizes("graph-replication")
	if quick {
		sizes = sizes[:2]
	}
	series, err := experiments.MeasureReplication(sizes, trials, seed, engine)
	if err != nil {
		return err
	}
	alpha, err := series.FitExponent()
	if err != nil {
		return err
	}
	c := protocols.GraphReplication()
	fmt.Printf("%-22s %-7d %-18s %-10.2f ", "graph-replication", c.Proto.Size(), "Θ(n⁴ log n)", alpha)
	for _, p := range series.Points {
		fmt.Printf("n=%d:%.0f ", p.N, p.Mean)
	}
	fmt.Println()
	return nil
}

func fasterVsFast(trials int, seed uint64, quick bool, engine core.Engine) error {
	sizes := []int{8, 16, 24, 32, 48, 64}
	if quick {
		sizes = sizes[:4]
	}
	cmp, err := experiments.CompareLineProtocols(sizes, trials, seed, engine)
	if err != nil {
		return err
	}
	fmt.Println("Section 7 — Faster-Global-Line vs Fast-Global-Line (mean convergence steps)")
	fmt.Printf("%-8s %-14s %-14s %s\n", "n", "Fast (9 st.)", "Faster (6 st.)", "speedup")
	for i, n := range cmp.Sizes {
		fmt.Printf("%-8d %-14.0f %-14.0f %.2fx\n", n, cmp.Fast[i], cmp.Faster[i], cmp.Fast[i]/cmp.Faster[i])
	}
	return nil
}

// sparsityTable reports the sparsity sweep: convergence of
// Simple-Global-Line and Cycle-Cover under restricted interaction
// topologies of increasing expected degree. The last row (degree
// ≥ n−1) is the complete-graph control.
func sparsityTable(trials int, seed uint64, quick bool, engine core.Engine, model string) error {
	n := 24
	if quick {
		n = 12
	}
	degrees := []float64{2, 4, 8, float64(n - 1)}
	points, err := experiments.SparsitySweep(n, degrees, model, trials, seed, engine)
	if err != nil {
		return err
	}
	fmt.Printf("Sparsity — convergence under restricted interaction graphs (model %s, n=%d)\n", model, n)
	fmt.Printf("%-22s %-8s %-26s %-16s %s\n", "Protocol", "degree", "topology", "mean steps", "converged")
	for _, p := range points {
		topo := p.Topology
		if topo == "" {
			topo = "complete"
		}
		fmt.Printf("%-22s %-8g %-26s %-16.0f %d/%d\n",
			p.Protocol, p.Degree, topo, p.Mean, p.Converged, p.Trials)
	}
	return nil
}
