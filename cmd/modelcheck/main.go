// Command modelcheck exhaustively verifies a protocol's stabilization
// claim on a small population: it explores every reachable
// configuration (all fair-scheduler interleavings and probabilistic
// branches) and reports whether every fair execution stabilizes to the
// protocol's target network.
//
// Usage:
//
//	modelcheck -protocol global-star -n 5
//	modelcheck -protocol simple-global-line -n 4 -max 5000000
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name       = flag.String("protocol", "global-star", "protocol name (see netsim -list)")
		n          = flag.Int("n", 4, "population size (keep small: the space is exponential)")
		maxConfigs = flag.Int("max", 2_000_000, "abort beyond this many reachable configurations")
	)
	flag.Parse()

	c, err := protocols.Lookup(*name)
	if err != nil {
		return err
	}
	target, err := targetPredicate(*name)
	if err != nil {
		return err
	}

	fmt.Printf("exploring %s on n=%d …\n", c.Proto.Name(), *n)
	rep, err := check.Verify(c.Proto, *n, target, check.Options{MaxConfigs: *maxConfigs})
	if err != nil {
		return err
	}
	fmt.Printf("reachable configurations: %d\n", rep.Reachable)
	fmt.Printf("output-stable:            %d\n", rep.OutputStable)
	fmt.Printf("target-stable:            %d\n", rep.TargetStable)
	if rep.TargetStable == 0 {
		return errors.New("no reachable target-stable configuration: the protocol cannot construct its target at this size")
	}
	if !rep.AllReachTarget {
		return fmt.Errorf("VERIFICATION FAILED: configuration %s cannot reach the target", rep.Counterexample)
	}
	fmt.Println("verified: every fair execution stabilizes to the target ✓")

	accepted, err := check.DetectorSound(c.Proto, *n, c.Detector, check.Options{MaxConfigs: *maxConfigs})
	if err != nil {
		return fmt.Errorf("detector soundness: %w", err)
	}
	fmt.Printf("detector sound: accepts %d configurations, all output-stable ✓\n", accepted)
	return nil
}

// targetPredicate maps registry names to the target network predicate
// their theorems claim.
func targetPredicate(name string) (func(cfg *core.Config) bool, error) {
	active := func(pred func(*graph.Graph) bool) func(cfg *core.Config) bool {
		return func(cfg *core.Config) bool { return pred(protocols.ActiveGraph(cfg)) }
	}
	switch name {
	case "simple-global-line", "fast-global-line", "faster-global-line":
		return active(func(g *graph.Graph) bool { return g.IsSpanningLine() }), nil
	case "spanning-net":
		return active(func(g *graph.Graph) bool { return g.IsSpanning() }), nil
	case "cycle-cover":
		return active(func(g *graph.Graph) bool { return g.IsCycleCoverWithWaste(2) }), nil
	case "global-star":
		return active(func(g *graph.Graph) bool { return g.IsSpanningStar() }), nil
	case "global-ring", "2rc":
		return active(func(g *graph.Graph) bool { return g.IsSpanningRing() }), nil
	case "3rc":
		return active(func(g *graph.Graph) bool { return g.IsNearKRegularConnected(3) }), nil
	case "3-cliques":
		return active(func(g *graph.Graph) bool { return g.IsCliquePartition(3) }), nil
	default:
		return nil, fmt.Errorf("no target predicate registered for %q", name)
	}
}
