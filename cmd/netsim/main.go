// Command netsim runs any registered network constructor on a
// population and reports convergence statistics (and optionally the
// final network as DOT).
//
// Usage:
//
//	netsim -protocol global-star -n 50 -trials 5 -seed 1 [-dot]
//	netsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("protocol", "global-star", "protocol name (see -list)")
		n      = flag.Int("n", 50, "population size")
		trials = flag.Int("trials", 3, "independent runs")
		seed   = flag.Uint64("seed", 1, "base RNG seed")
		dot    = flag.Bool("dot", false, "print the final network as Graphviz DOT")
		list   = flag.Bool("list", false, "list registered protocols and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range protocols.Names() {
			c, err := protocols.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %2d states  →  %s\n", name, c.Proto.Size(), c.Target)
		}
		return nil
	}

	c, err := protocols.Lookup(*name)
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s (%d states) on n=%d, %d trial(s)\n",
		c.Proto.Name(), c.Proto.Size(), *n, *trials)

	times := make([]float64, 0, *trials)
	var last core.Result
	for t := 0; t < *trials; t++ {
		res, err := core.Run(c.Proto, *n, core.Options{Seed: *seed + uint64(t), Detector: c.Detector})
		if err != nil {
			return err
		}
		if !res.Converged {
			fmt.Printf("  trial %d: DID NOT CONVERGE within %d steps\n", t, res.Steps)
			continue
		}
		fmt.Printf("  trial %d: converged at step %d (%d effective, %d edge changes)\n",
			t, res.ConvergenceTime, res.EffectiveSteps, res.EdgeChanges)
		times = append(times, float64(res.ConvergenceTime))
		last = res
	}
	if len(times) > 0 {
		s := stats.Summarize(times)
		fmt.Printf("mean convergence time: %.0f ± %.0f steps (min %.0f, max %.0f)\n",
			s.Mean, s.StdErr(), s.Min, s.Max)
	}
	if *dot && last.Final != nil {
		g := protocols.ActiveGraph(last.Final)
		labels := make([]string, last.Final.N())
		for u := 0; u < last.Final.N(); u++ {
			labels[u] = c.Proto.StateName(last.Final.Node(u))
		}
		fmt.Println(g.DOT(c.Proto.Name(), labels))
	}
	return nil
}
