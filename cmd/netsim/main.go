// Command netsim runs any registered network constructor on a
// population and reports convergence statistics (and optionally the
// final network as DOT). Trials execute concurrently on the campaign
// worker pool; the reported statistics are identical for any -workers
// value.
//
// Usage:
//
//	netsim -protocol global-star -n 50 -trials 5 -seed 1 [-workers 4] [-engine fast] [-dot]
//	netsim -protocol simple-global-line -n 32 -faults "crash@500x2,edge@0.001"
//	netsim -protocol cycle-cover -n 32 -scheduler weighted
//	netsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("protocol", "global-star", "protocol name (see -list)")
		n        = flag.Int("n", 50, "population size")
		trials   = flag.Int("trials", 3, "independent runs")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		workers  = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		engine   = flag.String("engine", "auto", "execution path: auto, baseline, fast, or sparse")
		sched    = flag.String("scheduler", "uniform", "scheduler: uniform, round-robin, permutation, weighted, or biased")
		faults   = flag.String("faults", "", `fault plan, e.g. "crash@500x2,edge@0.001,reset@1000"`)
		detector = flag.String("detector", "", "stability predicate: target (default), quiescence, or edge-quiescence; fault runs default to quiescence")
		dot      = flag.Bool("dot", false, "print the final network as Graphviz DOT")
		freshAlc = flag.Bool("fresh-alloc", false, "disable per-worker run workspaces (every trial allocates fresh state; results are identical, only slower)")
		list     = flag.Bool("list", false, "list registered protocols and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range protocols.Names() {
			c, err := protocols.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %2d states  →  %s\n", name, c.Proto.Size(), c.Target)
		}
		return nil
	}

	c, err := protocols.Lookup(*name)
	if err != nil {
		return err
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	factory, err := campaign.SchedulerFactory(*sched)
	if err != nil {
		return err
	}
	plan, err := scenario.ParsePlan(*faults)
	if err != nil {
		return err
	}
	det := c.Detector
	detOverride, haveDet, err := campaign.ParseDetector(*detector)
	switch {
	case err != nil:
		return err
	case haveDet:
		det = detOverride
	case *detector == "" && plan != nil:
		// Target detectors assume the fault-free goal is reachable;
		// under faults quiescence is the honest default stop rule. An
		// explicit -detector target keeps the registry detector.
		det = core.QuiescenceDetector()
		fmt.Println("faults present: using the quiescence detector (override with -detector)")
	}
	fmt.Printf("protocol %s (%d states) on n=%d, %d trial(s), %s engine, %s scheduler\n",
		c.Proto.Name(), c.Proto.Size(), *n, *trials, eng, *sched)
	if plan != nil {
		fmt.Printf("fault plan: %s\n", plan)
	}

	var lastConvergedSeed uint64
	haveConverged := false
	out, err := campaign.Execute(context.Background(), []campaign.Point{{
		Protocol:     c.Proto.Name(),
		N:            *n,
		Scheduler:    *sched,
		Trials:       *trials,
		BaseSeed:     *seed,
		Proto:        c.Proto,
		Detector:     det,
		Engine:       eng,
		NewScheduler: factory,
		Faults:       plan,
		Metric:       campaign.MetricConvergenceTime,
	}}, campaign.Options{
		Workers:    *workers,
		FreshAlloc: *freshAlc,
		OnRun: func(rec campaign.RunRecord) {
			if !rec.Converged {
				fmt.Printf("  trial %d: DID NOT CONVERGE within %d steps\n", rec.Trial, rec.Steps)
				return
			}
			faultNote := ""
			if applied := rec.FaultCrashes + rec.FaultEdgeDeletions + rec.FaultResets; applied > 0 {
				faultNote = fmt.Sprintf(", %d faults", applied)
			}
			fmt.Printf("  trial %d: converged at step %d (%d effective, %d edge changes%s)\n",
				rec.Trial, rec.ConvergenceTime, rec.EffectiveSteps, rec.EdgeChanges, faultNote)
			lastConvergedSeed = rec.Seed
			haveConverged = true
		},
	})
	if err != nil {
		return err
	}
	agg := out.Aggregates[0]
	if agg.Converged > 0 {
		fmt.Printf("mean convergence time: %.0f ± %.0f steps (min %.0f, max %.0f)\n",
			agg.Mean, agg.StdErr, agg.Min, agg.Max)
	}
	if *dot && haveConverged {
		// Replay the last converged trial sequentially — runs are
		// deterministic in (protocol, n, seed, scheduler, faults,
		// engine), so this recovers the exact final configuration the
		// campaign measured.
		opts := core.Options{Seed: lastConvergedSeed, Engine: eng, Detector: det}
		proto := c.Proto
		if factory != nil {
			opts.Scheduler = factory()
		}
		if plan != nil {
			prepared, err := plan.Prepare(c.Proto)
			if err != nil {
				return err
			}
			proto = prepared.Proto
			opts.Injector = prepared.NewInjection(lastConvergedSeed)
		}
		res, err := core.Run(proto, *n, opts)
		if err != nil {
			return err
		}
		g := protocols.ActiveGraph(res.Final)
		labels := make([]string, res.Final.N())
		for u := 0; u < res.Final.N(); u++ {
			labels[u] = proto.StateName(res.Final.Node(u))
		}
		fmt.Println(g.DOT(proto.Name(), labels))
	}
	return nil
}
