// Command netsim runs any registered network constructor on a
// population and reports convergence statistics (and optionally the
// final network as DOT). Trials execute concurrently on the campaign
// worker pool; the reported statistics are identical for any -workers
// value.
//
// Usage:
//
//	netsim -protocol global-star -n 50 -trials 5 -seed 1 [-workers 4] [-engine fast] [-dot]
//	netsim -protocol simple-global-line -n 32 -faults "crash@500x2,edge@0.001"
//	netsim -protocol simple-global-line -n 32 -trace run.ndjson
//	netsim -protocol cycle-cover -n 32 -scheduler weighted
//	netsim -protocol cycle-cover -n 64 -topology gnp@0.05
//	netsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("protocol", "global-star", "protocol name (see -list)")
		n        = flag.Int("n", 50, "population size")
		trials   = flag.Int("trials", 3, "independent runs")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		workers  = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		engine   = flag.String("engine", "auto", "execution path: auto, baseline, fast, sparse, or batch")
		sched    = flag.String("scheduler", "uniform", "scheduler: uniform, round-robin, permutation, weighted, or biased")
		faults   = flag.String("faults", "", `fault plan, e.g. "crash@500x2,edge@0.001,reset@1000"`)
		topology = flag.String("topology", "", `interaction topology: complete (default), "gnp@0.05", "rgg@0.1", or "cm@4"`)
		detector = flag.String("detector", "", "stability predicate: target (default), quiescence, or edge-quiescence; fault and restricted-topology runs default to quiescence")
		dot      = flag.Bool("dot", false, "print the final network as Graphviz DOT")
		tracePth = flag.String("trace", "", "write an NDJSON event trace of a replayed trial to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		freshAlc = flag.Bool("fresh-alloc", false, "disable per-worker run workspaces (every trial allocates fresh state; results are identical, only slower)")
		list     = flag.Bool("list", false, "list registered protocols and exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			if err := writeHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
			}
		}()
	}

	if *list {
		for _, name := range protocols.Names() {
			c, err := protocols.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %2d states  →  %s\n", name, c.Proto.Size(), c.Target)
		}
		return nil
	}

	c, err := protocols.Lookup(*name)
	if err != nil {
		return err
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	factory, err := campaign.SchedulerFactory(*sched)
	if err != nil {
		return err
	}
	plan, err := scenario.ParsePlan(*faults)
	if err != nil {
		return err
	}
	topoSpec, err := core.ParseTopologySpec(*topology)
	if err != nil {
		return err
	}
	if err := topoSpec.Validate(*n); err != nil {
		return err
	}
	if topoSpec != nil && topoSpec.Kind == core.TopoComplete {
		topoSpec = nil // an explicit "complete" is the default path
	}
	det := c.Detector
	detOverride, haveDet, err := campaign.ParseDetector(*detector)
	switch {
	case err != nil:
		return err
	case haveDet:
		det = detOverride
	case *detector == "" && (plan != nil || topoSpec != nil):
		// Target detectors assume the fault-free complete-graph goal is
		// reachable; under faults or a restricted topology quiescence is
		// the honest default stop rule. An explicit -detector target
		// keeps the registry detector.
		det = core.QuiescenceDetector()
		fmt.Println("faults or topology present: using the quiescence detector (override with -detector)")
	}
	fmt.Printf("protocol %s (%d states) on n=%d, %d trial(s), %s engine, %s scheduler\n",
		c.Proto.Name(), c.Proto.Size(), *n, *trials, eng, *sched)
	if plan != nil {
		fmt.Printf("fault plan: %s\n", plan)
	}
	if topoSpec != nil {
		fmt.Printf("topology: %s (one realization per trial)\n", topoSpec)
	}

	// SIGINT/SIGTERM cancel in-flight trials instead of killing the
	// process mid-write; the non-zero exit reports the cut.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var lastConvergedSeed, firstSeed uint64
	var lastConvergedSteps, firstSeedSteps int64
	haveConverged := false
	out, err := campaign.Execute(ctx, []campaign.Point{{
		Protocol:     c.Proto.Name(),
		N:            *n,
		Scheduler:    *sched,
		Trials:       *trials,
		BaseSeed:     *seed,
		Proto:        c.Proto,
		Detector:     det,
		Engine:       eng,
		NewScheduler: factory,
		Faults:       plan,
		Topology:     topoSpec,
		Metric:       campaign.MetricConvergenceTime,
	}}, campaign.Options{
		Workers:    *workers,
		FreshAlloc: *freshAlc,
		OnRun: func(rec campaign.RunRecord) {
			if rec.Trial == 0 {
				firstSeed = rec.Seed
				firstSeedSteps = rec.Steps
			}
			if !rec.Converged {
				fmt.Printf("  trial %d: DID NOT CONVERGE within %d steps\n", rec.Trial, rec.Steps)
				return
			}
			faultNote := ""
			if applied := rec.FaultCrashes + rec.FaultEdgeDeletions + rec.FaultResets; applied > 0 {
				faultNote = fmt.Sprintf(", %d faults", applied)
			}
			fmt.Printf("  trial %d: converged at step %d (%d effective, %d edge changes%s)\n",
				rec.Trial, rec.ConvergenceTime, rec.EffectiveSteps, rec.EdgeChanges, faultNote)
			lastConvergedSeed = rec.Seed
			lastConvergedSteps = rec.Steps
			haveConverged = true
		},
	})
	if err != nil {
		return err
	}
	agg := out.Aggregates[0]
	if agg.Converged > 0 {
		fmt.Printf("mean convergence time: %.0f ± %.0f steps (min %.0f, max %.0f)\n",
			agg.Mean, agg.StdErr, agg.Min, agg.Max)
	}
	if *tracePth != "" || (*dot && haveConverged) {
		// Replay one trial sequentially — runs are deterministic in
		// (protocol, n, seed, scheduler, faults, engine), so this
		// recovers the exact run the campaign measured: the last
		// converged trial when there is one, the first trial otherwise
		// (a trace of a non-converging run is still worth inspecting).
		// One exception, disclosed below: a batch-engine run that took
		// the pure bucket-plan path cannot be replayed with a sink
		// attached — the sink reroutes the replay to exact stepping
		// (bit-identical to -engine sparse), which is equal in law but
		// not bit-identical to the measured batched trial.
		replaySeed, measuredSteps := firstSeed, firstSeedSteps
		if haveConverged {
			replaySeed, measuredSteps = lastConvergedSeed, lastConvergedSteps
		}
		opts := core.Options{Seed: replaySeed, Engine: eng, Detector: det}
		if topoSpec != nil {
			// The campaign realized this trial's topology from its run
			// seed; the same derivation reproduces the identical graph.
			topo, err := topoSpec.Realize(*n, replaySeed)
			if err != nil {
				return err
			}
			opts.Topology = topo
		}
		proto := c.Proto
		if factory != nil {
			opts.Scheduler = factory()
		}
		if plan != nil {
			prepared, err := plan.Prepare(c.Proto)
			if err != nil {
				return err
			}
			proto = prepared.Proto
			opts.Injector = prepared.NewInjection(replaySeed)
		}
		var traceFile *os.File
		if *tracePth != "" {
			f, err := os.Create(*tracePth)
			if err != nil {
				return err
			}
			traceFile = f
			opts.Events = trace.NewNDJSON(f)
		}
		res, err := core.Run(proto, *n, opts)
		if err != nil {
			return err
		}
		if traceFile != nil {
			nd := opts.Events.(*trace.NDJSON)
			if err := nd.Flush(); err != nil {
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Printf("event trace of seed-%d replay written to %s\n", replaySeed, *tracePth)
		}
		if res.Steps != measuredSteps {
			fmt.Printf("note: the measured trial ran the %s engine's batched path; the replay exact-stepped (bit-identical to -engine sparse, equal in law to the measured trial)\n", res.Engine)
		}
		if *dot && haveConverged {
			g := protocols.ActiveGraph(res.Final)
			labels := make([]string, res.Final.N())
			for u := 0; u < res.Final.N(); u++ {
				labels[u] = proto.StateName(res.Final.Node(u))
			}
			fmt.Println(g.DOT(proto.Name(), labels))
		}
	}
	return nil
}

// writeHeapProfile snapshots the live heap after a final GC, the shape
// pprof's allocation views expect.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
