// Command campaign runs a declarative measurement campaign — a grid of
// (protocol, population size, scheduler) points swept over a seed range
// — on a worker pool and writes aggregated series (and optionally raw
// runs) as JSON or CSV.
//
// The grid comes either from a JSON spec file (see internal/campaign's
// Spec, documented in EXPERIMENTS.md) or from flags describing a
// single-item spec:
//
//	campaign -spec sweep.json -workers 8 -format csv -out results.csv
//	campaign -name cycle-cover -sizes 32,64,128 -trials 20 -seed 1
//	campaign -name One-Way-Epidemic -kind process -sizes 64,128
//	campaign -name simple-global-line -sizes 24 -faults "crash@576,crash@1152" -metric largest-component
//	campaign -name cycle-cover -sizes 256 -topology gnp@0.05 -detector quiescence
//	campaign -name global-star -sizes 256 -trials 200 -progress 2s -progress-out progress.ndjson
//	campaign -spec sweep.json -checkpoint sweep.ckpt -resume
//	campaign -list
//
// Aggregates are bit-identical for a fixed spec regardless of -workers
// — and, with -checkpoint/-resume, regardless of how many times the
// process was interrupted along the way. SIGINT/SIGTERM cancel the
// sweep cleanly: partial aggregates are written, the checkpoint gets a
// final flush, and the exit code is non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath = flag.String("spec", "", "JSON campaign spec file (\"-\" for stdin); overrides the single-item flags")
		name     = flag.String("name", "", "protocol or process name for a single-item campaign (see -list)")
		kind     = flag.String("kind", "protocol", "item kind: protocol, process, or replication")
		sizes    = flag.String("sizes", "16,32,64", "comma-separated population sizes")
		trials   = flag.Int("trials", 10, "trials per grid point")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		sched    = flag.String("schedulers", "uniform", "comma-separated scheduler names")
		metric   = flag.String("metric", "", "measured quantity (default: convergence-time for protocols, steps for processes)")
		engine   = flag.String("engine", "auto", "execution path: auto, baseline, fast, sparse, or batch")
		detector = flag.String("detector", "", "stability predicate: target (default), quiescence, or edge-quiescence; fault and restricted-topology runs default to quiescence")
		faults   = flag.String("faults", "", `fault plan for every item, e.g. "crash@500x2,edge@0.001" (spec files carry their own "faults" field)`)
		topology = flag.String("topology", "", `interaction topology for every item, e.g. "gnp@0.05", "rgg@0.1", "cm@4" (spec files carry their own "topology" field)`)
		inclUnc  = flag.Bool("include-unconverged", false, "fold budget-exhausted runs' metric values into the aggregates (survivability sweeps)")
		maxSteps = flag.Int64("max-steps", 0, "per-run step budget (0 = per-n default)")
		workers  = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "per-run wall-clock cap (0 = none)")
		freshAlc = flag.Bool("fresh-alloc", false, "disable per-worker run workspaces (every trial allocates fresh state; results are identical, only slower)")
		shardTr  = flag.Int("shard-trials", 0, "trials per checkpoint shard (0 = 32); affects the reduction order, so resumed runs must use the value the checkpoint records")
		ckPath   = flag.String("checkpoint", "", "persist completed work to this file (atomic NDJSON) so an interrupted campaign can continue with -resume")
		ckEvery  = flag.Duration("checkpoint-every", 0, "checkpoint persistence interval (0 = 30s)")
		resume   = flag.Bool("resume", false, "skip the shards already recorded in -checkpoint (a missing file is a fresh start); the resumed campaign's output is bit-identical to an uninterrupted run's")
		retries  = flag.Int("retries", 0, "re-run a transiently failed trial (per-run timeout, first-time panic) up to this many extra times with exponential backoff")
		retryBO  = flag.Duration("retry-backoff", 0, "delay before the first retry, doubling per retry (0 = 100ms)")
		out      = flag.String("out", "", "aggregate output path (default stdout)")
		runsOut  = flag.String("runs-out", "", "also write raw per-run records to this path")
		format   = flag.String("format", "json", "output format: json or csv")
		progress = flag.Duration("progress", 0, "stream progress records (done/total, trials/s, utilization, ETA) to stderr at this interval, e.g. 2s (0 = off)")
		progOut  = flag.String("progress-out", "", "also append progress records as NDJSON to this file (implies a 1s interval if -progress is unset)")
		verbose  = flag.Bool("verbose", false, "log each completed run to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list     = flag.Bool("list", false, "list known protocols and processes, then exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			if err := writeHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "campaign:", err)
			}
		}()
	}

	if *list {
		fmt.Println("protocols (kind \"protocol\"):")
		for _, n := range protocols.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("processes (kind \"process\"):")
		for _, n := range processes.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("kind \"replication\": Graph-Replication of a ring on ⌊n/2⌋ nodes")
		return nil
	}
	if *format != "json" && *format != "csv" {
		return fmt.Errorf("unknown format %q (known: json, csv)", *format)
	}

	if *resume && *ckPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	spec, err := loadSpec(*specPath, *name, *kind, *sizes, *trials, *seed, *sched, *metric, *engine, *detector, *faults, *topology, *inclUnc, *maxSteps)
	if err != nil {
		return err
	}
	points, err := spec.Compile()
	if err != nil {
		return err
	}

	// SIGINT and SIGTERM cancel the campaign instead of killing the
	// process: in-flight runs stop, partial aggregates are still
	// written, a configured checkpoint gets a final flush, and the exit
	// code is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := campaign.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		KeepRuns:    *runsOut != "",
		FreshAlloc:  *freshAlc,
		ShardTrials: *shardTr,
		Checkpoint:  *ckPath,
		Resume:      *resume,
	}
	if *ckEvery > 0 {
		opts.CheckpointEvery = *ckEvery
	}
	if *retries > 0 {
		opts.Retry = campaign.RetryPolicy{
			MaxAttempts: *retries + 1,
			BaseBackoff: *retryBO,
		}
	}
	if *resume {
		// Execute re-validates the file exhaustively; this peek only
		// feeds the status line.
		if hdr, done, err := campaign.ReadCheckpoint(*ckPath); err == nil {
			fmt.Fprintf(os.Stderr, "campaign: resuming %d/%d shards from %s\n", len(done), hdr.Shards, *ckPath)
		}
	}
	total := 0
	for _, pt := range points {
		total += pt.Trials
	}
	if *verbose {
		done := 0
		opts.OnRun = func(rec campaign.RunRecord) {
			done++
			status := "converged"
			switch {
			case rec.Err != "":
				status = "error: " + rec.Err
			case rec.Stopped:
				status = "stopped"
			case !rec.Converged:
				status = "budget exhausted"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s n=%d %s trial=%d seed=%d: %s (%.0f in %s)\n",
				done, total, rec.Protocol, rec.N, rec.Scheduler, rec.Trial, rec.Seed,
				status, rec.Value, time.Duration(rec.DurationNS))
		}
	}
	if *progress > 0 || *progOut != "" {
		var enc *json.Encoder
		if *progOut != "" {
			f, err := os.Create(*progOut)
			if err != nil {
				return err
			}
			defer f.Close()
			enc = json.NewEncoder(f)
		}
		toStderr := *progress > 0
		opts.ProgressInterval = *progress
		opts.OnProgress = func(p campaign.Progress) {
			// Callbacks are serialized: periodic records come from the
			// pool's ticker goroutine, and the final record only after
			// that goroutine has stopped.
			if toStderr || p.Final {
				fmt.Fprintln(os.Stderr, formatProgress(p))
			}
			if enc != nil {
				if err := enc.Encode(p); err != nil {
					fmt.Fprintln(os.Stderr, "campaign: progress-out:", err)
					enc = nil
				}
			}
		}
	}

	result, runErr := campaign.Execute(ctx, points, opts)
	if runErr != nil && result.Aggregates == nil {
		// Failed before any work happened (bad spec, rejected resume):
		// nothing partial to write.
		return runErr
	}

	// Write outputs even when the campaign was cancelled or errored:
	// partial aggregates are real measurements (cancellation landed at a
	// deterministic record boundary), and the non-zero exit code still
	// tells scripts the sweep is incomplete.
	if err := writeOutput(*out, *format, result.Aggregates, nil); err != nil {
		if runErr == nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "campaign:", err)
	}
	if *runsOut != "" {
		if err := writeOutput(*runsOut, *format, nil, result.Runs); err != nil {
			if runErr == nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "campaign:", err)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "campaign: interrupted — outputs hold partial aggregates")
	}
	return runErr
}

// loadSpec reads the spec file or assembles a single-item spec from
// flags. Spec files carry their own "engine", "detector" and "faults"
// fields, so combining -spec with those flags is rejected rather than
// silently ignored.
func loadSpec(specPath, name, kind, sizes string, trials int, seed uint64, sched, metric, engine, detector, faults, topology string, inclUnc bool, maxSteps int64) (campaign.Spec, error) {
	if _, err := core.ParseEngine(engine); err != nil {
		return campaign.Spec{}, err
	}
	plan, err := scenario.ParsePlan(faults)
	if err != nil {
		return campaign.Spec{}, err
	}
	topoSpec, err := core.ParseTopologySpec(topology)
	if err != nil {
		return campaign.Spec{}, err
	}
	if specPath != "" {
		if engine != "" && engine != "auto" {
			return campaign.Spec{}, fmt.Errorf("-engine cannot be combined with -spec; set the spec's \"engine\" field instead")
		}
		if detector != "" {
			return campaign.Spec{}, fmt.Errorf("-detector cannot be combined with -spec; set the spec's \"detector\" field instead")
		}
		if plan != nil {
			return campaign.Spec{}, fmt.Errorf("-faults cannot be combined with -spec; set the spec's \"faults\" field instead")
		}
		if topoSpec != nil {
			return campaign.Spec{}, fmt.Errorf("-topology cannot be combined with -spec; set the spec's \"topology\" field instead")
		}
		if inclUnc {
			return campaign.Spec{}, fmt.Errorf("-include-unconverged cannot be combined with -spec; set the spec's \"include_unconverged\" field instead")
		}
		var r io.Reader = os.Stdin
		if specPath != "-" {
			f, err := os.Open(specPath)
			if err != nil {
				return campaign.Spec{}, err
			}
			defer f.Close()
			r = f
		}
		return campaign.ParseSpec(r)
	}
	if name == "" && kind != "replication" {
		return campaign.Spec{}, fmt.Errorf("either -spec or -name is required (or -list)")
	}
	ns, err := parseSizes(sizes)
	if err != nil {
		return campaign.Spec{}, err
	}
	return campaign.Spec{
		Items:              []campaign.Item{{Name: name, Kind: kind, Sizes: ns}},
		Trials:             trials,
		Seed:               seed,
		Schedulers:         splitList(sched),
		Metric:             metric,
		Engine:             engine,
		Detector:           detector,
		Faults:             plan,
		Topology:           topoSpec,
		IncludeUnconverged: inclUnc,
		MaxSteps:           maxSteps,
	}, nil
}

// formatProgress renders one Progress record as a stderr status line.
func formatProgress(p campaign.Progress) string {
	elapsed := time.Duration(p.ElapsedNS).Round(time.Millisecond)
	if p.Final {
		return fmt.Sprintf("campaign: %d/%d trials on %d workers in %s (%.1f trials/s, %.0f%% utilization)",
			p.Done, p.Total, p.Workers, elapsed, p.TrialsPerSec, p.Utilization*100)
	}
	eta := "?"
	if p.ETANS > 0 {
		eta = time.Duration(p.ETANS).Round(time.Second).String()
	}
	return fmt.Sprintf("progress: %d/%d trials, %.1f trials/s, %.0f%% utilization, ETA %s",
		p.Done, p.Total, p.TrialsPerSec, p.Utilization*100, eta)
}

// writeHeapProfile snapshots the live heap after a final GC, the shape
// pprof's allocation views expect.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func parseSizes(s string) ([]int, error) {
	var ns []int
	for _, field := range splitList(s) {
		n, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", field, err)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return ns, nil
}

func splitList(s string) []string {
	var out []string
	for _, field := range strings.Split(s, ",") {
		if field = strings.TrimSpace(field); field != "" {
			out = append(out, field)
		}
	}
	return out
}

// writeOutput writes either aggregates or raw runs (exactly one is
// non-nil) to path, stdout when empty.
func writeOutput(path, format string, aggs []campaign.Aggregate, runs []campaign.RunRecord) error {
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case aggs != nil && format == "json":
		return campaign.WriteAggregatesJSON(w, aggs)
	case aggs != nil:
		return campaign.WriteAggregatesCSV(w, aggs)
	case format == "json":
		return campaign.WriteRunsJSON(w, runs)
	default:
		return campaign.WriteRunsCSV(w, runs)
	}
}
