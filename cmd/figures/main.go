// Command figures regenerates machine-produced counterparts of the
// paper's illustrative figures into an output directory:
//
//	fig1_*.dot   spanning-star snapshots (initial / mid / stable)
//	fig2.dot     a typical Simple-Global-Line configuration
//	fig3.txt     the generic-constructor loop trace (Fig. 3)
//	fig4.dot     the U/D partition with its perfect matching
//	fig7.dot     the U/D/M three-way partition
//	fig8.txt     the (U,D,M) construction event trace
//	supernodes.txt  the Theorem 18 layout and triangle application
//	sparsity.txt    convergence vs expected degree under restricted
//	                interaction topologies (the sparsity-sweep figure)
//
// Usage: figures [-n 16] [-seed 1] [-out figures/] [-engine auto] [-topology gnp]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/protocols"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/universal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 16, "population size for snapshots")
		seed   = flag.Uint64("seed", 1, "RNG seed")
		out    = flag.String("out", "figures", "output directory")
		engine = flag.String("engine", "auto", "execution path for the snapshot runs: auto, baseline, fast, sparse, or batch")
		topo   = flag.String("topology", "gnp", "topology model for the sparsity figure: gnp or rgg")
	)
	flag.Parse()
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	if err := fig1(*n, *seed, *out, eng); err != nil {
		return err
	}
	if err := fig2(*n, *seed, *out, eng); err != nil {
		return err
	}
	if err := fig3(*n, *seed, *out); err != nil {
		return err
	}
	if err := partitions(*n, *seed, *out, eng); err != nil {
		return err
	}
	if err := supernodes(*seed, *out); err != nil {
		return err
	}
	return sparsityFigure(*n, *seed, *out, eng, *topo)
}

// fig1 reproduces the spanning-star triptych: all-black start, a
// mid-run configuration with several surviving centers, and the stable
// star.
func fig1(n int, seed uint64, out string, engine core.Engine) error {
	c := protocols.GlobalStar()
	rec := trace.NewRecorder(256)
	// The recorder rides the event stream: the run-end event records the
	// terminal configuration, so no explicit Final call is needed.
	if _, err := core.Run(c.Proto, n, core.Options{Seed: seed, Engine: engine, Detector: c.Detector, Events: rec}); err != nil {
		return err
	}
	shots := rec.Select([]float64{0, 0.5, 1})
	names := []string{"fig1a_initial", "fig1b_intermediate", "fig1c_stable"}
	for i, s := range shots {
		if err := writeFile(out, names[i]+".dot", s.DOT(names[i])); err != nil {
			return err
		}
	}
	return nil
}

// fig2 captures a typical mid-run Simple-Global-Line configuration:
// several disjoint lines with l- or w-leaders plus isolated q0 nodes.
func fig2(n int, seed uint64, out string, engine core.Engine) error {
	c := protocols.SimpleGlobalLine()
	rec := trace.NewRecorder(256)
	if _, err := core.Run(c.Proto, n, core.Options{Seed: seed, Engine: engine, Detector: c.Detector, Events: rec}); err != nil {
		return err
	}
	shots := rec.Select([]float64{0.4})
	return writeFile(out, "fig2.dot", shots[0].DOT("fig2"))
}

// fig3 logs the generic constructor's accept/retry loop on a real run.
func fig3(n int, seed uint64, out string) error {
	var log trace.EventLog
	res, err := universal.LinearWasteHalf(tm.Connected(), n, seed)
	if err != nil {
		return err
	}
	log.Addf("construct G1 on k=%d nodes (line-as-TM), useful space %d", n/2, len(res.UsefulNodes))
	for _, ph := range res.PhaseSteps {
		log.Addf("phase %-16s %12d steps", ph.Name, ph.Steps)
	}
	log.Addf("random draws until the TM accepted: %d", res.Attempts)
	log.Addf("output: %v", res.Output)
	return writeFile(out, "fig3.txt", log.String()+"\n")
}

// partitions renders the U/D matching (Fig. 4) and the U/D/M
// partition (Figs. 7–8).
func partitions(n int, seed uint64, out string, engine core.Engine) error {
	p, det := universal.PartitionUD()
	res, err := core.Run(p, n, core.Options{Seed: seed, Engine: engine, Detector: det})
	if err != nil {
		return err
	}
	if err := writeFile(out, "fig4.dot", configDOT(p, res.Final, "fig4")); err != nil {
		return err
	}

	p3, det3 := universal.PartitionUDM()
	res3, err := core.Run(p3, n+n%3, core.Options{Seed: seed, Engine: engine, Detector: det3})
	if err != nil {
		return err
	}
	if err := writeFile(out, "fig7.dot", configDOT(p3, res3.Final, "fig7")); err != nil {
		return err
	}
	var log trace.EventLog
	log.Addf("U/D/M partition on n=%d: converged at step %d (%d effective)",
		res3.Final.N(), res3.ConvergenceTime, res3.EffectiveSteps)
	counts := res3.Final.CountAll(nil)
	for s, c := range counts {
		log.Addf("state %-4s × %d", p3.StateName(core.State(s)), c)
	}
	return writeFile(out, "fig8.txt", log.String()+"\n")
}

func supernodes(seed uint64, out string) error {
	res, err := universal.Supernodes(64, seed)
	if err != nil {
		return err
	}
	var log trace.EventLog
	log.Addf("supernodes: K=%d lines of length %d, waste %d", res.K, res.LineLen, res.Waste)
	for i, line := range res.Lines {
		log.Addf("supernode %2d (name %0*b): nodes %v", i, res.LineLen, res.Names[i], line)
	}
	log.Addf("triangle application: %d triangles", res.Triangles)
	log.Addf("supernode-level graph: %v", res.SupernodeGraph)
	return writeFile(out, "supernodes.txt", log.String()+"\n")
}

// sparsityFigure sweeps Simple-Global-Line and Cycle-Cover over
// restricted interaction topologies of increasing expected degree and
// writes the (degree, mean convergence time) series as a plain-text
// data table — one block per protocol, gnuplot-friendly.
func sparsityFigure(n int, seed uint64, out string, engine core.Engine, model string) error {
	degrees := []float64{1, 2, 4, 8, float64(n - 1)}
	points, err := experiments.SparsitySweep(n, degrees, model, 5, seed, engine)
	if err != nil {
		return err
	}
	var log trace.EventLog
	log.Addf("# sparsity sweep: convergence time vs expected degree (model %s, n=%d)", model, n)
	log.Addf("# degree ≥ n−1 is the complete-graph control row")
	prev := ""
	for _, p := range points {
		if p.Protocol != prev {
			log.Addf("")
			log.Addf("# %s", p.Protocol)
			log.Addf("# %-8s %-14s %-14s %-10s %s", "degree", "mean", "stderr", "converged", "topology")
			prev = p.Protocol
		}
		topo := p.Topology
		if topo == "" {
			topo = "complete"
		}
		log.Addf("%-10g %-14.0f %-14.1f %-10d %s", p.Degree, p.Mean, p.StdErr, p.Converged, topo)
	}
	return writeFile(out, "sparsity.txt", log.String()+"\n")
}

func configDOT(p *core.Protocol, cfg *core.Config, name string) string {
	labels := make([]string, cfg.N())
	for u := 0; u < cfg.N(); u++ {
		labels[u] = p.StateName(cfg.Node(u))
	}
	return protocols.ActiveGraph(cfg).DOT(name, labels)
}

func writeFile(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
