package netcons_test

// TestEngineEquivalence is the distributional-equivalence suite for
// the indexed engines: every registered protocol and every Table 1
// process runs under the uniform scheduler on ALL FOUR engines
// (baseline, fast, sparse, batch) across many seeds, and the suites
// must agree on
//
//   - convergence semantics: every trial converges on every engine
//     (and no trial stops), and
//   - the law of the measured metric: each indexed engine's mean must
//     sit within a 5σ combined-standard-error band of the baseline's.
//
// The engines are deterministic per seed but consume randomness
// differently, so individual runs differ; the geometric-skip argument
// (see ARCHITECTURE.md) promises equality in distribution, which is
// what this asserts. Seeds are fixed, so the test itself is fully
// deterministic — a failure means a real law change, not noise.
//
// CI greps this test's -v output for the engine=fast, engine=sparse
// and engine=batch subtests, so a silently skipped engine fails the
// job; keep the subtest naming scheme in sync with
// .github/workflows/ci.yml.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

// indexedEngines are the execution paths measured against the
// baseline by the equivalence suites.
var indexedEngines = []core.Engine{core.EngineFast, core.EngineSparse, core.EngineBatch}

// equivalencePoints returns the grid the suite sweeps: every registry
// protocol at a small-but-nontrivial population, and every registered
// process (their detection step is the measured metric).
// Degree-doubling needs its non-uniform initial configuration, so its
// point is built by hand rather than through the spec path.
func equivalencePoints(t *testing.T, trials int) []campaign.Point {
	t.Helper()
	sizes := map[string]int{
		"simple-global-line": 10,
		"fast-global-line":   12,
		"faster-global-line": 12,
		"spanning-net":       16,
		"cycle-cover":        16,
		"global-star":        16,
		"global-ring":        8,
		"2rc":                8,
		"3rc":                9,
		"4rc":                9,
		"3-cliques":          9,
		"4-cliques":          8,
		"degree-doubling":    12, // needs n ≥ 2³+1 for the registered d=3
	}
	var points []campaign.Point
	for _, name := range protocols.Names() {
		c, err := protocols.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		n, ok := sizes[name]
		if !ok {
			n = 8 // new registry entries get a conservative default
		}
		pt := campaign.Point{
			Protocol: name, N: n, Trials: trials, BaseSeed: 1,
			Proto: c.Proto, Detector: c.Detector, Metric: campaign.MetricConvergenceTime,
		}
		if name == "degree-doubling" {
			initial, err := protocols.DegreeDoublingInitial(c.Proto, n)
			if err != nil {
				t.Fatal(err)
			}
			pt.Initial = func(int) (*core.Config, error) { return initial, nil }
		}
		points = append(points, pt)
	}
	for _, name := range processes.Names() {
		proc, err := processes.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		const n = 32
		pt := campaign.Point{
			Protocol: name, N: n, Trials: trials, BaseSeed: 1,
			Proto: proc.Proto, Detector: proc.Detector, Metric: campaign.MetricSteps,
		}
		initial, err := proc.Initial(n)
		if err != nil {
			t.Fatal(err)
		}
		if initial != nil {
			pt.Initial = func(int) (*core.Config, error) { return initial, nil }
		}
		points = append(points, pt)
	}
	return points
}

func TestEngineEquivalence(t *testing.T) {
	t.Parallel()
	trials := 48
	if testing.Short() {
		trials = 16
	}

	execute := func(engine core.Engine) []campaign.Aggregate {
		t.Helper()
		points := equivalencePoints(t, trials)
		for i := range points {
			points[i].Engine = engine
		}
		out, err := campaign.Execute(context.Background(), points, campaign.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return out.Aggregates
	}

	base := execute(core.EngineBaseline)
	for _, engine := range indexedEngines {
		engine := engine
		subject := execute(engine)
		if len(base) != len(subject) {
			t.Fatalf("aggregate count mismatch: %d vs %d", len(base), len(subject))
		}
		for i := range base {
			b, f := base[i], subject[i]
			name := fmt.Sprintf("%s/engine=%s/n=%d", b.Protocol, engine, b.N)
			t.Run(name, func(t *testing.T) {
				if b.Converged != b.Trials || b.Failures != 0 || b.Stopped != 0 {
					t.Fatalf("baseline convergence semantics: %+v", b)
				}
				if f.Converged != f.Trials || f.Failures != 0 || f.Stopped != 0 {
					t.Fatalf("%s convergence semantics: %+v", engine, f)
				}
				diff := math.Abs(b.Mean - f.Mean)
				bound := 5 * math.Hypot(b.StdErr, f.StdErr)
				if diff > bound {
					t.Fatalf("means diverged: baseline %.1f±%.1f vs %s %.1f±%.1f (|Δ|=%.1f > 5σ=%.1f)",
						b.Mean, b.StdErr, engine, f.Mean, f.StdErr, diff, bound)
				}
			})
		}
	}
}

// TestEngineEquivalenceFaults extends the distributional-equivalence
// net to the scenario layer: a fixed fault plan (two crashes, two edge
// deletions, one reset — all before the first possible detection poll,
// so every run absorbs the full plan) must produce identical
// convergence semantics and survivability distributions on all three
// engines. The subjects quiesce under any fault sequence (their state
// progressions are monotone up to the finitely many resets), so every
// trial must converge.
//
// CI greps this test's -v output for the faults= subtests (in addition
// to the engine= greps), so the fault half of the suite cannot
// silently stop running; keep the naming scheme in sync with
// .github/workflows/ci.yml.
func TestEngineEquivalenceFaults(t *testing.T) {
	t.Parallel()
	trials := 48
	if testing.Short() {
		trials = 16
	}
	plan := &scenario.FaultPlan{Seed: 11, Events: []scenario.Fault{
		{Kind: scenario.KindCrash, Step: 40},
		{Kind: scenario.KindEdge, Step: 90, Count: 2},
		{Kind: scenario.KindReset, Step: 140},
		{Kind: scenario.KindCrash, Step: 200},
	}}
	subjects := []struct {
		name string
		c    protocols.Constructor
		n    int
	}{
		{"cycle-cover", protocols.CycleCover(), 16},
		{"global-star", protocols.GlobalStar(), 16},
		{"spanning-net", protocols.SpanningNet(), 16},
	}

	execute := func(engine core.Engine) campaign.Outcome {
		t.Helper()
		points := make([]campaign.Point, 0, len(subjects))
		for _, sub := range subjects {
			points = append(points, campaign.Point{
				Protocol: sub.name, N: sub.n, Trials: trials, BaseSeed: 1,
				Proto: sub.c.Proto, Detector: core.QuiescenceDetector(),
				Engine: engine, Faults: plan, Metric: campaign.MetricLargestComponent,
			})
		}
		out, err := campaign.Execute(context.Background(), points, campaign.Options{KeepRuns: true})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := execute(core.EngineBaseline)
	for _, engine := range indexedEngines {
		engine := engine
		subject := execute(engine)
		for i := range base.Aggregates {
			b, f := base.Aggregates[i], subject.Aggregates[i]
			name := fmt.Sprintf("faults=%s/%s/engine=%s", plan, b.Protocol, engine)
			t.Run(name, func(t *testing.T) {
				if b.Converged != b.Trials || b.Failures != 0 {
					t.Fatalf("baseline convergence semantics under faults: %+v", b)
				}
				if f.Converged != f.Trials || f.Failures != 0 {
					t.Fatalf("%s convergence semantics under faults: %+v", engine, f)
				}
				diff := math.Abs(b.Mean - f.Mean)
				bound := 5 * math.Hypot(b.StdErr, f.StdErr)
				if diff > bound {
					t.Fatalf("survivability means diverged: baseline %.2f±%.2f vs %s %.2f±%.2f (|Δ|=%.2f > 5σ=%.2f)",
						b.Mean, b.StdErr, engine, f.Mean, f.StdErr, diff, bound)
				}
			})
		}
		// Every run on every engine must have absorbed the full plan:
		// the crashes and the reset always find victims, and by step 90
		// an active edge always exists on these subjects.
		for _, rec := range append(append([]campaign.RunRecord{}, base.Runs...), subject.Runs...) {
			if rec.FaultCrashes != 2 || rec.FaultResets != 1 || rec.FaultEdgeDeletions < 1 {
				t.Fatalf("run absorbed a partial plan: %+v", rec)
			}
		}
	}
}

// TestEngineEquivalenceTopology extends the distributional-equivalence
// net to restricted interaction graphs: edge-building subjects run
// under a G(n,p) and a random-geometric topology spec (one realization
// per trial, derived from the trial seed, so all engines see the same
// graph sequence) and every indexed engine's metric law must match the
// baseline's. On top of the 5σ band, sparse and batch must produce
// bit-identical per-run records under a topology — the batch engine's
// exact-fallback contract asserted through the campaign pipeline.
//
// CI greps this test's -v output for the topology= subtests (in
// addition to the engine= greps), so the topology half of the suite
// cannot silently stop running; keep the naming scheme in sync with
// .github/workflows/ci.yml.
func TestEngineEquivalenceTopology(t *testing.T) {
	t.Parallel()
	trials := 48
	if testing.Short() {
		trials = 16
	}
	specs := []string{"gnp@0.4", "rgg@0.5"}
	subjects := []struct {
		name string
		c    protocols.Constructor
		n    int
	}{
		{"cycle-cover", protocols.CycleCover(), 16},
		{"spanning-net", protocols.SpanningNet(), 16},
	}

	execute := func(engine core.Engine, spec *core.TopologySpec) campaign.Outcome {
		t.Helper()
		points := make([]campaign.Point, 0, len(subjects))
		for _, sub := range subjects {
			points = append(points, campaign.Point{
				Protocol: sub.name, N: sub.n, Trials: trials, BaseSeed: 1,
				Proto: sub.c.Proto, Detector: core.QuiescenceDetector(),
				Engine: engine, Topology: spec, Metric: campaign.MetricConvergenceTime,
			})
		}
		out, err := campaign.Execute(context.Background(), points, campaign.Options{KeepRuns: true})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	for _, specText := range specs {
		spec, err := core.ParseTopologySpec(specText)
		if err != nil {
			t.Fatal(err)
		}
		base := execute(core.EngineBaseline, spec)
		byEngine := make(map[core.Engine]campaign.Outcome, len(indexedEngines))
		for _, engine := range indexedEngines {
			engine := engine
			subject := execute(engine, spec)
			byEngine[engine] = subject
			for i := range base.Aggregates {
				b, f := base.Aggregates[i], subject.Aggregates[i]
				name := fmt.Sprintf("topology=%s/%s/engine=%s", spec, b.Protocol, engine)
				t.Run(name, func(t *testing.T) {
					if b.Topology != spec.Label() || f.Topology != spec.Label() {
						t.Fatalf("aggregate topology label: baseline %q, %s %q, want %q", b.Topology, engine, f.Topology, spec.Label())
					}
					if b.Converged != b.Trials || b.Failures != 0 || b.Stopped != 0 {
						t.Fatalf("baseline convergence semantics under topology: %+v", b)
					}
					if f.Converged != f.Trials || f.Failures != 0 || f.Stopped != 0 {
						t.Fatalf("%s convergence semantics under topology: %+v", engine, f)
					}
					diff := math.Abs(b.Mean - f.Mean)
					bound := 5 * math.Hypot(b.StdErr, f.StdErr)
					if diff > bound {
						t.Fatalf("means diverged: baseline %.1f±%.1f vs %s %.1f±%.1f (|Δ|=%.1f > 5σ=%.1f)",
							b.Mean, b.StdErr, engine, f.Mean, f.StdErr, diff, bound)
					}
				})
			}
		}
		// Sparse-vs-batch bit-identity: with a topology attached the
		// batch engine exact-steps every landing through the same
		// indexed path as sparse, so the records must agree bit for bit
		// (engine name, wall clock, and the batch-only fallback counter
		// are the only legitimate differences).
		sparseRuns, batchRuns := byEngine[core.EngineSparse].Runs, byEngine[core.EngineBatch].Runs
		if len(sparseRuns) != len(batchRuns) {
			t.Fatalf("topology=%s: record count mismatch: %d sparse vs %d batch", spec, len(sparseRuns), len(batchRuns))
		}
		for i := range sparseRuns {
			a, b := sparseRuns[i], batchRuns[i]
			a.Engine, b.Engine = "", ""
			a.DurationNS, b.DurationNS = 0, 0
			a.ExactFallbackLandings, b.ExactFallbackLandings = 0, 0
			if a != b {
				t.Fatalf("topology=%s: sparse and batch records diverged at %d:\nsparse %+v\nbatch  %+v", spec, i, a, b)
			}
		}
	}
}

// TestWorkspaceCampaignEquivalence extends the equivalence net to the
// zero-allocation trial pipeline: the full protocol/process grid run
// through the campaign engine with its default per-worker reusable
// workspaces must produce per-run records bit-identical — not merely
// equal in distribution — to the same campaign with workspaces
// disabled (Options.FreshAlloc), on every engine. This is the
// workspace contract (reuse changes no result bit) asserted end to
// end through the worker pool, where job-stream order — and therefore
// which trial inherits which dirty workspace state — is scheduling-
// dependent.
func TestWorkspaceCampaignEquivalence(t *testing.T) {
	t.Parallel()
	trials := 24
	if testing.Short() {
		trials = 8
	}
	execute := func(engine core.Engine, fresh bool) []campaign.RunRecord {
		t.Helper()
		points := equivalencePoints(t, trials)
		for i := range points {
			points[i].Engine = engine
		}
		out, err := campaign.Execute(context.Background(), points, campaign.Options{
			KeepRuns:   true,
			FreshAlloc: fresh,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Runs
	}
	for _, engine := range []core.Engine{core.EngineBaseline, core.EngineFast, core.EngineSparse, core.EngineBatch} {
		engine := engine
		t.Run(fmt.Sprintf("engine=%s", engine), func(t *testing.T) {
			t.Parallel()
			freshRuns := execute(engine, true)
			reusedRuns := execute(engine, false)
			if len(freshRuns) != len(reusedRuns) {
				t.Fatalf("record count mismatch: %d fresh vs %d reused", len(freshRuns), len(reusedRuns))
			}
			for i := range freshRuns {
				a, b := freshRuns[i], reusedRuns[i]
				// Wall clock is the one nondeterministic record field.
				a.DurationNS, b.DurationNS = 0, 0
				if a != b {
					t.Fatalf("record %d diverged:\nfresh  %+v\nreused %+v", i, a, b)
				}
			}
		})
	}
}

// TestEngineEquivalenceSecondaryMetrics repeats the comparison for the
// remaining step-count metrics on two contrasting workloads: an
// edge-heavy quiescent constructor and a node-state-heavy line
// builder. ConvergenceTime is covered by the main suite.
func TestEngineEquivalenceSecondaryMetrics(t *testing.T) {
	t.Parallel()
	trials := 48
	if testing.Short() {
		trials = 16
	}
	metrics := map[string]campaign.Metric{
		"steps":           campaign.MetricSteps,
		"effective-steps": campaign.MetricEffectiveSteps,
		"edge-changes":    campaign.MetricEdgeChanges,
	}
	subjects := []struct {
		name string
		c    protocols.Constructor
		n    int
	}{
		{"cycle-cover", protocols.CycleCover(), 16},
		{"simple-global-line", protocols.SimpleGlobalLine(), 10},
	}
	for metricName, metric := range metrics {
		for _, sub := range subjects {
			for _, engine := range indexedEngines {
				metricName, metric, sub, engine := metricName, metric, sub, engine
				t.Run(fmt.Sprintf("%s/engine=%s/%s", sub.name, engine, metricName), func(t *testing.T) {
					t.Parallel()
					aggregate := func(engine core.Engine) campaign.Aggregate {
						t.Helper()
						out, err := campaign.Execute(context.Background(), []campaign.Point{{
							Protocol: sub.name, N: sub.n, Trials: trials, BaseSeed: 1,
							Proto: sub.c.Proto, Detector: sub.c.Detector,
							Engine: engine, Metric: metric,
						}}, campaign.Options{})
						if err != nil {
							t.Fatal(err)
						}
						return out.Aggregates[0]
					}
					b, f := aggregate(core.EngineBaseline), aggregate(engine)
					if b.Converged != trials || f.Converged != trials {
						t.Fatalf("convergence mismatch: baseline %d, %s %d of %d", b.Converged, engine, f.Converged, trials)
					}
					diff := math.Abs(b.Mean - f.Mean)
					bound := 5 * math.Hypot(b.StdErr, f.StdErr)
					if diff > bound {
						t.Fatalf("%s means diverged: baseline %.1f±%.1f vs %s %.1f±%.1f",
							metricName, b.Mean, b.StdErr, engine, f.Mean, f.StdErr)
					}
				})
			}
		}
	}
}
