// Cliques: maintaining non-interfering clusters (Section 5, "Many
// Small Components"). A population partitions itself into cliques of
// order c; afterwards, a node can restrict effective interactions to
// its own cluster just by looking at the state of the connection —
// the paper's suggested mechanism for cluster-local computation.
//
//	go run ./examples/cliques
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/protocols"
)

func main() {
	const (
		n = 15
		c = 3
	)
	cons, err := protocols.CCliques(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioning %d nodes into cliques of %d with %q (%d states)\n",
		n, c, cons.Proto.Name(), cons.Proto.Size())

	res, err := core.Run(cons.Proto, n, core.Options{Seed: 3, Detector: cons.Detector})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("no convergence within %d steps", res.Steps)
	}
	fmt.Printf("converged at step %d\n", res.ConvergenceTime)

	g := protocols.ActiveGraph(res.Final)
	for i, comp := range g.Components() {
		sub, members := g.InducedSubgraph(comp)
		kind := "cluster"
		if sub.M() == len(comp)*(len(comp)-1)/2 && len(comp) == c {
			kind = fmt.Sprintf("K%d clique", c)
		} else if len(comp) < c {
			kind = "leftover"
		}
		fmt.Printf("  component %d (%s): nodes %v\n", i, kind, members)
	}

	// Cluster-local messaging: a node may treat only active-edge
	// neighbors as its group. Demonstrate by counting each node's
	// in-cluster neighborhood.
	inCluster := 0
	for u := 0; u < n; u++ {
		inCluster += res.Final.Degree(u)
	}
	fmt.Printf("total intra-cluster links: %d (expected %d)\n",
		inCluster/2, (n/c)*c*(c-1)/2)
}
