// Nanonet: the paper's motivating scenario. Computationally weak
// devices injected into a circulatory system cannot control their
// mobility — interactions happen whenever the flow brings two devices
// together — yet they must self-organize to do anything useful.
//
// The devices here run Fast-Global-Line to assemble into a spanning
// line: the backbone that Section 6 turns into a Turing machine. The
// example then reads the line order out of the stable network and
// shows the global sequence the devices agreed on without any device
// knowing more than its own handful of states.
//
//	go run ./examples/nanonet
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

func main() {
	const devices = 60
	line := protocols.FastGlobalLine()
	fmt.Printf("injecting %d devices running %q (%d states each)\n",
		devices, line.Proto.Name(), line.Proto.Size())

	res, err := core.Run(line.Proto, devices, core.Options{Seed: 7, Detector: line.Detector})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("devices failed to assemble within %d interactions", res.Steps)
	}
	fmt.Printf("assembled after %d chance encounters (%d of them effective)\n",
		res.ConvergenceTime, res.EffectiveSteps)

	g := protocols.ActiveGraph(res.Final)
	if !g.IsSpanningLine() {
		log.Fatalf("assembled network is not a spanning line: %v", g)
	}
	order, err := lineOrder(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device chain (%d links): %v …\n", g.M(), order[:10])

	// The stable line induces a global ordering: devices can now act
	// as tape cells. Address the k-th device by walking from the left
	// endpoint — the primitive behind the paper's TM simulation.
	k := devices / 2
	fmt.Printf("device at line position %d is population node %d\n", k, order[k])
}

func lineOrder(g *graph.Graph) ([]int, error) {
	start := -1
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) == 1 {
			start = u
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("not a line: %v", g)
	}
	order := make([]int, 0, g.N())
	prev, cur := -1, start
	for cur >= 0 {
		order = append(order, cur)
		next := -1
		for _, v := range g.Neighbors(cur) {
			if v != prev {
				next = v
				break
			}
		}
		prev, cur = cur, next
	}
	return order, nil
}
