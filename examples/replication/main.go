// Replication: copying a structure without a blueprint (Section 5,
// Protocol 9). Half the population carries an existing network; the
// other half consists of blank nodes. A single elected leader walks
// the original, and for every pair it inspects, the matched blank
// nodes copy the edge value — eventually the blanks hold an exact
// (isomorphic) replica.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

func main() {
	// The input: a 6-node prism (two triangles joined by a matching).
	g1 := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}, {1, 4}, {2, 5}} {
		g1.AddEdge(e[0], e[1])
	}
	n := 2 * g1.N()

	c := protocols.GraphReplication()
	initial, err := protocols.ReplicationInitial(c.Proto, g1, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicating %v onto %d blank nodes\n", g1, n-g1.N())

	res, err := core.Run(c.Proto, n, core.Options{
		Seed:     11,
		Detector: protocols.ReplicationDetector(g1),
		Initial:  initial,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("no convergence within %d steps", res.Steps)
	}
	fmt.Printf("replica stable after %d interactions\n", res.ConvergenceTime)

	// Extract the replica from the matched V2 nodes.
	rState, _ := c.Proto.StateIndex("r")
	var members []int
	for u := 0; u < n; u++ {
		if res.Final.Node(u) == rState {
			members = append(members, u)
		}
	}
	g2 := graph.New(len(members))
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if res.Final.Edge(members[i], members[j]) {
				g2.AddEdge(i, j)
			}
		}
	}
	fmt.Printf("replica:    %v\n", g2)
	fmt.Printf("isomorphic: %v\n", graph.Isomorphic(g1, g2))
}
