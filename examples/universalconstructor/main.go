// Universal constructor: building an arbitrary decidable graph family
// (Section 6, Theorem 14). Half the population becomes a Turing
// machine that repeatedly draws a uniformly random network on the
// other half and keeps it exactly when it belongs to the requested
// language — here, connected graphs, whose near-certainty under
// G(k,1/2) makes the retry loop cheap (Remark 1).
//
// The example finishes with Remark 2's randomness-free counterpart:
// the TM writes one specific target — the Petersen graph — directly.
//
//	go run ./examples/universalconstructor
package main

import (
	"fmt"
	"log"

	"repro/internal/tm"
	"repro/internal/universal"
)

func main() {
	const n = 20
	fmt.Printf("population %d: constructing a connected network on %d useful nodes\n", n, n/2)
	res, err := universal.LinearWasteHalf(tm.Connected(), n, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, ph := range res.PhaseSteps {
		fmt.Printf("  %-16s %12d interactions\n", ph.Name, ph.Steps)
	}
	fmt.Printf("random draws until the TM accepted: %d\n", res.Attempts)
	fmt.Printf("output (connected=%v): %v\n\n", res.Output.Connected(), res.Output)

	fmt.Println("Remark 2 — deterministic construction of the Petersen graph:")
	det, err := universal.DeterministicConstruct(universal.PetersenBuilder(), 20, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %v\n", det.Output)
	fmt.Printf("3-regular=%v triangle-free=%v (Petersen signature)\n",
		det.Output.IsKRegularConnected(3), det.Output.IsTriangleFree())
	fmt.Printf("total interactions: %d (no retry loop: Attempts=%d)\n", det.Steps, det.Attempts)
}
