// Supernodes: trading population for memory and names (Theorem 18).
// A population of anonymous constant-memory nodes organizes itself
// into k named "supernodes" — lines of ⌈log k⌉ nodes — whose line
// memories are big enough to hold unique binary names. With names and
// memory, otherwise-hard constructions become trivial: the example
// finishes with the paper's triangle-partition application at the
// supernode layer.
//
//	go run ./examples/supernodes
package main

import (
	"fmt"
	"log"

	"repro/internal/universal"
)

func main() {
	const n = 100
	res, err := universal.Supernodes(n, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population %d → %d supernodes × %d nodes (waste %d)\n",
		n, res.K, res.LineLen, res.Waste)
	fmt.Printf("charged interactions: %d\n", res.Steps)
	for _, ph := range res.PhaseSteps {
		fmt.Printf("  %-22s %12d steps\n", ph.Name, ph.Steps)
	}
	fmt.Println("\nsupernode names (each stored in its own line's memory):")
	for i := range res.Lines {
		fmt.Printf("  supernode %2d  name %0*b  nodes %v\n",
			i, res.LineLen, res.Names[i], res.Lines[i])
	}
	fmt.Printf("\ntriangle application: %d triangles — %v\n",
		res.Triangles, res.SupernodeGraph)
}
