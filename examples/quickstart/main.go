// Quickstart: define a network constructor, run it under the uniform
// random scheduler, and inspect the stable network it builds.
//
// This runs the paper's 2-state Global-Star protocol — the
// black/red particle system from the introduction — on 40 nodes:
// centers eliminate each other, center–peripheral pairs attract, and
// peripheral–peripheral pairs repel, until a unique center is joined
// to everyone else.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/protocols"
)

func main() {
	star := protocols.GlobalStar()
	fmt.Printf("protocol %q: %d states, %d rules\n",
		star.Proto.Name(), star.Proto.Size(), len(star.Proto.Rules()))
	for _, r := range star.Proto.Rules() {
		fmt.Printf("  (%s, %s, %v) → (%s, %s, %v)\n",
			star.Proto.StateName(r.A), star.Proto.StateName(r.B), b2i(r.Edge),
			star.Proto.StateName(r.OutA), star.Proto.StateName(r.OutB), b2i(r.OutEdge))
	}

	const n = 40
	res, err := core.Run(star.Proto, n, core.Options{Seed: 42, Detector: star.Detector})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("no convergence within %d steps", res.Steps)
	}

	g := protocols.ActiveGraph(res.Final)
	fmt.Printf("\nconverged at interaction %d (%d effective steps, %d edge changes)\n",
		res.ConvergenceTime, res.EffectiveSteps, res.EdgeChanges)
	fmt.Printf("stable network: spanning star = %v, %d edges on %d nodes\n",
		g.IsSpanningStar(), g.M(), g.N())
	for u := 0; u < n; u++ {
		if res.Final.Degree(u) == n-1 {
			fmt.Printf("center: node %d (state %s)\n", u, star.Proto.StateName(res.Final.Node(u)))
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
