package netcons_test

// The batch engine makes a two-sided promise (see ARCHITECTURE.md):
// runs it steps exactly — non-batchable protocols, and any run with an
// event sink, observer or fault injector — are bit-identical to
// EngineSparse; runs it batches are equal in law, verified here by a
// Kolmogorov–Smirnov test on convergence times and a two-sample
// chi-square test on a fixed-horizon graph statistic. CI greps for
// these tests by name; keep them in sync with
// .github/workflows/ci.yml.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// batchResultKey flattens a Result to the comparable fields of the
// bit-identity contract — everything except the reporting Engine tag.
type batchResultKey struct {
	Converged       bool
	Stopped         bool
	Steps           int64
	ConvergenceTime int64
	EffectiveSteps  int64
	EdgeChanges     int64
	Fingerprint     string
}

func batchKeyOf(res core.Result) batchResultKey {
	return batchResultKey{
		Converged:       res.Converged,
		Stopped:         res.Stopped,
		Steps:           res.Steps,
		ConvergenceTime: res.ConvergenceTime,
		EffectiveSteps:  res.EffectiveSteps,
		EdgeChanges:     res.EdgeChanges,
		Fingerprint:     res.Final.Fingerprint(),
	}
}

// TestBatchExactStepping pins the first half of the batch contract: a
// protocol with no census-preserving transition gives the batch engine
// nothing to amortize, so runBatch routes the whole run through the
// exact per-landing path — bit-identical to EngineSparse, with the
// batch metrics reporting every landing as exact-stepped.
func TestBatchExactStepping(t *testing.T) {
	t.Parallel()
	nonBatchable := 0
	for _, name := range protocols.Names() {
		c, err := protocols.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Proto.Batchable() {
			continue
		}
		nonBatchable++
		name, c := name, c
		t.Run("engine=batch/exact/"+name, func(t *testing.T) {
			t.Parallel()
			run := func(engine core.Engine) core.Result {
				opts := core.Options{
					Seed: 3, Engine: engine, Detector: c.Detector, MaxSteps: 1 << 20,
				}
				if name == "degree-doubling" {
					// Its default start is already stable; the measured run
					// needs the registered non-uniform initial.
					initial, err := protocols.DegreeDoublingInitial(c.Proto, 12)
					if err != nil {
						t.Fatal(err)
					}
					opts.Initial = initial
					res, err := core.Run(c.Proto, 12, opts)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				res, err := core.Run(c.Proto, 10, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			sparse := run(core.EngineSparse)
			batch := run(core.EngineBatch)
			if batch.Engine != core.EngineBatch {
				t.Fatalf("batch run reported engine %s", batch.Engine)
			}
			if batchKeyOf(sparse) != batchKeyOf(batch) {
				t.Fatalf("non-batchable %s diverged from sparse:\nsparse %+v\nbatch  %+v",
					name, batchKeyOf(sparse), batchKeyOf(batch))
			}
			m := batch.Metrics
			if m.BucketDraws != 0 {
				t.Fatalf("exact route drew %d bucket landings", m.BucketDraws)
			}
			if m.ExactFallbackLandings != m.Landings || m.Landings == 0 {
				t.Fatalf("exact route accounting: %d fallback of %d landings", m.ExactFallbackLandings, m.Landings)
			}
		})
	}
	if nonBatchable == 0 {
		t.Fatal("registry has no non-batchable protocol; the exact route is untested")
	}
}

// TestBatchDistributionalEquivalence pins the second half of the
// contract on the engine's motivating workload, Simple-Global-Line
// (its walker swap is the one batched, kernel-applied transition):
//
//   - the convergence-time distributions of EngineSparse and
//     EngineBatch over a fixed seed range must pass a two-sample
//     Kolmogorov–Smirnov test at α = 0.001, and
//   - the active-edge count at a fixed mid-transient horizon — a
//     final-graph statistic with real spread — must pass a two-sample
//     chi-square test at α = 0.001.
//
// Seeds are fixed, so failures are law changes, not noise. The batch
// runs must actually exercise the pure path (BucketDraws > 0) — a
// silent reroute to the exact path would pass any equivalence test
// while benchmarking nothing.
func TestBatchDistributionalEquivalence(t *testing.T) {
	t.Parallel()
	c, err := protocols.Lookup("simple-global-line")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Proto.Batchable() {
		t.Fatal("simple-global-line must be batchable (its walker rule is a deterministic swap)")
	}

	t.Run("engine=batch/ks-convergence-time", func(t *testing.T) {
		t.Parallel()
		trials := 200
		if testing.Short() {
			trials = 60
		}
		const n = 10
		sample := func(engine core.Engine) []float64 {
			out := make([]float64, trials)
			var bucketDraws int64
			for trial := 0; trial < trials; trial++ {
				res, err := core.Run(c.Proto, n, core.Options{
					Seed: uint64(trial) + 1, Engine: engine, Detector: c.Detector,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("engine=%s seed=%d did not converge", engine, trial+1)
				}
				out[trial] = float64(res.ConvergenceTime)
				bucketDraws += res.Metrics.BucketDraws
			}
			if engine == core.EngineBatch && bucketDraws == 0 {
				t.Fatal("batch runs never exercised the bucket-plan path")
			}
			return out
		}
		a := sample(core.EngineSparse)
		b := sample(core.EngineBatch)
		d := stats.KSStatistic(a, b)
		if thr := stats.KSThreshold(len(a), len(b), 0.001); d > thr {
			t.Fatalf("convergence-time KS statistic %.4f > threshold %.4f (n=%d per sample)", d, thr, len(a))
		}
	})

	t.Run("engine=batch/chi-square-active-edges", func(t *testing.T) {
		t.Parallel()
		trials := 300
		if testing.Short() {
			trials = 100
		}
		const (
			n       = 24
			horizon = 5000
		)
		never := core.Detector{Trigger: core.TriggerInterval, Stable: func(*core.Config) bool { return false }}
		hist := func(engine core.Engine) []int64 {
			// Active-edge count at the horizon ranges over 0..n−1 on the
			// way to the spanning line.
			h := make([]int64, n)
			for trial := 0; trial < trials; trial++ {
				res, err := core.Run(c.Proto, n, core.Options{
					Seed: uint64(trial) + 1, Engine: engine, Detector: never, MaxSteps: horizon,
				})
				if err != nil {
					t.Fatal(err)
				}
				edges := 0
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						if res.Final.Edge(u, v) {
							edges++
						}
					}
				}
				h[edges]++
			}
			return h
		}
		a := hist(core.EngineSparse)
		b := hist(core.EngineBatch)
		stat, df := stats.ChiSquareTwoSample(a, b)
		if df == 0 {
			t.Fatalf("degenerate horizon: histograms %v vs %v", a, b)
		}
		if crit := stats.ChiSquareCritical(df, 0.001); stat > crit {
			t.Fatalf("active-edge chi-square %.2f > critical %.2f (df %d)\nsparse %v\nbatch  %v", stat, crit, df, a, b)
		}
	})
}

// recordSink serializes every event except the run-envelope Engine tag
// (the one field the contract lets differ).
type recordSink struct {
	events []string
}

func (s *recordSink) Event(ev *core.Event) {
	s.events = append(s.events, fmt.Sprintf(
		"%s step=%d uv=%d,%d before=%d,%d after=%d,%d ec=%v e=%v skip=%d label=%q stable=%v conv=%v eff=%d",
		ev.Kind, ev.Step, ev.U, ev.V, ev.BeforeU, ev.BeforeV, ev.AfterU, ev.AfterV,
		ev.EdgeChanged, ev.Edge, ev.Skipped, ev.Label, ev.Stable, ev.Converged, ev.EffectiveSteps))
}

type recordObserver struct {
	steps []string
}

func (o *recordObserver) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
	o.steps = append(o.steps, fmt.Sprintf("%d:%d,%d:%v", step, u, v, edgeChanged))
}

// TestBatchExactFallbackBitIdentical pins the fallback half of the
// contract on a batchable protocol: attaching an event sink, an
// observer, or a fault injector reroutes the whole batch run to exact
// stepping, so the run — results, final configuration, and the full
// event/observer stream — is bit-identical to EngineSparse with the
// same options. (TestEventSinkDoesNotPerturbRuns in internal/core
// points here for the engine=batch case it cannot assert.)
func TestBatchExactFallbackBitIdentical(t *testing.T) {
	t.Parallel()
	c, err := protocols.Lookup("simple-global-line")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Proto.Batchable() {
		t.Fatal("fallback test needs a batchable protocol")
	}
	const n = 10

	plan := &scenario.FaultPlan{Seed: 5, Events: []scenario.Fault{
		{Kind: scenario.KindEdge, Step: 60, Count: 2},
		{Kind: scenario.KindReset, Step: 150},
	}}

	type variant struct {
		name   string
		attach func(opts *core.Options) (stream func() []string)
	}
	variants := []variant{
		{"events", func(opts *core.Options) func() []string {
			sink := &recordSink{}
			opts.Events = sink
			return func() []string { return sink.events }
		}},
		{"observer", func(opts *core.Options) func() []string {
			obs := &recordObserver{}
			opts.Observer = obs
			return func() []string { return obs.steps }
		}},
		{"injector", func(opts *core.Options) func() []string {
			pr, err := plan.Prepare(c.Proto)
			if err != nil {
				t.Fatal(err)
			}
			inj := pr.NewInjection(opts.Seed)
			opts.Injector = inj
			return func() []string {
				counts := inj.Counts()
				return []string{fmt.Sprintf("edges=%d resets=%d", counts.EdgeDeletions, counts.Resets)}
			}
		}},
	}

	for _, v := range variants {
		v := v
		t.Run("engine=batch/fallback="+v.name, func(t *testing.T) {
			t.Parallel()
			run := func(engine core.Engine) (core.Result, []string) {
				opts := core.Options{
					Seed: 17, Engine: engine, Detector: c.Detector, MaxSteps: 1 << 22,
				}
				if v.name == "injector" {
					// Faults break the target detector's reachability
					// assumption; quiescence is the honest stop rule.
					opts.Detector = core.QuiescenceDetector()
				}
				stream := v.attach(&opts)
				res, err := core.Run(c.Proto, n, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res, stream()
			}
			sparse, sparseStream := run(core.EngineSparse)
			batch, batchStream := run(core.EngineBatch)
			if batch.Engine != core.EngineBatch || sparse.Engine != core.EngineSparse {
				t.Fatalf("engine tags: sparse=%s batch=%s", sparse.Engine, batch.Engine)
			}
			if batchKeyOf(sparse) != batchKeyOf(batch) {
				t.Fatalf("fallback run diverged from sparse:\nsparse %+v\nbatch  %+v",
					batchKeyOf(sparse), batchKeyOf(batch))
			}
			if len(sparseStream) != len(batchStream) {
				t.Fatalf("stream lengths diverged: sparse %d, batch %d", len(sparseStream), len(batchStream))
			}
			for i := range sparseStream {
				if sparseStream[i] != batchStream[i] {
					t.Fatalf("stream entry %d diverged:\nsparse %s\nbatch  %s", i, sparseStream[i], batchStream[i])
				}
			}
			m := batch.Metrics
			if m.BucketDraws != 0 {
				t.Fatalf("fallback run drew %d bucket landings", m.BucketDraws)
			}
			if m.ExactFallbackLandings != m.Landings || m.Landings == 0 {
				t.Fatalf("fallback accounting: %d fallback of %d landings", m.ExactFallbackLandings, m.Landings)
			}
		})
	}
}
