package netcons_test

// BenchmarkBatchVsSparse measures the batch engine against the sparse
// state-class engine on Simple-Global-Line — same workload rows, both
// engines, so the tracked artifact exposes the ratio directly:
//
//   - n=4096 rows share the 10⁹-step budget of the sparse rows in
//     BenchmarkFastVsBaseline; n=65536 and n=2²⁰ rows burn the full
//     default 2⁴⁰-step ceiling (Simple-Global-Line cannot converge at
//     these sizes within any practical budget — these are throughput
//     rows, steps/op confirming both engines simulate the same number
//     of scheduler draws per budget);
//   - the batch-speedup rows run sparse and batch back to back on the
//     same seeds and report the wall-clock ratio as "speedup" — the
//     n=65536 row is the ratio ARCHITECTURE.md's batch-engine table
//     quotes — plus both engines' allocated bytes;
//   - every row reports peak-heap-bytes; run with -benchmem for the
//     allocator's view.
//
// Run it with:
//
//	go test -run '^$' -bench BenchmarkBatchVsSparse -benchtime 1x -benchmem
//
// CI runs exactly that and uploads the test2json stream as
// BENCH_batch.json.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

func BenchmarkBatchVsSparse(b *testing.B) {
	for _, tc := range []struct {
		n        int
		maxSteps int64
	}{
		{4096, sparseBudget},
		{65536, core.DefaultMaxSteps(65536)},
		{1 << 20, core.DefaultMaxSteps(1 << 20)},
	} {
		tc := tc
		for _, engine := range []core.Engine{core.EngineSparse, core.EngineBatch} {
			engine := engine
			b.Run(fmt.Sprintf("Simple-Global-Line/n=%d/engine=%s", tc.n, engine), func(b *testing.B) {
				var steps, effective, bucketDraws int64
				var peakHeap float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					runtime.GC()
					b.StartTimer()
					res := runLineBudget(b, tc.n, engine, uint64(i)+1, tc.maxSteps)
					steps += res.Steps
					effective += res.EffectiveSteps
					bucketDraws += res.Metrics.BucketDraws
					if h := heapAllocNow(); h > peakHeap {
						peakHeap = h
					}
				}
				b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
				b.ReportMetric(float64(effective)/float64(b.N), "effective/op")
				if engine == core.EngineBatch {
					if bucketDraws == 0 {
						b.Fatal("batch rows never took the bucket-plan path; the speedup rows measure nothing")
					}
					b.ReportMetric(float64(bucketDraws)/float64(b.N), "bucket-draws/op")
				}
				b.ReportMetric(peakHeap, "peak-heap-bytes")
			})
		}

		b.Run(fmt.Sprintf("Simple-Global-Line/n=%d/batch-speedup", tc.n), func(b *testing.B) {
			var sparse, batch time.Duration
			var sparseAlloc, batchAlloc float64
			var m0, m1 runtime.MemStats
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				runtime.GC()
				runtime.ReadMemStats(&m0)
				start := time.Now()
				runLineBudget(b, tc.n, core.EngineSparse, seed, tc.maxSteps)
				sparse += time.Since(start)
				runtime.ReadMemStats(&m1)
				sparseAlloc += float64(m1.TotalAlloc - m0.TotalAlloc)

				runtime.GC()
				runtime.ReadMemStats(&m0)
				start = time.Now()
				runLineBudget(b, tc.n, core.EngineBatch, seed, tc.maxSteps)
				batch += time.Since(start)
				runtime.ReadMemStats(&m1)
				batchAlloc += float64(m1.TotalAlloc - m0.TotalAlloc)
			}
			if batch > 0 {
				b.ReportMetric(float64(sparse)/float64(batch), "speedup")
			}
			n := float64(b.N)
			b.ReportMetric(sparseAlloc/n, "sparse-alloc-bytes/op")
			b.ReportMetric(batchAlloc/n, "batch-alloc-bytes/op")
		})
	}
}
