#!/usr/bin/env bash
# Regenerates the tracked benchmark artifacts — BENCH_batch.json,
# BENCH_campaign.json, BENCH_topology.json, BENCH_observer.json — with
# the pinned -benchtime each suite is calibrated for. CI runs this
# script per suite and uploads the files; run it locally (optionally
# with a subset of suite names) to reproduce the numbers quoted in
# ARCHITECTURE.md and EXPERIMENTS.md. The -benchtime pins are part of
# the artifact contract: trend comparisons across commits assume every
# row was measured with the same iteration count.
set -euo pipefail
cd "$(dirname "$0")/.."

suites="$*"
if [ -z "$suites" ]; then
  suites="batch campaign topology observer"
fi

for suite in $suites; do
  case "$suite" in
    batch)
      go test -run '^$' -bench BenchmarkBatchVsSparse -benchtime 1x -benchmem -json . | tee BENCH_batch.json
      ;;
    campaign)
      go test -run '^$' -bench BenchmarkCampaignThroughput -benchtime 3x -benchmem -json . | tee BENCH_campaign.json
      ;;
    topology)
      go test -run '^$' -bench BenchmarkTopologyOverhead -benchtime 1x -benchmem -json . | tee BENCH_topology.json
      ;;
    observer)
      go test -run '^$' -bench 'BenchmarkObserverOff|BenchmarkEventStream' -benchtime 3x -benchmem -json . | tee BENCH_observer.json
      ;;
    *)
      echo "unknown suite: $suite (want batch, campaign, topology, observer)" >&2
      exit 2
      ;;
  esac
done
