package netcons_test

// BenchmarkFastVsBaseline measures the indexed engines (enabled-pair
// index + geometric step-skipping, and the sparse state-class sampler)
// against the baseline step-by-step loop on Simple-Global-Line — the
// paper's Ω(n⁴) worst case, whose long random-walk tail is almost
// entirely ineffective steps and therefore the indexed paths' best and
// most representative customer:
//
//   - engine=baseline vs engine=fast rows run to convergence at
//     n ∈ {64, 128, 256}; compare ns/op between the rows (steps/op
//     confirms the two simulate the same law);
//   - n ∈ {512, 1024} rows run the fast engine only — the baseline
//     would need minutes per run at these sizes, which is the point;
//   - engine=sparse rows run at n ∈ {4096, 16384, 65536}. Beyond
//     n ≈ 2048 Simple-Global-Line cannot converge within the 2⁴⁰
//     default step ceiling on any engine, so these rows are fixed-
//     budget throughput rows (the n=4096 row shares the speedup row's
//     10⁹-step budget; the larger rows burn the full default ceiling).
//     At n=65536 the dense PairIndex alone would need ≈8.6 GB — the
//     sparse row's peak-heap-bytes metric shows a few tens of MB;
//   - every row reports peak-heap-bytes (runtime.MemStats.HeapAlloc
//     after the run, before collection) so the perf artifact tracks
//     memory alongside wall-clock; run with -benchmem for the
//     allocator's own view;
//   - the n=256 speedup row runs baseline and fast back to back and
//     reports the wall-clock ratio as "speedup" (≥10× is the bar that
//     optimisation was built to clear); the n=4096 sparse-speedup row
//     does the same for fast vs sparse on a shared 10⁹-step budget,
//     additionally reporting both engines' allocation totals — the
//     sparse engine's bar is ≥1× fast's wall-clock at ≥10× less
//     allocated memory.
//
// Run it with:
//
//	go test -run '^$' -bench BenchmarkFastVsBaseline -benchtime 1x -benchmem
//
// CI runs exactly that and uploads the test2json stream as the perf
// trajectory artifact.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocols"
)

// sparseBudget is the shared step cap of the n=4096 fixed-budget rows:
// enough to carry the run well past the dense pairing phase into the
// skip-dominated tail, while keeping the fast side of the comparison
// row to seconds.
const sparseBudget = int64(1_000_000_000)

func runLineBudget(b *testing.B, n int, engine core.Engine, seed uint64, maxSteps int64) core.Result {
	b.Helper()
	c := protocols.SimpleGlobalLine()
	res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Engine: engine, Detector: c.Detector, MaxSteps: maxSteps})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// runLine runs to convergence under the default budget and asserts it.
func runLine(b *testing.B, n int, engine core.Engine, seed uint64) core.Result {
	b.Helper()
	res := runLineBudget(b, n, engine, seed, 0)
	if !res.Converged {
		b.Fatalf("n=%d engine=%s seed=%d did not converge", n, engine, seed)
	}
	return res
}

// heapAllocNow returns the live heap size without forcing a collection
// — read right after a run it approximates the run's peak footprint
// (the engines allocate their structures up front and produce little
// garbage).
func heapAllocNow() float64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc)
}

func BenchmarkFastVsBaseline(b *testing.B) {
	for _, tc := range []struct {
		n        int
		maxSteps int64 // 0: run to convergence (asserted); else fixed budget
		engines  []core.Engine
	}{
		{64, 0, []core.Engine{core.EngineBaseline, core.EngineFast}},
		{128, 0, []core.Engine{core.EngineBaseline, core.EngineFast}},
		{256, 0, []core.Engine{core.EngineBaseline, core.EngineFast}},
		{512, 0, []core.Engine{core.EngineFast}},
		{1024, 0, []core.Engine{core.EngineFast}},
		{4096, sparseBudget, []core.Engine{core.EngineSparse}},
		{16384, core.DefaultMaxSteps(16384), []core.Engine{core.EngineSparse}},
		{65536, core.DefaultMaxSteps(65536), []core.Engine{core.EngineSparse}},
	} {
		tc := tc
		for _, engine := range tc.engines {
			engine := engine
			b.Run(fmt.Sprintf("Simple-Global-Line/n=%d/engine=%s", tc.n, engine), func(b *testing.B) {
				var steps, effective int64
				var peakHeap float64
				for i := 0; i < b.N; i++ {
					// Collect other rows' (and iterations') garbage
					// outside the timer so peak-heap-bytes reflects this
					// run's footprint, not GC timing.
					b.StopTimer()
					runtime.GC()
					b.StartTimer()
					var res core.Result
					if tc.maxSteps == 0 {
						res = runLine(b, tc.n, engine, uint64(i)+1)
					} else {
						res = runLineBudget(b, tc.n, engine, uint64(i)+1, tc.maxSteps)
					}
					steps += res.Steps
					effective += res.EffectiveSteps
					if h := heapAllocNow(); h > peakHeap {
						peakHeap = h
					}
				}
				b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
				b.ReportMetric(float64(effective)/float64(b.N), "effective/op")
				b.ReportMetric(peakHeap, "peak-heap-bytes")
			})
		}
	}

	b.Run("Simple-Global-Line/n=256/speedup", func(b *testing.B) {
		var baseline, fast time.Duration
		for i := 0; i < b.N; i++ {
			seed := uint64(i) + 1
			start := time.Now()
			runLine(b, 256, core.EngineBaseline, seed)
			baseline += time.Since(start)
			start = time.Now()
			runLine(b, 256, core.EngineFast, seed)
			fast += time.Since(start)
		}
		if fast > 0 {
			b.ReportMetric(float64(baseline)/float64(fast), "speedup")
		}
	})

	// The acceptance row of the sparse engine: identical workload
	// (same n, seed and step budget) on both indexed paths; "speedup"
	// is fast's wall-clock over sparse's (bar: ≥ 1), and the two
	// alloc-bytes metrics expose the ≥ 10× memory gap that is the
	// sparse engine's reason to exist.
	b.Run("Simple-Global-Line/n=4096/sparse-speedup", func(b *testing.B) {
		var fast, sparse time.Duration
		var fastAlloc, sparseAlloc float64
		var m0, m1 runtime.MemStats
		for i := 0; i < b.N; i++ {
			seed := uint64(i) + 1
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			runLineBudget(b, 4096, core.EngineFast, seed, sparseBudget)
			fast += time.Since(start)
			runtime.ReadMemStats(&m1)
			fastAlloc += float64(m1.TotalAlloc - m0.TotalAlloc)

			runtime.GC()
			runtime.ReadMemStats(&m0)
			start = time.Now()
			runLineBudget(b, 4096, core.EngineSparse, seed, sparseBudget)
			sparse += time.Since(start)
			runtime.ReadMemStats(&m1)
			sparseAlloc += float64(m1.TotalAlloc - m0.TotalAlloc)
		}
		if sparse > 0 {
			b.ReportMetric(float64(fast)/float64(sparse), "speedup")
		}
		n := float64(b.N)
		b.ReportMetric(fastAlloc/n, "fast-alloc-bytes/op")
		b.ReportMetric(sparseAlloc/n, "sparse-alloc-bytes/op")
	})
}
