package netcons_test

// BenchmarkFastVsBaseline measures the fast engine (enabled-pair index
// + geometric step-skipping) against the baseline step-by-step loop on
// Simple-Global-Line — the paper's Ω(n⁴) worst case, whose long
// random-walk tail is almost entirely ineffective steps and therefore
// the fast path's best and most representative customer:
//
//   - engine=baseline vs engine=fast rows run to convergence at
//     n ∈ {64, 128, 256}; compare ns/op between the rows (steps/op
//     confirms the two simulate the same law);
//   - n ∈ {512, 1024} rows run the fast engine only — the baseline
//     would need minutes per run at these sizes, which is the point;
//   - the speedup row runs both engines back to back at n=256 and
//     reports the wall-clock ratio directly as "speedup" (≥10× is the
//     bar this optimisation was built to clear).
//
// Run it with:
//
//	go test -run '^$' -bench BenchmarkFastVsBaseline -benchtime 1x
//
// CI runs exactly that and uploads the test2json stream as the perf
// trajectory artifact.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocols"
)

func runLine(b *testing.B, n int, engine core.Engine, seed uint64) core.Result {
	b.Helper()
	c := protocols.SimpleGlobalLine()
	res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Engine: engine, Detector: c.Detector})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Converged {
		b.Fatalf("n=%d engine=%s seed=%d did not converge", n, engine, seed)
	}
	return res
}

func BenchmarkFastVsBaseline(b *testing.B) {
	for _, tc := range []struct {
		n       int
		engines []core.Engine
	}{
		{64, []core.Engine{core.EngineBaseline, core.EngineFast}},
		{128, []core.Engine{core.EngineBaseline, core.EngineFast}},
		{256, []core.Engine{core.EngineBaseline, core.EngineFast}},
		{512, []core.Engine{core.EngineFast}},
		{1024, []core.Engine{core.EngineFast}},
	} {
		tc := tc
		for _, engine := range tc.engines {
			engine := engine
			b.Run(fmt.Sprintf("Simple-Global-Line/n=%d/engine=%s", tc.n, engine), func(b *testing.B) {
				var steps, effective int64
				for i := 0; i < b.N; i++ {
					res := runLine(b, tc.n, engine, uint64(i)+1)
					steps += res.Steps
					effective += res.EffectiveSteps
				}
				b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
				b.ReportMetric(float64(effective)/float64(b.N), "effective/op")
			})
		}
	}

	b.Run("Simple-Global-Line/n=256/speedup", func(b *testing.B) {
		var baseline, fast time.Duration
		for i := 0; i < b.N; i++ {
			seed := uint64(i) + 1
			start := time.Now()
			runLine(b, 256, core.EngineBaseline, seed)
			baseline += time.Since(start)
			start = time.Now()
			runLine(b, 256, core.EngineFast, seed)
			fast += time.Since(start)
		}
		if fast > 0 {
			b.ReportMetric(float64(baseline)/float64(fast), "speedup")
		}
	})
}
