// Package netcons is a Go reproduction of "Simple and Efficient Local
// Codes for Distributed Stable Network Construction" (Michail &
// Spirakis, PODC 2014 / Distributed Computing).
//
// The implementation lives in the internal packages:
//
//	internal/core        the Network Constructor model and engines
//	internal/protocols   every direct constructor (Tables 2 rows)
//	internal/processes   the fundamental probabilistic processes (Table 1)
//	internal/graph       graph substrate: predicates, isomorphism, G(n,p)
//	internal/check       exhaustive model checker for small populations
//	internal/tm          Turing-machine substrate for Section 6
//	internal/universal   the generic constructors (Theorems 14–18)
//	internal/scenario    fault injection (crash / edge-delete / reset
//	                     plans) composing with all three engines
//	internal/campaign    the concurrent sweep engine (worker pool,
//	                     streaming aggregation, JSON/CSV export)
//	internal/experiments sweeps shared by cmd/tables and the benchmarks,
//	                     all routed through internal/campaign
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results. The benchmark harness in bench_test.go regenerates every
// table row:
//
//	go test -bench=. -benchmem
package netcons
