package netcons_test

// BenchmarkCampaign measures the campaign runner's parallel speedup:
// the same 64-run sweep (Cycle-Cover, the paper's time-optimal Θ(n²)
// constructor, at n=96) executed at workers=1 — the old sequential
// trial-loop semantics — and at workers=GOMAXPROCS. The aggregates are
// asserted bit-identical across the two, so the comparison is purely
// about wall clock:
//
//	go test -bench BenchmarkCampaign -benchtime 3x

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/protocols"
)

func campaignSweep() []campaign.Point {
	cc := protocols.CycleCover()
	return []campaign.Point{{
		Protocol: "cycle-cover",
		N:        96,
		Trials:   64,
		BaseSeed: 1,
		Proto:    cc.Proto,
		Detector: cc.Detector,
		Metric:   campaign.MetricConvergenceTime,
	}}
}

func BenchmarkCampaign(b *testing.B) {
	var serial, parallel []campaign.Aggregate
	for _, tc := range []struct {
		name    string
		workers int
		sink    *[]campaign.Aggregate
	}{
		{"serial/workers=1", 1, &serial},
		{fmt.Sprintf("parallel/workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0), &parallel},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := campaign.Execute(context.Background(), campaignSweep(), campaign.Options{
					Workers: tc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if out.Aggregates[0].Failures > 0 {
					b.Fatalf("failures: %+v", out.Aggregates[0])
				}
				*tc.sink = out.Aggregates
			}
		})
	}
	if serial != nil && parallel != nil && !reflect.DeepEqual(serial, parallel) {
		b.Fatalf("worker count changed the aggregates:\n%+v\nvs\n%+v", serial, parallel)
	}
}
