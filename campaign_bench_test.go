package netcons_test

// BenchmarkCampaign measures the campaign runner's parallel speedup:
// the same 64-run sweep (Cycle-Cover, the paper's time-optimal Θ(n²)
// constructor, at n=96) executed at workers=1 — the old sequential
// trial-loop semantics — and at workers=GOMAXPROCS. The aggregates are
// asserted bit-identical across the two, so the comparison is purely
// about wall clock:
//
//	go test -bench BenchmarkCampaign -benchtime 3x

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/protocols"
)

func campaignSweep() []campaign.Point {
	cc := protocols.CycleCover()
	return []campaign.Point{{
		Protocol: "cycle-cover",
		N:        96,
		Trials:   64,
		BaseSeed: 1,
		Proto:    cc.Proto,
		Detector: cc.Detector,
		Metric:   campaign.MetricConvergenceTime,
	}}
}

func BenchmarkCampaign(b *testing.B) {
	var serial, parallel []campaign.Aggregate
	for _, tc := range []struct {
		name    string
		workers int
		sink    *[]campaign.Aggregate
	}{
		{"serial/workers=1", 1, &serial},
		{fmt.Sprintf("parallel/workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0), &parallel},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := campaign.Execute(context.Background(), campaignSweep(), campaign.Options{
					Workers: tc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if out.Aggregates[0].Failures > 0 {
					b.Fatalf("failures: %+v", out.Aggregates[0])
				}
				*tc.sink = out.Aggregates
			}
		})
	}
	if serial != nil && parallel != nil && !reflect.DeepEqual(serial, parallel) {
		b.Fatalf("worker count changed the aggregates:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// BenchmarkCampaignThroughput measures the zero-allocation trial
// pipeline: the same sweep executed with per-worker reusable
// workspaces (the default) and with Options.FreshAlloc (every trial
// allocates and rebuilds its Θ(n²) index and edge store from scratch).
// The workload is the setup-dominated regime the workspaces target —
// many short trials of a large point, where the geometric-skip engines
// make the simulation itself nearly free and per-trial setup is the
// bill — so the ratio between the alloc=fresh and alloc=workspace rows
// is the pipeline win. Aggregates are asserted bit-identical across
// the two modes (the workspace contract). Run with -benchmem to see
// the allocation collapse:
//
//	go test -bench BenchmarkCampaignThroughput -benchtime 3x -benchmem
type campaignThroughputMode struct {
	name  string
	fresh bool
}

func BenchmarkCampaignThroughput(b *testing.B) {
	const trials = 32
	for _, n := range []int{512, 2048} {
		points := func() []campaign.Point {
			cc := protocols.CycleCover()
			return []campaign.Point{{
				Protocol: "cycle-cover",
				N:        n,
				Trials:   trials,
				BaseSeed: 1,
				Proto:    cc.Proto,
				Detector: cc.Detector,
				Engine:   core.EngineFast,
				// A short fixed budget keeps the trials in the
				// setup-dominated steady state; budget exhaustion is a
				// deterministic cut, so the measured values stay
				// comparable across modes.
				MaxSteps:           64,
				IncludeUnconverged: true,
				Metric:             campaign.MetricEffectiveSteps,
			}}
		}
		byMode := map[string][]campaign.Aggregate{}
		for _, mode := range []campaignThroughputMode{{"fresh", true}, {"workspace", false}} {
			mode := mode
			b.Run(fmt.Sprintf("n=%d/alloc=%s", n, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := campaign.Execute(context.Background(), points(), campaign.Options{
						Workers:    1, // per-trial cost, undiluted by parallelism
						FreshAlloc: mode.fresh,
					})
					if err != nil {
						b.Fatal(err)
					}
					byMode[mode.name] = out.Aggregates
				}
				b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
			})
		}
		if f, w := byMode["fresh"], byMode["workspace"]; f != nil && w != nil && !reflect.DeepEqual(f, w) {
			b.Fatalf("workspace reuse changed the aggregates at n=%d:\n%+v\nvs\n%+v", n, f, w)
		}
	}
}
