package netcons_test

// BenchmarkTopologyOverhead tracks the cost of the interaction-topology
// layer on Cycle-Cover, the edge-building workload whose convergence is
// insensitive to connectivity (it quiesces on any permitted-pair
// graph):
//
// All rows run under the generic quiescence detector (the registry
// detector encodes complete-graph stable configurations, which a
// restricted graph never reaches):
//
//   - topology=complete rows run with a nil *core.Topology — the exact
//     pre-topology code path (a complete spec builds to nil), so this
//     row's trajectory is the acceptance gate: it must stay within 2%
//     of its pre-refactor wall-clock;
//   - topology=gnp and topology=rgg rows run the same workload on a
//     G(n,p) and a random-geometric instance at expected degree 8
//     (p = 8/(n−1), r = √(8/(π(n−1)))), realized outside the timer, so
//     the rows price the restricted scheduler/index paths themselves;
//   - every row reports steps/op, effective/op, permitted pairs/op and
//     peak-heap-bytes.
//
// Run it with:
//
//	go test -run '^$' -bench BenchmarkTopologyOverhead -benchtime 1x -benchmem
//
// CI runs exactly that and uploads the test2json stream as
// BENCH_topology.json.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

func BenchmarkTopologyOverhead(b *testing.B) {
	const degree = 8.0
	for _, n := range []int{1024, 4096, 16384} {
		n := n
		specs := []struct {
			label string
			spec  *core.TopologySpec
		}{
			{"complete", nil},
			{"gnp", &core.TopologySpec{Kind: core.TopoGnp, Param: degree / float64(n-1)}},
			{"rgg", &core.TopologySpec{Kind: core.TopoRGG, Param: math.Sqrt(degree / (math.Pi * float64(n-1)))}},
		}
		for _, tc := range specs {
			tc := tc
			b.Run(fmt.Sprintf("Cycle-Cover/n=%d/topology=%s", n, tc.label), func(b *testing.B) {
				c := protocols.CycleCover()
				var steps, effective, pairs int64
				var peakHeap float64
				for i := 0; i < b.N; i++ {
					// Realize the per-iteration topology instance and collect
					// prior garbage outside the timer: the rows price the
					// engines' restricted paths, not graph generation or GC.
					b.StopTimer()
					runtime.GC()
					topo, err := tc.spec.Realize(n, uint64(i)+1)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := core.Run(c.Proto, n, core.Options{
						Seed: uint64(i) + 1, Engine: core.EngineSparse,
						Detector: core.QuiescenceDetector(), Topology: topo,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatalf("n=%d topology=%s seed=%d did not converge", n, tc.label, uint64(i)+1)
					}
					steps += res.Steps
					effective += res.EffectiveSteps
					if topo != nil {
						pairs += int64(topo.PairCount())
					} else {
						pairs += int64(n) * int64(n-1) / 2
					}
					if h := heapAllocNow(); h > peakHeap {
						peakHeap = h
					}
				}
				b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
				b.ReportMetric(float64(effective)/float64(b.N), "effective/op")
				b.ReportMetric(float64(pairs)/float64(b.N), "pairs/op")
				b.ReportMetric(peakHeap, "peak-heap-bytes")
			})
		}
	}
}
