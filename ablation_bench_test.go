package netcons_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - BenchmarkAblationScheduler — convergence under the uniform
//     scheduler vs the permutation and round-robin fair schedulers
//     (the paper's analysis assumes uniformity; these quantify how
//     much the schedule regime matters);
//   - BenchmarkAblationDetection — detector-trigger cost: per-
//     effective-step predicates vs interval quiescence scans (the
//     engine's central detection design choice);
//   - BenchmarkAblationMergeVsSteal — Simple-Global-Line's merging
//     against Fast-Global-Line's node stealing at equal sizes, the
//     paper's own Section 4 design discussion;
//   - BenchmarkGeometric — the Section 7 geometric variant
//     (square self-assembly), measuring interactions to completion;
//   - BenchmarkDeterministicConstruct — Remark 2's randomness-free
//     constructor against the randomized half-waste pipeline on the
//     same target family.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geometric"
	"repro/internal/protocols"
	"repro/internal/tm"
	"repro/internal/universal"
)

func BenchmarkAblationScheduler(b *testing.B) {
	c := protocols.GlobalStar()
	const n = 48
	schedulers := map[string]func() core.Scheduler{
		"uniform":     func() core.Scheduler { return core.UniformScheduler{} },
		"permutation": func() core.Scheduler { return &core.PermutationScheduler{} },
		"round-robin": func() core.Scheduler { return &core.RoundRobinScheduler{} },
	}
	for name, mk := range schedulers {
		name, mk := name, mk
		b.Run(name, func(b *testing.B) {
			reportRun(b, func(seed uint64) float64 {
				res, err := core.Run(c.Proto, n, core.Options{
					Seed:      seed,
					Detector:  c.Detector,
					Scheduler: mk(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("no convergence")
				}
				return float64(res.ConvergenceTime)
			}, 0)
		})
	}
}

func BenchmarkAblationDetection(b *testing.B) {
	c := protocols.CycleCover()
	const n = 64
	detectors := map[string]core.Detector{
		"predicate-per-step": c.Detector,
		"quiescence-scan":    core.QuiescenceDetector(),
	}
	for name, det := range detectors {
		name, det := name, det
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(c.Proto, n, core.Options{Seed: uint64(i) + 1, Detector: det})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("no convergence")
				}
			}
		})
	}
}

func BenchmarkAblationMergeVsSteal(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    protocols.Constructor
	}{
		{"merge(simple)", protocols.SimpleGlobalLine()},
		{"steal(fast)", protocols.FastGlobalLine()},
	} {
		tc := tc
		for _, n := range []int{12, 20} {
			n := n
			b.Run(fmt.Sprintf("%s/n=%d", tc.name, n), func(b *testing.B) {
				reportRun(b, func(seed uint64) float64 {
					res, err := core.Run(tc.c.Proto, n, core.Options{Seed: seed, Detector: tc.c.Detector})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatal("no convergence")
					}
					return float64(res.ConvergenceTime)
				}, 0)
			})
		}
	}
}

func BenchmarkGeometric(b *testing.B) {
	for _, s := range []int{3, 4, 5} {
		s := s
		b.Run(fmt.Sprintf("square/s=%d", s), func(b *testing.B) {
			reportRun(b, func(seed uint64) float64 {
				res, err := geometric.BuildRectangle(s, s, s*s+s, seed, 0)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("no convergence")
				}
				return float64(res.Steps)
			}, 0)
		})
	}
}

func BenchmarkDeterministicConstruct(b *testing.B) {
	b.Run("remark2-ring/n=16", func(b *testing.B) {
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.DeterministicConstruct(universal.RingBuilder(), 16, seed)
			if err != nil {
				b.Fatal(err)
			}
			return float64(res.Steps)
		}, 0)
	})
	b.Run("randomized-connected/n=16", func(b *testing.B) {
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.LinearWasteHalf(tm.Connected(), 16, seed)
			if err != nil {
				b.Fatal(err)
			}
			return float64(res.Steps)
		}, 0)
	})
}
