package netcons_test

// The benchmark harness regenerates the paper's evaluation:
//
//   - BenchmarkTable1/*       — the seven Section 3.3 processes, one
//     sub-benchmark per (process, n) cell, reporting steps/op and the
//     analytic expectation as ratio-to-theory;
//   - BenchmarkTable2/*       — the Sections 4–5 protocols, reporting
//     the paper's convergence time (last output change);
//   - BenchmarkLowerBounds/*  — the Theorem 1 matching protocol;
//   - BenchmarkFasterVsFast   — the Section 7 experimental comparison;
//   - BenchmarkUniversal/*    — the Section 6 generic constructors;
//   - BenchmarkEngine/*       — raw simulator throughput
//     (interactions/sec);
//   - BenchmarkFastVsBaseline — fast-engine vs baseline-loop wall
//     clock on Simple-Global-Line up to n=1024 (engine_bench_test.go).
//
// Convergence times are reported via b.ReportMetric as "steps/op"
// (model interactions, the unit the paper analyzes); wall-clock ns/op
// is incidental.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/tm"
	"repro/internal/universal"
)

func reportRun(b *testing.B, run func(seed uint64) float64, expected float64) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		total += run(uint64(i) + 1)
	}
	mean := total / float64(b.N)
	b.ReportMetric(mean, "steps/op")
	if expected > 0 {
		b.ReportMetric(mean/expected, "ratio-to-theory")
	}
}

func BenchmarkTable1(b *testing.B) {
	sizes := []int{32, 64, 128}
	for _, proc := range processes.All() {
		proc := proc
		needsOneA := proc.Proto.Name() == "One-Way-Epidemic" || proc.Proto.Name() == "Meet-Everybody"
		for _, n := range sizes {
			n := n
			b.Run(fmt.Sprintf("%s/n=%d", proc.Proto.Name(), n), func(b *testing.B) {
				reportRun(b, func(seed uint64) float64 {
					opts := core.Options{Seed: seed, Detector: proc.Detector}
					if needsOneA {
						initial, err := processes.InitialWithOneA(proc.Proto, n)
						if err != nil {
							b.Fatal(err)
						}
						opts.Initial = initial
					}
					res, err := core.Run(proc.Proto, n, opts)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatalf("n=%d did not converge", n)
					}
					return float64(res.Steps)
				}, proc.Expected(n))
			})
		}
	}
}

func benchProtocol(b *testing.B, c protocols.Constructor, sizes []int) {
	b.Helper()
	for _, n := range sizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			reportRun(b, func(seed uint64) float64 {
				res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatalf("n=%d did not converge", n)
				}
				return float64(res.ConvergenceTime)
			}, 0)
		})
	}
}

func BenchmarkTable2(b *testing.B) {
	b.Run("SimpleGlobalLine", func(b *testing.B) {
		benchProtocol(b, protocols.SimpleGlobalLine(), []int{8, 16, 24})
	})
	b.Run("FastGlobalLine", func(b *testing.B) {
		benchProtocol(b, protocols.FastGlobalLine(), []int{16, 32, 48})
	})
	b.Run("CycleCover", func(b *testing.B) {
		benchProtocol(b, protocols.CycleCover(), []int{32, 64, 128})
	})
	b.Run("GlobalStar", func(b *testing.B) {
		benchProtocol(b, protocols.GlobalStar(), []int{32, 64, 128})
	})
	b.Run("GlobalRing", func(b *testing.B) {
		benchProtocol(b, protocols.GlobalRing(), []int{6, 9, 12})
	})
	b.Run("TwoRC", func(b *testing.B) {
		benchProtocol(b, protocols.TwoRC(), []int{6, 9, 12})
	})
	b.Run("KRC", func(b *testing.B) {
		krc, err := protocols.KRC(3)
		if err != nil {
			b.Fatal(err)
		}
		benchProtocol(b, krc, []int{8, 10, 12})
	})
	b.Run("CCliques", func(b *testing.B) {
		cl, err := protocols.CCliques(3)
		if err != nil {
			b.Fatal(err)
		}
		benchProtocol(b, cl, []int{9, 12})
	})
	b.Run("GraphReplication", func(b *testing.B) {
		c := protocols.GraphReplication()
		for _, n := range []int{8, 12, 16} {
			n := n
			g1 := graph.Ring(n / 2)
			det := protocols.ReplicationDetector(g1)
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				reportRun(b, func(seed uint64) float64 {
					initial, err := protocols.ReplicationInitial(c.Proto, g1, n)
					if err != nil {
						b.Fatal(err)
					}
					res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: det, Initial: initial})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatalf("n=%d did not converge", n)
					}
					return float64(res.ConvergenceTime)
				}, 0)
			})
		}
	})
}

func BenchmarkLowerBounds(b *testing.B) {
	// Theorem 1: the 2-state spanning-net protocol matches the
	// Ω(n log n) generic lower bound (it is a node cover).
	b.Run("SpanningNet", func(b *testing.B) {
		c := protocols.SpanningNet()
		nodeCover := processes.NodeCover()
		for _, n := range []int{32, 64, 128, 256} {
			n := n
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				reportRun(b, func(seed uint64) float64 {
					res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatalf("n=%d did not converge", n)
					}
					return float64(res.Steps)
				}, nodeCover.Expected(n))
			})
		}
	})
}

func BenchmarkFasterVsFast(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    protocols.Constructor
	}{
		{"Fast", protocols.FastGlobalLine()},
		{"Faster", protocols.FasterGlobalLine()},
	} {
		tc := tc
		for _, n := range []int{16, 32, 48, 64} {
			n := n
			b.Run(fmt.Sprintf("%s/n=%d", tc.name, n), func(b *testing.B) {
				reportRun(b, func(seed uint64) float64 {
					res, err := core.Run(tc.c.Proto, n, core.Options{Seed: seed, Detector: tc.c.Detector})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatalf("n=%d did not converge", n)
					}
					return float64(res.ConvergenceTime)
				}, 0)
			})
		}
	}
}

func BenchmarkUniversal(b *testing.B) {
	b.Run("LinearWasteHalf/connected/n=16", func(b *testing.B) {
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.LinearWasteHalf(tm.Connected(), 16, seed)
			if err != nil {
				b.Fatal(err)
			}
			return float64(res.Steps)
		}, 0)
	})
	b.Run("LinearWasteThird/even-edges/n=18", func(b *testing.B) {
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.LinearWasteThird(tm.EvenEdges(), 18, seed)
			if err != nil {
				b.Fatal(err)
			}
			return float64(res.Steps)
		}, 0)
	})
	b.Run("LogWaste/has-edge/n=24", func(b *testing.B) {
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.LogWaste(tm.HasEdge(), 24, seed)
			if err != nil {
				b.Fatal(err)
			}
			return float64(res.Steps)
		}, 0)
	})
	b.Run("ConnectivityTime/n=20", func(b *testing.B) {
		// Remark 1: connectivity holds a.a.s. in G(k, 1/2), so the
		// retry loop runs O(1) times in expectation.
		var attempts float64
		var runs int
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.LinearWasteHalf(tm.Connected(), 20, seed)
			if err != nil {
				b.Fatal(err)
			}
			attempts += float64(res.Attempts)
			runs++
			return float64(res.Steps)
		}, 0)
		if runs > 0 {
			b.ReportMetric(attempts/float64(runs), "attempts/op")
		}
	})
	b.Run("Supernodes/n=256", func(b *testing.B) {
		reportRun(b, func(seed uint64) float64 {
			res, err := universal.Supernodes(256, seed)
			if err != nil {
				b.Fatal(err)
			}
			return float64(res.Steps)
		}, 0)
	})
}

// BenchmarkEngine measures raw simulator throughput: interactions per
// second on a protocol that never stabilizes within the budget
// (edge cover on a large population), isolating engine overhead.
func BenchmarkEngine(b *testing.B) {
	proc := processes.EdgeCover()
	for _, n := range []int{64, 256} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(proc.Proto, n, core.Options{
					Seed:     uint64(i) + 1,
					Detector: proc.Detector,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "interactions/s")
		})
	}
}
