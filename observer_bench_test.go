package netcons_test

// Telemetry-cost benchmarks for the structured event stream.
//
// BenchmarkObserverOff re-runs the alloc=workspace rows of
// BenchmarkCampaignThroughput with the telemetry plumbing compiled in
// but no sink attached — the configuration every campaign trial runs
// in. Comparing its trials/s against the matching BENCH_campaign.json
// rows bounds the cost of the nil-check instrumentation on the hot
// path (the budget is ≤2%).
//
// BenchmarkEventStream prices the stream when it is on: the same run
// with no sink, a bounded in-memory ring, and NDJSON encoding to
// io.Discard.
//
//	go test -bench 'BenchmarkObserverOff|BenchmarkEventStream' -benchtime 3x -benchmem

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/trace"
)

func BenchmarkObserverOff(b *testing.B) {
	const trials = 32
	for _, n := range []int{512, 2048} {
		cc := protocols.CycleCover()
		points := []campaign.Point{{
			Protocol: "cycle-cover",
			N:        n,
			Trials:   trials,
			BaseSeed: 1,
			Proto:    cc.Proto,
			Detector: cc.Detector,
			Engine:   core.EngineFast,
			// Same fixed budget as BenchmarkCampaignThroughput: the
			// trials stay in the setup-dominated steady state and the
			// deterministic cut keeps rows comparable.
			MaxSteps:           64,
			IncludeUnconverged: true,
			Metric:             campaign.MetricEffectiveSteps,
		}}
		b.Run(fmt.Sprintf("n=%d/alloc=workspace/events=off", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := campaign.Execute(context.Background(), points, campaign.Options{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				// Budget exhaustion is the expected outcome here (the
				// fixed 64-step cut); only execution errors are failures.
				if agg := out.Aggregates[0]; agg.Trials != trials {
					b.Fatalf("ran %d trials, want %d: %+v", agg.Trials, trials, agg)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

func BenchmarkEventStream(b *testing.B) {
	c := protocols.SimpleGlobalLine()
	ws := core.NewWorkspace()
	run := func(b *testing.B, events core.EventSink) core.Result {
		res, err := core.Run(c.Proto, 128, core.Options{
			Seed:      1,
			Engine:    core.EngineFast,
			Detector:  c.Detector,
			Workspace: ws,
			Events:    events,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("sink=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("sink=ring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, trace.NewRing(1024))
		}
	})
	b.Run("sink=ndjson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, trace.NewNDJSON(io.Discard))
		}
	})
}
