// Package trace records execution snapshots for reproducing the
// paper's illustrative figures: configurations at chosen milestones
// rendered as Graphviz DOT (Figs. 1, 2, 4, 7) and phase/event traces
// (Figs. 3, 5, 6, 8).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// Snapshot is one recorded configuration.
type Snapshot struct {
	Step   int64
	Labels []string // per-node state names
	Graph  *graph.Graph
}

// DOT renders the snapshot.
func (s Snapshot) DOT(name string) string {
	return s.Graph.DOT(fmt.Sprintf("%s_step%d", name, s.Step), s.Labels)
}

// Recorder is a core.Observer that keeps snapshots at the requested
// fractions of edge events — e.g. {0, 0.5, 1} reproduces the
// initial / intermediate / stable triptych of Fig. 1. Because the
// total number of edge events is not known in advance, the recorder
// keeps every k-th snapshot, doubling k as needed (a standard
// reservoir-style thinning), and Select picks the nearest snapshot per
// fraction afterwards.
type Recorder struct {
	every     int64
	seen      int64
	snapshots []Snapshot
	limit     int
}

var (
	_ core.Observer  = (*Recorder)(nil)
	_ core.EventSink = (*Recorder)(nil)
)

// NewRecorder returns a Recorder keeping at most limit snapshots
// (minimum 8).
func NewRecorder(limit int) *Recorder {
	if limit < 8 {
		limit = 8
	}
	return &Recorder{every: 1, limit: limit}
}

// Event implements core.EventSink, so a Recorder can be attached via
// Options.Events instead of Options.Observer. Snapshots are keyed on
// graph changes: effective steps that flipped an edge and out-of-band
// fault edge writes feed the thinning reservoir, and the run-end event
// records the terminal configuration — so callers no longer need to
// call Final themselves. Skip batches and detector verdicts carry no
// configuration change and are ignored.
func (r *Recorder) Event(ev *core.Event) {
	switch ev.Kind {
	case core.EventStep:
		r.ObserveStep(ev.Step, ev.U, ev.V, ev.EdgeChanged, ev.Cfg)
	case core.EventFaultEdge:
		r.ObserveStep(ev.Step, ev.U, ev.V, true, ev.Cfg)
	case core.EventRunEnd:
		r.Final(ev.Step, ev.Cfg)
	}
}

// ObserveStep implements core.Observer.
func (r *Recorder) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
	if !edgeChanged {
		return
	}
	r.seen++
	if r.seen%r.every != 0 {
		return
	}
	r.snapshots = append(r.snapshots, snapshotOf(step, cfg))
	if len(r.snapshots) >= r.limit {
		// Thin by half and double the stride.
		kept := r.snapshots[:0]
		for i, s := range r.snapshots {
			if i%2 == 0 {
				kept = append(kept, s)
			}
		}
		r.snapshots = kept
		r.every *= 2
	}
}

func snapshotOf(step int64, cfg *core.Config) Snapshot {
	labels := make([]string, cfg.N())
	p := cfg.Protocol()
	for u := 0; u < cfg.N(); u++ {
		labels[u] = p.StateName(cfg.Node(u))
	}
	return Snapshot{
		Step:   step,
		Labels: labels,
		Graph:  graph.FromPairs(cfg.N(), cfg.Edge),
	}
}

// Final records the terminal configuration explicitly (the engine only
// reports effective steps, so a run's last state is appended here).
func (r *Recorder) Final(step int64, cfg *core.Config) {
	r.snapshots = append(r.snapshots, snapshotOf(step, cfg))
}

// Select returns the snapshots nearest to the requested fractions of
// the recorded run (0 = first event, 1 = last).
func (r *Recorder) Select(fractions []float64) []Snapshot {
	if len(r.snapshots) == 0 {
		return nil
	}
	out := make([]Snapshot, 0, len(fractions))
	for _, f := range fractions {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		idx := int(f * float64(len(r.snapshots)-1))
		out = append(out, r.snapshots[idx])
	}
	return out
}

// Len returns the number of retained snapshots.
func (r *Recorder) Len() int { return len(r.snapshots) }

// EventLog collects printable one-line events (phase transitions, TM
// operations) for the trace-style figures.
type EventLog struct {
	lines []string
}

// Addf appends a formatted event.
func (l *EventLog) Addf(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// String renders the log.
func (l *EventLog) String() string { return strings.Join(l.lines, "\n") }

// Len returns the number of events.
func (l *EventLog) Len() int { return len(l.lines) }
