package trace

import "repro/internal/core"

// Ring is a fixed-capacity in-memory core.EventSink keeping the most
// recent events — the cheap way for tests (and post-mortem debugging)
// to inspect the tail of a run's stream without holding all of it.
// Events are copied by value with Cfg stripped, honoring the sink
// contract that the engine's scratch record and live configuration
// must not be retained.
type Ring struct {
	buf   []core.Event
	next  int
	total int64
}

var _ core.EventSink = (*Ring)(nil)

// NewRing returns a ring keeping the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]core.Event, 0, capacity)}
}

// Event implements core.EventSink.
func (r *Ring) Event(ev *core.Event) {
	e := *ev
	e.Cfg = nil
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Total returns the number of events observed, including those already
// overwritten.
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []core.Event {
	out := make([]core.Event, 0, len(r.buf))
	if r.total > int64(len(r.buf)) {
		// Buffer is full and wrapped: r.next is the oldest slot.
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}
