package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
)

// SchemaVersion is the NDJSON stream schema version, written on every
// run's start record. Bump it when a record shape changes
// incompatibly; consumers should reject versions they don't know.
const SchemaVersion = 1

// NDJSON is a core.EventSink that writes one JSON record per line —
// the stream format of `netsim -trace`. The records are deterministic
// in the run parameters (no wall-clock content), so equal runs produce
// byte-identical streams, which is what the golden schema test pins.
//
// Record shapes (fields in written order; schema only on "start"):
//
//	{"schema":1,"kind":"start","protocol":"…","n":…,"seed":…,
//	    "engine":"…","max_steps":…,"states":["…",…]}
//	{"kind":"step","step":…,"u":…,"v":…,"bu":…,"bv":…,"au":…,"av":…}
//	    — plus "edge":bool when the step flipped the edge {u, v}
//	{"kind":"skip","step":…,"count":…}   — count draws starting at step
//	{"kind":"fault","step":…,"fault":"…","u":…,"v":…}   — v −1 when absent
//	{"kind":"fault_node","step":…,"u":…,"bu":…,"au":…}
//	{"kind":"fault_edge","step":…,"u":…,"v":…,"edge":bool}
//	{"kind":"detect","step":…,"stable":bool}
//	{"kind":"end","step":…,"converged":bool,"effective":…,
//	    "edge_changes":…,"convergence_time":…}
//
// Node-state fields (bu/bv/au/av) are state indices into the start
// record's "states" name table. Encoding is hand-rolled appends into a
// reused buffer, so a sink adds no per-event allocation to a run.
//
// Errors are sticky: the first write error stops all further output
// and is reported by Flush (and Err).
type NDJSON struct {
	w   *bufio.Writer
	buf []byte
	err error
}

var _ core.EventSink = (*NDJSON)(nil)

// NewNDJSON returns an NDJSON sink writing to w. Call Flush when the
// run is done.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// Event implements core.EventSink.
func (s *NDJSON) Event(ev *core.Event) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	switch ev.Kind {
	case core.EventRunStart:
		b = append(b, `{"schema":`...)
		b = appendInt(b, SchemaVersion)
		b = append(b, `,"kind":"start","protocol":`...)
		b = appendString(b, ev.Protocol)
		b = append(b, `,"n":`...)
		b = appendInt(b, int64(ev.N))
		b = append(b, `,"seed":`...)
		b = appendUint(b, ev.Seed)
		b = append(b, `,"engine":`...)
		b = appendString(b, ev.Engine.String())
		b = append(b, `,"max_steps":`...)
		b = appendInt(b, ev.MaxSteps)
		b = append(b, `,"states":[`...)
		if ev.Cfg != nil {
			for i, name := range ev.Cfg.Protocol().States() {
				if i > 0 {
					b = append(b, ',')
				}
				b = appendString(b, name)
			}
		}
		b = append(b, ']')
	case core.EventStep:
		b = append(b, `{"kind":"step","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"u":`...)
		b = appendInt(b, int64(ev.U))
		b = append(b, `,"v":`...)
		b = appendInt(b, int64(ev.V))
		b = append(b, `,"bu":`...)
		b = appendInt(b, int64(ev.BeforeU))
		b = append(b, `,"bv":`...)
		b = appendInt(b, int64(ev.BeforeV))
		b = append(b, `,"au":`...)
		b = appendInt(b, int64(ev.AfterU))
		b = append(b, `,"av":`...)
		b = appendInt(b, int64(ev.AfterV))
		if ev.EdgeChanged {
			b = append(b, `,"edge":`...)
			b = appendBool(b, ev.Edge)
		}
	case core.EventSkip:
		b = append(b, `{"kind":"skip","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"count":`...)
		b = appendInt(b, ev.Skipped)
	case core.EventFaultFired:
		b = append(b, `{"kind":"fault","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"fault":`...)
		b = appendString(b, ev.Label)
		b = append(b, `,"u":`...)
		b = appendInt(b, int64(ev.U))
		b = append(b, `,"v":`...)
		b = appendInt(b, int64(ev.V))
	case core.EventFaultNode:
		b = append(b, `{"kind":"fault_node","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"u":`...)
		b = appendInt(b, int64(ev.U))
		b = append(b, `,"bu":`...)
		b = appendInt(b, int64(ev.BeforeU))
		b = append(b, `,"au":`...)
		b = appendInt(b, int64(ev.AfterU))
	case core.EventFaultEdge:
		b = append(b, `{"kind":"fault_edge","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"u":`...)
		b = appendInt(b, int64(ev.U))
		b = append(b, `,"v":`...)
		b = appendInt(b, int64(ev.V))
		b = append(b, `,"edge":`...)
		b = appendBool(b, ev.Edge)
	case core.EventDetect:
		b = append(b, `{"kind":"detect","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"stable":`...)
		b = appendBool(b, ev.Stable)
	case core.EventRunEnd:
		b = append(b, `{"kind":"end","step":`...)
		b = appendInt(b, ev.Step)
		b = append(b, `,"converged":`...)
		b = appendBool(b, ev.Converged)
		b = append(b, `,"effective":`...)
		b = appendInt(b, ev.EffectiveSteps)
		b = append(b, `,"edge_changes":`...)
		b = appendInt(b, ev.EdgeChanges)
		b = append(b, `,"convergence_time":`...)
		b = appendInt(b, ev.ConvergenceTime)
	default:
		s.buf = b
		return // unknown kinds are dropped, not corrupted into the stream
	}
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Flush drains the sink's buffer and returns the first error the sink
// hit, if any.
func (s *NDJSON) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the sink's sticky error without flushing.
func (s *NDJSON) Err() error { return s.err }

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		return appendUint(b, uint64(-v))
	}
	return appendUint(b, uint64(v))
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendString appends s as a JSON string literal. Only the escapes
// JSON requires are applied (quote, backslash, control characters);
// everything else — including multi-byte UTF-8 — passes through
// verbatim, which JSON allows.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// Record is one decoded NDJSON stream record. Fields that must be
// distinguishable from their zero value when absent (state indices,
// edge states, verdicts) are pointers; everything else decodes to its
// zero value when the record kind doesn't carry it.
type Record struct {
	Schema          int      `json:"schema,omitempty"`
	Kind            string   `json:"kind"`
	Step            int64    `json:"step,omitempty"`
	Protocol        string   `json:"protocol,omitempty"`
	N               int      `json:"n,omitempty"`
	Seed            uint64   `json:"seed,omitempty"`
	Engine          string   `json:"engine,omitempty"`
	MaxSteps        int64    `json:"max_steps,omitempty"`
	States          []string `json:"states,omitempty"`
	U               int      `json:"u,omitempty"`
	V               int      `json:"v,omitempty"`
	BU              *int     `json:"bu,omitempty"`
	BV              *int     `json:"bv,omitempty"`
	AU              *int     `json:"au,omitempty"`
	AV              *int     `json:"av,omitempty"`
	Edge            *bool    `json:"edge,omitempty"`
	Count           int64    `json:"count,omitempty"`
	Fault           string   `json:"fault,omitempty"`
	Stable          *bool    `json:"stable,omitempty"`
	Converged       *bool    `json:"converged,omitempty"`
	Effective       int64    `json:"effective,omitempty"`
	EdgeChanges     int64    `json:"edge_changes,omitempty"`
	ConvergenceTime int64    `json:"convergence_time,omitempty"`
}

// ReadRecords decodes an NDJSON stream (blank lines ignored). It
// rejects streams whose start record carries an unknown schema
// version.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Kind == "start" && rec.Schema != SchemaVersion {
			return nil, fmt.Errorf("trace: line %d: unknown schema version %d (want %d)", line, rec.Schema, SchemaVersion)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return recs, nil
}

// Replay applies a decoded event stream to a copy of the start
// configuration and returns the resulting configuration: step records
// write both endpoint states (and the edge when it flipped), and fault
// records write the out-of-band mutations. Because every
// configuration-changing event is in the stream — skipped draws by
// definition change nothing — the result equals the run's final
// configuration exactly.
func Replay(start *core.Config, recs []Record) (*core.Config, error) {
	cfg := start.Clone()
	n := cfg.N()
	check := func(i int, u int) error {
		if u < 0 || u >= n {
			return fmt.Errorf("trace: record %d: node %d outside population of %d", i, u, n)
		}
		return nil
	}
	for i, rec := range recs {
		switch rec.Kind {
		case "step":
			if rec.AU == nil || rec.AV == nil {
				return nil, fmt.Errorf("trace: record %d: step without au/av", i)
			}
			if err := check(i, rec.U); err != nil {
				return nil, err
			}
			if err := check(i, rec.V); err != nil {
				return nil, err
			}
			cfg.SetNode(rec.U, core.State(*rec.AU))
			cfg.SetNode(rec.V, core.State(*rec.AV))
			if rec.Edge != nil {
				cfg.SetEdge(rec.U, rec.V, *rec.Edge)
			}
		case "fault_node":
			if rec.AU == nil {
				return nil, fmt.Errorf("trace: record %d: fault_node without au", i)
			}
			if err := check(i, rec.U); err != nil {
				return nil, err
			}
			cfg.SetNode(rec.U, core.State(*rec.AU))
		case "fault_edge":
			if rec.Edge == nil {
				return nil, fmt.Errorf("trace: record %d: fault_edge without edge", i)
			}
			if err := check(i, rec.U); err != nil {
				return nil, err
			}
			if err := check(i, rec.V); err != nil {
				return nil, err
			}
			cfg.SetEdge(rec.U, rec.V, *rec.Edge)
		}
	}
	return cfg, nil
}
