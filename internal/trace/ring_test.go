package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

func TestRingWrapAround(t *testing.T) {
	t.Parallel()
	r := NewRing(4)
	cfg := core.NewConfig(protocols.GlobalStar().Proto, 2)
	for step := int64(1); step <= 10; step++ {
		r.Event(&core.Event{Kind: core.EventStep, Step: step, Cfg: cfg})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("kept %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(7 + i); e.Step != want {
			t.Fatalf("event %d has step %d, want %d (oldest first)", i, e.Step, want)
		}
		if e.Cfg != nil {
			t.Fatal("ring retained the live Cfg pointer")
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	t.Parallel()
	r := NewRing(8)
	for step := int64(1); step <= 3; step++ {
		r.Event(&core.Event{Kind: core.EventDetect, Step: step})
	}
	got := r.Events()
	if len(got) != 3 || got[0].Step != 1 || got[2].Step != 3 {
		t.Fatalf("partial ring returned %+v", got)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	t.Parallel()
	r := NewRing(0)
	r.Event(&core.Event{Kind: core.EventDetect, Step: 1})
	r.Event(&core.Event{Kind: core.EventDetect, Step: 2})
	got := r.Events()
	if len(got) != 1 || got[0].Step != 2 {
		t.Fatalf("zero-capacity ring returned %+v", got)
	}
}
