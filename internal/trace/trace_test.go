package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

func TestRecorderCapturesRun(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalStar()
	rec := NewRecorder(64)
	res, err := core.Run(c.Proto, 20, core.Options{Seed: 1, Detector: c.Detector, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.Final(res.Steps, res.Final)
	if rec.Len() < 3 {
		t.Fatalf("only %d snapshots", rec.Len())
	}
	shots := rec.Select([]float64{0, 0.5, 1})
	if len(shots) != 3 {
		t.Fatalf("selected %d", len(shots))
	}
	if shots[0].Step > shots[2].Step {
		t.Fatal("snapshots out of order")
	}
	if !shots[2].Graph.IsSpanningStar() {
		t.Fatalf("final snapshot %v is not the stable star", shots[2].Graph)
	}
	if len(shots[0].Labels) != 20 {
		t.Fatalf("labels %v", shots[0].Labels)
	}
}

// TestRecorderOnEventStream attaches the Recorder as a core.EventSink
// instead of an Observer: the run-end event must record the terminal
// configuration without an explicit Final call, and snapshot selection
// must behave exactly as in the observer path — including on the fast
// engine, whose stream interleaves skip batches with the step events.
func TestRecorderOnEventStream(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalStar()
	rec := NewRecorder(64)
	res, err := core.Run(c.Proto, 20, core.Options{Seed: 1, Engine: core.EngineFast, Detector: c.Detector, Events: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if rec.Len() < 3 {
		t.Fatalf("only %d snapshots", rec.Len())
	}
	shots := rec.Select([]float64{0, 1})
	if !shots[1].Graph.IsSpanningStar() {
		t.Fatalf("final snapshot %v is not the stable star", shots[1].Graph)
	}
	if shots[1].Step != res.Steps {
		t.Fatalf("final snapshot at step %d, run ended at %d", shots[1].Step, res.Steps)
	}
}

// TestRecorderLimitFloor pins the documented minimum: limits below 8
// are clamped rather than honored, so thinning always has room to keep
// a usable run outline.
func TestRecorderLimitFloor(t *testing.T) {
	t.Parallel()
	c := protocols.CycleCover()
	rec := NewRecorder(2)
	if _, err := core.Run(c.Proto, 60, core.Options{Seed: 5, Detector: c.Detector, Events: rec}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 || rec.Len() > 8 {
		t.Fatalf("recorder with limit 2 kept %d snapshots, want 1..8", rec.Len())
	}
}

func TestRecorderThinningBoundsMemory(t *testing.T) {
	t.Parallel()
	c := protocols.CycleCover()
	rec := NewRecorder(8)
	if _, err := core.Run(c.Proto, 60, core.Options{Seed: 2, Detector: c.Detector, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() > 8 {
		t.Fatalf("recorder kept %d snapshots, limit 8", rec.Len())
	}
	if rec.Len() == 0 {
		t.Fatal("recorder kept nothing")
	}
}

func TestRecorderSelectClamps(t *testing.T) {
	t.Parallel()
	rec := NewRecorder(8)
	if got := rec.Select([]float64{0.5}); got != nil {
		t.Fatal("empty recorder returned snapshots")
	}
	c := protocols.GlobalStar()
	res, err := core.Run(c.Proto, 8, core.Options{Seed: 3, Detector: c.Detector, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.Final(res.Steps, res.Final)
	shots := rec.Select([]float64{-1, 2})
	if len(shots) != 2 || shots[0].Step > shots[1].Step {
		t.Fatalf("clamped selection wrong: %+v", shots)
	}
}

func TestSnapshotDOT(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalStar()
	rec := NewRecorder(8)
	res, err := core.Run(c.Proto, 6, core.Options{Seed: 4, Detector: c.Detector, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.Final(res.Steps, res.Final)
	dot := rec.Select([]float64{1})[0].DOT("star")
	if !strings.Contains(dot, "graph") || !strings.Contains(dot, "--") {
		t.Fatalf("DOT output malformed:\n%s", dot)
	}
}

func TestEventLog(t *testing.T) {
	t.Parallel()
	var log EventLog
	if log.Len() != 0 || log.String() != "" {
		t.Fatal("fresh log not empty")
	}
	log.Addf("phase %d: %s", 1, "partition")
	log.Addf("phase %d: %s", 2, "line")
	if log.Len() != 2 {
		t.Fatalf("len %d", log.Len())
	}
	s := log.String()
	if !strings.Contains(s, "phase 1: partition") || !strings.Contains(s, "\n") {
		t.Fatalf("log %q", s)
	}
}
