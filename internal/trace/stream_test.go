package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden NDJSON files")

// traceRun executes one run with an NDJSON sink attached and returns
// the stream bytes plus the run result.
func traceRun(t *testing.T, p *core.Protocol, n int, opts core.Options) ([]byte, core.Result) {
	t.Helper()
	var buf bytes.Buffer
	sink := NewNDJSON(&buf)
	opts.Events = sink
	res, err := core.Run(p, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestNDJSONReplayRecoversFinalConfig is the stream's acceptance
// criterion: decoding a Simple-Global-Line run's NDJSON trace and
// replaying it over the initial configuration must reproduce the exact
// final configuration — including out-of-band fault writes.
func TestNDJSONReplayRecoversFinalConfig(t *testing.T) {
	t.Parallel()
	c := protocols.SimpleGlobalLine()
	plan, err := scenario.ParsePlan("crash@400,edge@0.002")
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := plan.Prepare(c.Proto)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []core.Engine{core.EngineBaseline, core.EngineFast, core.EngineSparse} {
		stream, res := traceRun(t, prepared.Proto, 24, core.Options{
			Seed:     6,
			Engine:   eng,
			Detector: core.QuiescenceDetector(),
			Injector: prepared.NewInjection(6),
			MaxSteps: 200_000,
		})
		recs, err := ReadRecords(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if recs[0].Kind != "start" || recs[0].Schema != SchemaVersion {
			t.Fatalf("%s: bad start record %+v", eng, recs[0])
		}
		replayed, err := Replay(core.NewConfig(prepared.Proto, 24), recs)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if replayed.Fingerprint() != res.Final.Fingerprint() {
			t.Fatalf("%s: replayed configuration does not match the run's final configuration", eng)
		}
	}
}

// TestNDJSONByteIdentical pins the determinism the format promises: no
// record carries wall-clock content, so equal runs yield byte-identical
// streams.
func TestNDJSONByteIdentical(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalStar()
	opts := core.Options{Seed: 2, Engine: core.EngineFast, Detector: c.Detector}
	a, _ := traceRun(t, c.Proto, 16, opts)
	b, _ := traceRun(t, c.Proto, 16, opts)
	if !bytes.Equal(a, b) {
		t.Fatal("equal runs produced different NDJSON streams")
	}
}

// TestNDJSONGoldenSchema compares a small fixed run's stream against a
// checked-in golden file, so any accidental record-shape change fails
// CI. Regenerate deliberately with `go test ./internal/trace -update`
// (and bump SchemaVersion if the change is incompatible).
func TestNDJSONGoldenSchema(t *testing.T) {
	c := protocols.GlobalStar()
	stream, res := traceRun(t, c.Proto, 8, core.Options{Seed: 1, Engine: core.EngineFast, Detector: c.Detector})
	if !res.Converged {
		t.Fatal("golden run did not converge")
	}
	golden := filepath.Join("testdata", "star_n8_seed1.ndjson")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stream, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatalf("NDJSON stream diverged from %s (rerun with -update if the schema change is deliberate)\ngot:\n%s\nwant:\n%s",
			golden, stream, want)
	}
}

// TestReadRecordsRejectsUnknownSchema guards the versioning contract.
func TestReadRecordsRejectsUnknownSchema(t *testing.T) {
	t.Parallel()
	in := `{"schema":99,"kind":"start","protocol":"x","n":2,"seed":1}` + "\n"
	if _, err := ReadRecords(strings.NewReader(in)); err == nil {
		t.Fatal("unknown schema version accepted")
	}
	if _, err := ReadRecords(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestNDJSONStringEscaping exercises the hand-rolled string encoder on
// names JSON requires escaping for.
func TestNDJSONStringEscaping(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	s.Event(&core.Event{Kind: core.EventFaultFired, Step: 1, Label: "a\"b\\c\nd\x01e", U: 0, V: -1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Fault != "a\"b\\c\nd\x01e" {
		t.Fatalf("label round-tripped as %q", recs[0].Fault)
	}
}
