package protocols

import "repro/internal/core"

// Simple-Global-Line state indices (Protocol 1).
const (
	sglQ0 core.State = iota
	sglQ1
	sglQ2
	sglL
	sglW
)

// SimpleGlobalLine returns Protocol 1, the 5-state spanning-line
// constructor: lines grow towards isolated nodes and merge endpoint to
// endpoint, after which an internal w-leader random-walks to an
// endpoint before the line may merge again. Expected time Ω(n⁴) and
// O(n⁵) (Theorem 3).
func SimpleGlobalLine() Constructor {
	p := core.MustProtocol(
		"Simple-Global-Line",
		[]string{"q0", "q1", "q2", "l", "w"},
		sglQ0,
		nil,
		[]core.Rule{
			{A: sglQ0, B: sglQ0, Edge: false, OutA: sglQ1, OutB: sglL, OutEdge: true},
			{A: sglL, B: sglQ0, Edge: false, OutA: sglQ2, OutB: sglL, OutEdge: true},
			{A: sglL, B: sglL, Edge: false, OutA: sglQ2, OutB: sglW, OutEdge: true},
			{A: sglW, B: sglQ2, Edge: true, OutA: sglQ2, OutB: sglW, OutEdge: true},
			{A: sglW, B: sglQ1, Edge: true, OutA: sglQ2, OutB: sglL, OutEdge: true},
		},
	)
	// Protocol 1 never deactivates an edge, so "the active graph is a
	// spanning line" is absorbing: once true it can never change (no
	// rule applies that activates further edges — there is no q0 left
	// and a unique leader). Gate on O(1) counts before the O(n) walk.
	det := core.Detector{
		Trigger: core.TriggerEdge,
		Stable: func(cfg *core.Config) bool {
			if cfg.N() == 1 {
				return true
			}
			if cfg.Count(sglQ0) != 0 || cfg.Count(sglL)+cfg.Count(sglW) != 1 {
				return false
			}
			return ActiveGraph(cfg).IsSpanningLine()
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "spanning line"}
}

// Fast-Global-Line state indices (Protocol 2).
const (
	fglQ0 core.State = iota
	fglQ1
	fglQ2
	fglQ2p // q2′
	fglL
	fglLp  // l′
	fglLpp // l″
	fglF0
	fglF1
)

// FastGlobalLine returns Protocol 2, the 9-state O(n³) spanning-line
// constructor: instead of merging, a winning line steals one node from
// the losing line and puts the loser to sleep (Theorem 4).
func FastGlobalLine() Constructor {
	p := core.MustProtocol(
		"Fast-Global-Line",
		[]string{"q0", "q1", "q2", "q2'", "l", "l'", "l''", "f0", "f1"},
		fglQ0,
		nil,
		[]core.Rule{
			{A: fglQ0, B: fglQ0, Edge: false, OutA: fglQ1, OutB: fglL, OutEdge: true},
			{A: fglL, B: fglQ0, Edge: false, OutA: fglQ2, OutB: fglL, OutEdge: true},
			{A: fglL, B: fglL, Edge: false, OutA: fglQ2p, OutB: fglLp, OutEdge: true},
			{A: fglLp, B: fglQ2, Edge: true, OutA: fglLpp, OutB: fglF1, OutEdge: false},
			{A: fglLp, B: fglQ1, Edge: true, OutA: fglLpp, OutB: fglF0, OutEdge: false},
			{A: fglLpp, B: fglQ2p, Edge: true, OutA: fglL, OutB: fglQ2, OutEdge: true},
			{A: fglL, B: fglF0, Edge: false, OutA: fglQ2, OutB: fglL, OutEdge: true},
			{A: fglL, B: fglF1, Edge: false, OutA: fglQ2p, OutB: fglLp, OutEdge: true},
		},
	)
	// Stable: a unique awake leader l on a spanning line with no
	// in-flight steal (l′/l″/q2′) and no sleeping material (f0/f1).
	// Such configurations are fully quiescent for Protocol 2.
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			if cfg.N() == 1 {
				return true
			}
			if cfg.Count(fglQ0) != 0 || cfg.Count(fglL) != 1 ||
				cfg.Count(fglLp) != 0 || cfg.Count(fglLpp) != 0 ||
				cfg.Count(fglQ2p) != 0 || cfg.Count(fglF0) != 0 || cfg.Count(fglF1) != 0 {
				return false
			}
			return ActiveGraph(cfg).IsSpanningLine()
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "spanning line"}
}

// Faster-Global-Line state indices (Protocol 10).
const (
	fstQ0 core.State = iota
	fstQ1
	fstQ2
	fstQ
	fstL
	fstF
)

// FasterGlobalLine returns Protocol 10, the 6-state variant from the
// paper's conclusions: a defeated leader's line dissolves itself node
// by node, releasing free nodes for the surviving leader to absorb.
// The paper reports experimental evidence that it improves on
// Fast-Global-Line; BenchmarkFasterVsFast reproduces that comparison.
func FasterGlobalLine() Constructor {
	p := core.MustProtocol(
		"Faster-Global-Line",
		[]string{"q0", "q1", "q2", "q", "l", "f"},
		fstQ0,
		nil,
		[]core.Rule{
			{A: fstQ0, B: fstQ0, Edge: false, OutA: fstQ1, OutB: fstL, OutEdge: true},
			{A: fstL, B: fstQ0, Edge: false, OutA: fstQ2, OutB: fstL, OutEdge: true},
			{A: fstL, B: fstQ, Edge: false, OutA: fstQ2, OutB: fstL, OutEdge: true},
			{A: fstL, B: fstL, Edge: false, OutA: fstL, OutB: fstF, OutEdge: false},
			{A: fstF, B: fstQ2, Edge: true, OutA: fstQ, OutB: fstF, OutEdge: false},
			{A: fstF, B: fstQ1, Edge: true, OutA: fstQ, OutB: fstQ, OutEdge: false},
		},
	)
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			if cfg.N() == 1 {
				return true
			}
			if cfg.Count(fstQ0) != 0 || cfg.Count(fstQ) != 0 ||
				cfg.Count(fstF) != 0 || cfg.Count(fstL) != 1 {
				return false
			}
			return ActiveGraph(cfg).IsSpanningLine()
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "spanning line"}
}

// SpanningNet state indices (Theorem 1's matching upper bound).
const (
	snA core.State = iota
	snB
)

// SpanningNet returns the 2-state protocol from Theorem 1 that
// constructs a spanning network (every node covered by an active edge)
// in Θ(n log n) expected time, matching the generic lower bound: it is
// a node cover that activates the corresponding edge on every
// conversion.
func SpanningNet() Constructor {
	p := core.MustProtocol(
		"Spanning-Net",
		[]string{"a", "b"},
		snA,
		nil,
		[]core.Rule{
			{A: snA, B: snA, Edge: false, OutA: snB, OutB: snB, OutEdge: true},
			{A: snA, B: snB, Edge: false, OutA: snB, OutB: snB, OutEdge: true},
		},
	)
	// Nodes in state a have never interacted and hold no active edges;
	// once no a remains, no rule applies and every node is covered.
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			return cfg.N() == 1 || cfg.Count(snA) == 0
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "spanning network"}
}
