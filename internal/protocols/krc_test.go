package protocols

import (
	"testing"

	"repro/internal/core"
)

func TestKRCParameterValidation(t *testing.T) {
	t.Parallel()
	if _, err := KRC(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := KRC(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KRC(200); err == nil {
		t.Fatal("state-budget overflow accepted")
	}
}

func TestKRCStateCount(t *testing.T) {
	t.Parallel()
	for k := 2; k <= 6; k++ {
		c, err := KRC(k)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := c.Proto.Size(), 2*(k+1); got != want {
			t.Fatalf("k=%d: %d states, paper says %d", k, got, want)
		}
	}
}

func TestTwoRCBuildsSpanningRing(t *testing.T) {
	t.Parallel()
	c := TwoRC()
	for _, n := range []int{3, 5, 8, 12} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d seed=%d: no convergence", n, seed)
			}
			if g := ActiveGraph(res.Final); !g.IsSpanningRing() {
				t.Fatalf("n=%d seed=%d: %v not a spanning ring", n, seed, g)
			}
		}
	}
}

// TestKRCTheorem11Guarantee: for k=3 and k=4, the stable network is
// connected and spanning with at least n−k+1 nodes of degree k and the
// low-degree residue within Theorem 11's bounds.
func TestKRCTheorem11Guarantee(t *testing.T) {
	t.Parallel()
	for _, k := range []int{3, 4} {
		k := k
		t.Run(string(rune('0'+k)), func(t *testing.T) {
			t.Parallel()
			c, err := KRC(k)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{k + 1, k + 3, 2 * (k + 2), 14} {
				for seed := uint64(1); seed <= 2; seed++ {
					res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("k=%d n=%d seed=%d: no convergence", k, n, seed)
					}
					g := ActiveGraph(res.Final)
					if !g.IsNearKRegularConnected(k) {
						t.Fatalf("k=%d n=%d: %v violates Theorem 11", k, n, g)
					}
					atK := 0
					for u := 0; u < n; u++ {
						if g.Degree(u) == k {
							atK++
						}
					}
					if atK < n-k+1 {
						t.Fatalf("k=%d n=%d: only %d nodes at degree k, want ≥ %d", k, n, atK, n-k+1)
					}
				}
			}
		})
	}
}

// TestKRCDegreeStateInvariant: throughout any execution, a node in qᵢ
// or lᵢ has active degree exactly i.
func TestKRCDegreeStateInvariant(t *testing.T) {
	t.Parallel()
	const k = 3
	c, err := KRC(k)
	if err != nil {
		t.Fatal(err)
	}
	degreeOf := func(name string) int {
		// "q2" → 2, "l3" → 3.
		d := 0
		for _, r := range name[1:] {
			d = d*10 + int(r-'0')
		}
		return d
	}
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		for _, node := range []int{u, v} {
			name := c.Proto.StateName(cfg.Node(node))
			if got, want := cfg.Degree(node), degreeOf(name); got != want {
				t.Fatalf("step %d: node %d in %s has degree %d", step, node, name, got)
			}
		}
	})
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := core.Run(c.Proto, 10, core.Options{Seed: seed, Detector: c.Detector, Observer: obs}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKRCMaxDegreeNeverExceedsK1: the transient l_{k+1} state is the
// only over-degree; no node ever exceeds k+1.
func TestKRCMaxDegreeNeverExceedsK1(t *testing.T) {
	t.Parallel()
	const k = 3
	c, err := KRC(k)
	if err != nil {
		t.Fatal(err)
	}
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		for _, node := range []int{u, v} {
			if cfg.Degree(node) > k+1 {
				t.Fatalf("step %d: node %d reached degree %d > k+1", step, node, cfg.Degree(node))
			}
		}
	})
	if _, err := core.Run(c.Proto, 12, core.Options{Seed: 6, Detector: c.Detector, Observer: obs}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoRCMatchesPaperProtocol6(t *testing.T) {
	t.Parallel()
	c := TwoRC()
	if got := c.Proto.Size(); got != 6 {
		t.Fatalf("2RC has %d states, paper says 6", got)
	}
	// The 2RC instantiation must contain Protocol 6's named rules.
	find := func(name string) core.State {
		s, ok := c.Proto.StateIndex(name)
		if !ok {
			t.Fatalf("missing state %q", name)
		}
		return s
	}
	q0, q1, l1 := find("q0"), find("q1"), find("l1")
	hits := 0
	for _, r := range c.Proto.Rules() {
		if r.A == q0 && r.B == q0 && !r.Edge && r.OutA == q1 && r.OutB == l1 && r.OutEdge {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("(q0,q0,0)→(q1,l1,1) found %d times", hits)
	}
}
