package protocols

import (
	"testing"

	"repro/internal/core"
)

// Failure-injection tests: the Section 5 constructors must stabilize
// under fair schedulers far from the uniform one, since their
// correctness proofs use only fairness.

func TestCycleCoverUnderAdversarialSchedulers(t *testing.T) {
	t.Parallel()
	c := CycleCover()
	for _, sched := range []core.Scheduler{
		&core.RoundRobinScheduler{},
		&core.PermutationScheduler{},
		&core.BiasedScheduler{Cut: 5, Epsilon: 0.1},
	} {
		res, err := core.Run(c.Proto, 14, core.Options{
			Seed:      3,
			Detector:  c.Detector,
			Scheduler: sched,
			MaxSteps:  50_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("scheduler %s: no convergence", sched.Name())
		}
		if g := ActiveGraph(res.Final); !g.IsCycleCoverWithWaste(2) {
			t.Fatalf("scheduler %s: %v", sched.Name(), g)
		}
	}
}

func TestCCliquesUnderBiasedScheduler(t *testing.T) {
	t.Parallel()
	cons, err := CCliques(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cons.Proto, 9, core.Options{
		Seed:      5,
		Detector:  cons.Detector,
		Scheduler: &core.BiasedScheduler{Cut: 4, Epsilon: 0.2},
		MaxSteps:  100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("biased scheduler: no convergence")
	}
	if g := ActiveGraph(res.Final); !g.IsCliquePartition(3) {
		t.Fatalf("biased scheduler: %v", g)
	}
}

func TestTwoRCUnderPermutationScheduler(t *testing.T) {
	t.Parallel()
	c := TwoRC()
	res, err := core.Run(c.Proto, 8, core.Options{
		Seed:      2,
		Detector:  c.Detector,
		Scheduler: &core.PermutationScheduler{},
		MaxSteps:  50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("permutation scheduler: no convergence")
	}
	if g := ActiveGraph(res.Final); !g.IsSpanningRing() {
		t.Fatalf("permutation scheduler: %v", g)
	}
}

// TestGlobalRingOpensBlockedCycles drives the protocol into a
// configuration with a prematurely closed sub-ring plus leftover
// nodes and verifies it reopens and still spans. This is the exact
// dynamic the double-primed states exist for.
func TestGlobalRingOpensBlockedCycles(t *testing.T) {
	t.Parallel()
	c := GlobalRing()
	idx := func(name string) core.State {
		s, ok := c.Proto.StateIndex(name)
		if !ok {
			t.Fatalf("missing state %q", name)
		}
		return s
	}
	// A closed 4-cycle (l′, q2′, q2, q2) plus 3 isolated q0 nodes.
	cfg := core.NewConfig(c.Proto, 7)
	cfg.SetNode(0, idx("l'"))
	cfg.SetNode(1, idx("q2'"))
	cfg.SetNode(2, idx("q2"))
	cfg.SetNode(3, idx("q2"))
	cfg.SetEdge(0, 1, true)
	cfg.SetEdge(1, 2, true)
	cfg.SetEdge(2, 3, true)
	cfg.SetEdge(3, 0, true)
	for seed := uint64(1); seed <= 4; seed++ {
		res, err := core.Run(c.Proto, 7, core.Options{Seed: seed, Detector: c.Detector, Initial: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: blocked cycle never reopened", seed)
		}
		if g := ActiveGraph(res.Final); !g.IsSpanningRing() {
			t.Fatalf("seed %d: %v", seed, g)
		}
	}
}

// TestKRCStealsFromClosedComponents: a closed k-regular component must
// open when isolated nodes remain (the l_{k+1} mechanism), ending
// spanning.
func TestKRCStealsFromClosedComponents(t *testing.T) {
	t.Parallel()
	c := TwoRC() // k = 2: closed component = a cycle
	idx := func(name string) core.State {
		s, ok := c.Proto.StateIndex(name)
		if !ok {
			t.Fatalf("missing state %q", name)
		}
		return s
	}
	// A 3-cycle with its leader plus 3 isolated nodes.
	cfg := core.NewConfig(c.Proto, 6)
	cfg.SetNode(0, idx("l2"))
	cfg.SetNode(1, idx("q2"))
	cfg.SetNode(2, idx("q2"))
	cfg.SetEdge(0, 1, true)
	cfg.SetEdge(1, 2, true)
	cfg.SetEdge(2, 0, true)
	res, err := core.Run(c.Proto, 6, core.Options{Seed: 1, Detector: c.Detector, Initial: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("closed cycle never opened towards the isolated nodes")
	}
	if g := ActiveGraph(res.Final); !g.IsSpanningRing() {
		t.Fatalf("final %v", g)
	}
}
