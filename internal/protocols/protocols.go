// Package protocols implements every direct network constructor from
// Michail & Spirakis: the spanning-line protocols of Section 4
// (Simple-Global-Line, Fast-Global-Line and the experimental
// Faster-Global-Line of Section 7), the Section 5 constructors
// (Cycle-Cover, Global-Star, Global-Ring, 2RC, kRC, c-Cliques,
// Graph-Replication), the Theorem 1 spanning-network protocol, and the
// degree-doubling construction discussed in Sections 5 and 7.
//
// Each constructor pairs its compiled protocol with a convergence
// detector whose predicate holds exactly on configurations the paper
// proves output-stable, so a detected run's ConvergenceTime is the
// paper's running time.
package protocols

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// Constructor bundles a protocol with its stability detector and a
// human-readable description of the target network.
type Constructor struct {
	Proto    *core.Protocol
	Detector core.Detector
	Target   string
}

// ActiveGraph returns the graph induced by all nodes and the active
// edges — the output graph for protocols whose every state is an
// output state. It streams the configuration's edge set, so it costs
// O(n + m) on adjacency-backed configurations instead of the n²
// edge-oracle probes of graph.FromPairs.
func ActiveGraph(cfg *core.Config) *graph.Graph {
	g := graph.New(cfg.N())
	cfg.ForEachActiveEdge(g.AddEdgeUnchecked)
	return g
}

// OutputGraph returns the paper's output graph: the subgraph induced by
// nodes in output states together with the active edges joining them.
// The returned mapping translates output-graph vertices back to
// population node indices.
func OutputGraph(cfg *core.Config) (*graph.Graph, []int) {
	p := cfg.Protocol()
	var members []int
	for u := 0; u < cfg.N(); u++ {
		if p.IsOutput(cfg.Node(u)) {
			members = append(members, u)
		}
	}
	g := graph.New(len(members))
	for i, u := range members {
		for j := i + 1; j < len(members); j++ {
			if cfg.Edge(u, members[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	return g, members
}
