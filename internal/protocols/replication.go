package protocols

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Graph-Replication state indices (Protocol 9). The protocol is the
// paper's only randomized direct constructor (class PREL): when a
// leader meets a follower it either copies the edge between them to
// the replica or keeps random-walking, each with probability 1/2.
const (
	grpQ0 core.State = iota // V1 initial
	grpR0                   // V2 initial
	grpL                    // leader in V1
	grpLa                   // leader that detected an active edge
	grpLd                   // leader that detected an inactive edge
	grpF                    // follower in V1
	grpFa
	grpFd
	grpR  // matched node in V2
	grpRa // V2 node told to activate
	grpRd // V2 node told to deactivate
	grpRp // r′ — V2 node that completed a copy
)

// GraphReplication returns Protocol 9, the 12-state Θ(n⁴ log n)
// constructor that copies an input graph G1 on V1 onto the fresh nodes
// of V2 (Theorem 13).
//
// For stabilization detection we treat r′ as an output state alongside
// {r, rₐ, r_d}: with the paper's literal Qout the perpetual copy loop
// keeps toggling nodes through the non-output r′ and the literal
// output never stabilizes (see DESIGN.md §5.2).
func GraphReplication() Constructor {
	rules := []core.Rule{
		// Matching every u ∈ V1 to a distinct v ∈ V2.
		{A: grpQ0, B: grpR0, Edge: false, OutA: grpL, OutB: grpR, OutEdge: true},
	}
	// Leader election in V1 (over both edge states).
	for _, e := range []bool{false, true} {
		rules = append(rules, core.Rule{A: grpL, B: grpL, Edge: e, OutA: grpL, OutB: grpF, OutEdge: e})
	}
	// A non-edge of G1 detected: with probability 1/2 start copying,
	// with probability 1/2 the leader keeps walking.
	rules = append(rules,
		core.Rule{
			A: grpL, B: grpF, Edge: false,
			OutA: grpLd, OutB: grpFd, OutEdge: false,
			Alt: true, AltA: grpF, AltB: grpL, AltEdge: false,
		},
		// An edge of G1 detected: likewise.
		core.Rule{
			A: grpL, B: grpF, Edge: true,
			OutA: grpLa, OutB: grpFa, OutEdge: true,
			Alt: true, AltA: grpF, AltB: grpL, AltEdge: true,
		},
	)
	// Informing the matched V2 nodes to apply the copy.
	for _, x := range []struct{ v1, v2 core.State }{
		{grpLa, grpRa}, {grpLd, grpRd}, {grpFa, grpRa}, {grpFd, grpRd},
	} {
		rules = append(rules, core.Rule{A: x.v1, B: grpR, Edge: true, OutA: x.v1, OutB: x.v2, OutEdge: true})
	}
	// The copy applied in G2 (over both current edge states).
	for _, e := range []bool{false, true} {
		rules = append(rules,
			core.Rule{A: grpRa, B: grpRa, Edge: e, OutA: grpRp, OutB: grpRp, OutEdge: true},
			core.Rule{A: grpRd, B: grpRd, Edge: e, OutA: grpRp, OutB: grpRp, OutEdge: false},
		)
	}
	// Informing the matched V1 nodes that the copy was performed.
	for _, x := range []struct{ marked, clean core.State }{
		{grpLa, grpL}, {grpLd, grpL}, {grpFa, grpF}, {grpFd, grpF},
	} {
		rules = append(rules, core.Rule{A: grpRp, B: x.marked, Edge: true, OutA: grpR, OutB: x.clean, OutEdge: true})
	}
	// Leader election also applies to marked leaders to prevent
	// blocking.
	for _, e := range []bool{false, true} {
		rules = append(rules,
			core.Rule{A: grpLa, B: grpL, Edge: e, OutA: grpLa, OutB: grpF, OutEdge: e},
			core.Rule{A: grpLd, B: grpL, Edge: e, OutA: grpLd, OutB: grpF, OutEdge: e},
			core.Rule{A: grpLa, B: grpLa, Edge: e, OutA: grpLa, OutB: grpFa, OutEdge: e},
			core.Rule{A: grpLa, B: grpLd, Edge: e, OutA: grpLa, OutB: grpFd, OutEdge: e},
			core.Rule{A: grpLd, B: grpLd, Edge: e, OutA: grpLd, OutB: grpFd, OutEdge: e},
		)
	}

	p := core.MustProtocol(
		"Graph-Replication",
		[]string{"q0", "r0", "l", "la", "ld", "f", "fa", "fd", "r", "ra", "rd", "r'"},
		grpQ0,
		[]core.State{grpR, grpRa, grpRd, grpRp},
		rules,
	)
	return Constructor{Proto: p, Target: "replica of the input graph on V2"}
}

// ReplicationInitial builds Protocol 9's initial configuration on n
// nodes: nodes 0..|V1|−1 carry the input graph g1 (state q0, E1
// active), the remaining nodes are fresh (state r0, all edges
// inactive). Requires |V2| = n − |V1| ≥ |V1|.
func ReplicationInitial(p *core.Protocol, g1 *graph.Graph, n int) (*core.Config, error) {
	n1 := g1.N()
	if n-n1 < n1 {
		return nil, fmt.Errorf("protocols: replication needs |V2| ≥ |V1|: n=%d, |V1|=%d", n, n1)
	}
	cfg := core.NewConfig(p, n)
	for u := 0; u < n1; u++ {
		cfg.SetNode(u, grpQ0)
	}
	for u := n1; u < n; u++ {
		cfg.SetNode(u, grpR0)
	}
	for _, e := range g1.Edges() {
		cfg.SetEdge(e[0], e[1], true)
	}
	return cfg, nil
}

// ReplicationDetector returns the stability predicate for a run of
// Graph-Replication on input g1: a unique leader remains, no copy
// operation is in flight, and the active graph induced by the matched
// V2 nodes is isomorphic to g1. The paper proves such configurations
// output-stable (any further copy rewrites an already-correct value).
func ReplicationDetector(g1 *graph.Graph) core.Detector {
	n1 := g1.N()
	return core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			if cfg.Count(grpQ0) != 0 {
				return false
			}
			if cfg.Count(grpL) != 1 || cfg.Count(grpLa) != 0 || cfg.Count(grpLd) != 0 {
				return false
			}
			if cfg.Count(grpFa) != 0 || cfg.Count(grpFd) != 0 ||
				cfg.Count(grpRa) != 0 || cfg.Count(grpRd) != 0 || cfg.Count(grpRp) != 0 {
				return false
			}
			if cfg.Count(grpR) != n1 {
				return false
			}
			members := make([]int, 0, n1)
			for u := 0; u < cfg.N(); u++ {
				if cfg.Node(u) == grpR {
					members = append(members, u)
				}
			}
			g2 := graph.New(len(members))
			for i := range members {
				for j := i + 1; j < len(members); j++ {
					if cfg.Edge(members[i], members[j]) {
						g2.AddEdge(i, j)
					}
				}
			}
			return graph.Isomorphic(g1, g2)
		},
	}
}
