package protocols

import (
	"fmt"

	"repro/internal/core"
)

// KRC returns Protocol 7, the 2(k+1)-state constructor of a connected
// spanning k-regular network for any fixed k ≥ 2 (Theorem 11: at least
// n−k+1 nodes reach degree exactly k and each of the remaining ℓ ≤ k−1
// nodes has degree between ℓ−1 and k−1). For k = 2 this is exactly
// Protocol 6 (2RC) and constructs a spanning ring (Theorem 10).
//
// State layout: qᵢ (0 ≤ i ≤ k) is a non-leader of active degree i;
// lⱼ (1 ≤ j ≤ k+1) is a leader of active degree j, with l_{k+1} the
// transient over-degree state used to open a k-regular component when
// another component is detected.
func KRC(k int) (Constructor, error) {
	if k < 2 {
		return Constructor{}, fmt.Errorf("protocols: kRC requires k ≥ 2, got %d", k)
	}
	if 2*(k+1) > core.MaxStates {
		return Constructor{}, fmt.Errorf("protocols: kRC with k=%d exceeds the state budget", k)
	}
	// Indices: q0..qk occupy 0..k; l1..l_{k+1} occupy k+1..2k+1.
	q := func(i int) core.State { return core.State(i) }
	l := func(j int) core.State { return core.State(k + j) }
	names := make([]string, 0, 2*(k+1))
	for i := 0; i <= k; i++ {
		names = append(names, fmt.Sprintf("q%d", i))
	}
	for j := 1; j <= k+1; j++ {
		names = append(names, fmt.Sprintf("l%d", j))
	}

	var rules []core.Rule
	add := func(a, b core.State, edge bool, oa, ob core.State, oe bool) {
		rules = append(rules, core.Rule{A: a, B: b, Edge: edge, OutA: oa, OutB: ob, OutEdge: oe})
	}

	// Two isolated nodes connect; one becomes the component's leader.
	add(q(0), q(0), false, q(1), l(1), true)
	// Non-leaders below target degree connect (j ≤ i orientation keeps
	// the unordered rule set conflict-free; the (q0,q0) pair is the
	// leader-creating rule above).
	for i := 1; i < k; i++ {
		for j := 0; j <= i; j++ {
			add(q(i), q(j), false, q(i+1), q(j+1), true)
		}
	}
	// Two leaders connect; one survives, the other is demoted.
	for i := 1; i < k; i++ {
		for j := 1; j <= i; j++ {
			add(l(i), l(j), false, l(i+1), q(j+1), true)
		}
	}
	// A leader connects to a non-leader and hands over the token.
	for i := 1; i < k; i++ {
		for j := 0; j < k; j++ {
			add(l(i), q(j), false, q(i+1), l(j+1), true)
		}
	}
	// Swapping: leaders keep moving inside their component.
	for i := 1; i <= k; i++ {
		for j := 1; j <= k; j++ {
			add(l(i), q(j), true, q(i), l(j), true)
		}
	}
	// Leader elimination: eventually one leader per component.
	for i := 1; i <= k; i++ {
		for j := 1; j <= i; j++ {
			add(l(i), l(j), true, q(i), l(j), true)
		}
	}
	// Opening k-regular components in the presence of other components.
	add(l(k), q(0), false, l(k+1), q(1), true)
	for i := 1; i < k; i++ {
		add(l(k), l(i), false, l(k+1), q(i+1), true)
	}
	add(l(k), l(k), false, l(k+1), l(k+1), true)
	add(l(k+1), q(1), true, l(k), q(0), false)
	for i := 2; i <= k; i++ {
		add(l(k+1), q(i), true, l(k), l(i-1), false)
	}
	add(l(k+1), l(1), true, l(k), q(0), false)
	for i := 2; i <= k; i++ {
		add(l(k+1), l(i), true, l(k), l(i-1), false)
	}
	add(l(k+1), l(k+1), true, l(k), l(k), false)

	name := "kRC"
	if k == 2 {
		name = "2RC"
	}
	p, err := core.NewProtocol(fmt.Sprintf("%s(k=%d)", name, k), names, q(0), nil, rules)
	if err != nil {
		return Constructor{}, fmt.Errorf("protocols: compile kRC: %w", err)
	}

	leaderCount := func(cfg *core.Config) int {
		total := 0
		for j := 1; j <= k+1; j++ {
			total += cfg.Count(l(j))
		}
		return total
	}
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			n := cfg.N()
			if n < k+1 {
				return false
			}
			if cfg.Count(l(k+1)) != 0 || leaderCount(cfg) != 1 {
				return false
			}
			// Absorbing test: no activation rule can ever apply again,
			// regardless of where the leader token wanders — every
			// pair of below-degree-k nodes must already be adjacent.
			var low []int
			for u := 0; u < n; u++ {
				d := cfg.Degree(u)
				if d < k {
					low = append(low, u)
				}
				if d == 0 {
					return false
				}
			}
			if len(low) > k-1 {
				return false
			}
			for i := 0; i < len(low); i++ {
				for j := i + 1; j < len(low); j++ {
					if !cfg.Edge(low[i], low[j]) {
						return false
					}
				}
			}
			return ActiveGraph(cfg).IsNearKRegularConnected(k)
		},
	}
	target := fmt.Sprintf("connected spanning %d-regular network", k)
	if k == 2 {
		target = "spanning ring"
	}
	return Constructor{Proto: p, Detector: det, Target: target}, nil
}

// TwoRC returns Protocol 6 (2RC), the 6-state spanning-ring
// constructor, as the k = 2 instance of kRC.
func TwoRC() Constructor {
	c, err := KRC(2)
	if err != nil {
		// Unreachable: k = 2 is statically valid.
		panic(err)
	}
	return c
}
