package protocols

import (
	"testing"

	"repro/internal/core"
)

// Tests for the Section 5 constructors beyond the smoke pass:
// Cycle-Cover, Global-Star, Global-Ring.

func TestCycleCoverSweep(t *testing.T) {
	t.Parallel()
	c := CycleCover()
	for _, n := range []int{3, 4, 5, 7, 12, 25, 40} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d seed=%d: no convergence", n, seed)
			}
			if g := ActiveGraph(res.Final); !g.IsCycleCoverWithWaste(2) {
				t.Fatalf("n=%d seed=%d: %v not a cycle cover (waste 2)", n, seed, g)
			}
		}
	}
}

// TestCycleCoverDegreeInvariant: a node in state qᵢ always has active
// degree exactly i (Theorem 5's invariant), checked on every edge
// event.
func TestCycleCoverDegreeInvariant(t *testing.T) {
	t.Parallel()
	c := CycleCover()
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		for _, node := range []int{u, v} {
			want := int(cfg.Node(node)) // q0, q1, q2 are indices 0, 1, 2
			if got := cfg.Degree(node); got != want {
				t.Fatalf("step %d: node %d in q%d has degree %d", step, node, want, got)
			}
		}
	})
	for seed := uint64(1); seed <= 5; seed++ {
		if _, err := core.Run(c.Proto, 20, core.Options{Seed: seed, Detector: c.Detector, Observer: obs}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCycleCoverNeverDeactivates(t *testing.T) {
	t.Parallel()
	c := CycleCover()
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		if edgeChanged && !cfg.Edge(u, v) {
			t.Fatalf("step %d: Cycle-Cover deactivated an edge", step)
		}
	})
	if _, err := core.Run(c.Proto, 16, core.Options{Seed: 4, Detector: c.Detector, Observer: obs}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalStarSweep(t *testing.T) {
	t.Parallel()
	c := GlobalStar()
	for _, n := range []int{2, 3, 4, 9, 17, 40} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d seed=%d: no convergence", n, seed)
			}
			g := ActiveGraph(res.Final)
			if !g.IsSpanningStar() {
				t.Fatalf("n=%d seed=%d: %v not a spanning star", n, seed, g)
			}
			// The center is the unique node still in state c.
			centers := 0
			for u := 0; u < n; u++ {
				if c.Proto.StateName(res.Final.Node(u)) == "c" {
					centers++
					if res.Final.Degree(u) != n-1 {
						t.Fatalf("center degree %d", res.Final.Degree(u))
					}
				}
			}
			if centers != 1 {
				t.Fatalf("%d centers", centers)
			}
		}
	}
}

func TestGlobalStarUnderAdversarialSchedulers(t *testing.T) {
	t.Parallel()
	c := GlobalStar()
	for _, sched := range []core.Scheduler{
		&core.RoundRobinScheduler{},
		&core.PermutationScheduler{},
		&core.BiasedScheduler{Cut: 3, Epsilon: 0.15},
	} {
		res, err := core.Run(c.Proto, 12, core.Options{
			Seed:      8,
			Detector:  c.Detector,
			Scheduler: sched,
			MaxSteps:  50_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("scheduler %s: no convergence", sched.Name())
		}
		if g := ActiveGraph(res.Final); !g.IsSpanningStar() {
			t.Fatalf("scheduler %s: %v", sched.Name(), g)
		}
	}
}

// TestGlobalStarCentersNeverIncrease: once a node turns peripheral it
// never becomes a center again (the proof's monotonicity argument).
func TestGlobalStarCentersNeverIncrease(t *testing.T) {
	t.Parallel()
	c := GlobalStar()
	cState, _ := c.Proto.StateIndex("c")
	last := -1
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		cur := cfg.Count(cState)
		if last >= 0 && cur > last {
			t.Fatalf("step %d: centers increased %d → %d", step, last, cur)
		}
		last = cur
	})
	if _, err := core.Run(c.Proto, 25, core.Options{Seed: 2, Detector: c.Detector, Observer: obs}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRingSweep(t *testing.T) {
	t.Parallel()
	c := GlobalRing()
	for _, n := range []int{3, 4, 5, 6, 8, 10} {
		for seed := uint64(1); seed <= 2; seed++ {
			res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d seed=%d: no convergence", n, seed)
			}
			if g := ActiveGraph(res.Final); !g.IsSpanningRing() {
				t.Fatalf("n=%d seed=%d: %v not a spanning ring", n, seed, g)
			}
		}
	}
}

// TestGlobalRingJournalFix reproduces the scenario behind the bug the
// journal version fixed: many 1-edge lines must not chain into blocked
// q2'–l' alternations. With the l̄ gating, executions on populations
// that begin with many tiny lines still stabilize to a ring.
func TestGlobalRingJournalFix(t *testing.T) {
	t.Parallel()
	c := GlobalRing()
	// Build an initial configuration of ⌊n/2⌋ 1-edge lines (q1–l̄),
	// the worst case the erratum describes.
	n := 10
	cfg := core.NewConfig(c.Proto, n)
	q1, _ := c.Proto.StateIndex("q1")
	lbar, _ := c.Proto.StateIndex("lbar")
	for i := 0; i+1 < n; i += 2 {
		cfg.SetNode(i, q1)
		cfg.SetNode(i+1, lbar)
		cfg.SetEdge(i, i+1, true)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector, Initial: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence from the all-pairs configuration", seed)
		}
		if g := ActiveGraph(res.Final); !g.IsSpanningRing() {
			t.Fatalf("seed %d: %v", seed, g)
		}
	}
}

func TestBasicStateCounts(t *testing.T) {
	t.Parallel()
	if got := CycleCover().Proto.Size(); got != 3 {
		t.Fatalf("Cycle-Cover has %d states, paper says 3", got)
	}
	if got := GlobalStar().Proto.Size(); got != 2 {
		t.Fatalf("Global-Star has %d states, paper says 2", got)
	}
	// The journal's Table 2 says 9 but the listed protocol uses 10
	// states; we implement the protocol as listed (see EXPERIMENTS.md).
	if got := GlobalRing().Proto.Size(); got != 10 {
		t.Fatalf("Global-Ring has %d states, expected 10 as listed", got)
	}
}
