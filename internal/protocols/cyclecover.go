package protocols

import "repro/internal/core"

// Cycle-Cover state indices (Protocol 3). A node in state qᵢ has
// active degree exactly i — the protocol's central invariant.
const (
	ccQ0 core.State = iota
	ccQ1
	ccQ2
)

// CycleCover returns Protocol 3, the 3-state, time-optimal Θ(n²)
// constructor that partitions the population into node-disjoint cycles
// with waste at most 2 (Theorem 5).
func CycleCover() Constructor {
	p := core.MustProtocol(
		"Cycle-Cover",
		[]string{"q0", "q1", "q2"},
		ccQ0,
		nil,
		[]core.Rule{
			{A: ccQ0, B: ccQ0, Edge: false, OutA: ccQ1, OutB: ccQ1, OutEdge: true},
			{A: ccQ1, B: ccQ0, Edge: false, OutA: ccQ2, OutB: ccQ1, OutEdge: true},
			{A: ccQ1, B: ccQ1, Edge: false, OutA: ccQ2, OutB: ccQ2, OutEdge: true},
		},
	)
	// Stable exactly when no two under-degree nodes can still connect:
	// either everyone has degree 2, or the residue is one isolated q0,
	// or a single active edge joining the only two q1 nodes. These are
	// precisely the quiescent configurations.
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			n0, n1 := cfg.Count(ccQ0), cfg.Count(ccQ1)
			switch {
			case n0 == 0 && n1 == 0:
				return true
			case n0 == 1 && n1 == 0:
				return true
			case n0 == 0 && n1 == 2:
				// The two q1 endpoints must already be joined, i.e.
				// they form the lone leftover edge.
				first := -1
				for u := 0; u < cfg.N(); u++ {
					if cfg.Node(u) != ccQ1 {
						continue
					}
					if first < 0 {
						first = u
						continue
					}
					return cfg.Edge(first, u)
				}
				return false
			default:
				return cfg.N() == 1
			}
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "cycle cover (waste ≤ 2)"}
}
