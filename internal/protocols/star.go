package protocols

import "repro/internal/core"

// Global-Star state indices (Protocol 4).
const (
	gsC core.State = iota // center candidate
	gsP                   // peripheral
)

// GlobalStar returns Protocol 4, the 2-state spanning-star constructor,
// optimal in both size and time (Θ(n² log n), Theorem 7): centers
// eliminate one another, center–peripheral pairs attract and
// peripheral–peripheral pairs repel.
func GlobalStar() Constructor {
	p := core.MustProtocol(
		"Global-Star",
		[]string{"c", "p"},
		gsC,
		nil,
		[]core.Rule{
			{A: gsC, B: gsC, Edge: false, OutA: gsC, OutB: gsP, OutEdge: true},
			{A: gsP, B: gsP, Edge: true, OutA: gsP, OutB: gsP, OutEdge: false},
			{A: gsC, B: gsP, Edge: false, OutA: gsC, OutB: gsP, OutEdge: true},
		},
	)
	// Stable iff a unique center is joined to every peripheral and no
	// peripheral–peripheral edge survives; with the degree aggregate
	// this is an O(n) check and the configuration is fully quiescent.
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			n := cfg.N()
			if n == 1 {
				return true
			}
			if cfg.Count(gsC) != 1 {
				return false
			}
			if cfg.ActiveEdges() != n-1 {
				return false
			}
			for u := 0; u < n; u++ {
				want := 1
				if cfg.Node(u) == gsC {
					want = n - 1
				}
				if cfg.Degree(u) != want {
					return false
				}
			}
			return true
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "spanning star"}
}
