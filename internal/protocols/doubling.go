package protocols

import (
	"fmt"

	"repro/internal/core"
)

// DegreeDoubling returns the Section 5 construction showing that the
// target degree is not a lower bound on protocol size: a distinguished
// node u obtains exactly 2^d neighbors using only Θ(d) states, by
// collecting two neighbors and then doubling their number d−1 times
// (every converted aᵢ neighbor recruits one more, so the aᵢ₊₁
// generation is twice the aᵢ generation).
//
// The initial configuration is non-uniform: one node starts in q0, all
// others in a0 (use DegreeDoublingInitial). Requires n ≥ 2^d + 1.
func DegreeDoubling(d int) (Constructor, error) {
	if d < 1 {
		return Constructor{}, fmt.Errorf("protocols: degree doubling requires d ≥ 1, got %d", d)
	}
	if d > 20 {
		return Constructor{}, fmt.Errorf("protocols: degree doubling with d=%d would need 2^%d nodes", d, d)
	}

	// State layout: q0, q0', q, q2..qd, a0..ad.
	names := []string{"q0", "q0'", "q"}
	qIdx := func(j int) core.State { return core.State(3 + (j - 2)) } // q2.. at 3..
	aBase := 3 + (d - 1)
	for j := 2; j <= d; j++ {
		names = append(names, fmt.Sprintf("q%d", j))
	}
	for i := 0; i <= d; i++ {
		names = append(names, fmt.Sprintf("a%d", i))
	}
	aIdx := func(i int) core.State { return core.State(aBase + i) }
	const (
		ddQ0  core.State = 0
		ddQ0p core.State = 1
		ddQ   core.State = 2
	)

	rules := []core.Rule{
		{A: ddQ0, B: aIdx(0), Edge: false, OutA: ddQ0p, OutB: aIdx(1), OutEdge: true},
		{A: ddQ0p, B: aIdx(0), Edge: false, OutA: ddQ, OutB: aIdx(1), OutEdge: true},
	}
	for i := 1; i <= d-1; i++ {
		rules = append(rules, core.Rule{
			A: ddQ, B: aIdx(i), Edge: true, OutA: qIdx(i + 1), OutB: aIdx(i + 1), OutEdge: true,
		})
	}
	for j := 2; j <= d; j++ {
		rules = append(rules, core.Rule{
			A: qIdx(j), B: aIdx(0), Edge: false, OutA: ddQ, OutB: aIdx(j), OutEdge: true,
		})
	}

	p, err := core.NewProtocol(fmt.Sprintf("Degree-Doubling(d=%d)", d), names, aIdx(0), nil, rules)
	if err != nil {
		return Constructor{}, fmt.Errorf("protocols: compile degree doubling: %w", err)
	}

	want := 1 << d
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			if cfg.Count(ddQ) != 1 || cfg.Count(aIdx(d)) != want {
				return false
			}
			for i := 1; i < d; i++ {
				if cfg.Count(aIdx(i)) != 0 {
					return false
				}
			}
			return true
		},
	}
	return Constructor{
		Proto:    p,
		Detector: det,
		Target:   fmt.Sprintf("distinguished node with exactly %d neighbors", want),
	}, nil
}

// DegreeDoublingInitial builds the non-uniform initial configuration:
// node 0 in q0, every other node in a0.
func DegreeDoublingInitial(p *core.Protocol, n int) (*core.Config, error) {
	q0, ok := p.StateIndex("q0")
	if !ok {
		return nil, fmt.Errorf("protocols: %q is not a degree-doubling protocol", p.Name())
	}
	cfg := core.NewConfig(p, n)
	cfg.SetNode(0, q0)
	return cfg, nil
}
