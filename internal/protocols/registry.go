package protocols

import (
	"fmt"
	"sort"
)

// Registry maps protocol names to constructors, for the CLI tools and
// table generators. Parameterized protocols are registered at useful
// default parameters; use the typed constructors directly for other
// parameters.
func Registry() map[string]Constructor {
	reg := map[string]Constructor{
		"simple-global-line": SimpleGlobalLine(),
		"fast-global-line":   FastGlobalLine(),
		"faster-global-line": FasterGlobalLine(),
		"spanning-net":       SpanningNet(),
		"cycle-cover":        CycleCover(),
		"global-star":        GlobalStar(),
		"global-ring":        GlobalRing(),
		"2rc":                TwoRC(),
	}
	if krc, err := KRC(3); err == nil {
		reg["3rc"] = krc
	}
	if krc, err := KRC(4); err == nil {
		reg["4rc"] = krc
	}
	if cl, err := CCliques(3); err == nil {
		reg["3-cliques"] = cl
	}
	if cl, err := CCliques(4); err == nil {
		reg["4-cliques"] = cl
	}
	if dd, err := DegreeDoubling(3); err == nil {
		reg["degree-doubling"] = dd
	}
	return reg
}

// Names returns the sorted registry keys.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup fetches a registered constructor by name.
func Lookup(name string) (Constructor, error) {
	c, ok := Registry()[name]
	if !ok {
		return Constructor{}, fmt.Errorf("protocols: unknown protocol %q (known: %v)", name, Names())
	}
	return c, nil
}
