package protocols

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestSmokeAllProtocols runs every registered protocol once at a small
// size and checks that it converges to its target. Deeper per-protocol
// tests live in the dedicated test files; this is the canary.
func TestSmokeAllProtocols(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		n     int
		check func(t *testing.T, cfg *core.Config)
	}{
		{name: "simple-global-line", n: 10, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanningLine() })},
		{name: "fast-global-line", n: 14, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanningLine() })},
		{name: "faster-global-line", n: 14, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanningLine() })},
		{name: "spanning-net", n: 20, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanning() })},
		{name: "cycle-cover", n: 16, check: wantActive(func(g *graph.Graph) bool { return g.IsCycleCoverWithWaste(2) })},
		{name: "global-star", n: 16, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanningStar() })},
		{name: "global-ring", n: 9, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanningRing() })},
		{name: "2rc", n: 9, check: wantActive(func(g *graph.Graph) bool { return g.IsSpanningRing() })},
		{name: "3rc", n: 10, check: wantActive(func(g *graph.Graph) bool { return g.IsNearKRegularConnected(3) })},
		{name: "3-cliques", n: 9, check: wantActive(func(g *graph.Graph) bool { return g.IsCliquePartition(3) })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c, err := Lookup(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(c.Proto, tc.n, core.Options{Seed: 1, Detector: c.Detector})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge within %d steps", res.Steps)
			}
			tc.check(t, res.Final)
			if res.ConvergenceTime <= 0 || res.ConvergenceTime > res.Steps {
				t.Fatalf("implausible convergence time %d (detected at step %d)", res.ConvergenceTime, res.Steps)
			}
		})
	}
}

func wantActive(pred func(*graph.Graph) bool) func(*testing.T, *core.Config) {
	return func(t *testing.T, cfg *core.Config) {
		t.Helper()
		if g := ActiveGraph(cfg); !pred(g) {
			t.Fatalf("final active graph %v does not satisfy the target predicate", g)
		}
	}
}
