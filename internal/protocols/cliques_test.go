package protocols

import (
	"testing"

	"repro/internal/core"
)

func TestCCliquesParameterValidation(t *testing.T) {
	t.Parallel()
	if _, err := CCliques(1); err == nil {
		t.Fatal("c=1 accepted")
	}
	if _, err := CCliques(60); err == nil {
		t.Fatal("state-budget overflow accepted")
	}
}

func TestCCliquesStateCount(t *testing.T) {
	t.Parallel()
	for c := 2; c <= 6; c++ {
		cons, err := CCliques(c)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cons.Proto.Size(), 5*c-3; got != want {
			t.Fatalf("c=%d: %d states, paper says %d", c, got, want)
		}
	}
}

func TestCCliquesBuildsPartitions(t *testing.T) {
	t.Parallel()
	cases := []struct {
		c, n int
	}{
		{2, 6}, {2, 7}, // matching pairs, odd leftover
		{3, 6}, {3, 9}, {3, 10}, {3, 11}, // every residue mod 3
		{4, 8}, {4, 9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(rune('0'+tc.c))+"-"+string(rune('0'+tc.n%10)), func(t *testing.T) {
			t.Parallel()
			cons, err := CCliques(tc.c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(cons.Proto, tc.n, core.Options{Seed: 2, Detector: cons.Detector})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("c=%d n=%d: no convergence", tc.c, tc.n)
			}
			g := ActiveGraph(res.Final)
			cliques := 0
			for _, comp := range g.Components() {
				if len(comp) == tc.c {
					sub, _ := g.InducedSubgraph(comp)
					if sub.M() != tc.c*(tc.c-1)/2 {
						t.Fatalf("component %v is not K%d", comp, tc.c)
					}
					cliques++
				}
			}
			if cliques != tc.n/tc.c {
				t.Fatalf("c=%d n=%d: %d cliques, want %d", tc.c, tc.n, cliques, tc.n/tc.c)
			}
		})
	}
}

// TestCCliquesCounterTracksDegree: a numbered follower's counter
// always equals its active degree — the invariant that makes wrong-
// connection repair sound.
func TestCCliquesCounterTracksDegree(t *testing.T) {
	t.Parallel()
	cons, err := CCliques(3)
	if err != nil {
		t.Fatal(err)
	}
	numbered := map[string]int{"1": 1, "2": 2}
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		for _, node := range []int{u, v} {
			name := cons.Proto.StateName(cfg.Node(node))
			if want, ok := numbered[name]; ok {
				if got := cfg.Degree(node); got != want {
					t.Fatalf("step %d: follower in state %s has degree %d", step, name, got)
				}
			}
		}
	})
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := core.Run(cons.Proto, 9, core.Options{Seed: seed, Detector: cons.Detector, Observer: obs}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCCliquesPairsIsMatching(t *testing.T) {
	t.Parallel()
	// c=2 degenerates to a perfect matching with leader visits.
	cons, err := CCliques(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cons.Proto, 10, core.Options{Seed: 7, Detector: cons.Detector})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if g := ActiveGraph(res.Final); !g.IsMaximumMatching() {
		t.Fatalf("c=2 result %v is not a maximum matching", g)
	}
}
