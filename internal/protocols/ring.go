package protocols

import "repro/internal/core"

// Global-Ring state indices (Protocol 5, the corrected journal
// version). The primed states mark the blocked endpoints of a closed
// cycle; double-primed states record that another component has been
// detected, which forces the cycle open again.
const (
	grQ0 core.State = iota
	grQ1
	grQ2
	grL
	grW
	grLp   // l′
	grLpp  // l″
	grQ2p  // q2′
	grQ2pp // q2″
	grLbar // l̄ — leader of a line of one edge, barred from closing
)

// GlobalRing returns Protocol 5, the spanning-ring constructor built on
// Simple-Global-Line: a line's endpoints may close into a cycle, and a
// closed cycle reopens whenever one of its blocked endpoints detects a
// node outside the component (Theorem 9).
//
// Note: the paper's Table 2 counts 9 states but the protocol as listed
// uses 10; we implement the listed protocol (see EXPERIMENTS.md).
func GlobalRing() Constructor {
	rules := []core.Rule{
		// Normal behavior begins only after a line has length 2 edges:
		// the leader of a 1-edge line is the barred l̄.
		{A: grQ0, B: grQ0, Edge: false, OutA: grQ1, OutB: grLbar, OutEdge: true},
		{A: grL, B: grQ0, Edge: false, OutA: grQ2, OutB: grL, OutEdge: true},
		{A: grLbar, B: grQ0, Edge: false, OutA: grQ2, OutB: grL, OutEdge: true},

		// Merging: the random walk of a w-leader begins.
		{A: grL, B: grL, Edge: false, OutA: grQ2, OutB: grW, OutEdge: true},
		{A: grL, B: grLbar, Edge: false, OutA: grQ2, OutB: grW, OutEdge: true},
		{A: grLbar, B: grLbar, Edge: false, OutA: grQ2, OutB: grW, OutEdge: true},
		{A: grW, B: grQ2, Edge: true, OutA: grQ2, OutB: grW, OutEdge: true},
		{A: grW, B: grQ1, Edge: true, OutA: grQ2, OutB: grL, OutEdge: true},

		// l connecting to a q1 endpoint, possibly closing its own line
		// into a cycle; both endpoints become blocked.
		{A: grL, B: grQ1, Edge: false, OutA: grLp, OutB: grQ2p, OutEdge: true},

		// Another component detected: a closed cycle must open. A
		// blocked endpoint meeting any unblocked state over an
		// inactive edge becomes double-primed.
		{A: grLp, B: grL, Edge: false, OutA: grLpp, OutB: grL, OutEdge: false},
		{A: grLp, B: grLbar, Edge: false, OutA: grLpp, OutB: grLbar, OutEdge: false},
		{A: grLp, B: grW, Edge: false, OutA: grLpp, OutB: grW, OutEdge: false},
		{A: grLp, B: grQ1, Edge: false, OutA: grLpp, OutB: grQ1, OutEdge: false},
		{A: grLp, B: grQ0, Edge: false, OutA: grLpp, OutB: grQ0, OutEdge: false},
		{A: grQ2p, B: grL, Edge: false, OutA: grQ2pp, OutB: grL, OutEdge: false},
		{A: grQ2p, B: grLbar, Edge: false, OutA: grQ2pp, OutB: grLbar, OutEdge: false},
		{A: grQ2p, B: grW, Edge: false, OutA: grQ2pp, OutB: grW, OutEdge: false},
		{A: grQ2p, B: grQ1, Edge: false, OutA: grQ2pp, OutB: grQ1, OutEdge: false},
		{A: grQ2p, B: grQ0, Edge: false, OutA: grQ2pp, OutB: grQ0, OutEdge: false},
		{A: grLp, B: grLp, Edge: false, OutA: grLpp, OutB: grLpp, OutEdge: false},
		{A: grLp, B: grQ2p, Edge: false, OutA: grLpp, OutB: grQ2pp, OutEdge: false},
		{A: grQ2p, B: grQ2p, Edge: false, OutA: grQ2pp, OutB: grQ2pp, OutEdge: false},

		// Opening closed cycles: the blocked pair backtracks.
		{A: grLpp, B: grQ2p, Edge: true, OutA: grL, OutB: grQ1, OutEdge: false},
		{A: grLp, B: grQ2pp, Edge: true, OutA: grL, OutB: grQ1, OutEdge: false},
		{A: grLpp, B: grQ2pp, Edge: true, OutA: grL, OutB: grQ1, OutEdge: false},
	}
	p := core.MustProtocol(
		"Global-Ring",
		[]string{"q0", "q1", "q2", "l", "w", "l'", "l''", "q2'", "q2''", "lbar"},
		grQ0,
		nil,
		rules,
	)
	// Stable: the whole population is one closed cycle — one l′, one
	// q2′ and n−2 plain q2 nodes. With no node outside the component
	// the blocked pair can never detect anything, so the configuration
	// is quiescent.
	det := core.Detector{
		Trigger: core.TriggerEdge,
		Stable: func(cfg *core.Config) bool {
			if cfg.N() < 3 {
				return false
			}
			if cfg.Count(grLp) != 1 || cfg.Count(grQ2p) != 1 || cfg.Count(grQ2) != cfg.N()-2 {
				return false
			}
			return ActiveGraph(cfg).IsSpanningRing()
		},
	}
	return Constructor{Proto: p, Detector: det, Target: "spanning ring"}
}
