package protocols

import (
	"fmt"

	"repro/internal/core"
)

// CCliques returns Protocol 8, the (5c−3)-state constructor that
// partitions the population into ⌊n/c⌋ cliques of order c (Theorem 12).
// The n mod c leftover nodes stabilize as one incomplete component.
//
// Each component is assembled by a leader that recruits c−1 followers,
// converts them to degree-counting states, and then roams its own
// component checking for (and dismantling, together with the other
// component's leader) wrong inter-component connections.
func CCliques(c int) (Constructor, error) {
	if c < 2 {
		return Constructor{}, fmt.Errorf("protocols: c-Cliques requires c ≥ 2, got %d", c)
	}
	if 5*c-3 > core.MaxStates {
		return Constructor{}, fmt.Errorf("protocols: c-Cliques with c=%d exceeds the state budget", c)
	}

	// State layout, in order: l0..l_{c−2}, f1..f_{c−2}, f, l̄0..l̄_{c−2},
	// l, 1..c−1, l′1..l′_{c−1}, r.
	names := make([]string, 0, 5*c-3)
	index := make(map[string]core.State, 5*c-3)
	addState := func(name string) {
		index[name] = core.State(len(names))
		names = append(names, name)
	}
	for i := 0; i <= c-2; i++ {
		addState(fmt.Sprintf("l%d", i))
	}
	for i := 1; i <= c-2; i++ {
		addState(fmt.Sprintf("f%d", i))
	}
	addState("f")
	for i := 0; i <= c-2; i++ {
		addState(fmt.Sprintf("lbar%d", i))
	}
	addState("l")
	for i := 1; i <= c-1; i++ {
		addState(fmt.Sprintf("%d", i))
	}
	for i := 1; i <= c-1; i++ {
		addState(fmt.Sprintf("l'%d", i))
	}
	addState("r")

	li := func(i int) core.State { return index[fmt.Sprintf("l%d", i)] }
	fi := func(i int) core.State { return index[fmt.Sprintf("f%d", i)] }
	lbar := func(i int) core.State { return index[fmt.Sprintf("lbar%d", i)] }
	num := func(i int) core.State { return index[fmt.Sprintf("%d", i)] }
	lp := func(i int) core.State { return index[fmt.Sprintf("l'%d", i)] }
	fSt, lSt, rSt := index["f"], index["l"], index["r"]

	var rules []core.Rule
	add := func(a, b core.State, edge bool, oa, ob core.State, oe bool) {
		rules = append(rules, core.Rule{A: a, B: b, Edge: edge, OutA: oa, OutB: ob, OutEdge: oe})
	}

	// A leader grows its component by attracting isolated nodes; the
	// node completing the component enters the numbered phase directly.
	if c == 2 {
		// Degenerate completion: a pair is a finished component and
		// there are no f-followers to convert.
		add(li(0), li(0), false, lSt, num(1), true)
	} else {
		for i := 0; i < c-2; i++ {
			add(li(i), li(0), false, li(i+1), fSt, true)
		}
		add(li(c-2), li(0), false, lbar(1), num(1), true)
	}
	// Nondeterministic elimination of incomplete components: a leader
	// absorbs another leader (which must later release its own
	// followers) to avoid deadlock among undersized components.
	for i := 1; i <= c-2; i++ {
		for j := 1; j <= i; j++ {
			if i < c-2 {
				add(li(i), li(j), false, li(i+1), fi(j), true)
			} else {
				add(li(i), li(j), false, lbar(0), fi(j), true)
			}
		}
	}
	// An absorbed leader releases its old followers one by one.
	for i := 2; i <= c-2; i++ {
		add(fi(i), fSt, true, fi(i-1), li(0), false)
	}
	if c >= 3 {
		add(fi(1), fSt, true, fSt, li(0), false)
	}
	// The leader of a complete component converts its f-followers into
	// numbered, degree-counting followers.
	for i := 0; i < c-2; i++ {
		add(lbar(i), fSt, true, lbar(i+1), num(1), true)
	}
	if c >= 3 {
		add(lbar(c-2), fSt, true, lSt, num(1), true)
	}
	// Numbered followers connect until their degree reaches c−1; the
	// counter equals the active degree (leader connection included).
	for i := 1; i <= c-2; i++ {
		for j := 1; j <= i; j++ {
			add(num(i), num(j), false, num(i+1), num(j+1), true)
		}
	}
	// The leader temporarily takes a follower's place to inspect its
	// connections.
	for i := 1; i <= c-1; i++ {
		add(lSt, num(i), true, rSt, lp(i), true)
	}
	// Two visiting leaders joined by an active edge sit on different
	// components: the connection is wrong and is dismantled. Counters
	// of 1 carry only the (correct) leader connection, so only i ≥ 2
	// can occur here.
	for i := 2; i <= c-1; i++ {
		for j := 2; j <= i; j++ {
			add(lp(i), lp(j), true, lp(i-1), lp(j-1), false)
		}
	}
	// The leader returns to its own position nondeterministically.
	for i := 1; i <= c-1; i++ {
		add(lp(i), rSt, true, num(i), lSt, true)
	}

	p, err := core.NewProtocol(fmt.Sprintf("c-Cliques(c=%d)", c), names, li(0), nil, rules)
	if err != nil {
		return Constructor{}, fmt.Errorf("protocols: compile c-Cliques: %w", err)
	}

	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			n := cfg.N()
			// An absorbed leader still holding its old connections
			// means pending deactivations.
			for j := 1; j <= c-2; j++ {
				if cfg.Count(fi(j)) != 0 {
					return false
				}
			}
			g := ActiveGraph(cfg)
			cliques := 0
			leftover := -1
			for _, comp := range g.Components() {
				switch {
				case len(comp) == c:
					sub, _ := g.InducedSubgraph(comp)
					if sub.M() != c*(c-1)/2 {
						return false
					}
					cliques++
				case len(comp) == n%c && leftover < 0:
					// The single incomplete component: an isolated
					// node or a star around its leader.
					if len(comp) > 1 {
						sub, _ := g.InducedSubgraph(comp)
						if !sub.IsSpanningStar() {
							return false
						}
					}
					leftover = len(comp)
				default:
					return false
				}
			}
			if cliques != n/c {
				return false
			}
			if n%c == 0 {
				return leftover < 0
			}
			return leftover == n%c
		},
	}
	return Constructor{
		Proto:    p,
		Detector: det,
		Target:   fmt.Sprintf("partition into ⌊n/%d⌋ cliques of order %d", c, c),
	}, nil
}
