package protocols

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func runReplication(t *testing.T, g1 *graph.Graph, n int, seed uint64) *core.Config {
	t.Helper()
	c := GraphReplication()
	initial, err := ReplicationInitial(c.Proto, g1, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(c.Proto, n, core.Options{
		Seed:     seed,
		Detector: ReplicationDetector(g1),
		Initial:  initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("replication of %v on n=%d did not converge", g1, n)
	}
	return res.Final
}

func replicaOf(t *testing.T, c Constructor, final *core.Config) *graph.Graph {
	t.Helper()
	rState, ok := c.Proto.StateIndex("r")
	if !ok {
		t.Fatal("no r state")
	}
	var members []int
	for u := 0; u < final.N(); u++ {
		if final.Node(u) == rState {
			members = append(members, u)
		}
	}
	g := graph.New(len(members))
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if final.Edge(members[i], members[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestReplicationOfNamedGraphs(t *testing.T) {
	t.Parallel()
	c := GraphReplication()
	cases := []struct {
		name string
		g1   *graph.Graph
	}{
		{"line", graph.Line(5)},
		{"ring", graph.Ring(6)},
		{"star", graph.Star(5)},
		{"complete", graph.Complete(4)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			final := runReplication(t, tc.g1, 2*tc.g1.N(), 3)
			got := replicaOf(t, c, final)
			if !graph.Isomorphic(tc.g1, got) {
				t.Fatalf("replica %v not isomorphic to input %v", got, tc.g1)
			}
		})
	}
}

func TestReplicationOfRandomGraphs(t *testing.T) {
	t.Parallel()
	c := GraphReplication()
	for seed := uint64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewPCG(seed, 5))
		g1 := graph.Gnp(6, 0.5, rng)
		if !g1.Connected() {
			// The paper assumes connected inputs.
			continue
		}
		final := runReplication(t, g1, 12, seed)
		if got := replicaOf(t, c, final); !graph.Isomorphic(g1, got) {
			t.Fatalf("seed %d: replica %v not isomorphic to %v", seed, got, g1)
		}
	}
}

// TestReplicationSpareNodesUntouched: with |V2| > |V1| the surplus V2
// nodes must stay in r0 forever (the protocol introduces no waste).
func TestReplicationSpareNodesUntouched(t *testing.T) {
	t.Parallel()
	c := GraphReplication()
	g1 := graph.Ring(4)
	n := 2*g1.N() + 3
	final := runReplication(t, g1, n, 2)
	r0, _ := c.Proto.StateIndex("r0")
	if got := final.Count(r0); got != 3 {
		t.Fatalf("%d spare nodes left in r0, want 3", got)
	}
	for u := 0; u < n; u++ {
		if final.Node(u) == r0 && final.Degree(u) != 0 {
			t.Fatalf("spare node %d has active edges", u)
		}
	}
}

func TestReplicationInitialValidation(t *testing.T) {
	t.Parallel()
	c := GraphReplication()
	if _, err := ReplicationInitial(c.Proto, graph.Ring(5), 8); err == nil {
		t.Fatal("|V2| < |V1| accepted")
	}
}

func TestReplicationStateCount(t *testing.T) {
	t.Parallel()
	if got := GraphReplication().Proto.Size(); got != 12 {
		t.Fatalf("Graph-Replication has %d states, paper says 12", got)
	}
	if !GraphReplication().Proto.Randomized() {
		t.Fatal("Graph-Replication must be a PREL (randomized) protocol")
	}
}

// TestReplicationOutputSet: Qout excludes all V1 states, so the output
// graph is carried entirely by V2.
func TestReplicationOutputSet(t *testing.T) {
	t.Parallel()
	c := GraphReplication()
	for _, name := range []string{"q0", "l", "la", "ld", "f", "fa", "fd", "r0"} {
		s, ok := c.Proto.StateIndex(name)
		if !ok {
			t.Fatalf("missing state %q", name)
		}
		if c.Proto.IsOutput(s) {
			t.Fatalf("V1/blank state %q is in Qout", name)
		}
	}
	for _, name := range []string{"r", "ra", "rd", "r'"} {
		s, _ := c.Proto.StateIndex(name)
		if !c.Proto.IsOutput(s) {
			t.Fatalf("V2 state %q missing from Qout", name)
		}
	}
}

func TestDegreeDoubling(t *testing.T) {
	t.Parallel()
	for d := 1; d <= 4; d++ {
		d := d
		t.Run(string(rune('0'+d)), func(t *testing.T) {
			t.Parallel()
			cons, err := DegreeDoubling(d)
			if err != nil {
				t.Fatal(err)
			}
			n := (1 << d) + 3
			initial, err := DegreeDoublingInitial(cons.Proto, n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(cons.Proto, n, core.Options{Seed: 4, Detector: cons.Detector, Initial: initial})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("d=%d: no convergence", d)
			}
			if got := res.Final.Degree(0); got != 1<<d {
				t.Fatalf("d=%d: center degree %d, want %d", d, got, 1<<d)
			}
		})
	}
}

func TestDegreeDoublingValidation(t *testing.T) {
	t.Parallel()
	if _, err := DegreeDoubling(0); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := DegreeDoubling(64); err == nil {
		t.Fatal("absurd d accepted")
	}
	c, err := DegreeDoubling(2)
	if err != nil {
		t.Fatal(err)
	}
	other := core.MustProtocol("other", []string{"x"}, 0, nil, nil)
	if _, err := DegreeDoublingInitial(other, 8); err == nil {
		t.Fatal("foreign protocol accepted")
	}
	_ = c
}

func TestRegistryLookup(t *testing.T) {
	t.Parallel()
	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, name := range names {
		c, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Proto == nil || c.Target == "" {
			t.Fatalf("registry entry %q incomplete", name)
		}
	}
	if _, err := Lookup("no-such-protocol"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestOutputGraphHelper(t *testing.T) {
	t.Parallel()
	c := GraphReplication()
	g1 := graph.Line(3)
	initial, err := ReplicationInitial(c.Proto, g1, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Before any interaction, no node is in an output state.
	out, members := OutputGraph(initial)
	if out.N() != 0 || len(members) != 0 {
		t.Fatalf("initial output graph should be empty, got %v", out)
	}
}
