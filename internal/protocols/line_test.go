package protocols

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func lineConstructors() map[string]Constructor {
	return map[string]Constructor{
		"simple": SimpleGlobalLine(),
		"fast":   FastGlobalLine(),
		"faster": FasterGlobalLine(),
	}
}

// TestLineProtocolsSweep: every line protocol builds a spanning line
// across sizes and seeds.
func TestLineProtocolsSweep(t *testing.T) {
	t.Parallel()
	for name, c := range lineConstructors() {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, n := range []int{2, 3, 4, 5, 8, 13, 21} {
				for seed := uint64(1); seed <= 3; seed++ {
					res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("n=%d seed=%d: no convergence", n, seed)
					}
					if g := ActiveGraph(res.Final); !g.IsSpanningLine() {
						t.Fatalf("n=%d seed=%d: %v not a spanning line", n, seed, g)
					}
				}
			}
		})
	}
}

// TestLineProtocolsUnderAdversarialSchedulers: the stabilization
// theorems only assume fairness, so every fair scheduler must reach a
// spanning line.
func TestLineProtocolsUnderAdversarialSchedulers(t *testing.T) {
	t.Parallel()
	schedulers := func() []core.Scheduler {
		return []core.Scheduler{
			&core.RoundRobinScheduler{},
			&core.PermutationScheduler{},
			&core.BiasedScheduler{Cut: 4, Epsilon: 0.1},
		}
	}
	for name, c := range lineConstructors() {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, sched := range schedulers() {
				res, err := core.Run(c.Proto, 10, core.Options{
					Seed:      5,
					Detector:  c.Detector,
					Scheduler: sched,
					MaxSteps:  50_000_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("scheduler %s: no convergence", sched.Name())
				}
				if g := ActiveGraph(res.Final); !g.IsSpanningLine() {
					t.Fatalf("scheduler %s: %v not a spanning line", sched.Name(), g)
				}
			}
		})
	}
}

// lineInvariantObserver checks the Theorem 3 execution invariant after
// every effective step: the active graph is always a disjoint union of
// lines (and isolated nodes).
type lineInvariantObserver struct {
	t    *testing.T
	name string
}

func (o *lineInvariantObserver) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
	if !edgeChanged {
		return
	}
	g := ActiveGraph(cfg)
	for _, comp := range g.Components() {
		if len(comp) == 1 {
			continue
		}
		sub, _ := g.InducedSubgraph(comp)
		if !sub.IsSpanningLine() {
			o.t.Fatalf("%s step %d: component %v is not a line", o.name, step, comp)
		}
	}
}

func TestSimpleGlobalLineInvariant(t *testing.T) {
	t.Parallel()
	c := SimpleGlobalLine()
	for seed := uint64(1); seed <= 5; seed++ {
		obs := &lineInvariantObserver{t: t, name: "simple"}
		if _, err := core.Run(c.Proto, 12, core.Options{Seed: seed, Detector: c.Detector, Observer: obs}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFastGlobalLineLeaderInvariant: every line component of Protocol
// 2 carries exactly one leader-ish state (l, l′ or l″) or exactly one
// sleeping head (f0/f1 lines have none awake).
func TestFastGlobalLineLeaderInvariant(t *testing.T) {
	t.Parallel()
	c := FastGlobalLine()
	leaderish := map[string]bool{"l": true, "l'": true, "l''": true}
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		if !edgeChanged {
			return
		}
		g := ActiveGraph(cfg)
		for _, comp := range g.Components() {
			if len(comp) == 1 {
				continue
			}
			leaders := 0
			for _, node := range comp {
				if leaderish[c.Proto.StateName(cfg.Node(node))] {
					leaders++
				}
			}
			if leaders > 1 {
				t.Fatalf("step %d: component %v has %d leaders", step, comp, leaders)
			}
		}
	})
	for seed := uint64(1); seed <= 5; seed++ {
		if _, err := core.Run(c.Proto, 12, core.Options{Seed: seed, Detector: c.Detector, Observer: obs}); err != nil {
			t.Fatal(err)
		}
	}
}

type observerFunc func(step int64, u, v int, edgeChanged bool, cfg *core.Config)

func (f observerFunc) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
	f(step, u, v, edgeChanged, cfg)
}

// TestLineConvergenceDominatesLowerBound: Theorem 2 gives Ω(n²); the
// measured mean must clear a conservative fraction of n²/4 (the
// bottleneck transition alone costs ≥ n(n−1)/8 in expectation for the
// weakest case).
func TestLineConvergenceDominatesLowerBound(t *testing.T) {
	t.Parallel()
	c := FastGlobalLine()
	const n, trials = 24, 10
	var total float64
	for seed := uint64(1); seed <= trials; seed++ {
		res, err := core.Run(c.Proto, n, core.Options{Seed: seed, Detector: c.Detector})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
		total += float64(res.ConvergenceTime)
	}
	mean := total / trials
	if lb := float64(n*n) / 4; mean < lb {
		t.Fatalf("mean %f below the Ω(n²) sanity floor %f", mean, lb)
	}
}

func TestSpanningNetCoversEveryNode(t *testing.T) {
	t.Parallel()
	c := SpanningNet()
	for _, n := range []int{2, 5, 16, 33} {
		res, err := core.Run(c.Proto, n, core.Options{Seed: 9, Detector: c.Detector})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: no convergence", n)
		}
		if g := ActiveGraph(res.Final); !g.IsSpanning() {
			t.Fatalf("n=%d: %v has an uncovered node", n, g)
		}
	}
}

// TestFasterBeatsFastOnAverage reproduces the paper's Section 7
// claim at a fixed size with paired seeds.
func TestFasterBeatsFastOnAverage(t *testing.T) {
	t.Parallel()
	fast, faster := FastGlobalLine(), FasterGlobalLine()
	const n, trials = 32, 8
	var fastTotal, fasterTotal float64
	for seed := uint64(1); seed <= trials; seed++ {
		rf, err := core.Run(fast.Proto, n, core.Options{Seed: seed, Detector: fast.Detector})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := core.Run(faster.Proto, n, core.Options{Seed: seed, Detector: faster.Detector})
		if err != nil {
			t.Fatal(err)
		}
		fastTotal += float64(rf.ConvergenceTime)
		fasterTotal += float64(rr.ConvergenceTime)
	}
	if fasterTotal >= fastTotal {
		t.Fatalf("Faster-Global-Line (%f) did not beat Fast-Global-Line (%f) on average",
			fasterTotal/trials, fastTotal/trials)
	}
}

func TestLineStateCounts(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		c    Constructor
		want int
	}{
		{SimpleGlobalLine(), 5},
		{FastGlobalLine(), 9},
		{FasterGlobalLine(), 6},
		{SpanningNet(), 2},
	} {
		if got := tc.c.Proto.Size(); got != tc.want {
			t.Fatalf("%s: %d states, paper says %d", tc.c.Proto.Name(), got, tc.want)
		}
	}
}

func TestLineProtocolDeterminism(t *testing.T) {
	t.Parallel()
	c := SimpleGlobalLine()
	results := make([]core.Result, 2)
	for i := range results {
		res, err := core.Run(c.Proto, 15, core.Options{Seed: 77, Detector: c.Detector})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if results[0].ConvergenceTime != results[1].ConvergenceTime ||
		results[0].Final.String() != results[1].Final.String() {
		t.Fatal("identical seeds produced different executions")
	}
}

func ExampleSimpleGlobalLine() {
	c := SimpleGlobalLine()
	res, err := core.Run(c.Proto, 8, core.Options{Seed: 3, Detector: c.Detector})
	if err != nil {
		panic(err)
	}
	g := ActiveGraph(res.Final)
	fmt.Println("spanning line:", g.IsSpanningLine(), "edges:", g.M())
	// Output: spanning line: true edges: 7
}
