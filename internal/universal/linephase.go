package universal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

// withDead extends a protocol with an inert "dead" state so it can run
// on a subpopulation of a larger population: dead nodes match no rule,
// so interactions touching them are wasted steps — exactly the cost
// the uniform random scheduler imposes on a phase that only involves
// part of the population.
func withDead(p *core.Protocol) (*core.Protocol, core.State, error) {
	states := append(p.States(), "dead")
	dead := core.State(len(states) - 1)
	ext, err := core.NewProtocol(p.Name()+"+dead", states, p.Initial(), nil, p.Rules())
	if err != nil {
		return nil, 0, fmt.Errorf("universal: extend %q with dead state: %w", p.Name(), err)
	}
	return ext, dead, nil
}

// linePhase builds a spanning line over the live subset of the
// population by running a real spanning-line constructor in which all
// other nodes are inert, preserving any pre-existing active edges
// (e.g. the U–D matching). It returns the final configuration, the
// live nodes in line order, and the run result.
func linePhase(base protocols.Constructor, n int, live []int, carry *core.Config, seed uint64, maxSteps int64) (*core.Config, []int, core.Result, error) {
	ext, dead, err := withDead(base.Proto)
	if err != nil {
		return nil, nil, core.Result{}, err
	}
	isLive := make([]bool, n)
	for _, u := range live {
		isLive[u] = true
	}
	initial := core.NewConfig(ext, n)
	for u := 0; u < n; u++ {
		if !isLive[u] {
			initial.SetNode(u, dead)
		}
	}
	if carry != nil {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if carry.Edge(u, v) {
					initial.SetEdge(u, v, true)
				}
			}
		}
	}

	lineOn := func(cfg *core.Config) (*graph.Graph, bool) {
		sub := graph.New(len(live))
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				if cfg.Edge(live[i], live[j]) {
					sub.AddEdge(i, j)
				}
			}
		}
		return sub, sub.IsSpanningLine()
	}
	gate, err := lineGate(ext)
	if err != nil {
		return nil, nil, core.Result{}, err
	}
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			if !gate(cfg) {
				return false
			}
			_, ok := lineOn(cfg)
			return ok
		},
	}
	res, err := core.Run(ext, n, core.Options{
		Seed:     seed,
		Detector: det,
		Initial:  initial,
		MaxSteps: maxSteps,
	})
	if err != nil {
		return nil, nil, core.Result{}, err
	}
	if !res.Converged {
		return nil, nil, res, fmt.Errorf("universal: line phase did not converge within %d steps", res.Steps)
	}

	sub, _ := lineOn(res.Final)
	order, err := lineOrder(sub)
	if err != nil {
		return nil, nil, res, err
	}
	ordered := make([]int, len(order))
	for i, idx := range order {
		ordered[i] = live[idx]
	}
	return res.Final, ordered, res, nil
}

// lineGate returns the protocol-specific O(1) precondition under which
// "the live subgraph is a spanning line" is absorbing: for
// Simple-Global-Line (which never deactivates) the absence of q0
// suffices; for Fast-Global-Line the steal machinery must also be
// drained so the line cannot be broken again.
func lineGate(p *core.Protocol) (func(cfg *core.Config) bool, error) {
	count := func(name string) (core.State, error) {
		s, ok := p.StateIndex(name)
		if !ok {
			return 0, fmt.Errorf("universal: protocol %q lacks state %q", p.Name(), name)
		}
		return s, nil
	}
	q0, err := count("q0")
	if err != nil {
		return nil, err
	}
	if _, ok := p.StateIndex("l''"); !ok {
		// Simple-Global-Line shape.
		return func(cfg *core.Config) bool { return cfg.Count(q0) == 0 }, nil
	}
	var gates []core.State
	for _, name := range []string{"l'", "l''", "q2'", "f0", "f1"} {
		s, err := count(name)
		if err != nil {
			return nil, err
		}
		gates = append(gates, s)
	}
	l, err := count("l")
	if err != nil {
		return nil, err
	}
	return func(cfg *core.Config) bool {
		if cfg.Count(q0) != 0 || cfg.Count(l) != 1 {
			return false
		}
		for _, s := range gates {
			if cfg.Count(s) != 0 {
				return false
			}
		}
		return true
	}, nil
}

// lineOrder returns the vertices of a path graph in endpoint-to-
// endpoint order.
func lineOrder(g *graph.Graph) ([]int, error) {
	n := g.N()
	if n == 1 {
		return []int{0}, nil
	}
	start := -1
	for u := 0; u < n; u++ {
		if g.Degree(u) == 1 {
			start = u
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("universal: graph %v is not a line", g)
	}
	order := make([]int, 0, n)
	prev, cur := -1, start
	for {
		order = append(order, cur)
		next := -1
		for _, v := range g.Neighbors(cur) {
			if v != prev {
				next = v
				break
			}
		}
		if next < 0 {
			break
		}
		prev, cur = cur, next
	}
	if len(order) != n {
		return nil, fmt.Errorf("universal: line order visited %d of %d nodes", len(order), n)
	}
	return order, nil
}
