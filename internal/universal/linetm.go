package universal

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tm"
)

// lineTM executes a real Turing machine on a line of k population
// nodes, charging every head movement the interaction cost the paper's
// construction pays: the head carries l/r/t direction marks and only
// advances when the scheduler delivers the head-neighbor pair
// (Fig. 5). The work tape is the line's k cells; the input is accessed
// through an external read function (the counter-addressed D-edge
// probes of Fig. 6), each access charged by the caller.
type lineTM struct {
	charge *chargeModel
	cells  []byte
}

func newLineTM(charge *chargeModel, k int) *lineTM {
	cells := make([]byte, k)
	for i := range cells {
		cells[i] = tm.Blank
	}
	return &lineTM{charge: charge, cells: cells}
}

// errOutOfTape reports that a machine exceeded the line's capacity —
// the space budget of the DGS(·) class being instantiated.
type outOfTapeError struct {
	Machine string
	Cells   int
}

func (e *outOfTapeError) Error() string {
	return fmt.Sprintf("universal: machine %q exceeded the line's %d cells", e.Machine, e.Cells)
}

// run executes m with the given input written on the leftmost cells
// (input must fit the line). The initial head positioning pass — the
// t-mark walk of Fig. 5 that gives the head its sense of direction —
// is charged as one traversal of the line.
func (l *lineTM) run(m *tm.Machine, input []byte, maxSteps int64) (bool, error) {
	if len(input) > len(l.cells) {
		return false, &outOfTapeError{Machine: m.Name, Cells: len(l.cells)}
	}
	if err := m.Validate(); err != nil {
		return false, err
	}
	copy(l.cells, input)
	for i := len(input); i < len(l.cells); i++ {
		l.cells[i] = tm.Blank
	}
	// Initialization pass: the head walks to the right endpoint and
	// back, installing the l/r marks.
	l.charge.walk(2 * len(l.cells))

	state := m.Start
	pos := 0
	var steps int64
	for steps < maxSteps {
		if state == tm.Accept {
			return true, nil
		}
		if state == tm.Reject {
			return false, nil
		}
		t, ok := m.Delta[tm.Key{State: state, Symbol: l.cells[pos]}]
		if !ok {
			return false, nil
		}
		l.cells[pos] = t.Write
		next := pos + int(t.Move)
		if next < 0 || next >= len(l.cells) {
			return false, &outOfTapeError{Machine: m.Name, Cells: len(l.cells)}
		}
		if next != pos {
			// The head moves only when the scheduler picks the
			// head–neighbor pair.
			l.charge.waitPair()
			pos = next
		}
		state = t.Next
		steps++
	}
	return false, tm.ErrStepLimit
}

// drawRandomGraph performs the Fig. 6 experiment on k addressable
// nodes: for every pair (i, j), a counter on the line marks node i
// (walking i hops) and node j (walking j hops), the pair's own
// interaction flips the PREL coin to set the edge, and the marks are
// retracted. The result is a uniformly random graph in G(k, 1/2).
func drawRandomGraph(charge *chargeModel, k int) *graph.Graph {
	g := graph.New(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			// Mark i and j (walk out), one interaction to flip the
			// coin on the pair, then unmark (walk back).
			charge.walk(i + 1)
			charge.walk(j + 1)
			charge.waitPair()
			if charge.coin() {
				g.AddEdge(i, j)
			}
			charge.walk(i + 1)
			charge.walk(j + 1)
		}
	}
	return g
}

// scanInput charges one full pass over the adjacency encoding of a
// k-node graph via counter-addressed probes — the cost of feeding the
// input to the simulated decider.
func scanInput(charge *chargeModel, k int) {
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			charge.walk(i + 1)
			charge.walk(j + 1)
			charge.waitPair()
			charge.walk(i + 1)
			charge.walk(j + 1)
		}
	}
}
