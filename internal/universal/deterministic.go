package universal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

// Builder produces the target graph for a given useful-space size —
// the graph-constructing TM of Remark 2 ("on input g(n) the TM outputs
// a graph of order g(n)"). Returning nil means no target exists at
// that size.
type Builder func(k int) *graph.Graph

// DeterministicConstruct instantiates Remark 2: the class REL needs no
// randomness when the target family is TM-constructible. The pipeline
// partitions the population into matched halves, organizes U into a
// line-as-TM, and has the TM write the builder's graph onto D edge by
// edge via counter-addressed probes — no random drawing, no retry
// loop.
//
// This is how a NET constructs one specific network (the paper's
// closing question about, e.g., the Petersen graph on 10 useful
// nodes): supply a Builder that returns it.
func DeterministicConstruct(build Builder, n int, seed uint64) (Result, error) {
	if n < 6 {
		return Result{}, errPopulationTooSmall
	}
	var res Result
	record := func(name string, steps int64) {
		res.PhaseSteps = append(res.PhaseSteps, PhaseStat{Name: name, Steps: steps})
		res.Steps += steps
	}

	// Phase 1: U/D partition (real run).
	p, det := PartitionUD()
	r, err := core.Run(p, n, core.Options{Seed: seed, Detector: det})
	if err != nil {
		return Result{}, err
	}
	if !r.Converged {
		return Result{}, fmt.Errorf("universal: U/D partition did not converge")
	}
	part := classify(r.Final)
	record("partition-UD", r.Steps)

	// Phase 2: spanning line over U (real run).
	lineBase := protocols.SimpleGlobalLine()
	if len(part.u) >= 16 {
		lineBase = protocols.FastGlobalLine()
	}
	_, _, lineRes, err := linePhase(lineBase, n, part.u, r.Final, seed+1, 0)
	if err != nil {
		return Result{}, err
	}
	record("spanning-line", lineRes.Steps)

	k := len(part.d)
	target := build(k)
	if target == nil {
		return Result{}, fmt.Errorf("universal: builder has no target of order %d", k)
	}
	if target.N() != k {
		return Result{}, fmt.Errorf("universal: builder returned order %d, want %d", target.N(), k)
	}

	// Phase 3: the TM walks every D pair once and writes the target
	// edge value (mark i, mark j, pair interaction, retract marks).
	rng := core.NewRNG(seed ^ 0x2545f4914f6cdd1d)
	charge := newChargeModel(n, rng)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			charge.walk(i + 1)
			charge.walk(j + 1)
			charge.waitPair()
			charge.walk(i + 1)
			charge.walk(j + 1)
		}
	}
	record("write-target", charge.Steps())

	// Phase 4: release the useful space.
	before := charge.Steps()
	for range part.d {
		charge.waitPair()
	}
	record("release", charge.Steps()-before)

	res.Output = target.Clone()
	res.UsefulNodes = append([]int(nil), part.d...)
	res.Waste = n - k
	res.Attempts = 1
	return res, nil
}

// Ring-, clique- and Petersen-builders used by examples, tests and
// benchmarks.

// RingBuilder returns the spanning-ring family (defined for k ≥ 3).
func RingBuilder() Builder {
	return func(k int) *graph.Graph {
		if k < 3 {
			return nil
		}
		return graph.Ring(k)
	}
}

// CliqueBuilder returns the complete-graph family.
func CliqueBuilder() Builder {
	return func(k int) *graph.Graph { return graph.Complete(k) }
}

// PetersenBuilder returns the Petersen graph when the useful space is
// exactly 10 nodes — the paper's concluding example of a non-uniform
// target.
func PetersenBuilder() Builder {
	return func(k int) *graph.Graph {
		if k != 10 {
			return nil
		}
		g := graph.New(10)
		for i := 0; i < 5; i++ {
			g.AddEdge(i, (i+1)%5)
			g.AddEdge(5+i, 5+(i+2)%5)
			g.AddEdge(i, 5+i)
		}
		return g
	}
}
