package universal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// SupernodeResult reports a Theorem 18 run: the population organized
// into K named lines ("supernodes") of LineLen nodes each — enough
// local memory for each supernode to hold a unique ⌈log K⌉-bit name.
type SupernodeResult struct {
	// K is the number of supernodes (a power of two, the largest with
	// K·log₂K ≤ n).
	K int
	// LineLen is each supernode's length, log₂ K.
	LineLen int
	// Names maps each supernode to its unique binary name (0..K−1).
	Names []int
	// Lines lists each supernode's population node indices in line
	// order.
	Lines [][]int
	// Waste is n − K·LineLen.
	Waste int
	// Steps is the total charged interaction count.
	Steps int64
	// PhaseSteps breaks Steps down.
	PhaseSteps []PhaseStat
	// SupernodeGraph is the network built at the supernode abstraction
	// layer by the triangle application (edges between supernode
	// representatives).
	SupernodeGraph *graph.Graph
	// Triangles is the number of complete triangles formed, ⌊K/3⌋.
	Triangles int
}

// Supernode-election state indices.
const (
	seL0 core.State = iota
	seL
	seQ0
)

// electionProtocol is the Theorem 18 opening move: all nodes start as
// candidate leaders l0 and pairwise meetings demote: (l0,l0,0) →
// (l,q0,0); surviving l leaders also eliminate each other and absorb
// stray candidates, leaving one l and n−1 free q0 nodes. (The paper's
// full construction reverts a defeated leader's partial component
// node-by-node; at phase level the reversion cost is dominated by the
// Θ(n²) election itself — see DESIGN.md §5.3.)
func electionProtocol() (*core.Protocol, core.Detector) {
	p := core.MustProtocol(
		"Supernode-Election",
		[]string{"l0", "l", "q0"},
		seL0,
		nil,
		[]core.Rule{
			{A: seL0, B: seL0, Edge: false, OutA: seL, OutB: seQ0},
			{A: seL, B: seL0, Edge: false, OutA: seL, OutB: seQ0},
			{A: seL, B: seL, Edge: false, OutA: seL, OutB: seQ0},
		},
	)
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			return cfg.Count(seL0) == 0 && cfg.Count(seL) == 1
		},
	}
	return p, det
}

// Supernodes organizes n nodes into the largest possible set of named
// supernodes per Theorem 18, then runs the paper's triangle
// application at the supernode layer ("each supernode with id i
// connects to id i+2 if i ≡ 0 (mod 3), otherwise to id i−1").
func Supernodes(n int, seed uint64) (*SupernodeResult, error) {
	if n < 8 {
		return nil, errPopulationTooSmall
	}

	res := &SupernodeResult{}
	record := func(name string, steps int64) {
		res.PhaseSteps = append(res.PhaseSteps, PhaseStat{Name: name, Steps: steps})
		res.Steps += steps
	}

	// Phase 0: leader election (real run).
	p, det := electionProtocol()
	r, err := core.Run(p, n, core.Options{Seed: seed, Detector: det})
	if err != nil {
		return nil, err
	}
	if !r.Converged {
		return nil, fmt.Errorf("universal: supernode leader election did not converge")
	}
	record("leader-election", r.Steps)

	rng := core.NewRNG(seed ^ 0x94d049bb133111eb)
	charge := newChargeModel(n, rng)

	// Phase 1: the leader assembles the bootstrap structure — 4 lines
	// of length 2 with their left endpoints attached to the leader's
	// line — consuming 8 nodes. Each attachment waits for an
	// interaction with any currently isolated node.
	isolated := n - 8
	for i := 0; i < 8; i++ {
		charge.waitAny(isolated + (8 - i))
	}
	lines := 4
	length := 2
	record("bootstrap", charge.Steps())

	// Growth phases (Increment existing lines / Create new lines): a
	// phase j takes 2^{j−1} lines of length j−1 to 2^j lines of length
	// j. Run while the population can supply the nodes.
	before := charge.Steps()
	for {
		nextLines := lines * 2
		nextLen := length + 1
		if nextLines*nextLen > n {
			break
		}
		// The phase starts when the leader extends its own line.
		charge.waitAny(maxInt(isolated, 1))
		isolated--
		// Increment the other r−1 existing lines: visit (one
		// interaction along the left-endpoint star), attach an
		// isolated node, return.
		for i := 0; i < lines-1; i++ {
			charge.waitPair()
			charge.waitAny(maxInt(isolated, 1))
			isolated--
			charge.waitPair()
		}
		// Create r new lines of length nextLen node by node, moving a
		// boundary mark along the leader's line to measure length, and
		// write each new line's binary name into its cells.
		for i := 0; i < lines; i++ {
			for c := 0; c < nextLen; c++ {
				charge.waitAny(maxInt(isolated, 1))
				isolated--
				charge.waitPair() // advance the length mark
			}
			charge.walk(nextLen) // naming pass
		}
		lines = nextLines
		length = nextLen
	}
	record("growth-phases", charge.Steps()-before)

	res.K = lines
	res.LineLen = length
	res.Waste = n - lines*length

	// Materialize the supernode layout: node ids are assigned in
	// construction order (leader's line first).
	res.Lines = make([][]int, lines)
	res.Names = make([]int, lines)
	id := 0
	for i := 0; i < lines; i++ {
		res.Names[i] = i
		line := make([]int, length)
		for c := 0; c < length; c++ {
			line[c] = id
			id++
		}
		res.Lines[i] = line
	}

	// Application: triangle partition at the supernode layer. Each
	// edge requires the two representatives' interaction.
	before = charge.Steps()
	sg := graph.New(lines)
	for i := 0; i < lines; i++ {
		switch {
		case i%3 == 0 && i+2 < lines:
			sg.AddEdge(i, i+2)
			charge.waitPair()
		case i%3 != 0:
			sg.AddEdge(i, i-1)
			charge.waitPair()
		}
	}
	record("triangle-application", charge.Steps()-before)
	res.SupernodeGraph = sg
	for _, comp := range sg.Components() {
		if len(comp) == 3 {
			sub, _ := sg.InducedSubgraph(comp)
			if sub.M() == 3 {
				res.Triangles++
			}
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
