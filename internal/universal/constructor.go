package universal

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/tm"
)

// Result reports a generic-constructor run.
type Result struct {
	// Output is the constructed network on the useful space.
	Output *graph.Graph
	// UsefulNodes are the population indices carrying the output.
	UsefulNodes []int
	// Waste is n − |UsefulNodes|.
	Waste int
	// Attempts counts random-graph draws until the decider accepted
	// (the Fig. 3 loop).
	Attempts int
	// Steps is the total number of global interactions consumed:
	// real simulated steps for the partition and line phases plus
	// charged waits for every TM-controlled operation.
	Steps int64
	// PhaseSteps breaks Steps down by phase name, in execution order.
	PhaseSteps []PhaseStat
}

// PhaseStat is one pipeline phase's step count.
type PhaseStat struct {
	Name  string
	Steps int64
}

// LinearWasteHalf instantiates Theorem 14: DGS(O(n)) ⊆ PREL(⌊n/2⌋).
// It partitions the population into matched halves U and D, organizes
// U into a spanning line operated as a TM, and repeatedly draws a
// uniformly random graph on D until it belongs to lang; the result is
// released as the output. The decider may use linear space.
func LinearWasteHalf(lang tm.GraphLanguage, n int, seed uint64) (Result, error) {
	if n < 6 {
		return Result{}, errPopulationTooSmall
	}
	if lang.Space > LinearBudget {
		return Result{}, fmt.Errorf("universal: %s exceeds the linear-space budget of Theorem 14", lang.Space)
	}
	return runPipeline(lang, n, seed, pipelineHalf)
}

// LinearWasteThird instantiates Theorem 15: DGS(O(n²)) ⊆ PREL(⌊n/3⌋).
// The extra M third contributes Θ(n²) binary cells (its edges) as the
// simulated TM's work tape, trading useful space for simulation space.
func LinearWasteThird(lang tm.GraphLanguage, n int, seed uint64) (Result, error) {
	if n < 9 {
		return Result{}, errPopulationTooSmall
	}
	if lang.Space > QuadraticBudget {
		return Result{}, fmt.Errorf("universal: %s exceeds the quadratic-space budget of Theorem 15", lang.Space)
	}
	return runPipeline(lang, n, seed, pipelineThird)
}

// LogWaste instantiates Theorem 16: DGS(O(log n)) ⊆ PREL(n − log n).
// A spanning line counts the population, keeps its rightmost ⌈log n⌉
// cells as the simulator, and releases everyone else as useful space.
func LogWaste(lang tm.GraphLanguage, n int, seed uint64) (Result, error) {
	if n < 8 {
		return Result{}, errPopulationTooSmall
	}
	if lang.Space != tm.LogSpace {
		return Result{}, fmt.Errorf("universal: %s exceeds the logarithmic-space budget of Theorem 16", lang.Space)
	}
	return runPipeline(lang, n, seed, pipelineLog)
}

// Space budgets for the three pipelines, in tm.SpaceClass terms.
const (
	LinearBudget    = tm.LinearSpace
	QuadraticBudget = tm.QuadraticSpace
)

type pipelineKind int

const (
	pipelineHalf pipelineKind = iota + 1
	pipelineThird
	pipelineLog
)

func runPipeline(lang tm.GraphLanguage, n int, seed uint64, kind pipelineKind) (Result, error) {
	rng := core.NewRNG(seed ^ 0xd1b54a32d192ed03)
	var res Result
	record := func(name string, steps int64) {
		res.PhaseSteps = append(res.PhaseSteps, PhaseStat{Name: name, Steps: steps})
		res.Steps += steps
	}

	// Phase 1: partition (real protocol run). The log-waste pipeline
	// has no partition: the line spans everyone.
	var (
		part    partition
		partCfg *core.Config
	)
	switch kind {
	case pipelineHalf:
		p, det := PartitionUD()
		r, err := core.Run(p, n, core.Options{Seed: seed, Detector: det})
		if err != nil {
			return Result{}, err
		}
		if !r.Converged {
			return Result{}, fmt.Errorf("universal: U/D partition did not converge")
		}
		partCfg = r.Final
		part = classify(r.Final)
		record("partition-UD", r.Steps)
	case pipelineThird:
		p, det := PartitionUDM()
		r, err := core.Run(p, n, core.Options{Seed: seed, Detector: det})
		if err != nil {
			return Result{}, err
		}
		if !r.Converged {
			return Result{}, fmt.Errorf("universal: U/D/M partition did not converge")
		}
		partCfg = r.Final
		part = classify(r.Final)
		record("partition-UDM", r.Steps)
	case pipelineLog:
		part.u = make([]int, n)
		for i := range part.u {
			part.u[i] = i
		}
	}

	// Phase 2: spanning line over U (real protocol run with the rest
	// of the population inert).
	lineBase := protocols.SimpleGlobalLine()
	if len(part.u) >= 16 || kind == pipelineLog {
		// The O(n³) protocol keeps larger pipelines tractable; both
		// are proven correct and Section 6 only requires *some*
		// spanning-line constructor.
		lineBase = protocols.FastGlobalLine()
	}
	var carry *core.Config
	if partCfg != nil {
		carry = partCfg
	}
	lineCfg, lineOrdered, lineRes, err := linePhase(lineBase, n, part.u, carry, seed+1, 0)
	if err != nil {
		return Result{}, err
	}
	_ = lineCfg
	record("spanning-line", lineRes.Steps)

	charge := newChargeModel(n, rng)

	// Phase 3 (log-waste only): count the population by walking the
	// line, then release all but the rightmost ⌈log₂ n⌉ nodes.
	var useful []int
	var tapeLen int
	switch kind {
	case pipelineHalf:
		useful = part.d
		tapeLen = len(part.u)
	case pipelineThird:
		useful = part.d
		// The M set's edges form the work tape: Θ(n²) cells.
		tapeLen = len(part.m) * (len(part.m) - 1) / 2
		if tapeLen < 1 {
			return Result{}, errPopulationTooSmall
		}
	case pipelineLog:
		memLen := int(math.Ceil(math.Log2(float64(n))))
		if memLen < 1 {
			memLen = 1
		}
		charge.walk(n)     // counting pass
		charge.walk(n - 1) // release walk back along the line
		useful = lineOrdered[:n-memLen]
		tapeLen = memLen
		record("count-and-release", 0) // charged below with the draw
	}

	// Phases 4–5: the Fig. 3 loop — draw a random graph on the useful
	// space, decide membership, retry on rejection.
	k := len(useful)
	before := charge.Steps()
	var out *graph.Graph
	for {
		res.Attempts++
		g := drawRandomGraph(charge, k)
		scanInput(charge, k)
		chargeDeciderWork(charge, lang, k, tapeLen)
		if lang.Decide(g) {
			out = g
			break
		}
		if res.Attempts >= maxAttempts {
			return Result{}, fmt.Errorf("universal: decider %q rejected %d consecutive draws", lang.Name, res.Attempts)
		}
	}
	record("draw-and-decide", charge.Steps()-before)

	// Release phase: deactivate each useful node's tether (one
	// specific-pair interaction each).
	before = charge.Steps()
	for range useful {
		charge.waitPair()
	}
	record("release", charge.Steps()-before)

	res.Output = out
	res.UsefulNodes = append([]int(nil), useful...)
	res.Waste = n - k
	return res, nil
}

// maxAttempts bounds the Fig. 3 retry loop: for the languages shipped
// here the acceptance probability under G(k, 1/2) is Ω(1) or the
// language is trivial, so hundreds of consecutive rejections indicate
// a bug, not bad luck.
const maxAttempts = 100_000

// chargeDeciderWork charges the decider's own tape work beyond the
// input scan: one pass over its work tape per input bit, the canonical
// cost shape of the space-bounded simulations in Theorems 14–16.
func chargeDeciderWork(charge *chargeModel, lang tm.GraphLanguage, k, tapeLen int) {
	passes := k * (k - 1) / 2
	var cells int
	switch lang.Space {
	case tm.LogSpace:
		cells = bitsFor(tapeLen)
	case tm.LinearSpace:
		cells = tapeLen
	case tm.QuadraticSpace:
		cells = tapeLen
	default:
		cells = tapeLen
	}
	if cells < 1 {
		cells = 1
	}
	// Charging every pass at full tape width over-counts most real
	// deciders; we cap the charged work at one full sweep per pass of
	// a log-factor of the tape to keep test-scale runs tractable while
	// preserving the polynomial shape.
	per := bitsFor(cells)
	if per < 1 {
		per = 1
	}
	for i := 0; i < passes; i++ {
		charge.walk(per)
	}
}

func bitsFor(x int) int {
	bits := 0
	for v := x; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
