package universal

import (
	"math"

	"repro/internal/core"
)

// chargeModel accounts the global interactions a phase consumes when
// only one specific pair (out of the n(n−1)/2 the uniform random
// scheduler draws from) makes progress: each elementary operation
// costs a geometrically distributed number of steps with success
// probability 2/(n(n−1)). This is exactly the waiting time the paper's
// analyses charge for "the scheduler must pick this particular
// interaction".
type chargeModel struct {
	rng   *core.RNG
	pairs float64 // n(n−1)/2
	steps int64
}

func newChargeModel(n int, rng *core.RNG) *chargeModel {
	return &chargeModel{rng: rng, pairs: float64(n) * float64(n-1) / 2}
}

// Steps returns the global interactions charged so far.
func (c *chargeModel) Steps() int64 { return c.steps }

// waitPair charges one specific-pair wait and returns its sampled
// duration.
func (c *chargeModel) waitPair() int64 {
	// Geometric sampling via inversion: k = ⌈ln(U)/ln(1−p)⌉ for
	// U ∈ (0,1), p = 1/pairs.
	p := 1 / c.pairs
	u := c.rng.Float64()
	for u == 0 {
		u = c.rng.Float64()
	}
	k := int64(math.Ceil(math.Log(u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	c.steps += k
	return k
}

// waitAny charges a wait for any one of m equally useful pairs.
func (c *chargeModel) waitAny(m int) int64 {
	if m <= 0 {
		return c.waitPair()
	}
	p := float64(m) / c.pairs
	if p >= 1 {
		c.steps++
		return 1
	}
	u := c.rng.Float64()
	for u == 0 {
		u = c.rng.Float64()
	}
	k := int64(math.Ceil(math.Log(u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	c.steps += k
	return k
}

// walk charges a mark traveling dist sequential hops along the line
// (each hop is one specific-pair interaction).
func (c *chargeModel) walk(dist int) {
	for i := 0; i < dist; i++ {
		c.waitPair()
	}
}

// coin flips the PREL fair coin (free: it happens within an already
// charged interaction).
func (c *chargeModel) coin() bool { return c.rng.Coin() }
