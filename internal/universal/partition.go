// Package universal implements the paper's Section 6 generic
// constructors: the population partitions (U/D and U/D/M), the
// TM-on-a-line execution model with l/r/t head marks and
// counter-addressed edge access, the equiprobable random-graph drawing,
// the accept/retry loop of Fig. 3, and the supernode organization of
// Theorem 18.
//
// The partition and line-construction phases run as real network
// constructors on the full population (inert nodes simply never match
// a rule, so the uniform scheduler's wasted interactions are charged
// naturally). TM control is executed by a charged-cost line machine:
// every head move, counter walk and edge probe pays the
// geometrically-distributed number of global interactions the uniform
// random scheduler needs to deliver the one pair that makes progress.
// See DESIGN.md §5.3 for the fidelity argument.
package universal

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Partition state indices shared by the U/D and U/D/M partitions.
const (
	puQ0 core.State = iota
	puQU
	puQD
	puQUp // q_u′: a U node that has not yet acquired its M neighbor
	puQM
	puQMp // q_m′: an M node that must first release its D neighbor
)

// PartitionUD returns the Theorem 14 partition protocol
// (q0,q0,0) → (qu,qd,1): a maximum matching between an upper set U and
// a lower set D of ⌊n/2⌋ nodes each.
func PartitionUD() (*core.Protocol, core.Detector) {
	p := core.MustProtocol(
		"Partition-UD",
		[]string{"q0", "qu", "qd"},
		puQ0,
		nil,
		[]core.Rule{{A: puQ0, B: puQ0, Edge: false, OutA: puQU, OutB: puQD, OutEdge: true}},
	)
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable:  func(cfg *core.Config) bool { return cfg.Count(puQ0) <= 1 },
	}
	return p, det
}

// PartitionUDM returns the Theorem 15 partition protocol building
// three equal sets: every U node is matched to one D node and one M
// node. An unsatisfied U node (q_u′) may steal another unsatisfied U
// node as its M neighbor, whose own D neighbor is then released back
// to q0.
func PartitionUDM() (*core.Protocol, core.Detector) {
	p := core.MustProtocol(
		"Partition-UDM",
		[]string{"q0", "qu", "qd", "qu'", "qm", "qm'"},
		puQ0,
		nil,
		[]core.Rule{
			{A: puQ0, B: puQ0, Edge: false, OutA: puQUp, OutB: puQD, OutEdge: true},
			{A: puQUp, B: puQ0, Edge: false, OutA: puQU, OutB: puQM, OutEdge: true},
			{A: puQUp, B: puQUp, Edge: false, OutA: puQU, OutB: puQMp, OutEdge: true},
			{A: puQMp, B: puQD, Edge: true, OutA: puQM, OutB: puQ0, OutEdge: false},
		},
	)
	det := core.Detector{
		Trigger: core.TriggerEffective,
		Stable: func(cfg *core.Config) bool {
			return cfg.Count(puQMp) == 0 && cfg.Count(puQ0)+cfg.Count(puQUp) <= 1
		},
	}
	return p, det
}

// Membership of a partition run's final configuration.
type partition struct {
	u, d, m []int
}

func classify(cfg *core.Config) partition {
	var part partition
	for i := 0; i < cfg.N(); i++ {
		switch cfg.Node(i) {
		case puQU:
			part.u = append(part.u, i)
		case puQD:
			part.d = append(part.d, i)
		case puQM:
			part.m = append(part.m, i)
		}
	}
	return part
}

// matchedD returns, for each U node, its matched D node (the active
// neighbor in D).
func matchedD(cfg *core.Config, part partition) (map[int]int, error) {
	match := make(map[int]int, len(part.u))
	for _, u := range part.u {
		found := -1
		for _, v := range part.d {
			if cfg.Edge(u, v) {
				if found >= 0 {
					return nil, fmt.Errorf("universal: U node %d matched twice", u)
				}
				found = v
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("universal: U node %d unmatched", u)
		}
		match[u] = found
	}
	return match, nil
}

var errPopulationTooSmall = errors.New("universal: population too small for this construction")
