package universal

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/tm"
)

func TestChargeModelWaitPairMean(t *testing.T) {
	t.Parallel()
	const n = 20
	charge := newChargeModel(n, core.NewRNG(1))
	const draws = 20000
	for i := 0; i < draws; i++ {
		charge.waitPair()
	}
	mean := float64(charge.Steps()) / draws
	want := float64(n * (n - 1) / 2) // geometric mean 1/p
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("waitPair mean %f, want ≈ %f", mean, want)
	}
}

func TestChargeModelWaitAny(t *testing.T) {
	t.Parallel()
	const n = 20
	charge := newChargeModel(n, core.NewRNG(2))
	const draws = 20000
	for i := 0; i < draws; i++ {
		charge.waitAny(10)
	}
	mean := float64(charge.Steps()) / draws
	want := float64(n*(n-1)/2) / 10
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("waitAny(10) mean %f, want ≈ %f", mean, want)
	}
	// Saturated probability costs exactly one step per wait.
	sat := newChargeModel(4, core.NewRNG(3))
	sat.waitAny(100)
	if sat.Steps() != 1 {
		t.Fatalf("saturated waitAny charged %d", sat.Steps())
	}
	// Non-positive m falls back to a single-pair wait.
	fb := newChargeModel(6, core.NewRNG(4))
	fb.waitAny(0)
	if fb.Steps() < 1 {
		t.Fatal("fallback waitAny charged nothing")
	}
}

func TestChargeModelWalk(t *testing.T) {
	t.Parallel()
	charge := newChargeModel(10, core.NewRNG(5))
	charge.walk(7)
	if charge.Steps() < 7 {
		t.Fatalf("walk(7) charged %d < 7", charge.Steps())
	}
}

func TestDrawRandomGraphIsHalfDense(t *testing.T) {
	t.Parallel()
	charge := newChargeModel(30, core.NewRNG(6))
	const k, trials = 12, 40
	edges := 0
	for i := 0; i < trials; i++ {
		edges += drawRandomGraph(charge, k).M()
	}
	mean := float64(edges) / trials
	want := 0.5 * float64(k*(k-1)/2)
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("G(k,1/2) density %f, want ≈ %f", mean, want)
	}
	if charge.Steps() == 0 {
		t.Fatal("drawing charged nothing")
	}
}

func TestLineTMRunsRealMachine(t *testing.T) {
	t.Parallel()
	charge := newChargeModel(16, core.NewRNG(7))
	ltm := newLineTM(charge, 8)
	accepted, err := ltm.run(tm.ParityMachine(), []byte{1, 0, 1}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !accepted {
		t.Fatal("parity of two 1s rejected")
	}
	if charge.Steps() == 0 {
		t.Fatal("line TM charged no interactions")
	}
	rejected, err := ltm.run(tm.ParityMachine(), []byte{1}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Fatal("odd parity accepted")
	}
}

func TestLineTMOutOfTape(t *testing.T) {
	t.Parallel()
	charge := newChargeModel(16, core.NewRNG(8))
	ltm := newLineTM(charge, 3)
	if _, err := ltm.run(tm.ParityMachine(), []byte{1, 0, 1, 1}, 1000); err == nil {
		t.Fatal("oversized input accepted")
	}
	// A runaway machine must hit the right end of the line.
	runner := &tm.Machine{
		Name:   "right-runner",
		States: 1,
		Start:  0,
		Delta: map[tm.Key]tm.Transition{
			{State: 0, Symbol: tm.Blank}: {Next: 0, Write: 1, Move: tm.Right},
			{State: 0, Symbol: 1}:        {Next: 0, Write: 1, Move: tm.Right},
		},
	}
	var oot *outOfTapeError
	_, err := ltm.run(runner, nil, 1000)
	if !errors.As(err, &oot) {
		t.Fatalf("got %v, want outOfTapeError", err)
	}
}

func TestLineOrder(t *testing.T) {
	t.Parallel()
	order, err := lineOrder(graph.Line(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("order %v", order)
	}
	for i := 0; i+1 < len(order); i++ {
		if d := order[i] - order[i+1]; d != 1 && d != -1 {
			t.Fatalf("order %v is not a path walk", order)
		}
	}
	if _, err := lineOrder(graph.Ring(5)); err == nil {
		t.Fatal("ring accepted as line")
	}
	single, err := lineOrder(graph.New(1))
	if err != nil || len(single) != 1 {
		t.Fatalf("singleton order %v, %v", single, err)
	}
}

func TestWithDead(t *testing.T) {
	t.Parallel()
	base := protocols.SimpleGlobalLine()
	ext, dead, err := withDead(base.Proto)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Size() != base.Proto.Size()+1 {
		t.Fatalf("extended size %d", ext.Size())
	}
	if name := ext.StateName(dead); name != "dead" {
		t.Fatalf("dead state named %q", name)
	}
	// Dead nodes must never react.
	for s := 0; s < ext.Size(); s++ {
		for _, e := range []bool{false, true} {
			if ext.EffectiveOn(dead, core.State(s), e) {
				t.Fatalf("dead state reacts with %s", ext.StateName(core.State(s)))
			}
		}
	}
}

func TestLinePhaseBuildsOrderedLine(t *testing.T) {
	t.Parallel()
	live := []int{1, 3, 5, 7, 9, 11}
	_, ordered, res, err := linePhase(protocols.SimpleGlobalLine(), 12, live, nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("line phase did not converge")
	}
	if len(ordered) != len(live) {
		t.Fatalf("ordered %v", ordered)
	}
	seen := make(map[int]bool, len(ordered))
	for _, u := range ordered {
		if u%2 == 0 {
			t.Fatalf("dead node %d in the line", u)
		}
		if seen[u] {
			t.Fatalf("duplicate node %d", u)
		}
		seen[u] = true
	}
}

func TestSupernodesTooSmall(t *testing.T) {
	t.Parallel()
	if _, err := Supernodes(7, 1); err == nil {
		t.Fatal("n=7 accepted")
	}
}

func TestPipelineTooSmall(t *testing.T) {
	t.Parallel()
	if _, err := LinearWasteHalf(tm.Connected(), 4, 1); err == nil {
		t.Fatal("tiny population accepted")
	}
	if _, err := LinearWasteThird(tm.EvenEdges(), 6, 1); err == nil {
		t.Fatal("tiny population accepted")
	}
	if _, err := LogWaste(tm.HasEdge(), 4, 1); err == nil {
		t.Fatal("tiny population accepted")
	}
}

// TestPipelinePhaseAccounting: phase steps must sum to the total.
func TestPipelinePhaseAccounting(t *testing.T) {
	t.Parallel()
	res, err := LinearWasteHalf(tm.EvenEdges(), 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, ph := range res.PhaseSteps {
		if ph.Steps < 0 {
			t.Fatalf("negative phase steps: %+v", ph)
		}
		sum += ph.Steps
	}
	if sum != res.Steps {
		t.Fatalf("phase steps sum %d ≠ total %d", sum, res.Steps)
	}
}

// TestUniversalDeterminism: identical seeds give identical pipelines.
func TestUniversalDeterminism(t *testing.T) {
	t.Parallel()
	a, err := LinearWasteHalf(tm.Connected(), 14, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinearWasteHalf(tm.Connected(), 14, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Attempts != b.Attempts || !a.Output.Equal(b.Output) {
		t.Fatal("identical seeds produced different pipelines")
	}
}

// TestRetryLoopRejects: a language that rejects the first draws forces
// Attempts > 1 with non-vanishing probability; use "complete graph",
// which G(k,1/2) essentially never satisfies — bounded by maxAttempts,
// so use a small k where acceptance is merely rare-ish and seeds are
// chosen to show at least one retry.
func TestRetryLoopRejects(t *testing.T) {
	t.Parallel()
	// Odd-edge graphs have probability 1/2 under G(k,1/2): expect ≈2
	// attempts on average; find a seed with ≥ 2 attempts quickly.
	odd := tm.GraphLanguage{
		Name:   "odd-edges",
		Space:  tm.LogSpace,
		Decide: func(g *graph.Graph) bool { return g.M()%2 == 1 },
	}
	sawRetry := false
	for seed := uint64(1); seed <= 10 && !sawRetry; seed++ {
		res, err := LinearWasteHalf(odd, 12, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output.M()%2 != 1 {
			t.Fatalf("output %v has even edges", res.Output)
		}
		if res.Attempts > 1 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no retry observed across 10 seeds (p < 1e-3)")
	}
}
