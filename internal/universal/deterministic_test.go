package universal

import (
	"testing"

	"repro/internal/graph"
)

func TestDeterministicConstructRing(t *testing.T) {
	t.Parallel()
	res, err := DeterministicConstruct(RingBuilder(), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.IsSpanningRing() {
		t.Fatalf("output %v is not a ring", res.Output)
	}
	if res.Output.N() != 8 || res.Waste != 8 {
		t.Fatalf("useful %d waste %d", res.Output.N(), res.Waste)
	}
	if res.Attempts != 1 {
		t.Fatalf("deterministic construction retried %d times", res.Attempts)
	}
}

func TestDeterministicConstructClique(t *testing.T) {
	t.Parallel()
	res, err := DeterministicConstruct(CliqueBuilder(), 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	k := res.Output.N()
	if res.Output.M() != k*(k-1)/2 {
		t.Fatalf("output %v is not complete", res.Output)
	}
}

// TestDeterministicConstructPetersen reproduces the conclusions'
// example: a non-uniform NET that, on the right population size,
// stabilizes to the Petersen graph.
func TestDeterministicConstructPetersen(t *testing.T) {
	t.Parallel()
	res, err := DeterministicConstruct(PetersenBuilder(), 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output
	if got.N() != 10 || got.M() != 15 || !got.IsKRegularConnected(3) {
		t.Fatalf("output %v is not 3-regular on 10 nodes", got)
	}
	if !got.IsTriangleFree() {
		t.Fatal("Petersen graph contains no triangles")
	}
	want := PetersenBuilder()(10)
	if !graph.Isomorphic(got, want) {
		t.Fatalf("output %v not isomorphic to the Petersen graph", got)
	}
}

func TestDeterministicConstructNoTarget(t *testing.T) {
	t.Parallel()
	// Petersen needs exactly 10 useful nodes; n=16 gives 8.
	if _, err := DeterministicConstruct(PetersenBuilder(), 16, 1); err == nil {
		t.Fatal("missing target size accepted")
	}
	bad := func(k int) *graph.Graph { return graph.New(k + 1) }
	if _, err := DeterministicConstruct(bad, 12, 1); err == nil {
		t.Fatal("wrong-order builder accepted")
	}
	if _, err := DeterministicConstruct(RingBuilder(), 4, 1); err == nil {
		t.Fatal("tiny population accepted")
	}
}
