package universal

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tm"
)

func TestPartitionUD(t *testing.T) {
	t.Parallel()
	p, det := PartitionUD()
	for _, n := range []int{6, 11, 20} {
		res, err := core.Run(p, n, core.Options{Seed: 7, Detector: det})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		part := classify(res.Final)
		if len(part.u) != n/2 || len(part.d) != n/2 {
			t.Fatalf("n=%d: |U|=%d |D|=%d, want %d each", n, len(part.u), len(part.d), n/2)
		}
		if _, err := matchedD(res.Final, part); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPartitionUDM(t *testing.T) {
	t.Parallel()
	p, det := PartitionUDM()
	for _, n := range []int{9, 12, 22} {
		res, err := core.Run(p, n, core.Options{Seed: 3, Detector: det})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		part := classify(res.Final)
		want := n / 3
		if len(part.u) != want || len(part.d) != want || len(part.m) != want {
			t.Fatalf("n=%d: |U|=%d |D|=%d |M|=%d, want %d each",
				n, len(part.u), len(part.d), len(part.m), want)
		}
		// Every U node has exactly one D and one M active neighbor.
		for _, u := range part.u {
			dCount, mCount := 0, 0
			for _, d := range part.d {
				if res.Final.Edge(u, d) {
					dCount++
				}
			}
			for _, m := range part.m {
				if res.Final.Edge(u, m) {
					mCount++
				}
			}
			if dCount != 1 || mCount != 1 {
				t.Fatalf("n=%d: U node %d has %d D and %d M neighbors", n, u, dCount, mCount)
			}
		}
	}
}

func TestLinearWasteHalf(t *testing.T) {
	t.Parallel()
	res, err := LinearWasteHalf(tm.Connected(), 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.N() != 8 {
		t.Fatalf("useful space %d, want 8", res.Output.N())
	}
	if !res.Output.Connected() {
		t.Fatalf("output %v not connected", res.Output)
	}
	if res.Waste != 8 {
		t.Fatalf("waste %d, want 8", res.Waste)
	}
	if res.Attempts < 1 {
		t.Fatalf("attempts %d", res.Attempts)
	}
	if res.Steps <= 0 {
		t.Fatal("no steps charged")
	}
}

func TestLinearWasteThird(t *testing.T) {
	t.Parallel()
	res, err := LinearWasteThird(tm.EvenEdges(), 18, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.N() != 6 {
		t.Fatalf("useful space %d, want 6", res.Output.N())
	}
	if res.Output.M()%2 != 0 {
		t.Fatalf("output has odd edge count %d", res.Output.M())
	}
	if res.Waste != 12 {
		t.Fatalf("waste %d, want 12", res.Waste)
	}
}

func TestLogWaste(t *testing.T) {
	t.Parallel()
	res, err := LogWaste(tm.HasEdge(), 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.M() == 0 {
		t.Fatal("output has no edge")
	}
	wantUseful := 24 - 5 // ⌈log₂ 24⌉ = 5
	if res.Output.N() != wantUseful {
		t.Fatalf("useful space %d, want %d", res.Output.N(), wantUseful)
	}
}

func TestSpaceBudgets(t *testing.T) {
	t.Parallel()
	if _, err := LogWaste(tm.HamiltonianPath(), 24, 1); err == nil {
		t.Fatal("log-waste accepted a linear-space language")
	}
	quadratic := tm.GraphLanguage{
		Name:   "needs-quadratic-space",
		Space:  tm.QuadraticSpace,
		Decide: func(g *graph.Graph) bool { return true },
	}
	if _, err := LinearWasteHalf(quadratic, 16, 1); err == nil {
		t.Fatal("half-waste accepted a quadratic-space language")
	}
	if _, err := LinearWasteThird(quadratic, 18, 1); err != nil {
		t.Fatalf("third-waste rejected a quadratic-space language: %v", err)
	}
}

func TestSupernodes(t *testing.T) {
	t.Parallel()
	for _, n := range []int{8, 24, 64, 100} {
		res, err := Supernodes(n, 9)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.K*res.LineLen > n {
			t.Fatalf("n=%d: K=%d × len=%d exceeds population", n, res.K, res.LineLen)
		}
		if res.K&(res.K-1) != 0 {
			t.Fatalf("n=%d: K=%d not a power of two", n, res.K)
		}
		// Names are unique and fit the per-line memory.
		seen := make(map[int]bool, res.K)
		for _, name := range res.Names {
			if seen[name] {
				t.Fatalf("n=%d: duplicate name %d", n, name)
			}
			seen[name] = true
			if name >= 1<<res.LineLen {
				t.Fatalf("n=%d: name %d does not fit %d bits", n, name, res.LineLen)
			}
		}
		if want := res.K / 3; res.Triangles != want {
			t.Fatalf("n=%d: %d triangles, want %d", n, res.Triangles, want)
		}
	}
}
