package core

import (
	"errors"
	"time"
)

// DynState is a node state of a dynamic protocol. Dynamic protocols
// back the Section 6 constructions, whose composite states (TM head ×
// tape symbol × direction marks × counters) are finite but far too
// numerous to enumerate into a dense rule table; they encode the
// composite into an int32 and compute δ with a function.
type DynState int32

// DynProtocol is a network constructor whose transition function is
// computed rather than tabulated. Apply receives the unordered pair's
// states in arbitrary orientation and must be symmetric in the model's
// sense: implementations typically normalize orientation themselves.
// It returns the new states (same orientation as the arguments), the
// new edge state, and whether anything changed.
type DynProtocol struct {
	Name    string
	Initial DynState
	Apply   func(a, b DynState, edge bool, rng *RNG) (outA, outB DynState, outEdge, effective bool)
	// Output, when non-nil, is the Qout membership predicate: the
	// states whose nodes belong to the output graph. Nil means every
	// state is an output state (the common case in the paper). It
	// drives DynResult.ConvergenceTime exactly as Protocol's Qout
	// drives Result.ConvergenceTime on the static engines.
	Output func(s DynState) bool
}

// isOutput reports Qout membership under the nil-means-all convention.
func (p *DynProtocol) isOutput(s DynState) bool {
	return p.Output == nil || p.Output(s)
}

// DynConfig is a configuration of a dynamic protocol.
type DynConfig struct {
	proto  *DynProtocol
	n      int
	nodes  []DynState
	edges  bitset
	degree []int32
}

// NewDynConfig returns the all-initial configuration on n nodes.
func NewDynConfig(p *DynProtocol, n int) *DynConfig {
	c := &DynConfig{
		proto:  p,
		n:      n,
		nodes:  make([]DynState, n),
		edges:  newBitset(pairCount(n)),
		degree: make([]int32, n),
	}
	for i := range c.nodes {
		c.nodes[i] = p.Initial
	}
	return c
}

// Clone returns a deep copy of the configuration.
func (c *DynConfig) Clone() *DynConfig {
	d := &DynConfig{
		proto:  c.proto,
		n:      c.n,
		nodes:  make([]DynState, len(c.nodes)),
		edges:  c.edges.clone(),
		degree: make([]int32, len(c.degree)),
	}
	copy(d.nodes, c.nodes)
	copy(d.degree, c.degree)
	return d
}

// N returns the population size.
func (c *DynConfig) N() int { return c.n }

// Node returns the state of node u.
func (c *DynConfig) Node(u int) DynState { return c.nodes[u] }

// SetNode overwrites the state of node u (initial-configuration setup).
func (c *DynConfig) SetNode(u int, s DynState) { c.nodes[u] = s }

// Edge reports whether edge {u, v} is active.
func (c *DynConfig) Edge(u, v int) bool { return c.edges.get(pairIndex(c.n, u, v)) }

// SetEdge overwrites edge {u, v} (initial-configuration setup).
func (c *DynConfig) SetEdge(u, v int, active bool) {
	idx := pairIndex(c.n, u, v)
	if c.edges.get(idx) == active {
		return
	}
	c.edges.set(idx, active)
	d := int32(-1)
	if active {
		d = 1
	}
	c.degree[u] += d
	c.degree[v] += d
}

// Degree returns the active degree of u.
func (c *DynConfig) Degree(u int) int { return int(c.degree[u]) }

// ActiveNeighbors appends u's active neighbors to dst.
func (c *DynConfig) ActiveNeighbors(u int, dst []int) []int {
	for v := 0; v < c.n; v++ {
		if v != u && c.Edge(u, v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// DynResult reports a dynamic run's outcome.
type DynResult struct {
	Converged bool
	// Stopped reports whether DynOptions.Stop aborted the run before
	// Stable fired or the step budget ran out.
	Stopped bool
	Steps   int64
	// ConvergenceTime is the paper's running time: the last step at
	// which the output graph (active edges plus Qout membership per
	// DynProtocol.Output) changed — the same contract as the static
	// Result.ConvergenceTime.
	ConvergenceTime int64
	EffectiveSteps  int64
	// WallNS is the run's wall-clock time in nanoseconds — the dynamic
	// runner's share of the Result.Metrics telemetry (it has no index,
	// skips, or faults, so wall time is the only meaningful counter).
	WallNS int64
	Final  *DynConfig
}

// DynOptions configures a dynamic run.
type DynOptions struct {
	Seed          uint64
	MaxSteps      int64
	CheckInterval int64
	// Stable is the stop predicate; required.
	Stable func(cfg *DynConfig) bool
	// CheckEveryEffective, when set, evaluates Stable after each
	// effective step instead of on an interval.
	CheckEveryEffective bool
	// Initial, when non-nil, replaces the all-initial configuration.
	// It is cloned, not mutated, matching Options.Initial.
	Initial *DynConfig
	// Stop, when non-nil, is polled once immediately and then every
	// CheckInterval steps — the same countdown contract as the static
	// engines; when it returns true the run aborts early with
	// Converged=false and Stopped=true. It is how the campaign runner
	// plugs in context cancellation and per-run deadlines.
	Stop func() bool
}

// RunDyn executes a dynamic protocol under the uniform random
// scheduler until Stable fires or the budget is exhausted.
func RunDyn(p *DynProtocol, n int, opts DynOptions) (res DynResult, err error) {
	start := time.Now()
	defer func() { res.WallNS = time.Since(start).Nanoseconds() }()
	if n < 1 {
		return DynResult{}, errors.New("core: population size must be ≥ 1")
	}
	if opts.Stable == nil {
		return DynResult{}, errors.New("core: dynamic runs require a Stable predicate")
	}
	var cfg *DynConfig
	if opts.Initial != nil {
		cfg = opts.Initial.Clone()
	} else {
		cfg = NewDynConfig(p, n)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps(n)
	}
	interval := opts.CheckInterval
	if interval <= 0 {
		interval = DefaultCheckInterval(n)
	}
	rng := NewRNG(opts.Seed)
	res = DynResult{Final: cfg}
	if n == 1 || opts.Stable(cfg) {
		res.Converged = opts.Stable(cfg)
		return res, nil
	}
	// Stop is polled on the same countdown contract as the static
	// engines: once before the first step, then every interval steps.
	stopCountdown := int64(1)
	var step int64
	for step < maxSteps {
		if opts.Stop != nil {
			stopCountdown--
			if stopCountdown <= 0 {
				stopCountdown = interval
				if opts.Stop() {
					res.Stopped = true
					res.Steps = step
					return res, nil
				}
			}
		}
		step++
		u, v := rng.Pair(n)
		idx := pairIndex(n, u, v)
		active := cfg.edges.get(idx)
		a, b := cfg.nodes[u], cfg.nodes[v]
		outA, outB, outEdge, effective := p.Apply(a, b, active, rng)
		if effective {
			res.EffectiveSteps++
			cfg.nodes[u] = outA
			cfg.nodes[v] = outB
			edgeChanged := outEdge != active
			if edgeChanged {
				cfg.edges.set(idx, outEdge)
				d := int32(-1)
				if outEdge {
					d = 1
				}
				cfg.degree[u] += d
				cfg.degree[v] += d
			}
			// The output graph changes when an edge between two output
			// nodes changes, or when a node enters or leaves Qout — the
			// same rule recordEffective applies on the static engines.
			outputChanged := edgeChanged && p.isOutput(outA) && p.isOutput(outB)
			if !outputChanged {
				outputChanged = p.isOutput(a) != p.isOutput(outA) ||
					p.isOutput(b) != p.isOutput(outB)
			}
			if outputChanged {
				res.ConvergenceTime = step
			}
		}
		check := false
		if opts.CheckEveryEffective {
			check = effective
		} else {
			check = step%interval == 0
		}
		if check && opts.Stable(cfg) {
			res.Converged = true
			res.Steps = step
			return res, nil
		}
	}
	res.Steps = maxSteps
	return res, nil
}
