package core

import "testing"

func dynNoop() *DynProtocol {
	return &DynProtocol{
		Name:    "noop",
		Initial: 5,
		Apply: func(a, b DynState, edge bool, rng *RNG) (DynState, DynState, bool, bool) {
			return a, b, edge, false
		},
	}
}

func TestDynConfigBasics(t *testing.T) {
	t.Parallel()
	cfg := NewDynConfig(dynNoop(), 6)
	if cfg.N() != 6 {
		t.Fatalf("N=%d", cfg.N())
	}
	for u := 0; u < 6; u++ {
		if cfg.Node(u) != 5 {
			t.Fatalf("node %d initial state %d", u, cfg.Node(u))
		}
	}
	cfg.SetNode(2, 42)
	if cfg.Node(2) != 42 {
		t.Fatal("SetNode lost the value")
	}
	cfg.SetEdge(1, 4, true)
	cfg.SetEdge(4, 1, true) // idempotent
	if !cfg.Edge(4, 1) || cfg.Degree(1) != 1 || cfg.Degree(4) != 1 {
		t.Fatal("edge bookkeeping wrong")
	}
	nbrs := cfg.ActiveNeighbors(1, nil)
	if len(nbrs) != 1 || nbrs[0] != 4 {
		t.Fatalf("neighbors %v", nbrs)
	}
	cfg.SetEdge(1, 4, false)
	if cfg.Degree(1) != 0 {
		t.Fatal("deactivation not reflected in degree")
	}
}

// TestRunDynMatchesStaticEngine: a dynamic re-implementation of
// maximum matching must produce the same matching sizes as the static
// engine across seeds (both consume the RNG differently, so only the
// structural outcome is compared).
func TestRunDynMatchesStaticEngine(t *testing.T) {
	t.Parallel()
	const n = 14
	dyn := &DynProtocol{
		Name:    "dyn-matching",
		Initial: 0, // 0 = unmatched, 1 = matched
		Apply: func(a, b DynState, edge bool, rng *RNG) (DynState, DynState, bool, bool) {
			if a == 0 && b == 0 && !edge {
				return 1, 1, true, true
			}
			return a, b, edge, false
		},
	}
	unmatched := func(cfg *DynConfig) int {
		count := 0
		for u := 0; u < cfg.N(); u++ {
			if cfg.Node(u) == 0 {
				count++
			}
		}
		return count
	}
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := RunDyn(dyn, n, DynOptions{
			Seed:                seed,
			CheckEveryEffective: true,
			Stable:              func(cfg *DynConfig) bool { return unmatched(cfg) <= 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
		// Every node is matched (n even): degree 1 each.
		for u := 0; u < n; u++ {
			if res.Final.Degree(u) != 1 {
				t.Fatalf("seed %d: node %d degree %d", seed, u, res.Final.Degree(u))
			}
		}
		if res.ConvergenceTime <= 0 || res.ConvergenceTime > res.Steps {
			t.Fatalf("seed %d: implausible convergence time %d/%d", seed, res.ConvergenceTime, res.Steps)
		}
	}
}

// TestRunDynConvergenceTime pins the documented ConvergenceTime
// semantics ("the last step at which the output graph — active edges
// plus Qout membership — changed") against a hand-computed trace. On
// n = 2 the uniform scheduler always draws the single pair, so the
// protocol below walks a fixed script:
//
//	step 1: (0,0,off) → (1,1,on)   edge activates, 0∉Qout→1∈Qout: output change
//	step 2: (1,1,on)  → (2,2,on)   1∈Qout→2∉Qout: output (membership) change
//	step 3: (2,2,on)  → (3,3,on)   2∉Qout, 3∉Qout, edge kept: NO output change
//	step 4: (3,3,on)  → (4,4,on)   4∉Qout: NO output change; then quiescent
//
// The documented answer is 2. Counting only edge flips — the old bug —
// would report 1.
func TestRunDynConvergenceTime(t *testing.T) {
	t.Parallel()
	dyn := &DynProtocol{
		Name:    "scripted",
		Initial: 0,
		Output:  func(s DynState) bool { return s == 1 },
		Apply: func(a, b DynState, edge bool, _ *RNG) (DynState, DynState, bool, bool) {
			if a == b && a < 4 {
				return a + 1, b + 1, true, true
			}
			return a, b, edge, false
		},
	}
	res, err := RunDyn(dyn, 2, DynOptions{
		Seed:                1,
		CheckEveryEffective: true,
		Stable: func(cfg *DynConfig) bool {
			return cfg.Node(0) == 4 && cfg.Node(1) == 4
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps != 4 || res.EffectiveSteps != 4 {
		t.Fatalf("trace diverged from script: %+v", res)
	}
	if res.ConvergenceTime != 2 {
		t.Fatalf("ConvergenceTime = %d, want 2 (last output-graph change)", res.ConvergenceTime)
	}
}

// TestRunDynNilOutputCountsEdgesOnly: with no Output predicate every
// state is an output state, so only edge flips move ConvergenceTime —
// the static-engine convention.
func TestRunDynNilOutputCountsEdgesOnly(t *testing.T) {
	t.Parallel()
	dyn := &DynProtocol{
		Name:    "edge-then-states",
		Initial: 0,
		Apply: func(a, b DynState, edge bool, _ *RNG) (DynState, DynState, bool, bool) {
			if a == b && a < 3 {
				// Only the first transition touches the edge.
				return a + 1, b + 1, true, true
			}
			return a, b, edge, false
		},
	}
	res, err := RunDyn(dyn, 2, DynOptions{
		Seed:                5,
		CheckEveryEffective: true,
		Stable:              func(cfg *DynConfig) bool { return cfg.Node(0) == 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.ConvergenceTime != 1 {
		t.Fatalf("nil-Output run: %+v, want ConvergenceTime 1", res)
	}
}

// TestRunDynStopHook: the dynamic runner must poll Stop on the same
// countdown contract as the static engines — once before the first
// step, then every CheckInterval steps — and abort with Stopped=true.
func TestRunDynStopHook(t *testing.T) {
	t.Parallel()
	dyn := &DynProtocol{
		Name:    "busy",
		Initial: 0,
		Apply: func(a, b DynState, edge bool, _ *RNG) (DynState, DynState, bool, bool) {
			return a + 1, b + 1, edge, true // never settles
		},
	}
	polls := 0
	res, err := RunDyn(dyn, 8, DynOptions{
		Seed:          1,
		CheckInterval: 32,
		MaxSteps:      1 << 20,
		Stable:        func(*DynConfig) bool { return false },
		Stop: func() bool {
			polls++
			return polls >= 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Converged {
		t.Fatalf("stop hook ignored: %+v", res)
	}
	// Polls happen at steps 0, 32, 64; the third returns true.
	if polls != 3 || res.Steps != 64 {
		t.Fatalf("polls=%d steps=%d, want countdown polling (3 polls, stop at step 64)", polls, res.Steps)
	}
}

// TestRunDynClonesInitial: DynOptions.Initial must not be mutated by
// the run (the campaign pool shares one initial across trials).
func TestRunDynClonesInitial(t *testing.T) {
	t.Parallel()
	dyn := &DynProtocol{
		Name:    "flip",
		Initial: 0,
		Apply: func(a, b DynState, edge bool, _ *RNG) (DynState, DynState, bool, bool) {
			if !edge {
				return 1, 1, true, true
			}
			return a, b, edge, false
		},
	}
	initial := NewDynConfig(dyn, 4)
	initial.SetNode(0, 7)
	res, err := RunDyn(dyn, 4, DynOptions{
		Seed:                2,
		CheckEveryEffective: true,
		Initial:             initial,
		Stable:              func(cfg *DynConfig) bool { return cfg.Degree(1)+cfg.Degree(2)+cfg.Degree(3) > 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == initial {
		t.Fatal("run mutated the caller's initial configuration")
	}
	if initial.Node(0) != 7 || initial.Degree(0) != 0 {
		t.Fatalf("initial configuration mutated: node0=%d deg0=%d", initial.Node(0), initial.Degree(0))
	}
}

func TestRunDynInitialAndInterval(t *testing.T) {
	t.Parallel()
	dyn := dynNoop()
	initial := NewDynConfig(dyn, 4)
	initial.SetNode(0, 9)
	res, err := RunDyn(dyn, 4, DynOptions{
		Initial:       initial,
		CheckInterval: 16,
		Stable: func(cfg *DynConfig) bool {
			return cfg.Node(0) == 9
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("pre-stable dynamic run not detected")
	}
}
