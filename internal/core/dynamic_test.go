package core

import "testing"

func dynNoop() *DynProtocol {
	return &DynProtocol{
		Name:    "noop",
		Initial: 5,
		Apply: func(a, b DynState, edge bool, rng *RNG) (DynState, DynState, bool, bool) {
			return a, b, edge, false
		},
	}
}

func TestDynConfigBasics(t *testing.T) {
	t.Parallel()
	cfg := NewDynConfig(dynNoop(), 6)
	if cfg.N() != 6 {
		t.Fatalf("N=%d", cfg.N())
	}
	for u := 0; u < 6; u++ {
		if cfg.Node(u) != 5 {
			t.Fatalf("node %d initial state %d", u, cfg.Node(u))
		}
	}
	cfg.SetNode(2, 42)
	if cfg.Node(2) != 42 {
		t.Fatal("SetNode lost the value")
	}
	cfg.SetEdge(1, 4, true)
	cfg.SetEdge(4, 1, true) // idempotent
	if !cfg.Edge(4, 1) || cfg.Degree(1) != 1 || cfg.Degree(4) != 1 {
		t.Fatal("edge bookkeeping wrong")
	}
	nbrs := cfg.ActiveNeighbors(1, nil)
	if len(nbrs) != 1 || nbrs[0] != 4 {
		t.Fatalf("neighbors %v", nbrs)
	}
	cfg.SetEdge(1, 4, false)
	if cfg.Degree(1) != 0 {
		t.Fatal("deactivation not reflected in degree")
	}
}

// TestRunDynMatchesStaticEngine: a dynamic re-implementation of
// maximum matching must produce the same matching sizes as the static
// engine across seeds (both consume the RNG differently, so only the
// structural outcome is compared).
func TestRunDynMatchesStaticEngine(t *testing.T) {
	t.Parallel()
	const n = 14
	dyn := &DynProtocol{
		Name:    "dyn-matching",
		Initial: 0, // 0 = unmatched, 1 = matched
		Apply: func(a, b DynState, edge bool, rng *RNG) (DynState, DynState, bool, bool) {
			if a == 0 && b == 0 && !edge {
				return 1, 1, true, true
			}
			return a, b, edge, false
		},
	}
	unmatched := func(cfg *DynConfig) int {
		count := 0
		for u := 0; u < cfg.N(); u++ {
			if cfg.Node(u) == 0 {
				count++
			}
		}
		return count
	}
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := RunDyn(dyn, n, DynOptions{
			Seed:                seed,
			CheckEveryEffective: true,
			Stable:              func(cfg *DynConfig) bool { return unmatched(cfg) <= 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
		// Every node is matched (n even): degree 1 each.
		for u := 0; u < n; u++ {
			if res.Final.Degree(u) != 1 {
				t.Fatalf("seed %d: node %d degree %d", seed, u, res.Final.Degree(u))
			}
		}
		if res.ConvergenceTime <= 0 || res.ConvergenceTime > res.Steps {
			t.Fatalf("seed %d: implausible convergence time %d/%d", seed, res.ConvergenceTime, res.Steps)
		}
	}
}

func TestRunDynInitialAndInterval(t *testing.T) {
	t.Parallel()
	dyn := dynNoop()
	initial := NewDynConfig(dyn, 4)
	initial.SetNode(0, 9)
	res, err := RunDyn(dyn, 4, DynOptions{
		Initial:       initial,
		CheckInterval: 16,
		Stable: func(cfg *DynConfig) bool {
			return cfg.Node(0) == 9
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("pre-stable dynamic run not detected")
	}
}
