package core

import (
	"strings"
	"testing"
)

// sparsifiedConfig returns a fresh all-q0 configuration forced onto
// adjacency storage regardless of n, so the sparse strategy is
// exercised at test-sized populations.
func sparsifiedConfig(p *Protocol, n int) *Config {
	cfg := NewConfig(p, n)
	cfg.store = &sparseStore{n: n, adj: make([][]int32, n)}
	return cfg
}

// TestStorageStrategySelection pins the threshold: dense bitset up to
// maxDenseEdgeNodes, adjacency sets above.
func TestStorageStrategySelection(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["epidemic"]
	if _, ok := NewConfig(p, 16).store.(*denseStore); !ok {
		t.Fatal("small population should use the dense bitset")
	}
	big := NewConfig(p, maxDenseEdgeNodes+1)
	if _, ok := big.store.(*sparseStore); !ok {
		t.Fatal("large population should use adjacency storage")
	}
	// Clone preserves the storage kind.
	if _, ok := big.Clone().store.(*sparseStore); !ok {
		t.Fatal("Clone changed the storage kind")
	}
}

// TestSparseStoreMatchesDense drives the two storage strategies with
// the same random operation sequence and checks every read-side answer
// agrees: Edge, Degree, ActiveEdges, ActiveNeighbors, ForEachActiveEdge
// and String.
func TestSparseStoreMatchesDense(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["toggle"]
	const n = 13
	dense := NewConfig(p, n)
	sparse := sparsifiedConfig(p, n)
	rngOps := NewRNG(41)
	check := func(step int) {
		t.Helper()
		if dense.ActiveEdges() != sparse.ActiveEdges() {
			t.Fatalf("step %d: ActiveEdges %d vs %d", step, dense.ActiveEdges(), sparse.ActiveEdges())
		}
		for u := 0; u < n; u++ {
			if dense.Degree(u) != sparse.Degree(u) {
				t.Fatalf("step %d: Degree(%d) %d vs %d", step, u, dense.Degree(u), sparse.Degree(u))
			}
			for v := u + 1; v < n; v++ {
				if dense.Edge(u, v) != sparse.Edge(u, v) {
					t.Fatalf("step %d: Edge(%d,%d) %v vs %v", step, u, v, dense.Edge(u, v), sparse.Edge(u, v))
				}
			}
			dn := dense.ActiveNeighbors(u, nil)
			sn := sparse.ActiveNeighbors(u, nil)
			if len(dn) != len(sn) {
				t.Fatalf("step %d: ActiveNeighbors(%d) %v vs %v", step, u, dn, sn)
			}
			for i := range dn {
				if dn[i] != sn[i] {
					t.Fatalf("step %d: ActiveNeighbors(%d) %v vs %v", step, u, dn, sn)
				}
			}
		}
		if dense.String() != sparse.String() {
			t.Fatalf("step %d: String diverged:\n%s\n%s", step, dense, sparse)
		}
	}
	check(-1)
	for step := 0; step < 1500; step++ {
		u, v := rngOps.Pair(n)
		if rngOps.Coin() {
			active := rngOps.Coin()
			dense.SetEdge(u, v, active)
			sparse.SetEdge(u, v, active)
		} else {
			// Apply consumes randomness; use twin streams with the same
			// seed so both configurations see identical coin flips.
			seed := uint64(step)
			effD, edgeD := dense.Apply(u, v, NewRNG(seed))
			effS, edgeS := sparse.Apply(u, v, NewRNG(seed))
			if effD != effS || edgeD != edgeS {
				t.Fatalf("step %d: Apply diverged (%v,%v) vs (%v,%v)", step, effD, edgeD, effS, edgeS)
			}
		}
		if step%50 == 0 {
			check(step)
		}
	}
	check(1500)
}

// TestSparseForEachOrder pins ForEachActiveEdge's contract on both
// storages: each active edge exactly once, u < v, lexicographic order.
func TestSparseForEachOrder(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["epidemic"]
	for _, cfg := range []*Config{NewConfig(p, 11), sparsifiedConfig(p, 11)} {
		rng := NewRNG(17)
		for u := 0; u < 11; u++ {
			for v := u + 1; v < 11; v++ {
				cfg.SetEdge(u, v, rng.Coin())
			}
		}
		var got [][2]int
		cfg.ForEachActiveEdge(func(u, v int) { got = append(got, [2]int{u, v}) })
		if len(got) != cfg.ActiveEdges() {
			t.Fatalf("visited %d edges, counter says %d", len(got), cfg.ActiveEdges())
		}
		for i, e := range got {
			if e[0] >= e[1] {
				t.Fatalf("edge %v not upper-triangular", e)
			}
			if i > 0 && !(got[i-1][0] < e[0] || (got[i-1][0] == e[0] && got[i-1][1] < e[1])) {
				t.Fatalf("edges out of order: %v before %v", got[i-1], e)
			}
		}
	}
}

// TestSparseFingerprintDistinguishes mirrors the dense fingerprint
// test on adjacency storage: distinct edge sets and node states must
// produce distinct canonical encodings, equal ones equal encodings.
func TestSparseFingerprintDistinguishes(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["toggle"]
	a := sparsifiedConfig(p, 6)
	b := sparsifiedConfig(p, 6)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configurations fingerprint differently")
	}
	b.SetEdge(1, 4, true)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("edge difference not reflected in fingerprint")
	}
	c := b.Clone()
	if b.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprints differently")
	}
	c.SetNode(2, 1)
	if b.Fingerprint() == c.Fingerprint() {
		t.Fatal("state difference not reflected in fingerprint")
	}
	// Length-prefixed rows must not alias across nodes: edge {0,1}
	// versus edge {1,2} with identical states.
	d := sparsifiedConfig(p, 3)
	e := sparsifiedConfig(p, 3)
	d.SetEdge(0, 1, true)
	e.SetEdge(1, 2, true)
	if d.Fingerprint() == e.Fingerprint() {
		t.Fatal("different edges alias in fingerprint")
	}
}

// TestSparseCloneIndependence checks that mutating a clone never leaks
// into the original through shared adjacency rows.
func TestSparseCloneIndependence(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["epidemic"]
	cfg := sparsifiedConfig(p, 8)
	cfg.SetEdge(0, 1, true)
	cfg.SetEdge(0, 2, true)
	clone := cfg.Clone()
	clone.SetEdge(0, 1, false)
	clone.SetEdge(3, 4, true)
	if !cfg.Edge(0, 1) || cfg.Edge(3, 4) {
		t.Fatal("clone mutation leaked into the original")
	}
	if cfg.ActiveEdges() != 2 || clone.ActiveEdges() != 2 {
		t.Fatalf("active counts wrong: %d, %d", cfg.ActiveEdges(), clone.ActiveEdges())
	}
	if !strings.Contains(cfg.String(), "0-1") {
		t.Fatalf("original lost its edge list: %s", cfg)
	}
}

// TestActiveEdgesCounter pins the O(1) counter against the stored edge
// set through a mixed SetEdge/Apply workload on both storages.
func TestActiveEdgesCounter(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["toggle"]
	for _, cfg := range []*Config{NewConfig(p, 12), sparsifiedConfig(p, 12)} {
		rng := NewRNG(29)
		for step := 0; step < 1000; step++ {
			u, v := rng.Pair(12)
			if rng.Coin() {
				cfg.SetEdge(u, v, rng.Coin())
			} else {
				cfg.Apply(u, v, rng)
			}
		}
		count := 0
		cfg.ForEachActiveEdge(func(_, _ int) { count++ })
		if cfg.ActiveEdges() != count {
			t.Fatalf("ActiveEdges() = %d, edge walk found %d", cfg.ActiveEdges(), count)
		}
	}
}
