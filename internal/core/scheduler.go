package core

// Scheduler selects the next interacting pair. The paper's model only
// requires fairness; running-time analysis assumes the uniform random
// scheduler. Alternative fair schedulers are provided for correctness
// testing (the theorems must hold under any fair schedule) and
// adversarial stress.
type Scheduler interface {
	// Next returns the next unordered pair to interact, given the
	// current configuration. Implementations must not retain cfg.
	Next(cfg *Config, rng *RNG) (u, v int)
	// Name identifies the scheduler in reports.
	Name() string
}

// UniformScheduler is the paper's uniform random scheduler: every one
// of the n(n−1)/2 pairs is selected independently and uniformly at
// random each step. It is fair with probability 1. Under a restricted
// topology the draw is uniform over the permitted pairs instead — the
// same law conditioned on the restricted interaction graph.
type UniformScheduler struct{}

// Next implements Scheduler.
func (UniformScheduler) Next(cfg *Config, rng *RNG) (int, int) {
	if t := cfg.topo; t != nil {
		return t.SamplePair(rng)
	}
	return rng.Pair(cfg.N())
}

// Name implements Scheduler.
func (UniformScheduler) Name() string { return "uniform" }

// RoundRobinScheduler cycles deterministically through all pairs in a
// fixed order. It is fair (every pair recurs every n(n−1)/2 steps) but
// maximally regular — a useful sanity adversary: stabilization theorems
// hold under it even though the running-time analysis does not apply.
type RoundRobinScheduler struct {
	next int
}

// Next implements Scheduler.
func (s *RoundRobinScheduler) Next(cfg *Config, _ *RNG) (int, int) {
	if t := cfg.topo; t != nil {
		u, v := t.PairAt(s.next)
		s.next++
		if s.next >= t.PairCount() {
			s.next = 0
		}
		return u, v
	}
	n := cfg.N()
	u, v := pairFromIndex(n, s.next)
	s.next++
	if s.next >= pairCount(n) {
		s.next = 0
	}
	return u, v
}

// Name implements Scheduler.
func (s *RoundRobinScheduler) Name() string { return "round-robin" }

// PermutationScheduler runs through a fresh random permutation of all
// pairs each epoch. Fair, and stresses different interleavings than the
// uniform scheduler (every pair occurs exactly once per epoch).
type PermutationScheduler struct {
	order []int
	pos   int
}

// Next implements Scheduler.
func (s *PermutationScheduler) Next(cfg *Config, rng *RNG) (int, int) {
	n := cfg.N()
	pc := pairCount(n)
	if t := cfg.topo; t != nil {
		pc = t.PairCount()
	}
	if s.pos >= len(s.order) || len(s.order) != pc {
		s.order = rng.Perm(pc)
		s.pos = 0
	}
	idx := s.order[s.pos]
	s.pos++
	if t := cfg.topo; t != nil {
		return t.PairAt(idx)
	}
	return pairFromIndex(n, idx)
}

// Name implements Scheduler.
func (s *PermutationScheduler) Name() string { return "permutation" }

// WeightedScheduler is a heterogeneous-rate random scheduler: every
// node carries a relative clock rate and each step draws both
// endpoints rate-proportionally (the second from the remaining
// nodes), modelling populations whose members interact at different
// speeds — the scheduler variation the NETCS-style simulators expose.
// Nodes in the id prefix [0, ⌈HotFraction·n⌉) run at Boost times the
// rate of the rest. Every pair keeps positive probability each step,
// so fairness holds with probability 1 and the paper's stabilization
// theorems still apply, but the uniform-scheduler running-time
// analysis does not — the indexed engines reject it, and EngineAuto
// falls back to the baseline loop.
type WeightedScheduler struct {
	// HotFraction is the fraction of the population running hot;
	// values ≤ 0 default to 0.25, values > 1 clamp to 1.
	HotFraction float64
	// Boost is the hot nodes' rate multiple; values ≤ 0 default to 4.
	Boost float64
}

// Next implements Scheduler.
func (s *WeightedScheduler) Next(cfg *Config, rng *RNG) (int, int) {
	n := cfg.N()
	frac := s.HotFraction
	if frac <= 0 {
		frac = 0.25
	}
	if frac > 1 {
		frac = 1
	}
	boost := s.Boost
	if boost <= 0 {
		boost = 4
	}
	hot := int(frac * float64(n))
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	u := weightedNode(n, hot, boost, rng)
	v := u
	for v == u {
		v = weightedNode(n, hot, boost, rng)
	}
	return u, v
}

// weightedNode draws one node with probability proportional to its
// rate (boost for the hot prefix, 1 for the rest).
func weightedNode(n, hot int, boost float64, rng *RNG) int {
	hotMass := boost * float64(hot)
	x := rng.Float64() * (hotMass + float64(n-hot))
	var u int
	if x < hotMass {
		u = int(x / boost)
	} else {
		u = hot + int(x-hotMass)
	}
	if u >= n {
		// Guard the floating-point edge where x rounds up to the total.
		u = n - 1
	}
	return u
}

// Name implements Scheduler.
func (s *WeightedScheduler) Name() string { return "weighted" }

// BiasedScheduler is an adversarially skewed (but still fair) random
// scheduler: with probability 1−Epsilon it picks a pair within the
// "slow" prefix of nodes [0, Cut), otherwise a uniform pair. Every pair
// keeps non-zero probability each step, so fairness holds with
// probability 1, yet interactions involving the suffix are starved —
// a stress test for protocols whose proofs rely only on fairness.
type BiasedScheduler struct {
	// Cut is the size of the favored prefix (≥ 2 effective).
	Cut int
	// Epsilon is the probability of an unbiased draw; must be in (0, 1].
	Epsilon float64
}

// Next implements Scheduler.
func (s *BiasedScheduler) Next(cfg *Config, rng *RNG) (int, int) {
	n := cfg.N()
	cut := s.Cut
	if cut < 2 {
		cut = 2
	}
	if cut > n {
		cut = n
	}
	if cut < n && rng.Float64() >= s.Epsilon {
		return rng.Pair(cut)
	}
	return rng.Pair(n)
}

// Name implements Scheduler.
func (s *BiasedScheduler) Name() string { return "biased" }
