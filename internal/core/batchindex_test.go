package core

import (
	"testing"
)

// batchProtocols is the index battery plus a protocol whose hot rule
// is a deterministic edge swap — the batch kernel's target shape,
// which the shared battery lacks.
func batchProtocols(t *testing.T) map[string]*Protocol {
	t.Helper()
	m := indexProtocols(t)
	m["walker"] = MustProtocol("walker", []string{"q0", "q2", "w"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 2, OutEdge: true},
		{A: 2, B: 1, Edge: true, OutA: 1, OutB: 2, OutEdge: true}, // the swap
		{A: 2, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	return m
}

// verifyBatchIndex cross-checks every cached quantity of the batch
// census index against brute-force scans: the enabled totals, the
// per-sub-bucket weights, the per-class active-edge counts it
// maintains (effMask ≠ 0 only — the others are deliberately
// unmaintained), and the edge list plus mirror structure of every
// listed class.
func verifyBatchIndex(t *testing.T, bi *batchIndex, cfg *Config) {
	t.Helper()
	n := cfg.N()
	p := cfg.Protocol()
	q := p.Size()
	var enabled, edgeEnabled int64
	w := make([]int64, 2*q*q)
	we := make([]int64, 2*q*q)
	edgeCount := make([]int64, q*q)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			a, b := cfg.Node(u), cfg.Node(v)
			if a > b {
				a, b = b, a
			}
			id := int(a)*q + int(b)
			e := cfg.Edge(u, v)
			if e {
				edgeCount[id]++
			}
			if p.EffectiveOn(a, b, e) {
				enabled++
				w[2*id+boolToInt(e)]++
			}
			if p.EdgeEffectiveOn(a, b, e) {
				edgeEnabled++
				we[2*id+boolToInt(e)]++
			}
		}
	}
	if bi.enabled != enabled {
		t.Fatalf("enabled = %d, brute force %d", bi.enabled, enabled)
	}
	if bi.edgeEnabled != edgeEnabled {
		t.Fatalf("edgeEnabled = %d, brute force %d", bi.edgeEnabled, edgeEnabled)
	}
	for id := 0; id < q*q; id++ {
		if id/q > id%q {
			continue // classes live at a ≤ b
		}
		if bi.w[2*id] != w[2*id] || bi.w[2*id+1] != w[2*id+1] {
			t.Fatalf("class %d weights = (%d,%d), brute force (%d,%d)",
				id, bi.w[2*id], bi.w[2*id+1], w[2*id], w[2*id+1])
		}
		if bi.we[2*id] != we[2*id] || bi.we[2*id+1] != we[2*id+1] {
			t.Fatalf("class %d edge-enabled weights = (%d,%d), brute force (%d,%d)",
				id, bi.we[2*id], bi.we[2*id+1], we[2*id], we[2*id+1])
		}
		if bi.effMask[id] != 0 && bi.edgeCount[id] != edgeCount[id] {
			t.Fatalf("class %d edge count = %d, brute force %d", id, bi.edgeCount[id], edgeCount[id])
		}
		if !bi.listed[id] {
			if len(bi.edgeList[id]) != 0 {
				t.Fatalf("unlisted class %d carries %d list entries", id, len(bi.edgeList[id]))
			}
			continue
		}
		if int64(len(bi.edgeList[id])) != edgeCount[id] {
			t.Fatalf("listed class %d holds %d edges, brute force %d", id, len(bi.edgeList[id]), edgeCount[id])
		}
		for slot, key := range bi.edgeList[id] {
			u, v := int(key>>32), int(key&0xffffffff)
			if u >= v {
				t.Fatalf("class %d slot %d: key order (%d,%d)", id, slot, u, v)
			}
			if !cfg.Edge(u, v) {
				t.Fatalf("class %d lists inactive edge {%d,%d}", id, u, v)
			}
			if got := bi.classID(cfg.Node(u), cfg.Node(v)); got != id {
				t.Fatalf("edge {%d,%d} listed in class %d but classifies as %d", u, v, id, got)
			}
			found := false
			for _, me := range bi.mirror[u] {
				if me.other == int32(v) {
					if int(me.class) != id || int(me.slot) != slot {
						t.Fatalf("edge {%d,%d} mirror entry (class %d, slot %d), want (%d, %d)",
							u, v, me.class, me.slot, id, slot)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("edge {%d,%d} has no mirror entry", u, v)
			}
		}
	}
}

// snapshotWeights copies the cached sub-bucket weight vector.
func snapshotWeights(bi *batchIndex) []int64 {
	out := make([]int64, 0, len(bi.w)+len(bi.we))
	out = append(out, bi.w...)
	return append(out, bi.we...)
}

func weightsEqual(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchIndexTracksApply drives each battery protocol with random
// interactions through Config.Apply + batchIndex.Update and verifies
// the full index against brute force after every effective step —
// including the census-generation law: gen advances exactly when some
// cached weight changes value.
func TestBatchIndexTracksApply(t *testing.T) {
	t.Parallel()
	for name, p := range batchProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 12
			rng := NewRNG(7)
			cfg := NewConfig(p, n)
			cfg.store = &sparseStore{n: n, adj: make([][]int32, n)}
			bi := newBatchIndex(cfg)
			verifyBatchIndex(t, bi, cfg)
			for step := 0; step < 2000; step++ {
				u, v := rng.Pair(n)
				beforeU, beforeV := cfg.Node(u), cfg.Node(v)
				before := snapshotWeights(bi)
				genBefore := bi.gen
				effective, edgeChanged := cfg.Apply(u, v, rng)
				if !effective {
					continue
				}
				bi.Update(u, v, beforeU, beforeV, edgeChanged)
				verifyBatchIndex(t, bi, cfg)
				changed := !weightsEqual(before, snapshotWeights(bi))
				bumped := bi.gen != genBefore
				if changed != bumped {
					t.Fatalf("step %d: weights changed=%v but gen bumped=%v", step, changed, bumped)
				}
			}
		})
	}
}

// TestBatchIndexApplySwap exercises the swap kernel's index side
// directly: walker-protocol configurations where planned landings on
// the swap class are applied through applySwap (states exchanged in
// place, no Config.Apply), interleaved with ordinary rule
// applications, with a full brute-force verification after each.
func TestBatchIndexApplySwap(t *testing.T) {
	t.Parallel()
	p := batchProtocols(t)["walker"]
	if !p.Batchable() {
		t.Fatal("walker protocol must be batchable")
	}
	const n = 12
	rng := NewRNG(31)
	cfg := NewConfig(p, n)
	cfg.store = &sparseStore{n: n, adj: make([][]int32, n)}
	bi := newBatchIndex(cfg)
	swaps, generic := 0, 0
	for step := 0; step < 4000; step++ {
		if bi.enabled == 0 {
			break
		}
		u, v := bi.Sample(rng)
		a, b := cfg.Node(u), cfg.Node(v)
		if cfg.Edge(u, v) && bi.swapCell[bi.classID(a, b)] {
			// The kernel path: exchange states, patch the index.
			cfg.nodes[u], cfg.nodes[v] = b, a
			bi.applySwap(u, v, a, b)
			swaps++
		} else {
			effective, edgeChanged := cfg.Apply(u, v, rng)
			if effective {
				bi.Update(u, v, a, b, edgeChanged)
			}
			generic++
		}
		verifyBatchIndex(t, bi, cfg)
	}
	if swaps == 0 || generic == 0 {
		t.Fatalf("run exercised %d swaps and %d generic steps; want both > 0", swaps, generic)
	}
}

// TestBatchIndexSampleMatchesClassIndex pins the draw-stream
// compatibility claim: over identical configurations and identical RNG
// states, batchIndex.Sample returns exactly the pairs
// ClassIndex.Sample returns — same class walk, same member draws, same
// orientation coins — step after step through an evolving run.
func TestBatchIndexSampleMatchesClassIndex(t *testing.T) {
	t.Parallel()
	for name, p := range batchProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 14
			cfgA := NewConfig(p, n)
			cfgA.store = &sparseStore{n: n, adj: make([][]int32, n)}
			cfgB := NewConfig(p, n)
			cfgB.store = &sparseStore{n: n, adj: make([][]int32, n)}
			ci := NewClassIndex(cfgA)
			bi := newBatchIndex(cfgB)
			rngA, rngB := NewRNG(17), NewRNG(17)
			applyA, applyB := NewRNG(99), NewRNG(99)
			for step := 0; step < 1500; step++ {
				if ci.Enabled() == 0 {
					break
				}
				u1, v1 := ci.Sample(rngA)
				u2, v2 := bi.Sample(rngB)
				if u1 != u2 || v1 != v2 {
					t.Fatalf("step %d: ClassIndex drew (%d,%d), batchIndex drew (%d,%d)", step, u1, v1, u2, v2)
				}
				beforeU, beforeV := cfgA.Node(u1), cfgA.Node(v1)
				effective, edgeChanged := cfgA.Apply(u1, v1, applyA)
				eff2, ec2 := cfgB.Apply(u2, v2, applyB)
				if effective != eff2 || edgeChanged != ec2 {
					t.Fatalf("step %d: twin applications diverged", step)
				}
				if effective {
					ci.Update(u1, v1, beforeU, beforeV, edgeChanged)
					bi.Update(u2, v2, beforeU, beforeV, edgeChanged)
				}
				if ci.Enabled() != bi.enabled || ci.EdgeEnabled() != bi.edgeEnabled {
					t.Fatalf("step %d: enabled diverged: class (%d,%d) vs batch (%d,%d)",
						step, ci.Enabled(), ci.EdgeEnabled(), bi.enabled, bi.edgeEnabled)
				}
			}
		})
	}
}

// TestBatchIndexReset pins the workspace path: an index dirtied by one
// run and reset onto a fresh configuration must verify exactly like a
// newly built one, including after a protocol change.
func TestBatchIndexReset(t *testing.T) {
	t.Parallel()
	protos := batchProtocols(t)
	walker, toggle := protos["walker"], protos["toggle"]
	const n = 12
	rng := NewRNG(5)
	cfg := NewConfig(walker, n)
	cfg.store = &sparseStore{n: n, adj: make([][]int32, n)}
	bi := newBatchIndex(cfg)
	for step := 0; step < 500; step++ {
		u, v := rng.Pair(n)
		a, b := cfg.Node(u), cfg.Node(v)
		effective, edgeChanged := cfg.Apply(u, v, rng)
		if effective {
			bi.Update(u, v, a, b, edgeChanged)
		}
	}
	// Reset onto a fresh same-protocol configuration…
	cfg2 := NewConfig(walker, n)
	cfg2.store = &sparseStore{n: n, adj: make([][]int32, n)}
	bi.reset(cfg2)
	verifyBatchIndex(t, bi, cfg2)
	if bi.gen != 0 {
		t.Fatalf("fresh reset left gen = %d", bi.gen)
	}
	// …and onto a different protocol with a different state count.
	cfg3 := NewConfig(toggle, n)
	cfg3.store = &sparseStore{n: n, adj: make([][]int32, n)}
	bi.reset(cfg3)
	verifyBatchIndex(t, bi, cfg3)
}
