package core

import (
	"math/bits"
	"sort"
	"strings"
)

// maxDenseEdgeNodes is the population threshold of the edge-storage
// strategy: configurations up to this size keep the triangular edge
// bitset (n²/16 bytes — ≤ 1 MB at the threshold, and O(1) edge reads
// for the hot dense-regime paths), larger ones switch to per-node
// sorted adjacency sets whose memory is O(n + m) and whose operations
// cost O(log deg) / O(deg). The threshold deliberately coincides with
// maxAutoIndexNodes: below it the dense regime (bitset + PairIndex +
// fast engine) is self-consistent, above it the sparse regime
// (adjacency + ClassIndex + sparse engine) is.
const maxDenseEdgeNodes = maxAutoIndexNodes

// edgeStore is the pluggable storage strategy behind Config's edge
// set. Implementations store each undirected edge once and must treat
// (u, v) and (v, u) identically.
type edgeStore interface {
	// get reports whether the edge {u, v} is active.
	get(u, v int) bool
	// set writes the edge state and reports whether it changed.
	set(u, v int, active bool) bool
	// neighbors appends u's active neighbors to dst in ascending order
	// and returns it.
	neighbors(u int, dst []int) []int
	// forEach visits every active edge once as (u, v) with u < v, in
	// lexicographic order.
	forEach(fn func(u, v int))
	// clone returns a deep copy.
	clone() edgeStore
	// reset deactivates every edge in place, retaining the backing
	// memory — the workspace path's allocation-free NewConfig.
	reset()
	// copyFrom replaces the edge set with src's, reusing the backing
	// memory. The receiver and src are always the same kind and
	// population (the kind is a pure function of n, which callers match
	// before copying); src may alias the receiver.
	copyFrom(src edgeStore)
	// appendFingerprint writes a canonical encoding of the edge set.
	// Encodings are canonical per storage kind (a Config's kind is
	// fixed by n at construction, so fingerprints of same-n configs
	// are always comparable).
	appendFingerprint(sb *strings.Builder)
}

// newEdgeStore picks the storage strategy for a population of n nodes.
func newEdgeStore(n int) edgeStore {
	if n <= maxDenseEdgeNodes {
		return &denseStore{n: n, bits: newBitset(pairCount(n))}
	}
	return &sparseStore{n: n, adj: make([][]int32, n)}
}

// denseStore is the triangular bitset over all n(n−1)/2 pairs: Θ(n²)
// bits, O(1) reads and writes.
type denseStore struct {
	n    int
	bits bitset
}

func (s *denseStore) get(u, v int) bool {
	return s.bits.get(pairIndex(s.n, u, v))
}

func (s *denseStore) set(u, v int, active bool) bool {
	idx := pairIndex(s.n, u, v)
	if s.bits.get(idx) == active {
		return false
	}
	s.bits.set(idx, active)
	return true
}

func (s *denseStore) neighbors(u int, dst []int) []int {
	for v := 0; v < s.n; v++ {
		if v != u && s.get(u, v) {
			dst = append(dst, v)
		}
	}
	return dst
}

func (s *denseStore) forEach(fn func(u, v int)) {
	// Row u of the triangular layout is the contiguous bit range
	// [start, start + n−u−1); scan it wordwise so the whole walk costs
	// O(n + n²/64 + m) instead of n²/2 single-bit reads.
	start := 0
	for u := 0; u < s.n-1; u++ {
		end := start + s.n - u - 1
		for i := start; i < end; {
			w := s.bits[i>>6] >> (uint(i) & 63)
			if w == 0 {
				i += 64 - (i & 63)
				continue
			}
			i += bits.TrailingZeros64(w)
			if i >= end {
				break
			}
			fn(u, u+1+(i-start))
			i++
		}
		start = end
	}
}

func (s *denseStore) clone() edgeStore {
	return &denseStore{n: s.n, bits: s.bits.clone()}
}

func (s *denseStore) reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

func (s *denseStore) copyFrom(src edgeStore) {
	copy(s.bits, src.(*denseStore).bits)
}

func (s *denseStore) appendFingerprint(sb *strings.Builder) {
	sb.Grow(len(s.bits) * 8)
	for _, w := range s.bits {
		for shift := 0; shift < 64; shift += 8 {
			sb.WriteByte(byte(w >> shift))
		}
	}
}

// sparseStore keeps per-node sorted adjacency sets: O(n + m) memory,
// O(log deg) membership, O(deg) updates and neighbor listing.
type sparseStore struct {
	n   int
	adj [][]int32
}

// find locates v in u's sorted adjacency row: a hand-rolled binary
// search — on protocol graphs the rows are a few entries long and the
// engines call this on every edge probe, so the sort.Search closure
// indirection is measurable.
func (s *sparseStore) find(u, v int) (int, bool) {
	row := s.adj[u]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(row) && row[lo] == int32(v)
}

func (s *sparseStore) get(u, v int) bool {
	_, ok := s.find(u, v)
	return ok
}

func (s *sparseStore) set(u, v int, active bool) bool {
	if !s.setHalf(u, v, active) {
		return false
	}
	s.setHalf(v, u, active)
	return true
}

func (s *sparseStore) setHalf(u, v int, active bool) bool {
	i, present := s.find(u, v)
	if present == active {
		return false
	}
	row := s.adj[u]
	if active {
		row = append(row, 0)
		copy(row[i+1:], row[i:])
		row[i] = int32(v)
	} else {
		row = append(row[:i], row[i+1:]...)
	}
	s.adj[u] = row
	return true
}

func (s *sparseStore) neighbors(u int, dst []int) []int {
	for _, v := range s.adj[u] {
		dst = append(dst, int(v))
	}
	return dst
}

func (s *sparseStore) forEach(fn func(u, v int)) {
	for u, row := range s.adj {
		for _, v := range row {
			if int(v) > u {
				fn(u, int(v))
			}
		}
	}
}

func (s *sparseStore) clone() edgeStore {
	c := &sparseStore{n: s.n, adj: make([][]int32, len(s.adj))}
	for u, row := range s.adj {
		if len(row) > 0 {
			c.adj[u] = append([]int32(nil), row...)
		}
	}
	return c
}

func (s *sparseStore) reset() {
	for u := range s.adj {
		s.adj[u] = s.adj[u][:0]
	}
}

func (s *sparseStore) copyFrom(src edgeStore) {
	for u, row := range src.(*sparseStore).adj {
		s.adj[u] = append(s.adj[u][:0], row...)
	}
}

func (s *sparseStore) appendFingerprint(sb *strings.Builder) {
	// Per-node upper rows, length-prefixed so the encoding is
	// self-delimiting: for each u, the count of neighbors v > u then
	// the neighbor ids, all little-endian uint32.
	writeU32 := func(x uint32) {
		sb.WriteByte(byte(x))
		sb.WriteByte(byte(x >> 8))
		sb.WriteByte(byte(x >> 16))
		sb.WriteByte(byte(x >> 24))
	}
	for u, row := range s.adj {
		i := sort.Search(len(row), func(i int) bool { return row[i] > int32(u) })
		upper := row[i:]
		writeU32(uint32(len(upper)))
		for _, v := range upper {
			writeU32(uint32(v))
		}
	}
}
