package core

import (
	"testing"
)

// wsResultKey flattens a Result into comparable scalars plus the final
// configuration's canonical fingerprint — "bit-identical" for the
// workspace contract's purposes.
type wsResultKey struct {
	Converged       bool
	Stopped         bool
	Steps           int64
	ConvergenceTime int64
	EffectiveSteps  int64
	EdgeChanges     int64
	Engine          Engine
	Fingerprint     string
}

func keyOf(res Result) wsResultKey {
	return wsResultKey{
		Converged:       res.Converged,
		Stopped:         res.Stopped,
		Steps:           res.Steps,
		ConvergenceTime: res.ConvergenceTime,
		EffectiveSteps:  res.EffectiveSteps,
		EdgeChanges:     res.EdgeChanges,
		Engine:          res.Engine,
		Fingerprint:     res.Final.Fingerprint(),
	}
}

// dirtyWorkspace runs a throwaway workload through ws so the measured
// run that follows starts from a thoroughly used workspace — different
// protocol, different population, an indexed engine — rather than a
// pristine one. Resets must erase all of it.
func dirtyWorkspace(t *testing.T, ws *Workspace) {
	t.Helper()
	p := injProtocol()
	for _, engine := range []Engine{EngineFast, EngineSparse, EngineBatch, EngineBaseline} {
		_, err := Run(p, 9, Options{
			Seed:      99,
			Engine:    engine,
			Detector:  Detector{Trigger: TriggerInterval, Stable: func(*Config) bool { return false }},
			MaxSteps:  500,
			Workspace: ws,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkspaceBitIdentical pins the workspace contract: a run through
// a reused (and deliberately dirtied) workspace is bit-identical —
// full Result plus final-configuration fingerprint — to a
// fresh-allocation run with the same (protocol, n, seed, engine), on
// all three engines, for default and caller-supplied initial
// configurations, and under an injected fault sequence.
func TestWorkspaceBitIdentical(t *testing.T) {
	t.Parallel()
	epi, epiDet := epidemicProtocol()
	quiesceFast := MustProtocol("q", []string{"i", "o"}, 0, []State{1}, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 0, OutB: 1},
		{A: 0, B: 1, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})

	cases := []struct {
		name     string
		proto    *Protocol
		n        int
		det      Detector
		initial  func(p *Protocol, n int) *Config
		injector func() Injector
		maxSteps int64
	}{
		{name: "default-start", proto: quiesceFast, n: 24, det: QuiescenceDetector()},
		{name: "seeded-initial", proto: epi, n: 24, det: epiDet, initial: seededInitial},
		{name: "fault-plan", proto: quiesceFast, n: 24, det: QuiescenceDetector(),
			maxSteps: 1 << 16,
			injector: func() Injector {
				return &scriptInjector{
					events: []int64{5, 60, 200},
					act: func(step int64, m *Mutator) {
						m.SetNode(int(step)%8, 0)
						m.SetEdge(1, 2, false)
					},
				}
			}},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, engine := range []Engine{EngineBaseline, EngineFast, EngineSparse, EngineBatch} {
				opts := Options{Seed: 7, Engine: engine, Detector: tc.det, MaxSteps: tc.maxSteps}
				if tc.initial != nil {
					opts.Initial = tc.initial(tc.proto, tc.n)
				}
				if tc.injector != nil {
					opts.Injector = tc.injector()
				}
				fresh, err := Run(tc.proto, tc.n, opts)
				if err != nil {
					t.Fatalf("engine=%s fresh: %v", engine, err)
				}
				want := keyOf(fresh)

				ws := NewWorkspace()
				dirtyWorkspace(t, ws)
				opts.Workspace = ws
				// Two reused runs: the first rebuilds the workspace by
				// rescan, the second exercises the snapshot-restore fast
				// path (default starts) or a second in-place reset.
				for round := 1; round <= 2; round++ {
					if tc.injector != nil {
						opts.Injector = tc.injector() // injectors are stateful: fresh per run
					}
					got, err := Run(tc.proto, tc.n, opts)
					if err != nil {
						t.Fatalf("engine=%s workspace round %d: %v", engine, round, err)
					}
					if keyOf(got) != want {
						t.Fatalf("engine=%s round %d: workspace run diverged from fresh run:\n got %+v\nwant %+v",
							engine, round, keyOf(got), want)
					}
				}
			}
		})
	}
}

// TestWorkspaceFinalSurvivesAsNextInitial pins the documented edge of
// the ownership contract: the borrowed Result.Final may be fed back as
// the next run's Initial on the same workspace (the in-place copy is a
// no-op on the aliased configuration).
func TestWorkspaceFinalSurvivesAsNextInitial(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	ws := NewWorkspace()
	res, err := Run(p, 16, Options{Seed: 3, Detector: det, Initial: seededInitial(p, 16), Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	fp := res.Final.Fingerprint()
	res2, err := Run(p, 16, Options{Seed: 4, Detector: det, Initial: res.Final, Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged || res2.Steps != 0 {
		t.Fatalf("continuation from a converged Final should be immediately stable: %+v", res2)
	}
	if res2.Final.Fingerprint() != fp {
		t.Fatal("continuation mutated the aliased initial configuration")
	}
	// The fingerprint covers nodes and edges only; the derived
	// aggregates must survive the aliased self-copy too (the in-place
	// count resize once zeroed them through the alias).
	if got := res2.Final.CountAll(nil); got[0] != 0 || got[1] != 16 {
		t.Fatalf("aliased self-copy corrupted population counts: %v", got)
	}
}

// TestWorkspaceSteadyStateAllocs pins the tentpole claim: with a
// workspace, steady-state repeated runs allocate O(1) — a few closure
// cells, never the Θ(n²) index or the configuration arrays. Bounds are
// deliberately loose (a handful, not the exact count) so unrelated
// compiler changes don't flake the suite, while still catching any
// reintroduced per-trial rebuild, which would cost hundreds of
// allocations.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	p, det := epidemicProtocol()
	initial := seededInitial(p, 96)
	for _, engine := range []Engine{EngineBaseline, EngineFast, EngineSparse, EngineBatch} {
		ws := NewWorkspace()
		seed := uint64(1)
		run := func() {
			opts := Options{Seed: seed, Engine: engine, Detector: det, Initial: initial, Workspace: ws}
			seed++
			if _, err := Run(p, 96, opts); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			run() // reach steady-state capacities before counting
		}
		if avg := testing.AllocsPerRun(16, run); avg > 8 {
			t.Errorf("engine=%s: %.1f allocations per steady-state workspace run, want ≤ 8", engine, avg)
		}
	}
}
