package core

import "math"

// Bucket-plan sizing: plans start small, double on full consumption
// and halve on truncation, so the planned horizon tracks the length of
// the run's census-frozen stretches. The ceiling is sized for the
// swap-run collapse: a Simple-Global-Line walker's census-frozen
// stretches grow with the squared line length, and every planned
// landing the collapse absorbs costs O(1/64) of a popcount word — so
// large plans are nearly free exactly when they are long-lived.
const (
	batchPlanMin   = 8
	batchPlanStart = 16
	batchPlanMax   = 1 << 15
)

// collapseMin is the swap-run length below which the collapse draws
// (run length, gap total, displacement) cost more than the per-landing
// kernel they replace.
const collapseMin = 8

// bucketPlan is the batch engine's pre-drawn allocation of the next k
// landings to the enabled (state-class, state-class, edge-state)
// sub-buckets, valid while the census generation is unchanged.
//
// Law preservation (the full argument is in ARCHITECTURE.md): while no
// sub-bucket weight changes, the landing buckets are iid
// categorical(w/m). Drawing the counts c ~ Multinomial(k, w/m) once
// and then consuming them in uniformly random order (an urn draw
// proportional to the remaining counts per landing) produces exactly
// that iid sequence — multinomial counts plus a uniform interleaving
// are the de Finetti decomposition of k iid draws. The pair *within*
// the chosen bucket is drawn from the bucket's current contents at
// application time, identical to the sparse engine's second stage.
// Truncating the plan at the first landing that changes some weight is
// a stopping time of the sequence, so discarding the unapplied suffix
// and re-planning from the new weights preserves the law exactly.
type bucketPlan struct {
	size      int64   // k for the next build (adaptive)
	cells     []int32 // enabled sub-bucket keys: 2·classID + edgeBit
	counts    []int64 // remaining planned landings per cell
	weights   []int64 // scratch for the multinomial draw
	remaining int64
	gen       uint64 // census generation the plan was drawn against
}

// build draws a fresh plan against the index's current weights.
func (pl *bucketPlan) build(ix *batchIndex, rng *RNG) {
	pl.cells = pl.cells[:0]
	pl.weights = pl.weights[:0]
	for a := 0; a < ix.q; a++ {
		for b := a; b < ix.q; b++ {
			id := a*ix.q + b
			if w := ix.w[2*id]; w > 0 {
				pl.cells = append(pl.cells, int32(2*id))
				pl.weights = append(pl.weights, w)
			}
			if w := ix.w[2*id+1]; w > 0 {
				pl.cells = append(pl.cells, int32(2*id+1))
				pl.weights = append(pl.weights, w)
			}
		}
	}
	pl.counts = rng.MultinomialBuckets(pl.size, pl.weights, pl.counts)
	pl.remaining = pl.size
	pl.gen = ix.gen
}

// drawCell consumes one planned landing and returns its sub-bucket
// key: an urn draw over the remaining counts (skipped when a single
// sub-bucket is enabled — the common case in census-frozen phases).
// The member within the bucket is the caller's to draw, from the
// bucket's current contents at application time.
func (pl *bucketPlan) drawCell(rng *RNG) int32 {
	idx := 0
	if len(pl.cells) > 1 {
		t := rng.Int64N(pl.remaining)
		for t >= pl.counts[idx] {
			t -= pl.counts[idx]
			idx++
		}
	}
	pl.counts[idx]--
	pl.remaining--
	return pl.cells[idx]
}

// drawCellExcluding consumes one planned landing drawn over every cell
// except the one at index skip — the conditioned draw right after a
// collapsed run: the run ended precisely because the next landing is
// some other cell, so the urn draw excludes the run's cell (whose
// remaining count stays in the plan for later landings).
func (pl *bucketPlan) drawCellExcluding(rng *RNG, skip int) int32 {
	t := rng.Int64N(pl.remaining - pl.counts[skip])
	idx := 0
	for i, c := range pl.counts {
		if i == skip {
			continue
		}
		if t < c {
			idx = i
			break
		}
		t -= c
	}
	pl.counts[idx]--
	pl.remaining--
	return pl.cells[idx]
}

// runBatch is the batch engine. In its pure form it runs batchLoop
// over a batchIndex: geometric skips between landings as the sparse
// engine, but consecutive landings inside a census-frozen stretch are
// allocated to class sub-buckets by one multivariate draw instead of
// per-landing index walks, deterministic-swap landings run a
// specialized kernel, and the index maintenance itself is leaner (see
// batchIndex).
//
// Two conditions switch the whole run to exact per-landing stepping —
// literally runIndexed over a ClassIndex, bit-identical to
// EngineSparse: an attached EventSink, Observer, or fault Injector
// (those consumers observe individual landings, which the pure path
// does not reproduce draw-for-draw), and a protocol with no
// census-preserving outcome (Protocol.Batchable — such runs could
// never hold a plan, so the exact path costs nothing and keeps every
// census-changing transition bit-identical to the sparse engine).
// Result.Engine still reports EngineBatch and
// Metrics.ExactFallbackLandings counts every landing as exact-stepped.
// A restricted topology routes to the exact path too: the pure batch
// plan allocates landings to class sub-buckets by whole-class pair
// counts, which a permitted-pair restriction reshapes per class — the
// exact path stays bit-identical to EngineSparse under any topology.
func runBatch(p *Protocol, cfg *Config, det Detector, opts Options, maxSteps, interval int64, rng *RNG) (Result, error) {
	exact := opts.Events != nil || opts.Observer != nil || opts.Injector != nil || opts.Topology != nil || !p.Batchable()
	if exact {
		var ix *ClassIndex
		if ws := opts.Workspace; ws != nil {
			ix = ws.classIndex(cfg)
		} else {
			ix = NewClassIndex(cfg)
		}
		res, err := runIndexed(p, cfg, det, opts, maxSteps, interval, rng, ix, EngineBatch)
		res.Metrics.IndexBuilds = 1
		res.Metrics.ExactFallbackLandings = res.Metrics.Landings
		return res, err
	}
	var ix *batchIndex
	if ws := opts.Workspace; ws != nil {
		ix = ws.batchIndex(cfg)
	} else {
		ix = newBatchIndex(cfg)
	}
	res := batchLoop(p, cfg, det, opts, maxSteps, interval, rng, ix)
	res.Metrics.IndexBuilds = 1
	res.Metrics.SampleRejections, res.Metrics.SampleFallbacks = ix.rejections, ix.fallbacks
	return res, nil
}

// batchLoop mirrors indexedLoop's skip/landing/detector structure (no
// events, observer, or injector can be attached here — runBatch routed
// those to the exact path), with three changes to the landing itself:
//
//   - a landing inside a valid plan consumes a planned sub-bucket
//     (Metrics.BucketDraws); a landing right after a census-preserving
//     landing builds a fresh plan first; any other landing draws
//     through the index directly;
//   - a planned landing on a deterministic-swap edge class skips the
//     rule lookup, the orientation coin and the edge-store reads
//     entirely: the two endpoint states are exchanged in place and the
//     index patched by applySwap (a swap is orientation-symmetric and
//     its compiled entry consumes no coins, so the kernel is the law
//     of Config.Apply with the arithmetic removed);
//   - the geometric gaps draw through GeometricExp — same law as the
//     sparse engine's GeometricLn from a cheaper primitive.
//
// The loop therefore makes no bit-identity promise against
// EngineSparse; runs that need one are routed to the exact path by
// runBatch. What it promises is the exact law: every draw is an
// exact-distribution transformation of the uniform-scheduler process.
func batchLoop(p *Protocol, cfg *Config, det Detector, opts Options, maxSteps, interval int64, rng *RNG, ix *batchIndex) Result {
	n := cfg.n
	res := Result{Final: cfg, Engine: EngineBatch}
	total := float64(n) * float64(n-1) / 2

	stable := func() bool {
		res.Metrics.DetectorChecks++
		switch det.Gate {
		case GateQuiescence:
			return ix.enabled == 0
		case GateEdgeQuiescence:
			return ix.edgeEnabled == 0
		default:
			return det.Stable(cfg)
		}
	}
	if stable() {
		res.Converged = true
		return res
	}

	memoM := int64(-1)
	var memoInv float64
	plan := &ix.plan
	plan.size = batchPlanStart
	plan.remaining = 0
	planEligible := false

	// Swap-run state. Within a census-frozen stretch the plan's
	// consumption order is an exchangeable shuffle of its count
	// multiset, so the length of the opening run of any one cell is
	// negative-hypergeometric in the remaining counts. Revealing a run
	// on a deterministic-swap cell unlocks two tiers:
	//
	//   - the analytic collapse, when the cell hosts a single interior
	//     walker (two listed edges sharing a degree-2 endpoint): the
	//     whole run resolves into one displacement draw (the run is an
	//     unconstrained ±1 walk while it stays on the safe segment —
	//     batchIndex.walkChunk), one negative-binomial draw for the
	//     scheduler gaps between its landings, and one teleport;
	//   - the run kernel, otherwise (many walkers sharing the cell):
	//     the run's landings are simulated individually — same draws,
	//     same law — but in a tight loop with the cell fixed, skipping
	//     the per-landing plan and detector bookkeeping that provably
	//     does nothing inside a frozen stretch, and patching the index
	//     with the census-invariant applySwapFast surgery.
	//
	// The run length J is revealed by a real sample, so it must be
	// honored exactly: landings neither tier absorbs are forced through
	// the per-landing kernel with the cell fixed (runLeft), and the
	// landing after the run draws from the plan with the run cell
	// excluded (breakerPending) — the run ended precisely because that
	// landing is some other cell.
	//
	// Detector transparency: collapse is allowed when landings inside
	// a frozen stretch provably cannot fire the detector — TriggerEdge
	// (a swap changes no edge, so no check happens), or a weight-gated
	// detector (the gate reads enabled/edgeEnabled, which are frozen
	// with the census; the per-attempt check below refuses to collapse
	// when an edge-quiescence gate is already open). Custom Stable
	// predicates with effective or interval triggers observe the
	// configuration itself and are never collapsed over. Classes whose
	// swap would change the output graph are excluded by swapOut:
	// ConvergenceTime tracks the last output change per landing, which
	// the collapse does not reproduce.
	var runLeft int64
	runIdx := 0
	breakerPending, breakerAfter := false, false
	collapseGate := det.Trigger == TriggerEdge ||
		det.Gate == GateQuiescence || det.Gate == GateEdgeQuiescence

	var step int64
	for step < maxSteps {
		if opts.Stop != nil && opts.Stop() {
			res.Stopped = true
			res.Steps = step
			return res
		}

		if collapseGate && plan.remaining > 0 && plan.gen == ix.gen &&
			(det.Gate != GateEdgeQuiescence || ix.edgeEnabled > 0) {
			if runLeft == 0 && !breakerPending {
				// Establish the opening run of the plan's dominant
				// eligible swap cell, if any. Runs of every length pay:
				// the analytic tier needs long single-walker runs, but
				// even a length-1 run routes through the run kernel at
				// no extra cost over the per-landing urn draw.
				best, bestIdx := int64(0), -1
				for i, cell := range plan.cells {
					if cell&1 == 1 && ix.swapCell[cell>>1] && !ix.swapOut[cell>>1] &&
						plan.counts[i] > best {
						best, bestIdx = plan.counts[i], i
					}
				}
				if bestIdx >= 0 {
					runIdx = bestIdx
					runLeft = rng.NegHypergeometricRun(best, plan.remaining-best)
					breakerAfter = plan.remaining > best
					if runLeft == 0 {
						breakerPending = breakerAfter
					}
				}
			}
			if runLeft >= collapseMin {
				if chunk := ix.walkChunk(plan.cells[runIdx], runLeft); chunk >= collapseMin {
					// The chunk's landings interleave with iid
					// Geometric(m/total) scheduler misses, independent
					// of the cell sequence: their total is one
					// negative-binomial draw.
					span := chunk
					if fm := float64(ix.enabled); fm < total {
						span += rng.NegBinomial(chunk, fm/total)
					}
					if rem := maxSteps - step; span > rem {
						// The step budget ends inside the run. The
						// span's draw sequence ends with its chunk-th
						// landing; conditioned on (chunk, span) the
						// other chunk−1 landings are uniform among the
						// first span−1 draws, so the landings that fit
						// the budget are hypergeometric. Displace by
						// exactly those and the run is over.
						k := rng.Hypergeometric(rem, chunk-1, span-1)
						ix.collapseMove(rng.WalkDisplacement(k, 0))
						res.EffectiveSteps += k
						res.Metrics.CollapsedLandings += k
						res.Metrics.SkippedSteps += rem - k
						if rem > k {
							res.Metrics.SkipBatches++
						}
						res.Metrics.FastForwardEpochs++
						res.Steps = maxSteps
						return res
					}
					ix.collapseMove(rng.WalkDisplacement(chunk, 0))
					step += span
					res.EffectiveSteps += chunk
					res.Metrics.CollapsedLandings += chunk
					res.Metrics.SkippedSteps += span - chunk
					if span > chunk {
						res.Metrics.SkipBatches++
					}
					res.Metrics.FastForwardEpochs++
					plan.counts[runIdx] -= chunk
					plan.remaining -= chunk
					runLeft -= chunk
					if runLeft == 0 {
						breakerPending = breakerAfter
					}
					if plan.remaining == 0 && plan.size < batchPlanMax {
						plan.size *= 2
					}
					continue
				}
			}
			if runLeft > 0 {
				// Run kernel: the run's landings cannot fire the
				// detector (collapseGate) and their cell is already
				// revealed, so simulate them in a tight loop — real
				// per-landing gap, edge and swap draws, identical in
				// law to the outer path, minus the per-landing plan
				// and detector bookkeeping. A landing that leaves the
				// uniform interior (applySwapFast declines) runs the
				// generic index update; if that moves the census the
				// plan dies right there — a stopping time of the
				// landing sequence, exactly as on the outer path.
				id := int(plan.cells[runIdx] >> 1)
				ix.wpath.valid = false
				drawGaps := float64(ix.enabled) < total
				if drawGaps && ix.enabled != memoM {
					memoM = ix.enabled
					memoInv = -1 / math.Log1p(-float64(ix.enabled)/total)
				}
				// Metrics and plan counters are accumulated in locals
				// and flushed once after the loop: the per-landing cost
				// is the two RNG draws and the swap surgery itself.
				nodes := cfg.nodes
				list := ix.edgeList[id]
				var done, skipped, batches int64
				truncated, budgetOut := false, false
				for done < runLeft {
					if drawGaps {
						skip := rng.GeometricExp(memoInv)
						if skip >= maxSteps-step {
							skipped += maxSteps - step
							if maxSteps > step {
								batches++
							}
							step = maxSteps
							budgetOut = true
							break
						}
						skipped += skip
						if skip > 0 {
							batches++
						}
						step += skip + 1
					} else {
						if step >= maxSteps {
							budgetOut = true
							break
						}
						step++
					}
					done++
					key := list[rng.IntN(len(list))]
					u, v := int(key>>32), int(key&0xffffffff)
					beforeU, beforeV := nodes[u], nodes[v]
					nodes[u], nodes[v] = beforeV, beforeU
					if !ix.applySwapFast(u, v, beforeU, beforeV) {
						genBefore := ix.gen
						ix.applySwap(u, v, beforeU, beforeV)
						if ix.gen != genBefore {
							truncated = true
							break
						}
						// A fallback that kept the census frozen may
						// still have rewritten the cell's list in place;
						// its length is pinned while gen is frozen, but
						// reload the header to be safe.
						list = ix.edgeList[id]
					}
				}
				res.Metrics.Landings += done
				res.Metrics.BucketDraws += done
				res.Metrics.SkippedSteps += skipped
				res.Metrics.SkipBatches += batches
				res.EffectiveSteps += done
				plan.counts[runIdx] -= done
				plan.remaining -= done
				runLeft -= done
				if budgetOut {
					res.Steps = maxSteps
					return res
				}
				if truncated {
					plan.remaining = 0
					if plan.size > batchPlanMin {
						plan.size /= 2
					}
					runLeft, breakerPending = 0, false
					planEligible = false
				} else {
					if runLeft == 0 {
						breakerPending = breakerAfter
					}
					if plan.remaining == 0 && plan.size < batchPlanMax {
						plan.size *= 2
					}
					planEligible = true
				}
				continue
			}
		}

		land := maxSteps + 1
		if m := ix.enabled; m > 0 {
			var skip int64
			if fm := float64(m); fm >= total {
				skip = 0
			} else {
				if m != memoM {
					memoM = m
					memoInv = -1 / math.Log1p(-fm/total)
				}
				skip = rng.GeometricExp(memoInv)
			}
			if skip < maxSteps-step {
				land = step + skip + 1
			}
		}

		if det.Trigger == TriggerInterval {
			if s := nextCheck(step, interval); s <= maxSteps && s < land && stable() {
				skipRange(&res, nil, nil, step, s)
				res.Converged = true
				res.Steps = s
				return res
			}
		}
		if land > maxSteps {
			skipRange(&res, nil, nil, step, maxSteps)
			res.Steps = maxSteps
			return res
		}

		skipRange(&res, nil, nil, step, land-1)
		step = land
		res.Metrics.Landings++
		genBefore := ix.gen
		var u, v int
		var effective, edgeChanged bool
		cell := int32(-1)
		switch {
		case plan.remaining > 0 && plan.gen == ix.gen:
			switch {
			case runLeft > 0:
				// Forced landing inside an established run the
				// collapse could not absorb (walker near its segment
				// boundary): the cell is already revealed.
				cell = plan.cells[runIdx]
				plan.counts[runIdx]--
				plan.remaining--
				runLeft--
				if runLeft == 0 {
					breakerPending = breakerAfter
				}
			case breakerPending:
				cell = plan.drawCellExcluding(rng, runIdx)
				breakerPending = false
			default:
				cell = plan.drawCell(rng)
			}
		case planEligible:
			plan.build(ix, rng)
			cell = plan.drawCell(rng)
		}
		kernel := false
		if cell >= 0 {
			res.Metrics.BucketDraws++
			id := int(cell >> 1)
			if cell&1 == 1 {
				list := ix.edgeList[id]
				key := list[rng.IntN(len(list))]
				u, v = int(key>>32), int(key&0xffffffff)
				kernel = ix.swapCell[id]
				if !kernel {
					u, v = orient(u, v, rng)
				}
			} else {
				u, v = ix.sampleNonEdge(id/ix.q, id%ix.q, rng)
			}
		} else {
			u, v = ix.Sample(rng)
		}
		if kernel {
			beforeU, beforeV := cfg.nodes[u], cfg.nodes[v]
			cfg.nodes[u], cfg.nodes[v] = beforeV, beforeU
			if !ix.applySwapFast(u, v, beforeU, beforeV) {
				ix.applySwap(u, v, beforeU, beforeV)
			}
			recordEffective(&res, p, cfg, nil, nil, nil, step, u, v, beforeU, beforeV, false)
			effective = true
		} else {
			beforeU, beforeV := cfg.nodes[u], cfg.nodes[v]
			effective, edgeChanged = cfg.Apply(u, v, rng)
			if effective {
				ix.Update(u, v, beforeU, beforeV, edgeChanged)
				recordEffective(&res, p, cfg, nil, nil, nil, step, u, v, beforeU, beforeV, edgeChanged)
			}
		}
		if effective {
			// A manually applied landing may have moved the walker (or
			// restructured its segment) without bumping gen: the
			// cached walk path no longer knows the walker's position.
			ix.wpath.valid = false
		}
		if ix.gen != genBefore {
			// Census moved: truncate any outstanding plan (the discarded
			// suffix is exchangeable — dropping it at a stopping time
			// preserves the law) and shrink the horizon. Any revealed
			// run dies with its plan.
			if plan.remaining > 0 {
				plan.remaining = 0
				if plan.size > batchPlanMin {
					plan.size /= 2
				}
			}
			runLeft, breakerPending = 0, false
			planEligible = false
		} else {
			if cell >= 0 && plan.remaining == 0 && plan.size < batchPlanMax {
				plan.size *= 2
			}
			planEligible = true
		}

		check := false
		switch det.Trigger {
		case TriggerEffective:
			check = effective
		case TriggerEdge:
			check = edgeChanged
		case TriggerInterval:
			check = step%interval == 0
		default:
			check = effective
		}
		if check && stable() {
			res.Converged = true
			res.Steps = step
			return res
		}
	}
	res.Steps = maxSteps
	return res
}
