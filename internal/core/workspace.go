package core

// Workspace owns the reusable scratch state of repeated runs: the
// configuration (node-state slice plus either edge store), the dense
// PairIndex, the sparse ClassIndex, and the RNG. A campaign worker
// keeps one workspace for its whole job stream and passes it through
// Options.Workspace; every trial after the first then runs without
// per-trial allocation — the backing arrays are reset in place instead
// of reallocated, which is what lets campaign throughput stop scaling
// with setup cost (at n = 4096 a fresh trial otherwise churns ~100 MB
// of index plus a 1 MB edge bitset through the allocator).
//
// Reuse preserves determinism exactly: every reset path rebuilds the
// same bytes a fresh build would produce (same scan orders, same RNG
// stream after Reseed), so a workspace-reused run is bit-identical to
// a fresh-allocation run with the same (protocol, n, seed, scheduler,
// engine) — pinned by TestWorkspaceBitIdentical.
//
// Ownership: Result.Final returned from a workspace-backed run points
// into the workspace and is valid only until the workspace's next run
// begins; callers that retain it across runs must Clone it first.
// (Passing it back as the next run's Options.Initial on the same
// workspace is fine — the copy happens before the state is reused.)
//
// A Workspace is not safe for concurrent use: one per goroutine.
type Workspace struct {
	cfg   *Config
	pair  *PairIndex
	class *ClassIndex
	batch *batchIndex
	rng   *RNG

	// resets counts the in-place component reuses (configuration
	// reset/copy, RNG reseed, index reset or snapshot restore) performed
	// so far; Run reports the per-run delta as
	// Result.Metrics.WorkspaceResets. A fresh build of a component does
	// not count — the steady state of a campaign worker is three resets
	// per trial and zero allocations.
	resets int64

	// Start-state snapshot of the dense index, captured whenever the
	// index is (re)built by full scan for a run that starts from the
	// default all-q0 configuration. Subsequent default-start runs of the
	// same (protocol, n) restore it with three memcpys instead of the
	// O(n²) rescan — the dominant saving of the steady-state campaign
	// trial, since every trial of a point starts from the same
	// configuration.
	snapValid       bool
	snapProto       *Protocol
	snapN           int
	snapTopo        *Topology
	snapPos         []int32
	snapList        []uint32
	snapBits        bitset
	snapEdgeEnabled int
}

// NewWorkspace returns an empty workspace; every piece is built lazily
// on the first run that needs it.
func NewWorkspace() *Workspace { return &Workspace{} }

// config returns the workspace configuration prepared for a run of
// protocol p on n nodes: a copy of initial when non-nil, the all-q0
// configuration otherwise. The backing arrays are reused whenever the
// population size matches the previous run's (the storage kind is a
// function of n, so same n means same kind).
func (ws *Workspace) config(p *Protocol, n int, initial *Config) *Config {
	if ws.cfg == nil || ws.cfg.n != n {
		if initial != nil {
			ws.cfg = initial.Clone()
		} else {
			ws.cfg = NewConfig(p, n)
		}
		return ws.cfg
	}
	ws.resets++
	if initial != nil {
		ws.cfg.copyFrom(initial)
	} else {
		ws.cfg.resetDefault(p)
	}
	return ws.cfg
}

// rngFor returns the workspace RNG reseeded for the run — the same
// stream a fresh NewRNG(seed) would emit.
func (ws *Workspace) rngFor(seed uint64) *RNG {
	if ws.rng == nil {
		ws.rng = NewRNG(seed)
		return ws.rng
	}
	ws.resets++
	ws.rng.Reseed(seed)
	return ws.rng
}

// pairIndex returns the workspace's dense enabled-pair index rebound
// to cfg, and whether it was restored from the start-state snapshot
// rather than (re)built by full scan. defaultStart marks runs beginning
// from the all-q0 initial configuration: those restore the captured
// snapshot when it matches (memcpy instead of the O(n²) rescan) and
// refresh the snapshot otherwise, so only the first trial of a point
// pays the scan.
func (ws *Workspace) pairIndex(cfg *Config, defaultStart bool) (*PairIndex, bool) {
	if defaultStart && ws.snapValid && ws.snapProto == cfg.proto && ws.snapN == cfg.n && ws.snapTopo == cfg.topo && ws.pair != nil {
		ws.resets++
		ws.pair.restore(cfg, ws.snapPos, ws.snapList, ws.snapBits, ws.snapEdgeEnabled)
		return ws.pair, true
	}
	if ws.pair == nil {
		ws.pair = NewPairIndex(cfg)
	} else {
		ws.resets++
		ws.pair.reset(cfg)
	}
	if defaultStart {
		ws.snapValid = true
		ws.snapProto = cfg.proto
		ws.snapN = cfg.n
		ws.snapTopo = cfg.topo
		ws.snapPos = append(ws.snapPos[:0], ws.pair.pos...)
		ws.snapList = append(ws.snapList[:0], ws.pair.list...)
		ws.snapBits = append(ws.snapBits[:0], ws.pair.edgeBits...)
		ws.snapEdgeEnabled = ws.pair.edgeEnabled
	}
	return ws.pair, false
}

// classIndex returns the workspace's sparse state-class index rebound
// to cfg. The rebuild is O(n + m + |Q|²) either way, so no snapshot is
// kept — resetting is already cheap relative to any run.
func (ws *Workspace) classIndex(cfg *Config) *ClassIndex {
	if ws.class == nil {
		ws.class = NewClassIndex(cfg)
	} else {
		ws.resets++
		ws.class.reset(cfg)
	}
	return ws.class
}

// batchIndex returns the workspace's batch-engine census index rebound
// to cfg — the batch counterpart of classIndex, same O(n + m + |Q|²)
// in-place rebuild, no snapshot.
func (ws *Workspace) batchIndex(cfg *Config) *batchIndex {
	if ws.batch == nil {
		ws.batch = newBatchIndex(cfg)
	} else {
		ws.resets++
		ws.batch.reset(cfg)
	}
	return ws.batch
}
