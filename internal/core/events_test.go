package core_test

// External-package tests for the structured event stream: they exercise
// core together with internal/protocols and internal/scenario (which
// import core, so these checks cannot live in package core itself).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

// collectSink retains a copy of every event (with the live Cfg pointer
// stripped, per the sink contract).
type collectSink struct {
	events []core.Event
}

func (c *collectSink) Event(ev *core.Event) {
	e := *ev
	e.Cfg = nil
	c.events = append(c.events, e)
}

func (c *collectSink) ofKind(k core.EventKind) []core.Event {
	var out []core.Event
	for _, e := range c.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

var engines = []core.Engine{core.EngineBaseline, core.EngineFast, core.EngineSparse, core.EngineBatch}

// TestEventSinkDoesNotPerturbRuns is the zero-cost-when-on law: a run
// with a sink attached is bit-identical to the same run without one, on
// every engine — emission draws no randomness and mutates nothing.
func TestEventSinkDoesNotPerturbRuns(t *testing.T) {
	t.Parallel()
	for _, c := range []protocols.Constructor{protocols.GlobalStar(), protocols.SimpleGlobalLine()} {
		for _, eng := range engines {
			if eng == core.EngineBatch && c.Proto.Batchable() {
				// The batch engine's pure path only runs sink-free: a sink
				// reroutes the whole run to exact stepping, so bare and
				// observed are different (equal-law) runs, not the same
				// bits. That contract is pinned by
				// TestBatchExactFallbackBitIdentical instead.
				continue
			}
			bare, err := core.Run(c.Proto, 20, core.Options{Seed: 11, Engine: eng, Detector: c.Detector})
			if err != nil {
				t.Fatal(err)
			}
			sink := &collectSink{}
			observed, err := core.Run(c.Proto, 20, core.Options{Seed: 11, Engine: eng, Detector: c.Detector, Events: sink})
			if err != nil {
				t.Fatal(err)
			}
			if len(sink.events) == 0 {
				t.Fatalf("%s/%s: sink saw no events", c.Proto.Name(), eng)
			}
			if bare.Steps != observed.Steps || bare.EffectiveSteps != observed.EffectiveSteps ||
				bare.EdgeChanges != observed.EdgeChanges || bare.ConvergenceTime != observed.ConvergenceTime ||
				bare.Converged != observed.Converged || bare.Engine != observed.Engine {
				t.Fatalf("%s/%s: results diverge with a sink attached:\nbare     %+v\nobserved %+v",
					c.Proto.Name(), eng, bare, observed)
			}
			if bare.Final.Fingerprint() != observed.Final.Fingerprint() {
				t.Fatalf("%s/%s: final configurations diverge with a sink attached", c.Proto.Name(), eng)
			}
			bm, om := bare.Metrics, observed.Metrics
			bm.WallNS, om.WallNS = 0, 0
			if bm != om {
				t.Fatalf("%s/%s: metrics diverge with a sink attached:\nbare     %+v\nobserved %+v",
					c.Proto.Name(), eng, bm, om)
			}
		}
	}
}

// TestEventStreamAccounting checks the stream's structural laws on
// every engine: a single start/end envelope, step events equal to
// effective steps, skip batches summing to Metrics.SkippedSteps, and
// Steps = Landings + SkippedSteps + CollapsedLandings (the collapse
// term is zero whenever events are attached — sinks force the exact
// path — but the assertion states the engine-wide law; the pure batch
// path is pinned by TestBatchCollapseWalkLaw). On the indexed engines the skip
// batches plus the step events must tile 1..Steps exactly — expanding
// the batches reconstructs every draw position.
func TestEventStreamAccounting(t *testing.T) {
	t.Parallel()
	c := protocols.SimpleGlobalLine()
	for _, eng := range engines {
		sink := &collectSink{}
		res, err := core.Run(c.Proto, 24, core.Options{Seed: 5, Engine: eng, Detector: c.Detector, Events: sink})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s: run did not converge", eng)
		}
		if sink.events[0].Kind != core.EventRunStart {
			t.Fatalf("%s: first event %v, want start", eng, sink.events[0].Kind)
		}
		if last := sink.events[len(sink.events)-1]; last.Kind != core.EventRunEnd {
			t.Fatalf("%s: last event %v, want end", eng, last.Kind)
		} else if last.Step != res.Steps || last.Converged != res.Converged ||
			last.EffectiveSteps != res.EffectiveSteps || last.ConvergenceTime != res.ConvergenceTime {
			t.Fatalf("%s: end envelope %+v does not match result %+v", eng, last, res)
		}
		steps := sink.ofKind(core.EventStep)
		if int64(len(steps)) != res.EffectiveSteps {
			t.Fatalf("%s: %d step events, want EffectiveSteps=%d", eng, len(steps), res.EffectiveSteps)
		}
		m := res.Metrics
		if m.Landings+m.SkippedSteps+m.CollapsedLandings != res.Steps {
			t.Fatalf("%s: Landings %d + SkippedSteps %d + CollapsedLandings %d != Steps %d",
				eng, m.Landings, m.SkippedSteps, m.CollapsedLandings, res.Steps)
		}
		var skipped int64
		for _, e := range sink.ofKind(core.EventSkip) {
			skipped += e.Skipped
		}
		if skipped != m.SkippedSteps {
			t.Fatalf("%s: skip events cover %d draws, metrics say %d", eng, skipped, m.SkippedSteps)
		}
		if int64(len(sink.ofKind(core.EventDetect))) != m.DetectorChecks {
			t.Fatalf("%s: %d detect events, metrics say %d checks", eng, len(sink.ofKind(core.EventDetect)), m.DetectorChecks)
		}
		switch eng {
		case core.EngineBaseline:
			if m.SkippedSteps != 0 || m.Landings != res.Steps {
				t.Fatalf("baseline must simulate every draw: %+v", m)
			}
		default:
			// Tile 1..Steps from skip batches and landings; every draw
			// position must be covered exactly once.
			covered := make([]bool, res.Steps+1)
			mark := func(pos int64) {
				if pos < 1 || pos > res.Steps {
					t.Fatalf("%s: event position %d outside 1..%d", eng, pos, res.Steps)
				}
				if covered[pos] {
					t.Fatalf("%s: draw position %d covered twice", eng, pos)
				}
				covered[pos] = true
			}
			for _, e := range sink.ofKind(core.EventSkip) {
				for p := e.Step; p < e.Step+e.Skipped; p++ {
					mark(p)
				}
			}
			for _, e := range steps {
				mark(e.Step)
			}
			for p := int64(1); p <= res.Steps; p++ {
				if !covered[p] {
					t.Fatalf("%s: draw position %d covered by neither a skip batch nor a step event", eng, p)
				}
			}
		}
	}
}

// observerTrace records the core.Observer callback sequence.
type observerTrace struct {
	steps []core.Event
}

func (o *observerTrace) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
	o.steps = append(o.steps, core.Event{Kind: core.EventStep, Step: step, U: u, V: v, EdgeChanged: edgeChanged})
}

// TestObserverEventParity attaches an Observer and an EventSink to the
// same run and checks the step events mirror the observer callbacks
// exactly — same order, positions, pairs and edge flags — on every
// engine.
func TestObserverEventParity(t *testing.T) {
	t.Parallel()
	c := protocols.CycleCover()
	for _, eng := range engines {
		obs := &observerTrace{}
		sink := &collectSink{}
		if _, err := core.Run(c.Proto, 30, core.Options{Seed: 9, Engine: eng, Detector: c.Detector, Observer: obs, Events: sink}); err != nil {
			t.Fatal(err)
		}
		steps := sink.ofKind(core.EventStep)
		if len(steps) != len(obs.steps) {
			t.Fatalf("%s: %d step events vs %d observer calls", eng, len(steps), len(obs.steps))
		}
		for i, e := range steps {
			o := obs.steps[i]
			if e.Step != o.Step || e.U != o.U || e.V != o.V || e.EdgeChanged != o.EdgeChanged {
				t.Fatalf("%s: step event %d = (step %d, %d–%d, edge %v), observer saw (step %d, %d–%d, edge %v)",
					eng, i, e.Step, e.U, e.V, e.EdgeChanged, o.Step, o.U, o.V, o.EdgeChanged)
			}
		}
	}
}

// TestFaultEventsMatchMetrics runs a scenario fault plan with a sink
// attached and checks the fault events agree with the fault counters:
// one EventFaultFired per firing, one EventFaultNode/EventFaultEdge per
// out-of-band write.
func TestFaultEventsMatchMetrics(t *testing.T) {
	t.Parallel()
	c := protocols.SimpleGlobalLine()
	plan, err := scenario.ParsePlan("crash@500,reset@900")
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := plan.Prepare(c.Proto)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range engines {
		sink := &collectSink{}
		// Both faults fire by step 900; convergence is irrelevant here,
		// so a small budget keeps the baseline engine fast.
		res, err := core.Run(prepared.Proto, 24, core.Options{
			Seed:     3,
			Engine:   eng,
			Detector: core.QuiescenceDetector(),
			Injector: prepared.NewInjection(3),
			Events:   sink,
			MaxSteps: 50_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		if m.FaultFirings == 0 {
			t.Fatalf("%s: no fault firings recorded", eng)
		}
		fired := sink.ofKind(core.EventFaultFired)
		if int64(len(fired)) != m.FaultFirings {
			t.Fatalf("%s: %d fault events, metrics say %d firings", eng, len(fired), m.FaultFirings)
		}
		for _, e := range fired {
			if e.Label != string(scenario.KindCrash) && e.Label != string(scenario.KindReset) {
				t.Fatalf("%s: unexpected fault label %q", eng, e.Label)
			}
		}
		if got := int64(len(sink.ofKind(core.EventFaultNode))); got != m.FaultNodeWrites {
			t.Fatalf("%s: %d fault_node events, metrics say %d writes", eng, got, m.FaultNodeWrites)
		}
		if got := int64(len(sink.ofKind(core.EventFaultEdge))); got != m.FaultEdgeWrites {
			t.Fatalf("%s: %d fault_edge events, metrics say %d writes", eng, got, m.FaultEdgeWrites)
		}
	}
}
