package core

import "fmt"

// maxIndexNodes bounds the population size the enabled-pair index can
// represent: pairs are packed into a uint32 as u<<16|v, so both
// endpoints must fit in 16 bits.
const maxIndexNodes = 1 << 16

// maxAutoIndexNodes bounds EngineAuto's fast-path selection. The index
// costs Θ(n²) words (≈8 bytes per pair: pos plus list) against the
// baseline's one bit per pair, so auto-selection stops where the index
// stays comfortably in the tens of megabytes (n=4096 ≈ 100 MB);
// explicitly requesting EngineFast accepts the memory cost up to the
// packing limit.
const maxAutoIndexNodes = 1 << 12

// PairIndex is an incremental index of the configuration's *enabled*
// pairs: the unordered pairs {u, v} on which the protocol has an
// effective transition (Protocol.EffectiveOn over the two node states
// and the edge bit). It is the data structure behind the fast engine:
//
//   - membership is maintained in O(n) per effective step by rescanning
//     only the pairs incident to the two touched nodes (no other pair's
//     states or edge changed, so no other pair's enabledness changed);
//   - the enabled count makes full quiescence an O(1) gate
//     (Enabled() == 0 ⇔ Config.Quiescent()), and a parallel count of
//     edge-effective pairs does the same for edge quiescence;
//   - Sample draws a uniformly random enabled pair in O(1), which —
//     combined with a geometric skip over the ineffective steps — lets
//     the uniform scheduler's law be simulated without touching the
//     disabled pairs at all.
//
// A PairIndex is bound to the Config it was built from and must be
// notified (Update) after every interaction the caller applies;
// mutating the Config behind its back (SetNode/SetEdge) invalidates it.
// It is not safe for concurrent use.
type PairIndex struct {
	cfg *Config
	// list densely packs the enabled pairs as u<<16|v (u < v); pos maps
	// a pair's triangular index to its slot in list, −1 when disabled.
	list []uint32
	pos  []int32
	// edgeBits marks the enabled pairs whose transition would (or, for
	// probabilistic rules, could) change the edge; edgeEnabled counts
	// them, making EdgeQuiescent an O(1) gate too.
	edgeBits    bitset
	edgeEnabled int
}

// NewPairIndex builds the index for the configuration's current state
// with one full O(n²) scan — the same cost as a single Quiescent()
// call, paid once instead of at every detection poll. The population
// must be below maxIndexNodes.
func NewPairIndex(cfg *Config) *PairIndex {
	ix := &PairIndex{}
	ix.reset(cfg)
	return ix
}

// reset rebinds the index to cfg and rebuilds it in place by full
// scan, reusing the backing arrays whenever they are large enough —
// the workspace path's allocation-free fresh build. NewPairIndex
// delegates here, so there is exactly one copy of the order-sensitive
// construction and a reset index is bit-identical to a fresh one by
// construction.
func (ix *PairIndex) reset(cfg *Config) {
	n := cfg.n
	if n >= maxIndexNodes {
		panic(fmt.Sprintf("core: PairIndex supports populations below %d, got %d", maxIndexNodes, n))
	}
	ix.cfg = cfg
	pc := pairCount(n)
	words := (pc + 63) / 64
	if cap(ix.pos) < pc || cap(ix.edgeBits) < words {
		ix.pos = make([]int32, pc)
		ix.edgeBits = newBitset(pc)
	} else {
		ix.pos = ix.pos[:pc]
		ix.edgeBits = ix.edgeBits[:words]
		for i := range ix.edgeBits {
			ix.edgeBits[i] = 0
		}
	}
	for i := range ix.pos {
		ix.pos[i] = -1
	}
	ix.list = ix.list[:0]
	ix.edgeEnabled = 0
	// Under a restricted topology only permitted pairs can ever be
	// scheduled, so only they are indexed: the build is O(m_topo) table
	// lookups and every non-permitted pair stays disabled (pos = −1)
	// forever. The pos/list/edgeBits layout is unchanged — triangular
	// indexing with sparse occupancy.
	if t := cfg.topo; t != nil {
		for _, p := range t.pairs {
			ix.refresh(int(p>>32), int(p&0xffffffff))
		}
		return
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			ix.refresh(u, v)
		}
	}
}

// restore overwrites the index with a previously captured start-state
// image (see Workspace): three memcpys instead of the O(n²) rescan.
func (ix *PairIndex) restore(cfg *Config, pos []int32, list []uint32, edgeBits bitset, edgeEnabled int) {
	ix.cfg = cfg
	ix.pos = append(ix.pos[:0], pos...)
	ix.list = append(ix.list[:0], list...)
	ix.edgeBits = append(ix.edgeBits[:0], edgeBits...)
	ix.edgeEnabled = edgeEnabled
}

// Enabled returns the number of currently enabled pairs.
func (ix *PairIndex) Enabled() int { return len(ix.list) }

// EdgeEnabled returns the number of enabled pairs whose transition can
// change an edge.
func (ix *PairIndex) EdgeEnabled() int { return ix.edgeEnabled }

// Quiescent reports full quiescence in O(1); it always agrees with the
// O(n²) Config.Quiescent scan.
func (ix *PairIndex) Quiescent() bool { return len(ix.list) == 0 }

// EdgeQuiescent reports edge quiescence in O(1); it always agrees with
// the O(n²) Config.EdgeQuiescent scan.
func (ix *PairIndex) EdgeQuiescent() bool { return ix.edgeEnabled == 0 }

// Contains reports whether the pair {u, v} is currently enabled.
func (ix *PairIndex) Contains(u, v int) bool {
	return ix.pos[pairIndex(ix.cfg.n, u, v)] >= 0
}

// Sample returns a uniformly random enabled pair in random orientation
// (matching the orientation law of RNG.Pair, which matters only for
// probabilistic rules with asymmetric branches). It must not be called
// when Enabled() is zero.
func (ix *PairIndex) Sample(rng *RNG) (u, v int) {
	p := ix.list[rng.IntN(len(ix.list))]
	u, v = int(p>>16), int(p&0xffff)
	if rng.Coin() {
		u, v = v, u
	}
	return u, v
}

// Update refreshes the index after an interaction was applied to the
// pair {u, v}: only the states of u and v and the edge {u, v} can have
// changed, so only the 2n−3 pairs incident to u or v are rescanned —
// O(n) table lookups per effective step. Under a restricted topology
// the rescan ranges over the permitted pairs incident to u or v
// instead: O(deg_topo(u) + deg_topo(v)).
func (ix *PairIndex) Update(u, v int) {
	if t := ix.cfg.topo; t != nil {
		for _, x := range t.adj[u] {
			ix.refresh(u, int(x))
		}
		for _, x := range t.adj[v] {
			if int(x) != u {
				ix.refresh(v, int(x))
			}
		}
		return
	}
	n := ix.cfg.n
	for x := 0; x < n; x++ {
		if x != u {
			ix.refresh(u, x)
		}
		if x != v && x != u {
			ix.refresh(v, x)
		}
	}
}

// UpdateEdge refreshes the index after an interaction that changed
// only the edge {u, v}, neither endpoint's state: no other pair's
// enabling triple involves that edge, so only this pair is rescanned —
// O(1) instead of Update's O(n). Under a restricted topology a
// non-permitted pair is skipped outright: it can never be scheduled,
// so its entry stays disabled no matter what its edge does (reachable
// only through out-of-band mutations).
func (ix *PairIndex) UpdateEdge(u, v int) {
	if t := ix.cfg.topo; t != nil && !t.Contains(u, v) {
		return
	}
	ix.refresh(u, v)
}

// UpdateNode refreshes the index after an out-of-band write to node
// u's state (scenario faults applied through a Mutator): only the
// n−1 pairs incident to u can have changed enabledness, so only they
// are rescanned — the single-node half of Update, O(n), or
// O(deg_topo(u)) under a restricted topology.
func (ix *PairIndex) UpdateNode(u int) {
	if t := ix.cfg.topo; t != nil {
		for _, x := range t.adj[u] {
			ix.refresh(u, int(x))
		}
		return
	}
	for x := 0; x < ix.cfg.n; x++ {
		if x != u {
			ix.refresh(u, x)
		}
	}
}

// pairSampler adapter for out-of-band mutations (see Mutator).

func (ix *PairIndex) nodeChanged(u int, _ State) { ix.UpdateNode(u) }
func (ix *PairIndex) edgeChanged(u, v int)       { ix.UpdateEdge(u, v) }

// refresh recomputes one pair's membership from the configuration.
func (ix *PairIndex) refresh(u, v int) {
	if u > v {
		u, v = v, u
	}
	cfg := ix.cfg
	pi := pairIndex(cfg.n, u, v)
	edge := cfg.store.get(u, v)
	e := cfg.proto.lookup(cfg.nodes[u], cfg.nodes[v], edge)

	if enabled := e.effective; enabled != (ix.pos[pi] >= 0) {
		if enabled {
			ix.pos[pi] = int32(len(ix.list))
			ix.list = append(ix.list, uint32(u)<<16|uint32(v))
		} else {
			// Swap-remove, fixing the moved pair's position first so the
			// self-move case resolves to −1.
			slot := ix.pos[pi]
			last := ix.list[len(ix.list)-1]
			ix.list[slot] = last
			ix.pos[pairIndex(cfg.n, int(last>>16), int(last&0xffff))] = slot
			ix.list = ix.list[:len(ix.list)-1]
			ix.pos[pi] = -1
		}
	}

	edgeEff := e.effective && (e.outEdge != edge || (e.alt && e.altEdge != edge))
	if edgeEff != ix.edgeBits.get(pi) {
		ix.edgeBits.set(pi, edgeEff)
		if edgeEff {
			ix.edgeEnabled++
		} else {
			ix.edgeEnabled--
		}
	}
}
