package core

import "fmt"

// maxSparseNodes bounds the populations the sparse state-class engine
// accepts. The structure itself is O(n + m + |Q|²), so the cap is
// practical rather than representational: beyond ~2²⁰ nodes the
// geometric skip probabilities m/P fall below 2⁻³⁹ and step budgets
// stop being meaningful long before memory does.
const maxSparseNodes = 1 << 20

// ClassIndex is the sparse counterpart of PairIndex: instead of
// materializing the enabled pairs (Θ(n²) in the worst case), it counts
// them by *state class*. The observation is that a pair's enabledness
// depends only on the triple (state(u), state(v), edge(u,v)), so the
// enabled-pair count decomposes over unordered state classes
// {q₁, q₂}:
//
//	enabled = Σ_{q₁≤q₂} [ E(q₁,q₂,0)·(P(q₁,q₂) − A(q₁,q₂))
//	                    + E(q₁,q₂,1)·A(q₁,q₂) ]
//
// where E is the protocol's effectiveness table, P(q₁,q₂) is the
// number of pairs with those endpoint states (n_{q₁}·n_{q₂}, or
// C(n_q,2) on the diagonal — pure population counts, which Config
// already maintains), and A(q₁,q₂) is the number of *active edges*
// whose endpoints are in those states (maintained from the actual edge
// multiset). The same decomposition with the edge-effectiveness table
// yields the edge-enabled count.
//
// Costs: O(n + m + |Q|²) to build, O(deg(u) + deg(v) + |Q|) per
// effective step to maintain, O(|Q|²) + O(1) expected to sample a
// uniformly random enabled pair — a class is drawn proportionally to
// its weight, then within the class an active edge is an O(1) bucket
// draw and a non-edge is drawn by rejection from the per-state node
// lists (the fallback exact walk only triggers when active edges
// saturate a class, in which case the walk is O(A) and A is bounded by
// the edge count). Nothing scales with n² — the whole point.
//
// Under a restricted topology (cfg.Topology() non-nil) the population
// products no longer count schedulable pairs, so P(q₁,q₂) is replaced
// by a materialized census of the *permitted* pairs: every permitted
// pair lives in a per-class bucket (pairCnt/pairList/pairSlot, the
// exact mirror of the active-edge buckets), moved between classes in
// O(deg_topo) when an endpoint changes state. Non-edge sampling then
// draws from the class's permitted-pair bucket by rejection against
// the active edges (active ⊆ permitted — an invariant Run enforces on
// the initial configuration and interactions preserve, since only
// permitted pairs are ever scheduled). The complete-graph path is
// untouched: every topology branch is behind a nil check.
//
// Like PairIndex, a ClassIndex is bound to the Config it was built
// from and must be notified (Update) after every effective interaction;
// mutating the Config behind its back invalidates it. It is not safe
// for concurrent use.
type ClassIndex struct {
	cfg *Config
	q   int

	// byState lists the nodes in each state; slot is each node's index
	// in its list, so state moves are O(1) swap-removes.
	byState [][]int32
	slot    []int32

	// Active edges bucketed by canonical class id (q₁·|Q|+q₂, q₁≤q₂):
	// edgeCount is A(q₁,q₂); edgeList holds the edges packed u<<32|v
	// (u < v) for O(1) uniform draws; edgeSlot maps a packed edge to
	// its bucket slot for O(1) removal.
	edgeCount []int64
	edgeList  [][]uint64
	edgeSlot  map[uint64]int32

	// Permitted pairs bucketed by class — populated only under a
	// restricted topology (topo non-nil): pairCnt is P(q₁,q₂) restricted
	// to permitted pairs, pairList/pairSlot mirror edgeList/edgeSlot.
	topo     *Topology
	pairCnt  []int64
	pairList [][]uint64
	pairSlot map[uint64]int32

	// w and we cache each class's enabled / edge-enabled pair count per
	// edge bit (index 2·id + edgeBit); enabled and edgeEnabled are
	// their running totals.
	w, we       []int64
	enabled     int64
	edgeEnabled int64

	nbuf []int // neighbor scratch for Update

	// Sampling-effort telemetry, zeroed per reset (i.e. per run):
	// rejections counts candidate draws sampleNonEdge discarded for
	// hitting an active edge; fallbacks counts the exact counted walks
	// taken when active edges saturated a class.
	rejections int64
	fallbacks  int64
}

// NewClassIndex builds the index for the configuration's current state
// in O(n + m + |Q|²). The population must be at most maxSparseNodes.
func NewClassIndex(cfg *Config) *ClassIndex {
	ci := &ClassIndex{edgeSlot: make(map[uint64]int32)}
	ci.reset(cfg)
	return ci
}

// reset rebinds the index to cfg and rebuilds it in place in
// O(n + m + |Q|²), reusing the backing arrays (and the edge-slot
// map's buckets) whenever they fit — the workspace path's
// allocation-free fresh build. NewClassIndex delegates here, so there
// is exactly one copy of the order-sensitive construction and a reset
// index samples bit-identically to a fresh one by construction.
func (ci *ClassIndex) reset(cfg *Config) {
	n := cfg.n
	if n > maxSparseNodes {
		panic(fmt.Sprintf("core: ClassIndex supports populations up to %d, got %d", maxSparseNodes, n))
	}
	q := cfg.proto.Size()
	ci.cfg = cfg
	if ci.q != q {
		ci.q = q
		ci.byState = make([][]int32, q)
		ci.edgeCount = make([]int64, q*q)
		ci.edgeList = make([][]uint64, q*q)
		ci.w = make([]int64, 2*q*q)
		ci.we = make([]int64, 2*q*q)
	} else {
		for i := range ci.byState {
			ci.byState[i] = ci.byState[i][:0]
		}
		for i := range ci.edgeList {
			ci.edgeCount[i] = 0
			ci.edgeList[i] = ci.edgeList[i][:0]
		}
		for i := range ci.w {
			ci.w[i] = 0
			ci.we[i] = 0
		}
	}
	if cap(ci.slot) < n {
		ci.slot = make([]int32, n)
	} else {
		ci.slot = ci.slot[:n]
	}
	clear(ci.edgeSlot)
	ci.enabled, ci.edgeEnabled = 0, 0
	ci.rejections, ci.fallbacks = 0, 0

	ci.topo = cfg.topo
	if ci.topo != nil {
		if ci.pairSlot == nil {
			ci.pairSlot = make(map[uint64]int32)
		} else {
			clear(ci.pairSlot)
		}
		if len(ci.pairCnt) != q*q {
			ci.pairCnt = make([]int64, q*q)
			ci.pairList = make([][]uint64, q*q)
		} else {
			for i := range ci.pairList {
				ci.pairCnt[i] = 0
				ci.pairList[i] = ci.pairList[i][:0]
			}
		}
	}

	for u, s := range cfg.nodes {
		ci.slot[u] = int32(len(ci.byState[s]))
		ci.byState[s] = append(ci.byState[s], int32(u))
	}
	if ci.topo != nil {
		for _, p := range ci.topo.pairs {
			u, v := int(p>>32), int(p&0xffffffff)
			ci.insertPair(u, v, ci.classID(cfg.nodes[u], cfg.nodes[v]))
		}
	}
	cfg.store.forEach(func(u, v int) {
		ci.insertEdge(u, v, ci.classID(cfg.nodes[u], cfg.nodes[v]))
	})
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			ci.reweigh(a, b)
		}
	}
}

// Enabled returns the number of currently enabled pairs.
func (ci *ClassIndex) Enabled() int64 { return ci.enabled }

// EdgeEnabled returns the number of enabled pairs whose transition can
// change an edge.
func (ci *ClassIndex) EdgeEnabled() int64 { return ci.edgeEnabled }

// Quiescent reports full quiescence in O(1); it always agrees with the
// O(n²) Config.Quiescent scan.
func (ci *ClassIndex) Quiescent() bool { return ci.enabled == 0 }

// EdgeQuiescent reports edge quiescence in O(1); it always agrees with
// the O(n²) Config.EdgeQuiescent scan.
func (ci *ClassIndex) EdgeQuiescent() bool { return ci.edgeEnabled == 0 }

// classID maps an unordered state pair to its canonical class id.
func (ci *ClassIndex) classID(a, b State) int {
	if a > b {
		a, b = b, a
	}
	return int(a)*ci.q + int(b)
}

func packEdge(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

func (ci *ClassIndex) insertEdge(u, v, id int) {
	key := packEdge(u, v)
	ci.edgeSlot[key] = int32(len(ci.edgeList[id]))
	ci.edgeList[id] = append(ci.edgeList[id], key)
	ci.edgeCount[id]++
}

func (ci *ClassIndex) removeEdge(u, v, id int) {
	key := packEdge(u, v)
	slot := ci.edgeSlot[key]
	list := ci.edgeList[id]
	last := list[len(list)-1]
	list[slot] = last
	ci.edgeSlot[last] = slot
	ci.edgeList[id] = list[:len(list)-1]
	delete(ci.edgeSlot, key)
	ci.edgeCount[id]--
}

func (ci *ClassIndex) moveEdge(u, v, fromID, toID int) {
	if fromID == toID {
		return
	}
	ci.removeEdge(u, v, fromID)
	ci.insertEdge(u, v, toID)
}

// insertPair / removePair / movePair maintain the permitted-pair
// buckets under a restricted topology, mirroring the active-edge
// bucket operations exactly.

func (ci *ClassIndex) insertPair(u, v, id int) {
	key := packEdge(u, v)
	ci.pairSlot[key] = int32(len(ci.pairList[id]))
	ci.pairList[id] = append(ci.pairList[id], key)
	ci.pairCnt[id]++
}

func (ci *ClassIndex) removePair(u, v, id int) {
	key := packEdge(u, v)
	slot := ci.pairSlot[key]
	list := ci.pairList[id]
	last := list[len(list)-1]
	list[slot] = last
	ci.pairSlot[last] = slot
	ci.pairList[id] = list[:len(list)-1]
	delete(ci.pairSlot, key)
	ci.pairCnt[id]--
}

func (ci *ClassIndex) movePair(u, v, fromID, toID int) {
	if fromID == toID {
		return
	}
	ci.removePair(u, v, fromID)
	ci.insertPair(u, v, toID)
}

// movePairsOf re-classes the permitted pairs incident to node u after
// its state changed from `from` to `to`; the pair {u, skip} (the
// interaction partner, whose own state may also have changed) is
// handled separately by the caller. O(deg_topo(u)).
func (ci *ClassIndex) movePairsOf(u int, from, to State, skip int) {
	cfg := ci.cfg
	for _, x := range ci.topo.adj[u] {
		if int(x) == skip {
			continue
		}
		sx := cfg.nodes[x]
		ci.movePair(u, int(x), ci.classID(from, sx), ci.classID(to, sx))
	}
}

func (ci *ClassIndex) moveNode(u int, from, to State) {
	list := ci.byState[from]
	s := ci.slot[u]
	last := list[len(list)-1]
	list[s] = last
	ci.slot[last] = s
	ci.byState[from] = list[:len(list)-1]
	ci.slot[u] = int32(len(ci.byState[to]))
	ci.byState[to] = append(ci.byState[to], int32(u))
}

// reweigh recomputes one class's cached enabled / edge-enabled pair
// counts from the current population counts and edge buckets, folding
// the deltas into the running totals. It is idempotent, so callers may
// reweigh a class more than once per step without harm.
func (ci *ClassIndex) reweigh(a, b int) {
	id := a*ci.q + b
	cfg := ci.cfg
	var pairs int64
	switch {
	case ci.topo != nil:
		// Restricted topology: the population product over-counts pairs
		// the scheduler can never draw, so the permitted-pair census is
		// the class's pair count instead.
		pairs = ci.pairCnt[id]
	case a == b:
		k := int64(cfg.counts[a])
		pairs = k * (k - 1) / 2
	default:
		pairs = int64(cfg.counts[a]) * int64(cfg.counts[b])
	}
	act := ci.edgeCount[id]
	non := pairs - act
	sa, sb := State(a), State(b)
	var w0, w1, we0, we1 int64
	if cfg.proto.EffectiveOn(sa, sb, false) {
		w0 = non
	}
	if cfg.proto.EffectiveOn(sa, sb, true) {
		w1 = act
	}
	if cfg.proto.EdgeEffectiveOn(sa, sb, false) {
		we0 = non
	}
	if cfg.proto.EdgeEffectiveOn(sa, sb, true) {
		we1 = act
	}
	ci.enabled += w0 + w1 - ci.w[2*id] - ci.w[2*id+1]
	ci.w[2*id], ci.w[2*id+1] = w0, w1
	ci.edgeEnabled += we0 + we1 - ci.we[2*id] - ci.we[2*id+1]
	ci.we[2*id], ci.we[2*id+1] = we0, we1
}

// reweighState recomputes every class containing state s.
func (ci *ClassIndex) reweighState(s State) {
	for t := 0; t < ci.q; t++ {
		if t < int(s) {
			ci.reweigh(t, int(s))
		} else {
			ci.reweigh(int(s), t)
		}
	}
}

// Update refreshes the index after an interaction was applied to the
// pair {u, v}. beforeU and beforeV are the node states before the
// interaction and edgeChanged reports whether the edge flipped —
// exactly what Config.Apply exposes. Cost: O(deg(u) + deg(v) + |Q|)
// when a node state changed, O(1) for edge-only transitions.
func (ci *ClassIndex) Update(u, v int, beforeU, beforeV State, edgeChanged bool) {
	cfg := ci.cfg
	afterU, afterV := cfg.nodes[u], cfg.nodes[v]
	edgeNow := cfg.store.get(u, v)
	edgeBefore := edgeNow
	if edgeChanged {
		edgeBefore = !edgeNow
	}

	// Re-class the active edges incident to a node whose state changed:
	// every such edge {u, x} moves from class {before, state(x)} to
	// {after, state(x)}. The {u, v} edge is handled separately below
	// because both its endpoints (and the edge itself) may have changed.
	if afterU != beforeU {
		ci.moveNode(u, beforeU, afterU)
		ci.nbuf = cfg.store.neighbors(u, ci.nbuf[:0])
		for _, x := range ci.nbuf {
			if x == v {
				continue
			}
			sx := cfg.nodes[x]
			ci.moveEdge(u, x, ci.classID(beforeU, sx), ci.classID(afterU, sx))
		}
		if ci.topo != nil {
			ci.movePairsOf(u, beforeU, afterU, v)
		}
	}
	if afterV != beforeV {
		ci.moveNode(v, beforeV, afterV)
		ci.nbuf = cfg.store.neighbors(v, ci.nbuf[:0])
		for _, x := range ci.nbuf {
			if x == u {
				continue
			}
			sx := cfg.nodes[x]
			ci.moveEdge(v, x, ci.classID(beforeV, sx), ci.classID(afterV, sx))
		}
		if ci.topo != nil {
			ci.movePairsOf(v, beforeV, afterV, u)
		}
	}
	// The scheduled pair {u, v} is itself permitted; re-class it once
	// with both endpoints' before/after states.
	if ci.topo != nil && (afterU != beforeU || afterV != beforeV) {
		ci.movePair(u, v, ci.classID(beforeU, beforeV), ci.classID(afterU, afterV))
	}
	switch {
	case edgeBefore && edgeNow:
		ci.moveEdge(u, v, ci.classID(beforeU, beforeV), ci.classID(afterU, afterV))
	case edgeBefore && !edgeNow:
		ci.removeEdge(u, v, ci.classID(beforeU, beforeV))
	case !edgeBefore && edgeNow:
		ci.insertEdge(u, v, ci.classID(afterU, afterV))
	}

	// Edge-only transition: population counts are untouched, so only
	// the pair's own class weight can have changed.
	if afterU == beforeU && afterV == beforeV {
		a, b := afterU, afterV
		if a > b {
			a, b = b, a
		}
		ci.reweigh(int(a), int(b))
		return
	}
	// Otherwise every class containing a changed state needs reweighing
	// (reweigh is idempotent, so overlaps between the four are fine).
	ci.reweighState(beforeU)
	if afterU != beforeU {
		ci.reweighState(afterU)
	}
	ci.reweighState(beforeV)
	if afterV != beforeV {
		ci.reweighState(afterV)
	}
}

// NodeChanged refreshes the index after an out-of-band write to node
// u's state (scenario faults applied through a Mutator): u moves
// between state lists, its active edges move between class buckets,
// and every class containing either state is reweighed — the
// single-node case of Update, O(deg(u) + |Q|). before is the state u
// held when the index was last consistent.
func (ci *ClassIndex) NodeChanged(u int, before State) {
	after := ci.cfg.nodes[u]
	if after == before {
		return
	}
	ci.moveNode(u, before, after)
	ci.nbuf = ci.cfg.store.neighbors(u, ci.nbuf[:0])
	for _, x := range ci.nbuf {
		sx := ci.cfg.nodes[x]
		ci.moveEdge(u, x, ci.classID(before, sx), ci.classID(after, sx))
	}
	if ci.topo != nil {
		ci.movePairsOf(u, before, after, -1)
	}
	ci.reweighState(before)
	ci.reweighState(after)
}

// EdgeChanged refreshes the index after an out-of-band toggle of edge
// {u, v}: the edge joins or leaves its class bucket and that single
// class is reweighed — O(1), like UpdateEdge on the dense index.
func (ci *ClassIndex) EdgeChanged(u, v int) {
	su, sv := ci.cfg.nodes[u], ci.cfg.nodes[v]
	id := ci.classID(su, sv)
	if ci.cfg.store.get(u, v) {
		ci.insertEdge(u, v, id)
	} else {
		ci.removeEdge(u, v, id)
	}
	a, b := su, sv
	if a > b {
		a, b = b, a
	}
	ci.reweigh(int(a), int(b))
}

// Sample returns a uniformly random enabled pair in random orientation
// (matching the orientation law of RNG.Pair, exactly as
// PairIndex.Sample). It must not be called when Enabled() is zero.
func (ci *ClassIndex) Sample(rng *RNG) (u, v int) {
	r := rng.Int64N(ci.enabled)
	for a := 0; a < ci.q; a++ {
		for b := a; b < ci.q; b++ {
			id := a*ci.q + b
			if w := ci.w[2*id]; r < w {
				if ci.topo != nil {
					return ci.sampleNonEdgeTopo(id, rng)
				}
				return ci.sampleNonEdge(a, b, rng)
			} else {
				r -= w
			}
			if w := ci.w[2*id+1]; r < w {
				key := ci.edgeList[id][rng.IntN(len(ci.edgeList[id]))]
				return orient(int(key>>32), int(key&0xffffffff), rng)
			} else {
				r -= w
			}
		}
	}
	panic("core: ClassIndex class weights inconsistent with total")
}

// sampleNonEdge draws a uniformly random non-edge pair within the
// class {a, b}: rejection from the per-state node lists (expected O(1)
// while non-edges dominate the class), falling back to an exact
// counted walk when active edges saturate it — in which case the walk
// is O(P(a,b)) = O(A/(1−acceptance)) and A is bounded by the total
// edge count, so the amortized cost stays O(m)-bounded.
func (ci *ClassIndex) sampleNonEdge(a, b int, rng *RNG) (int, int) {
	return sampleNonEdgeClass(ci.cfg, ci.byState[a], ci.byState[b], a == b,
		ci.edgeCount[a*ci.q+b], rng, &ci.rejections, &ci.fallbacks)
}

// sampleNonEdgeTopo draws a uniformly random permitted non-edge pair
// within class id under a restricted topology: rejection from the
// class's permitted-pair bucket (expected O(1) while non-edges
// dominate), falling back to an exact counted walk over the bucket
// when active edges saturate it — the walk is O(pairCnt[id]) and only
// triggers in edge-dense classes, mirroring sampleNonEdgeClass's
// cost argument. Active ⊆ permitted guarantees the rejection test is
// exact: every active edge of the class sits in this bucket.
func (ci *ClassIndex) sampleNonEdgeTopo(id int, rng *RNG) (int, int) {
	list := ci.pairList[id]
	const tries = 64
	for t := 0; t < tries; t++ {
		key := list[rng.IntN(len(list))]
		u, v := int(key>>32), int(key&0xffffffff)
		if !ci.cfg.store.get(u, v) {
			return orient(u, v, rng)
		}
		ci.rejections++
	}
	ci.fallbacks++
	t := rng.Int64N(ci.pairCnt[id] - ci.edgeCount[id])
	for _, key := range list {
		u, v := int(key>>32), int(key&0xffffffff)
		if ci.cfg.store.get(u, v) {
			continue
		}
		if t == 0 {
			return orient(u, v, rng)
		}
		t--
	}
	panic("core: permitted non-edge count inconsistent with class weights")
}

// sampleNonEdgeClass is the class-internal non-edge draw shared by
// ClassIndex and the batch engine's index, so the two consume the RNG
// stream identically by construction. la and lb are the node lists of
// the class's two states (the same list when diag is true); active is
// the class's active-edge count, needed only by the exact fallback.
func sampleNonEdgeClass(cfg *Config, la, lb []int32, diag bool, active int64, rng *RNG, rejections, fallbacks *int64) (int, int) {
	const tries = 64
	for t := 0; t < tries; t++ {
		var u, v int
		if diag {
			i := rng.IntN(len(la))
			j := rng.IntN(len(la) - 1)
			if j >= i {
				j++
			}
			u, v = int(la[i]), int(la[j])
		} else {
			u = int(la[rng.IntN(len(la))])
			v = int(lb[rng.IntN(len(lb))])
		}
		if !cfg.store.get(u, v) {
			return orient(u, v, rng)
		}
		*rejections++
	}
	// Exact fallback: pick the t-th non-edge of the class.
	*fallbacks++
	var pairs int64
	if diag {
		k := int64(len(la))
		pairs = k * (k - 1) / 2
	} else {
		pairs = int64(len(la)) * int64(len(lb))
	}
	t := rng.Int64N(pairs - active)
	if diag {
		for i := 0; i < len(la); i++ {
			for j := i + 1; j < len(la); j++ {
				u, v := int(la[i]), int(la[j])
				if cfg.store.get(u, v) {
					continue
				}
				if t == 0 {
					return orient(u, v, rng)
				}
				t--
			}
		}
	} else {
		for i := 0; i < len(la); i++ {
			for j := 0; j < len(lb); j++ {
				u, v := int(la[i]), int(lb[j])
				if cfg.store.get(u, v) {
					continue
				}
				if t == 0 {
					return orient(u, v, rng)
				}
				t--
			}
		}
	}
	panic("core: class non-edge count inconsistent with class weights")
}

// orient returns the pair in uniformly random orientation.
func orient(u, v int, rng *RNG) (int, int) {
	if rng.Coin() {
		return v, u
	}
	return u, v
}

// pairSampler adapter (see fast.go).

func (ci *ClassIndex) enabledPairs() int64     { return ci.enabled }
func (ci *ClassIndex) edgeEnabledPairs() int64 { return ci.edgeEnabled }

func (ci *ClassIndex) samplePair(rng *RNG) (int, int) { return ci.Sample(rng) }

func (ci *ClassIndex) applied(u, v int, beforeU, beforeV State, edgeChanged bool) {
	ci.Update(u, v, beforeU, beforeV, edgeChanged)
}

func (ci *ClassIndex) nodeChanged(u int, before State) { ci.NodeChanged(u, before) }
func (ci *ClassIndex) edgeChanged(u, v int)            { ci.EdgeChanged(u, v) }

func (ci *ClassIndex) sampleStats() (int64, int64) { return ci.rejections, ci.fallbacks }
