package core

import (
	"fmt"
	"math"
)

// Engine selects the execution path of Run.
type Engine int

// Engine values. EngineAuto picks an index-backed path whenever the
// schedule is the uniform random scheduler (the only schedule whose
// law the skip-sampling argument covers) — the dense enabled-pair
// index up to maxAutoIndexNodes, the sparse state-class engine above
// it — and the baseline loop otherwise; the explicit values force one
// path, which is how the equivalence suite and the speedup benchmarks
// pin their subjects down.
const (
	// EngineAuto lets Run choose: fast (small n) or sparse (large n)
	// under the uniform scheduler, baseline otherwise.
	EngineAuto Engine = iota
	// EngineBaseline forces the step-by-step loop that simulates every
	// scheduler draw individually.
	EngineBaseline
	// EngineFast forces the enabled-pair-index engine; Run errors if the
	// configured scheduler is not uniform.
	EngineFast
	// EngineSparse forces the state-class engine, whose memory and
	// per-step cost scale with n + m instead of n²; Run errors if the
	// configured scheduler is not uniform.
	EngineSparse
	// EngineBatch forces the batch engine: the sparse engine's census
	// decomposition plus multivariate bucket plans over census-frozen
	// stretches and a leaner index (see batch.go). Run errors if the
	// configured scheduler is not uniform. With an EventSink, Observer
	// or Injector attached it steps exactly, bit-identical to
	// EngineSparse.
	EngineBatch
)

// String returns the engine's flag/spec name.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBaseline:
		return "baseline"
	case EngineFast:
		return "fast"
	case EngineSparse:
		return "sparse"
	case EngineBatch:
		return "batch"
	default:
		return fmt.Sprintf("engine#%d", int(e))
	}
}

// ParseEngine resolves a flag/spec name ("auto", "baseline", "fast",
// "sparse", "batch"; "" means auto) to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "baseline":
		return EngineBaseline, nil
	case "fast":
		return EngineFast, nil
	case "sparse":
		return EngineSparse, nil
	case "batch":
		return EngineBatch, nil
	default:
		return EngineAuto, fmt.Errorf("core: unknown engine %q (known: auto, baseline, fast, sparse, batch)", s)
	}
}

// ValidateN reports whether the engine supports a population of n
// nodes — the same caps Run enforces, exposed so spec compilers can
// reject an oversized grid before any trial runs instead of
// collecting per-run failures.
func (e Engine) ValidateN(n int) error {
	switch e {
	case EngineFast:
		if n >= maxIndexNodes {
			return fmt.Errorf("core: the fast engine supports populations below %d, got %d", maxIndexNodes, n)
		}
	case EngineSparse, EngineBatch:
		if n > maxSparseNodes {
			return fmt.Errorf("core: the %s engine supports populations up to %d, got %d", e, maxSparseNodes, n)
		}
	}
	return nil
}

// uniformSchedule reports whether sched draws every pair independently
// and uniformly each step — the precondition for the indexed paths.
func uniformSchedule(sched Scheduler) bool {
	switch sched.(type) {
	case UniformScheduler, *UniformScheduler:
		return true
	default:
		return false
	}
}

// nextCheck returns the first TriggerInterval check point strictly
// after step.
func nextCheck(step, interval int64) int64 {
	return (step/interval + 1) * interval
}

// pairSampler abstracts the incremental enabled-pair structure behind
// the indexed engines: the dense PairIndex (fast) and the state-class
// ClassIndex (sparse). Both answer the enabled counts the quiescence
// gates need, draw uniformly random enabled pairs, and absorb applied
// interactions — so runIndexed is the single implementation of the
// geometric step-skipping law for both.
type pairSampler interface {
	enabledPairs() int64
	edgeEnabledPairs() int64
	samplePair(rng *RNG) (u, v int)
	// applied is called after an effective Config.Apply on {u, v} with
	// the pre-step node states and whether the edge flipped.
	applied(u, v int, beforeU, beforeV State, edgeChanged bool)
	// nodeChanged and edgeChanged absorb out-of-band mutations
	// (scenario faults) performed through a Mutator; before is the node
	// state the index last saw.
	nodeChanged(u int, before State)
	edgeChanged(u, v int)
	// sampleStats reports the index's sampling effort so far: rejected
	// candidate draws and exact-walk fallbacks. The dense index samples
	// directly and always reports zero.
	sampleStats() (rejections, fallbacks int64)
}

// pairSampler adapter for PairIndex.

func (ix *PairIndex) enabledPairs() int64     { return int64(len(ix.list)) }
func (ix *PairIndex) edgeEnabledPairs() int64 { return int64(ix.edgeEnabled) }

func (ix *PairIndex) samplePair(rng *RNG) (int, int) { return ix.Sample(rng) }

func (ix *PairIndex) applied(u, v int, beforeU, beforeV State, _ bool) {
	if ix.cfg.nodes[u] == beforeU && ix.cfg.nodes[v] == beforeV {
		ix.UpdateEdge(u, v) // edge-only transition: O(1)
	} else {
		ix.Update(u, v)
	}
}

func (ix *PairIndex) sampleStats() (int64, int64) { return 0, 0 }

// runFast is the enabled-pair-index engine: runIndexed over a dense
// PairIndex (Θ(n²) memory, O(n) update per effective step). With a
// workspace the index is reset in place — and for default-start runs
// restored from the workspace's start-state snapshot — instead of
// freshly built.
func runFast(p *Protocol, cfg *Config, det Detector, opts Options, maxSteps, interval int64, rng *RNG) (Result, error) {
	var ix *PairIndex
	restored := false
	if ws := opts.Workspace; ws != nil {
		ix, restored = ws.pairIndex(cfg, opts.Initial == nil)
	} else {
		ix = NewPairIndex(cfg)
	}
	res, err := runIndexed(p, cfg, det, opts, maxSteps, interval, rng, ix, EngineFast)
	if restored {
		res.Metrics.SnapshotRestores = 1
	} else {
		res.Metrics.IndexBuilds = 1
	}
	return res, err
}

// runSparse is the state-class engine: runIndexed over a ClassIndex
// (O(n + m + |Q|²) memory, O(deg + |Q|) update per effective step,
// O(1) expected sampling). It simulates the same law as runFast and
// the baseline; only the data structure scaling differs.
func runSparse(p *Protocol, cfg *Config, det Detector, opts Options, maxSteps, interval int64, rng *RNG) (Result, error) {
	var ix *ClassIndex
	if ws := opts.Workspace; ws != nil {
		ix = ws.classIndex(cfg)
	} else {
		ix = NewClassIndex(cfg)
	}
	res, err := runIndexed(p, cfg, det, opts, maxSteps, interval, rng, ix, EngineSparse)
	// The class index rebuilds in place either way — a reset is a fresh
	// O(n + m + |Q|²) build, never a snapshot restore.
	res.Metrics.IndexBuilds = 1
	return res, err
}

// runIndexed is the shared engine behind EngineFast and EngineSparse.
// It reproduces the law of the baseline loop under the uniform
// scheduler without simulating the ineffective steps:
//
//   - each scheduler draw hits an enabled pair with probability
//     m/|E_I| (m enabled pairs of n(n−1)/2), independently per step, so
//     the run of misses before the next enabled hit is
//     Geometric(m/|E_I|) — drawn in O(1) instead of simulated;
//   - conditioned on hitting an enabled pair, the pair is uniform over
//     the enabled set — sampled from the index;
//   - skipped steps are exactly the draws on disabled pairs, which by
//     definition change nothing, so every metric (ConvergenceTime,
//     EffectiveSteps, EdgeChanges) and every observer callback sees the
//     same distribution over (step, pair, outcome) sequences;
//   - between two landings the configuration is frozen, so an
//     interval-triggered detector whose predicate holds fires at the
//     next multiple of the check interval — computed, not simulated —
//     which preserves the law of Result.Steps as well.
//
// Detectors carrying a Gate are evaluated from the index's O(1)
// counters instead of their O(n²) scan predicate; that includes the
// pre-loop already-stable check, so an indexed run never pays an O(n²)
// scan at all.
//
// The caller (Run) has already resolved defaults and cloned the
// initial configuration. runIndexed wraps indexedLoop to fold the
// mutator's fault tallies and the index's sampling effort into the
// metrics once, at the single exit.
func runIndexed(p *Protocol, cfg *Config, det Detector, opts Options, maxSteps, interval int64, rng *RNG, ix pairSampler, engine Engine) (Result, error) {
	var ev *Event
	if opts.Events != nil {
		ev = new(Event)
	}
	var mut *Mutator
	if opts.Injector != nil {
		mut = &Mutator{cfg: cfg, ix: ix, events: opts.Events, ev: ev}
	}
	res := indexedLoop(p, cfg, det, opts, maxSteps, interval, rng, ix, engine, mut, ev)
	if mut != nil {
		mut.fold(&res.Metrics)
	}
	res.Metrics.SampleRejections, res.Metrics.SampleFallbacks = ix.sampleStats()
	return res, nil
}

// skipRange folds the geometrically skipped draws at positions
// from+1 … to into the metrics and emits them as one skip-batch event
// (no-op when the range is empty). Every position a skip batch covers
// is a draw that provably hit a disabled pair, so expanding the batches
// reconstructs the baseline's exact per-position timeline.
func skipRange(res *Result, events EventSink, ev *Event, from, to int64) {
	count := to - from
	if count <= 0 {
		return
	}
	res.Metrics.SkippedSteps += count
	res.Metrics.SkipBatches++
	emitSkip(events, ev, from+1, count)
}

func indexedLoop(p *Protocol, cfg *Config, det Detector, opts Options, maxSteps, interval int64, rng *RNG, ix pairSampler, engine Engine, mut *Mutator, ev *Event) Result {
	n := cfg.n
	res := Result{Final: cfg, Engine: engine}
	// total is the scheduler's per-draw pair universe: n(n−1)/2 on the
	// complete interaction graph, the permitted-pair count under a
	// restricted topology. Either way it is a run constant, so the
	// geometric-skip law below (miss run ~ Geometric(m/total)) is exact
	// per census-frozen stretch — the skip argument never depended on
	// the universe being the complete graph, only on it being fixed.
	total := float64(n) * float64(n-1) / 2
	if t := cfg.topo; t != nil {
		total = float64(t.PairCount())
	}
	events := opts.Events

	// stable evaluates the detector (through its O(1) gate when it has
	// one) against the configuration frozen at step `at`, counting the
	// check and emitting the verdict. Detect events are emitted at
	// evaluation time, which for interval checks inside a frozen
	// stretch is before the skip batch covering that stretch — the
	// events' Step fields keep the per-position timeline unambiguous.
	stable := func(at int64) bool {
		res.Metrics.DetectorChecks++
		var st bool
		switch det.Gate {
		case GateQuiescence:
			st = ix.enabledPairs() == 0
		case GateEdgeQuiescence:
			st = ix.edgeEnabledPairs() == 0
		default:
			st = det.Stable(cfg)
		}
		emitDetect(events, ev, at, st, cfg)
		return st
	}

	if stable(0) {
		// Already stable before any step, matching the baseline's
		// pre-loop check.
		res.Converged = true
		return res
	}

	// Scenario faults: the injector announces the step of its next
	// event; skips are cut short there so events land at the same step
	// positions as on the baseline path, and the Mutator routes every
	// mutation through the index.
	inj := opts.Injector
	var nextFault int64
	if inj != nil {
		nextFault = inj.NextEvent(0)
	}

	// Geometric-skip memo: ln(1 − m/total) is a pure function of the
	// enabled-pair count m, and m repeats heavily between effective
	// steps (most landings change it by at most a few units, and phases
	// often hold it constant), so the logarithm from the previous
	// landing is reused whenever m is unchanged — saving one of the two
	// math.Log calls per landing. The drawn variate is identical, so
	// runs are unchanged bit for bit.
	memoM := int64(-1)
	var memoLn float64

	var step int64
	for step < maxSteps {
		// The baseline polls Stop every interval steps; here every loop
		// iteration advances at least one landing (or ends the run), so
		// polling per iteration is at least as responsive at negligible
		// relative cost.
		if opts.Stop != nil && opts.Stop() {
			res.Stopped = true
			res.Steps = step
			return res
		}

		// Fire the events due at the current step (reached by the
		// fault-horizon cut below, or by a landing at the event step).
		for nextFault > 0 && nextFault <= step {
			mut.step = step
			inj.Inject(step, mut)
			nextFault = inj.NextEvent(step)
		}

		// Next landing: skip the geometric run of draws that hit
		// disabled pairs. land = maxSteps+1 encodes "no landing within
		// budget" (also the enabled == 0 case: nothing can ever change
		// again).
		land := maxSteps + 1
		if m := ix.enabledPairs(); m > 0 {
			var skip int64
			if fm := float64(m); fm >= total {
				skip = 0 // every draw lands; Geometric(p ≥ 1) draws nothing
			} else {
				if m != memoM {
					memoM = m
					memoLn = math.Log1p(-fm / total)
				}
				skip = rng.GeometricLn(memoLn)
			}
			if skip < maxSteps-step {
				land = step + skip + 1
			}
		}

		// A pending event before the landing interrupts the skip: the
		// configuration is frozen up to the event step, so interval
		// detection on that stretch matches the baseline, and redrawing
		// the skip from the post-event enabled count is law-preserving
		// because the geometric distribution is memoryless. Events at or
		// beyond the budget never fire, exactly as on the baseline.
		if nextFault > 0 && nextFault < land && nextFault < maxSteps {
			if det.Trigger == TriggerInterval {
				if s := nextCheck(step, interval); s <= nextFault && stable(s) {
					skipRange(&res, events, ev, step, s)
					res.Converged = true
					res.Steps = s
					return res
				}
			}
			skipRange(&res, events, ev, step, nextFault)
			step = nextFault
			continue
		}

		// Between step and the landing the configuration is frozen: an
		// interval detector whose predicate holds now fires at the next
		// check point, exactly as the baseline would. The cheap
		// check-point guard runs first so an ungated (possibly O(n²))
		// predicate is only evaluated when a grid point actually
		// precedes the landing — dense phases never pay for it.
		if det.Trigger == TriggerInterval {
			if s := nextCheck(step, interval); s <= maxSteps && s < land && stable(s) {
				skipRange(&res, events, ev, step, s)
				res.Converged = true
				res.Steps = s
				return res
			}
		}
		if land > maxSteps {
			skipRange(&res, events, ev, step, maxSteps)
			res.Steps = maxSteps
			return res
		}

		skipRange(&res, events, ev, step, land-1)
		step = land
		res.Metrics.Landings++
		u, v := ix.samplePair(rng)
		beforeU, beforeV := cfg.nodes[u], cfg.nodes[v]
		// An enabled pair can still take an ineffective probabilistic
		// branch; that matches the baseline, which also counts such
		// steps as ineffective.
		effective, edgeChanged := cfg.Apply(u, v, rng)
		if effective {
			ix.applied(u, v, beforeU, beforeV, edgeChanged)
			recordEffective(&res, p, cfg, opts.Observer, events, ev, step, u, v, beforeU, beforeV, edgeChanged)
		}

		check := false
		switch det.Trigger {
		case TriggerEffective:
			check = effective
		case TriggerEdge:
			check = edgeChanged
		case TriggerInterval:
			check = step%interval == 0
		default:
			check = effective
		}
		if check && stable(step) {
			res.Converged = true
			res.Steps = step
			return res
		}
	}
	res.Steps = maxSteps
	return res
}
