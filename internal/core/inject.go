package core

// Injector is the engine-side hook of the scenario layer: an external
// event source (crash faults, adversarial edge deletions, state
// resets) that mutates the configuration *between* interactions while
// the running engine keeps its incremental structures consistent.
//
// The contract is step-positional so every execution path sees the
// same event sequence: the engine asks NextEvent for the first event
// step strictly after `after` and calls Inject exactly once when the
// run reaches that step — after the step's interaction and stability
// check, mirroring the baseline loop's order. The indexed engines cut
// their geometric skips short at event steps and redraw from the
// post-event enabled count, which preserves the baseline law exactly
// because the geometric distribution is memoryless. Events scheduled
// at or beyond MaxSteps never fire.
//
// Injected mutations are environment events, not protocol steps: they
// advance no step counter, contribute to none of the Result metrics
// (EffectiveSteps, EdgeChanges, ConvergenceTime), and are not
// delivered to observers.
type Injector interface {
	// NextEvent returns the step of the first event strictly after
	// `after`, or 0 when no events remain.
	NextEvent(after int64) int64
	// Inject applies every event scheduled at steps ≤ step. All
	// mutation must go through the Mutator so the engine's index stays
	// consistent.
	Inject(step int64, m *Mutator)
}

// Mutator applies out-of-band configuration mutations on behalf of an
// Injector, keeping whatever incremental index the running engine
// maintains (the fast engine's PairIndex, the sparse engine's
// ClassIndex) synchronized. Updates are incremental, never rebuilds: a
// node write costs O(n) on the fast path and O(deg + |Q|) on the
// sparse path, an edge write O(1) on both; the baseline path carries
// no index and pays nothing.
type Mutator struct {
	cfg *Config
	ix  pairSampler // nil on the baseline path
}

// Config exposes the live configuration for reading (picking victims,
// walking active edges). Mutate only through the Mutator's setters;
// writing to the Config directly desynchronizes the engine's index.
func (m *Mutator) Config() *Config { return m.cfg }

// SetNode overwrites node u's state.
func (m *Mutator) SetNode(u int, s State) {
	before := m.cfg.nodes[u]
	if before == s {
		return
	}
	m.cfg.SetNode(u, s)
	if m.ix != nil {
		m.ix.nodeChanged(u, before)
	}
}

// SetEdge overwrites the state of edge {u, v}.
func (m *Mutator) SetEdge(u, v int, active bool) {
	if m.cfg.Edge(u, v) == active {
		return
	}
	m.cfg.SetEdge(u, v, active)
	if m.ix != nil {
		m.ix.edgeChanged(u, v)
	}
}
