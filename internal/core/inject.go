package core

// Injector is the engine-side hook of the scenario layer: an external
// event source (crash faults, adversarial edge deletions, state
// resets) that mutates the configuration *between* interactions while
// the running engine keeps its incremental structures consistent.
//
// The contract is step-positional so every execution path sees the
// same event sequence: the engine asks NextEvent for the first event
// step strictly after `after` and calls Inject exactly once when the
// run reaches that step — after the step's interaction and stability
// check, mirroring the baseline loop's order. The indexed engines cut
// their geometric skips short at event steps and redraw from the
// post-event enabled count, which preserves the baseline law exactly
// because the geometric distribution is memoryless. Events scheduled
// at or beyond MaxSteps never fire.
//
// Injected mutations are environment events, not protocol steps: they
// advance no step counter, contribute to none of the Result metrics
// (EffectiveSteps, EdgeChanges, ConvergenceTime), and are not
// delivered to observers.
type Injector interface {
	// NextEvent returns the step of the first event strictly after
	// `after`, or 0 when no events remain.
	NextEvent(after int64) int64
	// Inject applies every event scheduled at steps ≤ step. All
	// mutation must go through the Mutator so the engine's index stays
	// consistent.
	Inject(step int64, m *Mutator)
}

// Mutator applies out-of-band configuration mutations on behalf of an
// Injector, keeping whatever incremental index the running engine
// maintains (the fast engine's PairIndex, the sparse engine's
// ClassIndex) synchronized. Updates are incremental, never rebuilds: a
// node write costs O(n) on the fast path and O(deg + |Q|) on the
// sparse path, an edge write O(1) on both; the baseline path carries
// no index and pays nothing.
type Mutator struct {
	cfg *Config
	ix  pairSampler // nil on the baseline path

	// events and ev are the run's event sink and scratch record (both
	// nil when no sink is attached); step is the engine's current step,
	// refreshed before each Inject call so fault events carry their
	// exact position.
	events EventSink
	ev     *Event
	step   int64

	// Fault tallies folded into Result.Metrics at the end of the run.
	// The write counters count mutations actually applied — the setters'
	// no-op early returns don't tally.
	firings    int64
	nodeWrites int64
	edgeWrites int64
}

// Fired reports one fault firing: label names the fault kind and u, v
// the victims (−1 when absent — e.g. a node fault has no v). Injectors
// call it once per firing, before applying the writes it causes, so a
// consumer sees EventFaultFired followed by that firing's
// EventFaultNode / EventFaultEdge records.
func (m *Mutator) Fired(label string, u, v int) {
	m.firings++
	if m.events != nil {
		*m.ev = Event{Kind: EventFaultFired, Step: m.step, Label: label, U: u, V: v, Cfg: m.cfg}
		m.events.Event(m.ev)
	}
}

// fold adds the mutator's fault tallies to mm.
func (m *Mutator) fold(mm *Metrics) {
	mm.FaultFirings += m.firings
	mm.FaultNodeWrites += m.nodeWrites
	mm.FaultEdgeWrites += m.edgeWrites
}

// Config exposes the live configuration for reading (picking victims,
// walking active edges). Mutate only through the Mutator's setters;
// writing to the Config directly desynchronizes the engine's index.
func (m *Mutator) Config() *Config { return m.cfg }

// SetNode overwrites node u's state.
func (m *Mutator) SetNode(u int, s State) {
	before := m.cfg.nodes[u]
	if before == s {
		return
	}
	m.cfg.SetNode(u, s)
	if m.ix != nil {
		m.ix.nodeChanged(u, before)
	}
	m.nodeWrites++
	if m.events != nil {
		*m.ev = Event{Kind: EventFaultNode, Step: m.step, U: u,
			BeforeU: before, AfterU: s, Cfg: m.cfg}
		m.events.Event(m.ev)
	}
}

// SetEdge overwrites the state of edge {u, v}.
func (m *Mutator) SetEdge(u, v int, active bool) {
	if m.cfg.Edge(u, v) == active {
		return
	}
	m.cfg.SetEdge(u, v, active)
	if m.ix != nil {
		m.ix.edgeChanged(u, v)
	}
	m.edgeWrites++
	if m.events != nil {
		*m.ev = Event{Kind: EventFaultEdge, Step: m.step, U: u, V: v,
			EdgeChanged: true, Edge: active, Cfg: m.cfg}
		m.events.Event(m.ev)
	}
}
