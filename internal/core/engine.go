package core

import (
	"errors"
	"fmt"
)

// Trigger selects when a detector's Stable predicate is evaluated.
type Trigger int

// Trigger values. Interval checking exists for predicates that are
// expensive or that can become true on ineffective suffixes (full
// quiescence); the cheaper triggers piggyback on effective steps, which
// is exact for predicates that can only become true when something
// changed.
const (
	// TriggerEffective evaluates after every effective step.
	TriggerEffective Trigger = iota + 1
	// TriggerEdge evaluates only after steps that changed an edge.
	TriggerEdge
	// TriggerInterval evaluates every Options.CheckInterval steps.
	TriggerInterval
)

// Detector decides when a run has stabilized. Stable must return true
// only for configurations whose output graph provably never changes
// again under the protocol (the paper proves such predicates for every
// protocol it presents).
type Detector struct {
	Stable  func(cfg *Config) bool
	Trigger Trigger
}

// QuiescenceDetector detects full quiescence: no effective transition
// applies to any pair. Sufficient for protocols whose stable
// configurations are completely silent (Global-Star, Cycle-Cover, all
// Section 3.3 processes).
func QuiescenceDetector() Detector {
	return Detector{
		Stable:  func(cfg *Config) bool { return cfg.Quiescent() },
		Trigger: TriggerInterval,
	}
}

// EdgeQuiescenceDetector detects edge quiescence: no applicable
// transition changes an edge. This is not sufficient for stability in
// general (later node-state changes may re-enable edge changes), so use
// it only for protocols where edge quiescence is known to be absorbing.
func EdgeQuiescenceDetector() Detector {
	return Detector{
		Stable:  func(cfg *Config) bool { return cfg.EdgeQuiescent() },
		Trigger: TriggerInterval,
	}
}

// Options configures a run.
type Options struct {
	// Seed feeds the deterministic RNG. Runs with equal
	// (protocol, n, seed, scheduler) are identical.
	Seed uint64
	// Scheduler defaults to the uniform random scheduler.
	Scheduler Scheduler
	// Detector defaults to QuiescenceDetector.
	Detector Detector
	// MaxSteps aborts the run (Converged=false) when exceeded.
	// Defaults to DefaultMaxSteps(n).
	MaxSteps int64
	// CheckInterval is the period of TriggerInterval detection; 0 means
	// max(1024, n²).
	CheckInterval int64
	// Initial, when non-nil, replaces the all-q0 initial configuration
	// (e.g. Graph-Replication's input graph). It is cloned, not
	// mutated.
	Initial *Config
	// Observer, when non-nil, receives every effective step.
	Observer Observer
	// Stop, when non-nil, is polled once immediately and then every
	// CheckInterval steps; when it returns true the run aborts early
	// with Converged=false and Stopped=true. It is how callers plug in
	// context cancellation and per-run deadlines at the cost of a
	// single counter decrement per step.
	Stop func() bool
}

// Observer receives effective steps for tracing and figure generation.
type Observer interface {
	// ObserveStep is called after each effective step with the 1-based
	// step index, the interacting pair, whether the step changed an
	// edge, and the post-step configuration (which must not be
	// retained or mutated).
	ObserveStep(step int64, u, v int, edgeChanged bool, cfg *Config)
}

// Result reports a run's outcome and metrics.
type Result struct {
	// Converged reports whether the detector fired before MaxSteps.
	Converged bool
	// Stopped reports whether Options.Stop aborted the run before the
	// detector fired or the step budget ran out.
	Stopped bool
	// Steps is the number of interactions executed when stabilization
	// was detected (or MaxSteps on abort).
	Steps int64
	// ConvergenceTime is the paper's running time: the last step at
	// which the output graph (active edges plus Qout membership)
	// changed. Zero if the initial configuration was already stable.
	ConvergenceTime int64
	// EffectiveSteps counts steps on which any state changed.
	EffectiveSteps int64
	// EdgeChanges counts steps on which an edge changed.
	EdgeChanges int64
	// Final is the final configuration.
	Final *Config
}

// ParallelTime converts the sequential convergence time into the
// parallel-time estimate of the paper's footnote 5: with Θ(n)
// interactions happening in parallel per round, parallel time is
// sequential time divided by n.
func (r Result) ParallelTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(r.ConvergenceTime) / float64(n)
}

// DefaultMaxSteps returns the default step budget for population size
// n: generous enough for every protocol in the paper at the sizes used
// in tests and benchmarks (the slowest is Ω(n⁴)–O(n⁵)).
func DefaultMaxSteps(n int) int64 {
	if n < 4 {
		return 1 << 20
	}
	nn := int64(n)
	budget := 200 * nn * nn * nn * nn
	const ceiling = int64(1) << 40
	if budget > ceiling || budget < 0 {
		return ceiling
	}
	return budget
}

// Run executes the protocol on n nodes until the detector reports
// stability or the step budget is exhausted.
func Run(p *Protocol, n int, opts Options) (Result, error) {
	if n < 1 {
		return Result{}, errors.New("core: population size must be ≥ 1")
	}
	var cfg *Config
	if opts.Initial != nil {
		if opts.Initial.proto != p {
			return Result{}, fmt.Errorf("core: initial configuration belongs to protocol %q, not %q", opts.Initial.proto.Name(), p.Name())
		}
		if opts.Initial.N() != n {
			return Result{}, fmt.Errorf("core: initial configuration has %d nodes, want %d", opts.Initial.N(), n)
		}
		cfg = opts.Initial.Clone()
	} else {
		cfg = NewConfig(p, n)
	}

	sched := opts.Scheduler
	if sched == nil {
		sched = UniformScheduler{}
	}
	det := opts.Detector
	if det.Stable == nil {
		det = QuiescenceDetector()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps(n)
	}
	interval := opts.CheckInterval
	if interval <= 0 {
		interval = int64(n) * int64(n)
		if interval < 1024 {
			interval = 1024
		}
	}

	rng := NewRNG(opts.Seed)
	res := Result{Final: cfg}

	if n == 1 || det.Stable(cfg) {
		// Already stable (or no pairs exist to ever interact).
		res.Converged = det.Stable(cfg)
		return res, nil
	}

	// Stop is polled on a countdown (first poll before the first step,
	// then every interval steps) so the hot loop pays one decrement,
	// not a division, per step.
	stopCountdown := int64(1)

	var step int64
	for step < maxSteps {
		if opts.Stop != nil {
			stopCountdown--
			if stopCountdown <= 0 {
				stopCountdown = interval
				if opts.Stop() {
					res.Stopped = true
					res.Steps = step
					return res, nil
				}
			}
		}
		step++
		u, v := sched.Next(cfg, rng)
		beforeU, beforeV := cfg.Node(u), cfg.Node(v)
		effective, edgeChanged := cfg.Apply(u, v, rng)
		if effective {
			res.EffectiveSteps++
			// The output graph changes when an edge between two output
			// nodes changes, or when a node enters or leaves Qout.
			outputChanged := edgeChanged && p.IsOutput(cfg.Node(u)) && p.IsOutput(cfg.Node(v))
			if !outputChanged {
				outputChanged = p.IsOutput(beforeU) != p.IsOutput(cfg.Node(u)) ||
					p.IsOutput(beforeV) != p.IsOutput(cfg.Node(v))
			}
			if edgeChanged {
				res.EdgeChanges++
			}
			if outputChanged {
				res.ConvergenceTime = step
			}
			if opts.Observer != nil {
				opts.Observer.ObserveStep(step, u, v, edgeChanged, cfg)
			}
		}

		check := false
		switch det.Trigger {
		case TriggerEffective:
			check = effective
		case TriggerEdge:
			check = edgeChanged
		case TriggerInterval:
			check = step%interval == 0
		default:
			check = effective
		}
		if check && det.Stable(cfg) {
			res.Converged = true
			res.Steps = step
			return res, nil
		}
	}
	res.Steps = maxSteps
	return res, nil
}

// Mean was the package's sequential multi-trial helper; it moved to
// repro/internal/campaign (campaign.Mean), which runs the trials on a
// worker pool and aggregates them through the same reduction as every
// other sweep.
