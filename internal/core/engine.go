package core

import (
	"errors"
	"fmt"
	"time"
)

// Trigger selects when a detector's Stable predicate is evaluated.
type Trigger int

// Trigger values. Interval checking exists for predicates that are
// expensive or that can become true on ineffective suffixes (full
// quiescence); the cheaper triggers piggyback on effective steps, which
// is exact for predicates that can only become true when something
// changed.
const (
	// TriggerEffective evaluates after every effective step.
	TriggerEffective Trigger = iota + 1
	// TriggerEdge evaluates only after steps that changed an edge.
	TriggerEdge
	// TriggerInterval evaluates every Options.CheckInterval steps.
	TriggerInterval
)

// Gate declares that a detector's Stable predicate is equivalent to a
// counter condition the fast engine maintains incrementally, letting
// the fast path answer it in O(1) instead of running the O(n²) scan.
// The baseline engine ignores gates and always calls Stable.
type Gate int

// Gate values.
const (
	// GateNone means Stable must be called; the default for custom
	// detectors.
	GateNone Gate = iota
	// GateQuiescence marks Stable ⇔ Config.Quiescent — answered by
	// "no enabled pairs" on the fast path.
	GateQuiescence
	// GateEdgeQuiescence marks Stable ⇔ Config.EdgeQuiescent — answered
	// by "no edge-effective enabled pairs" on the fast path.
	GateEdgeQuiescence
)

// Detector decides when a run has stabilized. Stable must return true
// only for configurations whose output graph provably never changes
// again under the protocol (the paper proves such predicates for every
// protocol it presents).
type Detector struct {
	Stable  func(cfg *Config) bool
	Trigger Trigger
	// Gate, when non-zero, lets the fast engine replace Stable with an
	// equivalent O(1) counter check. Set it only when the equivalence is
	// exact; the prebuilt quiescence detectors do.
	Gate Gate
}

// QuiescenceDetector detects full quiescence: no effective transition
// applies to any pair. Sufficient for protocols whose stable
// configurations are completely silent (Global-Star, Cycle-Cover, all
// Section 3.3 processes). The baseline engine evaluates it with the
// O(n²) scan every check interval; the fast engine answers it from the
// enabled-pair count in O(1).
func QuiescenceDetector() Detector {
	return Detector{
		Stable:  func(cfg *Config) bool { return cfg.Quiescent() },
		Trigger: TriggerInterval,
		Gate:    GateQuiescence,
	}
}

// EdgeQuiescenceDetector detects edge quiescence: no applicable
// transition changes an edge. This is not sufficient for stability in
// general (later node-state changes may re-enable edge changes), so use
// it only for protocols where edge quiescence is known to be absorbing.
// Like QuiescenceDetector it is an O(1) gate on the fast path.
func EdgeQuiescenceDetector() Detector {
	return Detector{
		Stable:  func(cfg *Config) bool { return cfg.EdgeQuiescent() },
		Trigger: TriggerInterval,
		Gate:    GateEdgeQuiescence,
	}
}

// Options configures a run.
type Options struct {
	// Seed feeds the deterministic RNG. Runs with equal
	// (protocol, n, seed, scheduler, engine) are identical; the two
	// engines consume randomness differently, so they agree in
	// distribution, not step for step.
	Seed uint64
	// Scheduler defaults to the uniform random scheduler.
	Scheduler Scheduler
	// Engine selects the execution path. The default EngineAuto uses,
	// under the uniform scheduler, the fast enabled-pair-index engine
	// for populations up to 4096 (the index costs Θ(n²) memory) and
	// the sparse state-class engine — O(n + m) memory — above that, up
	// to 2²⁰ nodes; the baseline loop otherwise. EngineBaseline,
	// EngineFast and EngineSparse force a path (forcing an indexed
	// path under a non-uniform scheduler is an error).
	Engine Engine
	// Detector defaults to QuiescenceDetector.
	Detector Detector
	// MaxSteps aborts the run (Converged=false) when exceeded.
	// Defaults to DefaultMaxSteps(n).
	MaxSteps int64
	// CheckInterval is the period, in scheduler steps, of both
	// TriggerInterval detection and Stop polling; 0 means
	// DefaultCheckInterval(n).
	CheckInterval int64
	// Topology, when non-nil, restricts the interaction graph to its
	// permitted pairs: the uniform scheduler draws uniformly over them,
	// round-robin and permutation schedules cycle over them, and the
	// indexed engines count enabled pairs within the permitted set (the
	// batch engine exact-steps, bit-identical to EngineSparse). Nil is
	// the paper's complete interaction graph. The topology's population
	// must equal n, it must permit at least one pair (when n > 1), rate-
	// based schedulers (weighted, biased) reject it, and any Initial
	// configuration's active edges must all be permitted pairs — the
	// engines rely on active ⊆ permitted to stay consistent.
	Topology *Topology
	// Initial, when non-nil, replaces the all-q0 initial configuration
	// (e.g. Graph-Replication's input graph). It is cloned, not
	// mutated.
	Initial *Config
	// Observer, when non-nil, receives every effective step.
	Observer Observer
	// Events, when non-nil, receives the run's structured event stream
	// (see EventSink): run start/end, effective steps with before/after
	// states, geometric-skip batches, fault firings and writes, and
	// detector verdicts. Attaching a sink never changes the run's
	// results; with no sink the engines pay a nil check and nothing
	// else.
	Events EventSink
	// Stop, when non-nil, is polled once immediately and then
	// periodically (every CheckInterval steps on the baseline engine,
	// every landing on the fast engine); when it returns true the run
	// aborts early with Converged=false and Stopped=true. It is how
	// callers plug in context cancellation and per-run deadlines.
	Stop func() bool
	// Injector, when non-nil, is the scenario layer's engine hook: an
	// external event source (fault injection) whose events fire at
	// identical step positions on every engine and mutate the
	// configuration through a Mutator so the indexed paths stay
	// consistent incrementally. See Injector. Ignored when n == 1
	// (no pair ever interacts). Injectors are stateful; supply a fresh
	// one per run.
	Injector Injector
	// Workspace, when non-nil, supplies reusable run state — the
	// configuration, the engine index, and the RNG are reset in place
	// instead of freshly allocated, making steady-state repeated runs
	// allocation-free without changing any result bit (see Workspace).
	// Nil keeps the fresh-allocation behavior. With a workspace,
	// Result.Final is borrowed: it is valid only until the workspace's
	// next run, and callers who retain it must Clone it.
	Workspace *Workspace
}

// Observer receives effective steps for tracing and figure generation.
type Observer interface {
	// ObserveStep is called after each effective step with the 1-based
	// step index, the interacting pair, whether the step changed an
	// edge, and the post-step configuration (which must not be
	// retained or mutated).
	ObserveStep(step int64, u, v int, edgeChanged bool, cfg *Config)
}

// Result reports a run's outcome and metrics.
type Result struct {
	// Converged reports whether the detector fired before MaxSteps.
	Converged bool
	// Stopped reports whether Options.Stop aborted the run before the
	// detector fired or the step budget ran out.
	Stopped bool
	// Steps is the number of interactions executed when stabilization
	// was detected (or MaxSteps on abort).
	Steps int64
	// ConvergenceTime is the paper's running time: the last step at
	// which the output graph (active edges plus Qout membership)
	// changed. Zero if the initial configuration was already stable.
	ConvergenceTime int64
	// EffectiveSteps counts steps on which any state changed.
	EffectiveSteps int64
	// EdgeChanges counts steps on which an edge changed.
	EdgeChanges int64
	// Engine records the execution path that produced this result
	// (never EngineAuto).
	Engine Engine
	// Metrics is the run's engine telemetry: wall time plus the
	// landing/skip/detector/sampling/fault counters. Every field except
	// WallNS (and the workspace-dependent setup counters) is
	// deterministic in the run parameters.
	Metrics Metrics
	// Final is the final configuration. Runs with Options.Workspace set
	// borrow it from the workspace: it is valid until the workspace's
	// next run begins, so callers retaining it longer (or mutating it)
	// must Clone it first. Without a workspace the caller owns it
	// outright.
	Final *Config
}

// ParallelTime converts the sequential convergence time into the
// parallel-time estimate of the paper's footnote 5: with Θ(n)
// interactions happening in parallel per round, parallel time is
// sequential time divided by n.
func (r Result) ParallelTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(r.ConvergenceTime) / float64(n)
}

// DefaultMaxSteps returns the default step budget for population size
// n: generous enough for every protocol in the paper at the sizes used
// in tests and benchmarks (the slowest is Ω(n⁴)–O(n⁵)).
func DefaultMaxSteps(n int) int64 {
	if n < 4 {
		return 1 << 20
	}
	const ceiling = int64(1) << 40
	nn := int64(n)
	// 200·n⁴ exceeds the ceiling from n = 273 on; comparing first also
	// avoids int64 overflow, which at n = 2¹⁶ wraps to exactly zero
	// (2¹⁶ raised to the 4th is 2⁶⁴) and used to produce a zero-step
	// budget.
	if nn > 272 {
		return ceiling
	}
	budget := 200 * nn * nn * nn * nn
	if budget > ceiling {
		return ceiling
	}
	return budget
}

// DefaultCheckInterval returns the period, in scheduler steps, at
// which interval-triggered detectors and Options.Stop are polled when
// Options.CheckInterval is zero: n² clamped to [1024, 2²²]. The n²
// term amortizes an O(n²) stability scan to O(1) per step; the floor
// keeps tiny populations from polling every few steps; the ceiling
// keeps Stop polling — and with it campaign timeouts and context
// cancellation — responsive on large baseline runs, where an uncapped
// n² default (2⁴⁰ steps between polls at n = 2²⁰) would mean the run
// effectively never observes a stop request. Run, the fast engine and
// RunDyn all share this helper, so the default cannot drift between
// paths.
func DefaultCheckInterval(n int) int64 {
	const ceiling = int64(1) << 22
	interval := int64(n) * int64(n)
	if interval < 1024 {
		interval = 1024
	}
	if interval > ceiling {
		interval = ceiling
	}
	return interval
}

// Run executes the protocol on n nodes until the detector reports
// stability or the step budget is exhausted, dispatching to the
// execution path selected by Options.Engine.
func Run(p *Protocol, n int, opts Options) (Result, error) {
	start := time.Now()
	if n < 1 {
		return Result{}, errors.New("core: population size must be ≥ 1")
	}
	if opts.Initial != nil {
		if opts.Initial.proto != p {
			return Result{}, fmt.Errorf("core: initial configuration belongs to protocol %q, not %q", opts.Initial.proto.Name(), p.Name())
		}
		if opts.Initial.N() != n {
			return Result{}, fmt.Errorf("core: initial configuration has %d nodes, want %d", opts.Initial.N(), n)
		}
	}
	var wsResets int64
	if opts.Workspace != nil {
		wsResets = opts.Workspace.resets
	}
	var cfg *Config
	switch {
	case opts.Workspace != nil:
		cfg = opts.Workspace.config(p, n, opts.Initial)
	case opts.Initial != nil:
		cfg = opts.Initial.Clone()
	default:
		cfg = NewConfig(p, n)
	}

	sched := opts.Scheduler
	if sched == nil {
		sched = UniformScheduler{}
	}
	// The restricted-topology contract: matching population, at least
	// one pair to schedule, a scheduler that knows how to restrict its
	// draws, and no initial active edge outside the permitted set (the
	// engines' indexes rely on active ⊆ permitted). cfg.topo is assigned
	// unconditionally so a reused workspace configuration cannot carry a
	// previous run's topology.
	cfg.topo = opts.Topology
	if t := opts.Topology; t != nil {
		if t.N() != n {
			return Result{}, fmt.Errorf("core: topology has %d nodes, want %d", t.N(), n)
		}
		if n > 1 && t.PairCount() == 0 {
			return Result{}, errors.New("core: topology permits no pairs; no interaction can ever be scheduled")
		}
		switch sched.(type) {
		case UniformScheduler, *UniformScheduler, *RoundRobinScheduler, *PermutationScheduler:
		default:
			return Result{}, fmt.Errorf("core: the %s scheduler does not support a restricted topology", sched.Name())
		}
		if opts.Initial != nil && cfg.activeEdges > 0 {
			badU, badV := -1, -1
			cfg.store.forEach(func(u, v int) {
				if badU < 0 && !t.Contains(u, v) {
					badU, badV = u, v
				}
			})
			if badU >= 0 {
				return Result{}, fmt.Errorf("core: initial configuration has active edge {%d, %d} outside the permitted topology", badU, badV)
			}
		}
	}
	engine := opts.Engine
	switch engine {
	case EngineAuto:
		switch {
		case !uniformSchedule(sched):
			engine = EngineBaseline
		case n <= maxAutoIndexNodes:
			engine = EngineFast
		case n <= maxSparseNodes:
			// Above the fast threshold the batch engine is strictly
			// faster when it can run its pure path; with a sink,
			// observer or injector attached it would exact-step anyway,
			// so auto keeps those runs on the sparse engine they are
			// bit-identical to.
			if opts.Events == nil && opts.Observer == nil && opts.Injector == nil {
				engine = EngineBatch
			} else {
				engine = EngineSparse
			}
		default:
			engine = EngineBaseline
		}
	case EngineBaseline:
	case EngineFast, EngineSparse, EngineBatch:
		if !uniformSchedule(sched) {
			return Result{}, fmt.Errorf("core: the %s engine requires the uniform scheduler, not %q", engine, sched.Name())
		}
		if err := engine.ValidateN(n); err != nil {
			return Result{}, err
		}
	default:
		return Result{}, fmt.Errorf("core: unknown engine %d", int(opts.Engine))
	}

	det := opts.Detector
	if det.Stable == nil {
		det = QuiescenceDetector()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps(n)
	}
	interval := opts.CheckInterval
	if interval <= 0 {
		interval = DefaultCheckInterval(n)
	}

	var rng *RNG
	if opts.Workspace != nil {
		rng = opts.Workspace.rngFor(opts.Seed)
	} else {
		rng = NewRNG(opts.Seed)
	}

	// The run envelope: one EventRunStart before the first draw (Cfg is
	// the initial configuration), one EventRunEnd after the last (Cfg is
	// the final one). ev is the scratch record reused for both.
	var ev *Event
	if opts.Events != nil {
		ev = &Event{Kind: EventRunStart, Protocol: p.Name(), N: n,
			Seed: opts.Seed, Engine: engine, MaxSteps: maxSteps, Cfg: cfg}
		opts.Events.Event(ev)
	}

	var res Result
	var err error
	if n == 1 {
		// No pairs exist to ever interact.
		res = Result{Final: cfg, Engine: engine, Converged: det.Stable(cfg)}
		res.Metrics.DetectorChecks = 1
		emitDetect(opts.Events, ev, 0, res.Converged, cfg)
	} else {
		switch engine {
		case EngineFast:
			res, err = runFast(p, cfg, det, opts, maxSteps, interval, rng)
		case EngineSparse:
			res, err = runSparse(p, cfg, det, opts, maxSteps, interval, rng)
		case EngineBatch:
			res, err = runBatch(p, cfg, det, opts, maxSteps, interval, rng)
		default:
			res, err = runBaseline(p, cfg, det, opts, sched, maxSteps, interval, rng)
		}
		if err != nil {
			return res, err
		}
	}
	if opts.Workspace != nil {
		res.Metrics.WorkspaceResets = opts.Workspace.resets - wsResets
	}
	res.Metrics.WallNS = time.Since(start).Nanoseconds()
	if opts.Events != nil {
		*ev = Event{Kind: EventRunEnd, Step: res.Steps, Converged: res.Converged,
			EffectiveSteps: res.EffectiveSteps, EdgeChanges: res.EdgeChanges,
			ConvergenceTime: res.ConvergenceTime, Protocol: p.Name(), N: n,
			Seed: opts.Seed, Engine: engine, MaxSteps: maxSteps, Cfg: res.Final}
		opts.Events.Event(ev)
	}
	return res, nil
}

// recordEffective folds one effective step into the run metrics and
// notifies the observer and event sink. runBaseline and runIndexed
// share it so neither the output-change rule nor the step-event payload
// can drift between the engines.
func recordEffective(res *Result, p *Protocol, cfg *Config, obs Observer, events EventSink, ev *Event, step int64, u, v int, beforeU, beforeV State, edgeChanged bool) {
	res.EffectiveSteps++
	// The output graph changes when an edge between two output nodes
	// changes, or when a node enters or leaves Qout.
	outputChanged := edgeChanged && p.IsOutput(cfg.Node(u)) && p.IsOutput(cfg.Node(v))
	if !outputChanged {
		outputChanged = p.IsOutput(beforeU) != p.IsOutput(cfg.Node(u)) ||
			p.IsOutput(beforeV) != p.IsOutput(cfg.Node(v))
	}
	if edgeChanged {
		res.EdgeChanges++
	}
	if outputChanged {
		res.ConvergenceTime = step
	}
	if obs != nil {
		obs.ObserveStep(step, u, v, edgeChanged, cfg)
	}
	if events != nil {
		edge := false
		if edgeChanged {
			edge = cfg.Edge(u, v)
		}
		*ev = Event{Kind: EventStep, Step: step, U: u, V: v,
			BeforeU: beforeU, BeforeV: beforeV,
			AfterU: cfg.Node(u), AfterV: cfg.Node(v),
			EdgeChanged: edgeChanged, Edge: edge, Cfg: cfg}
		events.Event(ev)
	}
}

// runBaseline simulates every scheduler draw individually. It is the
// reference implementation the fast engine is measured against, and
// the only path that supports non-uniform schedulers. It wraps
// baselineLoop to fold the mutator's fault tallies and the
// Landings = Steps identity (every baseline draw is simulated) into
// the metrics once, at the single exit.
func runBaseline(p *Protocol, cfg *Config, det Detector, opts Options, sched Scheduler, maxSteps, interval int64, rng *RNG) (Result, error) {
	var ev *Event
	if opts.Events != nil {
		ev = new(Event)
	}
	var mut *Mutator
	if opts.Injector != nil {
		mut = &Mutator{cfg: cfg, events: opts.Events, ev: ev}
	}
	res := baselineLoop(p, cfg, det, opts, sched, maxSteps, interval, rng, mut, ev)
	res.Metrics.Landings = res.Steps
	if mut != nil {
		mut.fold(&res.Metrics)
	}
	return res, nil
}

func baselineLoop(p *Protocol, cfg *Config, det Detector, opts Options, sched Scheduler, maxSteps, interval int64, rng *RNG, mut *Mutator, ev *Event) Result {
	res := Result{Final: cfg, Engine: EngineBaseline}

	// Already stable before any step. The indexed paths perform this
	// check themselves, through their O(1) gates.
	res.Metrics.DetectorChecks++
	st := det.Stable(cfg)
	emitDetect(opts.Events, ev, 0, st, cfg)
	if st {
		res.Converged = true
		return res
	}

	// Stop is polled on a countdown (first poll before the first step,
	// then every interval steps) so the hot loop pays one decrement,
	// not a division, per step.
	stopCountdown := int64(1)

	// Scenario faults fire after a step's interaction and stability
	// check; the indexed engines replicate this exact ordering, so a
	// fault plan produces the same event positions on every path.
	inj := opts.Injector
	var nextFault int64
	if inj != nil {
		nextFault = inj.NextEvent(0)
	}

	var step int64
	for step < maxSteps {
		if opts.Stop != nil {
			stopCountdown--
			if stopCountdown <= 0 {
				stopCountdown = interval
				if opts.Stop() {
					res.Stopped = true
					res.Steps = step
					return res
				}
			}
		}
		step++
		u, v := sched.Next(cfg, rng)
		beforeU, beforeV := cfg.Node(u), cfg.Node(v)
		effective, edgeChanged := cfg.Apply(u, v, rng)
		if effective {
			recordEffective(&res, p, cfg, opts.Observer, opts.Events, ev, step, u, v, beforeU, beforeV, edgeChanged)
		}

		check := false
		switch det.Trigger {
		case TriggerEffective:
			check = effective
		case TriggerEdge:
			check = edgeChanged
		case TriggerInterval:
			check = step%interval == 0
		default:
			check = effective
		}
		if check {
			res.Metrics.DetectorChecks++
			st := det.Stable(cfg)
			emitDetect(opts.Events, ev, step, st, cfg)
			if st {
				res.Converged = true
				res.Steps = step
				return res
			}
		}

		// Events at or beyond the budget never fire (the run is over
		// before they could be observed).
		if nextFault > 0 && nextFault <= step && step < maxSteps {
			mut.step = step
			inj.Inject(step, mut)
			nextFault = inj.NextEvent(step)
		}
	}
	res.Steps = maxSteps
	return res
}
