package core

import (
	"strings"
	"testing"
)

func twoStateRules() []Rule {
	return []Rule{{A: 0, B: 1, Edge: false, OutA: 1, OutB: 1, OutEdge: true}}
}

func TestNewProtocolValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		pname   string
		states  []string
		initial State
		qout    []State
		rules   []Rule
		wantErr string
	}{
		{
			name: "empty name", pname: "", states: []string{"a"},
			wantErr: "name",
		},
		{
			name: "no states", pname: "p", states: nil,
			wantErr: "at least one state",
		},
		{
			name: "initial out of range", pname: "p", states: []string{"a"}, initial: 3,
			wantErr: "initial state",
		},
		{
			name: "duplicate state names", pname: "p", states: []string{"a", "a"},
			wantErr: "duplicate",
		},
		{
			name: "empty state name", pname: "p", states: []string{"a", ""},
			wantErr: "empty name",
		},
		{
			name: "output out of range", pname: "p", states: []string{"a"}, qout: []State{9},
			wantErr: "output state",
		},
		{
			name: "rule state out of range", pname: "p", states: []string{"a", "b"},
			rules:   []Rule{{A: 0, B: 7, OutA: 0, OutB: 0}},
			wantErr: "out of range",
		},
		{
			name: "alt state out of range", pname: "p", states: []string{"a", "b"},
			rules:   []Rule{{A: 0, B: 1, OutA: 1, OutB: 1, Alt: true, AltA: 9}},
			wantErr: "alt outcome",
		},
		{
			name: "redefined triple", pname: "p", states: []string{"a", "b"},
			rules: []Rule{
				{A: 0, B: 1, OutA: 1, OutB: 1},
				{A: 0, B: 1, OutA: 0, OutB: 0},
			},
			wantErr: "redefines",
		},
		{
			name: "mirror conflict", pname: "p", states: []string{"a", "b"},
			rules: []Rule{
				{A: 0, B: 1, OutA: 1, OutB: 1},
				{A: 1, B: 0, OutA: 0, OutB: 0},
			},
			wantErr: "mirror",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewProtocol(tc.pname, tc.states, tc.initial, tc.qout, tc.rules)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestProtocolAccessors(t *testing.T) {
	t.Parallel()
	p, err := NewProtocol("demo", []string{"a", "b"}, 0, []State{1}, twoStateRules())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "demo" || p.Size() != 2 || p.Initial() != 0 {
		t.Fatalf("accessors: %q %d %d", p.Name(), p.Size(), p.Initial())
	}
	if p.IsOutput(0) || !p.IsOutput(1) {
		t.Fatal("Qout membership wrong")
	}
	if got := p.StateName(0); got != "a" {
		t.Fatalf("StateName(0) = %q", got)
	}
	if got := p.StateName(99); !strings.Contains(got, "99") {
		t.Fatalf("StateName(99) = %q", got)
	}
	if s, ok := p.StateIndex("b"); !ok || s != 1 {
		t.Fatalf("StateIndex(b) = %d, %v", s, ok)
	}
	if _, ok := p.StateIndex("zz"); ok {
		t.Fatal("StateIndex found a missing state")
	}
	if p.Randomized() {
		t.Fatal("deterministic protocol reported as randomized")
	}
	rules := p.Rules()
	rules[0].A = 1 // must not affect the protocol
	if p.Rules()[0].A != 0 {
		t.Fatal("Rules leaked internal storage")
	}
}

func TestNilQoutMeansAllOutput(t *testing.T) {
	t.Parallel()
	p := MustProtocol("p", []string{"a", "b"}, 0, nil, twoStateRules())
	if !p.IsOutput(0) || !p.IsOutput(1) {
		t.Fatal("nil Qout should make every state an output state")
	}
}

func TestSymmetricLookup(t *testing.T) {
	t.Parallel()
	// Rule defined at (a, b): the mirror orientation must apply with
	// roles swapped.
	p := MustProtocol("p", []string{"a", "b", "c"}, 0, nil, []Rule{
		{A: 0, B: 1, Edge: false, OutA: 2, OutB: 1, OutEdge: true},
	})
	e := p.lookup(1, 0, false)
	if !e.effective {
		t.Fatal("mirror orientation not effective")
	}
	if e.outA != 1 || e.outB != 2 || !e.outEdge {
		t.Fatalf("mirror outcome (%d,%d,%v)", e.outA, e.outB, e.outEdge)
	}
	// Unlisted triples are identity.
	if p.EffectiveOn(2, 2, true) {
		t.Fatal("unlisted triple reported effective")
	}
}

func TestOutcomesEnumeration(t *testing.T) {
	t.Parallel()
	p := MustProtocol("p", []string{"a", "b", "c"}, 0, nil, []Rule{
		// Symmetry-breaking coin: a==a with distinct outputs.
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 2, OutEdge: true},
		// Probabilistic rule with two branches.
		{A: 1, B: 2, Edge: true, OutA: 2, OutB: 2, OutEdge: true,
			Alt: true, AltA: 1, AltB: 1, AltEdge: false},
	})
	coin := p.Outcomes(0, 0, false)
	if len(coin) != 2 {
		t.Fatalf("coin rule should have 2 outcomes, got %d: %v", len(coin), coin)
	}
	if coin[0] == coin[1] {
		t.Fatal("coin outcomes identical")
	}
	prob := p.Outcomes(1, 2, true)
	if len(prob) != 2 {
		t.Fatalf("probabilistic rule should have 2 outcomes, got %d", len(prob))
	}
	if p.Outcomes(2, 2, false) != nil {
		t.Fatal("ineffective triple should have nil outcomes")
	}
	if !p.Randomized() {
		t.Fatal("protocol with Alt rule not reported randomized")
	}
}

func TestOutcomesDropIdentityBranch(t *testing.T) {
	t.Parallel()
	// A probabilistic rule whose alternative is the identity (the
	// common "with prob 1/2 do nothing" pattern).
	p := MustProtocol("p", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 1, Edge: false, OutA: 1, OutB: 1, OutEdge: true,
			Alt: true, AltA: 0, AltB: 1, AltEdge: false},
	})
	outs := p.Outcomes(0, 1, false)
	if len(outs) != 1 {
		t.Fatalf("identity branch not dropped: %v", outs)
	}
}

func TestEdgeEffectiveOn(t *testing.T) {
	t.Parallel()
	p := MustProtocol("p", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: false}, // node-only
		{A: 1, B: 1, Edge: false, OutA: 1, OutB: 1, OutEdge: true},  // edge-only
	})
	if p.EdgeEffectiveOn(0, 0, false) {
		t.Fatal("node-only rule reported edge-effective")
	}
	if !p.EdgeEffectiveOn(1, 1, false) {
		t.Fatal("edge rule not reported edge-effective")
	}
}

func TestRuleEffective(t *testing.T) {
	t.Parallel()
	if (Rule{A: 0, B: 0, OutA: 0, OutB: 0}).Effective() {
		t.Fatal("identity rule reported effective")
	}
	if !(Rule{A: 0, B: 0, OutA: 1, OutB: 0}).Effective() {
		t.Fatal("state-changing rule not effective")
	}
	if !(Rule{A: 0, B: 0, Edge: false, OutA: 0, OutB: 0, OutEdge: true}).Effective() {
		t.Fatal("edge-changing rule not effective")
	}
}

func TestMustProtocolPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustProtocol did not panic on invalid input")
		}
	}()
	MustProtocol("", nil, 0, nil, nil)
}
