package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Topology is an immutable set of permitted interaction pairs — a
// restricted interaction graph over the population. The paper assumes
// the complete interaction graph (any pair may be scheduled); a
// Topology replaces it with geometry or degree constraints, the
// configurable-topology axis of the NETCS-style simulators.
//
// A nil *Topology everywhere means "complete": every code path treats
// nil as all n(n−1)/2 pairs permitted and executes the pre-topology
// instructions byte for byte, so complete-graph runs are bit-identical
// to a build without this layer (pinned by TestCompleteTopologyBitIdentical).
//
// Under a non-nil Topology, Run restricts the uniform scheduler's draw
// to the permitted pairs, the round-robin and permutation schedulers
// cycle over the permitted pair list, and the indexed engines count
// enabled pairs within the permitted set — the geometric skip law is
// unchanged because the total pair count per draw is still a run
// constant (see ARCHITECTURE.md, "Interaction topology").
type Topology struct {
	n     int
	pairs []uint64  // packed u<<32|v with u < v, sorted ascending
	adj   [][]int32 // per-node permitted neighbors, sorted ascending
}

// NewTopology builds a Topology whose permitted pairs are exactly the
// edges of the simple graph g. O(n + m).
func NewTopology(g *graph.Graph) *Topology {
	n := g.N()
	t := &Topology{
		n:     n,
		pairs: make([]uint64, 0, g.M()),
		adj:   make([][]int32, n),
	}
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		lst := make([]int32, 0, len(nbrs))
		for _, v := range nbrs {
			lst = append(lst, int32(v))
			if u < v {
				t.pairs = append(t.pairs, uint64(u)<<32|uint64(v))
			}
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		t.adj[u] = lst
	}
	sort.Slice(t.pairs, func(i, j int) bool { return t.pairs[i] < t.pairs[j] })
	return t
}

// N returns the population size the topology was built for.
func (t *Topology) N() int { return t.n }

// PairCount returns the number of permitted pairs.
func (t *Topology) PairCount() int { return len(t.pairs) }

// PairAt returns the i-th permitted pair in the canonical (sorted)
// order, with u < v.
func (t *Topology) PairAt(i int) (u, v int) {
	p := t.pairs[i]
	return int(p >> 32), int(p & 0xffffffff)
}

// Degree returns the number of permitted pairs incident to u.
func (t *Topology) Degree(u int) int { return len(t.adj[u]) }

// Contains reports whether {u, v} is a permitted pair: a binary search
// of the smaller endpoint adjacency, O(log deg).
func (t *Topology) Contains(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= t.n || v >= t.n {
		return false
	}
	lst := t.adj[u]
	if other := t.adj[v]; len(other) < len(lst) {
		lst, v = other, u
	}
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(v) })
	return i < len(lst) && lst[i] == int32(v)
}

// SamplePair returns a uniformly random permitted pair in random
// orientation — the restricted counterpart of RNG.Pair. It must not be
// called when PairCount is zero.
func (t *Topology) SamplePair(rng *RNG) (u, v int) {
	p := t.pairs[rng.IntN(len(t.pairs))]
	u, v = int(p>>32), int(p&0xffffffff)
	if rng.Coin() {
		u, v = v, u
	}
	return u, v
}

// Topology kinds understood by TopologySpec.
const (
	TopoComplete = "complete"
	TopoGnp      = "gnp"
	TopoRGG      = "rgg"
	TopoCM       = "cm"
)

// TopologySpec is the declarative form of a Topology: the value that
// travels through campaign specs, CLI flags, and spec hashes, realized
// into a concrete Topology per run. The flag/JSON syntax mirrors the
// fault-plan syntax ("kind@param"):
//
//	complete    the full interaction graph (builds to a nil *Topology)
//	gnp@0.05    G(n, p) with edge probability 0.05
//	rgg@0.1     random geometric graph, connection radius 0.1
//	cm@4        configuration model, every node degree 4
//
// A nil *TopologySpec means complete.
type TopologySpec struct {
	// Kind is one of TopoComplete, TopoGnp, TopoRGG, TopoCM.
	Kind string
	// Param is the model parameter (edge probability, radius, or uniform
	// degree); unused for complete.
	Param float64
}

// ParseTopologySpec parses the flag form. The empty string means
// complete and parses to nil.
func ParseTopologySpec(s string) (*TopologySpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == TopoComplete {
		if s == TopoComplete {
			return &TopologySpec{Kind: TopoComplete}, nil
		}
		return nil, nil
	}
	kind, param, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("core: topology %q: want \"complete\" or \"kind@param\" (gnp@0.05, rgg@0.1, cm@4)", s)
	}
	p, err := strconv.ParseFloat(param, 64)
	if err != nil {
		return nil, fmt.Errorf("core: topology %q: bad parameter %q: %v", s, param, err)
	}
	switch kind {
	case TopoGnp, TopoRGG, TopoCM:
		return &TopologySpec{Kind: kind, Param: p}, nil
	default:
		return nil, fmt.Errorf("core: unknown topology kind %q (known: complete, gnp, rgg, cm)", kind)
	}
}

// String renders the spec back into its flag form; a nil spec renders
// as "complete".
func (ts *TopologySpec) String() string {
	if ts == nil || ts.Kind == "" || ts.Kind == TopoComplete {
		return TopoComplete
	}
	return ts.Kind + "@" + strconv.FormatFloat(ts.Param, 'g', -1, 64)
}

// Label is the record/aggregate label: empty for the complete graph
// (matching the records written before the topology layer existed),
// the flag form otherwise.
func (ts *TopologySpec) Label() string {
	if ts == nil || ts.Kind == "" || ts.Kind == TopoComplete {
		return ""
	}
	return ts.String()
}

// MarshalText implements encoding.TextMarshaler so the spec appears in
// JSON as its flag form.
func (ts *TopologySpec) MarshalText() ([]byte, error) {
	return []byte(ts.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; the flag syntax
// and the JSON "topology" field accept the same forms.
func (ts *TopologySpec) UnmarshalText(text []byte) error {
	parsed, err := ParseTopologySpec(string(text))
	if err != nil {
		return err
	}
	if parsed == nil {
		parsed = &TopologySpec{Kind: TopoComplete}
	}
	*ts = *parsed
	return nil
}

// Validate checks the spec parameters against a population size without
// building anything, so spec compilers can reject a bad grid before any
// trial runs.
func (ts *TopologySpec) Validate(n int) error {
	if ts == nil {
		return nil
	}
	switch ts.Kind {
	case "", TopoComplete:
		return nil
	case TopoGnp:
		if ts.Param < 0 || ts.Param > 1 {
			return fmt.Errorf("core: topology gnp: edge probability %g outside [0, 1]", ts.Param)
		}
	case TopoRGG:
		if ts.Param <= 0 {
			return fmt.Errorf("core: topology rgg: radius %g must be positive", ts.Param)
		}
	case TopoCM:
		d := ts.Param
		if d < 0 || d != math.Trunc(d) {
			return fmt.Errorf("core: topology cm: degree %g must be a non-negative integer", d)
		}
		if int(d) > n-1 {
			return fmt.Errorf("core: topology cm: degree %d exceeds n−1 = %d", int(d), n-1)
		}
		if n*int(d)%2 != 0 {
			return fmt.Errorf("core: topology cm: n·d = %d·%d is odd, so no realization exists", n, int(d))
		}
	default:
		return fmt.Errorf("core: unknown topology kind %q (known: complete, gnp, rgg, cm)", ts.Kind)
	}
	return nil
}

// Build realizes the spec into a concrete Topology on n nodes from the
// given seed. Complete (and nil) specs build to a nil *Topology, so the
// complete path through the engines is exactly the pre-topology one.
func (ts *TopologySpec) Build(n int, seed uint64) (*Topology, error) {
	if ts == nil || ts.Kind == "" || ts.Kind == TopoComplete {
		return nil, nil
	}
	if err := ts.Validate(n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
	var g *graph.Graph
	switch ts.Kind {
	case TopoGnp:
		g = graph.Gnp(n, ts.Param, rng)
	case TopoRGG:
		g = graph.RandomGeometric(n, ts.Param, rng)
	case TopoCM:
		degs := make([]int, n)
		for i := range degs {
			degs[i] = int(ts.Param)
		}
		var err error
		g, err = graph.ConfigurationModel(degs, rng)
		if err != nil {
			return nil, err
		}
	}
	return NewTopology(g), nil
}

// Realize builds the per-run topology for a trial with the given run
// seed. The realization stream is decorrelated from both the protocol
// RNG (seeded with the raw run seed) and the fault-injection stream
// (which mixes with different constants — see scenario.Prepared) by a
// SplitMix-style scramble, so topology, faults, and protocol draws are
// independent even though all three derive from one run seed.
func (ts *TopologySpec) Realize(n int, runSeed uint64) (*Topology, error) {
	if ts == nil {
		return nil, nil
	}
	mix := (runSeed + 0x9e3779b97f4a7c15) * 0xd1342543de82ef95
	return ts.Build(n, mix^0x94d049bb133111eb)
}
