package core

import (
	"testing"

	"repro/internal/stats"
)

// The multivariate samplers behind the batch engine's plans carry two
// kinds of obligation: hard invariants (counts sum to the number of
// draws, never exceed capacities, respect zero weights) and the law
// itself (the conditional-binomial and conditional-hypergeometric
// chains must reproduce the joint distributions of brute-force
// sequential draws). The invariants are property-tested and fuzzed;
// the laws are pinned by two-sample chi-square tests at α = 0.001
// against literal urn simulations.

const lawTrials = 4000

// chiSquareCompare runs a two-sample homogeneity test on two count
// histograms and fails if the distributions differ at α = 0.001.
func chiSquareCompare(t *testing.T, label string, a, b []int64) {
	t.Helper()
	stat, df := stats.ChiSquareTwoSample(a, b)
	if df == 0 {
		t.Fatalf("%s: chi-square test degenerate (df = 0): histograms %v vs %v", label, a, b)
	}
	if crit := stats.ChiSquareCritical(df, 0.001); stat > crit {
		t.Errorf("%s: chi-square stat %.2f > critical %.2f (df %d)\n sampler: %v\n brute:   %v",
			label, stat, crit, df, a, b)
	}
}

func TestMultinomialBucketsProperties(t *testing.T) {
	t.Parallel()
	rng := NewRNG(11)
	weightSets := [][]int64{
		{1},
		{3, 5, 2},
		{0, 7, 0, 1},
		{1, 0, 0, 0, 1},
		{1000000, 1},
		{0, 0, 5},
	}
	var out []int64
	for _, weights := range weightSets {
		for _, k := range []int64{0, 1, 7, 64, 513} {
			out = rng.MultinomialBuckets(k, weights, out)
			if len(out) != len(weights) {
				t.Fatalf("weights %v, k=%d: got %d counts", weights, k, len(out))
			}
			var sum int64
			for i, c := range out {
				if c < 0 {
					t.Fatalf("weights %v, k=%d: negative count %d in bucket %d", weights, k, c, i)
				}
				if weights[i] == 0 && c != 0 {
					t.Fatalf("weights %v, k=%d: zero-weight bucket %d received %d draws", weights, k, i, c)
				}
				sum += c
			}
			if sum != k {
				t.Fatalf("weights %v, k=%d: counts sum to %d", weights, k, sum)
			}
		}
	}
	// k = 0 with all-zero weights is legal (an empty plan).
	out = rng.MultinomialBuckets(0, []int64{0, 0}, out)
	for _, c := range out {
		if c != 0 {
			t.Fatalf("k=0 over zero weights produced count %d", c)
		}
	}
}

func TestHypergeometricBucketsProperties(t *testing.T) {
	t.Parallel()
	rng := NewRNG(13)
	capacitySets := [][]int64{
		{4},
		{4, 7, 3},
		{0, 5, 0, 2},
		{1, 1, 1, 1, 1},
		{100, 1},
	}
	var out []int64
	for _, caps := range capacitySets {
		var total int64
		for _, c := range caps {
			total += c
		}
		for _, draws := range []int64{0, 1, total / 2, total} {
			out = rng.HypergeometricBuckets(draws, caps, out)
			if len(out) != len(caps) {
				t.Fatalf("caps %v, draws=%d: got %d counts", caps, draws, len(out))
			}
			var sum int64
			for i, c := range out {
				if c < 0 || c > caps[i] {
					t.Fatalf("caps %v, draws=%d: bucket %d count %d outside [0, %d]",
						caps, draws, i, c, caps[i])
				}
				sum += c
			}
			if sum != draws {
				t.Fatalf("caps %v, draws=%d: counts sum to %d", caps, draws, sum)
			}
			if draws == total {
				for i, c := range out {
					if c != caps[i] {
						t.Fatalf("caps %v: exhaustive draw left bucket %d at %d", caps, i, c)
					}
				}
			}
		}
	}
}

// TestBinomialLawMatch pins the scalar binomial sampler against the
// literal coin-flipping experiment it replaces.
func TestBinomialLawMatch(t *testing.T) {
	t.Parallel()
	const n, p = 10, 0.3
	rngA, rngB := NewRNG(101), NewRNG(202)
	histA := make([]int64, n+1)
	histB := make([]int64, n+1)
	for trial := 0; trial < lawTrials; trial++ {
		histA[rngA.Binomial(n, p)]++
		var brute int64
		for i := 0; i < n; i++ {
			if rngB.Float64() < p {
				brute++
			}
		}
		histB[brute]++
	}
	chiSquareCompare(t, "Binomial(10, 0.3)", histA, histB)
}

// TestHypergeometricLawMatch pins the scalar hypergeometric sampler
// against a literal urn: 6 draws without replacement from 14 items of
// which 5 are marked.
func TestHypergeometricLawMatch(t *testing.T) {
	t.Parallel()
	const draws, marked, total = 6, 5, 14
	rngA, rngB := NewRNG(303), NewRNG(404)
	histA := make([]int64, draws+1)
	histB := make([]int64, draws+1)
	urn := make([]int, total)
	for trial := 0; trial < lawTrials; trial++ {
		histA[rngA.Hypergeometric(draws, marked, total)]++
		for i := range urn {
			urn[i] = 0
			if i < marked {
				urn[i] = 1
			}
		}
		var brute int64
		for i := 0; i < draws; i++ {
			j := i + rngB.IntN(total-i)
			urn[i], urn[j] = urn[j], urn[i]
			brute += int64(urn[i])
		}
		histB[brute]++
	}
	chiSquareCompare(t, "Hypergeometric(6, 5, 14)", histA, histB)
}

// TestMultinomialBucketsLawMatch pins the conditional-binomial chain
// against brute-force sequential categorical draws: per bucket, the
// marginal count distribution over many trials must match.
func TestMultinomialBucketsLawMatch(t *testing.T) {
	t.Parallel()
	weights := []int64{3, 5, 2}
	const k = 8
	var total int64
	for _, w := range weights {
		total += w
	}
	rngA, rngB := NewRNG(505), NewRNG(606)
	histA := make([][]int64, len(weights))
	histB := make([][]int64, len(weights))
	for i := range histA {
		histA[i] = make([]int64, k+1)
		histB[i] = make([]int64, k+1)
	}
	var out, brute []int64
	for trial := 0; trial < lawTrials; trial++ {
		out = rngA.MultinomialBuckets(k, weights, out)
		for i, c := range out {
			histA[i][c]++
		}
		brute = brute[:0]
		brute = append(brute, make([]int64, len(weights))...)
		for d := 0; d < k; d++ {
			v := rngB.Int64N(total)
			for i, w := range weights {
				if v < w {
					brute[i]++
					break
				}
				v -= w
			}
		}
		for i, c := range brute {
			histB[i][c]++
		}
	}
	for i := range weights {
		chiSquareCompare(t, "MultinomialBuckets bucket "+string(rune('0'+i)), histA[i], histB[i])
	}
}

// TestHypergeometricBucketsLawMatch pins the conditional chain against
// a literal labeled urn sampled without replacement.
func TestHypergeometricBucketsLawMatch(t *testing.T) {
	t.Parallel()
	caps := []int64{4, 7, 3}
	const draws = 6
	var total int
	for _, c := range caps {
		total += int(c)
	}
	rngA, rngB := NewRNG(707), NewRNG(808)
	histA := make([][]int64, len(caps))
	histB := make([][]int64, len(caps))
	for i := range histA {
		histA[i] = make([]int64, draws+1)
		histB[i] = make([]int64, draws+1)
	}
	urn := make([]int, total)
	var out []int64
	brute := make([]int64, len(caps))
	for trial := 0; trial < lawTrials; trial++ {
		out = rngA.HypergeometricBuckets(draws, caps, out)
		for i, c := range out {
			histA[i][c]++
		}
		pos := 0
		for label, c := range caps {
			for j := int64(0); j < c; j++ {
				urn[pos] = label
				pos++
			}
		}
		for i := range brute {
			brute[i] = 0
		}
		for i := 0; i < draws; i++ {
			j := i + rngB.IntN(total-i)
			urn[i], urn[j] = urn[j], urn[i]
			brute[urn[i]]++
		}
		for i, c := range brute {
			histB[i][c]++
		}
	}
	for i := range caps {
		chiSquareCompare(t, "HypergeometricBuckets bucket "+string(rune('0'+i)), histA[i], histB[i])
	}
}

// FuzzBucketSamplers fuzzes the hard invariants of both multivariate
// samplers over arbitrary weight vectors, draw counts and seeds:
// counts are non-negative, sum exactly to the number of draws, respect
// zero weights, and (hypergeometric) never exceed capacities.
func FuzzBucketSamplers(f *testing.F) {
	f.Add(uint64(1), uint16(8), []byte{3, 5, 2})
	f.Add(uint64(42), uint16(0), []byte{0, 0})
	f.Add(uint64(7), uint16(500), []byte{255, 0, 1, 17})
	f.Add(uint64(99), uint16(1), []byte{1})
	f.Fuzz(func(t *testing.T, seed uint64, k uint16, raw []byte) {
		if len(raw) == 0 || len(raw) > 32 {
			t.Skip()
		}
		weights := make([]int64, len(raw))
		var total int64
		for i, b := range raw {
			weights[i] = int64(b)
			total += int64(b)
		}
		rng := NewRNG(seed)
		draws := int64(k)
		if total > 0 {
			out := rng.MultinomialBuckets(draws, weights, nil)
			var sum int64
			for i, c := range out {
				if c < 0 {
					t.Fatalf("multinomial: negative count %d", c)
				}
				if weights[i] == 0 && c != 0 {
					t.Fatalf("multinomial: zero-weight bucket %d got %d", i, c)
				}
				sum += c
			}
			if sum != draws {
				t.Fatalf("multinomial: counts sum %d, want %d", sum, draws)
			}
		}
		if draws > total {
			draws = total
		}
		out := rng.HypergeometricBuckets(draws, weights, nil)
		var sum int64
		for i, c := range out {
			if c < 0 || c > weights[i] {
				t.Fatalf("hypergeometric: bucket %d count %d outside [0, %d]", i, c, weights[i])
			}
			sum += c
		}
		if sum != draws {
			t.Fatalf("hypergeometric: counts sum %d, want %d", sum, draws)
		}
	})
}
