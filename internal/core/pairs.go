package core

import "math/bits"

// pairCount returns the number of unordered pairs over n nodes,
// |E_I| = n(n−1)/2.
func pairCount(n int) int { return n * (n - 1) / 2 }

// pairIndex maps the unordered pair {u, v}, u ≠ v, into the dense
// upper-triangular index space [0, n(n−1)/2).
func pairIndex(n, u, v int) int {
	if u > v {
		u, v = v, u
	}
	// Row u starts after rows 0..u−1, which hold (n−1) + (n−2) + …
	// entries.
	return u*(2*n-u-1)/2 + (v - u - 1)
}

// pairFromIndex inverts pairIndex. O(√n) via row scan is avoided with a
// closed form; used by exhaustive enumeration and tests.
func pairFromIndex(n, idx int) (u, v int) {
	u = 0
	rowLen := n - 1
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + idx
}

// bitset is a fixed-capacity bit vector used for edge states.
type bitset []uint64

func newBitset(bits int) bitset {
	return make(bitset, (bits+63)/64)
}

func (b bitset) get(i int) bool {
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

func (b bitset) set(i int, v bool) {
	if v {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) popcount() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}
