package core

import (
	"strings"
	"testing"
)

// epidemicProtocol is a one-way epidemic with node 0 seeded by the
// test: a simple, always-converging workload.
func epidemicProtocol() (*Protocol, Detector) {
	p := MustProtocol("epi", []string{"b", "a"}, 0, nil, []Rule{
		{A: 1, B: 0, Edge: false, OutA: 1, OutB: 1},
	})
	det := Detector{
		Trigger: TriggerEffective,
		Stable:  func(cfg *Config) bool { return cfg.Count(0) == 0 },
	}
	return p, det
}

func seededInitial(p *Protocol, n int) *Config {
	cfg := NewConfig(p, n)
	cfg.SetNode(0, 1)
	return cfg
}

func TestRunConverges(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	res, err := Run(p, 20, Options{Seed: 1, Detector: det, Initial: seededInitial(p, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("epidemic did not converge")
	}
	if res.EffectiveSteps != 19 {
		t.Fatalf("effective steps %d, want 19", res.EffectiveSteps)
	}
	if res.Final.Count(0) != 0 {
		t.Fatal("final config still has uninfected nodes")
	}
	if res.EdgeChanges != 0 {
		t.Fatal("epidemic should not touch edges")
	}
}

func TestRunDeterministic(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	run := func() Result {
		res, err := Run(p, 30, Options{Seed: 99, Detector: det, Initial: seededInitial(p, 30)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.ConvergenceTime != b.ConvergenceTime || a.EffectiveSteps != b.EffectiveSteps {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(p, 30, Options{Seed: 100, Detector: det, Initial: seededInitial(p, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Steps == a.Steps && c.EffectiveSteps == a.EffectiveSteps && c.ConvergenceTime == a.ConvergenceTime {
		t.Log("different seeds produced identical metrics (possible but unlikely)")
	}
}

func TestRunMaxStepsAborts(t *testing.T) {
	t.Parallel()
	// A protocol that can never satisfy its detector.
	p := MustProtocol("spin", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1},
		{A: 1, B: 1, Edge: false, OutA: 0, OutB: 0},
	})
	det := Detector{Trigger: TriggerEffective, Stable: func(cfg *Config) bool { return false }}
	res, err := Run(p, 6, Options{Seed: 1, Detector: det, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("impossible detector converged")
	}
	if res.Steps != 500 {
		t.Fatalf("aborted at %d steps, want 500", res.Steps)
	}
}

func TestRunInputValidation(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	if _, err := Run(p, 0, Options{Detector: det}); err == nil {
		t.Fatal("n=0 accepted")
	}
	other := MustProtocol("other", []string{"x"}, 0, nil, nil)
	if _, err := Run(p, 4, Options{Detector: det, Initial: NewConfig(other, 4)}); err == nil {
		t.Fatal("foreign initial configuration accepted")
	} else if !strings.Contains(err.Error(), "belongs to protocol") {
		t.Fatalf("unexpected error %v", err)
	}
	if _, err := Run(p, 4, Options{Detector: det, Initial: NewConfig(p, 5)}); err == nil {
		t.Fatal("wrong-size initial configuration accepted")
	}
}

func TestRunSingleNode(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	res, err := Run(p, 1, Options{Seed: 1, Detector: det, Initial: seededInitial(p, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("single node: %+v", res)
	}
}

func TestRunAlreadyStable(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	initial := NewConfig(p, 5)
	for u := 0; u < 5; u++ {
		initial.SetNode(u, 1)
	}
	res, err := Run(p, 5, Options{Seed: 1, Detector: det, Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps != 0 || res.ConvergenceTime != 0 {
		t.Fatalf("already-stable run: %+v", res)
	}
}

func TestDefaultDetectorIsQuiescence(t *testing.T) {
	t.Parallel()
	// Maximum matching quiesces; the default detector must find it.
	p := MustProtocol("mm", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	res, err := Run(p, 10, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("quiescence not detected")
	}
	if res.Final.Count(0) > 1 {
		t.Fatalf("%d unmatched nodes", res.Final.Count(0))
	}
}

type countingObserver struct {
	steps int
	edges int
}

func (o *countingObserver) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *Config) {
	o.steps++
	if edgeChanged {
		o.edges++
	}
}

func TestObserverReceivesEffectiveSteps(t *testing.T) {
	t.Parallel()
	p := MustProtocol("mm", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	obs := &countingObserver{}
	res, err := Run(p, 12, Options{Seed: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if int64(obs.steps) != res.EffectiveSteps {
		t.Fatalf("observer saw %d steps, engine counted %d", obs.steps, res.EffectiveSteps)
	}
	if int64(obs.edges) != res.EdgeChanges {
		t.Fatalf("observer saw %d edge changes, engine counted %d", obs.edges, res.EdgeChanges)
	}
}

func TestConvergenceTimeTracksOutputOnly(t *testing.T) {
	t.Parallel()
	// Qout = {b}: node-state flips into/out of Qout move the
	// convergence clock, and so do edges between two b nodes — but an
	// edge whose endpoint is a non-output a must not.
	p := MustProtocol("qout", []string{"a", "b"}, 0, []State{1}, []Rule{
		// Activates an edge while both endpoints remain non-output.
		{A: 0, B: 0, Edge: false, OutA: 0, OutB: 0, OutEdge: true},
		// Converts over an active edge: output membership changes.
		{A: 0, B: 0, Edge: true, OutA: 1, OutB: 1, OutEdge: true},
	})
	det := Detector{Trigger: TriggerEffective, Stable: func(cfg *Config) bool {
		return cfg.Count(0) == 0
	}}
	res, err := Run(p, 2, Options{Seed: 1, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Step 1 activates the a–a edge (no output change); step 2
	// converts both to b (output change).
	if res.ConvergenceTime != 2 || res.Steps != 2 {
		t.Fatalf("ConvergenceTime=%d Steps=%d, want 2/2", res.ConvergenceTime, res.Steps)
	}
}

func TestStopAbortsRun(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	res, err := Run(p, 64, Options{Seed: 1, Detector: det, Stop: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || !res.Stopped {
		t.Fatalf("Converged=%v Stopped=%v, want false/true", res.Converged, res.Stopped)
	}
	// A nil Stop (the default) must leave runs untouched.
	res, err = Run(p, 8, Options{Seed: 1, Detector: det, Initial: seededInitial(p, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped {
		t.Fatal("nil Stop marked the run stopped")
	}
}

func TestDefaultMaxSteps(t *testing.T) {
	t.Parallel()
	if DefaultMaxSteps(2) <= 0 {
		t.Fatal("tiny n budget not positive")
	}
	if DefaultMaxSteps(100_000) != 1<<40 {
		t.Fatal("budget not capped")
	}
	small, large := DefaultMaxSteps(10), DefaultMaxSteps(100)
	if small >= large {
		t.Fatal("budget not monotone")
	}
}

func TestDefaultCheckIntervalClamped(t *testing.T) {
	t.Parallel()
	if got := DefaultCheckInterval(4); got != 1024 {
		t.Fatalf("tiny-n interval %d, want the 1024 floor", got)
	}
	if got := DefaultCheckInterval(100); got != 100*100 {
		t.Fatalf("mid-n interval %d, want n²", got)
	}
	// The ceiling is the bugfix: an uncapped n² default at large n
	// (2⁴⁰ steps at n = 2²⁰) meant the baseline engine effectively
	// never polled Options.Stop, so campaign timeouts and context
	// cancellation could not reach long baseline runs.
	if got := DefaultCheckInterval(1 << 20); got != 1<<22 {
		t.Fatalf("large-n interval %d, want the 1<<22 ceiling", got)
	}
}

// TestStopReachesLargeBaselineRuns exercises the DefaultCheckInterval
// ceiling end to end: a large-population baseline run with a hostile
// step budget must observe a Stop request after at most one capped
// interval, not after n² steps.
func TestStopReachesLargeBaselineRuns(t *testing.T) {
	t.Parallel()
	p, _ := epidemicProtocol()
	const n = 5000 // n² ≈ 6× the interval ceiling
	polls := 0
	res, err := Run(p, n, Options{
		Seed:     1,
		Engine:   EngineBaseline,
		Detector: Detector{Trigger: TriggerInterval, Stable: func(*Config) bool { return false }},
		MaxSteps: 1 << 62,
		Stop: func() bool {
			polls++
			return polls > 1 // survive the pre-loop poll, stop at the next
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("run not stopped: %+v", res)
	}
	if want := DefaultCheckInterval(n); res.Steps != want {
		t.Fatalf("stopped after %d steps, want one capped interval (%d)", res.Steps, want)
	}
}

func TestRunDynValidation(t *testing.T) {
	t.Parallel()
	dp := &DynProtocol{
		Name:    "noop",
		Initial: 0,
		Apply: func(a, b DynState, edge bool, rng *RNG) (DynState, DynState, bool, bool) {
			return a, b, edge, false
		},
	}
	if _, err := RunDyn(dp, 0, DynOptions{Stable: func(*DynConfig) bool { return true }}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RunDyn(dp, 3, DynOptions{}); err == nil {
		t.Fatal("missing Stable accepted")
	}
}

func TestRunDynConverges(t *testing.T) {
	t.Parallel()
	// Dynamic one-to-one elimination: state 1 = leader, 0 = follower.
	dp := &DynProtocol{
		Name:    "dyn-elim",
		Initial: 1,
		Apply: func(a, b DynState, edge bool, rng *RNG) (DynState, DynState, bool, bool) {
			if a == 1 && b == 1 {
				return 1, 0, edge, true
			}
			return a, b, edge, false
		},
	}
	res, err := RunDyn(dp, 16, DynOptions{
		Seed:                3,
		CheckEveryEffective: true,
		Stable: func(cfg *DynConfig) bool {
			leaders := 0
			for u := 0; u < cfg.N(); u++ {
				if cfg.Node(u) == 1 {
					leaders++
				}
			}
			return leaders == 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.EffectiveSteps != 15 {
		t.Fatalf("dyn run: %+v", res)
	}
}

func TestRunErrorsAreErrors(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	if _, err := Run(p, -3, Options{Detector: det}); err == nil {
		t.Fatal("negative n must error")
	}
}
