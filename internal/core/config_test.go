package core

import (
	"testing"
	"testing/quick"
)

func testProtocol(t *testing.T) *Protocol {
	t.Helper()
	return MustProtocol("t", []string{"a", "b", "c"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 2, OutEdge: true}, // coin
		{A: 1, B: 2, Edge: true, OutA: 2, OutB: 2, OutEdge: false},
	})
}

func TestConfigInitialState(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 7)
	if cfg.N() != 7 {
		t.Fatalf("N = %d", cfg.N())
	}
	if cfg.Count(0) != 7 || cfg.Count(1) != 0 {
		t.Fatalf("counts %d/%d", cfg.Count(0), cfg.Count(1))
	}
	if cfg.ActiveEdges() != 0 {
		t.Fatal("initial config has active edges")
	}
	for u := 0; u < 7; u++ {
		if cfg.Degree(u) != 0 {
			t.Fatalf("node %d degree %d", u, cfg.Degree(u))
		}
	}
}

func TestSetNodeMaintainsCounts(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 4)
	cfg.SetNode(0, 1)
	cfg.SetNode(1, 1)
	cfg.SetNode(0, 2)
	if cfg.Count(0) != 2 || cfg.Count(1) != 1 || cfg.Count(2) != 1 {
		t.Fatalf("counts %d/%d/%d", cfg.Count(0), cfg.Count(1), cfg.Count(2))
	}
	if cfg.Count(99) != 0 {
		t.Fatal("out-of-range count not zero")
	}
}

func TestSetEdgeMaintainsDegrees(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 5)
	cfg.SetEdge(1, 3, true)
	cfg.SetEdge(3, 1, true) // idempotent, reversed orientation
	if cfg.Degree(1) != 1 || cfg.Degree(3) != 1 {
		t.Fatalf("degrees %d/%d", cfg.Degree(1), cfg.Degree(3))
	}
	if !cfg.Edge(3, 1) {
		t.Fatal("edge not symmetric")
	}
	cfg.SetEdge(1, 3, false)
	if cfg.Degree(1) != 0 || cfg.ActiveEdges() != 0 {
		t.Fatal("deactivation did not restore degrees")
	}
}

func TestApplyCoinAssignsBothWays(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	rng := NewRNG(1)
	gotB0 := false
	gotB1 := false
	for trial := 0; trial < 200 && !(gotB0 && gotB1); trial++ {
		cfg := NewConfig(p, 2)
		effective, edgeChanged := cfg.Apply(0, 1, rng)
		if !effective || !edgeChanged {
			t.Fatal("coin rule must be effective and change the edge")
		}
		switch {
		case cfg.Node(0) == 1 && cfg.Node(1) == 2:
			gotB0 = true
		case cfg.Node(0) == 2 && cfg.Node(1) == 1:
			gotB1 = true
		default:
			t.Fatalf("unexpected outcome (%d,%d)", cfg.Node(0), cfg.Node(1))
		}
	}
	if !gotB0 || !gotB1 {
		t.Fatal("symmetry-breaking coin never produced one of the orientations")
	}
}

func TestApplyIneffective(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 3)
	cfg.SetNode(0, 2)
	cfg.SetNode(1, 2)
	effective, edgeChanged := cfg.Apply(0, 1, NewRNG(1))
	if effective || edgeChanged {
		t.Fatal("ineffective pair reported as effective")
	}
}

// TestApplyInvariants drives random interactions and checks the
// aggregate invariants: state counts always sum to n and per-node
// degrees always match the edge bitset.
func TestApplyInvariants(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	f := func(seed uint64) bool {
		const n = 9
		cfg := NewConfig(p, n)
		rng := NewRNG(seed)
		for step := 0; step < 300; step++ {
			u, v := rng.Pair(n)
			cfg.Apply(u, v, rng)
		}
		total := 0
		for s := 0; s < p.Size(); s++ {
			total += cfg.Count(State(s))
		}
		if total != n {
			return false
		}
		for u := 0; u < n; u++ {
			deg := 0
			for v := 0; v < n; v++ {
				if v != u && cfg.Edge(u, v) {
					deg++
				}
			}
			if deg != cfg.Degree(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 4)
	cfg.SetEdge(0, 1, true)
	cp := cfg.Clone()
	cp.SetNode(2, 1)
	cp.SetEdge(0, 1, false)
	if cfg.Node(2) != 0 || !cfg.Edge(0, 1) {
		t.Fatal("clone mutations leaked into the original")
	}
	if cp.Protocol() != p {
		t.Fatal("clone lost its protocol")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	a := NewConfig(p, 4)
	b := NewConfig(p, 4)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configurations have different fingerprints")
	}
	b.SetNode(3, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("node-state difference not fingerprinted")
	}
	c := NewConfig(p, 4)
	c.SetEdge(1, 2, true)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("edge difference not fingerprinted")
	}
}

func TestQuiescence(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 3)
	if cfg.Quiescent() {
		t.Fatal("initial config with applicable rules reported quiescent")
	}
	for u := 0; u < 3; u++ {
		cfg.SetNode(u, 2)
	}
	if !cfg.Quiescent() || !cfg.EdgeQuiescent() {
		t.Fatal("all-c config should be fully quiescent")
	}
	// (a,a,0) changes both node states and the edge.
	cfg.SetNode(0, 0)
	cfg.SetNode(1, 0)
	if cfg.EdgeQuiescent() {
		t.Fatal("config with an applicable edge rule reported edge-quiescent")
	}
}

func TestActiveNeighbors(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 5)
	cfg.SetEdge(2, 0, true)
	cfg.SetEdge(2, 4, true)
	got := cfg.ActiveNeighbors(2, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("neighbors %v", got)
	}
}

func TestConfigString(t *testing.T) {
	t.Parallel()
	p := testProtocol(t)
	cfg := NewConfig(p, 3)
	cfg.SetNode(1, 1)
	cfg.SetEdge(0, 2, true)
	s := cfg.String()
	want := "[a b a] {0-2}"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}
