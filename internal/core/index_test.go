package core

import (
	"testing"
)

// indexProtocols is a battery of small protocols exercising every
// transition flavor the index must track: node-only changes, edge
// activation/deactivation, probabilistic (PREL) branches, and
// symmetry-breaking coins.
func indexProtocols(t *testing.T) map[string]*Protocol {
	t.Helper()
	return map[string]*Protocol{
		"epidemic": MustProtocol("epi", []string{"b", "a"}, 1, nil, []Rule{
			{A: 1, B: 0, Edge: false, OutA: 1, OutB: 1},
		}),
		"matching": MustProtocol("match", []string{"q0", "m"}, 0, nil, []Rule{
			{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
		}),
		"toggle": MustProtocol("toggle", []string{"a", "b"}, 0, nil, []Rule{
			{A: 0, B: 0, Edge: false, OutA: 0, OutB: 1, OutEdge: true},
			{A: 0, B: 1, Edge: true, OutA: 1, OutB: 1, OutEdge: false},
			{A: 1, B: 1, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
		}),
		"prel": MustProtocol("prel", []string{"a", "b", "c"}, 0, nil, []Rule{
			{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true,
				Alt: true, AltA: 2, AltB: 0, AltEdge: false},
			{A: 1, B: 2, Edge: false, OutA: 2, OutB: 2},
		}),
	}
}

// verifyIndex cross-checks every O(1) answer of the index against the
// brute-force O(n²) scans over the configuration.
func verifyIndex(t *testing.T, ix *PairIndex, cfg *Config) {
	t.Helper()
	n := cfg.N()
	enabled, edgeEnabled := 0, 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			eff := cfg.Protocol().EffectiveOn(cfg.Node(u), cfg.Node(v), cfg.Edge(u, v))
			if eff {
				enabled++
			}
			if cfg.Protocol().EdgeEffectiveOn(cfg.Node(u), cfg.Node(v), cfg.Edge(u, v)) {
				edgeEnabled++
			}
			if ix.Contains(u, v) != eff {
				t.Fatalf("pair {%d,%d}: index says %v, table says %v", u, v, ix.Contains(u, v), eff)
			}
		}
	}
	if ix.Enabled() != enabled {
		t.Fatalf("Enabled() = %d, brute force %d", ix.Enabled(), enabled)
	}
	if ix.EdgeEnabled() != edgeEnabled {
		t.Fatalf("EdgeEnabled() = %d, brute force %d", ix.EdgeEnabled(), edgeEnabled)
	}
	if ix.Quiescent() != cfg.Quiescent() {
		t.Fatalf("Quiescent() = %v, scan %v", ix.Quiescent(), cfg.Quiescent())
	}
	if ix.EdgeQuiescent() != cfg.EdgeQuiescent() {
		t.Fatalf("EdgeQuiescent() = %v, scan %v", ix.EdgeQuiescent(), cfg.EdgeQuiescent())
	}
}

// TestPairIndexTracksApply drives each protocol with random
// interactions through Config.Apply + PairIndex.Update and verifies
// the index against the brute-force scans after every step.
func TestPairIndexTracksApply(t *testing.T) {
	t.Parallel()
	for name, p := range indexProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 12
			rng := NewRNG(7)
			cfg := NewConfig(p, n)
			ix := NewPairIndex(cfg)
			verifyIndex(t, ix, cfg)
			for step := 0; step < 2000; step++ {
				u, v := rng.Pair(n)
				beforeU, beforeV := cfg.Node(u), cfg.Node(v)
				effective, _ := cfg.Apply(u, v, rng)
				if effective {
					// Mirror the engine's branch: edge-only transitions
					// take the O(1) path.
					if cfg.Node(u) == beforeU && cfg.Node(v) == beforeV {
						ix.UpdateEdge(u, v)
					} else {
						ix.Update(u, v)
					}
					verifyIndex(t, ix, cfg)
				}
			}
		})
	}
}

// TestPairIndexBuildFromArbitraryConfig builds indexes over randomized
// initial configurations (states and edges set directly) and verifies
// them, covering the construction path rather than the update path.
func TestPairIndexBuildFromArbitraryConfig(t *testing.T) {
	t.Parallel()
	for name, p := range indexProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := NewRNG(11)
			for trial := 0; trial < 20; trial++ {
				n := 2 + rng.IntN(14)
				cfg := NewConfig(p, n)
				for u := 0; u < n; u++ {
					cfg.SetNode(u, State(rng.IntN(p.Size())))
				}
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						cfg.SetEdge(u, v, rng.Coin())
					}
				}
				verifyIndex(t, NewPairIndex(cfg), cfg)
			}
		})
	}
}

// TestPairIndexSample checks that Sample only returns enabled pairs
// and visits the whole enabled set in both orientations.
func TestPairIndexSample(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["matching"]
	const n = 8
	cfg := NewConfig(p, n)
	ix := NewPairIndex(cfg)
	if ix.Enabled() != pairCount(n) {
		t.Fatalf("all-q0 matching should enable every pair, got %d", ix.Enabled())
	}
	rng := NewRNG(3)
	seen := make(map[[2]int]bool)
	for i := 0; i < 4000; i++ {
		u, v := ix.Sample(rng)
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			t.Fatalf("bad pair (%d,%d)", u, v)
		}
		if !ix.Contains(u, v) {
			t.Fatalf("sampled disabled pair (%d,%d)", u, v)
		}
		seen[[2]int{u, v}] = true
	}
	// Every ordered orientation of every pair should appear.
	if want := 2 * pairCount(n); len(seen) != want {
		t.Fatalf("sampled %d ordered pairs, want %d", len(seen), want)
	}
}
