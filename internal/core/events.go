package core

import "fmt"

// EventKind names the record types of the structured run event stream.
type EventKind uint8

// Event kinds. A run with an EventSink attached emits exactly one
// EventRunStart, then a deterministic interleaving of step, skip,
// fault and detect events, then exactly one EventRunEnd — the same
// interleaving every time for equal (protocol, n, seed, scheduler,
// engine, faults), because emission never consumes randomness.
const (
	// EventRunStart opens a run: protocol, population, seed, engine and
	// step budget, with Cfg pointing at the initial configuration.
	EventRunStart EventKind = iota + 1
	// EventStep is one effective interaction: the pair, both endpoint
	// states before and after, and — when the edge flipped — its new
	// state. Ineffective steps emit nothing; their positions are
	// recoverable from the absolute Step numbers (and, on the indexed
	// engines, from the EventSkip batches).
	EventStep
	// EventSkip is a geometric-skip batch on the indexed engines: the
	// Skipped draws starting at Step all hit disabled pairs and were
	// collapsed into one geometric draw instead of being simulated.
	// Expanding each batch reconstructs exact step positions. The
	// baseline engine simulates every draw individually and therefore
	// never emits skip events.
	EventSkip
	// EventFaultFired marks one scenario fault firing (Label is the
	// fault kind; U and V the victims, −1 when absent). The writes it
	// caused follow as EventFaultNode / EventFaultEdge records.
	EventFaultFired
	// EventFaultNode is an out-of-band node-state write applied through
	// a Mutator (crash sink entry, state reset).
	EventFaultNode
	// EventFaultEdge is an out-of-band edge write applied through a
	// Mutator (adversarial edge deletion, crash edge removal).
	EventFaultEdge
	// EventDetect is one detector evaluation and its verdict.
	EventDetect
	// EventRunEnd closes a run with the outcome summary; Cfg points at
	// the final configuration.
	EventRunEnd
)

// String returns the kind's NDJSON record name.
func (k EventKind) String() string {
	switch k {
	case EventRunStart:
		return "start"
	case EventStep:
		return "step"
	case EventSkip:
		return "skip"
	case EventFaultFired:
		return "fault"
	case EventFaultNode:
		return "fault_node"
	case EventFaultEdge:
		return "fault_edge"
	case EventDetect:
		return "detect"
	case EventRunEnd:
		return "end"
	default:
		return fmt.Sprintf("event#%d", int(k))
	}
}

// Event is one record of the structured run event stream. It is a
// single flat struct rather than a per-kind hierarchy so the engines
// can emit without allocating: the *Event passed to a sink is scratch
// space reused between calls, so sinks that retain events must copy
// the struct (and must not retain Cfg, which is the engine's live
// configuration, valid only for the duration of the callback).
//
// Field validity by kind:
//
//	RunStart   Protocol, N, Seed, Engine, MaxSteps, Cfg (initial)
//	Step       Step, U, V, BeforeU/V, AfterU/V, EdgeChanged (+Edge), Cfg
//	Skip       Step (first skipped draw), Skipped (batch length)
//	FaultFired Step, Label, U, V (−1 when absent), Cfg
//	FaultNode  Step, U, BeforeU, AfterU, Cfg
//	FaultEdge  Step, U, V, Edge (new state), Cfg
//	Detect     Step (the step the verdict applies to), Stable, Cfg
//	RunEnd     Step (total steps), Converged, EffectiveSteps,
//	           EdgeChanges, ConvergenceTime, plus the RunStart
//	           envelope fields, Cfg (final)
type Event struct {
	Kind EventKind
	Step int64

	// Effective-step and fault-write payload.
	U, V             int
	BeforeU, BeforeV State
	AfterU, AfterV   State
	// EdgeChanged reports whether the step flipped the edge {U, V};
	// Edge is the edge's new state when it did (and the written state
	// for EventFaultEdge).
	EdgeChanged bool
	Edge        bool

	// Skipped is the EventSkip batch length: draws at positions
	// Step, Step+1, …, Step+Skipped−1 hit disabled pairs.
	Skipped int64

	// Label is the EventFaultFired fault kind ("crash", "edge",
	// "reset" for scenario plans; free-form for custom injectors).
	Label string

	// Stable is the EventDetect verdict.
	Stable bool

	// Run envelope (EventRunStart / EventRunEnd).
	Protocol        string
	N               int
	Seed            uint64
	Engine          Engine
	MaxSteps        int64
	Converged       bool
	EffectiveSteps  int64
	EdgeChanges     int64
	ConvergenceTime int64

	// Cfg is the engine's live configuration at the time of the event.
	// It must not be retained or mutated; copy what you need (e.g.
	// Clone, Fingerprint, or a snapshot) before returning.
	Cfg *Config
}

// EventSink receives the structured event stream of a run. Sinks are
// invoked synchronously from the engine's loop, in step order; a sink
// used across concurrent runs must be safe for concurrent use (the
// prebuilt sinks in internal/trace are not — one per run).
//
// Attaching a sink never changes a run's results: emission draws no
// randomness and mutates nothing, so a run with a sink is bit-identical
// to the same run without one. With no sink attached the engines pay a
// nil check and nothing else.
type EventSink interface {
	Event(ev *Event)
}

// emitDetect reports one detector evaluation to the sink. Top-level
// helpers (rather than closures) keep the no-sink hot path free of
// capture allocations.
func emitDetect(events EventSink, ev *Event, step int64, stable bool, cfg *Config) {
	if events == nil {
		return
	}
	*ev = Event{Kind: EventDetect, Step: step, Stable: stable, Cfg: cfg}
	events.Event(ev)
}

// emitSkip reports one geometric-skip batch: count draws starting at
// position first were collapsed without simulation.
func emitSkip(events EventSink, ev *Event, first, count int64) {
	if events == nil {
		return
	}
	*ev = Event{Kind: EventSkip, Step: first, Skipped: count}
	events.Event(ev)
}
