package core

import (
	"math"
	"testing"
)

func schedulerConfig(n int) *Config {
	p := MustProtocol("noop", []string{"a"}, 0, nil, nil)
	return NewConfig(p, n)
}

func TestUniformSchedulerDistribution(t *testing.T) {
	t.Parallel()
	const n = 8
	cfg := schedulerConfig(n)
	rng := NewRNG(17)
	var s UniformScheduler
	counts := make(map[int]int)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		u, v := s.Next(cfg, rng)
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			t.Fatalf("invalid pair (%d,%d)", u, v)
		}
		counts[pairIndex(n, u, v)]++
	}
	want := float64(draws) / float64(pairCount(n))
	for idx, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("pair %d drawn %d times, want ≈ %.0f", idx, c, want)
		}
	}
	if len(counts) != pairCount(n) {
		t.Fatalf("only %d of %d pairs drawn", len(counts), pairCount(n))
	}
}

func TestRoundRobinCoversAllPairsEachEpoch(t *testing.T) {
	t.Parallel()
	const n = 7
	cfg := schedulerConfig(n)
	s := &RoundRobinScheduler{}
	rng := NewRNG(1)
	for epoch := 0; epoch < 3; epoch++ {
		seen := make(map[int]bool, pairCount(n))
		for i := 0; i < pairCount(n); i++ {
			u, v := s.Next(cfg, rng)
			seen[pairIndex(n, u, v)] = true
		}
		if len(seen) != pairCount(n) {
			t.Fatalf("epoch %d covered %d of %d pairs", epoch, len(seen), pairCount(n))
		}
	}
}

func TestPermutationSchedulerEpochs(t *testing.T) {
	t.Parallel()
	const n = 6
	cfg := schedulerConfig(n)
	s := &PermutationScheduler{}
	rng := NewRNG(4)
	for epoch := 0; epoch < 4; epoch++ {
		seen := make(map[int]int, pairCount(n))
		for i := 0; i < pairCount(n); i++ {
			u, v := s.Next(cfg, rng)
			seen[pairIndex(n, u, v)]++
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("epoch %d drew pair %d %d times", epoch, idx, c)
			}
		}
	}
}

func TestBiasedSchedulerStillFair(t *testing.T) {
	t.Parallel()
	const n = 10
	cfg := schedulerConfig(n)
	s := &BiasedScheduler{Cut: 3, Epsilon: 0.05}
	rng := NewRNG(2)
	sawSuffix := false
	prefix := 0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		u, v := s.Next(cfg, rng)
		if u >= 3 || v >= 3 {
			sawSuffix = true
		} else {
			prefix++
		}
	}
	if !sawSuffix {
		t.Fatal("biased scheduler starved the suffix entirely (not fair)")
	}
	if float64(prefix)/draws < 0.80 {
		t.Fatalf("bias too weak: only %.1f%% prefix draws", 100*float64(prefix)/draws)
	}
}

func TestBiasedSchedulerDegenerateCut(t *testing.T) {
	t.Parallel()
	cfg := schedulerConfig(4)
	s := &BiasedScheduler{Cut: 0, Epsilon: 0.5}
	rng := NewRNG(3)
	for i := 0; i < 100; i++ {
		u, v := s.Next(cfg, rng)
		if u == v {
			t.Fatal("self-pair drawn")
		}
	}
	s2 := &BiasedScheduler{Cut: 99, Epsilon: 0.5}
	for i := 0; i < 100; i++ {
		u, v := s2.Next(cfg, rng)
		if u >= 4 || v >= 4 {
			t.Fatal("pair out of range with oversized cut")
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	t.Parallel()
	schedulers := []Scheduler{
		UniformScheduler{},
		&RoundRobinScheduler{},
		&PermutationScheduler{},
		&BiasedScheduler{},
	}
	seen := make(map[string]bool, len(schedulers))
	for _, s := range schedulers {
		name := s.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate scheduler name %q", name)
		}
		seen[name] = true
	}
}
