package core

import "testing"

// TestWeightedSchedulerBias: hot nodes must be drawn far more often
// than cold ones, and every node must keep positive probability
// (fairness).
func TestWeightedSchedulerBias(t *testing.T) {
	t.Parallel()
	const n = 16
	s := &WeightedScheduler{HotFraction: 0.25, Boost: 8}
	cfg := NewConfig(MustProtocol("w", []string{"a"}, 0, nil, nil), n)
	rng := NewRNG(1)
	hits := make([]int, n)
	const draws = 40000
	for i := 0; i < draws; i++ {
		u, v := s.Next(cfg, rng)
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			t.Fatalf("bad pair (%d, %d)", u, v)
		}
		hits[u]++
		hits[v]++
	}
	hot, cold := 0, 0
	for u, h := range hits {
		if h == 0 {
			t.Fatalf("node %d starved over %d draws", u, draws)
		}
		if u < n/4 {
			hot += h
		} else {
			cold += h
		}
	}
	// 4 hot nodes at 8× vs 12 cold at 1×: hot mass 32/44 ≈ 73% of
	// endpoint draws; allow a wide statistical band.
	frac := float64(hot) / float64(hot+cold)
	if frac < 0.6 || frac > 0.85 {
		t.Fatalf("hot endpoint fraction %.3f outside [0.6, 0.85]", frac)
	}
	if s.Name() != "weighted" {
		t.Fatalf("name %q", s.Name())
	}
}

// TestWeightedSchedulerEngineSelection: the weighted schedule is not
// uniform, so EngineAuto must fall back to the baseline loop and the
// indexed engines must refuse it.
func TestWeightedSchedulerEngineSelection(t *testing.T) {
	t.Parallel()
	p := MustProtocol("cover", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
		{A: 0, B: 1, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	res, err := Run(p, 24, Options{Seed: 1, Scheduler: &WeightedScheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Engine != EngineBaseline {
		t.Fatalf("weighted run: %+v, want converged on the baseline engine", res)
	}
	for _, engine := range []Engine{EngineFast, EngineSparse} {
		if _, err := Run(p, 24, Options{Seed: 1, Scheduler: &WeightedScheduler{}, Engine: engine}); err == nil {
			t.Fatalf("engine %s accepted a non-uniform scheduler", engine)
		}
	}
}
