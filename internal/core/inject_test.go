package core

import (
	"testing"
)

// injProtocol is a 3-state protocol with a mix of node-, edge- and
// both-changing rules, so out-of-band mutations exercise every index
// bookkeeping path.
func injProtocol() *Protocol {
	return MustProtocol("inj", []string{"a", "b", "c"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
		{A: 1, B: 0, Edge: false, OutA: 2, OutB: 1, OutEdge: true},
		{A: 1, B: 1, Edge: true, OutA: 1, OutB: 2, OutEdge: false},
		{A: 2, B: 2, Edge: false, OutA: 2, OutB: 2, OutEdge: true},
	})
}

// TestMutatorKeepsIndicesConsistent fuzzes out-of-band node and edge
// writes through a Mutator against both incremental indices and checks
// them, after every mutation, against indices rebuilt from scratch —
// the invariant fault injection relies on.
func TestMutatorKeepsIndicesConsistent(t *testing.T) {
	t.Parallel()
	const n = 14
	p := injProtocol()
	cfg := NewConfig(p, n)
	ix := NewPairIndex(cfg)
	ci := NewClassIndex(cfg)
	pairMut := &Mutator{cfg: cfg, ix: ix}
	rng := NewRNG(42)

	check := func(step int) {
		t.Helper()
		fresh := NewPairIndex(cfg)
		if ix.Enabled() != fresh.Enabled() || ix.EdgeEnabled() != fresh.EdgeEnabled() {
			t.Fatalf("op %d: PairIndex counters (%d, %d) diverge from rebuild (%d, %d)",
				step, ix.Enabled(), ix.EdgeEnabled(), fresh.Enabled(), fresh.EdgeEnabled())
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if ix.Contains(u, v) != fresh.Contains(u, v) {
					t.Fatalf("op %d: PairIndex membership of {%d,%d} diverges", step, u, v)
				}
			}
		}
		if ci.Enabled() != int64(fresh.Enabled()) || ci.EdgeEnabled() != int64(fresh.EdgeEnabled()) {
			t.Fatalf("op %d: ClassIndex counters (%d, %d) diverge from rebuild (%d, %d)",
				step, ci.Enabled(), ci.EdgeEnabled(), fresh.Enabled(), fresh.EdgeEnabled())
		}
	}

	for op := 0; op < 400; op++ {
		// Both mutators share cfg; route each write through both so the
		// two indices see every mutation exactly once.
		if rng.Coin() {
			u := rng.IntN(n)
			s := State(rng.IntN(p.Size()))
			before := cfg.Node(u)
			pairMut.SetNode(u, s)
			if before != s {
				// The pair mutator already applied the config write; tell
				// the class index directly, as its mutator would have.
				ci.NodeChanged(u, before)
			}
		} else {
			u, v := rng.Pair(n)
			active := rng.Coin()
			if cfg.Edge(u, v) != active {
				pairMut.SetEdge(u, v, active)
				ci.EdgeChanged(u, v)
			}
		}
		check(op)
	}
}

// scriptInjector is a minimal Injector for engine-order tests: it
// fires at a fixed list of steps, records the steps it actually fired
// at, and applies an optional mutation.
type scriptInjector struct {
	events []int64
	fired  []int64
	act    func(step int64, m *Mutator)
}

func (s *scriptInjector) NextEvent(after int64) int64 {
	for _, e := range s.events {
		if e > after {
			return e
		}
	}
	return 0
}

func (s *scriptInjector) Inject(step int64, m *Mutator) {
	s.fired = append(s.fired, step)
	if s.act != nil {
		s.act(step, m)
	}
}

// TestInjectorFiresAtSameStepsOnEveryEngine pins the step-positional
// contract: a fixed event schedule fires at identical steps on the
// baseline, fast and sparse paths, and events at or beyond MaxSteps
// never fire.
func TestInjectorFiresAtSameStepsOnEveryEngine(t *testing.T) {
	t.Parallel()
	// Every pair is always enabled, so the indexed engines land on
	// every step — and the run can never converge.
	p := MustProtocol("ping", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1},
		{A: 1, B: 1, Edge: false, OutA: 0, OutB: 0},
		{A: 0, B: 1, Edge: false, OutA: 1, OutB: 0},
	})
	never := Detector{Trigger: TriggerInterval, Stable: func(*Config) bool { return false }}
	const maxSteps = 500
	for _, engine := range []Engine{EngineBaseline, EngineFast, EngineSparse} {
		inj := &scriptInjector{
			events: []int64{10, 100, 499, 500, 600},
			act: func(step int64, m *Mutator) {
				m.SetNode(0, 0)
				m.SetEdge(0, 1, false)
			},
		}
		res, err := Run(p, 16, Options{
			Seed:     7,
			Engine:   engine,
			Detector: never,
			MaxSteps: maxSteps,
			Injector: inj,
		})
		if err != nil {
			t.Fatalf("engine=%s: %v", engine, err)
		}
		if res.Converged || res.Steps != maxSteps {
			t.Fatalf("engine=%s: unexpected result %+v", engine, res)
		}
		want := []int64{10, 100, 499}
		if len(inj.fired) != len(want) {
			t.Fatalf("engine=%s: fired at %v, want %v", engine, inj.fired, want)
		}
		for i := range want {
			if inj.fired[i] != want[i] {
				t.Fatalf("engine=%s: fired at %v, want %v", engine, inj.fired, want)
			}
		}
	}
}

// TestInjectorMutationsVisibleToRun checks an injected mutation
// actually lands in the final configuration on every engine: the
// injector freezes node 0 into a state no rule can leave from a
// configuration that is otherwise quiescent.
func TestInjectorMutationsVisibleToRun(t *testing.T) {
	t.Parallel()
	// One-shot protocol: a+a activate and move to b; b is silent.
	p := MustProtocol("oneshot", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	for _, engine := range []Engine{EngineBaseline, EngineFast, EngineSparse} {
		resurrected := false
		inj := &scriptInjector{events: []int64{25}}
		inj.act = func(_ int64, m *Mutator) {
			// Resurrect node 0 into 'a' if it already converted; the 'a'
			// population count stays even without the write and turns odd
			// with it, so the final count proves whether the engine both
			// applied the mutation and kept simulating correctly.
			if m.Config().Node(0) == 1 {
				m.SetNode(0, 0)
				resurrected = true
			}
		}
		res, err := Run(p, 8, Options{Seed: 3, Engine: engine, MaxSteps: 1 << 16, Injector: inj})
		if err != nil {
			t.Fatalf("engine=%s: %v", engine, err)
		}
		if !res.Converged {
			t.Fatalf("engine=%s: did not converge: %+v", engine, res)
		}
		if len(inj.fired) != 1 {
			t.Fatalf("engine=%s: injector fired %v", engine, inj.fired)
		}
		want := 0
		if resurrected {
			want = 1
		}
		if got := res.Final.Count(0); got != want {
			t.Fatalf("engine=%s: %d 'a' nodes in final config, want %d (resurrected=%v)",
				engine, got, want, resurrected)
		}
	}
}
