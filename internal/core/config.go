package core

import (
	"fmt"
	"strings"
)

// Config is a configuration of the system: the state of every node and
// of every (undirected) edge of the complete interaction graph. It also
// maintains derived aggregates — per-node active degree, per-state
// population counts, and the active-edge count — that convergence
// detectors use as O(1) gates.
//
// Edge states live behind a storage strategy picked by population
// size: a triangular bitset (Θ(n²) bits, O(1) access) up to
// maxDenseEdgeNodes, per-node sorted adjacency sets (O(n + m) memory)
// above it. Every Config method is storage-agnostic.
type Config struct {
	proto       *Protocol
	n           int
	nodes       []State
	store       edgeStore
	degree      []int32
	counts      []int // population per state
	activeEdges int

	// topo, when non-nil, restricts the interaction graph to its
	// permitted pairs: schedulers draw only permitted pairs and the
	// quiescence scans range over them. Nil means the paper's complete
	// interaction graph. Run assigns it from Options.Topology; it is a
	// shared immutable reference, so clones and copies alias it.
	topo *Topology
}

// NewConfig returns the initial configuration on n nodes: every node in
// q0 and every edge inactive. Above the dense-storage threshold the
// construction cost is O(n), not Θ(n²).
func NewConfig(p *Protocol, n int) *Config {
	c := &Config{
		proto:  p,
		n:      n,
		nodes:  make([]State, n),
		store:  newEdgeStore(n),
		degree: make([]int32, n),
		counts: make([]int, p.Size()),
	}
	for i := range c.nodes {
		c.nodes[i] = p.initial
	}
	c.counts[p.initial] = n
	return c
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	d := &Config{
		proto:       c.proto,
		n:           c.n,
		nodes:       make([]State, len(c.nodes)),
		store:       c.store.clone(),
		degree:      make([]int32, len(c.degree)),
		counts:      make([]int, len(c.counts)),
		activeEdges: c.activeEdges,
		topo:        c.topo,
	}
	copy(d.nodes, c.nodes)
	copy(d.degree, c.degree)
	copy(d.counts, c.counts)
	return d
}

// resetDefault reinitializes c in place to protocol p's all-q0 initial
// configuration — NewConfig's result without its allocations. The
// population size is unchanged (the workspace reallocates on n
// changes, because the storage kind is a function of n); the protocol
// may differ from the previous run's.
func (c *Config) resetDefault(p *Protocol) {
	c.proto = p
	for i := range c.nodes {
		c.nodes[i] = p.initial
	}
	c.store.reset()
	for i := range c.degree {
		c.degree[i] = 0
	}
	c.counts = resizeCounts(c.counts, p.Size())
	c.counts[p.initial] = c.n
	c.activeEdges = 0
	c.topo = nil
}

// copyFrom makes c an in-place deep copy of src — Clone's result
// without its allocations. src must have the same population size
// (and therefore the same storage kind); it may be c itself, in which
// case the copy is a no-op, which is how a run seeded from the
// workspace's own previous Final works.
func (c *Config) copyFrom(src *Config) {
	c.proto = src.proto
	copy(c.nodes, src.nodes)
	c.store.copyFrom(src.store)
	copy(c.degree, src.degree)
	// append, not resizeCounts+copy: resizing zeroes in place, which
	// would wipe src.counts first when src aliases the receiver.
	c.counts = append(c.counts[:0], src.counts...)
	c.activeEdges = src.activeEdges
	c.topo = src.topo
}

// resizeCounts returns a zeroed int slice of length size, reusing dst's
// backing array when it is large enough.
func resizeCounts(dst []int, size int) []int {
	if cap(dst) < size {
		return make([]int, size)
	}
	dst = dst[:size]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// Protocol returns the protocol this configuration belongs to.
func (c *Config) Protocol() *Protocol { return c.proto }

// Topology returns the restricted interaction graph the run executes
// under, nil for the complete graph. Custom schedulers must restrict
// their draws to its permitted pairs when it is non-nil.
func (c *Config) Topology() *Topology { return c.topo }

// N returns the population size.
func (c *Config) N() int { return c.n }

// Node returns the state of node u.
func (c *Config) Node(u int) State { return c.nodes[u] }

// SetNode overwrites the state of node u, maintaining counts. It is
// intended for test setups and for protocols with non-uniform initial
// configurations (e.g. Graph-Replication's input graph).
func (c *Config) SetNode(u int, s State) {
	c.counts[c.nodes[u]]--
	c.nodes[u] = s
	c.counts[s]++
}

// Edge reports whether the edge {u, v} is active.
func (c *Config) Edge(u, v int) bool {
	return c.store.get(u, v)
}

// SetEdge overwrites the state of edge {u, v}, maintaining degrees and
// the active-edge count. Like SetNode it is for initial-configuration
// setup.
func (c *Config) SetEdge(u, v int, active bool) {
	if !c.store.set(u, v, active) {
		return
	}
	d := int32(-1)
	if active {
		d = 1
	}
	c.degree[u] += d
	c.degree[v] += d
	c.activeEdges += int(d)
}

// Degree returns the number of active edges incident to u.
func (c *Config) Degree(u int) int { return int(c.degree[u]) }

// Count returns the number of nodes currently in state s.
func (c *Config) Count(s State) int {
	if int(s) >= len(c.counts) {
		return 0
	}
	return c.counts[s]
}

// CountAll copies the per-state population counts into dst (which must
// have length ≥ |Q|) and returns it, allocating if dst is nil.
func (c *Config) CountAll(dst []int) []int {
	if dst == nil {
		dst = make([]int, len(c.counts))
	}
	copy(dst, c.counts)
	return dst
}

// ActiveEdges returns the number of active edges in O(1), from the
// counter maintained by SetEdge and Apply.
func (c *Config) ActiveEdges() int { return c.activeEdges }

// ActiveNeighbors appends the active neighbors of u to dst and returns
// it: O(deg u) on adjacency storage, O(n) on the dense bitset.
func (c *Config) ActiveNeighbors(u int, dst []int) []int {
	return c.store.neighbors(u, dst)
}

// ForEachActiveEdge visits every active edge once as (u, v) with
// u < v, in lexicographic order: O(m) on adjacency storage, O(n²/64)
// on the dense bitset.
func (c *Config) ForEachActiveEdge(fn func(u, v int)) {
	c.store.forEach(fn)
}

// Apply executes one interaction on the unordered pair {u, v} using the
// supplied random source for probabilistic choices. It returns what
// changed so the engine can maintain metrics and trigger detection.
//
// The pair is treated exactly per Section 3.1: the compiled table
// resolves orientation; when both nodes share a state and the outcomes
// differ, the winner is drawn equiprobably.
func (c *Config) Apply(u, v int, rng *RNG) (effective, edgeChanged bool) {
	a, b := c.nodes[u], c.nodes[v]
	active := c.store.get(u, v)
	e := c.proto.lookup(a, b, active)
	if !e.effective {
		return false, false
	}
	outA, outB, outEdge := e.outA, e.outB, e.outEdge
	if e.alt && rng.Coin() {
		outA, outB, outEdge = e.altA, e.altB, e.altEdge
	}
	if e.coin && rng.Coin() {
		outA, outB = outB, outA
	}
	if outA == a && outB == b && outEdge == active {
		// A probabilistic rule may select an ineffective branch.
		return false, false
	}
	if outA != a {
		c.counts[a]--
		c.counts[outA]++
		c.nodes[u] = outA
	}
	if outB != b {
		c.counts[b]--
		c.counts[outB]++
		c.nodes[v] = outB
	}
	if outEdge != active {
		c.store.set(u, v, outEdge)
		d := int32(-1)
		if outEdge {
			d = 1
		}
		c.degree[u] += d
		c.degree[v] += d
		c.activeEdges += int(d)
		edgeChanged = true
	}
	return true, edgeChanged
}

// Quiescent reports whether no effective transition is applicable on
// any pair the scheduler can draw — full quiescence, a sufficient
// condition for stability. O(n²) on the complete graph, O(m) under a
// restricted topology (non-permitted pairs are never scheduled, so
// they cannot break quiescence).
func (c *Config) Quiescent() bool {
	if t := c.topo; t != nil {
		for _, p := range t.pairs {
			u, v := int(p>>32), int(p&0xffffffff)
			if c.proto.EffectiveOn(c.nodes[u], c.nodes[v], c.Edge(u, v)) {
				return false
			}
		}
		return true
	}
	for u := 0; u < c.n; u++ {
		for v := u + 1; v < c.n; v++ {
			if c.proto.EffectiveOn(c.nodes[u], c.nodes[v], c.Edge(u, v)) {
				return false
			}
		}
	}
	return true
}

// EdgeQuiescent reports whether no applicable transition would change
// any edge state. Weaker than Quiescent: node states may still evolve
// (e.g. a leader walking along a stable line). O(n²) on the complete
// graph, O(m) under a restricted topology.
func (c *Config) EdgeQuiescent() bool {
	if t := c.topo; t != nil {
		for _, p := range t.pairs {
			u, v := int(p>>32), int(p&0xffffffff)
			if c.proto.EdgeEffectiveOn(c.nodes[u], c.nodes[v], c.Edge(u, v)) {
				return false
			}
		}
		return true
	}
	for u := 0; u < c.n; u++ {
		for v := u + 1; v < c.n; v++ {
			if c.proto.EdgeEffectiveOn(c.nodes[u], c.nodes[v], c.Edge(u, v)) {
				return false
			}
		}
	}
	return true
}

// Fingerprint returns a canonical byte encoding of the configuration
// (node states followed by the edge-set encoding), suitable as a map
// key in exhaustive state-space exploration. Fingerprints are
// comparable between configurations of the same population size (whose
// storage kind, and therefore edge encoding, is identical).
func (c *Config) Fingerprint() string {
	var sb strings.Builder
	sb.Grow(len(c.nodes))
	for _, s := range c.nodes {
		sb.WriteByte(byte(s))
	}
	c.store.appendFingerprint(&sb)
	return sb.String()
}

// String renders the configuration compactly for debugging: node states
// by name and the active edge list (O(m) on adjacency storage).
func (c *Config) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	for u := 0; u < c.n; u++ {
		if u > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(c.proto.StateName(c.nodes[u]))
	}
	sb.WriteString("] {")
	first := true
	c.store.forEach(func(u, v int) {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%d-%d", u, v)
	})
	sb.WriteString("}")
	return sb.String()
}
