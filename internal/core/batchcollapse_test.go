package core

import (
	"testing"

	"repro/internal/stats"
)

// walkerPathConfig builds the swap-run collapse's target shape
// directly: a path graph of n blank (q2) nodes over a forced sparse
// store, with a single walker (w) parked at node pos. The only enabled
// pairs are the walker's incident edges, and every landing is a
// deterministic swap, so the batch engine's census stays frozen while
// the walker stays interior — exactly the regime the analytic collapse
// tier absorbs. The configurations Run builds from the null state reach
// this shape only deep into a Simple-Global-Line run at sparse sizes,
// far beyond unit-test budgets, so the tests below construct it.
func walkerPathConfig(t *testing.T, p *Protocol, n, pos int) *Config {
	t.Helper()
	cfg := NewConfig(p, n)
	cfg.store = &sparseStore{n: n, adj: make([][]int32, n)}
	for u := 0; u < n; u++ {
		cfg.SetNode(u, 1) // q2
	}
	cfg.SetNode(pos, 2) // w
	for u := 0; u+1 < n; u++ {
		cfg.SetEdge(u, u+1, true)
	}
	return cfg
}

// TestBatchIndexApplySwapFast pins the census-invariant swap surgery:
// on a single-walker path every interior swap satisfies the surgery's
// preconditions (both endpoints degree 2, outer neighbors sharing a
// state), and the surgery must leave every cached weight and the
// census generation untouched while keeping the full index — lists,
// mirrors, slots — brute-force verifiable. Swaps onto a path end must
// be declined and handled by the generic applySwap, which does move
// the census (the cell loses an edge).
func TestBatchIndexApplySwapFast(t *testing.T) {
	t.Parallel()
	p := batchProtocols(t)["walker"]
	const n = 48
	cfg := walkerPathConfig(t, p, n, n/2)
	bi := newBatchIndex(cfg)
	verifyBatchIndex(t, bi, cfg)
	rng := NewRNG(11)
	fast, declined := 0, 0
	for step := 0; step < 3000; step++ {
		u, v := bi.Sample(rng)
		a, b := cfg.Node(u), cfg.Node(v)
		if !cfg.Edge(u, v) || !bi.swapCell[bi.classID(a, b)] {
			t.Fatalf("step %d: sampled pair (%d,%d) is not a swap-cell edge", step, u, v)
		}
		before := snapshotWeights(bi)
		genBefore := bi.gen
		cfg.nodes[u], cfg.nodes[v] = b, a
		if bi.applySwapFast(u, v, a, b) {
			fast++
			if bi.gen != genBefore {
				t.Fatalf("step %d: applySwapFast bumped gen", step)
			}
			if !weightsEqual(before, snapshotWeights(bi)) {
				t.Fatalf("step %d: applySwapFast moved a cached weight", step)
			}
		} else {
			declined++
			bi.applySwap(u, v, a, b)
		}
		verifyBatchIndex(t, bi, cfg)
	}
	if fast == 0 || declined == 0 {
		t.Fatalf("walk exercised %d fast and %d declined swaps; want both > 0", fast, declined)
	}
}

// TestBatchCollapseWalkLaw pins the analytic tier against a literal
// simulation. Both arms run the single-walker path to a fixed step
// budget: the literal arm applies one uniform pair draw per step
// (the baseline scheduler, nothing skipped), the batch arm runs
// batchLoop — geometric skips, bucket plans, swap-run collapse,
// hypergeometric fast-forward at the budget's end. The walker's final
// position is a complete summary of the run (the path never changes,
// only the walker moves), so a two-sample chi-square on its
// distribution at α = 0.001 pins the collapse to the literal law.
// Seeds are fixed: a failure is a law change, not noise.
//
// The batch arm must also actually collapse (CollapsedLandings > 0,
// FastForwardEpochs > 0 in aggregate) and every run must satisfy the
// accounting invariant
// Landings + SkippedSteps + CollapsedLandings = Steps.
func TestBatchCollapseWalkLaw(t *testing.T) {
	t.Parallel()
	p := batchProtocols(t)["walker"]
	trials := 200
	if testing.Short() {
		trials = 60
	}
	const (
		n        = 32
		maxSteps = 1 << 16
		buckets  = 8
	)
	det := Detector{Trigger: TriggerEdge, Stable: func(*Config) bool { return false }}

	literal := func() []int64 {
		h := make([]int64, buckets)
		for trial := 0; trial < trials; trial++ {
			cfg := walkerPathConfig(t, p, n, n/2)
			rng := NewRNG(uint64(trial) + 1)
			for step := int64(0); step < maxSteps; step++ {
				u, v := rng.Pair(n)
				cfg.Apply(u, v, rng)
			}
			h[walkerPos(t, cfg)*buckets/n]++
		}
		return h
	}
	batch := func() []int64 {
		h := make([]int64, buckets)
		var collapsed, fastForwards int64
		for trial := 0; trial < trials; trial++ {
			cfg := walkerPathConfig(t, p, n, n/2)
			rng := NewRNG(uint64(trial) + 1)
			ix := newBatchIndex(cfg)
			res := batchLoop(p, cfg, det, Options{}, maxSteps, 1, rng, ix)
			m := res.Metrics
			if m.Landings+m.SkippedSteps+m.CollapsedLandings != res.Steps {
				t.Fatalf("trial %d: Landings %d + SkippedSteps %d + CollapsedLandings %d != Steps %d",
					trial, m.Landings, m.SkippedSteps, m.CollapsedLandings, res.Steps)
			}
			collapsed += m.CollapsedLandings
			fastForwards += m.FastForwardEpochs
			h[walkerPos(t, cfg)*buckets/n]++
		}
		if collapsed == 0 {
			t.Fatal("batch arm never engaged the analytic swap-run collapse")
		}
		if fastForwards == 0 {
			t.Fatal("batch arm never fast-forwarded an epoch")
		}
		return h
	}

	a := literal()
	b := batch()
	stat, df := stats.ChiSquareTwoSample(a, b)
	if df == 0 {
		t.Fatalf("degenerate walk: histograms %v vs %v", a, b)
	}
	if crit := stats.ChiSquareCritical(df, 0.001); stat > crit {
		t.Fatalf("final-position chi-square %.2f > critical %.2f (df %d)\nliteral %v\nbatch   %v",
			stat, crit, df, a, b)
	}
}

// walkerPos returns the unique walker node of a walker-path
// configuration.
func walkerPos(t *testing.T, cfg *Config) int {
	t.Helper()
	pos := -1
	for u := 0; u < cfg.N(); u++ {
		if cfg.Node(u) == 2 {
			if pos >= 0 {
				t.Fatalf("two walkers: nodes %d and %d", pos, u)
			}
			pos = u
		}
	}
	if pos < 0 {
		t.Fatal("walker vanished")
	}
	return pos
}
