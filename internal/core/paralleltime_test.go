package core

import "testing"

// TestParallelTime covers the footnote 5 conversion: parallel time is
// sequential time over n.
func TestParallelTime(t *testing.T) {
	t.Parallel()
	res := Result{ConvergenceTime: 1000}
	if got := res.ParallelTime(10); got != 100 {
		t.Fatalf("ParallelTime = %f, want 100", got)
	}
	if got := res.ParallelTime(0); got != 0 {
		t.Fatalf("degenerate n gave %f", got)
	}
}

// TestEpidemicParallelTimeIsLogarithmic: a one-way epidemic takes
// Θ(n log n) interactions, i.e. Θ(log n) parallel time — the classic
// population-protocol sanity check for the conversion.
func TestEpidemicParallelTimeIsLogarithmic(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	ratio := func(n int) float64 {
		var total float64
		const trials = 30
		for seed := uint64(1); seed <= trials; seed++ {
			res, err := Run(p, n, Options{Seed: seed, Detector: det, Initial: seededInitial(p, n)})
			if err != nil {
				t.Fatal(err)
			}
			// ConvergenceTime is zero here (no edges/Qout changes), so
			// use the detection step for the conversion.
			total += float64(res.Steps) / float64(n)
		}
		return total / trials
	}
	small, large := ratio(32), ratio(128)
	// log(128)/log(32) = 1.4; allow a broad band but reject linear
	// growth (which would give 4×).
	growth := large / small
	if growth > 2.5 {
		t.Fatalf("parallel time grew %fx from n=32 to n=128 (not logarithmic)", growth)
	}
	if growth < 1.0 {
		t.Fatalf("parallel time shrank (%fx)", growth)
	}
}
