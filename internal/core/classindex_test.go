package core

import (
	"testing"
)

// verifyClassIndex cross-checks the class-decomposition counts of the
// index against brute-force enabled-pair scans over the configuration.
func verifyClassIndex(t *testing.T, ci *ClassIndex, cfg *Config) {
	t.Helper()
	n := cfg.N()
	var enabled, edgeEnabled int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if cfg.Protocol().EffectiveOn(cfg.Node(u), cfg.Node(v), cfg.Edge(u, v)) {
				enabled++
			}
			if cfg.Protocol().EdgeEffectiveOn(cfg.Node(u), cfg.Node(v), cfg.Edge(u, v)) {
				edgeEnabled++
			}
		}
	}
	if ci.Enabled() != enabled {
		t.Fatalf("Enabled() = %d, brute force %d", ci.Enabled(), enabled)
	}
	if ci.EdgeEnabled() != edgeEnabled {
		t.Fatalf("EdgeEnabled() = %d, brute force %d", ci.EdgeEnabled(), edgeEnabled)
	}
	if ci.Quiescent() != cfg.Quiescent() {
		t.Fatalf("Quiescent() = %v, scan %v", ci.Quiescent(), cfg.Quiescent())
	}
	if ci.EdgeQuiescent() != cfg.EdgeQuiescent() {
		t.Fatalf("EdgeQuiescent() = %v, scan %v", ci.EdgeQuiescent(), cfg.EdgeQuiescent())
	}
}

// TestClassIndexTracksApply drives each protocol with random
// interactions through Config.Apply + ClassIndex.Update and verifies
// the class decomposition against the brute-force scans after every
// effective step — on both edge-storage strategies.
func TestClassIndexTracksApply(t *testing.T) {
	t.Parallel()
	for name, p := range indexProtocols(t) {
		p := p
		for _, sparse := range []bool{false, true} {
			sparse := sparse
			label := name + "/dense-store"
			if sparse {
				label = name + "/sparse-store"
			}
			t.Run(label, func(t *testing.T) {
				t.Parallel()
				const n = 12
				rng := NewRNG(7)
				cfg := NewConfig(p, n)
				if sparse {
					cfg.store = &sparseStore{n: n, adj: make([][]int32, n)}
				}
				ci := NewClassIndex(cfg)
				verifyClassIndex(t, ci, cfg)
				for step := 0; step < 2000; step++ {
					u, v := rng.Pair(n)
					beforeU, beforeV := cfg.Node(u), cfg.Node(v)
					effective, edgeChanged := cfg.Apply(u, v, rng)
					if effective {
						ci.Update(u, v, beforeU, beforeV, edgeChanged)
						verifyClassIndex(t, ci, cfg)
					}
				}
			})
		}
	}
}

// TestClassIndexBuildFromArbitraryConfig pins the class-decomposition
// count against brute-force enabled-pair scans across randomized
// configurations (states and edges set directly), covering the
// construction path.
func TestClassIndexBuildFromArbitraryConfig(t *testing.T) {
	t.Parallel()
	for name, p := range indexProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := NewRNG(11)
			for trial := 0; trial < 20; trial++ {
				n := 2 + rng.IntN(14)
				cfg := NewConfig(p, n)
				for u := 0; u < n; u++ {
					cfg.SetNode(u, State(rng.IntN(p.Size())))
				}
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						cfg.SetEdge(u, v, rng.Coin())
					}
				}
				verifyClassIndex(t, NewClassIndex(cfg), cfg)
			}
		})
	}
}

// TestClassIndexAgreesWithPairIndex pins the two enabled-pair
// structures against each other while a run of random interactions
// evolves the configuration: the class decomposition must equal the
// materialized pair count at every effective step.
func TestClassIndexAgreesWithPairIndex(t *testing.T) {
	t.Parallel()
	for name, p := range indexProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 14
			rng := NewRNG(23)
			cfg := NewConfig(p, n)
			ix := NewPairIndex(cfg)
			ci := NewClassIndex(cfg)
			for step := 0; step < 3000; step++ {
				u, v := rng.Pair(n)
				beforeU, beforeV := cfg.Node(u), cfg.Node(v)
				effective, edgeChanged := cfg.Apply(u, v, rng)
				if !effective {
					continue
				}
				ix.applied(u, v, beforeU, beforeV, edgeChanged)
				ci.Update(u, v, beforeU, beforeV, edgeChanged)
				if ci.Enabled() != int64(ix.Enabled()) {
					t.Fatalf("step %d: class decomposition %d, pair index %d", step, ci.Enabled(), ix.Enabled())
				}
				if ci.EdgeEnabled() != int64(ix.EdgeEnabled()) {
					t.Fatalf("step %d: edge classes %d, pair index %d", step, ci.EdgeEnabled(), ix.EdgeEnabled())
				}
			}
		})
	}
}

// TestClassIndexSample checks that Sample only returns enabled pairs
// and visits the whole enabled set in both orientations, including
// through the rejection path (active edges mixed into enabled classes).
func TestClassIndexSample(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["matching"]
	const n = 8
	cfg := NewConfig(p, n)
	ci := NewClassIndex(cfg)
	if ci.Enabled() != int64(pairCount(n)) {
		t.Fatalf("all-q0 matching should enable every pair, got %d", ci.Enabled())
	}
	rng := NewRNG(3)
	seen := make(map[[2]int]bool)
	for i := 0; i < 4000; i++ {
		u, v := ci.Sample(rng)
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			t.Fatalf("bad pair (%d,%d)", u, v)
		}
		if !p.EffectiveOn(cfg.Node(u), cfg.Node(v), cfg.Edge(u, v)) {
			t.Fatalf("sampled disabled pair (%d,%d)", u, v)
		}
		seen[[2]int{u, v}] = true
	}
	// Every ordered orientation of every pair should appear.
	if want := 2 * pairCount(n); len(seen) != want {
		t.Fatalf("sampled %d ordered pairs, want %d", len(seen), want)
	}
}

// TestClassIndexSampleSaturatedClass exercises the exact-walk fallback
// of sampleNonEdge: in a class where almost every pair already holds an
// active edge, rejection nearly always fails, yet the draw must remain
// uniform over the surviving non-edges.
func TestClassIndexSampleSaturatedClass(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["matching"] // q0-q0 non-edge pairs are enabled
	const n = 10
	cfg := NewConfig(p, n)
	// Activate every edge except {0,1} and {2,3}; the enabled set is
	// exactly those two non-edges.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u == 0 && v == 1) || (u == 2 && v == 3) {
				continue
			}
			cfg.SetEdge(u, v, true)
		}
	}
	ci := NewClassIndex(cfg)
	if ci.Enabled() != 2 {
		t.Fatalf("want 2 enabled non-edges, got %d", ci.Enabled())
	}
	rng := NewRNG(5)
	counts := map[[2]int]int{}
	const draws = 2000
	for i := 0; i < draws; i++ {
		u, v := ci.Sample(rng)
		if u > v {
			u, v = v, u
		}
		if !(u == 0 && v == 1) && !(u == 2 && v == 3) {
			t.Fatalf("sampled pair (%d,%d) outside the enabled set", u, v)
		}
		counts[[2]int{u, v}]++
	}
	for pair, c := range counts {
		if c < draws/4 {
			t.Fatalf("pair %v drawn %d of %d times — not uniform", pair, c, draws)
		}
	}
}

// TestSparseEngineRuns exercises core.Run with EngineSparse end to end
// on the index battery, cross-checking final stability against the
// brute-force scan.
func TestSparseEngineRuns(t *testing.T) {
	t.Parallel()
	for name, p := range indexProtocols(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(p, 16, Options{Seed: 9, Engine: EngineSparse})
			if err != nil {
				t.Fatal(err)
			}
			if res.Engine != EngineSparse {
				t.Fatalf("ran on %v, want sparse", res.Engine)
			}
			if !res.Converged {
				t.Fatalf("did not converge: %+v", res)
			}
			if !res.Final.Quiescent() {
				t.Fatalf("quiescence detector fired on a non-quiescent configuration")
			}
		})
	}
}

// TestSparseEngineValidation pins the option errors and the
// auto-selection boundaries of the sparse path.
func TestSparseEngineValidation(t *testing.T) {
	t.Parallel()
	p := indexProtocols(t)["epidemic"]
	if _, err := Run(p, 8, Options{Engine: EngineSparse, Scheduler: &RoundRobinScheduler{}}); err == nil {
		t.Fatal("sparse engine accepted a non-uniform scheduler")
	}
	if _, err := Run(p, maxSparseNodes+1, Options{Engine: EngineSparse, MaxSteps: 1}); err == nil {
		t.Fatal("sparse engine accepted a population above its cap")
	}
	// Auto picks batch right above the fast-path boundary…
	res, err := Run(p, maxAutoIndexNodes+1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineBatch {
		t.Fatalf("auto above maxAutoIndexNodes ran on %v, want batch", res.Engine)
	}
	if !res.Converged {
		t.Fatalf("epidemic did not converge: %+v", res)
	}
	// …but keeps exact-stepping runs on the sparse engine they are
	// bit-identical to: an attached observer forces it.
	res, err = Run(p, maxAutoIndexNodes+1, Options{Seed: 1, Observer: nopObserver{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineSparse {
		t.Fatalf("auto with an observer ran on %v, want sparse", res.Engine)
	}
}

type nopObserver struct{}

func (nopObserver) ObserveStep(int64, int, int, bool, *Config) {}

// TestParseEngineSparse covers the flag/spec name round-trip.
func TestParseEngineSparse(t *testing.T) {
	t.Parallel()
	e, err := ParseEngine("sparse")
	if err != nil || e != EngineSparse {
		t.Fatalf("ParseEngine(sparse) = %v, %v", e, err)
	}
	if EngineSparse.String() != "sparse" {
		t.Fatalf("EngineSparse.String() = %q", EngineSparse.String())
	}
}
