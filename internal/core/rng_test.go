package core

import (
	"math"
	"testing"
)

// TestReseedMatchesFresh pins the workspace RNG contract: a reseeded
// source emits exactly the stream a fresh NewRNG(seed) would.
func TestReseedMatchesFresh(t *testing.T) {
	t.Parallel()
	reused := NewRNG(1)
	for i := 0; i < 100; i++ {
		reused.Float64() // wander off seed 1's stream
	}
	for _, seed := range []uint64{0, 1, 7, 1 << 40} {
		fresh := NewRNG(seed)
		reused.Reseed(seed)
		for i := 0; i < 64; i++ {
			if f, r := fresh.src.Uint64(), reused.src.Uint64(); f != r {
				t.Fatalf("seed %d, draw %d: fresh %d vs reseeded %d", seed, i, f, r)
			}
		}
	}
}

// TestGeometricLnMatchesGeometric pins the memoized-logarithm skip
// draw to the original: same p, same seed, same variates, same
// randomness consumption.
func TestGeometricLnMatchesGeometric(t *testing.T) {
	t.Parallel()
	for _, p := range []float64{1e-9, 0.01, 0.5, 0.999} {
		a, b := NewRNG(3), NewRNG(3)
		ln := math.Log1p(-p)
		for i := 0; i < 200; i++ {
			if ga, gb := a.Geometric(p), b.GeometricLn(ln); ga != gb {
				t.Fatalf("p=%g draw %d: Geometric %d vs GeometricLn %d", p, i, ga, gb)
			}
		}
	}
}
