package core

// Metrics is the per-run engine telemetry attached to every Result.
// All fields except WallNS are deterministic in (protocol, n, seed,
// scheduler, engine, faults) and independent of workspace reuse —
// except the setup counters (IndexBuilds, SnapshotRestores,
// WorkspaceResets), which by design describe how this particular run's
// state was prepared. The counters are plain increments on paths the
// engines already execute, so maintaining them costs no extra branches
// in the hot loops and nothing scales with n.
type Metrics struct {
	// WallNS is the run's wall-clock time in nanoseconds — the one
	// nondeterministic field.
	WallNS int64 `json:"wall_ns,omitempty"`

	// Landings counts the scheduler draws the engine actually
	// simulated: every step on the baseline path, only the geometric
	// landings on the indexed paths. Landings + SkippedSteps = Steps
	// on every engine (SkippedSteps is zero on the baseline).
	Landings int64 `json:"landings,omitempty"`
	// SkippedSteps counts the draws collapsed by the geometric skip —
	// draws that provably hit disabled pairs and were never simulated.
	SkippedSteps int64 `json:"skipped_steps,omitempty"`
	// SkipBatches counts the geometric batches those skips arrived in.
	SkipBatches int64 `json:"skip_batches,omitempty"`

	// DetectorChecks counts evaluations of the stability predicate
	// (including O(1) gate evaluations on the indexed paths).
	DetectorChecks int64 `json:"detector_checks,omitempty"`

	// IndexBuilds counts full engine-index constructions this run paid
	// (the O(n²) PairIndex scan or the O(n + m + |Q|²) ClassIndex
	// build); SnapshotRestores counts the times the workspace's
	// start-state snapshot replaced that scan with memcpys. Baseline
	// runs carry no index and report zero for both.
	IndexBuilds      int64 `json:"index_builds,omitempty"`
	SnapshotRestores int64 `json:"snapshot_restores,omitempty"`

	// SampleRejections counts rejected candidate draws in the sparse
	// engine's class-internal rejection sampling; SampleFallbacks
	// counts the exact-walk fallbacks taken when active edges saturate
	// a class. Zero on the baseline and fast paths.
	SampleRejections int64 `json:"sample_rejections,omitempty"`
	SampleFallbacks  int64 `json:"sample_fallbacks,omitempty"`

	// BucketDraws counts the landings the batch engine drew from a
	// bucket plan (one multivariate allocation covering a census-frozen
	// stretch); ExactFallbackLandings counts the landings it stepped
	// exactly instead — every landing of the run when a sink, observer
	// or injector forced the exact path. Zero on the other engines.
	BucketDraws           int64 `json:"bucket_draws,omitempty"`
	ExactFallbackLandings int64 `json:"exact_fallback_landings,omitempty"`

	// CollapsedLandings counts the landings the batch engine resolved
	// analytically through the swap-run collapse — landings that were
	// never individually simulated (they are not in Landings or
	// BucketDraws). On every engine
	// Landings + SkippedSteps + CollapsedLandings = Steps.
	// FastForwardEpochs counts the analytic jumps those landings
	// arrived in: one per collapsed chunk, including the final
	// hypergeometric jump when the step budget ends inside a run.
	CollapsedLandings int64 `json:"collapsed_landings,omitempty"`
	FastForwardEpochs int64 `json:"fast_forward_epochs,omitempty"`

	// WorkspaceResets counts the in-place component resets
	// (configuration, index, RNG) the run's workspace performed instead
	// of fresh allocations. Zero without Options.Workspace.
	WorkspaceResets int64 `json:"workspace_resets,omitempty"`

	// FaultFirings counts scenario fault firings reported through
	// Mutator.Fired; FaultNodeWrites and FaultEdgeWrites count the
	// out-of-band state and edge writes those firings actually applied
	// (a firing whose victim pool is empty applies nothing).
	FaultFirings    int64 `json:"fault_firings,omitempty"`
	FaultNodeWrites int64 `json:"fault_node_writes,omitempty"`
	FaultEdgeWrites int64 `json:"fault_edge_writes,omitempty"`
}
