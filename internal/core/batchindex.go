package core

// batchIndex is the batch engine's census index. It maintains the same
// decomposition as ClassIndex — per-state node lists, per-class
// active-edge counts, and the cached enabled / edge-enabled weight of
// every (state-class, edge-bit) sub-bucket — but restructures the
// bookkeeping around what the batch engine actually reads:
//
//   - a census *generation* counter (gen) that bumps exactly when some
//     cached sub-bucket weight changes value, so the engine can detect
//     "the landing law is unchanged" in O(1) and keep a bucket plan
//     alive across landings (see batch.go);
//   - edge *lists* only for the classes the sampler can ever draw an
//     edge from (mask bit effEdge — for Simple-Global-Line that is the
//     handful of walker/leader classes, a few edges each, while the
//     huge inert {q₂,q₂} bulk keeps only a counter). The edge-slot
//     hash map of ClassIndex is replaced by a per-node adjacency
//     mirror holding (class, slot) for listed-class edges only, so the
//     mirror stays tiny and cache-resident;
//   - the protocol's four effectiveness bits per class are cached in
//     effMask, and touch[s] lists the classes containing state s whose
//     mask is nonzero — the only classes whose weights can move when
//     the population count of s changes. Classes no rule ever touches
//     are never reweighed;
//   - reweighs are deferred and deduplicated per landing (dirty list
//     with a stamp array), so each affected class is recomputed once
//     from final counts. That matters for gen: a landing that shuffles
//     weight through a class and back (the Simple-Global-Line walker
//     swap moves one active edge out of class {q₂, w} and another in)
//     must not bump gen on the transient;
//   - swapCell marks the edge classes whose rule is a deterministic
//     state swap — the walker-walk workhorse — for which batchLoop
//     runs a specialized kernel (no rule lookup, no store access, no
//     coins) through applySwap.
//
// Like ClassIndex it is bound to its Config, must be notified after
// every effective interaction, and is not safe for concurrent use.
// Unlike ClassIndex it serves only the batch engine's pure path, which
// never carries an event sink, observer or fault injector — runs that
// need those go through the exact ClassIndex path (see runBatch).
type batchIndex struct {
	cfg   *Config
	proto *Protocol
	q     int

	// sp is cfg.store when it is the sparse adjacency store (always at
	// batch-engine populations) — the swap kernel iterates its rows in
	// place instead of copying neighbors out.
	sp *sparseStore

	byState [][]int32
	slot    []int32

	edgeCount []int64
	edgeList  [][]uint64
	mirror    [][]mirrorEntry

	w, we       []int64
	enabled     int64
	edgeEnabled int64

	effMask  []uint8
	listed   []bool
	swapCell []bool
	swapOut  []bool
	touch    [][]int32

	gen uint64

	dirty      []int32
	dirtyStamp []uint64
	stamp      uint64

	nbuf []int

	// plan is the engine's bucket-plan scratch; it lives here (rather
	// than on batchLoop's stack) so its backing arrays survive
	// workspace reuse and steady-state campaign trials stay
	// allocation-free.
	plan bucketPlan

	// wpath is the swap-run collapse's cached walker segment (see
	// walkChunk); like plan it lives here so its scan buffers survive
	// workspace reuse.
	wpath walkPath

	rejections int64
	fallbacks  int64
}

// mirrorEntry records one listed-class active edge incident to the
// node owning the slice: the other endpoint and the edge's position in
// its class bucket. Entries live at the lower-id endpoint only.
type mirrorEntry struct {
	other int32
	class int32
	slot  int32
}

// effMask bit layout: EffectiveOn(a, b, edge) and
// EdgeEffectiveOn(a, b, edge) for edge ∈ {0, 1}.
const (
	effNonEdge     = 1 << 0
	effEdge        = 1 << 1
	effEdgeNonEdge = 1 << 2
	effEdgeEdge    = 1 << 3
)

func newBatchIndex(cfg *Config) *batchIndex {
	bi := &batchIndex{}
	bi.reset(cfg)
	return bi
}

// reset rebinds the index to cfg and rebuilds it in place, reusing
// every backing array that fits — the workspace path's
// allocation-free fresh build, mirroring ClassIndex.reset.
func (bi *batchIndex) reset(cfg *Config) {
	n := cfg.n
	if n > maxSparseNodes {
		panic("core: batchIndex supports populations up to maxSparseNodes")
	}
	q := cfg.proto.Size()
	bi.cfg = cfg
	bi.sp, _ = cfg.store.(*sparseStore)
	if bi.q != q {
		bi.q = q
		bi.byState = make([][]int32, q)
		bi.edgeCount = make([]int64, q*q)
		bi.edgeList = make([][]uint64, q*q)
		bi.w = make([]int64, 2*q*q)
		bi.we = make([]int64, 2*q*q)
		bi.effMask = make([]uint8, q*q)
		bi.listed = make([]bool, q*q)
		bi.swapCell = make([]bool, q*q)
		bi.swapOut = make([]bool, q*q)
		bi.touch = make([][]int32, q)
		bi.dirtyStamp = make([]uint64, q*q)
		bi.proto = nil
	} else {
		for i := range bi.byState {
			bi.byState[i] = bi.byState[i][:0]
		}
		for i := range bi.edgeList {
			bi.edgeCount[i] = 0
			bi.edgeList[i] = bi.edgeList[i][:0]
		}
		for i := range bi.w {
			bi.w[i] = 0
			bi.we[i] = 0
		}
		for i := range bi.dirtyStamp {
			bi.dirtyStamp[i] = 0
		}
	}
	if bi.proto != cfg.proto {
		bi.proto = cfg.proto
		bi.rebuildMasks()
	}
	if cap(bi.slot) < n {
		bi.slot = make([]int32, n)
	} else {
		bi.slot = bi.slot[:n]
	}
	if cap(bi.mirror) < n {
		bi.mirror = make([][]mirrorEntry, n)
	} else {
		bi.mirror = bi.mirror[:n]
		for i := range bi.mirror {
			bi.mirror[i] = bi.mirror[i][:0]
		}
	}
	bi.enabled, bi.edgeEnabled = 0, 0
	bi.rejections, bi.fallbacks = 0, 0
	bi.gen, bi.stamp = 0, 0
	bi.dirty = bi.dirty[:0]
	bi.wpath.valid = false

	for u, s := range cfg.nodes {
		bi.slot[u] = int32(len(bi.byState[s]))
		bi.byState[s] = append(bi.byState[s], int32(u))
	}
	cfg.store.forEach(func(u, v int) {
		bi.addEdge(u, v, bi.classID(cfg.nodes[u], cfg.nodes[v]))
	})
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			bi.reweigh(a, b)
		}
	}
	// The build's reweighs bump gen; a fresh index starts a fresh
	// census history.
	bi.gen = 0
}

// rebuildMasks caches the protocol's effectiveness bits, the listed
// and swap-kernel class sets, and the per-state touch lists.
func (bi *batchIndex) rebuildMasks() {
	p := bi.proto
	q := bi.q
	for a := 0; a < q; a++ {
		bi.touch[a] = bi.touch[a][:0]
	}
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			id := a*q + b
			var m uint8
			if p.EffectiveOn(State(a), State(b), false) {
				m |= effNonEdge
			}
			if p.EffectiveOn(State(a), State(b), true) {
				m |= effEdge
			}
			if p.EdgeEffectiveOn(State(a), State(b), false) {
				m |= effEdgeNonEdge
			}
			if p.EdgeEffectiveOn(State(a), State(b), true) {
				m |= effEdgeEdge
			}
			bi.effMask[id] = m
			bi.listed[id] = m&effEdge != 0
			e := p.lookup(State(a), State(b), true)
			bi.swapCell[id] = a != b && e.effective && !e.alt &&
				e.outA == State(b) && e.outB == State(a) && e.outEdge
			// A swap changes the output graph iff exactly one of the
			// two states is in Qout — collapse (which cannot track a
			// per-landing ConvergenceTime) is restricted to classes
			// where it does not.
			bi.swapOut[id] = p.IsOutput(State(a)) != p.IsOutput(State(b))
			if m != 0 {
				bi.touch[a] = append(bi.touch[a], int32(id))
				if b != a {
					bi.touch[b] = append(bi.touch[b], int32(id))
				}
			}
		}
	}
}

func (bi *batchIndex) classID(a, b State) int {
	if a > b {
		a, b = b, a
	}
	return int(a)*bi.q + int(b)
}

// addEdge and dropEdge keep the per-class edge counts for the classes
// some rule reads (effMask ≠ 0 — the only counts reweigh and
// sampleNonEdge consume) and the edge list (plus its mirror entry) for
// listed classes only. Classes outside both sets — the inert bulk —
// cost nothing to move edges through.

func (bi *batchIndex) addEdge(u, v, id int) {
	if bi.effMask[id] == 0 {
		return
	}
	bi.edgeCount[id]++
	if !bi.listed[id] {
		return
	}
	if u > v {
		u, v = v, u
	}
	bi.mirror[u] = append(bi.mirror[u], mirrorEntry{
		other: int32(v), class: int32(id), slot: int32(len(bi.edgeList[id]))})
	bi.edgeList[id] = append(bi.edgeList[id], uint64(u)<<32|uint64(v))
}

func (bi *batchIndex) dropEdge(u, v, id int) {
	if bi.effMask[id] == 0 {
		return
	}
	bi.edgeCount[id]--
	if !bi.listed[id] {
		return
	}
	if u > v {
		u, v = v, u
	}
	m := bi.mirror[u]
	mi := 0
	for m[mi].other != int32(v) {
		mi++
	}
	slot := m[mi].slot
	list := bi.edgeList[id]
	lastIdx := len(list) - 1
	if int(slot) != lastIdx {
		last := list[lastIdx]
		list[slot] = last
		// Fix the displaced edge's mirror entry.
		lu := int(last >> 32)
		lv := int32(last & 0xffffffff)
		mm := bi.mirror[lu]
		for j := range mm {
			if mm[j].other == lv {
				mm[j].slot = slot
				break
			}
		}
	}
	bi.edgeList[id] = list[:lastIdx]
	m[mi] = m[len(m)-1]
	bi.mirror[u] = m[:len(m)-1]
}

func (bi *batchIndex) moveEdge(u, v, fromID, toID int) {
	if fromID == toID {
		return
	}
	bi.dropEdge(u, v, fromID)
	bi.addEdge(u, v, toID)
	bi.markDirty(fromID)
	bi.markDirty(toID)
}

func (bi *batchIndex) moveNode(u int, from, to State) {
	list := bi.byState[from]
	s := bi.slot[u]
	last := list[len(list)-1]
	list[s] = last
	bi.slot[last] = s
	bi.byState[from] = list[:len(list)-1]
	bi.slot[u] = int32(len(bi.byState[to]))
	bi.byState[to] = append(bi.byState[to], int32(u))
}

// reweigh recomputes one class's cached weights from the current
// counts and edge buckets, folding deltas into the totals and bumping
// gen iff some cached value actually changed. Idempotent.
func (bi *batchIndex) reweigh(a, b int) {
	id := a*bi.q + b
	mask := bi.effMask[id]
	var pairs int64
	if a == b {
		k := int64(bi.cfg.counts[a])
		pairs = k * (k - 1) / 2
	} else {
		pairs = int64(bi.cfg.counts[a]) * int64(bi.cfg.counts[b])
	}
	act := bi.edgeCount[id]
	non := pairs - act
	var w0, w1, we0, we1 int64
	if mask&effNonEdge != 0 {
		w0 = non
	}
	if mask&effEdge != 0 {
		w1 = act
	}
	if mask&effEdgeNonEdge != 0 {
		we0 = non
	}
	if mask&effEdgeEdge != 0 {
		we1 = act
	}
	if w0 != bi.w[2*id] || w1 != bi.w[2*id+1] || we0 != bi.we[2*id] || we1 != bi.we[2*id+1] {
		bi.gen++
		bi.enabled += w0 + w1 - bi.w[2*id] - bi.w[2*id+1]
		bi.w[2*id], bi.w[2*id+1] = w0, w1
		bi.edgeEnabled += we0 + we1 - bi.we[2*id] - bi.we[2*id+1]
		bi.we[2*id], bi.we[2*id+1] = we0, we1
	}
}

// markDirty queues a class for the end-of-update reweigh, skipping
// classes no rule can enable (their weights are identically zero).
func (bi *batchIndex) markDirty(id int) {
	if bi.effMask[id] == 0 {
		return
	}
	if bi.dirtyStamp[id] == bi.stamp {
		return
	}
	bi.dirtyStamp[id] = bi.stamp
	bi.dirty = append(bi.dirty, int32(id))
}

// markState queues every class containing s that some rule touches.
func (bi *batchIndex) markState(s State) {
	for _, id := range bi.touch[s] {
		bi.markDirty(int(id))
	}
}

func (bi *batchIndex) flushDirty() {
	for _, id := range bi.dirty {
		bi.reweigh(int(id)/bi.q, int(id)%bi.q)
	}
	bi.dirty = bi.dirty[:0]
}

// Update refreshes the index after an interaction was applied to
// {u, v} — the batchIndex counterpart of ClassIndex.Update: the same
// node and edge moves, but reweighing only the classes whose weights
// can actually have moved, once, from final counts. A pure state swap
// (afterU = beforeV, afterV = beforeU, no edge change) leaves every
// population count unchanged, so only the classes of reclassified
// incident edges are touched.
func (bi *batchIndex) Update(u, v int, beforeU, beforeV State, edgeChanged bool) {
	cfg := bi.cfg
	afterU, afterV := cfg.nodes[u], cfg.nodes[v]
	edgeNow := cfg.store.get(u, v)
	edgeBefore := edgeNow
	if edgeChanged {
		edgeBefore = !edgeNow
	}
	bi.stamp++

	if afterU != beforeU {
		bi.moveNode(u, beforeU, afterU)
		bi.reclassifyIncident(u, v, beforeU, afterU)
	}
	if afterV != beforeV {
		bi.moveNode(v, beforeV, afterV)
		bi.reclassifyIncident(v, u, beforeV, afterV)
	}
	switch {
	case edgeBefore && edgeNow:
		bi.moveEdge(u, v, bi.classID(beforeU, beforeV), bi.classID(afterU, afterV))
	case edgeBefore && !edgeNow:
		id := bi.classID(beforeU, beforeV)
		bi.dropEdge(u, v, id)
		bi.markDirty(id)
	case !edgeBefore && edgeNow:
		id := bi.classID(afterU, afterV)
		bi.addEdge(u, v, id)
		bi.markDirty(id)
	}

	switch {
	case afterU == beforeU && afterV == beforeV:
		// Edge-only transition: only the pair's own class can move.
		bi.markDirty(bi.classID(afterU, afterV))
	case afterU == beforeV && afterV == beforeU:
		// Pure swap: population counts unchanged; the edge moves above
		// already marked every class whose A changed.
	default:
		bi.markState(beforeU)
		if afterU != beforeU {
			bi.markState(afterU)
		}
		bi.markState(beforeV)
		if afterV != beforeV {
			bi.markState(afterV)
		}
	}
	bi.flushDirty()
}

// applySwap is the index side of batchLoop's swap kernel: the caller
// has already swapped nodes[u] and nodes[v] (their pre-swap states
// beforeU ≠ beforeV), nothing else changed. u and v exchange their
// byState slots in place, incident edges reclassify, and only the
// classes whose edge counts moved are reweighed.
func (bi *batchIndex) applySwap(u, v int, beforeU, beforeV State) {
	bi.byState[beforeU][bi.slot[u]] = int32(v)
	bi.byState[beforeV][bi.slot[v]] = int32(u)
	bi.slot[u], bi.slot[v] = bi.slot[v], bi.slot[u]
	bi.stamp++

	bi.reclassifyIncident(u, v, beforeU, beforeV)
	bi.reclassifyIncident(v, u, beforeV, beforeU)
	// The {u, v} edge's own class is the unordered pair {beforeU,
	// beforeV}, unchanged by the swap.
	bi.flushDirty()
}

// applySwapFast applies the census-invariant interior-swap surgery:
// when both swapped endpoints have exactly two active edges and their
// outer neighbors share one state s, the swap provably moves no class
// weight — class {beforeU, s} loses edge {u, x} and gains {v, y},
// class {beforeV, s} the reverse, and every population count is
// untouched — so instead of the generic reclassify/reweigh machinery
// the two listed-edge keys are rewritten in place: no adjacency walk,
// no dirty pass, no reweigh, and gen unchanged by construction. It
// returns false (touching nothing) when the pattern does not apply;
// the caller falls back to applySwap. Like applySwap it expects
// cfg.nodes[u] and cfg.nodes[v] already exchanged by the caller.
func (bi *batchIndex) applySwapFast(u, v int, beforeU, beforeV State) bool {
	sp := bi.sp
	if sp == nil {
		return false
	}
	au, av := sp.adj[u], sp.adj[v]
	if len(au) != 2 || len(av) != 2 {
		return false
	}
	x := int(au[0])
	if x == v {
		x = int(au[1])
	}
	y := int(av[0])
	if y == u {
		y = int(av[1])
	}
	nodes := bi.cfg.nodes
	s := nodes[x]
	if s != nodes[y] {
		return false
	}
	bi.byState[beforeU][bi.slot[u]] = int32(v)
	bi.byState[beforeV][bi.slot[v]] = int32(u)
	bi.slot[u], bi.slot[v] = bi.slot[v], bi.slot[u]
	// Unlist both old keys before listing the new ones: edge {v, y}
	// would transiently be mirrored in two classes otherwise, and the
	// mirror scan matches on the endpoint pair alone.
	idA := bi.classID(beforeU, s)
	idB := bi.classID(beforeV, s)
	slotA, haveA := bi.unlistEdge(u, x, idA)
	slotB, haveB := bi.unlistEdge(v, y, idB)
	if haveA {
		bi.listEdgeAt(v, y, idA, slotA)
	}
	if haveB {
		bi.listEdgeAt(u, x, idB, slotB)
	}
	return true
}

// unlistEdge removes the mirror entry of edge {a, b} (class id) and
// returns the edge's slot in the class list; the list entry itself is
// left in place for listEdgeAt to overwrite. Unlisted classes keep no
// entries and report false — their counts are unchanged by a
// same-class key replacement, so there is nothing to do.
func (bi *batchIndex) unlistEdge(a, b, id int) (int32, bool) {
	if !bi.listed[id] {
		return 0, false
	}
	if a > b {
		a, b = b, a
	}
	m := bi.mirror[a]
	mi := 0
	for m[mi].other != int32(b) {
		mi++
	}
	slot := m[mi].slot
	m[mi] = m[len(m)-1]
	bi.mirror[a] = m[:len(m)-1]
	return slot, true
}

// listEdgeAt writes edge {a, b} into class id's list at slot and
// mirrors it at the lower endpoint.
func (bi *batchIndex) listEdgeAt(a, b, id int, slot int32) {
	if a > b {
		a, b = b, a
	}
	bi.edgeList[id][slot] = uint64(a)<<32 | uint64(b)
	bi.mirror[a] = append(bi.mirror[a], mirrorEntry{other: int32(b), class: int32(id), slot: slot})
}

// reclassifyIncident moves every active edge incident to u except
// {u, v} from class {before, sx} to class {after, sx} — the
// state-change fixup shared by Update and applySwap. On the sparse
// store it walks the adjacency row in place.
func (bi *batchIndex) reclassifyIncident(u, v int, before, after State) {
	cfg := bi.cfg
	if bi.sp != nil {
		// Hot path: hoisted classID arithmetic and a fused mask check
		// so moves through the inert bulk (neither class read by any
		// rule) cost one masked load per neighbor.
		nodes := cfg.nodes
		effMask := bi.effMask
		q := bi.q
		rb, ra := int(before)*q, int(after)*q
		for _, x32 := range bi.sp.adj[u] {
			x := int(x32)
			if x == v {
				continue
			}
			sx := int(nodes[x])
			var from, to int
			if sx >= int(before) {
				from = rb + sx
			} else {
				from = sx*q + int(before)
			}
			if sx >= int(after) {
				to = ra + sx
			} else {
				to = sx*q + int(after)
			}
			if effMask[from]|effMask[to] == 0 {
				continue
			}
			bi.dropEdge(u, x, from)
			bi.addEdge(u, x, to)
			bi.markDirty(from)
			bi.markDirty(to)
		}
		return
	}
	bi.nbuf = cfg.store.neighbors(u, bi.nbuf[:0])
	for _, x := range bi.nbuf {
		if x == v {
			continue
		}
		sx := cfg.nodes[x]
		bi.moveEdge(u, x, bi.classID(before, sx), bi.classID(after, sx))
	}
}

// Sample returns a uniformly random enabled pair in random
// orientation — the same two-stage class draw as ClassIndex.Sample,
// over the same weights.
func (bi *batchIndex) Sample(rng *RNG) (u, v int) {
	r := rng.Int64N(bi.enabled)
	for a := 0; a < bi.q; a++ {
		for b := a; b < bi.q; b++ {
			id := a*bi.q + b
			if w := bi.w[2*id]; r < w {
				return bi.sampleNonEdge(a, b, rng)
			} else {
				r -= w
			}
			if w := bi.w[2*id+1]; r < w {
				key := bi.edgeList[id][rng.IntN(len(bi.edgeList[id]))]
				return orient(int(key>>32), int(key&0xffffffff), rng)
			} else {
				r -= w
			}
		}
	}
	panic("core: batchIndex class weights inconsistent with total")
}

func (bi *batchIndex) sampleNonEdge(a, b int, rng *RNG) (int, int) {
	return sampleNonEdgeClass(bi.cfg, bi.byState[a], bi.byState[b], a == b,
		bi.edgeCount[a*bi.q+b], rng, &bi.rejections, &bi.fallbacks)
}

// ---------------------------------------------------------------------
// Swap-run collapse support (see batchLoop's collapse block in
// batch.go). A deterministic-swap class whose edge list holds exactly
// two edges sharing an endpoint is a single walker on a line (or
// cycle): the shared endpoint carries the walker state ws, its two
// neighbours carry the partner state bs, and every landing on the
// class moves the walker one position left or right with equal
// probability. While the walker stays on a segment of nodes that all
// have state bs and degree 2, no landing can change any class weight —
// the census is frozen by construction, not just by observation — so k
// consecutive landings form an unconstrained ±1 random walk and their
// net displacement is one WalkDisplacement draw. walkPath caches that
// segment so consecutive collapses against the same census pay one
// adjacency scan, amortized O(1) per collapsed landing.

// walkPath is the cached safe segment around a single walker, in path
// coordinates: position 0 is the anchor node the path was scanned
// from, negative positions extend through the first scan direction
// (left), positive through the second (right).
type walkPath struct {
	left   []int32 // nodes at positions −1, −2, …
	right  []int32 // nodes at positions +1, +2, …
	anchor int32   // node at position 0 (the walker at scan time)
	pos    int64   // walker's current position
	lo, hi int64   // occupiable range: a walk staying in [lo, hi] is unconstrained
	openL  bool    // the left scan stopped at its cap, not at an unsafe node
	openR  bool
	cyclic bool  // the segment closes into an all-safe cycle
	ring   int64 // cycle length when cyclic
	ws, bs State // walker and partner state of the cached class
	gen    uint64
	cell   int32
	valid  bool
}

// node maps a path position to its node id. On a cycle the positions
// wrap (ring = cycle length); the displacement law is symmetric, so
// the direction convention is immaterial.
func (wp *walkPath) node(p int64) int32 {
	if wp.cyclic {
		m := p % wp.ring
		if m < 0 {
			m += wp.ring
		}
		if m == 0 {
			return wp.anchor
		}
		return wp.left[m-1]
	}
	switch {
	case p == 0:
		return wp.anchor
	case p < 0:
		return wp.left[-p-1]
	default:
		return wp.right[p-1]
	}
}

// scanDir walks the line away from anchor starting at first, appending
// safe nodes (state bs, degree 2) until an unsafe node or the cap.
// ext is the furthest position the walker may occupy in this
// direction: occupying position k needs positions 1…k safe and the
// node at k+1 present with state bs (it becomes the walker's other
// listed edge). open reports a cap stop — the segment continues but
// was not scanned. wrapped reports the scan returning to the anchor:
// an all-safe cycle.
func (bi *batchIndex) scanDir(buf []int32, anchor, first int32, bs State, cap int64) (nodes []int32, ext int64, open, wrapped bool) {
	nodes = buf
	sp := bi.sp
	cfg := bi.cfg
	prev, cur := anchor, first
	for {
		if cur == anchor {
			return nodes, int64(len(nodes)), false, true
		}
		if cfg.nodes[cur] != bs {
			// cur cannot even serve as the lookahead neighbour of an
			// occupied position.
			return nodes, int64(len(nodes)) - 1, false, false
		}
		row := sp.adj[cur]
		if len(row) != 2 {
			// cur is a valid lookahead (state bs) but not occupiable:
			// moving onto it would reclassify its extra or missing
			// edges.
			return nodes, int64(len(nodes)), false, false
		}
		if int64(len(nodes)) >= cap {
			// Cap stop: the last appended node needs cur as lookahead,
			// so the extent is one short of the scan.
			return nodes, int64(len(nodes)) - 1, true, false
		}
		nodes = append(nodes, cur)
		nxt := row[0]
		if nxt == prev {
			nxt = row[1]
		}
		prev, cur = cur, nxt
	}
}

// buildWalkPath scans a fresh walkPath for swap class id, centred on
// the single walker the class currently hosts. It returns false when
// the class does not host exactly one interior walker (two listed
// edges sharing a degree-2 endpoint) — multi-walker stretches fall
// back to per-landing kernels.
func (bi *batchIndex) buildWalkPath(id int, need int64) bool {
	wp := &bi.wpath
	wp.valid = false
	sp := bi.sp
	if sp == nil {
		return false
	}
	list := bi.edgeList[id]
	if len(list) != 2 {
		return false
	}
	a0, b0 := int32(list[0]>>32), int32(list[0]&0xffffffff)
	a1, b1 := int32(list[1]>>32), int32(list[1]&0xffffffff)
	var c, n1, n2 int32
	switch {
	case a0 == a1:
		c, n1, n2 = a0, b0, b1
	case a0 == b1:
		c, n1, n2 = a0, b0, a1
	case b0 == a1:
		c, n1, n2 = b0, a0, b1
	case b0 == b1:
		c, n1, n2 = b0, a0, a1
	default:
		return false // two separate walkers share the class
	}
	if len(sp.adj[c]) != 2 {
		return false
	}
	ws := bi.cfg.nodes[c]
	bs := State(id / bi.q)
	if bs == ws {
		bs = State(id % bi.q)
	}
	wp.anchor = c
	wp.pos = 0
	wp.ws, wp.bs = ws, bs
	wp.cyclic, wp.ring = false, 0
	scanCap := need + 1
	var extL, extR int64
	var wrapped bool
	wp.left, extL, wp.openL, wrapped = bi.scanDir(wp.left[:0], c, n1, bs, scanCap)
	if wrapped {
		// The walker sits on an all-safe cycle: every position is
		// occupiable and displacements wrap modulo the ring.
		wp.cyclic = true
		wp.ring = int64(len(wp.left)) + 1
		wp.valid = true
		return true
	}
	wp.right, extR, wp.openR, _ = bi.scanDir(wp.right[:0], c, n2, bs, scanCap)
	wp.lo, wp.hi = -extL, extR
	if wp.lo > 0 || wp.hi < 0 {
		// A direction with extent −1 (the immediate neighbour is not
		// even state bs) cannot happen for a listed swap edge, but keep
		// the guard: an empty occupiable range means no collapse.
		return false
	}
	wp.valid = true
	return true
}

// walkChunk reports how many consecutive landings on swap cell can be
// collapsed into one displacement draw right now: the distance from
// the walker to the nearest unsafe position along its cached path,
// bounded by need. Zero means the class does not currently host a
// single interior walker. The cache is rebuilt when the census
// generation moved, the cell changed, or a cap-stopped scan is the
// binding constraint.
func (bi *batchIndex) walkChunk(cell int32, need int64) int64 {
	wp := &bi.wpath
	id := int(cell >> 1)
	if !wp.valid || wp.gen != bi.gen || wp.cell != cell {
		if !bi.buildWalkPath(id, need) {
			return 0
		}
		wp.gen, wp.cell = bi.gen, cell
	}
	if wp.cyclic {
		return need
	}
	avail := min(wp.pos-wp.lo, wp.hi-wp.pos)
	if avail < need && (wp.openL || wp.openR) {
		// The scan cap, not the topology, limits the chunk: rescan
		// around the walker's current position with the bigger horizon.
		if !bi.buildWalkPath(id, need) {
			return 0
		}
		wp.gen, wp.cell = bi.gen, cell
		if wp.cyclic {
			return need
		}
		avail = min(wp.pos-wp.lo, wp.hi-wp.pos)
	}
	return min(avail, need)
}

// collapseMove commits a collapsed swap run's net displacement d: the
// walker state teleports from its current path position to position
// pos+d — a two-node state exchange plus index fixup, identical in
// effect to |d| single swaps along the segment. Every class weight is
// provably unchanged (the walker's two listed edges drop and two new
// ones add in the same class; the traversed interior keeps state bs),
// so gen stays put and any outstanding plan survives. d = 0 (or a
// full wrap on a cycle) leaves the configuration untouched.
func (bi *batchIndex) collapseMove(d int64) {
	wp := &bi.wpath
	from := int(wp.node(wp.pos))
	wp.pos += d
	to := int(wp.node(wp.pos))
	if from == to {
		return
	}
	ws, bs := wp.ws, wp.bs
	cfg := bi.cfg
	cfg.nodes[from] = bs
	cfg.nodes[to] = ws
	bi.byState[ws][bi.slot[from]] = int32(to)
	bi.byState[bs][bi.slot[to]] = int32(from)
	bi.slot[from], bi.slot[to] = bi.slot[to], bi.slot[from]
	bi.stamp++
	// Mutual exclusion mirrors applySwap: when |d| = 1 the {from, to}
	// edge's unordered class is unchanged and must not be touched; for
	// larger jumps the exclusion never matches.
	bi.reclassifyIncident(from, to, ws, bs)
	bi.reclassifyIncident(to, from, bs, ws)
	bi.flushDirty()
}
