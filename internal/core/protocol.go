// Package core implements the Network Constructor (NET) model of
// Michail & Spirakis: populations of identical finite-state processes
// that interact in adversarially scheduled pairs and activate or
// deactivate the binary-state edges joining them, until the active
// subgraph stabilizes to a target network.
//
// A protocol is a 4-tuple (Q, q0, Qout, δ) where δ : Q×Q×{0,1} →
// Q×Q×{0,1}. The package provides the protocol representation, the
// configuration (node states plus a triangular edge bitset), fair and
// uniform-random schedulers, and an execution engine with convergence
// detection and metrics.
package core

import (
	"errors"
	"fmt"
)

// State is an index into a protocol's state-name table. Protocols in the
// paper use at most a few dozen states, so a byte suffices.
type State uint8

// MaxStates bounds the number of node states a static protocol may use.
const MaxStates = 255

// Rule is a single effective transition (a, b, c) → (a', b', c').
// Ineffective transitions (identity) are implicit and never listed,
// matching the paper's presentation convention.
//
// A rule may carry an alternative outcome taken with probability 1/2,
// which models the PREL extension of the paper (Definition 4): the
// weakest probabilistic version in which an interacting pair may toss
// one fair coin.
type Rule struct {
	A, B State // matched node states (unordered per the symmetry convention)
	Edge bool  // matched edge state

	OutA, OutB State // new node states
	OutEdge    bool  // new edge state

	// Alt, when set, makes the rule probabilistic: with probability 1/2
	// the Out* triple applies, otherwise the Alt* triple.
	Alt     bool
	AltA    State
	AltB    State
	AltEdge bool
}

// Effective reports whether the rule changes anything when its primary
// outcome fires.
func (r Rule) Effective() bool {
	return r.OutA != r.A || r.OutB != r.B || r.OutEdge != r.Edge
}

// entry is one compiled δ lookup cell for an ordered (a, b, edge) triple.
type entry struct {
	outA, outB State
	altA, altB State
	outEdge    bool
	altEdge    bool
	effective  bool
	alt        bool
	// coin is set when a == b but outA != outB: the engine must assign
	// the two distinct outcomes equiprobably, the single symmetry-
	// breaking coin the model grants (Section 3.1).
	coin bool
}

// Protocol is a compiled network constructor.
//
// Construct with NewProtocol; the zero value is not usable.
type Protocol struct {
	name    string
	states  []string
	initial State
	output  []bool // per-state output membership (Qout)
	rules   []Rule
	table   []entry // dense δ: index (a*|Q|+b)*2 + edgeBit
}

// NewProtocol compiles a protocol from its state-name table, initial
// state, output set and effective rules.
//
// Per Definition 1, δ must be defined at (a, a, c) for all a and at
// exactly one of (a, b, c) / (b, a, c) for a ≠ b. Listing both
// orientations of the same unordered triple is rejected; unlisted
// triples compile to ineffective identity transitions.
//
// qout lists the output states Qout; nil means every state is an output
// state (the common case in the paper).
func NewProtocol(name string, states []string, initial State, qout []State, rules []Rule) (*Protocol, error) {
	q := len(states)
	switch {
	case name == "":
		return nil, errors.New("core: protocol name must be non-empty")
	case q == 0:
		return nil, errors.New("core: protocol needs at least one state")
	case q > MaxStates:
		return nil, fmt.Errorf("core: %d states exceeds the maximum of %d", q, MaxStates)
	case int(initial) >= q:
		return nil, fmt.Errorf("core: initial state %d out of range [0,%d)", initial, q)
	}
	seen := make(map[string]bool, q)
	for i, s := range states {
		if s == "" {
			return nil, fmt.Errorf("core: state %d has an empty name", i)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: duplicate state name %q", s)
		}
		seen[s] = true
	}

	output := make([]bool, q)
	if qout == nil {
		for i := range output {
			output[i] = true
		}
	} else {
		for _, s := range qout {
			if int(s) >= q {
				return nil, fmt.Errorf("core: output state %d out of range [0,%d)", s, q)
			}
			output[s] = true
		}
	}

	p := &Protocol{
		name:    name,
		states:  states,
		initial: initial,
		output:  output,
		rules:   make([]Rule, len(rules)),
		table:   make([]entry, q*q*2),
	}
	copy(p.rules, rules)

	// Identity-fill.
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			for e := 0; e < 2; e++ {
				p.table[(a*q+b)*2+e] = entry{
					outA:    State(a),
					outB:    State(b),
					outEdge: e == 1,
				}
			}
		}
	}

	defined := make(map[[3]int]bool, len(rules))
	for i, r := range rules {
		if int(r.A) >= q || int(r.B) >= q || int(r.OutA) >= q || int(r.OutB) >= q {
			return nil, fmt.Errorf("core: rule %d references a state out of range", i)
		}
		if r.Alt && (int(r.AltA) >= q || int(r.AltB) >= q) {
			return nil, fmt.Errorf("core: rule %d alt outcome references a state out of range", i)
		}
		key := [3]int{int(r.A), int(r.B), boolToInt(r.Edge)}
		mirror := [3]int{int(r.B), int(r.A), boolToInt(r.Edge)}
		if defined[key] {
			return nil, fmt.Errorf("core: rule %d redefines δ(%s, %s, %v)", i, states[r.A], states[r.B], r.Edge)
		}
		if r.A != r.B && defined[mirror] {
			return nil, fmt.Errorf("core: rule %d defines δ(%s, %s, %v) whose mirror orientation is already defined", i, states[r.A], states[r.B], r.Edge)
		}
		defined[key] = true

		e := entry{
			outA:      r.OutA,
			outB:      r.OutB,
			outEdge:   r.OutEdge,
			effective: r.Effective() || r.Alt,
			alt:       r.Alt,
			altA:      r.AltA,
			altB:      r.AltB,
			altEdge:   r.AltEdge,
			coin:      r.A == r.B && r.OutA != r.OutB,
		}
		p.table[(int(r.A)*q+int(r.B))*2+boolToInt(r.Edge)] = e
		if r.A != r.B {
			// Mirror orientation: swap roles.
			m := entry{
				outA:      r.OutB,
				outB:      r.OutA,
				outEdge:   r.OutEdge,
				effective: e.effective,
				alt:       r.Alt,
				altA:      r.AltB,
				altB:      r.AltA,
				altEdge:   r.AltEdge,
			}
			p.table[(int(r.B)*q+int(r.A))*2+boolToInt(r.Edge)] = m
		}
	}
	return p, nil
}

// MustProtocol is NewProtocol for statically known-good protocol
// definitions; it panics on error. Intended for package-level protocol
// constructors whose rule lists are fixed at compile time.
func MustProtocol(name string, states []string, initial State, qout []State, rules []Rule) *Protocol {
	p, err := NewProtocol(name, states, initial, qout, rules)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the protocol's name.
func (p *Protocol) Name() string { return p.name }

// Size returns |Q|, the number of node states — the paper's measure of
// protocol size.
func (p *Protocol) Size() int { return len(p.states) }

// Initial returns q0.
func (p *Protocol) Initial() State { return p.initial }

// States returns a copy of the state-name table.
func (p *Protocol) States() []string {
	out := make([]string, len(p.states))
	copy(out, p.states)
	return out
}

// StateName returns the name of s, or a numeric placeholder if out of
// range.
func (p *Protocol) StateName(s State) string {
	if int(s) < len(p.states) {
		return p.states[s]
	}
	return fmt.Sprintf("state#%d", s)
}

// StateIndex returns the index of the named state.
func (p *Protocol) StateIndex(name string) (State, bool) {
	for i, s := range p.states {
		if s == name {
			return State(i), true
		}
	}
	return 0, false
}

// IsOutput reports whether s ∈ Qout.
func (p *Protocol) IsOutput(s State) bool {
	return int(s) < len(p.output) && p.output[s]
}

// Rules returns a copy of the protocol's effective rules.
func (p *Protocol) Rules() []Rule {
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// Randomized reports whether any rule carries a probability-1/2
// alternative outcome, i.e. whether the protocol needs the PREL
// extension.
func (p *Protocol) Randomized() bool {
	for _, r := range p.rules {
		if r.Alt {
			return true
		}
	}
	return false
}

// Batchable reports whether some interaction outcome of the protocol
// can leave the state-class census unchanged: a deterministic state
// swap across a preserved edge state ((a, b, e) → (b, a, e) with
// a ≠ b — the random-walk workhorse of Simple-Global-Line), or any
// probabilistic rule (whose coin may select an identity or
// census-preserving branch). The batch engine can only amortize its
// multivariate bucket plans across census-frozen stretches, and only
// batchable protocols ever produce one — so runBatch steps
// non-batchable protocols exactly, which keeps them bit-identical to
// the sparse engine by construction.
func (p *Protocol) Batchable() bool {
	q := len(p.states)
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			for _, edge := range []bool{false, true} {
				e := p.lookup(State(a), State(b), edge)
				if !e.effective {
					continue
				}
				if e.alt {
					return true
				}
				if a != b && e.outA == State(b) && e.outB == State(a) && e.outEdge == edge {
					return true
				}
			}
		}
	}
	return false
}

// lookup returns the compiled entry for the ordered triple.
func (p *Protocol) lookup(a, b State, edge bool) entry {
	return p.table[(int(a)*len(p.states)+int(b))*2+boolToInt(edge)]
}

// Outcome is one possible result of an interaction, used by exhaustive
// state-space exploration. Probabilistic rules and symmetry-breaking
// coins yield several outcomes per interaction.
type Outcome struct {
	OutA, OutB State
	OutEdge    bool
}

// Outcomes enumerates every possible result of an interaction between
// ordered states (a, b) over the given edge state: the primary outcome,
// the probability-1/2 alternative if present, and the coin-swapped
// orientations when the rule must break symmetry between equal states.
// Ineffective interactions return nil.
func (p *Protocol) Outcomes(a, b State, edge bool) []Outcome {
	e := p.lookup(a, b, edge)
	if !e.effective {
		return nil
	}
	var outs []Outcome
	appendBranch := func(oa, ob State, oe bool) {
		branch := Outcome{OutA: oa, OutB: ob, OutEdge: oe}
		for _, seen := range outs {
			if seen == branch {
				return
			}
		}
		outs = append(outs, branch)
	}
	appendBranch(e.outA, e.outB, e.outEdge)
	if a == b && e.outA != e.outB {
		appendBranch(e.outB, e.outA, e.outEdge)
	}
	if e.alt {
		appendBranch(e.altA, e.altB, e.altEdge)
		if a == b && e.altA != e.altB {
			appendBranch(e.altB, e.altA, e.altEdge)
		}
	}
	// Drop identity branches a probabilistic rule may contain.
	filtered := outs[:0]
	for _, o := range outs {
		if o.OutA != a || o.OutB != b || o.OutEdge != edge {
			filtered = append(filtered, o)
		}
	}
	return filtered
}

// EffectiveOn reports whether δ has an effective transition for the
// unordered pair of states under the given edge state.
func (p *Protocol) EffectiveOn(a, b State, edge bool) bool {
	return p.lookup(a, b, edge).effective
}

// EdgeEffectiveOn reports whether an applicable transition would (or,
// for probabilistic rules, could) change the edge state.
func (p *Protocol) EdgeEffectiveOn(a, b State, edge bool) bool {
	e := p.lookup(a, b, edge)
	if !e.effective {
		return false
	}
	return e.outEdge != edge || (e.alt && e.altEdge != edge)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
