package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// pathTopology returns the path 0–1–…–(n−1) as a Topology.
func pathTopology(n int) *Topology {
	g := graph.New(n)
	for u := 0; u+1 < n; u++ {
		g.AddEdge(u, u+1)
	}
	return NewTopology(g)
}

// matchingProtocol activates an edge between any two q0 nodes and
// parks both endpoints — quiescent exactly when no permitted pair has
// two q0 endpoints left.
func matchingProtocol() *Protocol {
	return MustProtocol("match", []string{"q0", "m"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
}

func TestTopologyStructure(t *testing.T) {
	t.Parallel()
	g := graph.New(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(1, 0)
	topo := NewTopology(g)
	if topo.N() != 5 {
		t.Fatalf("N = %d, want 5", topo.N())
	}
	if topo.PairCount() != 3 {
		t.Fatalf("PairCount = %d, want 3", topo.PairCount())
	}
	want := [][2]int{{0, 1}, {0, 4}, {1, 3}} // sorted, u < v
	for i, w := range want {
		if u, v := topo.PairAt(i); u != w[0] || v != w[1] {
			t.Fatalf("PairAt(%d) = {%d,%d}, want {%d,%d}", i, u, v, w[0], w[1])
		}
	}
	for _, w := range want {
		if !topo.Contains(w[0], w[1]) || !topo.Contains(w[1], w[0]) {
			t.Fatalf("Contains(%d,%d) should hold in both orientations", w[0], w[1])
		}
	}
	for _, bad := range [][2]int{{0, 3}, {2, 4}, {1, 4}, {2, 0}} {
		if topo.Contains(bad[0], bad[1]) {
			t.Fatalf("Contains(%d,%d) should be false", bad[0], bad[1])
		}
	}
	if topo.Degree(0) != 2 || topo.Degree(2) != 0 || topo.Degree(1) != 2 {
		t.Fatalf("degrees = %d,%d,%d; want 2,0,2", topo.Degree(0), topo.Degree(2), topo.Degree(1))
	}
}

func TestTopologySamplePairCoversPermittedPairsOnly(t *testing.T) {
	t.Parallel()
	topo := pathTopology(6)
	rng := NewRNG(42)
	type pair struct{ u, v int }
	hits := make(map[pair]int)
	flipped := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		u, v := topo.SamplePair(rng)
		if u > v {
			flipped++
			u, v = v, u
		}
		if !topo.Contains(u, v) {
			t.Fatalf("sampled non-permitted pair {%d,%d}", u, v)
		}
		hits[pair{u, v}]++
	}
	if len(hits) != topo.PairCount() {
		t.Fatalf("sampled %d distinct pairs, want all %d", len(hits), topo.PairCount())
	}
	// Uniform over 5 pairs: each expects 1000 draws; 4σ ≈ 127.
	for p, c := range hits {
		if c < 800 || c > 1200 {
			t.Fatalf("pair %v drawn %d times, outside [800, 1200]", p, c)
		}
	}
	if flipped < draws/3 || flipped > 2*draws/3 {
		t.Fatalf("orientation flip count %d of %d is not coin-like", flipped, draws)
	}
}

func TestParseTopologySpec(t *testing.T) {
	t.Parallel()
	if spec, err := ParseTopologySpec(""); err != nil || spec != nil {
		t.Fatalf("empty string: got (%v, %v), want (nil, nil)", spec, err)
	}
	spec, err := ParseTopologySpec("complete")
	if err != nil || spec == nil || spec.Kind != TopoComplete {
		t.Fatalf("complete: got (%v, %v)", spec, err)
	}
	if spec.Label() != "" {
		t.Fatalf("complete Label = %q, want empty (pre-topology record compatibility)", spec.Label())
	}
	for _, s := range []string{"gnp@0.05", "rgg@0.1", "cm@4"} {
		spec, err := ParseTopologySpec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if spec.String() != s || spec.Label() != s {
			t.Fatalf("%s: String=%q Label=%q", s, spec.String(), spec.Label())
		}
		var rt TopologySpec
		if err := rt.UnmarshalText([]byte(s)); err != nil || rt != *spec {
			t.Fatalf("%s: text round-trip gave %+v (%v)", s, rt, err)
		}
	}
	for _, s := range []string{"ring@3", "gnp", "gnp@", "gnp@x", "@0.5"} {
		if _, err := ParseTopologySpec(s); err == nil {
			t.Fatalf("%q: want parse error", s)
		}
	}
}

func TestTopologySpecValidate(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		spec TopologySpec
		n    int
		ok   bool
	}{
		{TopologySpec{Kind: TopoGnp, Param: 0.5}, 10, true},
		{TopologySpec{Kind: TopoGnp, Param: 1.5}, 10, false},
		{TopologySpec{Kind: TopoGnp, Param: -0.1}, 10, false},
		{TopologySpec{Kind: TopoRGG, Param: 0.1}, 10, true},
		{TopologySpec{Kind: TopoRGG, Param: 0}, 10, false},
		{TopologySpec{Kind: TopoCM, Param: 2}, 10, true},
		{TopologySpec{Kind: TopoCM, Param: 2.5}, 10, false},
		{TopologySpec{Kind: TopoCM, Param: 10}, 10, false}, // d > n−1
		{TopologySpec{Kind: TopoCM, Param: 3}, 5, false},   // n·d odd
		{TopologySpec{Kind: "ring", Param: 1}, 10, false},
	} {
		err := tc.spec.Validate(tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("%+v n=%d: got err %v, want ok=%t", tc.spec, tc.n, err, tc.ok)
		}
	}
}

func TestTopologySpecBuildAndRealize(t *testing.T) {
	t.Parallel()
	if topo, err := (*TopologySpec)(nil).Build(16, 1); err != nil || topo != nil {
		t.Fatalf("nil spec: got (%v, %v), want (nil, nil)", topo, err)
	}
	complete := &TopologySpec{Kind: TopoComplete}
	if topo, err := complete.Build(16, 1); err != nil || topo != nil {
		t.Fatalf("complete spec: got (%v, %v), want (nil, nil) — the engines' fast path", topo, err)
	}
	spec := &TopologySpec{Kind: TopoGnp, Param: 0.3}
	a, err := spec.Realize(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Realize(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.PairCount() != b.PairCount() {
		t.Fatalf("same seed realized different graphs: %d vs %d pairs", a.PairCount(), b.PairCount())
	}
	for i := 0; i < a.PairCount(); i++ {
		au, av := a.PairAt(i)
		bu, bv := b.PairAt(i)
		if au != bu || av != bv {
			t.Fatalf("same seed realized different graphs at pair %d", i)
		}
	}
	c, err := spec.Realize(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := c.PairCount() == a.PairCount()
	if same {
		for i := 0; i < a.PairCount(); i++ {
			au, av := a.PairAt(i)
			cu, cv := c.PairAt(i)
			if au != cu || av != cv {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("adjacent seeds realized identical G(32, 0.3) instances (possible but astronomically unlikely)")
	}
}

// TestCompleteTopologyBitIdentical pins the refactor's zero-cost
// contract: a run whose topology came from the "complete" spec is
// bit-identical to a run with no topology at all, on every engine —
// complete builds to a nil *Topology, so the engines execute the exact
// pre-topology code path.
func TestCompleteTopologyBitIdentical(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	spec, err := ParseTopologySpec("complete")
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineBaseline, EngineFast, EngineSparse, EngineBatch} {
		topo, err := spec.Realize(24, 5)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(p, 24, Options{Seed: 5, Engine: eng, Detector: QuiescenceDetector()})
		if err != nil {
			t.Fatal(err)
		}
		withSpec, err := Run(p, 24, Options{Seed: 5, Engine: eng, Detector: QuiescenceDetector(), Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		if base.Steps != withSpec.Steps || base.ConvergenceTime != withSpec.ConvergenceTime ||
			base.EffectiveSteps != withSpec.EffectiveSteps || base.EdgeChanges != withSpec.EdgeChanges {
			t.Fatalf("%s: complete-spec run diverged from plain run: %+v vs %+v", eng, base, withSpec)
		}
		if base.Final.Fingerprint() != withSpec.Final.Fingerprint() {
			t.Fatalf("%s: complete-spec final configuration differs", eng)
		}
	}
}

func TestRunTopologyValidation(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	det := QuiescenceDetector()

	if _, err := Run(p, 8, Options{Seed: 1, Detector: det, Topology: pathTopology(6)}); err == nil ||
		!strings.Contains(err.Error(), "topology has 6 nodes") {
		t.Fatalf("population mismatch: got %v", err)
	}
	if _, err := Run(p, 4, Options{Seed: 1, Detector: det, Topology: NewTopology(graph.New(4))}); err == nil ||
		!strings.Contains(err.Error(), "permits no pairs") {
		t.Fatalf("empty topology: got %v", err)
	}
	for _, sched := range []Scheduler{&WeightedScheduler{}, &BiasedScheduler{Cut: 2, Epsilon: 0.5}} {
		if _, err := Run(p, 6, Options{Seed: 1, Detector: det, Scheduler: sched, Topology: pathTopology(6)}); err == nil ||
			!strings.Contains(err.Error(), "does not support a restricted topology") {
			t.Fatalf("%s scheduler: got %v", sched.Name(), err)
		}
	}

	// An initial configuration with an active edge outside the permitted
	// set violates active ⊆ permitted and must be rejected; the same
	// edge on a permitted pair is fine.
	bad := NewConfig(p, 6)
	bad.SetNode(0, 1)
	bad.SetNode(3, 1)
	bad.SetEdge(0, 3, true) // path 0–1–…–5 does not permit {0, 3}
	if _, err := Run(p, 6, Options{Seed: 1, Detector: det, Topology: pathTopology(6), Initial: bad}); err == nil ||
		!strings.Contains(err.Error(), "outside the permitted topology") {
		t.Fatalf("out-of-topology active edge: got %v", err)
	}
	good := NewConfig(p, 6)
	good.SetNode(0, 1)
	good.SetNode(1, 1)
	good.SetEdge(0, 1, true)
	if _, err := Run(p, 6, Options{Seed: 1, Detector: det, Topology: pathTopology(6), Initial: good}); err != nil {
		t.Fatalf("permitted active edge rejected: %v", err)
	}
}

// TestRestrictedRunsKeepActiveWithinTopology runs the matching
// protocol under a sparse random topology on every engine and checks
// the invariant the indexes rely on: every active edge of the final
// configuration is a permitted pair, and the run quiesced.
func TestRestrictedRunsKeepActiveWithinTopology(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	spec := &TopologySpec{Kind: TopoGnp, Param: 0.15}
	for _, eng := range []Engine{EngineBaseline, EngineFast, EngineSparse, EngineBatch} {
		topo, err := spec.Realize(32, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, 32, Options{Seed: 11, Engine: eng, Detector: QuiescenceDetector(), Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !res.Converged {
			t.Fatalf("%s: matching did not quiesce under the restricted topology", eng)
		}
		res.Final.ForEachActiveEdge(func(u, v int) {
			if !topo.Contains(u, v) {
				t.Errorf("%s: active edge {%d,%d} outside the permitted topology", eng, u, v)
			}
		})
		// Quiescence under topology means no permitted pair is enabled:
		// for the matching rule, no permitted pair has two q0 endpoints.
		for i := 0; i < topo.PairCount(); i++ {
			u, v := topo.PairAt(i)
			if res.Final.Node(u) == 0 && res.Final.Node(v) == 0 {
				t.Fatalf("%s: permitted pair {%d,%d} still enabled at quiescence", eng, u, v)
			}
		}
	}
}

// TestSparseBatchBitIdenticalUnderTopology pins the batch engine's
// exact-fallback contract: with a restricted topology attached, a
// batch run is bit-identical to the sparse run with the same seed.
func TestSparseBatchBitIdenticalUnderTopology(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	spec := &TopologySpec{Kind: TopoRGG, Param: 0.25}
	for seed := uint64(1); seed <= 4; seed++ {
		topoA, err := spec.Realize(48, seed)
		if err != nil {
			t.Fatal(err)
		}
		topoB, err := spec.Realize(48, seed)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := Run(p, 48, Options{Seed: seed, Engine: EngineSparse, Detector: QuiescenceDetector(), Topology: topoA})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Run(p, 48, Options{Seed: seed, Engine: EngineBatch, Detector: QuiescenceDetector(), Topology: topoB})
		if err != nil {
			t.Fatal(err)
		}
		if sparse.Steps != batch.Steps || sparse.ConvergenceTime != batch.ConvergenceTime ||
			sparse.EffectiveSteps != batch.EffectiveSteps || sparse.EdgeChanges != batch.EdgeChanges {
			t.Fatalf("seed %d: sparse %+v vs batch %+v", seed, sparse, batch)
		}
		if sparse.Final.Fingerprint() != batch.Final.Fingerprint() {
			t.Fatalf("seed %d: final configurations differ", seed)
		}
		if batch.Metrics.ExactFallbackLandings != batch.Metrics.Landings {
			t.Fatalf("seed %d: batch run under topology must exact-step every landing (%d of %d)",
				seed, batch.Metrics.ExactFallbackLandings, batch.Metrics.Landings)
		}
	}
}

// TestRestrictedRunsUnderFairSchedulers covers the two deterministic
// fair schedulers' restricted forms: both must cycle over exactly the
// permitted pairs and still converge.
func TestRestrictedRunsUnderFairSchedulers(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	for _, mk := range []func() Scheduler{
		func() Scheduler { return &RoundRobinScheduler{} },
		func() Scheduler { return &PermutationScheduler{} },
	} {
		sched := mk()
		res, err := Run(p, 12, Options{Seed: 3, Scheduler: sched, Detector: QuiescenceDetector(), Topology: pathTopology(12)})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge under the restricted topology", sched.Name())
		}
	}
}

// TestQuiescentScanHonorsTopology checks Config.Quiescent's restricted
// scan: a pair that would be enabled on the complete graph does not
// block quiescence when the topology forbids it.
func TestQuiescentScanHonorsTopology(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	cfg := NewConfig(p, 4)
	// Path 0–1–2–3; park 1 and 2 so only the non-permitted pair {0, 3}
	// has two q0 endpoints.
	cfg.SetNode(1, 1)
	cfg.SetNode(2, 1)
	if cfg.Quiescent() {
		t.Fatal("complete graph: {0,3} is enabled, not quiescent")
	}
	cfg.topo = pathTopology(4)
	if !cfg.Quiescent() {
		t.Fatal("restricted graph: no permitted pair is enabled, should be quiescent")
	}
	if !cfg.EdgeQuiescent() {
		t.Fatal("restricted graph: should be edge-quiescent too")
	}
}

// TestWorkspaceTopologySnapshotMiss checks that the workspace's dense-
// index snapshot is keyed on the topology: alternating topologies
// through one workspace must not leak one run's index into the next.
func TestWorkspaceTopologySnapshotMiss(t *testing.T) {
	t.Parallel()
	p := matchingProtocol()
	ws := NewWorkspace()
	spec := &TopologySpec{Kind: TopoGnp, Param: 0.3}
	for seed := uint64(1); seed <= 3; seed++ {
		topo, err := spec.Realize(16, seed)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(p, 16, Options{Seed: seed, Engine: EngineFast, Detector: QuiescenceDetector(), Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		topo2, err := spec.Realize(16, seed)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := Run(p, 16, Options{Seed: seed, Engine: EngineFast, Detector: QuiescenceDetector(), Topology: topo2, Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Steps != reused.Steps || fresh.EffectiveSteps != reused.EffectiveSteps ||
			fresh.EdgeChanges != reused.EdgeChanges || fresh.Final.Fingerprint() != reused.Final.Fingerprint() {
			t.Fatalf("seed %d: workspace run diverged from fresh run under per-trial topologies", seed)
		}
	}
}
