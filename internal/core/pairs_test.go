package core

import (
	"testing"
	"testing/quick"
)

func TestPairIndexRoundTrip(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 40; n++ {
		seen := make(map[int]bool, pairCount(n))
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				idx := pairIndex(n, u, v)
				if idx < 0 || idx >= pairCount(n) {
					t.Fatalf("n=%d (%d,%d): index %d out of range", n, u, v, idx)
				}
				if seen[idx] {
					t.Fatalf("n=%d (%d,%d): duplicate index %d", n, u, v, idx)
				}
				seen[idx] = true
				gu, gv := pairFromIndex(n, idx)
				if gu != u || gv != v {
					t.Fatalf("n=%d: pairFromIndex(%d) = (%d,%d), want (%d,%d)", n, idx, gu, gv, u, v)
				}
			}
		}
		if len(seen) != pairCount(n) {
			t.Fatalf("n=%d: %d distinct indices, want %d", n, len(seen), pairCount(n))
		}
	}
}

func TestPairIndexSymmetric(t *testing.T) {
	t.Parallel()
	f := func(a, b uint8) bool {
		n := 50
		u, v := int(a)%n, int(b)%n
		if u == v {
			return true
		}
		return pairIndex(n, u, v) == pairIndex(n, v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetSetGet(t *testing.T) {
	t.Parallel()
	f := func(positions []uint16) bool {
		const bits = 1000
		b := newBitset(bits)
		ref := make(map[int]bool, len(positions))
		for _, p := range positions {
			i := int(p) % bits
			val := p%3 != 0
			b.set(i, val)
			ref[i] = val
		}
		for i := 0; i < bits; i++ {
			if b.get(i) != ref[i] {
				return false
			}
		}
		count := 0
		for _, v := range ref {
			if v {
				count++
			}
		}
		return b.popcount() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	t.Parallel()
	b := newBitset(128)
	b.set(5, true)
	c := b.clone()
	c.set(5, false)
	c.set(77, true)
	if !b.get(5) || b.get(77) {
		t.Fatal("clone shares storage with original")
	}
}
