package core

import (
	"math"
	"strings"
	"testing"
)

func TestEngineSelection(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	run := func(opts Options) Result {
		t.Helper()
		opts.Detector = det
		if opts.Initial == nil {
			opts.Initial = seededInitial(p, 16)
		}
		res, err := Run(p, 16, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got := run(Options{Seed: 1}).Engine; got != EngineFast {
		t.Fatalf("auto under uniform scheduler ran %v, want fast", got)
	}
	if got := run(Options{Seed: 1, Scheduler: &RoundRobinScheduler{}}).Engine; got != EngineBaseline {
		t.Fatalf("auto under round-robin ran %v, want baseline", got)
	}
	if got := run(Options{Seed: 1, Engine: EngineBaseline}).Engine; got != EngineBaseline {
		t.Fatalf("forced baseline ran %v", got)
	}
	if got := run(Options{Seed: 1, Engine: EngineFast}).Engine; got != EngineFast {
		t.Fatalf("forced fast ran %v", got)
	}
}

func TestEngineFastRejectsNonUniformScheduler(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	_, err := Run(p, 8, Options{Detector: det, Engine: EngineFast, Scheduler: &RoundRobinScheduler{}})
	if err == nil || !strings.Contains(err.Error(), "uniform scheduler") {
		t.Fatalf("fast engine accepted round-robin: %v", err)
	}
}

func TestParseEngine(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]Engine{"": EngineAuto, "auto": EngineAuto, "baseline": EngineBaseline, "fast": EngineFast} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("String round-trip %q → %q", s, got)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestFastInvariantMetrics checks metrics that are invariant across
// engines (not merely equal in distribution): the epidemic needs
// exactly n−1 effective steps and no edge changes on any path.
func TestFastInvariantMetrics(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	for _, eng := range []Engine{EngineBaseline, EngineFast} {
		res, err := Run(p, 20, Options{Seed: 5, Engine: eng, Detector: det, Initial: seededInitial(p, 20)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.EffectiveSteps != 19 || res.EdgeChanges != 0 {
			t.Fatalf("%v engine: %+v", eng, res)
		}
		if res.ConvergenceTime != 0 {
			t.Fatalf("%v engine: epidemic with all-output states never changes the output graph, ConvergenceTime=%d", eng, res.ConvergenceTime)
		}
	}
}

// TestFastIntervalDetectionRounding verifies the computed interval
// detection: maximal matching quiesces long before the huge check
// interval, and the fast path must report detection at the first check
// point — exactly where the baseline's periodic scan would fire.
func TestFastIntervalDetectionRounding(t *testing.T) {
	t.Parallel()
	p := MustProtocol("mm", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	const interval = 50_000
	res, err := Run(p, 10, Options{Seed: 3, Engine: EngineFast, CheckInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("matching did not converge")
	}
	if res.Steps != interval {
		t.Fatalf("Steps = %d, want detection at the first check point %d", res.Steps, interval)
	}
	if res.ConvergenceTime >= interval {
		t.Fatalf("quiescence this late (%d) makes the test vacuous", res.ConvergenceTime)
	}
	if !res.Final.Quiescent() {
		t.Fatal("final configuration not quiescent")
	}
}

// TestFastQuiescentTailExhaustsBudget: once no pair is enabled and the
// detector can never fire (effective-triggered, predicate false), the
// fast path must report budget exhaustion like the baseline does —
// without spinning through the remaining steps.
func TestFastQuiescentTailExhaustsBudget(t *testing.T) {
	t.Parallel()
	p := MustProtocol("mm", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	det := Detector{Trigger: TriggerEffective, Stable: func(*Config) bool { return false }}
	const budget = 1 << 40 // would take hours to simulate step by step
	res, err := Run(p, 10, Options{Seed: 3, Engine: EngineFast, Detector: det, MaxSteps: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Steps != budget {
		t.Fatalf("want budget exhaustion at %d, got %+v", budget, res)
	}
}

func TestFastMaxStepsAborts(t *testing.T) {
	t.Parallel()
	// The spin protocol never quiesces and never satisfies the detector.
	p := MustProtocol("spin", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1},
		{A: 1, B: 1, Edge: false, OutA: 0, OutB: 0},
	})
	det := Detector{Trigger: TriggerEffective, Stable: func(*Config) bool { return false }}
	res, err := Run(p, 6, Options{Seed: 1, Engine: EngineFast, Detector: det, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Steps != 500 {
		t.Fatalf("want abort at 500 steps, got %+v", res)
	}
}

func TestFastStopAborts(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	res, err := Run(p, 32, Options{Seed: 1, Engine: EngineFast, Detector: det,
		Initial: seededInitial(p, 32), Stop: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || !res.Stopped {
		t.Fatalf("Converged=%v Stopped=%v, want false/true", res.Converged, res.Stopped)
	}
}

func TestFastObserverParity(t *testing.T) {
	t.Parallel()
	p := MustProtocol("mm", []string{"a", "b"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	obs := &countingObserver{}
	res, err := Run(p, 12, Options{Seed: 2, Engine: EngineFast, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if int64(obs.steps) != res.EffectiveSteps || int64(obs.edges) != res.EdgeChanges {
		t.Fatalf("observer saw %d/%d, engine counted %d/%d",
			obs.steps, obs.edges, res.EffectiveSteps, res.EdgeChanges)
	}
}

// TestFastEdgeQuiescenceGate runs a protocol that keeps node states
// churning after the edges settle, under the edge-quiescence detector:
// the O(1) gate must fire even though full quiescence never holds.
func TestFastEdgeQuiescenceGate(t *testing.T) {
	t.Parallel()
	// a-nodes pair up over fresh edges (the only edge-effective rule,
	// and a is never recreated, so edge quiescence is absorbing); the
	// paired b/c partners keep swapping states forever.
	p := MustProtocol("churn", []string{"a", "b", "c"}, 0, nil, []Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 2, OutEdge: true},
		{A: 1, B: 2, Edge: true, OutA: 2, OutB: 1, OutEdge: true},
	})
	res, err := Run(p, 8, Options{Seed: 9, Engine: EngineFast, Detector: EdgeQuiescenceDetector(), MaxSteps: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("edge quiescence not detected: %+v", res)
	}
	if !res.Final.EdgeQuiescent() {
		t.Fatal("final configuration not edge-quiescent")
	}
}

// TestFastStepsLawMatchesBaseline compares the distribution of the
// detection step across many seeds on a workload with a non-trivial
// ineffective fraction: the two engines must agree in the mean within
// standard-error bounds (they are deterministic per seed but follow
// different sample paths, so only the law is comparable).
func TestFastStepsLawMatchesBaseline(t *testing.T) {
	t.Parallel()
	p, det := epidemicProtocol()
	const n, trials = 16, 300
	moments := func(eng Engine) (mean, se float64) {
		var sum, sumSq float64
		for seed := uint64(1); seed <= trials; seed++ {
			res, err := Run(p, n, Options{Seed: seed, Engine: eng, Detector: det, Initial: seededInitial(p, n)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%v engine seed %d did not converge", eng, seed)
			}
			v := float64(res.Steps)
			sum += v
			sumSq += v * v
		}
		mean = sum / trials
		variance := (sumSq - sum*sum/trials) / (trials - 1)
		return mean, math.Sqrt(variance / trials)
	}
	mb, sb := moments(EngineBaseline)
	mf, sf := moments(EngineFast)
	if diff, bound := math.Abs(mb-mf), 5*math.Hypot(sb, sf); diff > bound {
		t.Fatalf("mean detection step diverged: baseline %.1f±%.1f vs fast %.1f±%.1f (|Δ|=%.1f > %.1f)",
			mb, sb, mf, sf, diff, bound)
	}
}

func TestGeometric(t *testing.T) {
	t.Parallel()
	rng := NewRNG(1)
	if got := rng.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d", got)
	}
	if got := rng.Geometric(0); got < 1<<40 {
		t.Fatalf("Geometric(0) = %d, want a huge clamp", got)
	}
	// Mean of Geometric(p) is (1−p)/p; check within 3%.
	const p, draws = 0.2, 200_000
	var sum float64
	for i := 0; i < draws; i++ {
		k := rng.Geometric(p)
		if k < 0 {
			t.Fatalf("negative draw %d", k)
		}
		sum += float64(k)
	}
	mean, want := sum/draws, (1-p)/p
	if math.Abs(mean-want) > 0.03*want {
		t.Fatalf("Geometric(%.1f) mean %.3f, want ≈ %.3f", p, mean, want)
	}
}
