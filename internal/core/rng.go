package core

import (
	"math"
	"math/rand/v2"
)

// RNG is the deterministic random source used throughout the simulator:
// scheduler pair choices, symmetry-breaking coins, and PREL rule coins
// all draw from it, so a run is fully reproducible from (protocol, n,
// seed).
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns a PCG-backed source seeded deterministically.
func NewRNG(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// Reseed resets the source to the exact state NewRNG(seed) would
// produce, without allocating — the workspace path's per-run
// reinitialization. A reseeded RNG emits the same stream as a fresh
// one, which is what makes workspace-reused runs bit-identical to
// fresh-allocation runs.
func (r *RNG) Reseed(seed uint64) {
	r.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// IntN returns a uniform integer in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform int64 in [0, n) — used where pair counts
// exceed 32 bits (the sparse engine's class weights at n ≈ 10⁶).
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Coin returns true with probability 1/2.
func (r *RNG) Coin() bool { return r.src.Uint64()&1 == 1 }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, for p ∈ (0, 1] — the length of the
// ineffective run the fast engine skips in one draw. It inverts the
// geometric CDF on a single uniform draw: ⌊ln U / ln(1−p)⌋ with
// U ∈ (0, 1]. Non-positive p (a success that can never happen) returns
// a huge clamp the caller bounds by its step budget.
func (r *RNG) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return geometricClamp
	}
	return r.GeometricLn(math.Log1p(-p))
}

const geometricClamp = int64(1) << 62

// GeometricLn is Geometric with the logarithm ln(1−p) precomputed by
// the caller, for p ∈ (0, 1): same variate, same single uniform draw.
// The indexed engines memoize the logarithm keyed by the enabled-pair
// count m — which repeats heavily between effective steps — saving one
// of the two math.Log calls per landing.
func (r *RNG) GeometricLn(ln1mp float64) int64 {
	u := 1 - r.src.Float64() // (0, 1]: avoids ln(0)
	k := math.Floor(math.Log(u) / ln1mp)
	if k < 0 {
		return 0
	}
	if k >= float64(geometricClamp) {
		return geometricClamp
	}
	return int64(k)
}

// Pair returns a uniform unordered pair {u, v}, u ≠ v, over n nodes —
// the uniform random scheduler's single draw.
func (r *RNG) Pair(n int) (u, v int) {
	u = r.src.IntN(n)
	v = r.src.IntN(n - 1)
	if v >= u {
		v++
	}
	return u, v
}
