package core

import (
	"math"
	"math/rand/v2"
)

// RNG is the deterministic random source used throughout the simulator:
// scheduler pair choices, symmetry-breaking coins, and PREL rule coins
// all draw from it, so a run is fully reproducible from (protocol, n,
// seed).
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns a PCG-backed source seeded deterministically.
func NewRNG(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// Reseed resets the source to the exact state NewRNG(seed) would
// produce, without allocating — the workspace path's per-run
// reinitialization. A reseeded RNG emits the same stream as a fresh
// one, which is what makes workspace-reused runs bit-identical to
// fresh-allocation runs.
func (r *RNG) Reseed(seed uint64) {
	r.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// IntN returns a uniform integer in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform int64 in [0, n) — used where pair counts
// exceed 32 bits (the sparse engine's class weights at n ≈ 10⁶).
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Coin returns true with probability 1/2.
func (r *RNG) Coin() bool { return r.src.Uint64()&1 == 1 }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, for p ∈ (0, 1] — the length of the
// ineffective run the fast engine skips in one draw. It inverts the
// geometric CDF on a single uniform draw: ⌊ln U / ln(1−p)⌋ with
// U ∈ (0, 1]. Non-positive p (a success that can never happen) returns
// a huge clamp the caller bounds by its step budget.
func (r *RNG) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return geometricClamp
	}
	return r.GeometricLn(math.Log1p(-p))
}

const geometricClamp = int64(1) << 62

// GeometricLn is Geometric with the logarithm ln(1−p) precomputed by
// the caller, for p ∈ (0, 1): same variate, same single uniform draw.
// The indexed engines memoize the logarithm keyed by the enabled-pair
// count m — which repeats heavily between effective steps — saving one
// of the two math.Log calls per landing.
func (r *RNG) GeometricLn(ln1mp float64) int64 {
	u := 1 - r.src.Float64() // (0, 1]: avoids ln(0)
	k := math.Floor(math.Log(u) / ln1mp)
	if k < 0 {
		return 0
	}
	if k >= float64(geometricClamp) {
		return geometricClamp
	}
	return int64(k)
}

// GeometricExp returns a Geometric(p) variate from one exponential
// draw: with Λ = −ln(1−p), ⌊Exp(1)/Λ⌋ is Geometric(p) exactly
// (P(⌊E/Λ⌋ = k) = e^(−kΛ) − e^(−(k+1)Λ) = (1−p)ᵏ·p). The caller
// passes invLambda = 1/Λ, memoized like GeometricLn's logarithm, so
// the hot path is one ziggurat draw and one multiply — cheaper than
// GeometricLn's log inversion. The variate consumes a different
// primitive than GeometricLn, so the two methods produce different
// streams of the same law; only the batch engine's pure path — which
// carries no bit-identity obligation — uses this one.
func (r *RNG) GeometricExp(invLambda float64) int64 {
	k := r.src.ExpFloat64() * invLambda
	if k >= float64(geometricClamp) {
		return geometricClamp
	}
	return int64(k)
}

// Binomial returns the number of successes in n independent
// Bernoulli(p) trials, by CDF inversion on a single uniform draw —
// exact up to float64 rounding of the CDF, like GeometricLn. The walk
// is O(n·min(p, 1−p)) expected, which is what the batch engine needs:
// its plans draw Binomial(k, w/W) for plan sizes k of a few hundred.
// Very large n·p splits the draw into independent halves so the
// starting mass (1−p)ⁿ stays representable.
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if float64(n)*math.Log1p(-p) < -700 {
		half := n / 2
		return r.Binomial(half, p) + r.Binomial(n-half, p)
	}
	u := r.Float64()
	q := 1 - p
	pmf := math.Pow(q, float64(n))
	cdf := pmf
	ratio := p / q
	var k int64
	for u > cdf && k < n {
		k++
		pmf *= ratio * float64(n-k+1) / float64(k)
		cdf += pmf
	}
	return k
}

// Hypergeometric returns how many of `draws` draws without
// replacement, from a population of `total` items of which `marked`
// are marked, hit marked items. CDF inversion like Binomial, with the
// starting mass computed through lgamma; a starting mass below float64
// range splits the draw into two rounds on the depleted urn, which is
// exact by the urn decomposition. It must hold 0 ≤ marked ≤ total and
// draws ≤ total.
func (r *RNG) Hypergeometric(draws, marked, total int64) int64 {
	if draws < 0 || marked < 0 || marked > total || draws > total {
		panic("core: Hypergeometric requires 0 ≤ draws, marked ≤ total")
	}
	if draws == 0 || marked == 0 {
		return 0
	}
	if draws == total {
		return marked
	}
	if marked == total {
		return draws
	}
	// Symmetries keep the inversion walk short: complementing the
	// marks, and swapping the roles of the drawn and marked subsets
	// (both exact identities of the distribution).
	if marked > total-marked {
		return draws - r.Hypergeometric(draws, total-marked, total)
	}
	if draws > marked {
		return r.Hypergeometric(marked, draws, total)
	}
	// ln pmf(0) = ln C(total−marked, draws) − ln C(total, draws).
	lp := lnChoose(total-marked, draws) - lnChoose(total, draws)
	if lp < -700 {
		half := draws / 2
		k1 := r.Hypergeometric(half, marked, total)
		return k1 + r.Hypergeometric(draws-half, marked-k1, total-half)
	}
	u := r.Float64()
	pmf := math.Exp(lp)
	cdf := pmf
	maxK := draws
	if marked < maxK {
		maxK = marked
	}
	var k int64
	for u > cdf && k < maxK {
		pmf *= float64(marked-k) * float64(draws-k) /
			(float64(k+1) * float64(total-marked-draws+k+1))
		k++
		cdf += pmf
	}
	return k
}

// lnChoose returns ln C(n, k) via lgamma.
func lnChoose(n, k int64) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// MultinomialBuckets distributes k categorical draws over buckets
// proportionally to weights — the counts of a Multinomial(k, w/W)
// vector, drawn by the conditional-binomial chain
// c₁ ~ Bin(k, w₁/W), c₂ ~ Bin(k−c₁, w₂/(W−w₁)), … which is the exact
// joint law. The result is appended to out (reset to length zero
// first) so the batch engine's plans reuse one backing array. The
// total weight must be positive when k > 0.
func (r *RNG) MultinomialBuckets(k int64, weights []int64, out []int64) []int64 {
	out = out[:0]
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	if k > 0 && totalW <= 0 {
		panic("core: MultinomialBuckets requires positive total weight")
	}
	rem := k
	for _, w := range weights {
		if rem == 0 || w == 0 {
			out = append(out, 0)
			totalW -= w
			continue
		}
		c := r.Binomial(rem, float64(w)/float64(totalW))
		out = append(out, c)
		rem -= c
		totalW -= w
	}
	return out
}

// HypergeometricBuckets distributes `draws` draws without replacement
// over buckets with the given capacities — the counts of a
// multivariate hypergeometric vector, drawn by the conditional chain
// c₁ ~ Hyp(draws, cap₁, C), c₂ ~ Hyp(draws−c₁, cap₂, C−cap₁), …
// Every count is bounded by its bucket's capacity and the counts sum
// to draws exactly. The result is appended to out (reset to length
// zero first). draws must not exceed the total capacity.
func (r *RNG) HypergeometricBuckets(draws int64, capacities []int64, out []int64) []int64 {
	out = out[:0]
	var totalC int64
	for _, c := range capacities {
		totalC += c
	}
	if draws > totalC || draws < 0 {
		panic("core: HypergeometricBuckets requires 0 ≤ draws ≤ total capacity")
	}
	rem := draws
	for _, capi := range capacities {
		c := r.Hypergeometric(rem, capi, totalC)
		out = append(out, c)
		rem -= c
		totalC -= capi
	}
	return out
}

// Pair returns a uniform unordered pair {u, v}, u ≠ v, over n nodes —
// the uniform random scheduler's single draw.
func (r *RNG) Pair(n int) (u, v int) {
	u = r.src.IntN(n)
	v = r.src.IntN(n - 1)
	if v >= u {
		v++
	}
	return u, v
}
