package core

import (
	"math"
	"math/rand/v2"

	"repro/internal/stats"
)

// RNG is the deterministic random source used throughout the simulator:
// scheduler pair choices, symmetry-breaking coins, and PREL rule coins
// all draw from it, so a run is fully reproducible from (protocol, n,
// seed).
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns a PCG-backed source seeded deterministically.
func NewRNG(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// Reseed resets the source to the exact state NewRNG(seed) would
// produce, without allocating — the workspace path's per-run
// reinitialization. A reseeded RNG emits the same stream as a fresh
// one, which is what makes workspace-reused runs bit-identical to
// fresh-allocation runs.
func (r *RNG) Reseed(seed uint64) {
	r.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// IntN returns a uniform integer in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform int64 in [0, n) — used where pair counts
// exceed 32 bits (the sparse engine's class weights at n ≈ 10⁶).
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Coin returns true with probability 1/2.
func (r *RNG) Coin() bool { return r.src.Uint64()&1 == 1 }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit word. Together with Float64,
// ExpFloat64 and NormFloat64 this makes RNG satisfy stats.Source.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// ExpFloat64 returns an Exponential(1) variate.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, for p ∈ (0, 1] — the length of the
// ineffective run the fast engine skips in one draw. It inverts the
// geometric CDF on a single uniform draw: ⌊ln U / ln(1−p)⌋ with
// U ∈ (0, 1]. Non-positive p (a success that can never happen) returns
// a huge clamp the caller bounds by its step budget.
func (r *RNG) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return geometricClamp
	}
	return r.GeometricLn(math.Log1p(-p))
}

const geometricClamp = int64(1) << 62

// GeometricLn is Geometric with the logarithm ln(1−p) precomputed by
// the caller, for p ∈ (0, 1): same variate, same single uniform draw.
// The indexed engines memoize the logarithm keyed by the enabled-pair
// count m — which repeats heavily between effective steps — saving one
// of the two math.Log calls per landing.
func (r *RNG) GeometricLn(ln1mp float64) int64 {
	u := 1 - r.src.Float64() // (0, 1]: avoids ln(0)
	k := math.Floor(math.Log(u) / ln1mp)
	if k < 0 {
		return 0
	}
	if k >= float64(geometricClamp) {
		return geometricClamp
	}
	return int64(k)
}

// GeometricExp returns a Geometric(p) variate from one exponential
// draw: with Λ = −ln(1−p), ⌊Exp(1)/Λ⌋ is Geometric(p) exactly
// (P(⌊E/Λ⌋ = k) = e^(−kΛ) − e^(−(k+1)Λ) = (1−p)ᵏ·p). The caller
// passes invLambda = 1/Λ, memoized like GeometricLn's logarithm, so
// the hot path is one ziggurat draw and one multiply — cheaper than
// GeometricLn's log inversion. The variate consumes a different
// primitive than GeometricLn, so the two methods produce different
// streams of the same law; only the batch engine's pure path — which
// carries no bit-identity obligation — uses this one.
func (r *RNG) GeometricExp(invLambda float64) int64 {
	k := r.src.ExpFloat64() * invLambda
	if k >= float64(geometricClamp) {
		return geometricClamp
	}
	return int64(k)
}

// Binomial returns the number of successes in n independent
// Bernoulli(p) trials — stats.Binomial on this source: exact CDF
// inversion (with popcount counting for fair coins), O(n·min(p, 1−p))
// expected, which is what the batch engine needs: its plans draw
// Binomial(k, w/W) for plan sizes k of a few hundred.
func (r *RNG) Binomial(n int64, p float64) int64 {
	return stats.Binomial(r.src, n, p)
}

// Hypergeometric returns how many of `draws` draws without
// replacement, from a population of `total` items of which `marked`
// are marked, hit marked items — stats.Hypergeometric on this source.
// It must hold 0 ≤ marked ≤ total and draws ≤ total.
func (r *RNG) Hypergeometric(draws, marked, total int64) int64 {
	return stats.Hypergeometric(r.src, draws, marked, total)
}

// NegBinomial returns the failures before the r-th success in
// Bernoulli(p) trials — the sum of r iid Geometric(p) gaps, which is
// how the batch engine charges the scheduler misses of a collapsed
// swap run in one draw. Exact gamma–Poisson mixture; see
// stats.NegBinomial.
func (r *RNG) NegBinomial(n int64, p float64) int64 {
	return stats.NegBinomial(r.src, n, p)
}

// WalkDisplacement returns the exact net displacement of a
// `steps`-step lazy random walk (hold probability `stay`) in one draw
// — the swap-run collapse kernel's single sample. See
// stats.WalkDisplacement.
func (r *RNG) WalkDisplacement(steps int64, stay float64) int64 {
	return stats.WalkDisplacement(r.src, steps, stay)
}

// NegHypergeometricRun returns the length of the opening run of
// marked items in a uniform shuffle of marked+unmarked items — the
// law of "consecutive same-class landings before the next other-class
// landing" within a bucket plan. See stats.NegHypergeometricRun.
func (r *RNG) NegHypergeometricRun(marked, unmarked int64) int64 {
	return stats.NegHypergeometricRun(r.src, marked, unmarked)
}

// MultinomialBuckets distributes k categorical draws over buckets
// proportionally to weights — the counts of a Multinomial(k, w/W)
// vector, drawn by the conditional-binomial chain
// c₁ ~ Bin(k, w₁/W), c₂ ~ Bin(k−c₁, w₂/(W−w₁)), … which is the exact
// joint law. The result is appended to out (reset to length zero
// first) so the batch engine's plans reuse one backing array. The
// total weight must be positive when k > 0.
func (r *RNG) MultinomialBuckets(k int64, weights []int64, out []int64) []int64 {
	out = out[:0]
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	if k > 0 && totalW <= 0 {
		panic("core: MultinomialBuckets requires positive total weight")
	}
	rem := k
	for _, w := range weights {
		if rem == 0 || w == 0 {
			out = append(out, 0)
			totalW -= w
			continue
		}
		c := r.Binomial(rem, float64(w)/float64(totalW))
		out = append(out, c)
		rem -= c
		totalW -= w
	}
	return out
}

// HypergeometricBuckets distributes `draws` draws without replacement
// over buckets with the given capacities — the counts of a
// multivariate hypergeometric vector, drawn by the conditional chain
// c₁ ~ Hyp(draws, cap₁, C), c₂ ~ Hyp(draws−c₁, cap₂, C−cap₁), …
// Every count is bounded by its bucket's capacity and the counts sum
// to draws exactly. The result is appended to out (reset to length
// zero first). draws must not exceed the total capacity.
func (r *RNG) HypergeometricBuckets(draws int64, capacities []int64, out []int64) []int64 {
	out = out[:0]
	var totalC int64
	for _, c := range capacities {
		totalC += c
	}
	if draws > totalC || draws < 0 {
		panic("core: HypergeometricBuckets requires 0 ≤ draws ≤ total capacity")
	}
	rem := draws
	for _, capi := range capacities {
		c := r.Hypergeometric(rem, capi, totalC)
		out = append(out, c)
		rem -= c
		totalC -= capi
	}
	return out
}

// Pair returns a uniform unordered pair {u, v}, u ≠ v, over n nodes —
// the uniform random scheduler's single draw.
func (r *RNG) Pair(n int) (u, v int) {
	u = r.src.IntN(n)
	v = r.src.IntN(n - 1)
	if v >= u {
		v++
	}
	return u, v
}
