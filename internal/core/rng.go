package core

import "math/rand/v2"

// RNG is the deterministic random source used throughout the simulator:
// scheduler pair choices, symmetry-breaking coins, and PREL rule coins
// all draw from it, so a run is fully reproducible from (protocol, n,
// seed).
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a PCG-backed source seeded deterministically.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// IntN returns a uniform integer in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Coin returns true with probability 1/2.
func (r *RNG) Coin() bool { return r.src.Uint64()&1 == 1 }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Pair returns a uniform unordered pair {u, v}, u ≠ v, over n nodes —
// the uniform random scheduler's single draw.
func (r *RNG) Pair(n int) (u, v int) {
	u = r.src.IntN(n)
	v = r.src.IntN(n - 1)
	if v >= u {
		v++
	}
	return u, v
}
