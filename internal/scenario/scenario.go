// Package scenario is the fault-injection layer on top of the three
// execution engines: declarative fault plans — crash faults,
// adversarial edge deletions and state resets, each triggered by step
// schedules or per-step rates — compile into core.Injector event
// sources that fire at identical step positions on the baseline, fast
// and sparse paths. Together with the alternative schedulers in
// internal/core it opens the workload class studied by the
// fault-tolerant network constructor literature (Michail, Spirakis &
// Theofilatos 2019): what do the paper's protocols build when nodes
// die and edges are severed mid-run?
//
// Fault semantics follow that literature:
//
//   - a crash (KindCrash) removes a node: its incident active edges
//     deactivate and its state moves to a synthetic sink appended by
//     Crashable that no rule mentions and that lies outside Qout, so
//     the node never interacts effectively again and leaves the output
//     graph. Survivors do not notice — their states still claim the old
//     degree, exactly the inconsistency crash faults cause in the model;
//   - an edge deletion (KindEdge) deactivates one uniformly random
//     active edge, endpoints unnotified;
//   - a reset (KindReset) wipes one random alive node's memory back to
//     the initial state q0, keeping its edges (a transient fault).
//
// All fault randomness (arrival times of rate-triggered events, victim
// choices) draws from a dedicated stream seeded from the plan seed and
// the run seed, decorrelated from the protocol's own coin flips.
package scenario

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Kind names a fault type.
type Kind string

// Fault kinds.
const (
	// KindCrash removes a random alive node and its incident edges.
	KindCrash Kind = "crash"
	// KindEdge deletes a uniformly random active edge.
	KindEdge Kind = "edge"
	// KindReset resets a random alive node's state to the initial q0.
	KindReset Kind = "reset"
)

// Fault is one fault source of a plan: a kind plus either a step
// schedule (fire once, after exactly Step interactions) or a rate
// (fire independently each step with probability Rate, i.e. geometric
// inter-arrival times), hitting Count victims per firing.
type Fault struct {
	Kind Kind `json:"kind"`
	// Step schedules a single firing after exactly Step ≥ 1
	// interactions. Mutually exclusive with Rate.
	Step int64 `json:"step,omitempty"`
	// Rate triggers firings independently each step with probability
	// Rate ∈ (0, 1). Mutually exclusive with Step.
	Rate float64 `json:"rate,omitempty"`
	// Count is the number of victims per firing; 0 means 1.
	Count int `json:"count,omitempty"`
}

// FaultPlan is a declarative, JSON-serializable fault scenario — the
// "faults" field of campaign specs and the -faults flag of the CLIs.
type FaultPlan struct {
	// Seed decorrelates the fault stream across plans; the per-run
	// stream mixes it with the run seed, so equal plans on equal seeds
	// reproduce exactly.
	Seed   uint64  `json:"seed,omitempty"`
	Events []Fault `json:"events"`
}

// Validate checks the plan's events.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	if len(p.Events) == 0 {
		return errors.New("scenario: fault plan has no events")
	}
	for i, f := range p.Events {
		switch f.Kind {
		case KindCrash, KindEdge, KindReset:
		default:
			return fmt.Errorf("scenario: event %d has unknown kind %q (known: crash, edge, reset)", i, f.Kind)
		}
		if f.Step != 0 && f.Rate != 0 {
			return fmt.Errorf("scenario: event %d sets both step and rate", i)
		}
		if f.Step < 0 {
			return fmt.Errorf("scenario: event %d has a negative step", i)
		}
		if f.Step == 0 && f.Rate == 0 {
			return fmt.Errorf("scenario: event %d needs a step (≥ 1) or a rate", i)
		}
		if f.Rate != 0 && (f.Rate < 0 || f.Rate >= 1) {
			return fmt.Errorf("scenario: event %d rate %g outside (0, 1)", i, f.Rate)
		}
		if f.Count < 0 {
			return fmt.Errorf("scenario: event %d has a negative count", i)
		}
	}
	return nil
}

// HasCrashes reports whether any event crashes nodes (which requires
// the protocol be augmented with Crashable).
func (p *FaultPlan) HasCrashes() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Events {
		if f.Kind == KindCrash {
			return true
		}
	}
	return false
}

// String renders the plan in the -faults flag syntax:
// "crash@500x2,edge@0.001,reset@1000" (kind@step or kind@rate, with an
// optional xCount). The plan seed is not part of the string form.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, 0, len(p.Events))
	for _, f := range p.Events {
		var b strings.Builder
		b.WriteString(string(f.Kind))
		b.WriteByte('@')
		if f.Rate != 0 {
			b.WriteString(strconv.FormatFloat(f.Rate, 'g', -1, 64))
		} else {
			b.WriteString(strconv.FormatInt(f.Step, 10))
		}
		if f.Count > 1 {
			b.WriteByte('x')
			b.WriteString(strconv.Itoa(f.Count))
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the -faults flag syntax (see String). Numbers
// containing a '.' or an exponent are rates, integers are steps. The
// empty string parses to a nil plan (no faults).
func ParsePlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kindStr, spec, ok := strings.Cut(tok, "@")
		if !ok {
			return nil, fmt.Errorf("scenario: bad fault %q (want kind@step or kind@rate)", tok)
		}
		f := Fault{Kind: Kind(kindStr)}
		if numStr, countStr, hasCount := strings.Cut(spec, "x"); hasCount {
			c, err := strconv.Atoi(countStr)
			if err != nil || c < 1 {
				return nil, fmt.Errorf("scenario: bad fault count in %q", tok)
			}
			f.Count = c
			spec = numStr
		}
		if strings.ContainsAny(spec, ".eE") {
			r, err := strconv.ParseFloat(spec, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario: bad fault rate in %q: %v", tok, err)
			}
			f.Rate = r
		} else {
			st, err := strconv.ParseInt(spec, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario: bad fault step in %q: %v", tok, err)
			}
			f.Step = st
		}
		plan.Events = append(plan.Events, f)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// CrashStateName is the name of the sink state Crashable appends.
const CrashStateName = "dead"

// Crashable returns a copy of p extended with one extra state, the
// crash sink: no rule mentions it (every transition involving it is
// the identity, hence ineffective) and it lies outside Qout. Existing
// state indices are preserved, so detectors and initial-configuration
// builders written against p keep working. The returned State is the
// sink's index.
//
// This is what makes crash faults compose with every engine through
// ordinary incremental index updates: a crash is "incident edges off,
// node state := sink", and both PairIndex and ClassIndex already know
// how to absorb state writes — pairs touching the sink simply never
// enable again.
func Crashable(p *core.Protocol) (*core.Protocol, core.State, error) {
	states := append(p.States(), CrashStateName)
	qout := make([]core.State, 0, p.Size())
	for s := 0; s < p.Size(); s++ {
		if p.IsOutput(core.State(s)) {
			qout = append(qout, core.State(s))
		}
	}
	aug, err := core.NewProtocol(p.Name(), states, p.Initial(), qout, p.Rules())
	if err != nil {
		return nil, 0, fmt.Errorf("scenario: augmenting %q with a crash state: %w", p.Name(), err)
	}
	return aug, core.State(p.Size()), nil
}

// Prepared is a fault plan resolved against a protocol: the protocol
// to actually run (augmented with the crash sink when the plan crashes
// nodes) plus everything needed to mint per-run injectors.
type Prepared struct {
	// Plan is the source plan.
	Plan *FaultPlan
	// Proto is the protocol to pass to core.Run.
	Proto *core.Protocol

	dead    core.State
	hasDead bool
}

// Prepare validates the plan and resolves it against proto.
func (p *FaultPlan) Prepare(proto *core.Protocol) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pr := &Prepared{Plan: p, Proto: proto}
	if p.HasCrashes() {
		aug, dead, err := Crashable(proto)
		if err != nil {
			return nil, err
		}
		pr.Proto, pr.dead, pr.hasDead = aug, dead, true
	}
	return pr, nil
}

// NewInjection mints a fresh per-run injector. Injectors are stateful
// (arrival clocks, the alive set, tallies) and must not be shared
// across runs; runSeed decorrelates trials.
func (pr *Prepared) NewInjection(runSeed uint64) *Injection {
	// SplitMix-style mix keeps the fault stream apart from the run
	// stream (which core.Run seeds with the raw run seed).
	mix := (runSeed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	inj := &Injection{
		rng:     core.NewRNG(mix ^ pr.Plan.Seed),
		dead:    pr.dead,
		hasDead: pr.hasDead,
	}
	for _, f := range pr.Plan.Events {
		src := faultSource{fault: f}
		if f.Rate > 0 {
			src.next = 1 + inj.rng.Geometric(f.Rate)
		} else {
			src.next = f.Step
		}
		inj.sources = append(inj.sources, src)
	}
	return inj
}

// Counts tallies the faults an injection actually applied (a crash or
// reset with no alive victim left, or an edge deletion with no active
// edge, silently no-ops).
type Counts struct {
	Crashes       int64 `json:"crashes,omitempty"`
	EdgeDeletions int64 `json:"edge_deletions,omitempty"`
	Resets        int64 `json:"resets,omitempty"`
}

// Injection is the per-run state of a fault plan: a core.Injector.
type Injection struct {
	sources []faultSource
	rng     *core.RNG
	dead    core.State
	hasDead bool

	// aliveList holds the alive node ids densely (swap-removed on
	// crash) and alivePos each node's slot, so victim draws are O(1)
	// even under high-rate plans on large populations.
	aliveList []int32
	alivePos  []int32
	counts    Counts
	nbuf      []int
}

type faultSource struct {
	fault Fault
	next  int64 // next firing step; 0 = exhausted
}

// NextEvent implements core.Injector.
func (inj *Injection) NextEvent(after int64) int64 {
	next := int64(0)
	for i := range inj.sources {
		n := inj.sources[i].next
		if n == 0 || n <= after {
			continue
		}
		if next == 0 || n < next {
			next = n
		}
	}
	return next
}

// Inject implements core.Injector: it fires every source due at or
// before step.
func (inj *Injection) Inject(step int64, m *core.Mutator) {
	inj.ensureAlive(m)
	for i := range inj.sources {
		src := &inj.sources[i]
		for src.next != 0 && src.next <= step {
			inj.apply(src.fault, m)
			if src.fault.Rate > 0 {
				src.next += 1 + inj.rng.Geometric(src.fault.Rate)
			} else {
				src.next = 0
			}
		}
	}
}

// Counts returns the tally of faults applied so far.
func (inj *Injection) Counts() Counts { return inj.counts }

func (inj *Injection) ensureAlive(m *core.Mutator) {
	if inj.aliveList != nil {
		return
	}
	n := m.Config().N()
	inj.aliveList = make([]int32, n)
	inj.alivePos = make([]int32, n)
	for i := range inj.aliveList {
		inj.aliveList[i] = int32(i)
		inj.alivePos[i] = int32(i)
	}
}

func (inj *Injection) apply(f Fault, m *core.Mutator) {
	count := f.Count
	if count < 1 {
		count = 1
	}
	for i := 0; i < count; i++ {
		switch f.Kind {
		case KindCrash:
			inj.crash(m)
		case KindEdge:
			inj.deleteEdge(m)
		case KindReset:
			inj.reset(m)
		}
	}
}

// pickAlive returns a uniformly random alive node in O(1), −1 when
// none left.
func (inj *Injection) pickAlive() int {
	if len(inj.aliveList) == 0 {
		return -1
	}
	return int(inj.aliveList[inj.rng.IntN(len(inj.aliveList))])
}

func (inj *Injection) crash(m *core.Mutator) {
	if !inj.hasDead {
		return
	}
	u := inj.pickAlive()
	if u < 0 {
		return
	}
	m.Fired(string(KindCrash), u, -1)
	cfg := m.Config()
	inj.nbuf = cfg.ActiveNeighbors(u, inj.nbuf[:0])
	for _, x := range inj.nbuf {
		m.SetEdge(u, x, false)
	}
	m.SetNode(u, inj.dead)
	// Swap-remove u from the alive list.
	slot := inj.alivePos[u]
	last := inj.aliveList[len(inj.aliveList)-1]
	inj.aliveList[slot] = last
	inj.alivePos[last] = slot
	inj.aliveList = inj.aliveList[:len(inj.aliveList)-1]
	inj.counts.Crashes++
}

// deleteEdge deactivates the k-th active edge for a uniform k. The
// edge walk is O(m) — ForEachActiveEdge has no early exit — which is
// fine for the scheduled and moderate-rate plans this layer targets;
// the guard below at least makes the post-match tail free of work.
func (inj *Injection) deleteEdge(m *core.Mutator) {
	cfg := m.Config()
	total := cfg.ActiveEdges()
	if total == 0 {
		return
	}
	k := inj.rng.IntN(total)
	du, dv := -1, -1
	cfg.ForEachActiveEdge(func(u, v int) {
		if du >= 0 {
			return
		}
		if k == 0 {
			du, dv = u, v
		}
		k--
	})
	if du >= 0 {
		m.Fired(string(KindEdge), du, dv)
		m.SetEdge(du, dv, false)
		inj.counts.EdgeDeletions++
	}
}

func (inj *Injection) reset(m *core.Mutator) {
	u := inj.pickAlive()
	if u < 0 {
		return
	}
	m.Fired(string(KindReset), u, -1)
	m.SetNode(u, m.Config().Protocol().Initial())
	inj.counts.Resets++
}
