package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

func TestParsePlanRoundTrip(t *testing.T) {
	t.Parallel()
	plan, err := ParsePlan("crash@500x2, edge@0.001, reset@1000")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: KindCrash, Step: 500, Count: 2},
		{Kind: KindEdge, Rate: 0.001},
		{Kind: KindReset, Step: 1000},
	}
	if len(plan.Events) != len(want) {
		t.Fatalf("parsed %+v", plan.Events)
	}
	for i, f := range plan.Events {
		if f != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, f, want[i])
		}
	}
	if s := plan.String(); s != "crash@500x2,edge@0.001,reset@1000" {
		t.Fatalf("String() = %q", s)
	}
	reparsed, err := ParsePlan(plan.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.String() != plan.String() {
		t.Fatalf("round trip diverged: %q vs %q", reparsed.String(), plan.String())
	}
	if !plan.HasCrashes() {
		t.Fatal("HasCrashes false")
	}

	if empty, err := ParsePlan("  "); err != nil || empty != nil {
		t.Fatalf("empty plan: %v, %v", empty, err)
	}
	for _, bad := range []string{
		"crash",        // no spec
		"boom@5",       // unknown kind
		"crash@0",      // step must be ≥ 1
		"crash@-3",     // negative step
		"edge@1.5",     // rate outside (0, 1)
		"crash@5x0",    // count must be ≥ 1
		"crash@5xtwo",  // malformed count
		"crash@fast",   // malformed number
		"reset@1e-2x0", // malformed count on a rate
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("bad plan %q accepted", bad)
		}
	}
}

func TestCrashable(t *testing.T) {
	t.Parallel()
	c := protocols.SimpleGlobalLine()
	aug, dead, err := Crashable(c.Proto)
	if err != nil {
		t.Fatal(err)
	}
	if aug.Size() != c.Proto.Size()+1 || int(dead) != c.Proto.Size() {
		t.Fatalf("sizes: aug %d, dead %d, original %d", aug.Size(), dead, c.Proto.Size())
	}
	if aug.StateName(dead) != CrashStateName {
		t.Fatalf("dead state named %q", aug.StateName(dead))
	}
	if aug.IsOutput(dead) {
		t.Fatal("crash sink is an output state")
	}
	for s := 0; s < aug.Size(); s++ {
		for _, edge := range []bool{false, true} {
			if aug.EffectiveOn(dead, core.State(s), edge) || aug.EffectiveOn(core.State(s), dead, edge) {
				t.Fatalf("crash sink has an effective transition with state %d (edge=%v)", s, edge)
			}
		}
	}
	// Original transitions and output membership are preserved.
	for s := 0; s < c.Proto.Size(); s++ {
		if aug.IsOutput(core.State(s)) != c.Proto.IsOutput(core.State(s)) {
			t.Fatalf("output membership of state %d changed", s)
		}
		for q := 0; q < c.Proto.Size(); q++ {
			for _, edge := range []bool{false, true} {
				if aug.EffectiveOn(core.State(s), core.State(q), edge) != c.Proto.EffectiveOn(core.State(s), core.State(q), edge) {
					t.Fatalf("effectiveness of (%d, %d, %v) changed", s, q, edge)
				}
			}
		}
	}
}

// TestCrashPlanAllEngines runs a crash plan end to end on all three
// engines: the victims must end dead, isolated and outside Qout, and
// the run must still reach quiescence.
func TestCrashPlanAllEngines(t *testing.T) {
	t.Parallel()
	plan := &FaultPlan{Events: []Fault{
		{Kind: KindCrash, Step: 40},
		{Kind: KindCrash, Step: 120},
	}}
	c := protocols.CycleCover()
	prepared, err := plan.Prepare(c.Proto)
	if err != nil {
		t.Fatal(err)
	}
	dead := core.State(c.Proto.Size())
	for _, engine := range []core.Engine{core.EngineBaseline, core.EngineFast, core.EngineSparse} {
		for seed := uint64(1); seed <= 4; seed++ {
			inj := prepared.NewInjection(seed)
			res, err := core.Run(prepared.Proto, 16, core.Options{
				Seed:     seed,
				Engine:   engine,
				Detector: core.QuiescenceDetector(),
				Injector: inj,
			})
			if err != nil {
				t.Fatalf("engine=%s seed=%d: %v", engine, seed, err)
			}
			if !res.Converged {
				t.Fatalf("engine=%s seed=%d: no quiescence: %+v", engine, seed, res)
			}
			if got := inj.Counts(); got.Crashes != 2 {
				t.Fatalf("engine=%s seed=%d: crash count %+v", engine, seed, got)
			}
			deadSeen := 0
			for u := 0; u < res.Final.N(); u++ {
				if res.Final.Node(u) == dead {
					deadSeen++
					if res.Final.Degree(u) != 0 {
						t.Fatalf("engine=%s seed=%d: dead node %d kept %d edges", engine, seed, u, res.Final.Degree(u))
					}
				}
			}
			if deadSeen != 2 {
				t.Fatalf("engine=%s seed=%d: %d dead nodes, want 2", engine, seed, deadSeen)
			}
		}
	}
}

// TestRatePlanDeterminism: rate-triggered faults are reproducible per
// (plan seed, run seed) and actually fire.
func TestRatePlanDeterminism(t *testing.T) {
	t.Parallel()
	plan := &FaultPlan{Seed: 3, Events: []Fault{
		{Kind: KindEdge, Rate: 0.02},
		{Kind: KindReset, Rate: 0.005},
	}}
	c := protocols.GlobalStar()
	prepared, err := plan.Prepare(c.Proto)
	if err != nil {
		t.Fatal(err)
	}
	if prepared.Proto != c.Proto {
		t.Fatal("crash-free plan must not augment the protocol")
	}
	run := func() (Counts, string) {
		inj := prepared.NewInjection(9)
		res, err := core.Run(prepared.Proto, 12, core.Options{
			Seed:     9,
			Detector: core.Detector{Trigger: core.TriggerInterval, Stable: func(*core.Config) bool { return false }},
			MaxSteps: 4000,
			Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj.Counts(), res.Final.Fingerprint()
	}
	counts1, fp1 := run()
	counts2, fp2 := run()
	if counts1 != counts2 || fp1 != fp2 {
		t.Fatalf("rate plan not deterministic: %+v/%q vs %+v/%q", counts1, fp1, counts2, fp2)
	}
	if counts1.EdgeDeletions == 0 || counts1.Resets == 0 {
		t.Fatalf("rate plan never fired: %+v", counts1)
	}
}

func TestValidateRejects(t *testing.T) {
	t.Parallel()
	bad := []*FaultPlan{
		{},
		{Events: []Fault{{Kind: "boom", Step: 1}}},
		{Events: []Fault{{Kind: KindCrash}}},
		{Events: []Fault{{Kind: KindCrash, Step: 5, Rate: 0.1}}},
		{Events: []Fault{{Kind: KindEdge, Step: -500, Rate: 0.001}}},
		{Events: []Fault{{Kind: KindEdge, Step: -500}}},
		{Events: []Fault{{Kind: KindEdge, Rate: 1.0}}},
		{Events: []Fault{{Kind: KindEdge, Rate: -0.1}}},
		{Events: []Fault{{Kind: KindReset, Step: 5, Count: -1}}},
	}
	for i, plan := range bad {
		if err := plan.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, plan)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
}
