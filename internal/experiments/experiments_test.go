package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/processes"
	"repro/internal/protocols"
)

func TestMeasureProcessTracksTheory(t *testing.T) {
	t.Parallel()
	proc := processes.OneWayEpidemic()
	series, err := MeasureProcess(proc, []int{16, 32, 64}, 40, 1, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 || series.Theta != "Θ(n log n)" {
		t.Fatalf("series %+v", series)
	}
	spread, err := series.RatioSpread()
	if err != nil {
		t.Fatal(err)
	}
	if spread > 1.5 {
		t.Fatalf("epidemic ratio spread %f too wide", spread)
	}
	alpha, err := series.FitExponent()
	if err != nil {
		t.Fatal(err)
	}
	// n log n fits a power law with exponent slightly above 1.
	if alpha < 0.9 || alpha > 1.6 {
		t.Fatalf("epidemic exponent %f outside the n log n band", alpha)
	}
}

func TestMeasureProtocolExponent(t *testing.T) {
	t.Parallel()
	series, err := MeasureProtocol(protocols.CycleCover(), []int{16, 32, 64}, 20, 1, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := series.FitExponent()
	if err != nil {
		t.Fatal(err)
	}
	// Θ(n²): allow a generous band for the small sweep.
	if alpha < 1.5 || alpha > 2.5 {
		t.Fatalf("cycle-cover exponent %f outside the n² band", alpha)
	}
}

func TestMeasureReplication(t *testing.T) {
	t.Parallel()
	series, err := MeasureReplication([]int{8, 12}, 3, 1, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 {
		t.Fatalf("points %v", series.Points)
	}
	if series.Points[1].Mean <= series.Points[0].Mean {
		t.Fatalf("replication time not growing: %v", series.Points)
	}
}

func TestCompareLineProtocols(t *testing.T) {
	t.Parallel()
	cmp, err := CompareLineProtocols([]int{16, 32}, 6, 1, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cmp.Sizes {
		if cmp.Faster[i] >= cmp.Fast[i] {
			t.Fatalf("n=%d: Faster (%f) not faster than Fast (%f)",
				cmp.Sizes[i], cmp.Faster[i], cmp.Fast[i])
		}
	}
}

func TestRatioSpreadRequiresReference(t *testing.T) {
	t.Parallel()
	series, err := MeasureProtocol(protocols.GlobalStar(), []int{8, 16}, 2, 1, core.EngineBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := series.RatioSpread(); err == nil {
		t.Fatal("spread without a reference curve accepted")
	}
}

func TestTableSizes(t *testing.T) {
	t.Parallel()
	if len(Table1Sizes()) < 4 {
		t.Fatal("Table 1 sweep too small")
	}
	for _, name := range []string{"simple-global-line", "fast-global-line", "global-ring", "graph-replication", "cycle-cover"} {
		sizes := Table2Sizes(name)
		if len(sizes) < 2 {
			t.Fatalf("%s sweep too small: %v", name, sizes)
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] <= sizes[i-1] {
				t.Fatalf("%s sweep not increasing: %v", name, sizes)
			}
		}
	}
}
