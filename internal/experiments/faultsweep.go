package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

// FaultPoint is one cell of a fault sweep: survivability statistics of
// the target protocol under a fixed number of crash faults.
type FaultPoint struct {
	// Crashes is the number of crash faults injected.
	Crashes int
	// LargestComponent is the mean size of the largest connected
	// component of the final output graph, with its standard error.
	LargestComponent float64
	LargestStdErr    float64
	// Components is the mean number of output-graph components — the
	// "how many smaller lines" count.
	Components float64
	// Trials and Converged report the sample size and how many runs
	// reached quiescence within the budget (the rest were measured at
	// the budget cut, see campaign.Point.IncludeUnconverged).
	Trials    int
	Converged int
}

// FaultSweep measures the survivability of Simple-Global-Line under
// crash faults — the qualitative experiment the fault-tolerant
// network constructor line of work (Michail, Spirakis & Theofilatos
// 2019) predicts: without a fault-tolerance transformation, killing k
// nodes mid-construction partitions the would-be spanning line into a
// collection of smaller lines.
//
// For each k in crashCounts, k crash events are injected at steps n²,
// 2n², …, kn² (while the line population is still coalescing) and the
// run executes to quiescence under the given engine, with a fixed
// 32·n⁴ step budget as the measurement cut for the rare runs a crash
// leaves perpetually walking (a w-leader trapped in a segment with no
// q1 endpoint keeps swapping along it forever without ever changing
// the output graph).
func FaultSweep(n int, crashCounts []int, trials int, seed uint64, engine core.Engine) ([]FaultPoint, error) {
	c := protocols.SimpleGlobalLine()
	nn := int64(n)
	budget := 32 * nn * nn * nn * nn

	// One point per k. The aggregate's metric is the largest component;
	// the component count is read off the same final configuration in
	// the same metric call and accumulated as an integer sum, which is
	// exact and order-independent, so the sweep stays deterministic
	// without simulating every trial twice.
	compSums := make([]int64, len(crashCounts))
	points := make([]campaign.Point, 0, len(crashCounts))
	for i, k := range crashCounts {
		var plan *scenario.FaultPlan
		if k > 0 {
			plan = &scenario.FaultPlan{Seed: seed}
			for j := 1; j <= k; j++ {
				plan.Events = append(plan.Events, scenario.Fault{
					Kind: scenario.KindCrash,
					Step: int64(j) * nn * nn,
				})
			}
		}
		compSum := &compSums[i]
		points = append(points, campaign.Point{
			Protocol:           c.Proto.Name(),
			N:                  n,
			Trials:             trials,
			BaseSeed:           seed,
			Proto:              c.Proto,
			Detector:           core.QuiescenceDetector(),
			Engine:             engine,
			MaxSteps:           budget,
			Faults:             plan,
			IncludeUnconverged: true,
			Metric: func(res core.Result, n int) float64 {
				atomic.AddInt64(compSum, int64(campaign.MetricComponents(res, n)))
				return campaign.MetricLargestComponent(res, n)
			},
		})
	}

	out, err := campaign.Execute(context.Background(), points, campaign.Options{})
	if err != nil {
		return nil, err
	}
	result := make([]FaultPoint, 0, len(crashCounts))
	for i, k := range crashCounts {
		la := out.Aggregates[i]
		if la.Converged+la.Failures != trials {
			return nil, fmt.Errorf("experiments: fault sweep k=%d lost runs: %+v", k, la)
		}
		result = append(result, FaultPoint{
			Crashes:          k,
			LargestComponent: la.Mean,
			LargestStdErr:    la.StdErr,
			Components:       float64(atomic.LoadInt64(&compSums[i])) / float64(trials),
			Trials:           trials,
			Converged:        la.Converged,
		})
	}
	return result, nil
}
