package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/protocols"
)

// SparsityPoint is one cell of a sparsity sweep: convergence-time
// statistics of one protocol under a restricted interaction topology
// of a given expected degree.
type SparsityPoint struct {
	// Protocol names the constructor measured at this cell.
	Protocol string
	// Degree is the expected degree the topology was tuned to; Topology
	// is the realized spec in flag syntax ("" for the complete control
	// row).
	Degree   float64
	Topology string
	// Mean and StdErr summarize the convergence time (the paper's
	// running time) over the measured runs — converged ones plus
	// budget-cut ones, see campaign.Point.IncludeUnconverged.
	Mean   float64
	StdErr float64
	// Trials and Converged report the sample size and how many runs
	// reached quiescence within the 32·n⁴ budget. Sparse topologies are
	// often disconnected, where the target network is unreachable and
	// leaders can walk forever, so the budget cut is part of the
	// measurement, not a failure.
	Trials    int
	Converged int
}

// SparsitySweep measures how interaction sparsity slows the paper's
// constructors: Simple-Global-Line (Protocol 1) and Cycle-Cover
// (Protocol 4) run to quiescence under restricted interaction graphs
// of increasing expected degree, and the sweep reports convergence
// time per (protocol, degree) cell. model selects the topology family:
// "gnp" tunes the G(n,p) edge probability to p = d/(n−1), "rgg" the
// geometric radius to r = √(d/(π(n−1))) (the unit-square expected-
// degree law away from the boundary). A degree d ≥ n−1 compiles to the
// complete graph — the classic scheduler, and the sweep's control row.
//
// Every trial realizes its own random graph from the trial seed, so
// the statistics average over both the protocol's schedule and the
// topology ensemble. Runs are measured under the quiescence detector
// with a fixed 32·n⁴ step budget: below the connectivity threshold
// the goal network is unreachable and some runs never quiesce (a
// trapped leader keeps walking), so budget-cut runs fold into the
// statistics at the cut (campaign.Point.IncludeUnconverged) exactly
// like the fault sweep's.
func SparsitySweep(n int, degrees []float64, model string, trials int, seed uint64, engine core.Engine) ([]SparsityPoint, error) {
	if model != core.TopoGnp && model != core.TopoRGG {
		return nil, fmt.Errorf("experiments: sparsity sweep: unknown topology model %q (known: gnp, rgg)", model)
	}
	constructors := []protocols.Constructor{protocols.SimpleGlobalLine(), protocols.CycleCover()}
	nn := int64(n)
	budget := 32 * nn * nn * nn * nn

	// The grid is protocols × degrees, in that order, so aggregate i
	// maps back to (i / len(degrees), i % len(degrees)).
	points := make([]campaign.Point, 0, len(constructors)*len(degrees))
	specs := make([]*core.TopologySpec, len(degrees))
	for i, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("experiments: sparsity sweep: expected degree %g must be non-negative", d)
		}
		if d < float64(n-1) {
			switch model {
			case core.TopoGnp:
				specs[i] = &core.TopologySpec{Kind: core.TopoGnp, Param: round4(d / float64(n-1))}
			case core.TopoRGG:
				specs[i] = &core.TopologySpec{Kind: core.TopoRGG, Param: round4(math.Sqrt(d / (math.Pi * float64(n-1))))}
			}
		}
	}
	for _, c := range constructors {
		for i := range degrees {
			points = append(points, campaign.Point{
				Protocol:           c.Proto.Name(),
				N:                  n,
				Trials:             trials,
				BaseSeed:           seed,
				Proto:              c.Proto,
				Detector:           core.QuiescenceDetector(),
				Engine:             engine,
				MaxSteps:           budget,
				Topology:           specs[i],
				IncludeUnconverged: true,
				Metric:             campaign.MetricConvergenceTime,
			})
		}
	}

	out, err := campaign.Execute(context.Background(), points, campaign.Options{})
	if err != nil {
		return nil, err
	}
	result := make([]SparsityPoint, 0, len(points))
	for i, agg := range out.Aggregates {
		d := degrees[i%len(degrees)]
		if agg.Converged+agg.Failures != trials {
			return nil, fmt.Errorf("experiments: sparsity sweep %s d=%g lost runs: %+v", agg.Protocol, d, agg)
		}
		result = append(result, SparsityPoint{
			Protocol:  agg.Protocol,
			Degree:    d,
			Topology:  agg.Topology,
			Mean:      agg.Mean,
			StdErr:    agg.StdErr,
			Trials:    agg.Trials,
			Converged: agg.Converged,
		})
	}
	return result, nil
}

// round4 trims a derived topology parameter to four significant digits
// so the record labels stay readable; the expected-degree mapping is
// approximate anyway, and the sweep averages over the ensemble.
func round4(x float64) float64 {
	r, err := strconv.ParseFloat(strconv.FormatFloat(x, 'g', 4, 64), 64)
	if err != nil {
		return x
	}
	return r
}
