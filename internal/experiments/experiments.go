// Package experiments drives the paper-reproduction measurements
// shared by cmd/tables, cmd/figures and the root benchmark harness:
// n-sweeps of every Table 1 process and Table 2 protocol, scaling-
// exponent fits, and the Faster-vs-Fast Global-Line comparison from
// Section 7.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/stats"
)

// Measurement is one (n, mean steps) sample with its sample size.
type Measurement struct {
	N      int
	Mean   float64
	StdErr float64
	Trials int
}

// Series is an n-sweep of measurements with a reference curve.
type Series struct {
	Name     string
	Points   []Measurement
	Expected []float64 // analytic reference per point (may be nil)
	Theta    string
}

// FitExponent returns the fitted power-law exponent of the series.
func (s Series) FitExponent() (float64, error) {
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = float64(p.N)
		ys[i] = p.Mean
	}
	alpha, _, err := stats.PowerFit(xs, ys)
	return alpha, err
}

// RatioSpread returns max/min of measured/expected across the sweep.
func (s Series) RatioSpread() (float64, error) {
	if s.Expected == nil {
		return 0, fmt.Errorf("experiments: series %q has no reference curve", s.Name)
	}
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Mean
	}
	return stats.RatioSpread(ys, s.Expected)
}

// MeasureProcess sweeps a Table 1 process over sizes.
func MeasureProcess(proc processes.Process, sizes []int, trials int, seed uint64) (Series, error) {
	series := Series{Name: proc.Proto.Name(), Theta: proc.Theta}
	for _, n := range sizes {
		ms, err := measureProcessAt(proc, n, trials, seed)
		if err != nil {
			return Series{}, err
		}
		series.Points = append(series.Points, ms)
		series.Expected = append(series.Expected, proc.Expected(n))
	}
	return series, nil
}

func measureProcessAt(proc processes.Process, n, trials int, seed uint64) (Measurement, error) {
	needsOneA := proc.Proto.Name() == "One-Way-Epidemic" || proc.Proto.Name() == "Meet-Everybody"
	times := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		opts := core.Options{Seed: seed + uint64(t), Detector: proc.Detector}
		if needsOneA {
			initial, err := processes.InitialWithOneA(proc.Proto, n)
			if err != nil {
				return Measurement{}, err
			}
			opts.Initial = initial
		}
		res, err := core.Run(proc.Proto, n, opts)
		if err != nil {
			return Measurement{}, err
		}
		if !res.Converged {
			return Measurement{}, fmt.Errorf("experiments: %s n=%d trial %d did not converge", proc.Proto.Name(), n, t)
		}
		// For the pure processes the detection step is the convergence
		// step: the predicate flips exactly when the last conversion
		// happens (which may be a node-state change, not an edge one).
		times = append(times, float64(res.Steps))
	}
	s := stats.Summarize(times)
	return Measurement{N: n, Mean: s.Mean, StdErr: s.StdErr(), Trials: trials}, nil
}

// MeasureProtocol sweeps a Table 2 constructor over sizes, reporting
// the paper's convergence time (last output change).
func MeasureProtocol(c protocols.Constructor, sizes []int, trials int, seed uint64) (Series, error) {
	series := Series{Name: c.Proto.Name()}
	for _, n := range sizes {
		times := make([]float64, 0, trials)
		for t := 0; t < trials; t++ {
			res, err := core.Run(c.Proto, n, core.Options{Seed: seed + uint64(t), Detector: c.Detector})
			if err != nil {
				return Series{}, err
			}
			if !res.Converged {
				return Series{}, fmt.Errorf("experiments: %s n=%d trial %d did not converge", c.Proto.Name(), n, t)
			}
			times = append(times, float64(res.ConvergenceTime))
		}
		s := stats.Summarize(times)
		series.Points = append(series.Points, Measurement{N: n, Mean: s.Mean, StdErr: s.StdErr(), Trials: trials})
	}
	return series, nil
}

// MeasureReplication sweeps Graph-Replication: for each n, the input
// is a ring on ⌊n/2⌋ nodes replicated onto the other half.
func MeasureReplication(sizes []int, trials int, seed uint64) (Series, error) {
	c := protocols.GraphReplication()
	series := Series{Name: c.Proto.Name()}
	for _, n := range sizes {
		g1 := graph.Ring(n / 2)
		det := protocols.ReplicationDetector(g1)
		times := make([]float64, 0, trials)
		for t := 0; t < trials; t++ {
			initial, err := protocols.ReplicationInitial(c.Proto, g1, n)
			if err != nil {
				return Series{}, err
			}
			res, err := core.Run(c.Proto, n, core.Options{
				Seed:     seed + uint64(t),
				Detector: det,
				Initial:  initial,
			})
			if err != nil {
				return Series{}, err
			}
			if !res.Converged {
				return Series{}, fmt.Errorf("experiments: replication n=%d trial %d did not converge", n, t)
			}
			times = append(times, float64(res.ConvergenceTime))
		}
		s := stats.Summarize(times)
		series.Points = append(series.Points, Measurement{N: n, Mean: s.Mean, StdErr: s.StdErr(), Trials: trials})
	}
	return series, nil
}

// Comparison holds the Section 7 Fast- vs Faster-Global-Line
// experiment: the paper reports experimental evidence that Protocol 10
// improves on Protocol 2.
type Comparison struct {
	Sizes  []int
	Fast   []float64
	Faster []float64
}

// CompareLineProtocols measures both protocols on the same sweep.
func CompareLineProtocols(sizes []int, trials int, seed uint64) (Comparison, error) {
	cmp := Comparison{Sizes: sizes}
	fast, err := MeasureProtocol(protocols.FastGlobalLine(), sizes, trials, seed)
	if err != nil {
		return Comparison{}, err
	}
	faster, err := MeasureProtocol(protocols.FasterGlobalLine(), sizes, trials, seed)
	if err != nil {
		return Comparison{}, err
	}
	for i := range sizes {
		cmp.Fast = append(cmp.Fast, fast.Points[i].Mean)
		cmp.Faster = append(cmp.Faster, faster.Points[i].Mean)
	}
	return cmp, nil
}

// Table1Sizes and Table2Sizes give per-experiment default sweeps,
// scaled so the slowest rows stay laptop-friendly.
func Table1Sizes() []int { return []int{16, 24, 32, 48, 64, 96, 128} }

// Table2Sizes returns the default sweep per protocol name.
func Table2Sizes(name string) []int {
	switch name {
	case "simple-global-line":
		return []int{8, 12, 16, 20, 24}
	case "fast-global-line", "faster-global-line":
		return []int{8, 16, 24, 32, 48}
	case "global-ring", "2rc":
		return []int{6, 8, 10, 12}
	case "3rc", "3-cliques":
		return []int{8, 10, 12}
	case "graph-replication":
		return []int{8, 12, 16}
	default:
		return []int{16, 32, 64, 96}
	}
}
