// Package experiments drives the paper-reproduction measurements
// shared by cmd/tables, cmd/figures and the root benchmark harness:
// n-sweeps of every Table 1 process and Table 2 protocol, scaling-
// exponent fits, and the Faster-vs-Fast Global-Line comparison from
// Section 7.
//
// Every sweep is a thin wrapper over a campaign (see
// repro/internal/campaign): the grid of (protocol, n) points executes
// on a worker pool, one goroutine per CPU, and the campaign collector's
// order-independent reduction keeps the reported statistics identical
// to the old sequential trial loops for a fixed seed range.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/stats"
)

// Measurement is one (n, mean steps) sample with its sample size.
type Measurement struct {
	N      int
	Mean   float64
	StdErr float64
	Trials int
}

// Series is an n-sweep of measurements with a reference curve.
type Series struct {
	Name     string
	Points   []Measurement
	Expected []float64 // analytic reference per point (may be nil)
	Theta    string
}

// FitExponent returns the fitted power-law exponent of the series.
func (s Series) FitExponent() (float64, error) {
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = float64(p.N)
		ys[i] = p.Mean
	}
	alpha, _, err := stats.PowerFit(xs, ys)
	return alpha, err
}

// RatioSpread returns max/min of measured/expected across the sweep.
func (s Series) RatioSpread() (float64, error) {
	if s.Expected == nil {
		return 0, fmt.Errorf("experiments: series %q has no reference curve", s.Name)
	}
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Mean
	}
	return stats.RatioSpread(ys, s.Expected)
}

// sweep executes the points as a campaign on the default worker pool
// and converts the aggregates into a Series, failing if any run did
// not converge within budget (the historical contract of these
// measurement helpers).
func sweep(name string, points []campaign.Point) (Series, error) {
	out, err := campaign.Execute(context.Background(), points, campaign.Options{})
	if err != nil {
		return Series{}, err
	}
	series := Series{Name: name}
	for _, agg := range out.Aggregates {
		if agg.Failures > 0 {
			return Series{}, fmt.Errorf("experiments: %s n=%d: %d of %d trials did not converge",
				agg.Protocol, agg.N, agg.Failures, agg.Trials)
		}
		series.Points = append(series.Points, Measurement{
			N:      agg.N,
			Mean:   agg.Mean,
			StdErr: agg.StdErr,
			Trials: agg.Trials,
		})
	}
	return series, nil
}

// MeasureProcess sweeps a Table 1 process over sizes on the given
// execution engine (core.EngineAuto picks the indexed paths under the
// uniform scheduler). For the pure processes the detection step is the
// convergence step: the predicate flips exactly when the last
// conversion happens (which may be a node-state change, not an edge
// one), so the campaign measures MetricSteps.
func MeasureProcess(proc processes.Process, sizes []int, trials int, seed uint64, engine core.Engine) (Series, error) {
	points := make([]campaign.Point, 0, len(sizes))
	for _, n := range sizes {
		initial, err := proc.Initial(n)
		if err != nil {
			return Series{}, err
		}
		pt := campaign.Point{
			Protocol: proc.Proto.Name(),
			N:        n,
			Trials:   trials,
			BaseSeed: seed,
			Proto:    proc.Proto,
			Detector: proc.Detector,
			Engine:   engine,
			Metric:   campaign.MetricSteps,
			Expected: proc.Expected(n),
		}
		if initial != nil {
			pt.Initial = func(int) (*core.Config, error) { return initial, nil }
		}
		points = append(points, pt)
	}
	series, err := sweep(proc.Proto.Name(), points)
	if err != nil {
		return Series{}, err
	}
	series.Theta = proc.Theta
	for _, n := range sizes {
		series.Expected = append(series.Expected, proc.Expected(n))
	}
	return series, nil
}

// MeasureProtocol sweeps a Table 2 constructor over sizes on the given
// engine, reporting the paper's convergence time (last output change).
func MeasureProtocol(c protocols.Constructor, sizes []int, trials int, seed uint64, engine core.Engine) (Series, error) {
	return sweep(c.Proto.Name(), protocolPoints(c, sizes, trials, seed, engine))
}

func protocolPoints(c protocols.Constructor, sizes []int, trials int, seed uint64, engine core.Engine) []campaign.Point {
	points := make([]campaign.Point, 0, len(sizes))
	for _, n := range sizes {
		points = append(points, campaign.Point{
			Protocol: c.Proto.Name(),
			N:        n,
			Trials:   trials,
			BaseSeed: seed,
			Proto:    c.Proto,
			Detector: c.Detector,
			Engine:   engine,
			Metric:   campaign.MetricConvergenceTime,
		})
	}
	return points
}

// MeasureReplication sweeps Graph-Replication on the given engine: for
// each n, the input is a ring on ⌊n/2⌋ nodes replicated onto the other
// half.
func MeasureReplication(sizes []int, trials int, seed uint64, engine core.Engine) (Series, error) {
	c := protocols.GraphReplication()
	spec := campaign.Spec{Trials: trials, Seed: seed, Engine: engine.String(), Items: []campaign.Item{
		{Kind: "replication", Sizes: sizes},
	}}
	points, err := spec.Compile()
	if err != nil {
		return Series{}, err
	}
	return sweep(c.Proto.Name(), points)
}

// Comparison holds the Section 7 Fast- vs Faster-Global-Line
// experiment: the paper reports experimental evidence that Protocol 10
// improves on Protocol 2.
type Comparison struct {
	Sizes  []int
	Fast   []float64
	Faster []float64
}

// CompareLineProtocols measures both protocols on the same sweep and
// engine. The two sweeps execute as a single campaign, so their runs
// interleave on the worker pool.
func CompareLineProtocols(sizes []int, trials int, seed uint64, engine core.Engine) (Comparison, error) {
	fast := protocolPoints(protocols.FastGlobalLine(), sizes, trials, seed, engine)
	faster := protocolPoints(protocols.FasterGlobalLine(), sizes, trials, seed, engine)
	out, err := campaign.Execute(context.Background(), append(fast, faster...), campaign.Options{})
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{Sizes: sizes}
	for i, agg := range out.Aggregates {
		if agg.Failures > 0 {
			return Comparison{}, fmt.Errorf("experiments: %s n=%d: %d of %d trials did not converge",
				agg.Protocol, agg.N, agg.Failures, agg.Trials)
		}
		if i < len(sizes) {
			cmp.Fast = append(cmp.Fast, agg.Mean)
		} else {
			cmp.Faster = append(cmp.Faster, agg.Mean)
		}
	}
	return cmp, nil
}

// Table1Sizes and Table2Sizes give per-experiment default sweeps,
// scaled so the slowest rows stay laptop-friendly.
func Table1Sizes() []int { return []int{16, 24, 32, 48, 64, 96, 128} }

// Table2Sizes returns the default sweep per protocol name.
func Table2Sizes(name string) []int {
	switch name {
	case "simple-global-line":
		return []int{8, 12, 16, 20, 24}
	case "fast-global-line", "faster-global-line":
		return []int{8, 16, 24, 32, 48}
	case "global-ring", "2rc":
		return []int{6, 8, 10, 12}
	case "3rc", "3-cliques":
		return []int{8, 10, 12}
	case "graph-replication":
		return []int{8, 12, 16}
	default:
		return []int{16, 32, 64, 96}
	}
}
