package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestFaultSweep checks the qualitative fault-tolerance prediction end
// to end: with no crashes Simple-Global-Line builds one spanning line;
// with crashes it partitions into smaller lines — the largest
// surviving component shrinks (at most n−k nodes remain in Qout) and
// the component count grows.
func TestFaultSweep(t *testing.T) {
	t.Parallel()
	const n = 16
	points, err := FaultSweep(n, []int{0, 4}, 6, 1, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %+v", points)
	}
	faultFree, faulty := points[0], points[1]
	if faultFree.Crashes != 0 || faulty.Crashes != 4 {
		t.Fatalf("crash labels %+v", points)
	}
	// Fault-free runs quiesce as one spanning line over all n nodes.
	if faultFree.Converged != faultFree.Trials || faultFree.LargestComponent != n || faultFree.Components != 1 {
		t.Fatalf("fault-free cell %+v, want a spanning line on every trial", faultFree)
	}
	// Four dead nodes leave at most 12 output nodes, necessarily in a
	// strictly smaller largest component; singleton survivors make the
	// component count grow past 1.
	if faulty.LargestComponent > float64(n-4) {
		t.Fatalf("faulty cell %+v: largest component exceeds the survivor count", faulty)
	}
	if faulty.LargestComponent >= faultFree.LargestComponent || faulty.Components <= faultFree.Components {
		t.Fatalf("no partition visible: %+v vs %+v", faulty, faultFree)
	}
}
