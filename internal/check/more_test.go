package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

// TestKRC3Stabilizes machine-verifies Theorem 11 for k=3 on the
// smallest populations: every fair execution reaches a stable
// connected network with at least n−k+1 nodes at degree k.
func TestKRC3Stabilizes(t *testing.T) {
	t.Parallel()
	c, err := protocols.KRC(3)
	if err != nil {
		t.Fatal(err)
	}
	for n := 4; n <= 5; n++ {
		rep, err := Verify(c.Proto, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsNearKRegularConnected(3)
		}, Options{MaxConfigs: 8_000_000})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep.TargetStable == 0 {
			t.Fatalf("n=%d: no target-stable configuration among %d reachable", n, rep.Reachable)
		}
		if !rep.AllReachTarget {
			t.Fatalf("n=%d: configuration cannot reach the target: %s", n, rep.Counterexample)
		}
		t.Logf("n=%d: %d reachable, %d target-stable", n, rep.Reachable, rep.TargetStable)
	}
}

// TestCliquesPairsStabilize machine-verifies the c=2 instance of
// Theorem 12 (partition into pairs): every fair execution reaches a
// stable maximum matching.
func TestCliquesPairsStabilize(t *testing.T) {
	t.Parallel()
	c, err := protocols.CCliques(2)
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 5; n++ {
		rep, err := Verify(c.Proto, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsMaximumMatching()
		}, Options{MaxConfigs: 8_000_000})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep.TargetStable == 0 {
			t.Fatalf("n=%d: no target-stable configuration among %d reachable", n, rep.Reachable)
		}
		if !rep.AllReachTarget {
			t.Fatalf("n=%d: cannot reach a stable matching: %s", n, rep.Counterexample)
		}
	}
}

// TestDegreeDoublingStabilizes machine-verifies the Section 5 degree
// construction for d=1: the distinguished node always ends with
// exactly two neighbors.
func TestDegreeDoublingStabilizes(t *testing.T) {
	t.Parallel()
	c, err := protocols.DegreeDoubling(1)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := protocols.DegreeDoublingInitial(c.Proto, 4)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := c.Proto.StateIndex("q")
	rep, err := Verify(c.Proto, 4, func(cfg *core.Config) bool {
		for u := 0; u < cfg.N(); u++ {
			if cfg.Node(u) == q {
				return cfg.Degree(u) == 2
			}
		}
		return false
	}, Options{Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TargetStable == 0 || !rep.AllReachTarget {
		t.Fatalf("degree doubling: %+v (counterexample %s)", rep, rep.Counterexample)
	}
}
