package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

// The model-checking tests below machine-verify the paper's
// stabilization theorems on small populations: from every reachable
// configuration, under any fair scheduler, the protocol can still
// stabilize to its target network — and the convergence detectors used
// by the simulator accept only genuinely output-stable configurations.

func requireVerified(t *testing.T, name string, c protocols.Constructor, n int, target func(cfg *core.Config) bool) Report {
	t.Helper()
	rep, err := Verify(c.Proto, n, target, Options{})
	if err != nil {
		t.Fatalf("%s n=%d: %v", name, n, err)
	}
	if rep.TargetStable == 0 {
		t.Fatalf("%s n=%d: no target-stable configuration among %d reachable", name, n, rep.Reachable)
	}
	if !rep.AllReachTarget {
		t.Fatalf("%s n=%d: configuration cannot reach the target: %s", name, n, rep.Counterexample)
	}
	return rep
}

func activeTarget(pred func(cfg *core.Config) bool) func(cfg *core.Config) bool {
	return pred
}

func TestSimpleGlobalLineStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.SimpleGlobalLine()
	for n := 2; n <= 5; n++ {
		rep := requireVerified(t, "Simple-Global-Line", c, n, activeTarget(func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanningLine()
		}))
		t.Logf("n=%d: %d reachable, %d output-stable, %d target-stable", n, rep.Reachable, rep.OutputStable, rep.TargetStable)
	}
}

func TestFastGlobalLineStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.FastGlobalLine()
	for n := 2; n <= 4; n++ {
		requireVerified(t, "Fast-Global-Line", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanningLine()
		})
	}
}

func TestFasterGlobalLineStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.FasterGlobalLine()
	for n := 2; n <= 5; n++ {
		requireVerified(t, "Faster-Global-Line", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanningLine()
		})
	}
}

func TestCycleCoverStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.CycleCover()
	for n := 3; n <= 6; n++ {
		requireVerified(t, "Cycle-Cover", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsCycleCoverWithWaste(2)
		})
	}
}

func TestGlobalStarStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalStar()
	for n := 2; n <= 5; n++ {
		requireVerified(t, "Global-Star", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanningStar()
		})
	}
}

func TestGlobalRingStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalRing()
	for n := 3; n <= 5; n++ {
		requireVerified(t, "Global-Ring", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanningRing()
		})
	}
}

func TestTwoRCStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.TwoRC()
	for n := 3; n <= 5; n++ {
		requireVerified(t, "2RC", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanningRing()
		})
	}
}

func TestSpanningNetStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.SpanningNet()
	for n := 2; n <= 6; n++ {
		requireVerified(t, "Spanning-Net", c, n, func(cfg *core.Config) bool {
			return protocols.ActiveGraph(cfg).IsSpanning()
		})
	}
}

// TestDetectorsSound verifies, exhaustively, that every configuration a
// convergence detector accepts is output-stable — i.e. the simulator's
// reported convergence times are trustworthy.
func TestDetectorsSound(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		c    protocols.Constructor
		n    int
	}{
		{"simple-global-line", protocols.SimpleGlobalLine(), 5},
		{"fast-global-line", protocols.FastGlobalLine(), 4},
		{"faster-global-line", protocols.FasterGlobalLine(), 5},
		{"cycle-cover", protocols.CycleCover(), 6},
		{"global-star", protocols.GlobalStar(), 5},
		{"global-ring", protocols.GlobalRing(), 5},
		{"2rc", protocols.TwoRC(), 5},
		{"spanning-net", protocols.SpanningNet(), 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			accepted, err := DetectorSound(tc.c.Proto, tc.n, tc.c.Detector, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if accepted == 0 {
				t.Fatal("detector accepted no configuration")
			}
		})
	}
}

// TestVerifyDetectsBrokenProtocol ensures the checker actually fails on
// a protocol that cannot reach its claimed target: a protocol that
// activates every edge can never stabilize to a spanning star on n ≥ 3.
func TestVerifyDetectsBrokenProtocol(t *testing.T) {
	t.Parallel()
	p := core.MustProtocol(
		"Broken-Star",
		[]string{"a"},
		0,
		nil,
		[]core.Rule{{A: 0, B: 0, Edge: false, OutA: 0, OutB: 0, OutEdge: true}},
	)
	rep, err := Verify(p, 4, func(cfg *core.Config) bool {
		return protocols.ActiveGraph(cfg).IsSpanningStar()
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TargetStable != 0 {
		t.Fatalf("broken protocol has %d target-stable configurations", rep.TargetStable)
	}
}

// TestVerifyDetectsUnsoundDetector ensures DetectorSound rejects a
// detector that accepts transient configurations.
func TestVerifyDetectsUnsoundDetector(t *testing.T) {
	t.Parallel()
	c := protocols.GlobalStar()
	// "Any configuration with at least one active edge" is transient.
	bogus := core.Detector{
		Trigger: core.TriggerEffective,
		Stable:  func(cfg *core.Config) bool { return cfg.ActiveEdges() > 0 },
	}
	_, err := DetectorSound(c.Proto, 4, bogus, Options{})
	if err == nil {
		t.Fatal("unsound detector not rejected")
	}
	if !strings.Contains(err.Error(), "output-unstable") {
		t.Fatalf("unexpected error: %v", err)
	}
}
