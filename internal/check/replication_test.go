package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

// TestReplicationStabilizes model-checks the paper's only randomized
// direct constructor: every probabilistic branch of Protocol 9 is
// explored, verifying that from every reachable configuration the
// population can still stabilize to a V2 replica of the input. This
// exercises the checker's handling of PREL (probability-½) rules.
func TestReplicationStabilizes(t *testing.T) {
	t.Parallel()
	c := protocols.GraphReplication()
	for _, tc := range []struct {
		name string
		g1   *graph.Graph
		n    int
	}{
		{"edge-onto-2", graph.Line(2), 4},
		{"edge-onto-3", graph.Line(2), 5},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			initial, err := protocols.ReplicationInitial(c.Proto, tc.g1, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			target := func(cfg *core.Config) bool {
				out, _ := protocols.OutputGraph(cfg)
				// The replica lives on the matched V2 nodes; spare r0
				// nodes are not output states, so the output graph is
				// exactly the candidate replica.
				return graph.Isomorphic(out, tc.g1)
			}
			rep, err := Verify(c.Proto, tc.n, target, Options{Initial: initial, MaxConfigs: 4_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if rep.TargetStable == 0 {
				t.Fatalf("no replica-stable configuration among %d reachable", rep.Reachable)
			}
			if !rep.AllReachTarget {
				t.Fatalf("configuration cannot reach a stable replica: %s", rep.Counterexample)
			}
			t.Logf("%s: %d reachable, %d output-stable, %d replica-stable",
				tc.name, rep.Reachable, rep.OutputStable, rep.TargetStable)
		})
	}
}

// TestReplicationDetectorSound: the iso-based detector accepts only
// output-stable configurations — exhaustively.
func TestReplicationDetectorSound(t *testing.T) {
	t.Parallel()
	c := protocols.GraphReplication()
	g1 := graph.Line(2)
	initial, err := protocols.ReplicationInitial(c.Proto, g1, 4)
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := DetectorSound(c.Proto, 4, protocols.ReplicationDetector(g1), Options{
		Initial:    initial,
		MaxConfigs: 4_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Fatal("detector accepted nothing")
	}
}
