// Package check is an exhaustive model checker for network
// constructors on small populations. It explores the full reachable
// configuration space (every interleaving any fair scheduler could
// produce, including every probabilistic branch) and verifies the
// paper's stabilization claims:
//
//  1. output-stability is machine-verified, not assumed: a
//     configuration counts as output-stable only if no configuration in
//     its forward closure has a different output graph;
//  2. from every reachable configuration an output-stable configuration
//     whose output satisfies the target predicate remains reachable —
//     which, under the paper's fairness condition, implies every fair
//     execution stabilizes to the target;
//  3. detector soundness: every configuration accepted by a protocol's
//     convergence detector is genuinely output-stable.
//
// This is strictly stronger than testing any finite set of schedules.
package check

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Options bounds the exploration.
type Options struct {
	// MaxConfigs aborts exploration when the reachable space exceeds
	// this bound (default 2,000,000).
	MaxConfigs int
	// Initial overrides the all-q0 initial configuration.
	Initial *core.Config
}

// Report summarizes a verification run.
type Report struct {
	// Reachable is the number of distinct reachable configurations.
	Reachable int
	// OutputStable is the number of reachable configurations whose
	// forward closure has a constant output graph.
	OutputStable int
	// TargetStable is the number of output-stable configurations whose
	// output satisfies the target predicate.
	TargetStable int
	// AllReachTarget reports whether every reachable configuration can
	// still reach a target-output-stable configuration.
	AllReachTarget bool
	// Counterexample describes a configuration violating the above, if
	// any.
	Counterexample string
}

// space is the fully explored reachable configuration space.
type space struct {
	configs  []*core.Config
	succs    [][]int
	preds    [][]int
	unstable []bool // true: forward closure changes the output graph
}

func explore(p *core.Protocol, n int, opts Options) (*space, error) {
	if n < 1 {
		return nil, errors.New("check: population size must be ≥ 1")
	}
	maxConfigs := opts.MaxConfigs
	if maxConfigs <= 0 {
		maxConfigs = 2_000_000
	}
	initial := opts.Initial
	if initial == nil {
		initial = core.NewConfig(p, n)
	} else {
		initial = initial.Clone()
	}

	index := map[string]int{initial.Fingerprint(): 0}
	s := &space{configs: []*core.Config{initial}}
	for at := 0; at < len(s.configs); at++ {
		cfg := s.configs[at]
		var out []int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				for _, o := range p.Outcomes(cfg.Node(u), cfg.Node(v), cfg.Edge(u, v)) {
					next := cfg.Clone()
					next.SetNode(u, o.OutA)
					next.SetNode(v, o.OutB)
					next.SetEdge(u, v, o.OutEdge)
					fp := next.Fingerprint()
					id, ok := index[fp]
					if !ok {
						id = len(s.configs)
						if id >= maxConfigs {
							return nil, fmt.Errorf("check: reachable space exceeds %d configurations", maxConfigs)
						}
						index[fp] = id
						s.configs = append(s.configs, next)
					}
					out = append(out, id)
				}
			}
		}
		s.succs = append(s.succs, dedupe(out))
	}

	s.preds = invert(s.succs)

	// Output-instability is the least fixed point of "some successor
	// differs in output, or some successor is unstable".
	outFP := make([]string, len(s.configs))
	for i, cfg := range s.configs {
		outFP[i] = outputFingerprint(cfg)
	}
	s.unstable = make([]bool, len(s.configs))
	var queue []int
	for i, ss := range s.succs {
		for _, j := range ss {
			if outFP[j] != outFP[i] {
				s.unstable[i] = true
				queue = append(queue, i)
				break
			}
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range s.preds[j] {
			if !s.unstable[i] {
				s.unstable[i] = true
				queue = append(queue, i)
			}
		}
	}
	return s, nil
}

// Verify explores the reachable configuration space of p on n nodes
// and checks that every fair execution stabilizes to an output
// satisfying target.
func Verify(p *core.Protocol, n int, target func(cfg *core.Config) bool, opts Options) (Report, error) {
	s, err := explore(p, n, opts)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Reachable: len(s.configs)}
	goal := make([]bool, len(s.configs))
	var queue []int
	for i, cfg := range s.configs {
		if s.unstable[i] {
			continue
		}
		rep.OutputStable++
		if target(cfg) {
			rep.TargetStable++
			goal[i] = true
			queue = append(queue, i)
		}
	}

	// Backward reachability from the target-stable set.
	canReach := make([]bool, len(s.configs))
	for _, i := range queue {
		canReach[i] = true
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range s.preds[j] {
			if !canReach[i] {
				canReach[i] = true
				queue = append(queue, i)
			}
		}
	}
	rep.AllReachTarget = true
	for i := range s.configs {
		if !canReach[i] {
			rep.AllReachTarget = false
			rep.Counterexample = s.configs[i].String()
			break
		}
	}
	return rep, nil
}

// DetectorSound checks that, within the reachable space, every
// configuration accepted by the detector is genuinely output-stable
// and that at least one accepted configuration exists. It returns the
// number of accepted configurations.
func DetectorSound(p *core.Protocol, n int, det core.Detector, opts Options) (int, error) {
	s, err := explore(p, n, opts)
	if err != nil {
		return 0, err
	}
	accepted := 0
	for i, cfg := range s.configs {
		if !det.Stable(cfg) {
			continue
		}
		accepted++
		if s.unstable[i] {
			return accepted, fmt.Errorf("check: detector accepts output-unstable configuration %s", cfg)
		}
	}
	if accepted == 0 {
		return 0, errors.New("check: detector accepts no reachable configuration")
	}
	return accepted, nil
}

func dedupe(xs []int) []int {
	seen := make(map[int]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, ok := seen[x]; !ok {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	return out
}

func invert(succs [][]int) [][]int {
	preds := make([][]int, len(succs))
	for i, ss := range succs {
		for _, j := range ss {
			preds[j] = append(preds[j], i)
		}
	}
	return preds
}

// outputFingerprint encodes the output graph: Qout membership per node
// plus the active edges whose both endpoints are output nodes.
func outputFingerprint(cfg *core.Config) string {
	p := cfg.Protocol()
	n := cfg.N()
	buf := make([]byte, 0, n/8+n*(n-1)/16+2)
	var cur byte
	nbits := 0
	push := func(b bool) {
		cur <<= 1
		if b {
			cur |= 1
		}
		nbits++
		if nbits == 8 {
			buf = append(buf, cur)
			cur, nbits = 0, 0
		}
	}
	for u := 0; u < n; u++ {
		push(p.IsOutput(cfg.Node(u)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			push(cfg.Edge(u, v) && p.IsOutput(cfg.Node(u)) && p.IsOutput(cfg.Node(v)))
		}
	}
	if nbits > 0 {
		buf = append(buf, cur)
	}
	return string(buf)
}
