package stats

import (
	"math"
	"testing"
)

func TestOnlineMatchesSummarize(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	want := Summarize(xs)
	got := o.Summary()
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.StdDev-want.StdDev) > 1e-12 {
		t.Fatalf("mean/stddev drift: got %+v want %+v", got, want)
	}
	if math.Abs(o.StdErr()-want.StdErr()) > 1e-12 {
		t.Fatalf("stderr %f want %f", o.StdErr(), want.StdErr())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	t.Parallel()
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.StdDev() != 0 || o.StdErr() != 0 {
		t.Fatalf("empty accumulator not zero: %+v", o)
	}
	o.Add(7)
	if o.N() != 1 || o.Mean() != 7 || o.Min() != 7 || o.Max() != 7 || o.Variance() != 0 {
		t.Fatalf("single-sample accumulator wrong: %+v", o)
	}
}

func TestOnlineDeterministicReplay(t *testing.T) {
	t.Parallel()
	xs := []float64{1e9, 1, -1e9, 2.5, 1e-3, 42}
	var a, b Online
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a != b {
		t.Fatalf("same input order produced different state: %+v vs %+v", a, b)
	}
}

func TestOnlineMerge(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var whole, left, right Online
	for i, x := range xs {
		whole.Add(x)
		if i < len(xs)/2 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() || left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatalf("merged %+v want %+v", left, whole)
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 || math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged moments drift: %+v want %+v", left, whole)
	}
	// Merging into an empty accumulator copies, and merging an empty
	// one is a no-op.
	var empty Online
	empty.Merge(whole)
	if empty != whole {
		t.Fatalf("merge into empty: %+v want %+v", empty, whole)
	}
	before := whole
	whole.Merge(Online{})
	if whole != before {
		t.Fatalf("merge of empty changed state: %+v want %+v", whole, before)
	}
}
