package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestOnlineMatchesSummarize(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	want := Summarize(xs)
	got := o.Summary()
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.StdDev-want.StdDev) > 1e-12 {
		t.Fatalf("mean/stddev drift: got %+v want %+v", got, want)
	}
	if math.Abs(o.StdErr()-want.StdErr()) > 1e-12 {
		t.Fatalf("stderr %f want %f", o.StdErr(), want.StdErr())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	t.Parallel()
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.StdDev() != 0 || o.StdErr() != 0 {
		t.Fatalf("empty accumulator not zero: %+v", o)
	}
	o.Add(7)
	if o.N() != 1 || o.Mean() != 7 || o.Min() != 7 || o.Max() != 7 || o.Variance() != 0 {
		t.Fatalf("single-sample accumulator wrong: %+v", o)
	}
}

func TestOnlineDeterministicReplay(t *testing.T) {
	t.Parallel()
	xs := []float64{1e9, 1, -1e9, 2.5, 1e-3, 42}
	var a, b Online
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a != b {
		t.Fatalf("same input order produced different state: %+v vs %+v", a, b)
	}
}

func TestOnlineMerge(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var whole, left, right Online
	for i, x := range xs {
		whole.Add(x)
		if i < len(xs)/2 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() || left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatalf("merged %+v want %+v", left, whole)
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 || math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged moments drift: %+v want %+v", left, whole)
	}
	// Merging into an empty accumulator copies, and merging an empty
	// one is a no-op.
	var empty Online
	empty.Merge(whole)
	if empty != whole {
		t.Fatalf("merge into empty: %+v want %+v", empty, whole)
	}
	before := whole
	whole.Merge(Online{})
	if whole != before {
		t.Fatalf("merge of empty changed state: %+v want %+v", whole, before)
	}
}

func TestOnlineStateRoundTrip(t *testing.T) {
	t.Parallel()
	var o Online
	for _, x := range []float64{3, 1, 4, 1, 5, 9.7} {
		o.Add(x)
	}
	got := FromState(o.State())
	if got != o {
		t.Fatalf("FromState(State()) = %+v, want %+v", got, o)
	}
	// Continuing from the reconstituted state is bit-for-bit the same as
	// continuing from the original.
	o.Add(2.6)
	got.Add(2.6)
	if got != o {
		t.Fatalf("post-round-trip Add diverged: %+v vs %+v", got, o)
	}
	if FromState(OnlineState{}) != (Online{}) {
		t.Fatal("zero state is not the zero accumulator")
	}
}

// TestOnlineMergePartitions is the property behind crash-safe campaign
// checkpoints: splitting a sample stream into contiguous chunks,
// accumulating each chunk sequentially and merging the chunks in order
// must match the single-pass result — exactly in count/min/max,
// within floating-point tolerance in the moments.
func TestOnlineMergePartitions(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			// Mix magnitudes so catastrophic cancellation would show up.
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(6)))
		}
		var whole Online
		for _, x := range xs {
			whole.Add(x)
		}
		var merged Online
		for i := 0; i < n; {
			j := i + 1 + rng.Intn(n-i)
			var chunk Online
			for _, x := range xs[i:j] {
				chunk.Add(x)
			}
			merged.Merge(chunk)
			i = j
		}
		if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: count/min/max diverged: %+v vs %+v", trial, merged, whole)
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*scale {
			t.Fatalf("trial %d: mean %g vs %g", trial, merged.Mean(), whole.Mean())
		}
		vscale := math.Max(1, whole.Variance())
		if math.Abs(merged.Variance()-whole.Variance()) > 1e-8*vscale {
			t.Fatalf("trial %d: variance %g vs %g", trial, merged.Variance(), whole.Variance())
		}
	}
}
