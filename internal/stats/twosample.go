package stats

import (
	"math"
	"sort"
)

// This file holds the two-sample equivalence helpers behind the batch
// engine's statistical test harness: a Kolmogorov–Smirnov distance
// with its large-sample rejection threshold, and Pearson chi-square
// statistics with fixed critical values. Everything is deterministic
// and table-driven — no p-value integration — because the consumers
// are tests that need a reproducible accept/reject decision, not an
// inference report.

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) − F_b(x)| between the empirical CDFs of the two
// samples. The inputs are not modified. With heavily tied data
// (integer observations such as convergence step counts) the statistic
// is still well defined — both CDFs jump at the tied value before the
// comparison — and the usual thresholds become conservative.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic requires non-empty samples")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := float64(len(as)), float64(len(bs))
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		// Advance every observation tied at the current value in both
		// samples, then compare the CDFs to its right.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSThreshold returns the large-sample two-sample Kolmogorov–Smirnov
// rejection threshold at significance level alpha:
//
//	c(α)·√((na+nb)/(na·nb)),  c(α) = √(−ln(α/2)/2)
//
// Reject equality of distributions when KSStatistic exceeds it. The
// approximation is asymptotic (and conservative under ties), so
// equivalence tests on discrete data should use a small alpha.
func KSThreshold(na, nb int, alpha float64) float64 {
	if na <= 0 || nb <= 0 {
		panic("stats: KSThreshold requires positive sample sizes")
	}
	if alpha <= 0 || alpha >= 1 {
		panic("stats: KSThreshold requires 0 < alpha < 1")
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	fa, fb := float64(na), float64(nb)
	return c * math.Sqrt((fa+fb)/(fa*fb))
}

// ChiSquareStat returns the Pearson goodness-of-fit statistic
// Σ (observedᵢ − expectedᵢ)²/expectedᵢ. Every expected count must be
// positive; the lengths must match. Compare against
// ChiSquareCritical(len(observed)−1−p, alpha) where p is the number of
// parameters estimated from the data (zero for a fully specified
// model).
func ChiSquareStat(observed []int64, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: ChiSquareStat requires matching lengths")
	}
	var stat float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			panic("stats: ChiSquareStat requires positive expected counts")
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat
}

// ChiSquareTwoSample returns the Pearson homogeneity statistic and its
// degrees of freedom for two vectors of counts over the same bins
// (the 2×k contingency test): under the null that both samples come
// from the same distribution, the expected count of sample a in bin i
// is na·(aᵢ+bᵢ)/(na+nb), and the statistic is asymptotically χ² with
// k−1 degrees of freedom, k the number of bins after pooling.
//
// Bins whose combined count falls below 10 are pooled into the
// following bin (the trailing remainder pools backward), keeping the
// asymptotic approximation honest on sparse tails. It returns df = 0
// when fewer than two pooled bins remain — no test is possible and the
// caller should treat the samples as indistinguishable at this size.
func ChiSquareTwoSample(a, b []int64) (stat float64, df int) {
	if len(a) != len(b) {
		panic("stats: ChiSquareTwoSample requires matching bin counts")
	}
	// Pool sparse bins left to right.
	type bin struct{ a, b int64 }
	var bins []bin
	var cur bin
	for i := range a {
		cur.a += a[i]
		cur.b += b[i]
		if cur.a+cur.b >= 10 {
			bins = append(bins, cur)
			cur = bin{}
		}
	}
	if cur.a+cur.b > 0 {
		if len(bins) > 0 {
			bins[len(bins)-1].a += cur.a
			bins[len(bins)-1].b += cur.b
		} else {
			bins = append(bins, cur)
		}
	}
	if len(bins) < 2 {
		return 0, 0
	}
	var na, nb int64
	for _, bn := range bins {
		na += bn.a
		nb += bn.b
	}
	fa, fb := float64(na), float64(nb)
	total := fa + fb
	for _, bn := range bins {
		pooled := float64(bn.a+bn.b) / total
		ea := fa * pooled
		eb := fb * pooled
		da := float64(bn.a) - ea
		db := float64(bn.b) - eb
		stat += da*da/ea + db*db/eb
	}
	return stat, len(bins) - 1
}

// chiSquareTable holds upper critical values of the χ² distribution
// for df 1…10 at the supported significance levels, indexed
// [df−1][levelIndex] with levels ordered 0.10, 0.05, 0.01, 0.001.
var chiSquareTable = [10][4]float64{
	{2.706, 3.841, 6.635, 10.828},
	{4.605, 5.991, 9.210, 13.816},
	{6.251, 7.815, 11.345, 16.266},
	{7.779, 9.488, 13.277, 18.467},
	{9.236, 11.070, 15.086, 20.515},
	{10.645, 12.592, 16.812, 22.458},
	{12.017, 14.067, 18.475, 24.322},
	{13.362, 15.507, 20.090, 26.124},
	{14.684, 16.919, 21.666, 27.877},
	{15.987, 18.307, 23.209, 29.588},
}

// chiSquareZ holds the standard-normal upper quantiles feeding the
// Wilson–Hilferty approximation, aligned with chiSquareTable's levels.
var chiSquareZ = [4]float64{1.2816, 1.6449, 2.3263, 3.0902}

func chiSquareLevel(alpha float64) int {
	switch alpha {
	case 0.10:
		return 0
	case 0.05:
		return 1
	case 0.01:
		return 2
	case 0.001:
		return 3
	}
	panic("stats: ChiSquareCritical supports alpha ∈ {0.10, 0.05, 0.01, 0.001}")
}

// ChiSquareCritical returns the upper critical value of the χ²
// distribution with df degrees of freedom at significance level
// alpha ∈ {0.10, 0.05, 0.01, 0.001}: exact tabulated values for
// df ≤ 10, the Wilson–Hilferty cube approximation
// df·(1 − 2/(9·df) + z_α·√(2/(9·df)))³ beyond (accurate to well under
// 1% there).
func ChiSquareCritical(df int, alpha float64) float64 {
	if df < 1 {
		panic("stats: ChiSquareCritical requires df ≥ 1")
	}
	li := chiSquareLevel(alpha)
	if df <= 10 {
		return chiSquareTable[df-1][li]
	}
	f := float64(df)
	t := 1 - 2/(9*f) + chiSquareZ[li]*math.Sqrt(2/(9*f))
	return f * t * t * t
}
