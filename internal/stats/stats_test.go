package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev %f", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %f/%f", s.Min, s.Max)
	}
	if math.Abs(s.StdErr()-s.StdDev/math.Sqrt(8)) > 1e-12 {
		t.Fatal("stderr inconsistent")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.N != 0 || s.StdErr() != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	if s := Summarize([]float64{3}); s.Mean != 3 || s.StdDev != 0 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestHarmonic(t *testing.T) {
	t.Parallel()
	if Harmonic(0) != 0 || Harmonic(1) != 1 {
		t.Fatal("H0/H1 wrong")
	}
	if math.Abs(Harmonic(4)-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatal("H4 wrong")
	}
	// H_n ≈ ln n + γ.
	if math.Abs(Harmonic(100000)-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatal("asymptotic check failed")
	}
}

func TestLinearFitExact(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Fatalf("fit %+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R² %f", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	t.Parallel()
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	t.Parallel()
	f := func(raw uint8) bool {
		alphaTrue := 0.5 + float64(raw%40)/10 // 0.5 … 4.4
		xs := []float64{8, 16, 32, 64, 128}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 3.7 * math.Pow(x, alphaTrue)
		}
		alpha, r2, err := PowerFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(alpha-alphaTrue) < 1e-9 && r2 > 0.999999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	t.Parallel()
	if _, _, err := PowerFit([]float64{1, 2}, []float64{0, 3}); err == nil {
		t.Fatal("zero sample accepted")
	}
	if _, _, err := PowerFit([]float64{-1, 2}, []float64{1, 3}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

func TestRatioSpread(t *testing.T) {
	t.Parallel()
	spread, err := RatioSpread([]float64{10, 21, 30}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spread-1.05) > 1e-12 {
		t.Fatalf("spread %f", spread)
	}
	if _, err := RatioSpread([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := RatioSpread([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero reference accepted")
	}
	if _, err := RatioSpread([]float64{-1}, []float64{2}); err == nil {
		t.Fatal("negative ratio accepted")
	}
}
