// Package stats provides the small statistical toolkit used to compare
// measured convergence times against the paper's analytic expectations:
// summary statistics, harmonic numbers, and log-log regression for
// fitting polynomial scaling exponents.
package stats

import (
	"errors"
	"math"
)

// Summary holds basic sample statistics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes sample statistics (sample standard deviation).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	total := 0.0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = total / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.StdDev / math.Sqrt(float64(s.N))
}

// Harmonic returns H_n = Σ_{i=1}^{n} 1/i.
func Harmonic(n int) float64 {
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / float64(i)
	}
	return total
}

// Fit is a least-squares linear fit y = Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit performs ordinary least squares on (xs, ys).
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("stats: need at least two samples")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// Coefficient of determination.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// PowerFit fits y = c·x^α by regressing log y on log x and returns α
// (the scaling exponent) with the fit's R². All samples must be
// positive.
func PowerFit(xs, ys []float64) (alpha, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || i < len(ys) && ys[i] <= 0 {
			return 0, 0, errors.New("stats: power fit requires positive samples")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return fit.Slope, fit.R2, nil
}

// RatioSpread returns max/min of the ratios ys[i]/fs[i]; a spread near
// 1 across a sweep indicates ys tracks the reference curve fs up to a
// constant — the empirical signature of a matching Θ-class.
func RatioSpread(ys, fs []float64) (float64, error) {
	if len(ys) != len(fs) || len(ys) == 0 {
		return 0, errors.New("stats: mismatched or empty samples")
	}
	minR := math.Inf(1)
	maxR := math.Inf(-1)
	for i := range ys {
		if fs[i] == 0 {
			return 0, errors.New("stats: zero reference value")
		}
		r := ys[i] / fs[i]
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if minR <= 0 {
		return 0, errors.New("stats: non-positive ratio")
	}
	return maxR / minR, nil
}
