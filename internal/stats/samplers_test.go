package stats

import (
	"math"
	"math/bits"
	rand "math/rand/v2"
	"testing"
)

// The sampler laws are pinned against literal simulations — flipped
// coins, shuffled urns, stepped walks — with a two-sample chi-square
// at α = 0.001, mirroring the harness internal/core uses for its
// bucket samplers. *rand/v2.Rand satisfies Source directly, so the
// tests need no engine import.

const samplerLawTrials = 4000

func newSource(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// samplerChiSquare runs a two-sample homogeneity test on two count
// histograms and fails if the distributions differ at α = 0.001.
func samplerChiSquare(t *testing.T, label string, a, b []int64) {
	t.Helper()
	stat, df := ChiSquareTwoSample(a, b)
	if df == 0 {
		t.Fatalf("%s: chi-square test degenerate (df = 0): histograms %v vs %v", label, a, b)
	}
	if crit := ChiSquareCritical(df, 0.001); stat > crit {
		t.Errorf("%s: chi-square stat %.2f > critical %.2f (df %d)\n sampler: %v\n brute:   %v",
			label, stat, crit, df, a, b)
	}
}

// TestBinomialLawMatch pins every Binomial code path — the fair-coin
// popcount counter, the CDF-inversion walk, the complement branch —
// against literally flipped coins.
func TestBinomialLawMatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.3},  // inversion walk
		{10, 0.7},  // complement branch
		{100, 0.5}, // popcount, full word + remainder
		{64, 0.5},  // popcount, exactly one word
		{3, 0.5},   // popcount, sub-word only
		{20, 0.05}, // sparse successes
	}
	for i, tc := range cases {
		srcA := newSource(uint64(100 + i))
		srcB := newSource(uint64(200 + i))
		histA := make([]int64, tc.n+1)
		histB := make([]int64, tc.n+1)
		for trial := 0; trial < samplerLawTrials; trial++ {
			histA[Binomial(srcA, tc.n, tc.p)]++
			var brute int64
			for j := int64(0); j < tc.n; j++ {
				if srcB.Float64() < tc.p {
					brute++
				}
			}
			histB[brute]++
		}
		samplerChiSquare(t, "Binomial", histA, histB)
	}
}

// TestBinomialSplitMean checks the large-n split path (starting mass
// below float64 range) by a moment bound: a chi-square against 10⁶
// literal coin flips per trial would dominate the suite's runtime.
func TestBinomialSplitMean(t *testing.T) {
	t.Parallel()
	src := newSource(7)
	const n, p, trials = int64(1_000_000), 1e-3, 2000
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		k := float64(Binomial(src, n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	wantMean := float64(n) * p
	wantSD := math.Sqrt(float64(n) * p * (1 - p))
	if math.Abs(mean-wantMean) > 6*wantSD/math.Sqrt(trials) {
		t.Errorf("split-path mean %.2f, want %.2f ± %.2f", mean, wantMean, 6*wantSD/math.Sqrt(trials))
	}
	variance := sumSq/trials - mean*mean
	if math.Abs(variance-wantSD*wantSD) > 0.2*wantSD*wantSD {
		t.Errorf("split-path variance %.2f, want %.2f", variance, wantSD*wantSD)
	}
}

// TestHypergeometricLawMatch pins the sampler against a literal
// shuffled urn across cases that exercise each symmetry branch.
func TestHypergeometricLawMatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		draws, marked, total int64
	}{
		{6, 5, 14},  // direct inversion
		{6, 10, 14}, // mark-complement branch
		{9, 4, 14},  // draw/mark swap branch
		{13, 7, 14}, // near-exhaustive draw
		{1, 1, 2},   // minimal
	}
	for i, tc := range cases {
		srcA := newSource(uint64(300 + i))
		srcB := newSource(uint64(400 + i))
		histA := make([]int64, tc.draws+1)
		histB := make([]int64, tc.draws+1)
		urn := make([]int, tc.total)
		for trial := 0; trial < samplerLawTrials; trial++ {
			histA[Hypergeometric(srcA, tc.draws, tc.marked, tc.total)]++
			for j := range urn {
				urn[j] = 0
				if int64(j) < tc.marked {
					urn[j] = 1
				}
			}
			var brute int64
			for j := int64(0); j < tc.draws; j++ {
				k := j + srcB.Int64N(tc.total-j)
				urn[j], urn[k] = urn[k], urn[j]
				brute += int64(urn[j])
			}
			histB[brute]++
		}
		samplerChiSquare(t, "Hypergeometric", histA, histB)
	}
}

// TestWalkDisplacementLawMatch pins the one-draw displacement against
// a literally stepped lazy walk, including the stay = 0 swap-run case
// the batch engine uses and a genuinely lazy walk.
func TestWalkDisplacementLawMatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		steps int64
		stay  float64
	}{
		{17, 0},   // swap-run collapse parameters
		{96, 0},   // popcount across a word boundary
		{24, 0.4}, // lazy walk
	}
	for i, tc := range cases {
		srcA := newSource(uint64(500 + i))
		srcB := newSource(uint64(600 + i))
		// Displacement lives in [−steps, steps]; shift into histogram
		// indices.
		histA := make([]int64, 2*tc.steps+1)
		histB := make([]int64, 2*tc.steps+1)
		for trial := 0; trial < samplerLawTrials; trial++ {
			histA[WalkDisplacement(srcA, tc.steps, tc.stay)+tc.steps]++
			var pos int64
			for j := int64(0); j < tc.steps; j++ {
				if tc.stay > 0 && srcB.Float64() < tc.stay {
					continue
				}
				if srcB.Uint64()&1 == 0 {
					pos--
				} else {
					pos++
				}
			}
			histB[pos+tc.steps]++
		}
		samplerChiSquare(t, "WalkDisplacement", histA, histB)
	}
}

// TestWalkDisplacementParity: with stay = 0 the displacement must have
// the parity of the step count — the batch engine relies on this to
// land the walker on a path node.
func TestWalkDisplacementParity(t *testing.T) {
	t.Parallel()
	src := newSource(42)
	for steps := int64(1); steps <= 65; steps++ {
		for trial := 0; trial < 50; trial++ {
			d := WalkDisplacement(src, steps, 0)
			if d < -steps || d > steps {
				t.Fatalf("steps=%d: displacement %d out of range", steps, d)
			}
			if (d-steps)%2 != 0 {
				t.Fatalf("steps=%d: displacement %d has wrong parity", steps, d)
			}
		}
	}
}

// TestNegBinomialLawMatch pins the gamma–Poisson mixture against a
// literal sum of geometric gaps (failures before each of r successes)
// — exactly the quantity the batch engine collapses: the scheduler
// misses interleaving r landings.
func TestNegBinomialLawMatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		r int64
		p float64
	}{
		{4, 0.5},
		{9, 0.8},
		{2, 0.15},
	}
	for i, tc := range cases {
		srcA := newSource(uint64(700 + i))
		srcB := newSource(uint64(800 + i))
		// Bin the unbounded support: last bin is the tail.
		maxBin := int64(float64(tc.r)*(1-tc.p)/tc.p)*3 + 10
		histA := make([]int64, maxBin+1)
		histB := make([]int64, maxBin+1)
		for trial := 0; trial < samplerLawTrials; trial++ {
			a := NegBinomial(srcA, tc.r, tc.p)
			if a > maxBin {
				a = maxBin
			}
			histA[a]++
			var brute int64
			for s := int64(0); s < tc.r; s++ {
				for srcB.Float64() >= tc.p {
					brute++
				}
			}
			if brute > maxBin {
				brute = maxBin
			}
			histB[brute]++
		}
		samplerChiSquare(t, "NegBinomial", histA, histB)
	}
}

// TestNegHypergeometricRunLawMatch pins the run-length sampler against
// a literal shuffled sequence: how many marked items precede the first
// unmarked one.
func TestNegHypergeometricRunLawMatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		marked, unmarked int64
	}{
		{12, 3},
		{5, 5},
		{30, 1},
		{2, 9},
	}
	for i, tc := range cases {
		srcA := newSource(uint64(900 + i))
		srcB := newSource(uint64(1000 + i))
		histA := make([]int64, tc.marked+1)
		histB := make([]int64, tc.marked+1)
		total := tc.marked + tc.unmarked
		seq := make([]int, total)
		for trial := 0; trial < samplerLawTrials; trial++ {
			histA[NegHypergeometricRun(srcA, tc.marked, tc.unmarked)]++
			for j := range seq {
				seq[j] = 0
				if int64(j) < tc.marked {
					seq[j] = 1
				}
			}
			rand.New(rand.NewPCG(srcB.Uint64(), srcB.Uint64())).Shuffle(len(seq), func(a, b int) {
				seq[a], seq[b] = seq[b], seq[a]
			})
			var run int64
			for _, v := range seq {
				if v == 0 {
					break
				}
				run++
			}
			histB[run]++
		}
		samplerChiSquare(t, "NegHypergeometricRun", histA, histB)
	}
}

// TestPoissonLawMatch pins both Poisson regimes against the
// theoretical pmf with a one-sample chi-square: the small-mean
// multiplication method and the PTRS rejection path.
func TestPoissonLawMatch(t *testing.T) {
	t.Parallel()
	for i, mean := range []float64{3.5, 80} {
		src := newSource(uint64(1100 + i))
		sd := math.Sqrt(mean)
		lo := int64(math.Max(0, mean-6*sd))
		hi := int64(mean + 6*sd)
		nbins := hi - lo + 2 // [under-lo tail] handled by clamping into edge bins
		obs := make([]int64, nbins)
		for trial := 0; trial < samplerLawTrials; trial++ {
			k := Poisson(src, mean)
			idx := k - lo
			if idx < 0 {
				idx = 0
			}
			if idx >= nbins {
				idx = nbins - 1
			}
			obs[idx]++
		}
		expected := make([]float64, nbins)
		for k := int64(0); k <= hi+40; k++ {
			lg, _ := math.Lgamma(float64(k + 1))
			p := math.Exp(float64(k)*math.Log(mean) - mean - lg)
			idx := k - lo
			if idx < 0 {
				idx = 0
			}
			if idx >= nbins {
				idx = nbins - 1
			}
			expected[idx] += p * samplerLawTrials
		}
		// Pool sparse tail bins so expected counts stay ≥ 5.
		pooledObs, pooledExp := poolBins(obs, expected, 5)
		stat := ChiSquareStat(pooledObs, pooledExp)
		df := len(pooledObs) - 1
		if df < 1 {
			t.Fatalf("Poisson(%g): degenerate binning", mean)
		}
		if crit := ChiSquareCritical(df, 0.001); stat > crit {
			t.Errorf("Poisson(%g): chi-square stat %.2f > critical %.2f (df %d)", mean, stat, crit, df)
		}
	}
}

// poolBins merges adjacent bins until every expected count reaches
// minExp, keeping the one-sample chi-square approximation valid.
func poolBins(obs []int64, exp []float64, minExp float64) ([]int64, []float64) {
	var pooledObs []int64
	var pooledExp []float64
	var accO int64
	var accE float64
	for i := range obs {
		accO += obs[i]
		accE += exp[i]
		if accE >= minExp {
			pooledObs = append(pooledObs, accO)
			pooledExp = append(pooledExp, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 && len(pooledExp) > 0 {
		pooledObs[len(pooledObs)-1] += accO
		pooledExp[len(pooledExp)-1] += accE
	}
	return pooledObs, pooledExp
}

// TestGammaMoments sanity-checks the Marsaglia–Tsang sampler on both
// shape regimes: Gamma(shape, 1) has mean = variance = shape.
func TestGammaMoments(t *testing.T) {
	t.Parallel()
	for i, shape := range []float64{0.4, 1, 2.5, 40} {
		src := newSource(uint64(1200 + i))
		const trials = 20000
		var sum, sumSq float64
		for trial := 0; trial < trials; trial++ {
			x := Gamma(src, shape)
			if x < 0 {
				t.Fatalf("Gamma(%g) returned negative %g", shape, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		se := math.Sqrt(shape / trials) // sd of the sample mean
		if math.Abs(mean-shape) > 6*se {
			t.Errorf("Gamma(%g): sample mean %.3f, want %.3f ± %.3f", shape, mean, shape, 6*se)
		}
		variance := sumSq/trials - mean*mean
		if math.Abs(variance-shape) > 0.15*shape+6*se {
			t.Errorf("Gamma(%g): sample variance %.3f, want %.3f", shape, variance, shape)
		}
	}
}

// FuzzHypergeometric fuzzes the support invariant of the scalar
// hypergeometric sampler alongside core's FuzzBucketSamplers: any
// valid (draws, marked, total) must yield
// max(0, draws+marked−total) ≤ k ≤ min(draws, marked).
func FuzzHypergeometric(f *testing.F) {
	f.Add(uint64(1), int64(6), int64(5), int64(14))
	f.Add(uint64(2), int64(0), int64(0), int64(0))
	f.Add(uint64(3), int64(1000), int64(999), int64(1000))
	f.Add(uint64(4), int64(1<<19), int64(1<<18), int64(1<<20))
	f.Fuzz(func(t *testing.T, seed uint64, draws, marked, total int64) {
		if total < 0 {
			total = -(total + 1)
		}
		// CDF inversion is O(result): cap the population so a fuzz
		// case stays sub-second. The engine's own calls keep the
		// marked dimension at plan size (≤ 2¹⁵) for the same reason.
		total %= 1 << 20
		if marked < 0 {
			marked = -(marked + 1)
		}
		if draws < 0 {
			draws = -(draws + 1)
		}
		if total > 0 {
			marked %= total + 1
			draws %= total + 1
		} else {
			marked, draws = 0, 0
		}
		src := newSource(seed)
		k := Hypergeometric(src, draws, marked, total)
		lo := draws + marked - total
		if lo < 0 {
			lo = 0
		}
		hi := draws
		if marked < hi {
			hi = marked
		}
		if k < lo || k > hi {
			t.Fatalf("Hypergeometric(%d, %d, %d) = %d outside support [%d, %d]",
				draws, marked, total, k, lo, hi)
		}
	})
}

// TestWalkDisplacementStreamEconomy documents the popcount fast path:
// a 512-step displacement must consume exactly ⌈512/64⌉ = 8 uniform
// words, which is what makes collapsing plan-sized runs essentially
// free. A counting source wrapper verifies it.
func TestWalkDisplacementStreamEconomy(t *testing.T) {
	t.Parallel()
	src := &countingSource{Rand: newSource(9)}
	if d := WalkDisplacement(src, 512, 0); d < -512 || d > 512 {
		t.Fatalf("displacement %d out of range", d)
	}
	if src.uint64s != 8 || src.float64s != 0 {
		t.Errorf("512-step displacement consumed %d words and %d floats; want 8 words, 0 floats",
			src.uint64s, src.float64s)
	}
	_ = bits.OnesCount64 // the fast path under test
}

type countingSource struct {
	*rand.Rand
	uint64s  int
	float64s int
}

func (c *countingSource) Uint64() uint64 {
	c.uint64s++
	return c.Rand.Uint64()
}

func (c *countingSource) Float64() float64 {
	c.float64s++
	return c.Rand.Float64()
}
