package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestKSStatisticHandComputed pins the statistic against fixtures small
// enough to evaluate the empirical CDFs by hand.
func TestKSStatisticHandComputed(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		// F_a jumps to 1/2 by x=2 while F_b is still 0; sup = 1/2.
		{"shifted", []float64{1, 2, 3, 4}, []float64{3, 4, 5, 6}, 0.5},
		// Identical samples never separate.
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		// Disjoint supports separate completely.
		{"disjoint", []float64{1, 2}, []float64{3, 4}, 1},
		// Ties across samples: after x=1, F_a=1, F_b=1/3 → 2/3.
		{"ties", []float64{1, 1, 1}, []float64{1, 2, 3}, 2.0 / 3.0},
		// Unequal sizes: after x=1, F_a=1/1... sup at x=1: |1/2 − 1/4|,
		// at x=2: |1 − 2/4| = 1/2.
		{"unequal", []float64{1, 2}, []float64{1, 2, 3, 4}, 0.5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := KSStatistic(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("KSStatistic = %v, want %v", got, tc.want)
			}
			// Symmetry.
			if got := KSStatistic(tc.b, tc.a); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("KSStatistic reversed = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestKSStatisticDoesNotMutate pins that the inputs are left unsorted.
func TestKSStatisticDoesNotMutate(t *testing.T) {
	t.Parallel()
	a := []float64{3, 1, 2}
	b := []float64{2, 3, 1}
	KSStatistic(a, b)
	if a[0] != 3 || a[1] != 1 || a[2] != 2 || b[0] != 2 {
		t.Fatalf("inputs mutated: a=%v b=%v", a, b)
	}
}

// TestKSThreshold pins the closed form: for na = nb = 100 at α = 0.05,
// c = √(−ln 0.025/2) ≈ 1.358102, threshold = c·√(200/10000).
func TestKSThreshold(t *testing.T) {
	t.Parallel()
	want := math.Sqrt(-math.Log(0.025)/2) * math.Sqrt(200.0/10000.0)
	if got := KSThreshold(100, 100, 0.05); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KSThreshold(100,100,0.05) = %v, want %v", got, want)
	}
	// Same-law samples of this size should sit comfortably below the
	// α = 0.001 threshold: identical empirical data gives D = 0.
	if d := KSStatistic([]float64{1, 2, 3}, []float64{1, 2, 3}); d > KSThreshold(3, 3, 0.001) {
		t.Fatalf("identical samples rejected: D=%v", d)
	}
}

// TestChiSquareStatHandComputed pins the fair-die fixture whose
// statistic is exactly 2: observed {16,18,16,14,12,12} over 88 rolls,
// uniform expected 44/3 per face.
func TestChiSquareStatHandComputed(t *testing.T) {
	t.Parallel()
	observed := []int64{16, 18, 16, 14, 12, 12}
	expected := make([]float64, 6)
	for i := range expected {
		expected[i] = 44.0 / 3.0
	}
	if got := ChiSquareStat(observed, expected); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("ChiSquareStat = %v, want exactly 2.0", got)
	}
	// 5 degrees of freedom at α = 0.05 → 11.070: the fair die passes.
	if crit := ChiSquareCritical(5, 0.05); 2.0 > crit {
		t.Fatalf("fair die rejected against critical %v", crit)
	}
}

// TestChiSquareTwoSampleHandComputed pins the homogeneity statistic on
// a 2×2 table: a = {10, 30}, b = {30, 10}. Pooled proportions are
// 1/2 each, every expected count is 20, every deviation ±10, so the
// statistic is 4·(100/20) = 20 with 1 degree of freedom.
func TestChiSquareTwoSampleHandComputed(t *testing.T) {
	t.Parallel()
	stat, df := ChiSquareTwoSample([]int64{10, 30}, []int64{30, 10})
	if df != 1 {
		t.Fatalf("df = %d, want 1", df)
	}
	if math.Abs(stat-20.0) > 1e-12 {
		t.Fatalf("stat = %v, want exactly 20.0", stat)
	}
	// 20 ≫ 10.828 (df 1, α = 0.001): clearly heterogeneous.
	if stat < ChiSquareCritical(1, 0.001) {
		t.Fatal("obviously different samples not rejected")
	}
	// Identical tables carry zero statistic.
	stat, df = ChiSquareTwoSample([]int64{20, 20}, []int64{20, 20})
	if df != 1 || stat != 0 {
		t.Fatalf("identical tables: stat=%v df=%d", stat, df)
	}
}

// TestChiSquareTwoSamplePooling pins the sparse-bin pooling: bins with
// combined count below 10 merge rightward, the trailing remainder
// merges backward, and a table that pools to a single bin reports
// df = 0 (no test).
func TestChiSquareTwoSamplePooling(t *testing.T) {
	t.Parallel()
	// Combined counts {7, 11, 2}: bin 0 is below 10 so it pools with
	// bin 1 (combined 18 ≥ 10 closes the pool), and the trailing 2
	// pools backward into it. One bin remains → df 0, no test.
	stat, df := ChiSquareTwoSample([]int64{3, 5, 1}, []int64{4, 6, 1})
	if df != 0 || stat != 0 {
		t.Fatalf("fully pooled table: stat=%v df=%d, want 0, 0", stat, df)
	}
	// Two dense bins plus a sparse tail: the tail pools into the last
	// dense bin, leaving df = 1.
	_, df = ChiSquareTwoSample([]int64{20, 20, 1}, []int64{20, 20, 2})
	if df != 1 {
		t.Fatalf("df = %d, want 1 after tail pooling", df)
	}
}

// TestChiSquareCriticalTable spot-checks the tabulated quantiles and
// the Wilson–Hilferty extension's accuracy at the first df beyond the
// table (df 20 at α = 0.05 is 31.410 to three decimals).
func TestChiSquareCriticalTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{1, 0.05, 3.841},
		{1, 0.001, 10.828},
		{2, 0.10, 4.605},
		{5, 0.05, 11.070},
		{10, 0.01, 23.209},
	}
	for _, tc := range cases {
		if got := ChiSquareCritical(tc.df, tc.alpha); got != tc.want {
			t.Fatalf("ChiSquareCritical(%d, %v) = %v, want %v", tc.df, tc.alpha, got, tc.want)
		}
	}
	// Wilson–Hilferty beyond the table: df 20, α = 0.05 → 31.410…;
	// the cube approximation must land within 0.5%.
	if got := ChiSquareCritical(20, 0.05); math.Abs(got-31.410)/31.410 > 0.005 {
		t.Fatalf("Wilson–Hilferty df=20 gave %v, want ≈31.410", got)
	}
	// Monotone in df and in confidence.
	if ChiSquareCritical(11, 0.05) <= ChiSquareCritical(10, 0.05) {
		t.Fatal("critical values not monotone across the table boundary")
	}
	if ChiSquareCritical(7, 0.001) <= ChiSquareCritical(7, 0.05) {
		t.Fatal("critical values not monotone in significance")
	}
}

// TestKSSameLawAcceptance draws two independent samples from the same
// law with a fixed seed and checks the α = 0.001 test accepts — the
// configuration the engine-equivalence suite runs with.
func TestKSSameLawAcceptance(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(42, 43))
	const n = 400
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		// Discrete, heavily tied law — the convergence-time shape.
		a[i] = float64(rng.IntN(50))
		b[i] = float64(rng.IntN(50))
	}
	d := KSStatistic(a, b)
	if thr := KSThreshold(n, n, 0.001); d > thr {
		t.Fatalf("same-law samples rejected: D=%v > %v", d, thr)
	}
	// And a genuinely shifted law is caught even at α = 0.001.
	for i := range b {
		b[i] += 10
	}
	d = KSStatistic(a, b)
	if thr := KSThreshold(n, n, 0.001); d <= thr {
		t.Fatalf("shifted law accepted: D=%v ≤ %v", d, thr)
	}
}
