package stats

import "math"

// Online is a single-pass (Welford) accumulator of sample statistics.
// It is the streaming counterpart of Summarize: a collector can fold an
// unbounded stream of observations into constant state and read off the
// same summary fields at any point. Feeding the same values in the same
// order always produces bit-identical results, which is what lets the
// campaign runner promise worker-count-independent aggregates — its
// collector replays completions in trial order before adding them here.
type Online struct {
	n    int
	mean float64
	m2   float64 // Σ (x − mean)² running sum of squared deviations
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations folded in so far.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 with no observations).
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest observation (0 with no observations).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 with no observations).
func (o *Online) Max() float64 { return o.max }

// Variance returns the sample variance (n−1 denominator), 0 for fewer
// than two observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// StdErr returns the standard error of the mean.
func (o *Online) StdErr() float64 {
	if o.n == 0 {
		return 0
	}
	return o.StdDev() / math.Sqrt(float64(o.n))
}

// Summary snapshots the accumulator as a Summary, interchangeable with
// Summarize's output (up to floating-point association order).
func (o *Online) Summary() Summary {
	return Summary{N: o.n, Mean: o.mean, StdDev: o.StdDev(), Min: o.min, Max: o.max}
}

// OnlineState is the serializable snapshot of an Online accumulator —
// the five numbers the Chan/Welford parallel-combine rule needs. It is
// what campaign checkpoints persist per shard, so partial aggregates
// survive a process restart and merge exactly where they left off
// (across processes, or eventually machines).
type OnlineState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State snapshots the accumulator. FromState(o.State()) is o, exactly.
func (o *Online) State() OnlineState {
	return OnlineState{N: o.n, Mean: o.mean, M2: o.m2, Min: o.min, Max: o.max}
}

// FromState reconstitutes an accumulator from a snapshot. Adding or
// merging into the result continues bit-for-bit where the snapshotted
// accumulator would have — the state is the whole accumulator.
func FromState(s OnlineState) Online {
	return Online{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
}

// Merge folds the other accumulator into o using the parallel-variance
// combination rule. Note that merging is not bit-for-bit equivalent to
// sequential Adds — order-sensitive callers (the campaign collector)
// should replay observations in a canonical order instead.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	n := float64(o.n + other.n)
	d := other.mean - o.mean
	o.m2 += other.m2 + d*d*float64(o.n)*float64(other.n)/n
	o.mean += d * float64(other.n) / n
	o.n += other.n
}
