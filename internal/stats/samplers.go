package stats

import (
	"math"
	"math/bits"
)

// This file holds the exact discrete samplers behind the batch
// engine's analytic phase collapse (see internal/core/batch.go and
// ARCHITECTURE.md): binomial and hypergeometric counts, gamma/Poisson
// variates feeding the negative-binomial gap collapse, and the net
// displacement of a k-step lazy random walk. They live in
// internal/stats rather than on core.RNG so their laws can be pinned
// against literal urn and coin simulations without importing the
// engine, and so non-engine consumers (future analysis tooling) can
// draw from any uniform source. Every sampler is exact up to float64
// rounding: CDF inversions walk the true probability mass, and the
// gamma/Poisson pair are rejection samplers, not approximations.

// Source is the uniform-randomness interface the samplers consume.
// *math/rand/v2.Rand satisfies it, as does core.RNG.
type Source interface {
	// Float64 returns a uniform float in [0, 1).
	Float64() float64
	// Uint64 returns a uniform 64-bit word.
	Uint64() uint64
	// ExpFloat64 returns an Exponential(1) variate.
	ExpFloat64() float64
	// NormFloat64 returns a standard normal variate.
	NormFloat64() float64
}

// sampleClamp bounds the open-ended samplers (negative binomial with a
// vanishing success probability) the way core's geometric clamp does:
// callers bound the result by their remaining step budget anyway.
const sampleClamp = int64(1) << 62

// Binomial returns the number of successes in n independent
// Bernoulli(p) trials. Fair coins (p = 1/2) are counted exactly by
// popcount over ⌈n/64⌉ uniform words; other probabilities invert the
// CDF on a single uniform draw, walking O(n·min(p, 1−p)) expected
// terms, with very large n·p split into independent halves so the
// starting mass (1−p)ⁿ stays representable.
func Binomial(src Source, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p == 0.5 {
		var k int64
		for ; n >= 64; n -= 64 {
			k += int64(bits.OnesCount64(src.Uint64()))
		}
		if n > 0 {
			k += int64(bits.OnesCount64(src.Uint64() >> (64 - uint(n))))
		}
		return k
	}
	if p > 0.5 {
		return n - Binomial(src, n, 1-p)
	}
	if float64(n)*math.Log1p(-p) < -700 {
		half := n / 2
		return Binomial(src, half, p) + Binomial(src, n-half, p)
	}
	u := src.Float64()
	q := 1 - p
	pmf := math.Pow(q, float64(n))
	cdf := pmf
	ratio := p / q
	var k int64
	for u > cdf && k < n {
		k++
		pmf *= ratio * float64(n-k+1) / float64(k)
		cdf += pmf
	}
	return k
}

// Hypergeometric returns how many of `draws` draws without
// replacement, from a population of `total` items of which `marked`
// are marked, hit marked items. CDF inversion like Binomial, with the
// starting mass computed through lgamma; a starting mass below float64
// range splits the draw into two rounds on the depleted urn, which is
// exact by the urn decomposition. It must hold 0 ≤ marked ≤ total and
// 0 ≤ draws ≤ total.
func Hypergeometric(src Source, draws, marked, total int64) int64 {
	if draws < 0 || marked < 0 || marked > total || draws > total {
		panic("stats: Hypergeometric requires 0 ≤ draws, marked ≤ total")
	}
	if draws == 0 || marked == 0 {
		return 0
	}
	if draws == total {
		return marked
	}
	if marked == total {
		return draws
	}
	// Symmetries keep the inversion walk short: complementing the
	// marks, and swapping the roles of the drawn and marked subsets
	// (both exact identities of the distribution).
	if marked > total-marked {
		return draws - Hypergeometric(src, draws, total-marked, total)
	}
	if draws > marked {
		return Hypergeometric(src, marked, draws, total)
	}
	// ln pmf(0) = ln C(total−marked, draws) − ln C(total, draws).
	lp := LnChoose(total-marked, draws) - LnChoose(total, draws)
	if lp < -700 {
		half := draws / 2
		k1 := Hypergeometric(src, half, marked, total)
		return k1 + Hypergeometric(src, draws-half, marked-k1, total-half)
	}
	u := src.Float64()
	pmf := math.Exp(lp)
	cdf := pmf
	maxK := draws
	if marked < maxK {
		maxK = marked
	}
	var k int64
	for u > cdf && k < maxK {
		pmf *= float64(marked-k) * float64(draws-k) /
			(float64(k+1) * float64(total-marked-draws+k+1))
		k++
		cdf += pmf
	}
	return k
}

// Gamma returns a Gamma(shape, 1) variate by the Marsaglia–Tsang
// squeeze-rejection method — exact, O(1) expected draws — with the
// shape < 1 case boosted through Gamma(shape+1)·U^{1/shape}.
func Gamma(src Source, shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma requires positive shape")
	}
	if shape < 1 {
		u := 1 - src.Float64() // (0, 1]: avoids a zero boost
		return Gamma(src, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Poisson returns a Poisson(mean) variate: the multiplication method
// for small means, Hörmann's PTRS transformed rejection — exact, O(1)
// expected draws — above it. Means beyond int64's safely representable
// range are clamped.
func Poisson(src Source, mean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		// Knuth's product-of-uniforms, O(mean).
		limit := math.Exp(-mean)
		prod := src.Float64()
		var k int64
		for prod > limit {
			prod *= src.Float64()
			k++
		}
		return k
	case mean > float64(sampleClamp):
		return sampleClamp
	}
	// PTRS (Hörmann 1993): one uniform pair per iteration, acceptance
	// rate ≥ 0.94 for mean ≥ 30.
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := src.Float64() - 0.5
		v := src.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int64(k)
		}
	}
}

// NegBinomial returns the total number of failures before the r-th
// success in independent Bernoulli(p) trials — the sum of r iid
// Geometric(p) gap lengths, which is how the batch engine collapses
// the scheduler gaps of r landings into one draw. It uses the exact
// gamma–Poisson mixture NB(r, p) = Poisson(Λ), Λ ~ Gamma(r)·(1−p)/p.
// p ≥ 1 returns 0; p ≤ 0 (a success that can never happen) returns a
// huge clamp the caller bounds by its step budget.
func NegBinomial(src Source, r int64, p float64) int64 {
	if r <= 0 || p >= 1 {
		return 0
	}
	if p <= 0 {
		return sampleClamp
	}
	lambda := Gamma(src, float64(r)) * (1 - p) / p
	if lambda > float64(sampleClamp) {
		return sampleClamp
	}
	return Poisson(src, lambda)
}

// WalkDisplacement returns the net displacement of a `steps`-step lazy
// simple random walk on ℤ: each step holds with probability `stay`,
// otherwise moves ±1 with equal probability. With M the number of
// moving steps (binomial) and R the rightward moves among them (fair
// binomial, counted by popcount), the displacement 2R − M carries the
// exact k-step law — one draw replacing k per-step simulations. The
// batch engine uses stay = 0: a planned swap run moves its walker on
// every landing.
func WalkDisplacement(src Source, steps int64, stay float64) int64 {
	if steps <= 0 {
		return 0
	}
	moves := steps
	if stay > 0 {
		moves = steps - Binomial(src, steps, stay)
	}
	return 2*Binomial(src, moves, 0.5) - moves
}

// NegHypergeometricRun returns how many marked items a uniform random
// permutation of `marked` marked and `unmarked` unmarked items yields
// before its first unmarked item — the negative hypergeometric law the
// batch engine uses for run collapse: with a bucket plan holding k_s
// swap-class and k_o other landings, the length of the opening run of
// swap landings is exactly this variate. Sampled by walking the
// survival function P(run ≥ j) = ∏_{i<j} (marked−i)/(marked+unmarked−i)
// on one uniform draw; unmarked = 0 returns marked (the whole plan is
// one run).
func NegHypergeometricRun(src Source, marked, unmarked int64) int64 {
	if marked < 0 || unmarked < 0 {
		panic("stats: NegHypergeometricRun requires non-negative counts")
	}
	if marked == 0 {
		return 0
	}
	if unmarked == 0 {
		return marked
	}
	u := src.Float64()
	surv := 1.0
	var j int64
	for j < marked {
		surv *= float64(marked-j) / float64(marked+unmarked-j)
		if u >= surv {
			return j
		}
		j++
	}
	return marked
}

// LnChoose returns ln C(n, k) via lgamma.
func LnChoose(n, k int64) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
