package tm

import (
	"fmt"

	"repro/internal/graph"
)

// SpaceClass is the space bound a graph language's decider needs, as a
// function of the population parameters — the DGS(·) classes of
// Section 6. Deciders declare their class so the universal
// constructors can check the inclusion DGS(f) ⊆ PREL(g) they
// instantiate.
type SpaceClass int

// Space classes, ordered by inclusion.
const (
	LogSpace SpaceClass = iota + 1
	LinearSpace
	QuadraticSpace
)

// String renders the class in the paper's notation, with l the input
// length (l = Θ(n²) for adjacency encodings).
func (s SpaceClass) String() string {
	switch s {
	case LogSpace:
		return "DGS(O(log n))"
	case LinearSpace:
		return "DGS(O(n))"
	case QuadraticSpace:
		return "DGS(O(n²))"
	default:
		return fmt.Sprintf("SpaceClass(%d)", int(s))
	}
}

// GraphLanguage is a decidable graph language together with the space
// class of its decider. Decide must be isomorphism-invariant.
type GraphLanguage struct {
	Name   string
	Space  SpaceClass
	Decide func(g *graph.Graph) bool
}

// Languages used across experiments. Connectivity and the structural
// predicates below are decidable in (deterministic) logarithmic space
// [Reingold 2005 for undirected connectivity]; Hamiltonian path fits
// linear space by enumerating permutations with an O(n log n)-bit
// counter (time-unbounded, which the model permits).

// Connected is the language of connected graphs. G(m, 1/2) graphs are
// almost surely connected, so the universal constructor's expected
// number of retries is O(1) (Remark 1).
func Connected() GraphLanguage {
	return GraphLanguage{
		Name:   "connected",
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.Connected() },
	}
}

// EvenEdges is the language of graphs with an even number of edges;
// cross-validated against ParityMachine on adjacency encodings.
func EvenEdges() GraphLanguage {
	return GraphLanguage{
		Name:   "even-edges",
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.M()%2 == 0 },
	}
}

// HasEdge is the language of graphs with at least one edge;
// cross-validated against ContainsOneMachine.
func HasEdge() GraphLanguage {
	return GraphLanguage{
		Name:   "has-edge",
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.M() > 0 },
	}
}

// CompleteGraph is the language of complete graphs; cross-validated
// against AllOnesMachine.
func CompleteGraph() GraphLanguage {
	return GraphLanguage{
		Name:   "complete",
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.M() == g.N()*(g.N()-1)/2 },
	}
}

// TriangleFree is the language of triangle-free graphs.
func TriangleFree() GraphLanguage {
	return GraphLanguage{
		Name:   "triangle-free",
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.IsTriangleFree() },
	}
}

// MaxDegreeAtMost is the language of graphs with maximum degree ≤ d.
func MaxDegreeAtMost(d int) GraphLanguage {
	return GraphLanguage{
		Name:   fmt.Sprintf("max-degree≤%d", d),
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.MaxDegree() <= d },
	}
}

// HamiltonianPath is the language of graphs containing a Hamiltonian
// path — the paper's second Remark 1 example (almost sure in
// G(n, 1/2)). The decider backtracks in O(n) extra space.
func HamiltonianPath() GraphLanguage {
	return GraphLanguage{
		Name:   "hamiltonian-path",
		Space:  LinearSpace,
		Decide: hasHamiltonianPath,
	}
}

func hasHamiltonianPath(g *graph.Graph) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	used := make([]bool, n)
	var extend func(u, placed int) bool
	extend = func(u, placed int) bool {
		if placed == n {
			return true
		}
		for _, v := range g.Neighbors(u) {
			if !used[v] {
				used[v] = true
				if extend(v, placed+1) {
					return true
				}
				used[v] = false
			}
		}
		return false
	}
	for s := 0; s < n; s++ {
		used[s] = true
		if extend(s, 1) {
			return true
		}
		used[s] = false
	}
	return false
}

// SpanningLineGraphs is the language of graphs that are spanning
// lines — used to demonstrate that the universal constructor can
// (inefficiently) build the paper's flagship network.
func SpanningLineGraphs() GraphLanguage {
	return GraphLanguage{
		Name:   "spanning-line",
		Space:  LogSpace,
		Decide: func(g *graph.Graph) bool { return g.IsSpanningLine() },
	}
}
