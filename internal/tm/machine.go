// Package tm provides the Turing-machine substrate for the paper's
// universality results (Section 6): a deterministic single-tape TM
// engine with step and space accounting, a library of concrete
// machines over adjacency-matrix bit inputs, and space-accounted graph
// language deciders representing the DGS(·) classes.
package tm

import (
	"errors"
	"fmt"
)

// Move is a head movement.
type Move int8

// Head movements.
const (
	Left  Move = -1
	Stay  Move = 0
	Right Move = 1
)

// Special machine states. User states are non-negative.
const (
	Accept = -1
	Reject = -2
)

// Blank is the tape blank symbol.
const Blank byte = 0xFF

// Transition is one δ entry of a deterministic TM.
type Transition struct {
	Next  int
	Write byte
	Move  Move
}

// Machine is a deterministic single-tape Turing machine. States are
// integers in [0, States); Accept/Reject are the halting pseudo-states.
type Machine struct {
	Name   string
	States int
	Start  int
	// Delta maps (state, symbol) to a transition. Missing entries
	// reject.
	Delta map[Key]Transition
}

// Key indexes Delta.
type Key struct {
	State  int
	Symbol byte
}

// Result reports a halted run.
type Result struct {
	Accepted bool
	Steps    int64
	// Cells is the number of distinct tape cells visited (the space
	// usage in the DGS sense, input included).
	Cells int
}

// ErrStepLimit and ErrSpaceLimit report resource exhaustion.
var (
	ErrStepLimit  = errors.New("tm: step limit exceeded")
	ErrSpaceLimit = errors.New("tm: space limit exceeded")
)

// Validate checks structural well-formedness.
func (m *Machine) Validate() error {
	if m.States <= 0 {
		return errors.New("tm: machine needs at least one state")
	}
	if m.Start < 0 || m.Start >= m.States {
		return fmt.Errorf("tm: start state %d out of range", m.Start)
	}
	for k, t := range m.Delta {
		if k.State < 0 || k.State >= m.States {
			return fmt.Errorf("tm: transition from out-of-range state %d", k.State)
		}
		if t.Next != Accept && t.Next != Reject && (t.Next < 0 || t.Next >= m.States) {
			return fmt.Errorf("tm: transition to out-of-range state %d", t.Next)
		}
		if t.Move < Left || t.Move > Right {
			return fmt.Errorf("tm: invalid move %d", t.Move)
		}
	}
	return nil
}

// Run executes the machine on the input (cell i holds input[i]; all
// other cells Blank), halting on Accept/Reject or when a resource
// limit is hit. maxSteps ≤ 0 means 10^8; maxCells ≤ 0 means unlimited.
func (m *Machine) Run(input []byte, maxSteps int64, maxCells int) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if maxSteps <= 0 {
		maxSteps = 100_000_000
	}
	tape := newTape(input)
	state := m.Start
	pos := 0
	var res Result
	for res.Steps < maxSteps {
		if state == Accept || state == Reject {
			res.Accepted = state == Accept
			res.Cells = tape.cellsVisited()
			return res, nil
		}
		t, ok := m.Delta[Key{State: state, Symbol: tape.read(pos)}]
		if !ok {
			res.Accepted = false
			res.Cells = tape.cellsVisited()
			return res, nil
		}
		tape.write(pos, t.Write)
		pos += int(t.Move)
		tape.touch(pos)
		if maxCells > 0 && tape.cellsVisited() > maxCells {
			return Result{}, ErrSpaceLimit
		}
		state = t.Next
		res.Steps++
	}
	return Result{}, ErrStepLimit
}

// tape is a bidirectional tape with visit accounting.
type tape struct {
	right   []byte // cells 0, 1, 2, …
	left    []byte // cells −1, −2, …
	minSeen int
	maxSeen int
}

func newTape(input []byte) *tape {
	t := &tape{right: make([]byte, len(input))}
	copy(t.right, input)
	return t
}

func (t *tape) read(pos int) byte {
	switch {
	case pos >= 0:
		if pos < len(t.right) {
			return t.right[pos]
		}
	default:
		if i := -pos - 1; i < len(t.left) {
			return t.left[i]
		}
	}
	return Blank
}

func (t *tape) write(pos int, b byte) {
	if pos >= 0 {
		for pos >= len(t.right) {
			t.right = append(t.right, Blank)
		}
		t.right[pos] = b
		return
	}
	i := -pos - 1
	for i >= len(t.left) {
		t.left = append(t.left, Blank)
	}
	t.left[i] = b
}

func (t *tape) touch(pos int) {
	if pos < t.minSeen {
		t.minSeen = pos
	}
	if pos > t.maxSeen {
		t.maxSeen = pos
	}
}

func (t *tape) cellsVisited() int {
	return t.maxSeen - t.minSeen + 1
}
