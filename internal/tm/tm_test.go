package tm

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mustRun(t *testing.T, m *Machine, input []byte) Result {
	t.Helper()
	res, err := m.Run(input, 0, 0)
	if err != nil {
		t.Fatalf("%s on %v: %v", m.Name, input, err)
	}
	return res
}

func TestParityMachine(t *testing.T) {
	t.Parallel()
	m := ParityMachine()
	cases := []struct {
		input []byte
		want  bool
	}{
		{nil, true},
		{[]byte{0}, true},
		{[]byte{1}, false},
		{[]byte{1, 1}, true},
		{[]byte{1, 0, 1, 1}, false},
		{[]byte{1, 1, 0, 0, 1, 1}, true},
	}
	for _, tc := range cases {
		if got := mustRun(t, m, tc.input).Accepted; got != tc.want {
			t.Fatalf("parity(%v) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestContainsOneMachine(t *testing.T) {
	t.Parallel()
	m := ContainsOneMachine()
	if mustRun(t, m, []byte{0, 0, 0}).Accepted {
		t.Fatal("all-zero accepted")
	}
	if !mustRun(t, m, []byte{0, 0, 1}).Accepted {
		t.Fatal("bit not found")
	}
	if mustRun(t, m, nil).Accepted {
		t.Fatal("empty input accepted")
	}
}

func TestAllOnesMachine(t *testing.T) {
	t.Parallel()
	m := AllOnesMachine()
	if !mustRun(t, m, []byte{1, 1, 1}).Accepted {
		t.Fatal("all-ones rejected")
	}
	if mustRun(t, m, []byte{1, 0, 1}).Accepted {
		t.Fatal("zero not caught")
	}
	if !mustRun(t, m, nil).Accepted {
		t.Fatal("empty input rejected (vacuously complete)")
	}
}

func TestEqualBlocksMachine(t *testing.T) {
	t.Parallel()
	m := EqualBlocksMachine()
	accept := [][]byte{nil, {0, 1}, {0, 0, 1, 1}, {0, 0, 0, 1, 1, 1}}
	reject := [][]byte{{0}, {1}, {1, 0}, {0, 0, 1}, {0, 1, 1}, {0, 1, 0, 1}}
	for _, in := range accept {
		if !mustRun(t, m, in).Accepted {
			t.Fatalf("0^k1^k input %v rejected", in)
		}
	}
	for _, in := range reject {
		if mustRun(t, m, in).Accepted {
			t.Fatalf("input %v accepted", in)
		}
	}
}

func TestEqualBlocksUsesQuadraticTime(t *testing.T) {
	t.Parallel()
	m := EqualBlocksMachine()
	small := mustRun(t, m, blocks(4))
	large := mustRun(t, m, blocks(16))
	if large.Steps < 8*small.Steps {
		t.Fatalf("expected superlinear time: %d vs %d steps", small.Steps, large.Steps)
	}
	if large.Cells < 32 {
		t.Fatalf("space accounting too small: %d cells", large.Cells)
	}
}

func blocks(k int) []byte {
	in := make([]byte, 2*k)
	for i := k; i < 2*k; i++ {
		in[i] = 1
	}
	return in
}

func TestStepLimit(t *testing.T) {
	t.Parallel()
	// A deliberate infinite loop.
	loop := &Machine{
		Name:   "loop",
		States: 1,
		Start:  0,
		Delta: map[Key]Transition{
			{0, Blank}: {Next: 0, Write: Blank, Move: Stay},
		},
	}
	_, err := loop.Run(nil, 100, 0)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("got %v, want ErrStepLimit", err)
	}
}

func TestSpaceLimit(t *testing.T) {
	t.Parallel()
	runner := &Machine{
		Name:   "runner",
		States: 1,
		Start:  0,
		Delta: map[Key]Transition{
			{0, Blank}: {Next: 0, Write: 1, Move: Right},
		},
	}
	_, err := runner.Run(nil, 0, 10)
	if !errors.Is(err, ErrSpaceLimit) {
		t.Fatalf("got %v, want ErrSpaceLimit", err)
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	bad := []Machine{
		{Name: "no states", States: 0},
		{Name: "bad start", States: 2, Start: 5},
		{Name: "bad source", States: 1, Delta: map[Key]Transition{{7, 0}: {Next: 0}}},
		{Name: "bad target", States: 1, Delta: map[Key]Transition{{0, 0}: {Next: 9}}},
		{Name: "bad move", States: 1, Delta: map[Key]Transition{{0, 0}: {Next: 0, Move: 3}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Fatalf("machine %q validated", bad[i].Name)
		}
	}
	if err := ParityMachine().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingTransitionRejects(t *testing.T) {
	t.Parallel()
	m := &Machine{
		Name:   "partial",
		States: 1,
		Start:  0,
		Delta:  map[Key]Transition{{0, 0}: {Next: Accept}},
	}
	res, err := m.Run([]byte{1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("missing transition accepted")
	}
}

func TestTapeLeftExtension(t *testing.T) {
	t.Parallel()
	// Write at 0, step into negative tape, write there, and read the
	// original cell back — exercising the left extension.
	m := &Machine{
		Name:   "left-walker",
		States: 2,
		Start:  0,
		Delta: map[Key]Transition{
			{0, Blank}: {Next: 1, Write: 1, Move: Left},
			{1, Blank}: {Next: 1, Write: 1, Move: Right},
			{1, 1}:     {Next: Accept, Write: 1, Move: Stay},
		},
	}
	res, err := m.Run(nil, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("left-walker rejected")
	}
	if res.Cells < 2 {
		t.Fatalf("space accounting missed the left cell: %d", res.Cells)
	}
}

// TestMachinesAgreeWithDeciders is the cross-validation property: on
// random graphs, each hand-built TM decides exactly the same language
// as its Go decider over adjacency encodings.
func TestMachinesAgreeWithDeciders(t *testing.T) {
	t.Parallel()
	pairs := []struct {
		machine *Machine
		lang    GraphLanguage
	}{
		{ParityMachine(), EvenEdges()},
		{ContainsOneMachine(), HasEdge()},
		{AllOnesMachine(), CompleteGraph()},
	}
	for _, pair := range pairs {
		pair := pair
		t.Run(pair.machine.Name, func(t *testing.T) {
			t.Parallel()
			f := func(seed uint64) bool {
				rng := rand.New(rand.NewPCG(seed, 3))
				g := graph.Gnp(2+int(seed%10), 0.5, rng)
				res, err := pair.machine.Run(g.EncodeAdjacency(), 0, 0)
				if err != nil {
					return false
				}
				return res.Accepted == pair.lang.Decide(g)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGraphLanguages(t *testing.T) {
	t.Parallel()
	if !Connected().Decide(graph.Ring(5)) || Connected().Decide(graph.New(3)) {
		t.Fatal("connected decider wrong")
	}
	if !TriangleFree().Decide(graph.Ring(4)) || TriangleFree().Decide(graph.Complete(3)) {
		t.Fatal("triangle-free decider wrong")
	}
	if !MaxDegreeAtMost(2).Decide(graph.Ring(6)) || MaxDegreeAtMost(2).Decide(graph.Star(5)) {
		t.Fatal("degree decider wrong")
	}
	if !SpanningLineGraphs().Decide(graph.Line(4)) || SpanningLineGraphs().Decide(graph.Ring(4)) {
		t.Fatal("spanning-line decider wrong")
	}
}

func TestHamiltonianPath(t *testing.T) {
	t.Parallel()
	h := HamiltonianPath()
	if !h.Decide(graph.Line(6)) || !h.Decide(graph.Ring(6)) || !h.Decide(graph.Complete(5)) {
		t.Fatal("hamiltonian graphs rejected")
	}
	if !h.Decide(graph.New(1)) || !h.Decide(graph.New(0)) {
		t.Fatal("trivial graphs rejected")
	}
	if h.Decide(graph.Star(5)) {
		t.Fatal("star of 5 accepted (no hamiltonian path)")
	}
	if h.Decide(graph.New(3)) {
		t.Fatal("edgeless graph accepted")
	}
}

func TestSpaceClassString(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		class SpaceClass
		want  string
	}{
		{LogSpace, "DGS(O(log n))"},
		{LinearSpace, "DGS(O(n))"},
		{QuadraticSpace, "DGS(O(n²))"},
	} {
		if got := tc.class.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
	if SpaceClass(42).String() == "" {
		t.Fatal("unknown class renders empty")
	}
}
