package tm

// Concrete hand-built machines over bit-string inputs (the adjacency
// encodings of Section 6). They cross-validate the Go deciders: for
// every graph, machine and decider must agree.

// ParityMachine accepts bit strings with an even number of 1s —
// deciding the graph language "even number of edges" on adjacency
// encodings. 2 states, O(1) space beyond the input scan.
func ParityMachine() *Machine {
	const (
		even = 0
		odd  = 1
	)
	return &Machine{
		Name:   "even-parity",
		States: 2,
		Start:  even,
		Delta: map[Key]Transition{
			{even, 0}:     {Next: even, Write: 0, Move: Right},
			{even, 1}:     {Next: odd, Write: 1, Move: Right},
			{odd, 0}:      {Next: odd, Write: 0, Move: Right},
			{odd, 1}:      {Next: even, Write: 1, Move: Right},
			{even, Blank}: {Next: Accept, Write: Blank, Move: Stay},
			{odd, Blank}:  {Next: Reject, Write: Blank, Move: Stay},
		},
	}
}

// ContainsOneMachine accepts bit strings containing at least one 1 —
// the graph language "has at least one edge".
func ContainsOneMachine() *Machine {
	const scan = 0
	return &Machine{
		Name:   "contains-one",
		States: 1,
		Start:  scan,
		Delta: map[Key]Transition{
			{scan, 0}:     {Next: scan, Write: 0, Move: Right},
			{scan, 1}:     {Next: Accept, Write: 1, Move: Stay},
			{scan, Blank}: {Next: Reject, Write: Blank, Move: Stay},
		},
	}
}

// AllOnesMachine accepts bit strings of all 1s — the graph language
// "complete graph" on adjacency encodings.
func AllOnesMachine() *Machine {
	const scan = 0
	return &Machine{
		Name:   "all-ones",
		States: 1,
		Start:  scan,
		Delta: map[Key]Transition{
			{scan, 1}:     {Next: scan, Write: 1, Move: Right},
			{scan, 0}:     {Next: Reject, Write: 0, Move: Stay},
			{scan, Blank}: {Next: Accept, Write: Blank, Move: Stay},
		},
	}
}

// EqualBlocksMachine accepts strings of the form 0^k 1^k (k ≥ 0) using
// the classic mark-and-bounce construction — exercising left moves,
// rewriting, and Θ(n²) time on Θ(n) space. Symbols: 0, 1; marker 2.
func EqualBlocksMachine() *Machine {
	const (
		start     = 0 // at leftmost unmarked cell
		seekRight = 1 // carrying a marked 0, looking for the last 1
		atEnd     = 2 // at first blank/marker after the 1-block
		seekLeft  = 3 // returning to the leftmost unmarked cell
		verify    = 4 // all cells marked?
	)
	return &Machine{
		Name:   "equal-blocks",
		States: 5,
		Start:  start,
		Delta: map[Key]Transition{
			// Mark the leading 0 and run right.
			{start, 0}:     {Next: seekRight, Write: 2, Move: Right},
			{start, 2}:     {Next: verify, Write: 2, Move: Right},
			{start, Blank}: {Next: Accept, Write: Blank, Move: Stay},
			{start, 1}:     {Next: Reject, Write: 1, Move: Stay},

			{seekRight, 0}:     {Next: seekRight, Write: 0, Move: Right},
			{seekRight, 1}:     {Next: seekRight, Write: 1, Move: Right},
			{seekRight, 2}:     {Next: atEnd, Write: 2, Move: Left},
			{seekRight, Blank}: {Next: atEnd, Write: Blank, Move: Left},

			// Mark the trailing 1 and run left.
			{atEnd, 1}: {Next: seekLeft, Write: 2, Move: Left},
			{atEnd, 0}: {Next: Reject, Write: 0, Move: Stay},
			{atEnd, 2}: {Next: Reject, Write: 2, Move: Stay},

			{seekLeft, 0}: {Next: seekLeft, Write: 0, Move: Left},
			{seekLeft, 1}: {Next: seekLeft, Write: 1, Move: Left},
			{seekLeft, 2}: {Next: start, Write: 2, Move: Right},

			{verify, 2}:     {Next: verify, Write: 2, Move: Right},
			{verify, Blank}: {Next: Accept, Write: Blank, Move: Stay},
			{verify, 0}:     {Next: Reject, Write: 0, Move: Stay},
			{verify, 1}:     {Next: Reject, Write: 1, Move: Stay},
		},
	}
}
