package campaign

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// resumePoints builds a two-point grid pinned to one engine; each call
// returns a fresh slice so prepare()'s in-place resolution never leaks
// between Executes.
func resumePoints(eng core.Engine, metric Metric) []Point {
	cc := protocols.CycleCover()
	return []Point{
		{Protocol: "cycle-cover", N: 14, Trials: 10, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, Engine: eng, Metric: metric},
		{Protocol: "cycle-cover", N: 18, Trials: 7, BaseSeed: 5,
			Proto: cc.Proto, Detector: cc.Detector, Engine: eng, Metric: metric},
	}
}

// TestResumeBitIdentical is the tentpole acceptance: interrupt a
// checkpointed campaign mid-flight, resume it in a fresh Execute, and
// the merged outcome must be bit-identical to an uninterrupted run —
// for every engine.
func TestResumeBitIdentical(t *testing.T) {
	t.Parallel()
	for _, eng := range []core.Engine{core.EngineBaseline, core.EngineFast, core.EngineSparse, core.EngineBatch} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			base := Options{Workers: 3, KeepRuns: true, ShardTrials: 3}
			ref, err := Execute(context.Background(), resumePoints(eng, nil), base)
			if err != nil {
				t.Fatal(err)
			}

			ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			interrupted := base
			interrupted.Checkpoint = ckpt
			interrupted.CheckpointEvery = time.Nanosecond // flush every shard
			var folded atomic.Int64
			interrupted.OnRun = func(RunRecord) {
				if folded.Add(1) == 5 {
					cancel()
				}
			}
			if _, err := Execute(ctx, resumePoints(eng, nil), interrupted); err != context.Canceled {
				t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
			}
			if _, err := os.Stat(ckpt); err != nil {
				t.Fatalf("no checkpoint after interruption: %v", err)
			}

			resumed := base
			resumed.Checkpoint = ckpt
			resumed.Resume = true
			var order []int
			resumed.OnRun = func(rec RunRecord) { order = append(order, rec.Point*100+rec.Trial) }
			got, err := Execute(context.Background(), resumePoints(eng, nil), resumed)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(got.Aggregates, ref.Aggregates) {
				t.Fatalf("resumed aggregates diverge:\n%+v\nvs uninterrupted:\n%+v", got.Aggregates, ref.Aggregates)
			}
			if !reflect.DeepEqual(stripDurations(got.Runs), stripDurations(ref.Runs)) {
				t.Fatal("resumed raw runs diverge from uninterrupted run")
			}
			// Replayed and live records interleave into one global order.
			if len(order) != len(ref.Runs) {
				t.Fatalf("OnRun fired %d times, want %d", len(order), len(ref.Runs))
			}
			for i := 1; i < len(order); i++ {
				if order[i] <= order[i-1] {
					t.Fatalf("resumed OnRun out of global order: %v", order)
				}
			}
			// The resumed process flushed a complete checkpoint: a second
			// resume replays everything and runs nothing.
			_, done, err := ReadCheckpoint(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			shards := planShards(resumePoints(eng, nil), 3)
			if len(done) != len(shards) {
				t.Fatalf("final checkpoint holds %d shards, want %d", len(done), len(shards))
			}
		})
	}
}

// TestResumeSkipsCompletedShards pins the "restart skips finished
// work" half of the contract: the resumed process must execute exactly
// the trials missing from the checkpoint.
func TestResumeSkipsCompletedShards(t *testing.T) {
	t.Parallel()
	var live atomic.Int64
	counting := func(res core.Result, _ int) float64 {
		live.Add(1)
		return float64(res.ConvergenceTime)
	}
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var folded atomic.Int64
	opts := Options{Workers: 2, ShardTrials: 2, Checkpoint: ckpt, CheckpointEvery: time.Nanosecond,
		OnRun: func(RunRecord) {
			if folded.Add(1) == 6 {
				cancel()
			}
		}}
	if _, err := Execute(ctx, resumePoints(core.EngineAuto, counting), opts); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, done, err := ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := 0
	for _, sr := range done {
		checkpointed += sr.Trials
	}

	live.Store(0)
	out, err := Execute(context.Background(), resumePoints(core.EngineAuto, counting),
		Options{Workers: 2, ShardTrials: 2, Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(live.Load()), 17-checkpointed; got != want {
		t.Fatalf("resumed process executed %d trials, want %d (checkpoint held %d of 17)", got, want, checkpointed)
	}
	for _, agg := range out.Aggregates {
		if agg.Converged != agg.Trials || agg.Failures != 0 {
			t.Fatalf("resumed aggregate incomplete: %+v", agg)
		}
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	t.Parallel()
	_, err := Execute(context.Background(), resumePoints(core.EngineAuto, nil), Options{Resume: true})
	if err == nil || !strings.Contains(err.Error(), "Resume requires") {
		t.Fatalf("err = %v", err)
	}
}

// TestResumeRejectsMalformed feeds Execute a gallery of damaged or
// mismatched checkpoint files; every one must be a descriptive error
// before any trial runs — never a panic, never a silent merge.
func TestResumeRejectsMalformed(t *testing.T) {
	t.Parallel()
	points := func() []Point { return resumePoints(core.EngineAuto, nil) }
	opts := func(path string) Options {
		return Options{Workers: 2, ShardTrials: 3, Checkpoint: path, Resume: true}
	}

	// A valid complete checkpoint to corrupt.
	dir := t.TempDir()
	valid := filepath.Join(dir, "valid.ckpt")
	if _, err := Execute(context.Background(), points(), opts(valid)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("checkpoint only has %d lines", len(lines))
	}
	write := func(name string, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := map[string]string{
		"garbage header":   "not json\n",
		"empty file":       "",
		"truncated shard":  lines[0] + "\n" + lines[1][:len(lines[1])/2] + "\n",
		"duplicate shard":  lines[0] + "\n" + lines[1] + "\n" + lines[1] + "\n",
		"foreign schema":   strings.Replace(lines[0], `"schema":1`, `"schema":99`, 1) + "\n",
		"tampered trials":  lines[0] + "\n" + strings.Replace(lines[1], `"trials":3`, `"trials":2`, 1) + "\n",
		"tampered seed":    lines[0] + "\n" + strings.Replace(lines[1], `"first_seed":1`, `"first_seed":9`, 1) + "\n",
		"foreign campaign": strings.Replace(lines[0], `"spec_hash":"`, `"spec_hash":"ffff`, 1) + "\n",
	}
	for name, content := range cases {
		p := write(strings.ReplaceAll(name, " ", "-"), content)
		if _, err := Execute(context.Background(), points(), opts(p)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("%s: panicked: %v", name, err)
		}
	}

	// A different spec must also refuse the valid file.
	other := points()
	other[0].BaseSeed = 999
	if _, err := Execute(context.Background(), other, opts(valid)); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign spec resumed: %v", err)
	}
	// And a different shard granularity.
	o := opts(valid)
	o.ShardTrials = 4
	if _, err := Execute(context.Background(), points(), o); err == nil {
		t.Fatal("foreign shard partition resumed")
	}

	// Version gate: both sides set and different is an error; either
	// side empty is not (test binaries carry no vcs stamp).
	hdr := CheckpointHeader{Schema: checkpointSchema, SpecHash: "x", ShardTrials: 3, Shards: 1, Version: "aaa"}
	vp := filepath.Join(dir, "version.ckpt")
	if err := WriteCheckpoint(vp, hdr, nil); err != nil {
		t.Fatal(err)
	}
	want := hdr
	want.Version = "bbb"
	if _, err := loadResume(vp, want, nil, nil); err == nil || !strings.Contains(err.Error(), "build") {
		t.Fatalf("version mismatch accepted: %v", err)
	}
	want.Version = ""
	if _, err := loadResume(vp, want, nil, nil); err != nil {
		t.Fatalf("unset local version rejected: %v", err)
	}
}

// TestWriteCheckpointAtomic checks the persistence protocol's visible
// guarantees: the target directory holds exactly the checkpoint (no
// temp residue) and a rewrite replaces the content wholesale.
func TestWriteCheckpointAtomic(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	hdr := CheckpointHeader{Schema: checkpointSchema, SpecHash: "s", ShardTrials: 4, Shards: 2}
	if err := WriteCheckpoint(path, hdr, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(path, hdr, []ShardResult{{
		Shard: Shard{Index: 0, Protocol: "p", N: 4, Trials: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "c.ckpt" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory holds %v, want just c.ckpt", names)
	}
	got, done, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != hdr || len(done) != 1 {
		t.Fatalf("read back %+v with %d shards", got, len(done))
	}
}

// TestCheckpointGolden pins the on-disk NDJSON schema byte for byte.
// Regenerate with `go test ./internal/campaign -run Golden -update`
// after bumping checkpointSchema for an intentional format change.
func TestCheckpointGolden(t *testing.T) {
	t.Parallel()
	hdr := CheckpointHeader{
		Schema:      checkpointSchema,
		SpecHash:    "a3f18c09d2b745e6a3f18c09d2b745e6a3f18c09d2b745e6a3f18c09d2b745e6",
		Version:     "0123456789abcdef",
		ShardTrials: 2,
		Shards:      2,
	}
	var acc stats.Online
	acc.Add(512)
	acc.Add(768)
	sr := ShardResult{
		Shard: Shard{Index: 1, Point: 0, Protocol: "cycle-cover", N: 16, FirstTrial: 2, Trials: 2, FirstSeed: 3},
		Runs: []RunRecord{
			{Point: 0, Protocol: "cycle-cover", N: 16, Scheduler: "uniform", Trial: 2, Seed: 3,
				Engine: "fast", Converged: true, Steps: 512, ConvergenceTime: 512,
				EffectiveSteps: 100, EdgeChanges: 40, Value: 512, DurationNS: 1000},
			{Point: 0, Protocol: "cycle-cover", N: 16, Scheduler: "uniform", Trial: 3, Seed: 4,
				Engine: "fast", Converged: true, Steps: 768, ConvergenceTime: 768,
				EffectiveSteps: 150, EdgeChanges: 60, Value: 768, DurationNS: 2000, Attempts: 2},
		},
	}
	sr.Agg = Aggregate{Protocol: "cycle-cover", N: 16, Scheduler: "uniform", Trials: 2, Converged: 2,
		TotalSteps: 1280, TotalEffectiveSteps: 250}
	sr.Agg.setAcc(acc)

	path := filepath.Join(t.TempDir(), "golden.ckpt")
	if err := WriteCheckpoint(path, hdr, []ShardResult{sr}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "checkpoint.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("checkpoint schema drifted from golden file (bump checkpointSchema for intentional changes, then -update):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The golden bytes must also read back losslessly.
	rh, done, err := ReadCheckpoint(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if rh != hdr || len(done) != 1 || !reflect.DeepEqual(done[0], sr) {
		t.Fatalf("golden round trip diverged: %+v / %+v", rh, done)
	}
}
