package campaign

// Per-trial panic isolation and retry with backoff. Every trial
// attempt runs under a recover(): a panic anywhere in the attempt —
// engine, detector, metric, initial builder — becomes a failed
// RunRecord instead of taking down the worker pool, and the worker's
// workspace (whose indexes the panic may have left half-updated) is
// discarded and replaced before it can poison a later trial. On top of
// that, RetryPolicy re-runs transiently failed trials: per-run
// timeouts (machine load) and first-time panics retry with exponential
// backoff, while deterministic failures — a repeat of the same panic
// on the same seed, budget exhaustion, plain errors, cancellation —
// are recorded immediately and never hot-loop.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// RetryPolicy governs how many times one trial may run and how long to
// wait between attempts. The zero value means a single attempt —
// exactly the pre-retry behavior.
type RetryPolicy struct {
	// MaxAttempts caps the total attempts per trial; values ≤ 1 mean
	// one attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry, doubling each
	// further retry; ≤ 0 means 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay; ≤ 0 means 5s.
	MaxBackoff time.Duration
	// Deadline, when positive, caps one trial's total wall-clock time
	// across all attempts and backoffs; once exceeded, the last
	// attempt's record stands.
	Deadline time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before retry number `retry` (0-based):
// BaseBackoff doubled per retry, capped at MaxBackoff.
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// runTrial executes one trial under the retry policy and never returns
// an unrecoverable error: failures (including panics) are encoded on
// the record so the collector can count and report them
// deterministically. wsp points at the calling worker's workspace
// slot; a panicking attempt replaces the slot's workspace with a fresh
// one (see runAttempt), so a poisoned workspace is never reused — by a
// retry or by any later trial of the worker.
func runTrial(ctx context.Context, pt *Point, pointIdx, trial int, timeout time.Duration, retry RetryPolicy, wsp **core.Workspace) RunRecord {
	var trialDeadline time.Time
	if retry.Deadline > 0 {
		trialDeadline = time.Now().Add(retry.Deadline)
	}
	maxAttempts := retry.attempts()
	var prevPanic string
	for attempt := 1; ; attempt++ {
		rec, timedOut := runAttempt(ctx, pt, pointIdx, trial, timeout, wsp)
		if attempt > 1 {
			// Only retried records carry the attempt count, so
			// steady-state records stay byte-identical with and without a
			// policy attached.
			rec.Attempts = attempt
		}
		retryable := false
		switch {
		case rec.Panicked:
			// A panic on the same seed with the same message is
			// deterministic: record it and move on rather than hot-loop.
			retryable = rec.Err != prevPanic
			prevPanic = rec.Err
		case rec.Err != "":
			// Plain errors (initial builder, engine validation) are
			// deterministic in the trial's inputs.
		case rec.Stopped:
			// A per-run timeout is transient — the same seed can finish
			// on a less-loaded machine. Cancellation (and a caller Stop
			// hook) is terminal.
			retryable = timedOut
		}
		if !retryable || attempt >= maxAttempts || ctx.Err() != nil {
			return rec
		}
		if !trialDeadline.IsZero() && !time.Now().Before(trialDeadline) {
			return rec
		}
		t := time.NewTimer(retry.backoff(attempt - 1))
		select {
		case <-ctx.Done():
			t.Stop()
			return rec
		case <-t.C:
		}
	}
}

// runAttempt executes a single attempt of one trial, recovering any
// panic into a failed record. timedOut reports whether a Stopped
// result was cut by the per-run timeout (retryable) rather than by
// cancellation or a caller Stop hook (terminal).
func runAttempt(ctx context.Context, pt *Point, pointIdx, trial int, timeout time.Duration, wsp **core.Workspace) (rec RunRecord, timedOut bool) {
	rec = RunRecord{
		Point:     pointIdx,
		Protocol:  pt.Protocol,
		N:         pt.N,
		Scheduler: schedulerLabel(*pt),
		Trial:     trial,
		Seed:      pt.BaseSeed + uint64(trial),
	}
	attemptStart := time.Now()
	defer func() {
		if r := recover(); r != nil {
			rec.Panicked = true
			rec.Err = fmt.Sprintf("panic: %v", r)
			rec.DurationNS = time.Since(attemptStart).Nanoseconds()
			timedOut = false
			// The panic may have unwound mid-mutation, leaving the
			// workspace's configuration and indexes inconsistent: discard
			// it so nothing downstream ever reuses poisoned state.
			if wsp != nil && *wsp != nil {
				*wsp = core.NewWorkspace()
			}
		}
	}()

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	stop := func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
		}
		if timeout > 0 && time.Now().After(deadline) {
			return true
		}
		return pt.Stop != nil && pt.Stop()
	}
	cutByTimeout := func() bool {
		return ctx.Err() == nil && timeout > 0 && !time.Now().Before(deadline)
	}

	if pt.DynProto != nil {
		rec = runDynTrial(pt, rec, stop)
		return rec, rec.Stopped && cutByTimeout()
	}

	var ws *core.Workspace
	if wsp != nil {
		ws = *wsp
	}
	opts := core.Options{
		Seed:          rec.Seed,
		Engine:        pt.Engine,
		Detector:      pt.Detector,
		MaxSteps:      pt.MaxSteps,
		CheckInterval: pt.CheckInterval,
		Observer:      pt.Observer,
		Stop:          stop,
		Workspace:     ws,
	}
	if pt.NewScheduler != nil {
		opts.Scheduler = pt.NewScheduler()
	}
	if pt.Initial != nil {
		initial, err := pt.Initial(trial)
		if err != nil {
			rec.Err = err.Error()
			return rec, false
		}
		opts.Initial = initial
	}
	if pt.Topology != nil {
		// Each trial realizes its own topology instance from the trial
		// seed, so trials sample independent graphs from the same model
		// and a record is reproducible from (spec, seed) alone.
		topo, err := pt.Topology.Realize(pt.N, rec.Seed)
		if err != nil {
			rec.Err = err.Error()
			return rec, false
		}
		opts.Topology = topo
		rec.Topology = pt.Topology.Label()
	}
	proto := pt.Proto
	var injection *scenario.Injection
	if pt.prepared != nil {
		proto = pt.prepared.Proto
		injection = pt.prepared.NewInjection(rec.Seed)
		opts.Injector = injection
		rec.Faults = pt.Faults.String()
	}

	start := time.Now()
	res, err := core.Run(proto, pt.N, opts)
	rec.DurationNS = time.Since(start).Nanoseconds()
	if injection != nil {
		counts := injection.Counts()
		rec.FaultCrashes = counts.Crashes
		rec.FaultEdgeDeletions = counts.EdgeDeletions
		rec.FaultResets = counts.Resets
	}
	if err != nil {
		rec.Err = err.Error()
		return rec, false
	}
	rec.Engine = res.Engine.String()
	rec.Converged = res.Converged
	rec.Stopped = res.Stopped
	rec.Steps = res.Steps
	rec.ConvergenceTime = res.ConvergenceTime
	rec.EffectiveSteps = res.EffectiveSteps
	rec.EdgeChanges = res.EdgeChanges
	rec.SkippedSteps = res.Metrics.SkippedSteps
	rec.SkipBatches = res.Metrics.SkipBatches
	rec.SampleRejections = res.Metrics.SampleRejections
	rec.SampleFallbacks = res.Metrics.SampleFallbacks
	rec.BucketDraws = res.Metrics.BucketDraws
	rec.ExactFallbackLandings = res.Metrics.ExactFallbackLandings
	rec.CollapsedLandings = res.Metrics.CollapsedLandings
	rec.FastForwardEpochs = res.Metrics.FastForwardEpochs
	metric := pt.Metric
	if metric == nil {
		metric = MetricConvergenceTime
	}
	rec.Value = metric(res, pt.N)
	return rec, rec.Stopped && cutByTimeout()
}
