package campaign

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestProgressStreaming checks the OnProgress contract: periodic
// records plus exactly one final record, monotone non-decreasing done
// counts, and a final record that reflects the whole campaign.
func TestProgressStreaming(t *testing.T) {
	t.Parallel()
	points := testPoints(t, 6)
	total := 0
	for _, pt := range points {
		total += pt.Trials
	}
	var mu sync.Mutex
	var records []Progress
	out, err := Execute(context.Background(), points, Options{
		Workers:          2,
		ProgressInterval: time.Millisecond,
		OnProgress: func(p Progress) {
			mu.Lock()
			records = append(records, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(records) == 0 {
		t.Fatal("no progress records")
	}
	finals := 0
	prev := 0
	for i, p := range records {
		if p.Total != total {
			t.Fatalf("record %d: total %d, want %d", i, p.Total, total)
		}
		if p.Done < prev {
			t.Fatalf("record %d: done went backwards (%d after %d)", i, p.Done, prev)
		}
		prev = p.Done
		if p.Workers != out.Workers {
			t.Fatalf("record %d: workers %d, want %d", i, p.Workers, out.Workers)
		}
		if p.Utilization < 0 {
			t.Fatalf("record %d: negative utilization %f", i, p.Utilization)
		}
		if p.Final {
			finals++
			if i != len(records)-1 {
				t.Fatalf("final record at index %d of %d", i, len(records))
			}
		}
	}
	if finals != 1 {
		t.Fatalf("%d final records, want exactly 1", finals)
	}
	last := records[len(records)-1]
	if last.Done != total {
		t.Fatalf("final record reports %d/%d trials done", last.Done, total)
	}
	if last.ElapsedNS <= 0 || last.TrialsPerSec <= 0 {
		t.Fatalf("final record has empty rate fields: %+v", last)
	}
	if last.ETANS != 0 {
		t.Fatalf("final record carries an ETA: %+v", last)
	}
}

// TestProgressDoesNotChangeResults pins that enabling progress
// streaming leaves the campaign outcome bit-identical: the counters it
// maintains are observational only.
func TestProgressDoesNotChangeResults(t *testing.T) {
	t.Parallel()
	bare, err := Execute(context.Background(), testPoints(t, 5), Options{Workers: 2, KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Execute(context.Background(), testPoints(t, 5), Options{
		Workers:          2,
		KeepRuns:         true,
		ProgressInterval: time.Millisecond,
		OnProgress:       func(Progress) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Aggregates, streamed.Aggregates) {
		t.Fatalf("aggregates diverge with progress streaming on:\nbare     %+v\nstreamed %+v",
			bare.Aggregates, streamed.Aggregates)
	}
	if !reflect.DeepEqual(stripDurations(bare.Runs), stripDurations(streamed.Runs)) {
		t.Fatal("run records diverge with progress streaming on")
	}
}
