// Package campaign is the concurrent sweep engine behind every
// measurement in this repository. A campaign is a grid of points —
// (protocol, population size, scheduler) cells, each measured over a
// seed range — that the engine fans out over a worker pool, one
// goroutine per CPU by default, streaming per-run core.Results through
// a collector into online aggregates.
//
// Trials with independent seeds are embarrassingly parallel, but
// floating-point reduction is not associative, so the collector replays
// completions in global trial order (holding out-of-order arrivals in a
// small reorder buffer) before folding them into stats.Online
// accumulators. A campaign therefore produces bit-identical aggregates
// at workers=1 and workers=N — the sequential semantics of the old
// hand-rolled trial loops, at parallel speed.
//
// The engine supports cancellation through context.Context, a per-run
// wall-clock timeout (plugged into the simulator via
// core.Options.Stop), a progress callback invoked in deterministic
// order, and JSON/CSV export of both raw runs and aggregated series
// (see export.go). Declarative specs — the JSON format accepted by
// cmd/campaign — compile to points in spec.go.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Metric extracts the measured value from a finished run. n is the
// population size of the point (for normalized metrics such as
// parallel time).
type Metric func(res core.Result, n int) float64

// Built-in metrics. MetricConvergenceTime is the paper's running time
// and the default; MetricSteps is the detection step, the right
// quantity for the Table 1 processes whose predicate flips exactly at
// convergence.
func MetricConvergenceTime(res core.Result, _ int) float64 { return float64(res.ConvergenceTime) }

// MetricSteps returns the step at which stabilization was detected.
func MetricSteps(res core.Result, _ int) float64 { return float64(res.Steps) }

// MetricEffectiveSteps returns the number of effective interactions.
func MetricEffectiveSteps(res core.Result, _ int) float64 { return float64(res.EffectiveSteps) }

// MetricEdgeChanges returns the number of edge-changing interactions.
func MetricEdgeChanges(res core.Result, _ int) float64 { return float64(res.EdgeChanges) }

// MetricParallelTime returns the footnote-5 parallel-time estimate.
func MetricParallelTime(res core.Result, n int) float64 { return res.ParallelTime(n) }

// MetricLargestComponent returns the size of the largest connected
// component of the final output graph — the nodes in Qout plus the
// active edges joining them. It is the survivability measure of fault
// campaigns: crashed nodes leave Qout, so what remains is the largest
// structure the protocol salvaged. NaN when the run carries no final
// configuration (dynamic points).
func MetricLargestComponent(res core.Result, _ int) float64 {
	largest, _ := outputComponents(res.Final)
	return largest
}

// MetricComponents returns the number of connected components of the
// final output graph (isolated output nodes count as singletons) —
// under crash faults on a line builder this is the "partition into
// smaller lines" count the fault-tolerance literature predicts.
func MetricComponents(res core.Result, _ int) float64 {
	_, count := outputComponents(res.Final)
	return count
}

// outputComponents measures the final output graph with a union-find
// over the active edges whose endpoints are both in Qout: O(n + m α).
func outputComponents(cfg *core.Config) (largest, count float64) {
	if cfg == nil {
		return math.NaN(), math.NaN()
	}
	n := cfg.N()
	p := cfg.Protocol()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	cfg.ForEachActiveEdge(func(u, v int) {
		if p.IsOutput(cfg.Node(u)) && p.IsOutput(cfg.Node(v)) {
			if ru, rv := find(u), find(v); ru != rv {
				parent[ru] = rv
			}
		}
	})
	size := make(map[int]int)
	for u := 0; u < n; u++ {
		if p.IsOutput(cfg.Node(u)) {
			size[find(u)]++
		}
	}
	maxSize := 0
	for _, s := range size {
		if s > maxSize {
			maxSize = s
		}
	}
	return float64(maxSize), float64(len(size))
}

// Point is one fully-resolved cell of a campaign grid: a protocol on a
// population size under a scheduler, measured over Trials runs with
// seeds BaseSeed, BaseSeed+1, … Specs compile to points; callers with
// in-hand protocols (internal/experiments, cmd/netsim) build them
// directly.
type Point struct {
	// Protocol, N and Scheduler label the point in records and
	// aggregates. Scheduler is informational; the factory below decides
	// the actual schedule ("" means uniform).
	Protocol  string
	N         int
	Scheduler string

	// Trials is the number of independent runs; seeds are BaseSeed+t
	// for t in [0, Trials).
	Trials   int
	BaseSeed uint64

	// Proto and Detector drive core.Run. MaxSteps and CheckInterval
	// pass through to core.Options (zero means the engine defaults).
	Proto         *core.Protocol
	Detector      core.Detector
	MaxSteps      int64
	CheckInterval int64

	// Engine selects the core execution path for this point's runs;
	// the zero value core.EngineAuto picks the fast enabled-pair-index
	// engine under the uniform scheduler and the baseline loop
	// otherwise.
	Engine core.Engine

	// Metric extracts the measured value; nil means
	// MetricConvergenceTime. MetricName, when set, labels the metric
	// for checkpoint identity (Compile fills it from the spec; direct
	// API callers may leave it empty, see SpecHash).
	Metric     Metric
	MetricName string

	// Expected is the analytic reference value for this point (0 when
	// none applies); it is copied onto the aggregate.
	Expected float64

	// Initial, when non-nil, builds the initial configuration for a
	// trial (it may return the same *core.Config every time — core.Run
	// clones it). Nil means the all-q0 configuration.
	Initial func(trial int) (*core.Config, error)

	// NewScheduler, when non-nil, is invoked once per run so stateful
	// schedulers (round-robin, permutation) are never shared across
	// goroutines. Nil means the uniform scheduler.
	NewScheduler func() core.Scheduler

	// Observer, when non-nil, receives every effective step of every
	// run of this point. Observers are shared across runs, so campaigns
	// containing observed points must execute with Workers=1 unless the
	// observer is safe for concurrent use.
	Observer core.Observer

	// Stop, when non-nil, is polled alongside the engine's own
	// cancellation and timeout checks; returning true aborts the run
	// (Stopped=true). It is called concurrently from every run of this
	// point, so it must be safe for concurrent use.
	Stop func() bool

	// Faults, when non-nil, injects the plan into every run of this
	// point: each trial mints a fresh injector seeded from its run
	// seed, so trials are independent and reproducible. Plans that
	// crash nodes run an augmented protocol (the crash sink of
	// scenario.Crashable) and therefore require the default all-q0
	// initial configuration — a caller-built Initial would belong to
	// the unaugmented protocol.
	Faults *scenario.FaultPlan

	// Topology, when non-nil, restricts every run of this point to a
	// permitted interaction graph: each trial realizes its own random
	// instance from the trial seed (core.TopologySpec.Realize), so
	// trials sample independent graphs from the same model and stay
	// reproducible. Nil means the complete graph — the classic
	// population-protocol scheduler.
	Topology *core.TopologySpec

	// IncludeUnconverged additionally folds the metric of runs that
	// exhausted their step budget into the aggregate (they still count
	// as Failures). Survivability campaigns measure the final
	// configuration at a fixed budget, where "the run kept going" is
	// data, not a measurement failure. Stopped (cancelled / timed-out)
	// runs stay excluded — their cut point is nondeterministic.
	IncludeUnconverged bool

	// DynProto, when non-nil, makes this a dynamic-protocol point
	// (the Section 6 machinery): trials execute through core.RunDyn
	// under the uniform scheduler, inheriting the campaign's
	// cancellation and per-run timeouts via the dynamic Stop hook.
	// DynStable is required; Proto, Engine, NewScheduler, Faults,
	// Initial and Observer must be unset.
	DynProto *core.DynProtocol
	// DynStable is the dynamic point's stop predicate.
	DynStable func(cfg *core.DynConfig) bool
	// DynInitial, when non-nil, builds a trial's initial configuration
	// (cloned by core.RunDyn, so returning a shared one is fine).
	DynInitial func(trial int) (*core.DynConfig, error)

	// prepared caches the fault plan resolved against Proto (possibly
	// an augmented protocol); Execute fills it during validation.
	prepared *scenario.Prepared
}

// RunRecord is the raw outcome of one trial, as streamed to the
// progress callback and retained when Options.KeepRuns is set.
type RunRecord struct {
	Point           int     `json:"point"`
	Protocol        string  `json:"protocol"`
	N               int     `json:"n"`
	Scheduler       string  `json:"scheduler"`
	Trial           int     `json:"trial"`
	Seed            uint64  `json:"seed"`
	Engine          string  `json:"engine,omitempty"`
	Converged       bool    `json:"converged"`
	Stopped         bool    `json:"stopped,omitempty"`
	Steps           int64   `json:"steps"`
	ConvergenceTime int64   `json:"convergence_time"`
	EffectiveSteps  int64   `json:"effective_steps"`
	EdgeChanges     int64   `json:"edge_changes"`
	Value           float64 `json:"value"`
	// Faults is the point's fault plan in flag syntax ("" without one);
	// the three tallies count the faults actually applied to this run.
	Faults             string `json:"faults,omitempty"`
	FaultCrashes       int64  `json:"fault_crashes,omitempty"`
	FaultEdgeDeletions int64  `json:"fault_edge_deletions,omitempty"`
	FaultResets        int64  `json:"fault_resets,omitempty"`
	// Topology is the point's interaction-topology spec in flag syntax
	// ("" for the complete graph; each trial realizes its own instance
	// from the trial seed).
	Topology string `json:"topology,omitempty"`
	// Engine telemetry from core.Result.Metrics. Only the
	// mode-invariant counters appear here — fields like wall time or
	// workspace resets would differ between allocation modes and break
	// the record-level determinism contract (fresh and workspace runs
	// produce identical records up to DurationNS).
	SkippedSteps          int64 `json:"skipped_steps,omitempty"`
	SkipBatches           int64 `json:"skip_batches,omitempty"`
	SampleRejections      int64 `json:"sample_rejections,omitempty"`
	SampleFallbacks       int64 `json:"sample_fallbacks,omitempty"`
	BucketDraws           int64 `json:"bucket_draws,omitempty"`
	ExactFallbackLandings int64 `json:"exact_fallback_landings,omitempty"`
	CollapsedLandings     int64 `json:"collapsed_landings,omitempty"`
	FastForwardEpochs     int64 `json:"fast_forward_epochs,omitempty"`
	// DurationNS is wall-clock and therefore the one nondeterministic
	// field of a record.
	DurationNS int64  `json:"duration_ns"`
	Err        string `json:"err,omitempty"`
	// Panicked marks a trial whose attempt panicked (the message is in
	// Err). Unlike plain Err records — which abort the whole campaign —
	// a panicked record only counts as a failure: the worker pool keeps
	// running and the poisoned workspace is discarded (see retry.go).
	Panicked bool `json:"panicked,omitempty"`
	// Attempts is the total attempt count behind this record; it is
	// only set (> 1) when the retry policy re-ran the trial, so
	// single-attempt records stay byte-identical with and without a
	// policy.
	Attempts int `json:"attempts,omitempty"`
}

// Aggregate is the reduced series entry for one point: summary
// statistics of the metric over converged runs, plus failure counts.
// For a fixed point list and seed range it is bit-identical regardless
// of Options.Workers — and, because the reduction is shard-structured
// (see shard.go), regardless of whether any shards were resumed from a
// checkpoint.
type Aggregate struct {
	Protocol  string `json:"protocol"`
	N         int    `json:"n"`
	Scheduler string `json:"scheduler"`
	Trials    int    `json:"trials"`
	Converged int    `json:"converged"`
	Failures  int    `json:"failures"`
	Stopped   int    `json:"stopped"`
	// Panics counts the failures that were recovered worker panics.
	Panics int     `json:"panics,omitempty"`
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Acc is the raw Welford accumulator state behind the five summary
	// fields above. Carrying it makes aggregates mergeable after the
	// fact (Merge): checkpoint shards, partial exports, and eventually
	// sweeps split across machines combine exactly instead of
	// re-deriving moments from rounded summaries.
	Acc      stats.OnlineState `json:"acc"`
	Expected float64           `json:"expected,omitempty"`
	// Faults labels the point's fault plan in flag syntax ("" without
	// one), so fault sweeps stay distinguishable in exported series.
	Faults string `json:"faults,omitempty"`
	// Topology labels the point's interaction topology in flag syntax
	// ("" for the complete graph), so sparsity sweeps stay
	// distinguishable in exported series.
	Topology string `json:"topology,omitempty"`
	// Deterministic integer totals over this point's non-error runs
	// (converged or not): scheduler steps, effective steps, geometric
	// skips, and faults applied. Integer sums are order-independent, so
	// these stay bit-identical regardless of Workers, exactly like the
	// metric statistics above.
	TotalSteps          int64 `json:"total_steps,omitempty"`
	TotalEffectiveSteps int64 `json:"total_effective_steps,omitempty"`
	TotalSkippedSteps   int64 `json:"total_skipped_steps,omitempty"`
	FaultsApplied       int64 `json:"faults_applied,omitempty"`
}

// Options configures campaign execution.
type Options struct {
	// Workers is the number of concurrent runs; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Timeout, when positive, caps each run's wall-clock time; runs
	// over it abort with Stopped=true and count as failures.
	Timeout time.Duration
	// KeepRuns retains every RunRecord (in deterministic global order)
	// on the returned Outcome.
	KeepRuns bool
	// OnRun, when non-nil, receives each record as it is folded into
	// the aggregates — in deterministic global order, so a record may
	// be delivered a little after its run finished.
	OnRun func(RunRecord)
	// FreshAlloc disables the per-worker run workspaces, making every
	// trial allocate and initialize its simulation state from scratch.
	// By default each worker goroutine owns one core.Workspace reused
	// across its whole job stream, which makes steady-state trials
	// allocation-free; per-trial results are bit-identical either way
	// (the workspace contract), so this knob exists only to measure the
	// workspace win (BenchmarkCampaignThroughput) and to simplify
	// allocation debugging.
	FreshAlloc bool
	// OnProgress, when non-nil, receives periodic Progress records while
	// the campaign runs — every ProgressInterval from a dedicated
	// goroutine (so it must be safe to call concurrently with OnRun),
	// plus one Final record from Execute's goroutine after the last run
	// completes. With OnProgress nil the worker pool maintains no
	// progress counters at all.
	OnProgress func(Progress)
	// ProgressInterval is the period of OnProgress records; ≤ 0 means
	// one second.
	ProgressInterval time.Duration
	// ShardTrials overrides the trial-partition granularity
	// (DefaultShardTrials when ≤ 0). The partition is part of the
	// reduction topology — multi-shard aggregates depend on it in their
	// last floating-point bits — so checkpoints record it and Resume
	// validates the match.
	ShardTrials int
	// Checkpoint, when non-empty, is the path of the campaign's
	// crash-safety file: completed shards are persisted there
	// atomically (write-temp + fsync + rename, versioned NDJSON) every
	// CheckpointEvery and once more before Execute returns — including
	// when the campaign is cancelled.
	Checkpoint string
	// CheckpointEvery is the persistence interval; ≤ 0 means
	// DefaultCheckpointEvery.
	CheckpointEvery time.Duration
	// Resume loads the Checkpoint file when it exists (a missing file
	// is a fresh start) and skips its completed shards: their records
	// replay from the file — through OnRun, KeepRuns and the progress
	// counters — and their aggregates merge exactly as live shards
	// would, so a resumed campaign's Outcome is bit-identical to an
	// uninterrupted run's for seeded trials. (Stopped records cut by a
	// wall-clock Timeout are the one nondeterministic outcome a
	// checkpoint can pin that a rerun might not reproduce.) The file
	// must match this campaign's spec hash, schema, shard partition and
	// build version; mismatches are errors, reported before any trial
	// runs and before the file could be overwritten.
	Resume bool
	// Retry is the per-trial retry policy; the zero value runs every
	// trial exactly once.
	Retry RetryPolicy
}

// Progress is a point-in-time view of a running campaign, streamed to
// Options.OnProgress (and, through cmd/campaign's -progress flags, to
// stderr or an NDJSON file).
type Progress struct {
	// Done of Total trials have completed.
	Done  int `json:"done"`
	Total int `json:"total"`
	// ElapsedNS is the campaign wall-clock time so far.
	ElapsedNS int64 `json:"elapsed_ns"`
	// TrialsPerSec is the overall completion rate since the campaign
	// started.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// ETANS estimates the remaining wall-clock time from the overall
	// rate; 0 when no trial has finished yet or the campaign is done.
	ETANS int64 `json:"eta_ns,omitempty"`
	// Workers is the pool size; Utilization the fraction of the pool's
	// wall-clock capacity spent inside runs (busy time divided by
	// elapsed × workers).
	Workers     int     `json:"workers"`
	Utilization float64 `json:"utilization"`
	// Final marks the one record emitted after the last run completes.
	Final bool `json:"final,omitempty"`
}

// progressSnapshot assembles a Progress record from the pool's atomic
// counters.
func progressSnapshot(start time.Time, total, workers int, done, busy *atomic.Int64, final bool) Progress {
	d := int(done.Load())
	elapsed := time.Since(start).Nanoseconds()
	p := Progress{Done: d, Total: total, ElapsedNS: elapsed, Workers: workers, Final: final}
	if elapsed > 0 {
		p.TrialsPerSec = float64(d) * 1e9 / float64(elapsed)
		p.Utilization = float64(busy.Load()) / (float64(elapsed) * float64(workers))
	}
	if d > 0 && d < total && p.TrialsPerSec > 0 {
		p.ETANS = int64(float64(total-d) / p.TrialsPerSec * 1e9)
	}
	return p
}

// Outcome is the result of executing a campaign.
type Outcome struct {
	// Aggregates has one entry per point, in point order.
	Aggregates []Aggregate
	// Runs holds the raw records in global order when Options.KeepRuns
	// was set.
	Runs []RunRecord
	// Workers is the worker count actually used; Elapsed the campaign
	// wall-clock time.
	Workers int
	Elapsed time.Duration
}

type taggedRecord struct {
	gid int
	rec RunRecord
}

// Execute runs every trial of every point on a worker pool and reduces
// the results in deterministic order. It returns early with ctx's
// error when cancelled and with the first run error otherwise; both
// cancel all in-flight runs via core.Options.Stop. Recovered trial
// panics are not errors: they become failed records and the sweep
// continues (see retry.go). Even on early return the partial Outcome
// is populated with everything reduced so far, and a configured
// checkpoint receives a final flush — crash-safe campaigns resume from
// it via Options.Resume.
func Execute(ctx context.Context, points []Point, opts Options) (Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := prepare(points); err != nil {
		return Outcome{}, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The canonical shard partition: consecutive trial ranges in point
	// order. Global trial ids number the trials in that same order —
	// point p's trial t has gid offsets[p]+t, and shard s covers
	// [shardStart[s], shardStart[s]+s.Trials). The collector folds
	// records in increasing gid order, which fixes the reduction order
	// independently of scheduling.
	shardTrials := opts.ShardTrials
	if shardTrials <= 0 {
		shardTrials = DefaultShardTrials
	}
	shards := planShards(points, shardTrials)
	shardStart := make([]int, len(shards))
	total := 0
	for i, s := range shards {
		shardStart[i] = total
		total += s.Trials
	}
	offsets := make([]int, len(points))
	for i, gid := 0, 0; i < len(points); i++ {
		offsets[i] = gid
		gid += points[i].Trials
	}
	if workers > total {
		workers = total
	}

	// Checkpoint/resume plumbing. Resume validation happens before any
	// trial runs — and before the file could be overwritten — so a
	// mismatched or malformed checkpoint is a clean error, not lost
	// work.
	if opts.Resume && opts.Checkpoint == "" {
		return Outcome{}, errors.New("campaign: Options.Resume requires Options.Checkpoint")
	}
	var ck *checkpointer
	var resumed map[int]ShardResult
	if opts.Checkpoint != "" {
		hdr := CheckpointHeader{
			Schema:      checkpointSchema,
			SpecHash:    SpecHash(points, shardTrials),
			Version:     buildVersion(),
			ShardTrials: shardTrials,
			Shards:      len(shards),
		}
		ck = newCheckpointer(opts.Checkpoint, opts.CheckpointEvery, hdr)
		if opts.Resume {
			var err error
			resumed, err = loadResume(opts.Checkpoint, hdr, shards, points)
			if err != nil {
				return Outcome{}, err
			}
			ck.seed(resumed)
		}
	}

	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Progress counters are maintained only when someone is listening;
	// the periodic reporter runs on its own goroutine so a slow
	// OnProgress callback never stalls the pool.
	progressOn := opts.OnProgress != nil
	var doneTrials, busyNS atomic.Int64
	var progressWG sync.WaitGroup
	progressQuit := make(chan struct{})
	if progressOn {
		interval := opts.ProgressInterval
		if interval <= 0 {
			interval = time.Second
		}
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					opts.OnProgress(progressSnapshot(start, total, workers, &doneTrials, &busyNS, false))
				case <-progressQuit:
					return
				}
			}
		}()
	}

	jobs := make(chan int, workers)
	results := make(chan taggedRecord, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One workspace per worker for its whole job stream: every
			// trial after the worker's first reuses the backing arrays
			// (configuration, engine index, RNG) instead of reallocating
			// them, so steady-state campaign throughput is bounded by the
			// simulation, not the allocator. Workspaces never change a
			// result bit, so aggregates stay independent of Workers and
			// of this optimization. runTrial may replace the workspace
			// behind the pointer: a panicking trial poisons it, and
			// poisoned state is never reused.
			var ws *core.Workspace
			if !opts.FreshAlloc {
				ws = core.NewWorkspace()
			}
			for gid := range jobs {
				if runCtx.Err() != nil {
					continue // drain without running
				}
				var rec RunRecord
				if p, t, err := locate(offsets, points, gid); err != nil {
					rec = RunRecord{Point: -1, Err: err.Error()}
				} else {
					rec = runTrial(runCtx, &points[p], p, t, opts.Timeout, opts.Retry, &ws)
				}
				tr := taggedRecord{gid: gid, rec: rec}
				if progressOn {
					doneTrials.Add(1)
					busyNS.Add(tr.rec.DurationNS)
				}
				results <- tr
			}
		}()
	}
	go func() {
		defer close(jobs)
		for si := range shards {
			if _, ok := resumed[si]; ok {
				continue // completed by a previous process; replays below
			}
			for t := 0; t < shards[si].Trials; t++ {
				select {
				case jobs <- shardStart[si] + t:
				case <-runCtx.Done():
					return
				}
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: reorder buffer + in-order fold, shard-structured.
	// Records fold into the open shard's own Welford accumulator in
	// trial order; a finished shard merges into its point's aggregate
	// via Aggregate.Merge (and is checkpointed). Resumed shards replay
	// at exactly the position their trials would have arrived, so the
	// reduction tree — and therefore every output bit — is identical to
	// an uninterrupted run's.
	out := Outcome{Aggregates: make([]Aggregate, len(points)), Workers: workers}
	for i, pt := range points {
		out.Aggregates[i] = Aggregate{
			Protocol:  pt.Protocol,
			N:         pt.N,
			Scheduler: schedulerLabel(pt),
			Expected:  pt.Expected,
			Faults:    pt.Faults.String(),
			Topology:  pt.Topology.Label(),
		}
	}
	var firstErr, flushErr error
	firstErrGid := -1
	mergeAgg := func(point int, agg Aggregate) {
		if err := out.Aggregates[point].Merge(agg); err != nil && firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	deliver := func(rec RunRecord) {
		if opts.KeepRuns {
			out.Runs = append(out.Runs, rec)
		}
		if opts.OnRun != nil {
			opts.OnRun(rec)
		}
	}

	curShard := 0         // shard containing the next expected gid
	var open *ShardResult // in-flight accumulation of shards[curShard]
	var openAcc stats.Online
	next := 0
	pending := make(map[int]RunRecord, workers)

	openShard := func() {
		s := &shards[curShard]
		pt := &points[s.Point]
		open = &ShardResult{
			Shard: *s,
			Agg: Aggregate{
				Protocol:  pt.Protocol,
				N:         pt.N,
				Scheduler: schedulerLabel(*pt),
				Expected:  pt.Expected,
				Faults:    pt.Faults.String(),
				Topology:  pt.Topology.Label(),
			},
			Runs: make([]RunRecord, 0, s.Trials),
		}
		openAcc = stats.Online{}
	}
	foldRec := func(rec RunRecord) {
		agg := &open.Agg
		agg.Trials++
		if rec.Err == "" {
			agg.TotalSteps += rec.Steps
			agg.TotalEffectiveSteps += rec.EffectiveSteps
			agg.TotalSkippedSteps += rec.SkippedSteps
			agg.FaultsApplied += rec.FaultCrashes + rec.FaultEdgeDeletions + rec.FaultResets
		}
		switch {
		case rec.Err != "":
			agg.Failures++
			if rec.Panicked {
				agg.Panics++
			}
		case rec.Converged:
			agg.Converged++
			openAcc.Add(rec.Value)
		default:
			agg.Failures++
			if rec.Stopped {
				agg.Stopped++
			} else if points[rec.Point].IncludeUnconverged {
				// Budget exhaustion is a deterministic cut point, so
				// the value measured there is data (survivability
				// campaigns); a nondeterministic Stopped cut is not.
				openAcc.Add(rec.Value)
			}
		}
		open.Runs = append(open.Runs, rec)
		deliver(rec)
	}
	closeShard := func(complete bool) {
		open.Agg.setAcc(openAcc)
		mergeAgg(open.Point, open.Agg)
		if complete && ck != nil {
			ck.add(*open)
			if err := ck.maybeFlush(); err != nil && flushErr == nil {
				flushErr = err
			}
		}
		open = nil
		curShard++
	}
	// advance consumes everything available in gid order at the cursor:
	// checkpointed shards replay whole, live records fold one at a
	// time.
	advance := func() {
		for next < total {
			if open == nil {
				if sr, ok := resumed[curShard]; ok {
					for _, rec := range sr.Runs {
						deliver(rec)
					}
					if progressOn {
						doneTrials.Add(int64(len(sr.Runs)))
					}
					mergeAgg(sr.Point, sr.Agg)
					next += sr.Trials
					curShard++
					continue
				}
			}
			rec, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			if open == nil {
				openShard()
			}
			foldRec(rec)
			next++
			if next == shardStart[curShard]+shards[curShard].Trials {
				closeShard(true)
			}
		}
	}
	advance()
	for tr := range results {
		if tr.rec.Err != "" && !tr.rec.Panicked && (firstErrGid < 0 || tr.gid < firstErrGid) {
			// Hard errors cancel the campaign, recorded out of band:
			// cancellation may break the in-order chain before this gid
			// is reached. Recovered panics are isolated instead — they
			// count as failures and the sweep keeps going.
			firstErr = errors.New(tr.rec.Err)
			firstErrGid = tr.gid
			cancel()
		}
		pending[tr.gid] = tr.rec
		advance()
	}
	if open != nil {
		// Cancellation landed mid-shard: the completed prefix still
		// counts toward the partial aggregates, but an incomplete shard
		// is never checkpointed.
		closeShard(false)
	}
	out.Elapsed = time.Since(start)

	if ck != nil {
		// Final flush — also on cancellation, so an interrupted campaign
		// leaves its freshest state behind for the resume.
		if err := ck.flush(); err != nil && flushErr == nil {
			flushErr = err
		}
	}

	if progressOn {
		close(progressQuit)
		progressWG.Wait()
		opts.OnProgress(progressSnapshot(start, total, workers, &doneTrials, &busyNS, true))
	}

	if err := ctx.Err(); err != nil {
		return out, err
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, flushErr
}

// prepare validates the points and resolves their fault plans
// (compiling crash plans into augmented protocols) in place.
func prepare(points []Point) error {
	for i := range points {
		pt := &points[i]
		switch {
		case pt.DynProto != nil:
			if pt.Proto != nil {
				return fmt.Errorf("campaign: point %d (%s) sets both Proto and DynProto", i, pt.Protocol)
			}
			if pt.DynStable == nil {
				return fmt.Errorf("campaign: point %d (%s): dynamic points require DynStable", i, pt.Protocol)
			}
			if pt.Engine != core.EngineAuto || pt.NewScheduler != nil || pt.Faults != nil ||
				pt.Initial != nil || pt.Observer != nil || pt.Topology != nil {
				return fmt.Errorf("campaign: point %d (%s): dynamic points run the dynamic engine under the uniform scheduler and support no engine, scheduler, fault, topology or static-initial options", i, pt.Protocol)
			}
		case pt.Proto == nil:
			return fmt.Errorf("campaign: point %d has no protocol", i)
		}
		if pt.N < 1 {
			return fmt.Errorf("campaign: point %d (%s): population size must be ≥ 1", i, pt.Protocol)
		}
		if pt.Trials < 1 {
			return fmt.Errorf("campaign: point %d (%s): trials must be ≥ 1", i, pt.Protocol)
		}
		if pt.Faults != nil {
			if pt.Faults.HasCrashes() && pt.Initial != nil {
				return fmt.Errorf("campaign: point %d (%s): crash faults require the default initial configuration (the run protocol is augmented with a crash state)", i, pt.Protocol)
			}
			pr, err := pt.Faults.Prepare(pt.Proto)
			if err != nil {
				return fmt.Errorf("campaign: point %d (%s): %w", i, pt.Protocol, err)
			}
			pt.prepared = pr
		}
		if err := pt.Topology.Validate(pt.N); err != nil {
			return fmt.Errorf("campaign: point %d (%s): %w", i, pt.Protocol, err)
		}
	}
	return nil
}

// locate maps a global trial id back to its (point, trial) pair. An
// out-of-range gid — impossible from the job generator, but cheap to
// defend against — is a descriptive error rather than a panic, so a
// bookkeeping bug surfaces as a failed campaign instead of taking down
// the worker pool.
func locate(offsets []int, points []Point, gid int) (point, trial int, err error) {
	if gid >= 0 {
		// offsets is increasing and short (one entry per grid cell); a
		// linear scan from the back finds the owning point.
		for p := len(offsets) - 1; p >= 0; p-- {
			if gid >= offsets[p] {
				if t := gid - offsets[p]; t < points[p].Trials {
					return p, t, nil
				}
				break
			}
		}
	}
	return 0, 0, fmt.Errorf("campaign: global trial id %d outside the campaign's trial space (%d points)", gid, len(points))
}

func schedulerLabel(pt Point) string {
	if pt.Scheduler != "" {
		return pt.Scheduler
	}
	if pt.NewScheduler != nil {
		if s := pt.NewScheduler(); s != nil {
			return s.Name()
		}
	}
	return core.UniformScheduler{}.Name()
}

// runDynTrial is runAttempt's dynamic-protocol branch: core.RunDyn with
// the same cancellation and timeout plumbing, mapped onto the shared
// record shape (Engine "dynamic", no edge-change counter).
//
// Workspace audit: dynamic trials deliberately keep fresh allocation.
// A DynConfig is O(n + n²/64) bytes with no Θ(n²) enabled-pair index
// behind it — per-trial setup is a vanishing fraction of a Section 6
// run, which simulates a Turing machine step by step — and the
// caller-supplied DynStable predicate may retain DynResult.Final,
// which a reuse contract would invalidate. If dynamic sweeps ever grow
// a hot setup path, the place to add reuse is a DynWorkspace mirroring
// core.Workspace, not sharing this one (the config types are
// disjoint).
func runDynTrial(pt *Point, rec RunRecord, stop func() bool) RunRecord {
	dopts := core.DynOptions{
		Seed:          rec.Seed,
		MaxSteps:      pt.MaxSteps,
		CheckInterval: pt.CheckInterval,
		Stable:        pt.DynStable,
		Stop:          stop,
	}
	if pt.DynInitial != nil {
		initial, err := pt.DynInitial(rec.Trial)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		dopts.Initial = initial
	}
	start := time.Now()
	res, err := core.RunDyn(pt.DynProto, pt.N, dopts)
	rec.DurationNS = time.Since(start).Nanoseconds()
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Engine = "dynamic"
	rec.Converged = res.Converged
	rec.Stopped = res.Stopped
	rec.Steps = res.Steps
	rec.ConvergenceTime = res.ConvergenceTime
	rec.EffectiveSteps = res.EffectiveSteps
	metric := pt.Metric
	if metric == nil {
		metric = MetricConvergenceTime
	}
	rec.Value = metric(core.Result{
		Converged:       res.Converged,
		Stopped:         res.Stopped,
		Steps:           res.Steps,
		ConvergenceTime: res.ConvergenceTime,
		EffectiveSteps:  res.EffectiveSteps,
	}, pt.N)
	return rec
}

// Mean replaces the old core.Mean: it runs the protocol `trials` times
// with seeds seed, seed+1, … on the worker pool and returns the mean
// convergence time over converged runs plus the number of runs that
// failed to converge within budget. A caller-supplied scheduler or
// observer in opts forces sequential execution (they would otherwise be
// shared across goroutines); opts.Seed is ignored in favor of the seed
// argument.
func Mean(p *core.Protocol, n, trials int, seed uint64, opts core.Options) (mean float64, failures int, err error) {
	pt := Point{
		Protocol:      p.Name(),
		N:             n,
		Trials:        trials,
		BaseSeed:      seed,
		Proto:         p,
		Detector:      opts.Detector,
		MaxSteps:      opts.MaxSteps,
		CheckInterval: opts.CheckInterval,
		Engine:        opts.Engine,
		Observer:      opts.Observer,
		Stop:          opts.Stop,
	}
	if opts.Initial != nil {
		initial := opts.Initial
		pt.Initial = func(int) (*core.Config, error) { return initial, nil }
	}
	var workers int
	if opts.Scheduler != nil {
		sched := opts.Scheduler
		pt.NewScheduler = func() core.Scheduler { return sched }
		workers = 1
	}
	if opts.Observer != nil {
		workers = 1
	}
	out, err := Execute(context.Background(), []Point{pt}, Options{Workers: workers})
	if err != nil {
		return 0, 0, err
	}
	agg := out.Aggregates[0]
	return agg.Mean, agg.Failures, nil
}
