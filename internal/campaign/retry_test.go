package campaign

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocols"
)

func panicMetric(core.Result, int) float64 { panic("metric exploded") }

// TestPanicIsolation is the pool-survival acceptance: a point whose
// every trial panics becomes failed records — counted, labelled, and
// streamed like any others — while the healthy point beside it
// completes and Execute returns no error.
func TestPanicIsolation(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	points := []Point{
		{Protocol: "cycle-cover", N: 12, Trials: 4, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector},
		{Protocol: "cycle-cover", N: 14, Trials: 4, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, Metric: panicMetric},
	}
	out, err := Execute(context.Background(), points, Options{Workers: 2, KeepRuns: true})
	if err != nil {
		t.Fatalf("recovered panics must not abort the campaign: %v", err)
	}
	healthy, broken := out.Aggregates[0], out.Aggregates[1]
	if healthy.Converged != 4 || healthy.Failures != 0 || healthy.Panics != 0 {
		t.Fatalf("healthy point disturbed: %+v", healthy)
	}
	if broken.Failures != 4 || broken.Panics != 4 || broken.Converged != 0 {
		t.Fatalf("panicking point misaggregated: %+v", broken)
	}
	for _, rec := range out.Runs {
		if rec.Point != 1 {
			continue
		}
		if !rec.Panicked || !strings.Contains(rec.Err, "panic: metric exploded") {
			t.Fatalf("panicking trial recorded as %+v", rec)
		}
	}
}

// TestPanicReplacesWorkspace pins the poisoning contract: a panicking
// attempt swaps a fresh workspace into the worker's slot, and a
// healthy follow-up run on that slot works and keeps it.
func TestPanicReplacesWorkspace(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	pt := Point{Protocol: "cycle-cover", N: 12, Trials: 2, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector, Metric: panicMetric}

	ws := core.NewWorkspace()
	poisoned := ws
	rec := runTrial(context.Background(), &pt, 0, 0, 0, RetryPolicy{}, &ws)
	if !rec.Panicked {
		t.Fatalf("record %+v, want panicked", rec)
	}
	if ws == nil || ws == poisoned {
		t.Fatal("poisoned workspace was not replaced")
	}

	pt.Metric = nil
	kept := ws
	rec = runTrial(context.Background(), &pt, 0, 1, 0, RetryPolicy{}, &ws)
	if !rec.Converged || rec.Err != "" {
		t.Fatalf("healthy run on replaced workspace: %+v", rec)
	}
	if ws != kept {
		t.Fatal("healthy run replaced its workspace")
	}
}

// TestRetryTransientPanic: a trial that panics once and then succeeds
// is healed by a 2-attempt policy, and the record discloses the retry.
func TestRetryTransientPanic(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	var mu sync.Mutex
	calls := map[int]int{}
	pt := Point{Protocol: "cycle-cover", N: 12, Trials: 3, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector,
		Initial: func(trial int) (*core.Config, error) {
			mu.Lock()
			calls[trial]++
			c := calls[trial]
			mu.Unlock()
			if trial == 1 && c == 1 {
				panic("transient glitch")
			}
			return nil, nil
		}}
	out, err := Execute(context.Background(), []Point{pt}, Options{
		Workers:  1,
		KeepRuns: true,
		Retry:    RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := out.Aggregates[0]
	if agg.Converged != 3 || agg.Failures != 0 || agg.Panics != 0 {
		t.Fatalf("retry did not heal the transient panic: %+v", agg)
	}
	for _, rec := range out.Runs {
		want := 0
		if rec.Trial == 1 {
			want = 2
		}
		if rec.Attempts != want {
			t.Fatalf("trial %d records %d attempts, want %d", rec.Trial, rec.Attempts, want)
		}
	}
}

// TestRetryDeterministicPanic: the same panic twice on the same seed
// is deterministic — the policy stops at two attempts no matter how
// many it is allowed, instead of hot-looping.
func TestRetryDeterministicPanic(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	pt := Point{Protocol: "cycle-cover", N: 12, Trials: 1, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector, Metric: panicMetric}
	ws := core.NewWorkspace()
	rec := runTrial(context.Background(), &pt, 0, 0, 0,
		RetryPolicy{MaxAttempts: 50, BaseBackoff: time.Microsecond}, &ws)
	if !rec.Panicked || rec.Attempts != 2 {
		t.Fatalf("record %+v, want the identical second panic terminal at 2 attempts", rec)
	}

	// Distinct panic messages stay transient: the policy runs them to
	// its attempt cap.
	n := 0
	pt.Metric = func(core.Result, int) float64 {
		n++
		panic(fmt.Sprintf("glitch %d", n))
	}
	rec = runTrial(context.Background(), &pt, 0, 0, 0,
		RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}, &ws)
	if !rec.Panicked || rec.Attempts != 3 {
		t.Fatalf("record %+v, want 3 attempts", rec)
	}

	// Plain errors are terminal on the first attempt regardless of the
	// policy.
	pt.Metric = nil
	pt.Initial = func(int) (*core.Config, error) { return nil, fmt.Errorf("bad input") }
	rec = runTrial(context.Background(), &pt, 0, 0, 0,
		RetryPolicy{MaxAttempts: 50, BaseBackoff: time.Microsecond}, &ws)
	if rec.Err != "bad input" || rec.Panicked || rec.Attempts != 0 {
		t.Fatalf("record %+v, want a single-attempt plain error", rec)
	}
}

// TestRetryDeadline: the per-trial deadline bounds the attempt loop
// even when the attempt cap would allow more.
func TestRetryDeadline(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	n := 0
	pt := Point{Protocol: "cycle-cover", N: 12, Trials: 1, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector,
		Metric: func(core.Result, int) float64 {
			n++
			panic(fmt.Sprintf("glitch %d", n))
		}}
	ws := core.NewWorkspace()
	rec := runTrial(context.Background(), &pt, 0, 0, 0,
		RetryPolicy{MaxAttempts: 1000, BaseBackoff: 40 * time.Millisecond, Deadline: 60 * time.Millisecond}, &ws)
	if !rec.Panicked {
		t.Fatalf("record %+v", rec)
	}
	if rec.Attempts > 3 {
		t.Fatalf("deadline did not bound the loop: %d attempts", rec.Attempts)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	for retry, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond,
	} {
		if got := p.backoff(retry); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", retry, got, want)
		}
	}
	var zero RetryPolicy
	if zero.attempts() != 1 {
		t.Fatalf("zero policy allows %d attempts", zero.attempts())
	}
	if zero.backoff(0) != 100*time.Millisecond {
		t.Fatalf("zero policy base backoff %v", zero.backoff(0))
	}
	if zero.backoff(100) != 5*time.Second {
		t.Fatalf("zero policy backoff cap %v", zero.backoff(100))
	}
}
