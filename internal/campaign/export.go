package campaign

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// WriteAggregatesJSON writes the aggregated series as indented JSON.
func WriteAggregatesJSON(w io.Writer, aggs []Aggregate) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(aggs)
}

// WriteAggregatesCSV writes the aggregated series as CSV with a header
// row.
func WriteAggregatesCSV(w io.Writer, aggs []Aggregate) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"protocol", "n", "scheduler", "faults", "topology", "trials", "converged",
		"failures", "stopped", "panics", "mean", "stderr", "stddev", "min",
		"max", "expected", "total_steps", "total_effective_steps",
		"total_skipped_steps", "faults_applied",
	}); err != nil {
		return err
	}
	for _, a := range aggs {
		rec := []string{
			a.Protocol,
			strconv.Itoa(a.N),
			a.Scheduler,
			a.Faults,
			a.Topology,
			strconv.Itoa(a.Trials),
			strconv.Itoa(a.Converged),
			strconv.Itoa(a.Failures),
			strconv.Itoa(a.Stopped),
			strconv.Itoa(a.Panics),
			formatFloat(a.Mean),
			formatFloat(a.StdErr),
			formatFloat(a.StdDev),
			formatFloat(a.Min),
			formatFloat(a.Max),
			formatFloat(a.Expected),
			strconv.FormatInt(a.TotalSteps, 10),
			strconv.FormatInt(a.TotalEffectiveSteps, 10),
			strconv.FormatInt(a.TotalSkippedSteps, 10),
			strconv.FormatInt(a.FaultsApplied, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRunsJSON writes the raw run records as indented JSON.
func WriteRunsJSON(w io.Writer, runs []RunRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(runs)
}

// WriteRunsCSV writes the raw run records as CSV with a header row.
func WriteRunsCSV(w io.Writer, runs []RunRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"point", "protocol", "n", "scheduler", "faults", "topology", "trial", "seed",
		"engine", "converged", "stopped", "steps", "convergence_time",
		"effective_steps", "edge_changes", "skipped_steps", "skip_batches",
		"sample_rejections", "sample_fallbacks", "bucket_draws",
		"exact_fallback_landings", "collapsed_landings",
		"fast_forward_epochs", "fault_crashes",
		"fault_edge_deletions", "fault_resets", "value", "duration_ns",
		"attempts", "panicked", "err",
	}); err != nil {
		return err
	}
	for _, r := range runs {
		rec := []string{
			strconv.Itoa(r.Point),
			r.Protocol,
			strconv.Itoa(r.N),
			r.Scheduler,
			r.Faults,
			r.Topology,
			strconv.Itoa(r.Trial),
			strconv.FormatUint(r.Seed, 10),
			r.Engine,
			strconv.FormatBool(r.Converged),
			strconv.FormatBool(r.Stopped),
			strconv.FormatInt(r.Steps, 10),
			strconv.FormatInt(r.ConvergenceTime, 10),
			strconv.FormatInt(r.EffectiveSteps, 10),
			strconv.FormatInt(r.EdgeChanges, 10),
			strconv.FormatInt(r.SkippedSteps, 10),
			strconv.FormatInt(r.SkipBatches, 10),
			strconv.FormatInt(r.SampleRejections, 10),
			strconv.FormatInt(r.SampleFallbacks, 10),
			strconv.FormatInt(r.BucketDraws, 10),
			strconv.FormatInt(r.ExactFallbackLandings, 10),
			strconv.FormatInt(r.CollapsedLandings, 10),
			strconv.FormatInt(r.FastForwardEpochs, 10),
			strconv.FormatInt(r.FaultCrashes, 10),
			strconv.FormatInt(r.FaultEdgeDeletions, 10),
			strconv.FormatInt(r.FaultResets, 10),
			formatFloat(r.Value),
			strconv.FormatInt(r.DurationNS, 10),
			strconv.Itoa(r.Attempts),
			strconv.FormatBool(r.Panicked),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders a float for CSV, emitting an empty cell for
// non-finite values: spreadsheet tools and pandas' default parsers
// choke on literal "NaN"/"+Inf" tokens in otherwise numeric columns
// (an aggregate over zero converged trials has no mean to report).
func formatFloat(f float64) string {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return ""
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
