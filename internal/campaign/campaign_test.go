package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/processes"
	"repro/internal/protocols"
)

// testPoints builds a small mixed grid: a Table 2 constructor sweep
// plus a Table 1 process with a distinguished-node initial
// configuration.
func testPoints(t *testing.T, trials int) []Point {
	t.Helper()
	cc := protocols.CycleCover()
	proc := processes.OneWayEpidemic()
	points := []Point{
		{Protocol: "cycle-cover", N: 16, Trials: trials, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, Metric: MetricConvergenceTime},
		{Protocol: "cycle-cover", N: 24, Trials: trials, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, Metric: MetricConvergenceTime},
	}
	initial, err := proc.Initial(32)
	if err != nil {
		t.Fatal(err)
	}
	points = append(points, Point{
		Protocol: proc.Proto.Name(), N: 32, Trials: trials, BaseSeed: 7,
		Proto: proc.Proto, Detector: proc.Detector, Metric: MetricSteps,
		Expected: proc.Expected(32),
		Initial:  func(int) (*core.Config, error) { return initial, nil },
	})
	return points
}

func stripDurations(runs []RunRecord) []RunRecord {
	out := make([]RunRecord, len(runs))
	copy(out, runs)
	for i := range out {
		out[i].DurationNS = 0
	}
	return out
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	const trials = 8
	var baseline Outcome
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		out, err := Execute(context.Background(), testPoints(t, trials), Options{
			Workers:  workers,
			KeepRuns: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out.Aggregates) != 3 {
			t.Fatalf("workers=%d: %d aggregates", workers, len(out.Aggregates))
		}
		for _, agg := range out.Aggregates {
			if agg.Converged != trials || agg.Failures != 0 || agg.Mean <= 0 {
				t.Fatalf("workers=%d: bad aggregate %+v", workers, agg)
			}
		}
		if i == 0 {
			baseline = out
			continue
		}
		// Bit-identical aggregates and identically ordered raw runs,
		// regardless of the worker count.
		if !reflect.DeepEqual(out.Aggregates, baseline.Aggregates) {
			t.Fatalf("workers=%d aggregates diverge:\n%+v\nvs workers=1:\n%+v",
				workers, out.Aggregates, baseline.Aggregates)
		}
		if !reflect.DeepEqual(stripDurations(out.Runs), stripDurations(baseline.Runs)) {
			t.Fatalf("workers=%d raw runs diverge from workers=1", workers)
		}
	}
}

func TestOnRunStreamsInGlobalOrder(t *testing.T) {
	t.Parallel()
	var seen []int
	out, err := Execute(context.Background(), testPoints(t, 4), Options{
		Workers: 4,
		OnRun: func(rec RunRecord) {
			seen = append(seen, rec.Point*100+rec.Trial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 {
		t.Fatalf("callback fired %d times, want 12", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("callback out of global order: %v", seen)
		}
	}
	if out.Workers != 4 {
		t.Fatalf("workers=%d, want 4", out.Workers)
	}
}

func TestCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	// A grid big and slow enough that cancellation lands mid-flight:
	// cancel from the first progress callback.
	sgl := protocols.SimpleGlobalLine()
	points := []Point{{
		Protocol: "simple-global-line", N: 20, Trials: 64, BaseSeed: 1,
		Proto: sgl.Proto, Detector: sgl.Detector,
	}}
	done := make(chan struct{})
	var out Outcome
	var err error
	go func() {
		defer close(done)
		out, err = Execute(ctx, points, Options{Workers: 2, OnRun: func(RunRecord) { cancel() }})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Aggregates[0].Converged >= 64 {
		t.Fatal("cancellation did not stop the sweep early")
	}
}

func TestPerRunTimeout(t *testing.T) {
	t.Parallel()
	// A protocol that keeps toggling and never stabilizes: its detector
	// never fires, so only the timeout can end the run early.
	p := core.MustProtocol("ping", []string{"a", "b"}, 0, nil, []core.Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1},
		{A: 1, B: 1, Edge: false, OutA: 0, OutB: 0},
		{A: 0, B: 1, Edge: false, OutA: 1, OutB: 0},
	})
	never := core.Detector{Trigger: core.TriggerInterval, Stable: func(*core.Config) bool { return false }}
	out, err := Execute(context.Background(), []Point{{
		Protocol: "ping", N: 64, Trials: 3, BaseSeed: 1,
		Proto: p, Detector: never,
	}}, Options{Workers: 2, Timeout: 20 * time.Millisecond, KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	agg := out.Aggregates[0]
	if agg.Failures != 3 || agg.Stopped != 3 || agg.Converged != 0 {
		t.Fatalf("timeout aggregate %+v", agg)
	}
	for _, rec := range out.Runs {
		if !rec.Stopped || rec.Converged {
			t.Fatalf("run not stopped by timeout: %+v", rec)
		}
	}
}

func TestExecuteValidates(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	cases := []Point{
		{Protocol: "no-proto", N: 8, Trials: 1},
		{Protocol: "cycle-cover", N: 0, Trials: 1, Proto: cc.Proto},
		{Protocol: "cycle-cover", N: 8, Trials: 0, Proto: cc.Proto},
	}
	for _, pt := range cases {
		if _, err := Execute(context.Background(), []Point{pt}, Options{}); err == nil {
			t.Fatalf("invalid point accepted: %+v", pt)
		}
	}
}

func TestInitialErrorSurfaces(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	boom := func(int) (*core.Config, error) { return nil, context.DeadlineExceeded }
	_, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 8, Trials: 4, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector, Initial: boom,
	}}, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want the initial-builder error", err)
	}
}

func TestMeanMatchesSequentialSemantics(t *testing.T) {
	t.Parallel()
	mm := core.MustProtocol("mm", []string{"a", "b"}, 0, nil, []core.Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	det := core.Detector{Trigger: core.TriggerEffective, Stable: func(cfg *core.Config) bool {
		return cfg.Count(0) <= 1
	}}
	mean, failures, err := Mean(mm, 10, 5, 1, core.Options{Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 || mean <= 0 {
		t.Fatalf("mean %f failures %d", mean, failures)
	}
	if _, _, err := Mean(mm, 10, 0, 1, core.Options{Detector: det}); err == nil {
		t.Fatal("trials=0 accepted")
	}
	// A caller-supplied Stop hook must reach the engine: with an
	// always-true hook no run can converge.
	_, failures3, err := Mean(mm, 10, 3, 1, core.Options{
		Detector: det,
		Stop:     func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures3 != 3 {
		t.Fatalf("Stop hook ignored: %d failures, want 3", failures3)
	}
	// A stateful scheduler must still work (forced sequential).
	mean2, failures2, err := Mean(mm, 10, 5, 1, core.Options{
		Detector:  det,
		Scheduler: &core.RoundRobinScheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures2 != 0 || mean2 <= 0 {
		t.Fatalf("round-robin mean %f failures %d", mean2, failures2)
	}
}

func TestSpecCompile(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Trials: 3,
		Seed:   5,
		Items: []Item{
			{Name: "cycle-cover", Sizes: []int{8, 16}},
			{Name: "One-Way-Epidemic", Kind: "process", Sizes: []int{16}},
			{Kind: "replication", Sizes: []int{8}},
		},
		Schedulers: []string{"uniform", "round-robin"},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// (2 + 1 + 1 sizes) × 2 schedulers.
	if len(points) != 8 {
		t.Fatalf("%d points, want 8", len(points))
	}
	if points[0].Protocol != "cycle-cover" || points[0].N != 8 || points[0].Scheduler != "uniform" {
		t.Fatalf("first point %+v", points[0])
	}
	if points[1].NewScheduler == nil {
		t.Fatal("round-robin point has no scheduler factory")
	}
	for _, pt := range points {
		if pt.Protocol == "One-Way-Epidemic" {
			if pt.Expected <= 0 || pt.Initial == nil {
				t.Fatalf("process point not resolved: %+v", pt)
			}
		}
		if pt.Protocol == "graph-replication" && pt.Initial == nil {
			t.Fatalf("replication point has no initial builder")
		}
	}
	// The compiled grid must actually execute.
	out, err := Execute(context.Background(), points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range out.Aggregates {
		if agg.Failures > 0 {
			t.Fatalf("compiled spec run failed: %+v", agg)
		}
	}
}

func TestSpecCompileRejects(t *testing.T) {
	t.Parallel()
	bad := []Spec{
		{Trials: 1},
		{Trials: 0, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover"}}},
		{Trials: 1, Items: []Item{{Name: "nope", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "nope", Kind: "process", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Kind: "wat", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Schedulers: []string{"nope"}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Metric: "nope"},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Engine: "nope"},
		// The indexed engines require the uniform scheduler.
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Engine: "fast", Schedulers: []string{"round-robin"}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Engine: "sparse", Schedulers: []string{"permutation"}},
		// Forced engines must fit their population caps at compile time,
		// not as all-failure aggregates at run time.
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{1 << 16}}}, Engine: "fast"},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{1<<20 + 1}}}, Engine: "sparse"},
	}
	for i, spec := range bad {
		if _, err := spec.Compile(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestSpecCompileSparseEngine checks the sparse engine flows through a
// spec end to end.
func TestSpecCompileSparseEngine(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Trials: 2,
		Seed:   3,
		Engine: "sparse",
		Items:  []Item{{Name: "cycle-cover", Sizes: []int{12}}},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Engine != core.EngineSparse {
		t.Fatalf("compiled points %+v", points)
	}
	out, err := Execute(context.Background(), points, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Aggregates[0].Converged != 2 {
		t.Fatalf("sparse spec runs did not converge: %+v", out.Aggregates[0])
	}
	for _, rec := range out.Runs {
		if rec.Engine != "sparse" {
			t.Fatalf("run executed on %q, want sparse", rec.Engine)
		}
	}
}

func TestParseSpec(t *testing.T) {
	t.Parallel()
	src := `{"items":[{"name":"global-star","sizes":[16,32]}],"trials":4,"seed":9,"metric":"steps"}`
	spec, err := ParseSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trials != 4 || spec.Seed != 9 || len(spec.Items) != 1 || spec.Metric != "steps" {
		t.Fatalf("parsed spec %+v", spec)
	}
	if _, err := ParseSpec(strings.NewReader(`{"itemz":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestExportRoundTrip(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	out, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 12, Trials: 4, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector,
	}}, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAggregatesJSON(&buf, out.Aggregates); err != nil {
		t.Fatal(err)
	}
	var aggs []Aggregate
	if err := json.Unmarshal(buf.Bytes(), &aggs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aggs, out.Aggregates) {
		t.Fatalf("JSON aggregate round trip diverged:\n%+v\nvs\n%+v", aggs, out.Aggregates)
	}

	buf.Reset()
	if err := WriteRunsJSON(&buf, out.Runs); err != nil {
		t.Fatal(err)
	}
	var runs []RunRecord
	if err := json.Unmarshal(buf.Bytes(), &runs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, out.Runs) {
		t.Fatal("JSON runs round trip diverged")
	}

	buf.Reset()
	if err := WriteAggregatesCSV(&buf, out.Aggregates); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "protocol,n,scheduler") {
		t.Fatalf("aggregate CSV:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteRunsCSV(&buf, out.Runs); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "point,protocol,n") {
		t.Fatalf("runs CSV:\n%s", buf.String())
	}
}
