package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

// testPoints builds a small mixed grid: a Table 2 constructor sweep
// plus a Table 1 process with a distinguished-node initial
// configuration.
func testPoints(t *testing.T, trials int) []Point {
	t.Helper()
	cc := protocols.CycleCover()
	proc := processes.OneWayEpidemic()
	points := []Point{
		{Protocol: "cycle-cover", N: 16, Trials: trials, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, Metric: MetricConvergenceTime},
		{Protocol: "cycle-cover", N: 24, Trials: trials, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, Metric: MetricConvergenceTime},
	}
	initial, err := proc.Initial(32)
	if err != nil {
		t.Fatal(err)
	}
	points = append(points, Point{
		Protocol: proc.Proto.Name(), N: 32, Trials: trials, BaseSeed: 7,
		Proto: proc.Proto, Detector: proc.Detector, Metric: MetricSteps,
		Expected: proc.Expected(32),
		Initial:  func(int) (*core.Config, error) { return initial, nil },
	})
	return points
}

func stripDurations(runs []RunRecord) []RunRecord {
	out := make([]RunRecord, len(runs))
	copy(out, runs)
	for i := range out {
		out[i].DurationNS = 0
	}
	return out
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	const trials = 8
	var baseline Outcome
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		out, err := Execute(context.Background(), testPoints(t, trials), Options{
			Workers:  workers,
			KeepRuns: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out.Aggregates) != 3 {
			t.Fatalf("workers=%d: %d aggregates", workers, len(out.Aggregates))
		}
		for _, agg := range out.Aggregates {
			if agg.Converged != trials || agg.Failures != 0 || agg.Mean <= 0 {
				t.Fatalf("workers=%d: bad aggregate %+v", workers, agg)
			}
		}
		if i == 0 {
			baseline = out
			continue
		}
		// Bit-identical aggregates and identically ordered raw runs,
		// regardless of the worker count.
		if !reflect.DeepEqual(out.Aggregates, baseline.Aggregates) {
			t.Fatalf("workers=%d aggregates diverge:\n%+v\nvs workers=1:\n%+v",
				workers, out.Aggregates, baseline.Aggregates)
		}
		if !reflect.DeepEqual(stripDurations(out.Runs), stripDurations(baseline.Runs)) {
			t.Fatalf("workers=%d raw runs diverge from workers=1", workers)
		}
	}
}

func TestOnRunStreamsInGlobalOrder(t *testing.T) {
	t.Parallel()
	var seen []int
	out, err := Execute(context.Background(), testPoints(t, 4), Options{
		Workers: 4,
		OnRun: func(rec RunRecord) {
			seen = append(seen, rec.Point*100+rec.Trial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 {
		t.Fatalf("callback fired %d times, want 12", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("callback out of global order: %v", seen)
		}
	}
	if out.Workers != 4 {
		t.Fatalf("workers=%d, want 4", out.Workers)
	}
}

func TestCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	// A grid big and slow enough that cancellation lands mid-flight:
	// cancel from the first progress callback.
	sgl := protocols.SimpleGlobalLine()
	points := []Point{{
		Protocol: "simple-global-line", N: 20, Trials: 64, BaseSeed: 1,
		Proto: sgl.Proto, Detector: sgl.Detector,
	}}
	done := make(chan struct{})
	var out Outcome
	var err error
	go func() {
		defer close(done)
		out, err = Execute(ctx, points, Options{Workers: 2, OnRun: func(RunRecord) { cancel() }})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Aggregates[0].Converged >= 64 {
		t.Fatal("cancellation did not stop the sweep early")
	}
}

func TestPerRunTimeout(t *testing.T) {
	t.Parallel()
	// A protocol that keeps toggling and never stabilizes: its detector
	// never fires, so only the timeout can end the run early.
	p := core.MustProtocol("ping", []string{"a", "b"}, 0, nil, []core.Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1},
		{A: 1, B: 1, Edge: false, OutA: 0, OutB: 0},
		{A: 0, B: 1, Edge: false, OutA: 1, OutB: 0},
	})
	never := core.Detector{Trigger: core.TriggerInterval, Stable: func(*core.Config) bool { return false }}
	out, err := Execute(context.Background(), []Point{{
		Protocol: "ping", N: 64, Trials: 3, BaseSeed: 1,
		Proto: p, Detector: never,
	}}, Options{Workers: 2, Timeout: 20 * time.Millisecond, KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	agg := out.Aggregates[0]
	if agg.Failures != 3 || agg.Stopped != 3 || agg.Converged != 0 {
		t.Fatalf("timeout aggregate %+v", agg)
	}
	for _, rec := range out.Runs {
		if !rec.Stopped || rec.Converged {
			t.Fatalf("run not stopped by timeout: %+v", rec)
		}
	}
}

func TestExecuteValidates(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	cases := []Point{
		{Protocol: "no-proto", N: 8, Trials: 1},
		{Protocol: "cycle-cover", N: 0, Trials: 1, Proto: cc.Proto},
		{Protocol: "cycle-cover", N: 8, Trials: 0, Proto: cc.Proto},
	}
	for _, pt := range cases {
		if _, err := Execute(context.Background(), []Point{pt}, Options{}); err == nil {
			t.Fatalf("invalid point accepted: %+v", pt)
		}
	}
}

func TestInitialErrorSurfaces(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	boom := func(int) (*core.Config, error) { return nil, context.DeadlineExceeded }
	_, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 8, Trials: 4, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector, Initial: boom,
	}}, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want the initial-builder error", err)
	}
}

func TestMeanMatchesSequentialSemantics(t *testing.T) {
	t.Parallel()
	mm := core.MustProtocol("mm", []string{"a", "b"}, 0, nil, []core.Rule{
		{A: 0, B: 0, Edge: false, OutA: 1, OutB: 1, OutEdge: true},
	})
	det := core.Detector{Trigger: core.TriggerEffective, Stable: func(cfg *core.Config) bool {
		return cfg.Count(0) <= 1
	}}
	mean, failures, err := Mean(mm, 10, 5, 1, core.Options{Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 || mean <= 0 {
		t.Fatalf("mean %f failures %d", mean, failures)
	}
	if _, _, err := Mean(mm, 10, 0, 1, core.Options{Detector: det}); err == nil {
		t.Fatal("trials=0 accepted")
	}
	// A caller-supplied Stop hook must reach the engine: with an
	// always-true hook no run can converge.
	_, failures3, err := Mean(mm, 10, 3, 1, core.Options{
		Detector: det,
		Stop:     func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures3 != 3 {
		t.Fatalf("Stop hook ignored: %d failures, want 3", failures3)
	}
	// A stateful scheduler must still work (forced sequential).
	mean2, failures2, err := Mean(mm, 10, 5, 1, core.Options{
		Detector:  det,
		Scheduler: &core.RoundRobinScheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures2 != 0 || mean2 <= 0 {
		t.Fatalf("round-robin mean %f failures %d", mean2, failures2)
	}
}

func TestSpecCompile(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Trials: 3,
		Seed:   5,
		Items: []Item{
			{Name: "cycle-cover", Sizes: []int{8, 16}},
			{Name: "One-Way-Epidemic", Kind: "process", Sizes: []int{16}},
			{Kind: "replication", Sizes: []int{8}},
		},
		Schedulers: []string{"uniform", "round-robin"},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// (2 + 1 + 1 sizes) × 2 schedulers.
	if len(points) != 8 {
		t.Fatalf("%d points, want 8", len(points))
	}
	if points[0].Protocol != "cycle-cover" || points[0].N != 8 || points[0].Scheduler != "uniform" {
		t.Fatalf("first point %+v", points[0])
	}
	if points[1].NewScheduler == nil {
		t.Fatal("round-robin point has no scheduler factory")
	}
	for _, pt := range points {
		if pt.Protocol == "One-Way-Epidemic" {
			if pt.Expected <= 0 || pt.Initial == nil {
				t.Fatalf("process point not resolved: %+v", pt)
			}
		}
		if pt.Protocol == "graph-replication" && pt.Initial == nil {
			t.Fatalf("replication point has no initial builder")
		}
	}
	// The compiled grid must actually execute.
	out, err := Execute(context.Background(), points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range out.Aggregates {
		if agg.Failures > 0 {
			t.Fatalf("compiled spec run failed: %+v", agg)
		}
	}
}

func TestSpecCompileRejects(t *testing.T) {
	t.Parallel()
	bad := []Spec{
		{Trials: 1},
		{Trials: 0, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover"}}},
		{Trials: 1, Items: []Item{{Name: "nope", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "nope", Kind: "process", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Kind: "wat", Sizes: []int{8}}}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Schedulers: []string{"nope"}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Metric: "nope"},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Engine: "nope"},
		// The indexed engines require the uniform scheduler.
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Engine: "fast", Schedulers: []string{"round-robin"}},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}, Engine: "sparse", Schedulers: []string{"permutation"}},
		// Forced engines must fit their population caps at compile time,
		// not as all-failure aggregates at run time.
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{1 << 16}}}, Engine: "fast"},
		{Trials: 1, Items: []Item{{Name: "cycle-cover", Sizes: []int{1<<20 + 1}}}, Engine: "sparse"},
	}
	for i, spec := range bad {
		if _, err := spec.Compile(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestSpecCompileFaults: the "faults" and "detector" spec fields flow
// into points, with the quiescence default for fault items, and
// invalid combinations are rejected at compile time.
func TestSpecCompileFaults(t *testing.T) {
	t.Parallel()
	plan := &scenario.FaultPlan{Events: []scenario.Fault{{Kind: scenario.KindCrash, Step: 64}}}
	spec := Spec{
		Trials: 2,
		Seed:   1,
		Faults: plan,
		Items:  []Item{{Name: "cycle-cover", Sizes: []int{12}}},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Faults != plan {
		t.Fatalf("compiled points %+v", points)
	}
	// Fault items default to the quiescence detector (gated, so the
	// indexed engines answer it in O(1)).
	if points[0].Detector.Gate != core.GateQuiescence {
		t.Fatalf("fault item detector gate %v, want quiescence", points[0].Detector.Gate)
	}
	out, err := Execute(context.Background(), points, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Aggregates[0].Converged != 2 {
		t.Fatalf("fault spec runs did not converge: %+v", out.Aggregates[0])
	}
	for _, rec := range out.Runs {
		if rec.FaultCrashes != 1 {
			t.Fatalf("fault spec run missed its crash: %+v", rec)
		}
	}

	// Explicit detector override wins over the fault default.
	spec.Detector = "edge-quiescence"
	points, err = spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Detector.Gate != core.GateEdgeQuiescence {
		t.Fatalf("detector override ignored: gate %v", points[0].Detector.Gate)
	}

	// An explicit "target" keeps the registry detector (no gate) even
	// with faults present — only the unset default swaps to quiescence.
	spec.Detector = "target"
	points, err = spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Detector.Gate != core.GateNone {
		t.Fatalf("explicit target detector replaced: gate %v", points[0].Detector.Gate)
	}

	// An explicit empty per-item plan opts the control row out of the
	// spec-level faults (and therefore out of the quiescence default).
	spec.Detector = ""
	spec.Items = []Item{
		{Name: "cycle-cover", Sizes: []int{12}, Faults: &scenario.FaultPlan{Events: []scenario.Fault{}}},
		{Name: "cycle-cover", Sizes: []int{12}},
	}
	points, err = spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Faults != nil || points[0].Detector.Gate != core.GateNone {
		t.Fatalf("control item still carries faults: %+v", points[0])
	}
	if points[1].Faults != plan {
		t.Fatalf("spec-level faults dropped from the second item: %+v", points[1])
	}

	bad := []Spec{
		// Unknown detector name.
		{Trials: 1, Detector: "nope", Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}},
		// Crash faults on items that build their own initial configuration.
		{Trials: 1, Faults: plan, Items: []Item{{Name: "One-Way-Epidemic", Kind: "process", Sizes: []int{16}}}},
		{Trials: 1, Faults: plan, Items: []Item{{Kind: "replication", Sizes: []int{8}}}},
		// Invalid plan.
		{Trials: 1, Faults: &scenario.FaultPlan{Events: []scenario.Fault{{Kind: "boom", Step: 1}}},
			Items: []Item{{Name: "cycle-cover", Sizes: []int{8}}}},
	}
	for i, s := range bad {
		if _, err := s.Compile(); err == nil {
			t.Fatalf("bad fault spec %d accepted", i)
		}
	}
}

// TestSpecCompileSchedulers: the weighted and biased schedulers
// resolve through the factory and stay off the indexed engines.
func TestSpecCompileSchedulers(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Trials:     2,
		Seed:       1,
		Schedulers: []string{"weighted", "biased"},
		Items:      []Item{{Name: "cycle-cover", Sizes: []int{10}}},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].NewScheduler == nil || points[1].NewScheduler == nil {
		t.Fatalf("compiled points %+v", points)
	}
	out, err := Execute(context.Background(), points, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, agg := range out.Aggregates {
		if agg.Converged != 2 {
			t.Fatalf("scheduler point %d did not converge: %+v", i, agg)
		}
	}
	for _, rec := range out.Runs {
		if rec.Engine != "baseline" {
			t.Fatalf("non-uniform scheduler ran on %q", rec.Engine)
		}
	}
	spec.Engine = "fast"
	if _, err := spec.Compile(); err == nil {
		t.Fatal("fast engine with a weighted scheduler accepted")
	}
}

// TestSpecCompileSparseEngine checks the sparse engine flows through a
// spec end to end.
func TestSpecCompileSparseEngine(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Trials: 2,
		Seed:   3,
		Engine: "sparse",
		Items:  []Item{{Name: "cycle-cover", Sizes: []int{12}}},
	}
	points, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Engine != core.EngineSparse {
		t.Fatalf("compiled points %+v", points)
	}
	out, err := Execute(context.Background(), points, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Aggregates[0].Converged != 2 {
		t.Fatalf("sparse spec runs did not converge: %+v", out.Aggregates[0])
	}
	for _, rec := range out.Runs {
		if rec.Engine != "sparse" {
			t.Fatalf("run executed on %q, want sparse", rec.Engine)
		}
	}
}

// TestFaultPointEndToEnd: a crash plan flows through Execute — records
// carry the plan label and per-run fault tallies, the aggregate is
// labelled, and runs still converge (to quiescence) on every engine.
func TestFaultPointEndToEnd(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	plan := &scenario.FaultPlan{Events: []scenario.Fault{
		{Kind: scenario.KindCrash, Step: 30},
		{Kind: scenario.KindEdge, Step: 90},
	}}
	for _, engine := range []core.Engine{core.EngineBaseline, core.EngineFast, core.EngineSparse} {
		out, err := Execute(context.Background(), []Point{{
			Protocol: "cycle-cover", N: 16, Trials: 4, BaseSeed: 1,
			Proto: cc.Proto, Detector: core.QuiescenceDetector(),
			Engine: engine, Faults: plan, Metric: MetricLargestComponent,
		}}, Options{KeepRuns: true})
		if err != nil {
			t.Fatalf("engine=%s: %v", engine, err)
		}
		agg := out.Aggregates[0]
		if agg.Converged != 4 || agg.Faults != plan.String() {
			t.Fatalf("engine=%s: aggregate %+v", engine, agg)
		}
		for _, rec := range out.Runs {
			if rec.Faults != plan.String() || rec.FaultCrashes != 1 {
				t.Fatalf("engine=%s: record misses fault fields: %+v", engine, rec)
			}
			// One node crashed, so at most 15 output nodes survive.
			if rec.Value < 1 || rec.Value > 15 {
				t.Fatalf("engine=%s: implausible largest component %f", engine, rec.Value)
			}
		}
	}
}

// TestFaultPointRejections: crash faults on points with custom initial
// configurations must be rejected (the run protocol is augmented), as
// must invalid plans.
func TestFaultPointRejections(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	crash := &scenario.FaultPlan{Events: []scenario.Fault{{Kind: scenario.KindCrash, Step: 5}}}
	initial := func(int) (*core.Config, error) { return core.NewConfig(cc.Proto, 8), nil }
	if _, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 8, Trials: 1, Proto: cc.Proto,
		Detector: core.QuiescenceDetector(), Faults: crash, Initial: initial,
	}}, Options{}); err == nil {
		t.Fatal("crash plan with a custom initial configuration accepted")
	}
	if _, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 8, Trials: 1, Proto: cc.Proto,
		Faults: &scenario.FaultPlan{},
	}}, Options{}); err == nil {
		t.Fatal("empty fault plan accepted")
	}
}

// TestDynPointExecutes: dynamic-protocol points run through the
// campaign pool, and the campaign's per-run timeout reaches RunDyn via
// the new Stop hook — the cancellation path Section-6 runs previously
// bypassed.
func TestDynPointExecutes(t *testing.T) {
	t.Parallel()
	matching := &core.DynProtocol{
		Name:    "dyn-matching",
		Initial: 0,
		Apply: func(a, b core.DynState, edge bool, _ *core.RNG) (core.DynState, core.DynState, bool, bool) {
			if a == 0 && b == 0 && !edge {
				return 1, 1, true, true
			}
			return a, b, edge, false
		},
	}
	out, err := Execute(context.Background(), []Point{{
		Protocol: "dyn-matching", N: 16, Trials: 6, BaseSeed: 1,
		DynProto: matching,
		DynStable: func(cfg *core.DynConfig) bool {
			for u := 0; u < cfg.N(); u++ {
				if cfg.Node(u) == 0 {
					return false
				}
			}
			return true
		},
		Metric: MetricEffectiveSteps,
	}}, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	agg := out.Aggregates[0]
	if agg.Converged != 6 || agg.Mean != 8 {
		t.Fatalf("dynamic aggregate %+v (a perfect matching on 16 nodes takes exactly 8 effective steps)", agg)
	}
	for _, rec := range out.Runs {
		if rec.Engine != "dynamic" || rec.ConvergenceTime <= 0 {
			t.Fatalf("dynamic record %+v", rec)
		}
	}
}

func TestDynPointTimeoutStops(t *testing.T) {
	t.Parallel()
	busy := &core.DynProtocol{
		Name:    "dyn-busy",
		Initial: 0,
		Apply: func(a, b core.DynState, edge bool, _ *core.RNG) (core.DynState, core.DynState, bool, bool) {
			return a + 1, b + 1, edge, true
		},
	}
	out, err := Execute(context.Background(), []Point{{
		Protocol: "dyn-busy", N: 64, Trials: 2, BaseSeed: 1,
		DynProto:      busy,
		DynStable:     func(*core.DynConfig) bool { return false },
		CheckInterval: 64, // poll the deadline often enough to stop promptly
	}}, Options{Timeout: 20 * time.Millisecond, KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	agg := out.Aggregates[0]
	if agg.Stopped != 2 || agg.Converged != 0 {
		t.Fatalf("dynamic timeout aggregate %+v", agg)
	}
	for _, rec := range out.Runs {
		if !rec.Stopped {
			t.Fatalf("dynamic run not stopped: %+v", rec)
		}
	}
}

func TestDynPointValidation(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	dyn := &core.DynProtocol{Name: "d", Apply: func(a, b core.DynState, e bool, _ *core.RNG) (core.DynState, core.DynState, bool, bool) {
		return a, b, e, false
	}}
	stable := func(*core.DynConfig) bool { return true }
	bad := []Point{
		{Protocol: "d", N: 8, Trials: 1, DynProto: dyn}, // no DynStable
		{Protocol: "d", N: 8, Trials: 1, DynProto: dyn, DynStable: stable, Proto: cc.Proto},
		{Protocol: "d", N: 8, Trials: 1, DynProto: dyn, DynStable: stable, Engine: core.EngineFast},
		{Protocol: "d", N: 8, Trials: 1, DynProto: dyn, DynStable: stable,
			NewScheduler: func() core.Scheduler { return &core.RoundRobinScheduler{} }},
		{Protocol: "d", N: 8, Trials: 1, DynProto: dyn, DynStable: stable,
			Faults: &scenario.FaultPlan{Events: []scenario.Fault{{Kind: scenario.KindReset, Step: 1}}}},
	}
	for i, pt := range bad {
		if _, err := Execute(context.Background(), []Point{pt}, Options{}); err == nil {
			t.Fatalf("invalid dynamic point %d accepted: %+v", i, pt)
		}
	}
}

// TestIncludeUnconverged: budget-exhausted runs fold their metric into
// the aggregate when requested — the survivability convention.
func TestIncludeUnconverged(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	never := core.Detector{Trigger: core.TriggerInterval, Stable: func(*core.Config) bool { return false }}
	out, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 12, Trials: 3, BaseSeed: 1,
		Proto: cc.Proto, Detector: never, MaxSteps: 5000,
		Metric: MetricSteps, IncludeUnconverged: true,
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg := out.Aggregates[0]
	if agg.Converged != 0 || agg.Failures != 3 {
		t.Fatalf("aggregate %+v", agg)
	}
	if agg.Mean != 5000 {
		t.Fatalf("mean %f, want the budget cut 5000 folded in", agg.Mean)
	}
}

func TestFormatFloatNonFinite(t *testing.T) {
	t.Parallel()
	if got := formatFloat(math.NaN()); got != "" {
		t.Fatalf("NaN formatted as %q, want empty cell", got)
	}
	if got := formatFloat(math.Inf(1)); got != "" {
		t.Fatalf("+Inf formatted as %q, want empty cell", got)
	}
	if got := formatFloat(math.Inf(-1)); got != "" {
		t.Fatalf("-Inf formatted as %q, want empty cell", got)
	}
	if got := formatFloat(1234.5); got != "1234.5" {
		t.Fatalf("finite value formatted as %q", got)
	}

	// A NaN metric (dynamic runs have no final configuration for the
	// component metrics) must flow through CSV export as empty cells,
	// not as literal NaN tokens.
	var buf bytes.Buffer
	if err := WriteAggregatesCSV(&buf, []Aggregate{{Protocol: "x", N: 2, Trials: 1, Mean: math.NaN(), Min: math.Inf(-1), Max: math.Inf(1)}}); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("non-finite tokens leaked into CSV:\n%s", s)
	}
}

func TestParseSpec(t *testing.T) {
	t.Parallel()
	src := `{"items":[{"name":"global-star","sizes":[16,32]}],"trials":4,"seed":9,"metric":"steps"}`
	spec, err := ParseSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trials != 4 || spec.Seed != 9 || len(spec.Items) != 1 || spec.Metric != "steps" {
		t.Fatalf("parsed spec %+v", spec)
	}
	if _, err := ParseSpec(strings.NewReader(`{"itemz":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestExportRoundTrip(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	out, err := Execute(context.Background(), []Point{{
		Protocol: "cycle-cover", N: 12, Trials: 4, BaseSeed: 1,
		Proto: cc.Proto, Detector: cc.Detector,
	}}, Options{KeepRuns: true})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAggregatesJSON(&buf, out.Aggregates); err != nil {
		t.Fatal(err)
	}
	var aggs []Aggregate
	if err := json.Unmarshal(buf.Bytes(), &aggs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aggs, out.Aggregates) {
		t.Fatalf("JSON aggregate round trip diverged:\n%+v\nvs\n%+v", aggs, out.Aggregates)
	}

	buf.Reset()
	if err := WriteRunsJSON(&buf, out.Runs); err != nil {
		t.Fatal(err)
	}
	var runs []RunRecord
	if err := json.Unmarshal(buf.Bytes(), &runs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, out.Runs) {
		t.Fatal("JSON runs round trip diverged")
	}

	buf.Reset()
	if err := WriteAggregatesCSV(&buf, out.Aggregates); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "protocol,n,scheduler") {
		t.Fatalf("aggregate CSV:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteRunsCSV(&buf, out.Runs); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "point,protocol,n") {
		t.Fatalf("runs CSV:\n%s", buf.String())
	}
}
