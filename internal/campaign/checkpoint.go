package campaign

// Checkpoint/resume: crash-safe persistence of completed shards. The
// file format is versioned NDJSON — a CheckpointHeader line followed
// by one ShardResult line per completed shard, in shard order — and
// every write replaces the whole file atomically (write a temp file in
// the same directory, fsync, rename over the target), so a SIGKILL at
// any instant leaves either the previous checkpoint or the new one,
// never a torn file. Resume validates the header (schema, spec hash,
// shard granularity, build version) and every shard line against the
// campaign's canonical partition before any work starts, with
// descriptive errors — a malformed or mismatched file is rejected up
// front and can neither crash the pool nor silently corrupt a merge.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// checkpointSchema versions the checkpoint NDJSON format; bump it on
// incompatible record-shape changes (the golden test in
// checkpoint_test.go pins the current shape).
const checkpointSchema = 1

// DefaultCheckpointEvery is the default persistence interval.
const DefaultCheckpointEvery = 30 * time.Second

// CheckpointHeader is the first line of a checkpoint file: the
// identity of the campaign the shards belong to.
type CheckpointHeader struct {
	Schema   int    `json:"schema"`
	SpecHash string `json:"spec_hash"`
	// Version is the VCS revision of the writing binary ("" when built
	// outside a checkout); resume rejects a mismatch when both sides
	// know theirs.
	Version string `json:"version,omitempty"`
	// ShardTrials and Shards pin the shard partition the results were
	// computed under.
	ShardTrials int `json:"shard_trials"`
	Shards      int `json:"shards"`
}

// ShardResult is one completed shard: its identity, its partial
// aggregate (with the raw accumulator state, so it merges exactly),
// and its per-trial records in trial order (replayed on resume so
// OnRun, KeepRuns and the progress counters behave as if the shard had
// just run).
type ShardResult struct {
	Shard
	Agg  Aggregate   `json:"agg"`
	Runs []RunRecord `json:"runs"`
}

// WriteCheckpoint atomically replaces path with a checkpoint file
// holding the header and the given shard results (callers pass them in
// shard order). The write-temp + fsync + rename protocol guarantees
// readers (and crash recovery) always see a complete file.
func WriteCheckpoint(path string, hdr CheckpointHeader, done []ShardResult) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	enc := json.NewEncoder(tmp)
	if err = enc.Encode(hdr); err != nil {
		return fmt.Errorf("campaign: checkpoint: encoding header: %w", err)
	}
	for _, sr := range done {
		if err = enc.Encode(sr); err != nil {
			return fmt.Errorf("campaign: checkpoint: encoding shard %d: %w", sr.Index, err)
		}
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("campaign: checkpoint: fsync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	// Persist the rename itself; best-effort (not all filesystems
	// support fsync on directories).
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpoint parses a checkpoint file. It returns the header and
// the shard results in file order; structural damage (missing header,
// undecodable line) is reported with the failing record's position.
func ReadCheckpoint(path string) (CheckpointHeader, []ShardResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return CheckpointHeader{}, nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var hdr CheckpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return CheckpointHeader{}, nil, fmt.Errorf("campaign: checkpoint %s: unreadable header: %w", path, err)
	}
	var done []ShardResult
	for i := 0; ; i++ {
		var sr ShardResult
		if err := dec.Decode(&sr); err != nil {
			if errors.Is(err, io.EOF) {
				return hdr, done, nil
			}
			return CheckpointHeader{}, nil, fmt.Errorf("campaign: checkpoint %s: unreadable shard record %d: %w", path, i, err)
		}
		done = append(done, sr)
	}
}

// loadResume reads and validates the checkpoint at path against the
// campaign's own header, partition and point list. A missing file is a
// fresh start (nil map, nil error); anything structurally or
// semantically inconsistent is a descriptive error, never a panic.
func loadResume(path string, hdr CheckpointHeader, shards []Shard, points []Point) (map[int]ShardResult, error) {
	got, done, err := ReadCheckpoint(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if got.Schema != hdr.Schema {
		return nil, fmt.Errorf("campaign: checkpoint %s: schema %d, this binary writes schema %d", path, got.Schema, hdr.Schema)
	}
	if got.SpecHash != hdr.SpecHash {
		return nil, fmt.Errorf("campaign: checkpoint %s was written for a different campaign (spec hash %.12s…, want %.12s…)", path, got.SpecHash, hdr.SpecHash)
	}
	if got.ShardTrials != hdr.ShardTrials || got.Shards != hdr.Shards {
		return nil, fmt.Errorf("campaign: checkpoint %s: shard partition %d×%d trials, want %d×%d", path, got.Shards, got.ShardTrials, hdr.Shards, hdr.ShardTrials)
	}
	if got.Version != "" && hdr.Version != "" && got.Version != hdr.Version {
		return nil, fmt.Errorf("campaign: checkpoint %s was written by build %.12s…, this binary is %.12s… (results could diverge; delete the checkpoint to start over)", path, got.Version, hdr.Version)
	}
	resumed := make(map[int]ShardResult, len(done))
	for _, sr := range done {
		if err := validateShardResult(sr, shards, points); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
		}
		if _, dup := resumed[sr.Index]; dup {
			return nil, fmt.Errorf("campaign: checkpoint %s: duplicate record for shard %d", path, sr.Index)
		}
		resumed[sr.Index] = sr
	}
	return resumed, nil
}

// validateShardResult cross-checks one checkpointed shard against the
// canonical partition: identity, record count, and per-record
// point/trial/seed assignment. The collector indexes aggregates and
// points by these fields, so nothing unvalidated reaches it.
func validateShardResult(sr ShardResult, shards []Shard, points []Point) error {
	if sr.Index < 0 || sr.Index >= len(shards) {
		return fmt.Errorf("shard index %d outside the campaign's %d-shard plan", sr.Index, len(shards))
	}
	if want := shards[sr.Index]; sr.Shard != want {
		return fmt.Errorf("shard %d identity %+v does not match the plan's %+v", sr.Index, sr.Shard, want)
	}
	if len(sr.Runs) != sr.Trials {
		return fmt.Errorf("shard %d carries %d run records, want %d", sr.Index, len(sr.Runs), sr.Trials)
	}
	pt := &points[sr.Point]
	for i, rec := range sr.Runs {
		trial := sr.FirstTrial + i
		if rec.Point != sr.Point || rec.Trial != trial || rec.Seed != pt.BaseSeed+uint64(trial) {
			return fmt.Errorf("shard %d run %d is (point=%d trial=%d seed=%d), want (point=%d trial=%d seed=%d)",
				sr.Index, i, rec.Point, rec.Trial, rec.Seed, sr.Point, trial, pt.BaseSeed+uint64(trial))
		}
	}
	if sr.Agg.Trials != sr.Trials || sr.Agg.Converged+sr.Agg.Failures != sr.Agg.Trials {
		return fmt.Errorf("shard %d aggregate counts (trials=%d converged=%d failures=%d) are inconsistent with its %d-trial range",
			sr.Index, sr.Agg.Trials, sr.Agg.Converged, sr.Agg.Failures, sr.Trials)
	}
	if sr.Agg.Protocol != pt.Protocol || sr.Agg.N != pt.N {
		return fmt.Errorf("shard %d aggregate is labelled %s/n=%d, want %s/n=%d",
			sr.Index, sr.Agg.Protocol, sr.Agg.N, pt.Protocol, pt.N)
	}
	return nil
}

// checkpointer is Execute's handle on the checkpoint file: it owns the
// set of completed shards (seeded with the resumed ones, so an early
// second interruption never drops them from the file) and rewrites the
// file atomically at the configured interval and once more at the end.
// It is driven only from the collector goroutine.
type checkpointer struct {
	path      string
	every     time.Duration
	hdr       CheckpointHeader
	done      map[int]ShardResult
	dirty     bool
	lastFlush time.Time
}

func newCheckpointer(path string, every time.Duration, hdr CheckpointHeader) *checkpointer {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return &checkpointer{
		path:      path,
		every:     every,
		hdr:       hdr,
		done:      make(map[int]ShardResult),
		lastFlush: time.Now(),
	}
}

// seed installs the resumed shards without marking the file dirty
// (they are already on disk).
func (c *checkpointer) seed(resumed map[int]ShardResult) {
	for idx, sr := range resumed {
		c.done[idx] = sr
	}
}

// add records a newly completed shard.
func (c *checkpointer) add(sr ShardResult) {
	c.done[sr.Index] = sr
	c.dirty = true
}

// maybeFlush rewrites the file if the interval elapsed since the last
// write and there is something new to persist.
func (c *checkpointer) maybeFlush() error {
	if !c.dirty || time.Since(c.lastFlush) < c.every {
		return nil
	}
	return c.flush()
}

// flush unconditionally rewrites the file when dirty.
func (c *checkpointer) flush() error {
	if !c.dirty {
		return nil
	}
	idxs := make([]int, 0, len(c.done))
	for idx := range c.done {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	ordered := make([]ShardResult, 0, len(idxs))
	for _, idx := range idxs {
		ordered = append(ordered, c.done[idx])
	}
	if err := WriteCheckpoint(c.path, c.hdr, ordered); err != nil {
		return err
	}
	c.dirty = false
	c.lastFlush = time.Now()
	return nil
}
