package campaign

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/processes"
	"repro/internal/protocols"
	"repro/internal/scenario"
)

// Spec is the declarative, JSON-serializable form of a campaign: a
// grid of items crossed with population sizes and schedulers, measured
// over a seed range. It is what cmd/campaign reads from disk and what
// Compile turns into executable points.
//
//	{
//	  "items": [
//	    {"name": "cycle-cover", "sizes": [32, 64, 128]},
//	    {"name": "One-Way-Epidemic", "kind": "process", "sizes": [64]}
//	  ],
//	  "trials": 20,
//	  "seed": 1,
//	  "schedulers": ["uniform"],
//	  "metric": "convergence-time"
//	}
type Spec struct {
	Items []Item `json:"items"`
	// Trials per grid point; seeds are Seed, Seed+1, …, Seed+Trials−1.
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	// Schedulers lists schedule regimes to cross the grid with; empty
	// means just the uniform random scheduler. Known names: "uniform",
	// "round-robin", "permutation", "weighted", "biased". The indexed
	// engines require "uniform"; other schedules run on the baseline
	// path.
	Schedulers []string `json:"schedulers,omitempty"`
	// Metric selects the measured quantity: "convergence-time"
	// (default for protocols), "steps" (default for processes),
	// "effective-steps", "edge-changes", "parallel-time",
	// "largest-component" or "components".
	Metric string `json:"metric,omitempty"`
	// MaxSteps caps each run's interactions; 0 means the engine's
	// per-n default budget.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Engine selects the core execution path: "auto" (default; under
	// the uniform scheduler the fast enabled-pair-index engine up to
	// n=4096 and the sparse state-class engine above it, the baseline
	// loop otherwise), "baseline", "fast", or "sparse".
	Engine string `json:"engine,omitempty"`
	// Detector selects the stability predicate: "target" (default; the
	// registry's per-protocol detector), "quiescence", or
	// "edge-quiescence". Items carrying a fault plan default to
	// "quiescence" instead — target detectors assume the fault-free
	// goal network is reachable, which faults generally break.
	Detector string `json:"detector,omitempty"`
	// Faults, when non-nil, injects this fault plan into every item
	// (overridable per item). See scenario.FaultPlan.
	Faults *scenario.FaultPlan `json:"faults,omitempty"`
	// Topology restricts every item's runs to a permitted interaction
	// graph, in the flag syntax of core.ParseTopologySpec ("complete",
	// "gnp@0.05", "rgg@0.1", "cm@4"); absent means the complete graph.
	// Overridable per item.
	Topology *core.TopologySpec `json:"topology,omitempty"`
	// IncludeUnconverged folds budget-exhausted runs' metric values
	// into the aggregates too (see Point.IncludeUnconverged) — the
	// survivability convention for fault sweeps measured at a fixed
	// MaxSteps budget.
	IncludeUnconverged bool `json:"include_unconverged,omitempty"`
}

// Item is one row of a spec grid: a named protocol or process swept
// over population sizes.
type Item struct {
	// Name is a protocols.Registry key (kind "protocol"), a
	// processes.Registry key (kind "process"), or ignored for kind
	// "replication".
	Name string `json:"name"`
	// Kind is "protocol" (default), "process", or "replication".
	Kind string `json:"kind,omitempty"`
	// Sizes is the population sweep for this item.
	Sizes []int `json:"sizes"`
	// Trials, Metric, Engine, Detector and Faults, when set, override
	// the spec-level values for this item. An explicit empty fault plan
	// ({"events": []}) opts the item out of spec-level faults — the
	// control row of a fault sweep.
	Trials   int                 `json:"trials,omitempty"`
	Metric   string              `json:"metric,omitempty"`
	Engine   string              `json:"engine,omitempty"`
	Detector string              `json:"detector,omitempty"`
	Faults   *scenario.FaultPlan `json:"faults,omitempty"`
	// Topology overrides the spec-level topology for this item. An
	// explicit "complete" opts the item out of a spec-level restriction
	// — the control row of a sparsity sweep.
	Topology *core.TopologySpec `json:"topology,omitempty"`
}

// ParseSpec decodes a JSON spec, rejecting unknown fields.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	return s, nil
}

// SchedulerFactory resolves a scheduler name to a per-run factory
// (stateful schedulers must never be shared across runs). The nil
// factory means the engine's uniform default.
func SchedulerFactory(name string) (func() core.Scheduler, error) {
	switch name {
	case "", "uniform":
		return nil, nil
	case "round-robin":
		return func() core.Scheduler { return &core.RoundRobinScheduler{} }, nil
	case "permutation":
		return func() core.Scheduler { return &core.PermutationScheduler{} }, nil
	case "weighted":
		// Default heterogeneous rates: a quarter of the population runs
		// 4× hot. Callers needing other rates build the scheduler
		// directly.
		return func() core.Scheduler { return &core.WeightedScheduler{} }, nil
	case "biased":
		return func() core.Scheduler { return &core.BiasedScheduler{Cut: 4, Epsilon: 0.1} }, nil
	default:
		return nil, fmt.Errorf("campaign: unknown scheduler %q (known: uniform, round-robin, permutation, weighted, biased)", name)
	}
}

// ParseDetector resolves a detector name. ok reports whether the name
// selects an override; "target" (and "") keep the registry's
// per-protocol detector.
func ParseDetector(name string) (det core.Detector, ok bool, err error) {
	switch name {
	case "", "target":
		return core.Detector{}, false, nil
	case "quiescence":
		return core.QuiescenceDetector(), true, nil
	case "edge-quiescence":
		return core.EdgeQuiescenceDetector(), true, nil
	default:
		return core.Detector{}, false, fmt.Errorf("campaign: unknown detector %q (known: target, quiescence, edge-quiescence)", name)
	}
}

// ParseMetric resolves a metric name to its extractor.
func ParseMetric(name string) (Metric, error) {
	switch name {
	case "convergence-time":
		return MetricConvergenceTime, nil
	case "steps":
		return MetricSteps, nil
	case "effective-steps":
		return MetricEffectiveSteps, nil
	case "edge-changes":
		return MetricEdgeChanges, nil
	case "parallel-time":
		return MetricParallelTime, nil
	case "largest-component":
		return MetricLargestComponent, nil
	case "components":
		return MetricComponents, nil
	default:
		return nil, fmt.Errorf("campaign: unknown metric %q (known: convergence-time, steps, effective-steps, edge-changes, parallel-time, largest-component, components)", name)
	}
}

// Compile resolves the spec against the protocol and process
// registries, returning the point list in deterministic grid order
// (items × sizes × schedulers).
func (s Spec) Compile() ([]Point, error) {
	if len(s.Items) == 0 {
		return nil, fmt.Errorf("campaign: spec has no items")
	}
	if s.Trials < 1 {
		return nil, fmt.Errorf("campaign: spec trials must be ≥ 1")
	}
	schedulers := s.Schedulers
	if len(schedulers) == 0 {
		schedulers = []string{"uniform"}
	}
	var points []Point
	for i, item := range s.Items {
		if len(item.Sizes) == 0 {
			return nil, fmt.Errorf("campaign: item %d (%q) has no sizes", i, item.Name)
		}
		trials := item.Trials
		if trials == 0 {
			trials = s.Trials
		}
		metricName := item.Metric
		if metricName == "" {
			metricName = s.Metric
		}
		engineName := item.Engine
		if engineName == "" {
			engineName = s.Engine
		}
		engine, err := core.ParseEngine(engineName)
		if err != nil {
			return nil, err
		}
		detectorName := item.Detector
		if detectorName == "" {
			detectorName = s.Detector
		}
		detOverride, haveDet, err := ParseDetector(detectorName)
		if err != nil {
			return nil, err
		}
		faults := item.Faults
		switch {
		case faults == nil:
			faults = s.Faults
		case len(faults.Events) == 0:
			// An explicit empty plan ({"events": []}) opts the item out
			// of spec-level faults — the control row of a fault sweep.
			faults = nil
		}
		if faults != nil {
			if err := faults.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: item %d (%q): %w", i, item.Name, err)
			}
		}
		topology := item.Topology
		if topology == nil {
			topology = s.Topology
		}
		if topology != nil && (topology.Kind == "" || topology.Kind == core.TopoComplete) {
			// An explicit "complete" normalizes to the nil spec, so the
			// point — and its records — look exactly like a pre-topology
			// campaign's.
			topology = nil
		}
		for _, n := range item.Sizes {
			for _, schedName := range schedulers {
				factory, err := SchedulerFactory(schedName)
				if err != nil {
					return nil, err
				}
				if (engine == core.EngineFast || engine == core.EngineSparse || engine == core.EngineBatch) && factory != nil {
					return nil, fmt.Errorf("campaign: item %d (%q): the %s engine requires the uniform scheduler, not %q", i, item.Name, engine, schedName)
				}
				if err := engine.ValidateN(n); err != nil {
					return nil, fmt.Errorf("campaign: item %d (%q): %w", i, item.Name, err)
				}
				if err := topology.Validate(n); err != nil {
					return nil, fmt.Errorf("campaign: item %d (%q): %w", i, item.Name, err)
				}
				if topology != nil && (schedName == "weighted" || schedName == "biased") {
					// Mirrors core.Run's whitelist: the rate- and
					// bias-weighted schedulers draw over the full pair space
					// and have no restricted form.
					return nil, fmt.Errorf("campaign: item %d (%q): the %q scheduler does not support a restricted topology", i, item.Name, schedName)
				}
				pt := Point{
					N:                  n,
					Scheduler:          schedName,
					Trials:             trials,
					BaseSeed:           s.Seed,
					MaxSteps:           s.MaxSteps,
					Engine:             engine,
					NewScheduler:       factory,
					Faults:             faults,
					Topology:           topology,
					IncludeUnconverged: s.IncludeUnconverged,
				}
				if pt.Scheduler == "" {
					pt.Scheduler = "uniform"
				}
				if err := resolveItem(&pt, item, metricName); err != nil {
					return nil, err
				}
				switch {
				case haveDet:
					pt.Detector = detOverride
				case detectorName == "" && (faults != nil || topology != nil):
					// Target detectors assume the fault-free complete-graph
					// goal is reachable; under faults or a restricted
					// topology quiescence is the honest default stop rule.
					// An explicit "target" keeps the registry detector.
					pt.Detector = core.QuiescenceDetector()
				}
				if faults.HasCrashes() && pt.Initial != nil {
					return nil, fmt.Errorf("campaign: item %d (%q): crash faults require the default initial configuration (kinds process/replication build their own)", i, item.Name)
				}
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

// resolveItem fills the protocol-dependent fields of a compiled point.
func resolveItem(pt *Point, item Item, metricName string) error {
	switch item.Kind {
	case "", "protocol":
		c, err := protocols.Lookup(item.Name)
		if err != nil {
			return err
		}
		pt.Protocol = item.Name
		pt.Proto = c.Proto
		pt.Detector = c.Detector
		if metricName == "" {
			metricName = "convergence-time"
		}
	case "process":
		proc, err := processes.Lookup(item.Name)
		if err != nil {
			return err
		}
		pt.Protocol = item.Name
		pt.Proto = proc.Proto
		pt.Detector = proc.Detector
		pt.Expected = proc.Expected(pt.N)
		initial, err := proc.Initial(pt.N)
		if err != nil {
			return err
		}
		if initial != nil {
			pt.Initial = func(int) (*core.Config, error) { return initial, nil }
		}
		// For the pure processes the detection step is the convergence
		// step, so "steps" is the faithful default metric.
		if metricName == "" {
			metricName = "steps"
		}
	case "replication":
		// Graph-Replication's input is a ring on ⌊n/2⌋ nodes replicated
		// onto the other half, matching the Table 2 measurement.
		c := protocols.GraphReplication()
		n := pt.N
		g1 := graph.Ring(n / 2)
		pt.Protocol = c.Proto.Name()
		pt.Proto = c.Proto
		pt.Detector = protocols.ReplicationDetector(g1)
		pt.Initial = func(int) (*core.Config, error) {
			return protocols.ReplicationInitial(c.Proto, g1, n)
		}
		if metricName == "" {
			metricName = "convergence-time"
		}
	default:
		return fmt.Errorf("campaign: unknown item kind %q (known: protocol, process, replication)", item.Kind)
	}
	metric, err := ParseMetric(metricName)
	if err != nil {
		return err
	}
	pt.Metric = metric
	// The resolved name keeps the metric choice hashable: SpecHash folds
	// it into checkpoint identity, where the func itself cannot go.
	pt.MetricName = metricName
	return nil
}
