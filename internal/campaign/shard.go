package campaign

// Shard identity and mergeable aggregates — the crash-safety layer
// under checkpoint.go. A campaign's trial space is cut into a
// deterministic partition of shards (consecutive trial ranges of one
// point each); the collector reduces every shard independently
// (sequential Welford adds in trial order) and then merges shards in
// shard order via stats.Online.Merge. Because the partition and the
// merge order are fixed functions of the point list, the reduction
// tree is identical whether a shard's statistics were computed live or
// loaded from a checkpoint — which is what makes a resumed campaign's
// aggregates bit-identical to an uninterrupted run's. The same
// property lets one sweep be split across processes or machines and
// merged deterministically, the enabler for the planned campaignd
// service.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"

	"repro/internal/stats"
)

// DefaultShardTrials is the default shard granularity: every point's
// trial range is cut into runs of this many consecutive trials. The
// partition is part of the reduction topology — multi-shard aggregates
// depend on it in their last floating-point bits — so it only changes
// through Options.ShardTrials, and checkpoints record it (resume
// validates the match).
const DefaultShardTrials = 32

// Shard is one self-describing unit of campaign work: a consecutive
// trial range of one grid point, carrying everything a worker —
// in-process today, a remote one tomorrow — needs to execute it
// standalone and everything a resuming process needs to validate it.
type Shard struct {
	// Index is the shard's position in the campaign's deterministic
	// shard order (point order, then trial order).
	Index int `json:"shard"`
	// Point is the owning point's index; Protocol and N restate its
	// identity so a checkpoint line is interpretable on its own.
	Point    int    `json:"point"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	// FirstTrial and Trials delimit the trial range
	// [FirstTrial, FirstTrial+Trials); FirstSeed is the RNG seed of the
	// range's first trial (seeds increment by one within the range).
	FirstTrial int    `json:"first_trial"`
	Trials     int    `json:"trials"`
	FirstSeed  uint64 `json:"first_seed"`
}

// planShards cuts every point's trial range into consecutive shards of
// at most shardTrials trials, in point order. The result is the
// campaign's canonical partition: shard k covers the global trial ids
// [start(k), start(k)+Trials), with starts increasing in k.
func planShards(points []Point, shardTrials int) []Shard {
	if shardTrials <= 0 {
		shardTrials = DefaultShardTrials
	}
	var shards []Shard
	for p := range points {
		pt := &points[p]
		for first := 0; first < pt.Trials; first += shardTrials {
			trials := shardTrials
			if first+trials > pt.Trials {
				trials = pt.Trials - first
			}
			shards = append(shards, Shard{
				Index:      len(shards),
				Point:      p,
				Protocol:   pt.Protocol,
				N:          pt.N,
				FirstTrial: first,
				Trials:     trials,
				FirstSeed:  pt.BaseSeed + uint64(first),
			})
		}
	}
	return shards
}

// SpecHash is the canonical identity of a compiled campaign: a hash
// over every field of every point that determines the trial outcomes
// and the reduction topology (plus the shard granularity). A
// checkpoint records it, and resume refuses a file whose hash differs
// — merging shards of a different sweep would be silent corruption.
// Caveat: Metric, Initial and the other funcs on Point cannot be
// hashed; spec-compiled campaigns label them through MetricName and
// the item kind, but API callers with anonymous funcs should not share
// checkpoint paths between campaigns that differ only in code.
func SpecHash(points []Point, shardTrials int) string {
	if shardTrials <= 0 {
		shardTrials = DefaultShardTrials
	}
	h := sha256.New()
	fmt.Fprintf(h, "campaign-spec schema=%d shard-trials=%d points=%d\n",
		checkpointSchema, shardTrials, len(points))
	for i := range points {
		pt := &points[i]
		faults := pt.Faults.String()
		var faultSeed uint64
		if pt.Faults != nil {
			faultSeed = pt.Faults.Seed
		}
		fmt.Fprintf(h, "point=%d proto=%q n=%d sched=%q trials=%d seed=%d max=%d check=%d engine=%q metric=%q gate=%d faults=%q faultseed=%d topology=%q unconv=%t dyn=%t init=%t expected=%g\n",
			i, pt.Protocol, pt.N, schedulerLabel(*pt), pt.Trials, pt.BaseSeed,
			pt.MaxSteps, pt.CheckInterval, pt.Engine.String(), pt.MetricName,
			int(pt.Detector.Gate), faults, faultSeed, pt.Topology.Label(), pt.IncludeUnconverged,
			pt.DynProto != nil, pt.Initial != nil, pt.Expected)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// buildVersion returns the VCS revision stamped into the binary, ""
// when built outside a checkout. Checkpoint headers carry it so a
// resume can refuse to merge shards computed by a different build of
// the simulator (the RNG streams could differ).
func buildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
}

// Merge folds the partial aggregate b — another shard of the same
// point, computed live, loaded from a checkpoint, or shipped from
// another process — into a. The integer counters add; the metric
// statistics combine through the Chan/Welford parallel rule
// (stats.Online.Merge), exact in count/min/max and deterministic in
// the moments for a fixed merge order. The identity labels must match;
// a keeps its own metadata (Expected).
func (a *Aggregate) Merge(b Aggregate) error {
	if a.Protocol != b.Protocol || a.N != b.N || a.Scheduler != b.Scheduler || a.Faults != b.Faults || a.Topology != b.Topology {
		return fmt.Errorf("campaign: cannot merge aggregate %s/n=%d/%s/faults=%q/topology=%q into %s/n=%d/%s/faults=%q/topology=%q",
			b.Protocol, b.N, b.Scheduler, b.Faults, b.Topology, a.Protocol, a.N, a.Scheduler, a.Faults, a.Topology)
	}
	a.Trials += b.Trials
	a.Converged += b.Converged
	a.Failures += b.Failures
	a.Stopped += b.Stopped
	a.Panics += b.Panics
	a.TotalSteps += b.TotalSteps
	a.TotalEffectiveSteps += b.TotalEffectiveSteps
	a.TotalSkippedSteps += b.TotalSkippedSteps
	a.FaultsApplied += b.FaultsApplied
	acc := stats.FromState(a.Acc)
	acc.Merge(stats.FromState(b.Acc))
	a.setAcc(acc)
	return nil
}

// setAcc stores the accumulator state and refreshes the summary fields
// derived from it.
func (a *Aggregate) setAcc(o stats.Online) {
	a.Acc = o.State()
	a.Mean = o.Mean()
	a.StdErr = o.StdErr()
	a.StdDev = o.StdDev()
	a.Min = o.Min()
	a.Max = o.Max()
}
