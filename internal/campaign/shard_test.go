package campaign

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/stats"
)

func TestPlanShardsPartition(t *testing.T) {
	t.Parallel()
	points := []Point{
		{Protocol: "a", N: 8, Trials: 1, BaseSeed: 100},
		{Protocol: "b", N: 8, Trials: 32, BaseSeed: 200},
		{Protocol: "c", N: 8, Trials: 33, BaseSeed: 300},
		{Protocol: "d", N: 8, Trials: 100, BaseSeed: 400},
	}
	for _, shardTrials := range []int{0, 1, 7, 32, 1000} {
		shards := planShards(points, shardTrials)
		want := shardTrials
		if want <= 0 {
			want = DefaultShardTrials
		}
		gid, point, nextTrial := 0, 0, 0
		for i, s := range shards {
			if s.Index != i {
				t.Fatalf("shardTrials=%d: shard %d carries index %d", shardTrials, i, s.Index)
			}
			if s.Trials < 1 || s.Trials > want {
				t.Fatalf("shardTrials=%d: shard %d spans %d trials", shardTrials, i, s.Trials)
			}
			// Contiguous coverage in point order, then trial order.
			if s.Point < point || (s.Point == point && s.FirstTrial != nextTrial) {
				t.Fatalf("shardTrials=%d: shard %d = %+v breaks contiguity at point %d trial %d",
					shardTrials, i, s, point, nextTrial)
			}
			if s.Point > point {
				if nextTrial != points[point].Trials {
					t.Fatalf("shardTrials=%d: point %d ended at trial %d of %d", shardTrials, point, nextTrial, points[point].Trials)
				}
				point, nextTrial = s.Point, 0
				if s.FirstTrial != 0 {
					t.Fatalf("shardTrials=%d: shard %d starts point %d at trial %d", shardTrials, i, s.Point, s.FirstTrial)
				}
			}
			pt := points[s.Point]
			if s.Protocol != pt.Protocol || s.N != pt.N || s.FirstSeed != pt.BaseSeed+uint64(s.FirstTrial) {
				t.Fatalf("shardTrials=%d: shard %d identity %+v does not restate its point", shardTrials, i, s)
			}
			nextTrial += s.Trials
			gid += s.Trials
		}
		total := 0
		for _, pt := range points {
			total += pt.Trials
		}
		if gid != total || point != len(points)-1 || nextTrial != points[point].Trials {
			t.Fatalf("shardTrials=%d: partition covers %d of %d trials", shardTrials, gid, total)
		}
	}
}

// TestAggregateMergeMatchesSinglePass is the crash-safety property:
// folding a point's trials shard by shard and merging the shard
// aggregates must match the single-pass fold — exactly in every
// counter and in min/max, within floating-point tolerance in the
// moments.
func TestAggregateMergeMatchesSinglePass(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	newAgg := func() Aggregate { return Aggregate{Protocol: "p", N: 16, Scheduler: "uniform"} }
	fold := func(agg *Aggregate, acc *stats.Online, v float64, converged bool) {
		agg.Trials++
		if converged {
			agg.Converged++
			acc.Add(v)
		} else {
			agg.Failures++
		}
	}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		conv := make([]bool, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1e4
			conv[i] = rng.Intn(8) != 0
		}
		whole := newAgg()
		var wholeAcc stats.Online
		for i := range vals {
			fold(&whole, &wholeAcc, vals[i], conv[i])
		}
		whole.setAcc(wholeAcc)

		merged := newAgg()
		for i := 0; i < n; {
			j := i + 1 + rng.Intn(n-i)
			chunk := newAgg()
			var chunkAcc stats.Online
			for k := i; k < j; k++ {
				fold(&chunk, &chunkAcc, vals[k], conv[k])
			}
			chunk.setAcc(chunkAcc)
			if err := merged.Merge(chunk); err != nil {
				t.Fatal(err)
			}
			i = j
		}
		if merged.Trials != whole.Trials || merged.Converged != whole.Converged ||
			merged.Failures != whole.Failures || merged.Min != whole.Min || merged.Max != whole.Max {
			t.Fatalf("trial %d: counts/min/max diverged:\n%+v\nvs\n%+v", trial, merged, whole)
		}
		if math.Abs(merged.Mean-whole.Mean) > 1e-9*math.Max(1, math.Abs(whole.Mean)) {
			t.Fatalf("trial %d: mean %g vs %g", trial, merged.Mean, whole.Mean)
		}
		if math.Abs(merged.StdDev-whole.StdDev) > 1e-6*math.Max(1, whole.StdDev) {
			t.Fatalf("trial %d: stddev %g vs %g", trial, merged.StdDev, whole.StdDev)
		}
	}
}

func TestAggregateMergeRejectsMismatch(t *testing.T) {
	t.Parallel()
	a := Aggregate{Protocol: "p", N: 16, Scheduler: "uniform"}
	for _, b := range []Aggregate{
		{Protocol: "q", N: 16, Scheduler: "uniform"},
		{Protocol: "p", N: 32, Scheduler: "uniform"},
		{Protocol: "p", N: 16, Scheduler: "round-robin"},
		{Protocol: "p", N: 16, Scheduler: "uniform", Faults: "crash@5"},
	} {
		if err := a.Merge(b); err == nil {
			t.Fatalf("merged mismatched aggregate %+v without error", b)
		}
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	t.Parallel()
	cc := protocols.CycleCover()
	base := func() []Point {
		return []Point{{
			Protocol: "cycle-cover", N: 16, Trials: 8, BaseSeed: 1,
			Proto: cc.Proto, Detector: cc.Detector, MetricName: "convergence-time",
		}}
	}
	h := SpecHash(base(), 32)
	if h != SpecHash(base(), 32) {
		t.Fatal("hash not deterministic")
	}
	if len(h) != 64 || strings.ToLower(h) != h {
		t.Fatalf("hash %q is not lowercase sha256 hex", h)
	}
	mutate := map[string]func(p []Point) []Point{
		"n":       func(p []Point) []Point { p[0].N = 24; return p },
		"trials":  func(p []Point) []Point { p[0].Trials = 9; return p },
		"seed":    func(p []Point) []Point { p[0].BaseSeed = 2; return p },
		"metric":  func(p []Point) []Point { p[0].MetricName = "steps"; return p },
		"proto":   func(p []Point) []Point { p[0].Protocol = "other"; return p },
		"budget":  func(p []Point) []Point { p[0].MaxSteps = 1000; return p },
		"unconv":  func(p []Point) []Point { p[0].IncludeUnconverged = true; return p },
		"expect":  func(p []Point) []Point { p[0].Expected = 3.5; return p },
		"morepts": func(p []Point) []Point { return append(p, p[0]) },
	}
	for name, fn := range mutate {
		if got := SpecHash(fn(base()), 32); got == h {
			t.Fatalf("mutating %s did not change the spec hash", name)
		}
	}
	if SpecHash(base(), 16) == h {
		t.Fatal("changing the shard granularity did not change the spec hash")
	}
}

func TestLocate(t *testing.T) {
	t.Parallel()
	points := []Point{{Trials: 3}, {Trials: 1}, {Trials: 4}}
	offsets := []int{0, 3, 4}
	for gid := 0; gid < 8; gid++ {
		p, tr, err := locate(offsets, points, gid)
		if err != nil {
			t.Fatalf("gid %d: %v", gid, err)
		}
		if got := offsets[p] + tr; got != gid || tr >= points[p].Trials {
			t.Fatalf("gid %d located at point %d trial %d", gid, p, tr)
		}
	}
	for _, gid := range []int{-1, 8, 1000} {
		if _, _, err := locate(offsets, points, gid); err == nil {
			t.Fatalf("gid %d accepted", gid)
		}
	}
}
