package graph

import "math/rand/v2"

// Gnp samples a graph from the Erdős–Rényi model G(n, p): every edge
// present independently with probability p. The universal constructors
// of Section 6 draw their candidate outputs from G(m, 1/2), which makes
// every graph on m vertices equally likely.
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	eg := newEdgeGuard(g)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				eg.add(u, v)
			}
		}
	}
	return g
}

// GnHalf samples a uniformly random graph on n vertices (G(n, 1/2))
// using single fair-coin flips per edge — exactly the experiment the
// paper's constructors perform with the PREL coin.
func GnHalf(n int, coin func() bool) *Graph {
	g := New(n)
	eg := newEdgeGuard(g)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if coin() {
				eg.add(u, v)
			}
		}
	}
	return g
}
