package graph

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	t.Parallel()
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("fresh graph N=%d M=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(-1, 3)
	g.AddEdge(3, 9)
	if g.M() != 1 {
		t.Fatalf("M=%d after duplicate/self/out-of-range inserts", g.M())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(-1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(0) != 1 || g.Degree(4) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestNegativeOrder(t *testing.T) {
	t.Parallel()
	g := New(-3)
	if g.N() != 0 {
		t.Fatalf("negative order gave N=%d", g.N())
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	t.Parallel()
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	edges := g.Edges()
	want := [][2]int{{0, 2}, {1, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges %v, want %v", edges, want)
		}
	}
}

func TestDegreeSequence(t *testing.T) {
	t.Parallel()
	g := Star(5)
	seq := g.DegreeSequence()
	want := []int{1, 1, 1, 1, 4}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("degree sequence %v", seq)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	t.Parallel()
	g := Complete(5)
	sub, mapping := g.InducedSubgraph([]int{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced N=%d M=%d", sub.N(), sub.M())
	}
	if mapping[0] != 1 || mapping[1] != 3 || mapping[2] != 4 {
		t.Fatalf("mapping %v", mapping)
	}
}

func TestCloneAndEqual(t *testing.T) {
	t.Parallel()
	g := Ring(6)
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal")
	}
	c.AddEdge(0, 3)
	if g.Equal(c) {
		t.Fatal("clone mutation affected equality")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("clone shares storage")
	}
}

func TestFromPairs(t *testing.T) {
	t.Parallel()
	ref := Ring(7)
	got := FromPairs(7, ref.HasEdge)
	if !ref.Equal(got) {
		t.Fatalf("FromPairs: %v vs %v", ref, got)
	}
}

func TestFamilies(t *testing.T) {
	t.Parallel()
	if !Line(6).IsSpanningLine() {
		t.Fatal("Line(6) not a spanning line")
	}
	if !Ring(6).IsSpanningRing() {
		t.Fatal("Ring(6) not a spanning ring")
	}
	if !Star(6).IsSpanningStar() {
		t.Fatal("Star(6) not a spanning star")
	}
	if got := Complete(6).M(); got != 15 {
		t.Fatalf("K6 has %d edges", got)
	}
	if Ring(2).M() != 1 {
		t.Fatalf("Ring(2) should degrade to a single edge, got %v", Ring(2))
	}
}

func TestComponents(t *testing.T) {
	t.Parallel()
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component %v", comps[0])
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should count as connected")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !Ring(9).Connected() {
		t.Fatal("ring not connected")
	}
}

func TestString(t *testing.T) {
	t.Parallel()
	s := Line(3).String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "0-1") {
		t.Fatalf("String() = %q", s)
	}
}

// TestGnpDensity checks the sampler's edge density concentrates
// around p.
func TestGnpDensity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(1, 2))
	const n, trials = 40, 30
	total := 0
	for i := 0; i < trials; i++ {
		total += Gnp(n, 0.5, rng).M()
	}
	mean := float64(total) / trials
	want := 0.5 * float64(n*(n-1)/2)
	if mean < want*0.9 || mean > want*1.1 {
		t.Fatalf("G(n,1/2) density %.1f, want ≈ %.1f", mean, want)
	}
	if Gnp(n, 0, rng).M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if g := Gnp(n, 1, rng); g.M() != n*(n-1)/2 {
		t.Fatal("G(n,1) not complete")
	}
}

func TestGnHalfUsesCoin(t *testing.T) {
	t.Parallel()
	calls := 0
	g := GnHalf(6, func() bool {
		calls++
		return calls%2 == 0
	})
	if calls != 15 {
		t.Fatalf("coin called %d times, want 15", calls)
	}
	if g.M() != 7 { // every second of 15 flips
		t.Fatalf("M=%d", g.M())
	}
}

// TestEncodeDecodeRoundTrip is a property test: any graph survives the
// adjacency-bit round trip.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		g := Gnp(3+int(seed%12), 0.4, rng)
		bits := g.EncodeAdjacency()
		back, err := DecodeAdjacency(g.N(), bits)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAdjacencyErrors(t *testing.T) {
	t.Parallel()
	if _, err := DecodeAdjacency(4, []byte{1, 0}); err == nil {
		t.Fatal("wrong-length encoding accepted")
	}
	if _, err := DecodeAdjacency(3, []byte{1, 0, 7}); err == nil {
		t.Fatal("non-bit encoding accepted")
	}
}

func TestOrderFromEncodingLength(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 30; n++ {
		got, err := OrderFromEncodingLength(n * (n - 1) / 2)
		if err != nil || got != n {
			t.Fatalf("l=%d: got %d, %v", n*(n-1)/2, got, err)
		}
	}
	if _, err := OrderFromEncodingLength(2); err == nil {
		t.Fatal("invalid length accepted")
	}
}

func TestDOT(t *testing.T) {
	t.Parallel()
	dot := Line(3).DOT("my graph!", []string{"l", "", "r"})
	for _, want := range []string{"graph \"my_graph_\"", "n0 -- n1", "0:l", "label=\"1\""} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if !strings.Contains(New(0).DOT("", nil), "graph \"G\"") {
		t.Fatal("empty name not defaulted")
	}
}
