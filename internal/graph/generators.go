package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// edgeGuard centralizes the self-loop / multi-edge rejection shared by
// the random-graph generators. Accepted edges are inserted with
// AddEdgeUnchecked, so construction stays O(n + m) instead of paying
// AddEdge's O(deg) duplicate scan per insertion; the guard's seen set
// answers the duplicate check in O(1).
type edgeGuard struct {
	g    *Graph
	seen map[uint64]struct{}
}

func newEdgeGuard(g *Graph) *edgeGuard {
	return &edgeGuard{g: g, seen: make(map[uint64]struct{})}
}

// add inserts {u, v} if it is a valid new simple edge — not a
// self-loop, not already present — and reports whether it did.
func (eg *edgeGuard) add(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := uint64(u)<<32 | uint64(v)
	if _, dup := eg.seen[key]; dup {
		return false
	}
	eg.seen[key] = struct{}{}
	eg.g.AddEdgeUnchecked(u, v)
	return true
}

// RandomGeometric samples a random geometric graph: n points uniform in
// the unit square, an edge between every pair at Euclidean distance at
// most r. Pairs are found with a cell grid of width ≥ r — each point is
// compared only against its own and the adjacent cells — so
// construction is O(n + m) in expectation rather than Θ(n²).
func RandomGeometric(n int, r float64, rng *rand.Rand) *Graph {
	g, _, _ := randomGeometric(n, r, rng)
	return g
}

// randomGeometric also returns the sampled coordinates, so the property
// tests can verify the cell-grid radius query against the O(n²)
// definition.
func randomGeometric(n int, r float64, rng *rand.Rand) (*Graph, []float64, []float64) {
	g := New(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	if n == 0 || r <= 0 {
		return g, xs, ys
	}

	// Cell width 1/cells ≥ r, so points within distance r always sit in
	// the same or adjacent cells. The √n cap keeps the grid O(n) cells
	// even for radii far below the typical nearest-neighbor distance
	// (capping shrinks `cells`, which only widens the cells).
	cells := int(1 / r)
	if max := int(math.Sqrt(float64(n))) + 1; cells > max {
		cells = max
	}
	if cells < 1 {
		cells = 1
	}
	cellOf := func(x float64) int {
		c := int(x * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	grid := make([][]int32, cells*cells)
	for i := 0; i < n; i++ {
		c := cellOf(ys[i])*cells + cellOf(xs[i])
		grid[c] = append(grid[c], int32(i))
	}

	eg := newEdgeGuard(g)
	r2 := r * r
	near := func(u, v int) bool {
		dx, dy := xs[u]-xs[v], ys[u]-ys[v]
		return dx*dx+dy*dy <= r2
	}
	// Each unordered cell pair is scanned exactly once: within-cell
	// pairs with i < j, then the four "forward" neighbor cells.
	forward := [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			base := grid[cy*cells+cx]
			for i := 0; i < len(base); i++ {
				for j := i + 1; j < len(base); j++ {
					if u, v := int(base[i]), int(base[j]); near(u, v) {
						eg.add(u, v)
					}
				}
			}
			for _, d := range forward {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, ui := range base {
					for _, vi := range grid[ny*cells+nx] {
						if u, v := int(ui), int(vi); near(u, v) {
							eg.add(u, v)
						}
					}
				}
			}
		}
	}
	return g, xs, ys
}

// ConfigurationModel samples a simple graph realizing the degree
// sequence degs exactly. The sequence is validated with the
// Erdős–Gallai criterion first; non-graphical sequences (including odd
// total degree) are rejected with an error. Realization draws random
// stub matchings — the configuration model proper — and rejects any
// matching containing a self-loop or multi-edge; if no simple matching
// appears within the attempt budget (possible only for dense
// sequences, where collisions are likely), it falls back to a
// Havel–Hakimi realization mixed by random double-edge swaps, which
// still realizes every degree exactly.
func ConfigurationModel(degs []int, rng *rand.Rand) (*Graph, error) {
	n := len(degs)
	total := 0
	for u, d := range degs {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("graph: degree %d of node %d outside [0, %d]", d, u, n-1)
		}
		total += d
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("graph: degree sequence sums to %d, which is odd", total)
	}
	if !ErdosGallai(degs) {
		return nil, fmt.Errorf("graph: degree sequence is not graphical (Erdős–Gallai)")
	}
	stubs := make([]int32, 0, total)
	for u, d := range degs {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(u))
		}
	}
	const attempts = 200
	for a := 0; a < attempts; a++ {
		g := New(n)
		eg := newEdgeGuard(g)
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		for i := 0; i+1 < len(stubs); i += 2 {
			if !eg.add(int(stubs[i]), int(stubs[i+1])) {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return havelHakimi(degs, rng)
}

// havelHakimi deterministically realizes a graphical degree sequence
// (highest remaining degree connects to the next-highest ones), then
// mixes the edge set with random double-edge swaps — each swap
// preserves every degree — so the fallback is still randomized.
func havelHakimi(degs []int, rng *rand.Rand) (*Graph, error) {
	n := len(degs)
	type rem struct{ node, deg int }
	nodes := make([]rem, n)
	for u, d := range degs {
		nodes[u] = rem{u, d}
	}
	g := New(n)
	eg := newEdgeGuard(g)
	for {
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].deg != nodes[j].deg {
				return nodes[i].deg > nodes[j].deg
			}
			return nodes[i].node < nodes[j].node
		})
		d := nodes[0].deg
		if d == 0 {
			break
		}
		if d >= len(nodes) {
			return nil, fmt.Errorf("graph: degree sequence is not graphical")
		}
		nodes[0].deg = 0
		for i := 1; i <= d; i++ {
			if nodes[i].deg == 0 {
				return nil, fmt.Errorf("graph: degree sequence is not graphical")
			}
			nodes[i].deg--
			eg.add(nodes[0].node, nodes[i].node)
		}
	}
	edges := g.Edges()
	if len(edges) < 2 {
		return g, nil
	}
	key := func(u, v int) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	seen := make(map[uint64]struct{}, len(edges))
	for _, e := range edges {
		seen[key(e[0], e[1])] = struct{}{}
	}
	for t := 0; t < 10*len(edges); t++ {
		i, j := rng.IntN(len(edges)), rng.IntN(len(edges))
		a, b := edges[i][0], edges[i][1]
		c, d := edges[j][0], edges[j][1]
		if rng.IntN(2) == 1 {
			c, d = d, c
		}
		// Rewire {a,b},{c,d} → {a,c},{b,d} when both are valid new edges.
		if a == c || a == d || b == c || b == d {
			continue
		}
		if _, dup := seen[key(a, c)]; dup {
			continue
		}
		if _, dup := seen[key(b, d)]; dup {
			continue
		}
		delete(seen, key(a, b))
		delete(seen, key(c, d))
		seen[key(a, c)] = struct{}{}
		seen[key(b, d)] = struct{}{}
		edges[i] = [2]int{a, c}
		edges[j] = [2]int{b, d}
	}
	out := New(n)
	oeg := newEdgeGuard(out)
	for _, e := range edges {
		oeg.add(e[0], e[1])
	}
	return out, nil
}

// ErdosGallai reports whether a degree sequence is graphical — i.e.
// realizable as a simple undirected graph: every degree in [0, n−1],
// even total, and with d sorted descending,
//
//	Σ_{i≤k} dᵢ ≤ k(k−1) + Σ_{i>k} min(dᵢ, k)   for every k.
//
// O(n log n).
func ErdosGallai(degs []int) bool {
	n := len(degs)
	if n == 0 {
		return true
	}
	d := append([]int(nil), degs...)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	if d[0] >= n || d[n-1] < 0 {
		return false
	}
	prefix := make([]int64, n+1)
	for i, x := range d {
		prefix[i+1] = prefix[i] + int64(x)
	}
	if prefix[n]%2 != 0 {
		return false
	}
	for k := 1; k <= n; k++ {
		// First index ≥ k whose degree is < k (d is sorted descending):
		// entries before it contribute min(dᵢ, k) = k, after it dᵢ.
		lo := k + sort.Search(n-k, func(i int) bool { return d[k+i] < k })
		rhs := int64(k)*int64(k-1) + int64(k)*int64(lo-k) + (prefix[n] - prefix[lo])
		if prefix[k] > rhs {
			return false
		}
	}
	return true
}
