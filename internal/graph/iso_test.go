package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// relabel returns g with vertices permuted by a random permutation.
func relabel(g *Graph, rng *rand.Rand) *Graph {
	perm := rng.Perm(g.N())
	out := New(g.N())
	for _, e := range g.Edges() {
		out.AddEdge(perm[e[0]], perm[e[1]])
	}
	return out
}

// TestIsomorphicToRelabeling is the core property: every graph is
// isomorphic to any relabeling of itself.
func TestIsomorphicToRelabeling(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^7))
		n := 2 + int(seed%14)
		g := Gnp(n, 0.45, rng)
		return Isomorphic(g, relabel(g, rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNonIsomorphicBasics(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		a, b *Graph
	}{
		{"different order", Line(4), Line(5)},
		{"different size", Line(4), Ring(4)},
		{"line vs star", Line(4), Star(4)},
		{"same degree sequence, different structure",
			// Two 2-regular graphs on 6 vertices: C6 vs 2×C3.
			Ring(6), disjoint(Ring(3), Ring(3))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if Isomorphic(tc.a, tc.b) {
				t.Fatalf("%v ≅ %v reported", tc.a, tc.b)
			}
		})
	}
}

func TestIsomorphicSmall(t *testing.T) {
	t.Parallel()
	if !Isomorphic(New(0), New(0)) {
		t.Fatal("empty graphs not isomorphic")
	}
	if !Isomorphic(New(3), New(3)) {
		t.Fatal("edgeless graphs not isomorphic")
	}
	// A path relabeled by reversal.
	a := Line(6)
	b := New(6)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(5-i, 5-(i+1))
	}
	if !Isomorphic(a, b) {
		t.Fatal("reversed path not isomorphic")
	}
}

// TestIsomorphicHardPair exercises the refinement on a classic
// regular pair: the 3-prism (K3×K2) and K3,3 are both 3-regular on 6
// vertices but not isomorphic (K3,3 is triangle-free).
func TestIsomorphicHardPair(t *testing.T) {
	t.Parallel()
	prism := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}, {1, 4}, {2, 5}} {
		prism.AddEdge(e[0], e[1])
	}
	k33 := New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			k33.AddEdge(u, v)
		}
	}
	if Isomorphic(prism, k33) {
		t.Fatal("prism ≅ K3,3 reported")
	}
	rng := rand.New(rand.NewPCG(5, 6))
	if !Isomorphic(k33, relabel(k33, rng)) {
		t.Fatal("K3,3 not isomorphic to its relabeling")
	}
	if !Isomorphic(prism, relabel(prism, rng)) {
		t.Fatal("prism not isomorphic to its relabeling")
	}
}

// TestIsomorphicPetersen: the Petersen graph is vertex-transitive and
// strongly regular — a stress test for the backtracking matcher.
func TestIsomorphicPetersen(t *testing.T) {
	t.Parallel()
	petersen := func() *Graph {
		g := New(10)
		for i := 0; i < 5; i++ {
			g.AddEdge(i, (i+1)%5)     // outer cycle
			g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
			g.AddEdge(i, 5+i)         // spokes
		}
		return g
	}
	p1 := petersen()
	rng := rand.New(rand.NewPCG(11, 13))
	if !Isomorphic(p1, relabel(p1, rng)) {
		t.Fatal("Petersen not isomorphic to its relabeling")
	}
	// 3-regular on 10 vertices but with a triangle: not Petersen.
	other := New(10)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		other.AddEdge(e[0], e[1])
	}
	for _, e := range [][2]int{{3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 3}, {0, 3}, {1, 5}, {2, 7}, {4, 8}, {6, 9}} {
		other.AddEdge(e[0], e[1])
	}
	if p1.DegreeSequence()[0] == other.DegreeSequence()[0] && Isomorphic(p1, other) {
		t.Fatal("Petersen isomorphic to a triangle-containing graph")
	}
}

func TestIsomorphismIsEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(21, 22))
	g := Gnp(9, 0.5, rng)
	h := relabel(g, rng)
	k := relabel(h, rng)
	if !Isomorphic(g, h) || !Isomorphic(h, g) {
		t.Fatal("not symmetric")
	}
	if !Isomorphic(g, k) {
		t.Fatal("not transitive")
	}
	if !Isomorphic(g, g) {
		t.Fatal("not reflexive")
	}
}
