package graph

import "sort"

// Isomorphic reports whether g and h are isomorphic. It uses degree-
// refinement pruning followed by backtracking search, which is fast for
// the small output graphs checked during convergence detection and in
// tests (tens of vertices). It is exact, not heuristic.
func Isomorphic(g, h *Graph) bool {
	if g.n != h.n {
		return false
	}
	if g.n == 0 {
		return true
	}
	if g.M() != h.M() {
		return false
	}
	gSeq, hSeq := g.DegreeSequence(), h.DegreeSequence()
	for i := range gSeq {
		if gSeq[i] != hSeq[i] {
			return false
		}
	}

	gColors := refine(g)
	hColors := refine(h)
	if !sameColorHistogram(gColors, hColors) {
		return false
	}

	// Order g's vertices most-constrained-first (rarest color first,
	// then highest degree) to cut the search space.
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	gHist := colorHistogram(gColors)
	sort.Slice(order, func(a, b int) bool {
		u, v := order[a], order[b]
		if gHist[gColors[u]] != gHist[gColors[v]] {
			return gHist[gColors[u]] < gHist[gColors[v]]
		}
		return g.Degree(u) > g.Degree(v)
	})

	mapping := make([]int, g.n)
	used := make([]bool, h.n)
	for i := range mapping {
		mapping[i] = -1
	}
	return matchNext(g, h, gColors, hColors, order, 0, mapping, used)
}

func matchNext(g, h *Graph, gColors, hColors []uint64, order []int, pos int, mapping []int, used []bool) bool {
	if pos == len(order) {
		return true
	}
	u := order[pos]
	for v := 0; v < h.n; v++ {
		if used[v] || gColors[u] != hColors[v] {
			continue
		}
		if !consistent(g, h, u, v, mapping) {
			continue
		}
		mapping[u] = v
		used[v] = true
		if matchNext(g, h, gColors, hColors, order, pos+1, mapping, used) {
			return true
		}
		mapping[u] = -1
		used[v] = false
	}
	return false
}

// consistent checks that assigning u→v preserves adjacency with every
// already-mapped vertex.
func consistent(g, h *Graph, u, v int, mapping []int) bool {
	for w := 0; w < g.n; w++ {
		mw := mapping[w]
		if mw < 0 || w == u {
			continue
		}
		if g.HasEdge(u, w) != h.HasEdge(v, mw) {
			return false
		}
	}
	return true
}

// refine computes stable vertex colors by iterated neighborhood
// hashing (1-dimensional Weisfeiler–Leman), a strong invariant that
// prunes most non-isomorphic pairs before search.
func refine(g *Graph) []uint64 {
	colors := make([]uint64, g.n)
	for u := range colors {
		colors[u] = uint64(g.Degree(u)) + 1
	}
	next := make([]uint64, g.n)
	buf := make([]uint64, 0, g.n)
	for round := 0; round < g.n; round++ {
		changedClasses := false
		before := countDistinct(colors)
		for u := 0; u < g.n; u++ {
			buf = buf[:0]
			for _, v := range g.adj[u] {
				buf = append(buf, colors[v])
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
			hash := colors[u]*1099511628211 + 14695981039346656037
			for _, c := range buf {
				hash = hash*1099511628211 ^ c
			}
			next[u] = hash
		}
		copy(colors, next)
		if countDistinct(colors) != before {
			changedClasses = true
		}
		if !changedClasses {
			break
		}
	}
	return colors
}

func countDistinct(colors []uint64) int {
	seen := make(map[uint64]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

func colorHistogram(colors []uint64) map[uint64]int {
	hist := make(map[uint64]int, len(colors))
	for _, c := range colors {
		hist[c]++
	}
	return hist
}

func sameColorHistogram(a, b []uint64) bool {
	ha, hb := colorHistogram(a), colorHistogram(b)
	if len(ha) != len(hb) {
		return false
	}
	for c, n := range ha {
		if hb[c] != n {
			return false
		}
	}
	return true
}
