package graph

import "testing"

func TestIsSpanningLine(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), false},
		{"singleton", New(1), true},
		{"single edge", Line(2), true},
		{"path 5", Line(5), true},
		{"ring 5", Ring(5), false},
		{"star 5", Star(5), false},
		{"disconnected paths", disjoint(Line(3), Line(3)), false},
		{"path plus chord", withEdge(Line(5), 0, 2), false},
		{"singleton with phantom edge", withEdge(New(1), 0, 0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := tc.g.IsSpanningLine(); got != tc.want {
				t.Fatalf("IsSpanningLine(%v) = %v", tc.g, got)
			}
		})
	}
}

func TestIsSpanningRing(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"triangle", Ring(3), true},
		{"ring 8", Ring(8), true},
		{"too small", Ring(2), false},
		{"line", Line(6), false},
		{"two triangles", disjoint(Ring(3), Ring(3)), false},
		{"ring with chord", withEdge(Ring(6), 0, 3), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := tc.g.IsSpanningRing(); got != tc.want {
				t.Fatalf("IsSpanningRing(%v) = %v", tc.g, got)
			}
		})
	}
}

func TestIsSpanningStar(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"two nodes", Star(2), true},
		{"star 7", Star(7), true},
		{"singleton", New(1), false},
		{"star plus leaf edge", withEdge(Star(5), 1, 2), false},
		{"path 3 is a star", Line(3), true},
		{"path 4 is not", Line(4), false},
		{"missing leaf", disjoint(Star(4), New(1)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := tc.g.IsSpanningStar(); got != tc.want {
				t.Fatalf("IsSpanningStar(%v) = %v", tc.g, got)
			}
		})
	}
}

func TestIsCycleCover(t *testing.T) {
	t.Parallel()
	if !Ring(5).IsCycleCover() {
		t.Fatal("ring is a cycle cover")
	}
	if !disjoint(Ring(3), Ring(4)).IsCycleCover() {
		t.Fatal("two disjoint cycles are a cycle cover")
	}
	if Line(4).IsCycleCover() {
		t.Fatal("path is not a cycle cover")
	}
	if Ring(2).IsCycleCover() {
		t.Fatal("2-ring is not a cycle cover")
	}
}

func TestIsCycleCoverWithWaste(t *testing.T) {
	t.Parallel()
	full := disjoint(Ring(3), Ring(5))
	if !full.IsCycleCoverWithWaste(2) {
		t.Fatal("exact cover rejected")
	}
	oneIso := disjoint(Ring(4), New(1))
	if !oneIso.IsCycleCoverWithWaste(2) {
		t.Fatal("isolated leftover rejected")
	}
	loneEdge := disjoint(Ring(4), Line(2))
	if !loneEdge.IsCycleCoverWithWaste(2) {
		t.Fatal("lone-edge leftover rejected")
	}
	path3 := disjoint(Ring(4), Line(3))
	if path3.IsCycleCoverWithWaste(2) {
		t.Fatal("3-path leftover accepted (its ends can still close)")
	}
	threeLeft := disjoint(Ring(3), New(1), New(1), New(1))
	if threeLeft.IsCycleCoverWithWaste(2) {
		t.Fatal("three leftovers exceed waste 2")
	}
}

func TestIsKRegularConnected(t *testing.T) {
	t.Parallel()
	if !Ring(7).IsKRegularConnected(2) {
		t.Fatal("ring is 2-regular connected")
	}
	if !Complete(5).IsKRegularConnected(4) {
		t.Fatal("K5 is 4-regular connected")
	}
	if disjoint(Ring(3), Ring(3)).IsKRegularConnected(2) {
		t.Fatal("disjoint rings accepted")
	}
	if Ring(3).IsKRegularConnected(3) {
		t.Fatal("triangle is not 3-regular")
	}
	if Complete(3).IsKRegularConnected(4) {
		t.Fatal("n < k+1 accepted")
	}
	// The cube graph: 3-regular connected on 8 nodes.
	cube := New(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}, {1, 5}, {2, 6}, {3, 7}} {
		cube.AddEdge(e[0], e[1])
	}
	if !cube.IsKRegularConnected(3) {
		t.Fatal("cube not 3-regular connected")
	}
}

func TestIsNearKRegularConnected(t *testing.T) {
	t.Parallel()
	if !Ring(8).IsNearKRegularConnected(2) {
		t.Fatal("exact ring rejected")
	}
	// K4 minus one edge: two nodes of degree 2, two of degree 3 —
	// legal for k=3 (ℓ=2 low nodes of degree 2 ≥ ℓ−1=1).
	nearK4 := Complete(4)
	removeEdge(nearK4, 0, 1)
	if !nearK4.IsNearKRegularConnected(3) {
		t.Fatal("K4 minus an edge rejected for k=3")
	}
	// A node of excess degree disqualifies.
	if withEdge(Ring(6), 0, 3).IsNearKRegularConnected(2) {
		t.Fatal("chord (degree 3) accepted for k=2")
	}
	if disjoint(Ring(4), Ring(4)).IsNearKRegularConnected(2) {
		t.Fatal("disconnected accepted")
	}
}

func TestIsCliquePartition(t *testing.T) {
	t.Parallel()
	if !disjoint(Complete(3), Complete(3)).IsCliquePartition(3) {
		t.Fatal("two triangles rejected")
	}
	if !disjoint(Complete(3), New(1)).IsCliquePartition(3) {
		t.Fatal("leftover isolated node rejected")
	}
	if disjoint(Complete(3), Line(3)).IsCliquePartition(3) {
		t.Fatal("path component accepted as clique")
	}
	if disjoint(Complete(4)).IsCliquePartition(3) {
		t.Fatal("oversized component accepted")
	}
	if !New(2).IsCliquePartition(1) {
		t.Fatal("c=1 should accept isolated nodes")
	}
	if New(2).IsCliquePartition(0) {
		t.Fatal("c=0 accepted")
	}
}

func TestMatchingPredicates(t *testing.T) {
	t.Parallel()
	m := disjoint(Line(2), Line(2), New(1))
	if !m.IsMaximumMatching() {
		t.Fatal("2 disjoint edges on 5 nodes is a maximum matching")
	}
	if !m.IsPerfectMatchingSize(2) {
		t.Fatal("size-2 matching rejected")
	}
	if m.IsPerfectMatchingSize(3) {
		t.Fatal("wrong matching size accepted")
	}
	if Line(3).IsMaximumMatching() {
		t.Fatal("path of 3 accepted as matching")
	}
}

func TestIsSpanning(t *testing.T) {
	t.Parallel()
	if !Ring(5).IsSpanning() || !disjoint(Line(2), Line(2)).IsSpanning() {
		t.Fatal("covered graphs rejected")
	}
	if disjoint(Line(2), New(1)).IsSpanning() {
		t.Fatal("isolated node accepted")
	}
	if New(1).IsSpanning() {
		t.Fatal("singleton cannot be spanning")
	}
}

func TestIsTriangleFree(t *testing.T) {
	t.Parallel()
	if !Ring(4).IsTriangleFree() || !Line(10).IsTriangleFree() {
		t.Fatal("triangle-free graphs rejected")
	}
	if Ring(3).IsTriangleFree() || Complete(5).IsTriangleFree() {
		t.Fatal("triangles not detected")
	}
}

func TestMaxDegree(t *testing.T) {
	t.Parallel()
	if Star(6).MaxDegree() != 5 || New(3).MaxDegree() != 0 || New(0).MaxDegree() != 0 {
		t.Fatal("max degree wrong")
	}
}

// disjoint unions graphs with relabeled vertices.
func disjoint(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	out := New(total)
	offset := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			out.AddEdge(e[0]+offset, e[1]+offset)
		}
		offset += g.N()
	}
	return out
}

func withEdge(g *Graph, u, v int) *Graph {
	c := g.Clone()
	c.AddEdge(u, v)
	return c
}

func removeEdge(g *Graph, u, v int) {
	for i, w := range g.adj[u] {
		if w == v {
			g.adj[u] = append(g.adj[u][:i], g.adj[u][i+1:]...)
			break
		}
	}
	for i, w := range g.adj[v] {
		if w == u {
			g.adj[v] = append(g.adj[v][:i], g.adj[v][i+1:]...)
			break
		}
	}
}
