package graph

// Components returns the connected components as vertex slices, each
// sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent reports the size of the largest connected component
// and the total number of components in one BFS pass — the
// single-traversal variant of Components for callers needing only the
// two summary numbers (isolated vertices count as size-1 components;
// the empty graph reports 0, 0).
func (g *Graph) LargestComponent() (size, count int) {
	seen := make([]bool, g.n)
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		count++
		seen[s] = true
		queue = append(queue[:0], s)
		sz := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					sz++
				}
			}
		}
		if sz > size {
			size = sz
		}
	}
	return size, count
}

// Connected reports whether the graph is connected (the empty graph and
// singletons count as connected).
func (g *Graph) Connected() bool {
	return g.n <= 1 || len(g.Components()) == 1
}

// insertionSort keeps the tiny-component common case allocation-free
// compared with sort.Ints' interface indirection.
func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
