package graph

// Components returns the connected components as vertex slices, each
// sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the graph is connected (the empty graph and
// singletons count as connected).
func (g *Graph) Connected() bool {
	return g.n <= 1 || len(g.Components()) == 1
}

// insertionSort keeps the tiny-component common case allocation-free
// compared with sort.Ints' interface indirection.
func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
