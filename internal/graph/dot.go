package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. labels, when non-nil,
// supplies a display label per vertex (e.g. the node's protocol state);
// missing entries fall back to the vertex index.
func (g *Graph) DOT(name string, labels []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", sanitizeDOTName(name))
	sb.WriteString("  layout=circo;\n")
	for u := 0; u < g.n; u++ {
		label := fmt.Sprintf("%d", u)
		if u < len(labels) && labels[u] != "" {
			label = fmt.Sprintf("%d:%s", u, labels[u])
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", u, label)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -- n%d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sanitizeDOTName(name string) string {
	if name == "" {
		return "G"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
