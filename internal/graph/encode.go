package graph

import (
	"errors"
	"fmt"
)

// EncodeAdjacency returns the upper-triangular adjacency-matrix bit
// string of g, row by row — the input format the paper's TMs receive
// (length l = n(n−1)/2, so l = Θ(n²)).
func (g *Graph) EncodeAdjacency() []byte {
	bits := make([]byte, 0, g.n*(g.n-1)/2)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.HasEdge(u, v) {
				bits = append(bits, 1)
			} else {
				bits = append(bits, 0)
			}
		}
	}
	return bits
}

// DecodeAdjacency reconstructs a graph on n vertices from its
// upper-triangular bit string.
func DecodeAdjacency(n int, bits []byte) (*Graph, error) {
	want := n * (n - 1) / 2
	if len(bits) != want {
		return nil, fmt.Errorf("graph: adjacency encoding for n=%d needs %d bits, got %d", n, want, len(bits))
	}
	g := New(n)
	i := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			switch bits[i] {
			case 0:
			case 1:
				g.AddEdge(u, v)
			default:
				return nil, errors.New("graph: adjacency encoding contains a non-bit value")
			}
			i++
		}
	}
	return g, nil
}

// OrderFromEncodingLength inverts l = n(n−1)/2, returning the vertex
// count for a valid encoding length.
func OrderFromEncodingLength(l int) (int, error) {
	n := 1
	for n*(n-1)/2 < l {
		n++
	}
	if n*(n-1)/2 != l {
		return 0, fmt.Errorf("graph: %d is not a valid adjacency encoding length", l)
	}
	return n, nil
}
