package graph

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// TestRandomGeometricMatchesBruteForce pins the cell-grid radius query
// to the O(n²) definition: an edge exists iff the sampled points are
// within distance r.
func TestRandomGeometricMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n int
		r float64
	}{
		{0, 0.1}, {1, 0.1}, {2, 1.5}, {50, 0.05}, {200, 0.1}, {200, 0.4}, {64, 0.9},
	} {
		rng := rand.New(rand.NewPCG(7, uint64(tc.n)))
		g, xs, ys := randomGeometric(tc.n, tc.r, rng)
		r2 := tc.r * tc.r
		for u := 0; u < tc.n; u++ {
			for v := u + 1; v < tc.n; v++ {
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				want := dx*dx+dy*dy <= r2
				if got := g.HasEdge(u, v); got != want {
					t.Fatalf("n=%d r=%g: edge {%d,%d} = %t, distance says %t", tc.n, tc.r, u, v, got, want)
				}
			}
		}
	}
}

// TestRandomGeometricEdgeDensity checks the edge count concentrates
// around its expectation. For points uniform in the unit square the
// per-pair connection probability is the boundary-corrected
//
//	p(r) = πr² − 8r³/3 + r⁴/2   (r ≤ 1)
//
// so E[m] = C(n,2)·p(r); averaging over many seeds must land within a
// few relative percent.
func TestRandomGeometricEdgeDensity(t *testing.T) {
	n, r := 400, 0.08
	pr := math.Pi*r*r - 8*r*r*r/3 + r*r*r*r/2
	want := float64(n) * float64(n-1) / 2 * pr
	const reps = 30
	total := 0.0
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewPCG(uint64(rep)+1, 99))
		total += float64(RandomGeometric(n, r, rng).M())
	}
	got := total / reps
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("mean edge count %.1f, expected %.1f (relative error %.3f > 0.05)", got, want, rel)
	}
}

// TestConfigurationModelRealizesDegrees verifies the sampled graph is
// simple and realizes every requested degree exactly, across regimes
// that exercise both the stub-matching path and (for near-complete
// sequences) the Havel–Hakimi fallback.
func TestConfigurationModelRealizesDegrees(t *testing.T) {
	cases := [][]int{
		{},
		{0, 0, 0},
		{1, 1},
		{2, 2, 2, 2, 2},             // a cycle's sequence
		{4, 4, 4, 4, 4, 4, 4, 4},    // regular, sparse enough to match
		{3, 3, 3, 3},                // K4: every stub matching must be perfect
		{5, 5, 5, 5, 5, 5},          // K6 — forces the fallback with high probability
		{6, 2, 2, 2, 2, 1, 1, 1, 1}, // skewed
	}
	for i, degs := range cases {
		rng := rand.New(rand.NewPCG(11, uint64(i)))
		g, err := ConfigurationModel(append([]int(nil), degs...), rng)
		if err != nil {
			t.Fatalf("case %d %v: %v", i, degs, err)
		}
		if g.N() != len(degs) {
			t.Fatalf("case %d: got %d nodes, want %d", i, g.N(), len(degs))
		}
		for u, d := range degs {
			if g.Degree(u) != d {
				t.Fatalf("case %d %v: node %d has degree %d, want %d", i, degs, u, g.Degree(u), d)
			}
		}
		// Simplicity: no duplicate neighbors, no self-loops.
		for u := 0; u < g.N(); u++ {
			nbrs := g.Neighbors(u)
			sort.Ints(nbrs)
			for j, v := range nbrs {
				if v == u {
					t.Fatalf("case %d: self-loop at %d", i, u)
				}
				if j > 0 && nbrs[j-1] == v {
					t.Fatalf("case %d: duplicate edge {%d,%d}", i, u, v)
				}
			}
		}
	}
}

// TestConfigurationModelRejectsNonGraphical covers the validation
// failures: out-of-range degrees, odd totals, and sequences with even
// total that still violate Erdős–Gallai.
func TestConfigurationModelRejectsNonGraphical(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i, degs := range [][]int{
		{3, 1},          // degree ≥ n
		{-1, 1},         // negative
		{1, 1, 1},       // odd total
		{3, 3, 1, 1},    // even total, fails Erdős–Gallai at k=2
		{4, 4, 4, 1, 1}, // ditto
	} {
		if _, err := ConfigurationModel(degs, rng); err == nil {
			t.Fatalf("case %d %v: want error, got graph", i, degs)
		}
	}
}

// TestErdosGallai pins the criterion on known graphical and
// non-graphical sequences.
func TestErdosGallai(t *testing.T) {
	for _, tc := range []struct {
		degs []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1, 1}, true},
		{[]int{2, 2, 2}, true},
		{[]int{3, 3, 3, 3}, true},
		{[]int{3, 3, 2, 2, 2, 2, 1, 1}, true},
		{[]int{1}, false},          // odd total
		{[]int{3, 3, 1, 1}, false}, // the classic EG failure
		{[]int{4, 4, 4, 1, 1}, false},
		{[]int{5, 1, 1, 1, 1, 1}, true}, // star K1,5
		{[]int{5, 5, 1, 1, 1, 1}, false},
	} {
		if got := ErdosGallai(tc.degs); got != tc.want {
			t.Errorf("ErdosGallai(%v) = %t, want %t", tc.degs, got, tc.want)
		}
	}
}

// TestLargestComponentAgreesWithComponents cross-checks the one-pass
// variant against the full decomposition on random graphs spanning the
// connectivity transition.
func TestLargestComponentAgreesWithComponents(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.05, 0.5, 1} {
		rng := rand.New(rand.NewPCG(3, uint64(p*1000)))
		g := Gnp(60, p, rng)
		size, count := g.LargestComponent()
		comps := g.Components()
		wantCount := len(comps)
		wantSize := 0
		for _, c := range comps {
			if len(c) > wantSize {
				wantSize = len(c)
			}
		}
		if size != wantSize || count != wantCount {
			t.Fatalf("p=%g: LargestComponent = (%d, %d), Components says (%d, %d)", p, size, count, wantSize, wantCount)
		}
	}
	if size, count := New(0).LargestComponent(); size != 0 || count != 0 {
		t.Fatalf("empty graph: got (%d, %d), want (0, 0)", size, count)
	}
}
