// Package graph provides the undirected-graph substrate used across the
// reproduction: construction from simulator configurations, the target-
// network predicates of Section 3.2 (spanning line/ring/star, cycle
// cover, k-regular connected, clique partition), connectivity,
// isomorphism for output checking, the G(n,p) random-graph model used
// by the universal constructors, adjacency-matrix bit encodings (the TM
// input format of Section 6), and DOT rendering for figures.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a simple undirected graph on vertex set {0, …, N−1} with an
// adjacency-list representation. The zero value is the empty graph on
// zero vertices.
type Graph struct {
	n   int
	adj [][]int
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// AddEdge inserts the undirected edge {u, v}; duplicate insertions and
// self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n || g.HasEdge(u, v) {
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// AddEdgeUnchecked inserts the undirected edge {u, v} without
// AddEdge's duplicate scan: O(1). The caller must guarantee u ≠ v,
// both endpoints in range, and that the edge is not already present —
// e.g. when streaming each edge exactly once from
// core.Config.ForEachActiveEdge.
func (g *Graph) AddEdgeUnchecked(u, v int) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns a copy of u's adjacency list.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, len(g.adj[u]))
	copy(out, g.adj[u])
	return out
}

// DegreeSequence returns the sorted (ascending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.n)
	for u := range seq {
		seq[u] = len(g.adj[u])
	}
	sort.Ints(seq)
	return seq
}

// Edges returns the edge list with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled 0..len(vs)−1 in the order given, along with the mapping
// from new labels to original ones.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	index := make(map[int]int, len(vs))
	mapping := make([]int, len(vs))
	for i, v := range vs {
		index[v] = i
		mapping[i] = v
	}
	sub := New(len(vs))
	for i, v := range vs {
		for _, w := range g.adj[v] {
			if j, ok := index[w]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, mapping
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	return c
}

// Equal reports whether g and h are identical as labeled graphs.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.M() != h.M() {
		return false
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if !h.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "n=5 edges=[0-1 1-2 …]".
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d edges=[", g.n)
	for i, e := range g.Edges() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d-%d", e[0], e[1])
	}
	sb.WriteByte(']')
	return sb.String()
}

// FromPairs builds a graph on n vertices from an edge oracle, querying
// every unordered pair once. It adapts simulator configurations (or any
// other adjacency source) without coupling this package to them.
func FromPairs(n int, hasEdge func(u, v int) bool) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if hasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Line returns the path graph on n vertices (0−1−2−…).
func Line(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		g.AddEdge(u, u+1)
	}
	return g
}

// Ring returns the cycle graph on n vertices.
func Ring(n int) *Graph {
	g := Line(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star graph with center 0 and n−1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for u := 1; u < n; u++ {
		g.AddEdge(0, u)
	}
	return g
}

// Complete returns the complete graph on n vertices.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}
