package graph

// Predicates for the target networks of Section 3.2. Each runs in
// O(n + m) and is used both by convergence detectors and by tests.

// IsSpanningLine reports whether g is a path spanning all vertices:
// connected, two vertices of degree 1, the rest of degree 2 (with the
// degenerate cases: a single vertex and a single edge are lines).
func (g *Graph) IsSpanningLine() bool {
	switch g.n {
	case 0:
		return false
	case 1:
		return g.M() == 0
	}
	if g.M() != g.n-1 {
		return false
	}
	deg1 := 0
	for u := 0; u < g.n; u++ {
		switch g.Degree(u) {
		case 1:
			deg1++
		case 2:
		default:
			return false
		}
	}
	return deg1 == 2 && g.Connected()
}

// IsSpanningRing reports whether g is a cycle spanning all vertices:
// connected and 2-regular. Rings require n ≥ 3.
func (g *Graph) IsSpanningRing() bool {
	if g.n < 3 || g.M() != g.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if g.Degree(u) != 2 {
			return false
		}
	}
	return g.Connected()
}

// IsSpanningStar reports whether g is a star spanning all vertices: one
// center of degree n−1 and n−1 leaves of degree 1. Stars require n ≥ 2.
func (g *Graph) IsSpanningStar() bool {
	if g.n < 2 || g.M() != g.n-1 {
		return false
	}
	centers, leaves := 0, 0
	for u := 0; u < g.n; u++ {
		switch g.Degree(u) {
		case g.n - 1:
			centers++
		case 1:
			leaves++
		default:
			return false
		}
	}
	if g.n == 2 {
		// Both vertices have degree 1 = n−1; a single edge is a star.
		return true
	}
	return centers == 1 && leaves == g.n-1
}

// IsCycleCover reports whether g is a node-disjoint union of cycles
// covering every vertex (every vertex has degree exactly 2).
func (g *Graph) IsCycleCover() bool {
	if g.n < 3 {
		return false
	}
	for u := 0; u < g.n; u++ {
		if g.Degree(u) != 2 {
			return false
		}
	}
	return true
}

// IsCycleCoverWithWaste reports whether at least n−waste vertices have
// degree exactly 2 and the remaining form a legal residue: each
// non-covered vertex has degree 0 or is one endpoint of a single
// isolated active edge. This matches Theorem 5's guarantee (waste 2).
func (g *Graph) IsCycleCoverWithWaste(waste int) bool {
	var leftovers []int
	for u := 0; u < g.n; u++ {
		if g.Degree(u) != 2 {
			leftovers = append(leftovers, u)
		}
	}
	if len(leftovers) > waste {
		return false
	}
	// Residue legality: leftover vertices may only connect to each
	// other, forming isolated vertices or a lone edge.
	for _, u := range leftovers {
		switch g.Degree(u) {
		case 0:
		case 1:
			v := g.adj[u][0]
			if g.Degree(v) == 2 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// IsKRegularConnected reports whether g is connected and k-regular.
func (g *Graph) IsKRegularConnected(k int) bool {
	if g.n < k+1 {
		return false
	}
	for u := 0; u < g.n; u++ {
		if g.Degree(u) != k {
			return false
		}
	}
	return g.Connected()
}

// IsNearKRegularConnected checks Theorem 11's guarantee: connected,
// at least n−k+1 vertices of degree exactly k, and each of the
// remaining ℓ ≤ k−1 vertices of degree between ℓ−1 and k−1.
func (g *Graph) IsNearKRegularConnected(k int) bool {
	if g.n < k+1 || !g.Connected() {
		return false
	}
	var low []int
	for u := 0; u < g.n; u++ {
		d := g.Degree(u)
		switch {
		case d == k:
		case d < k:
			low = append(low, u)
		default:
			return false
		}
	}
	l := len(low)
	if l > k-1 {
		return false
	}
	for _, u := range low {
		if d := g.Degree(u); d < l-1 || d > k-1 {
			return false
		}
	}
	return true
}

// IsCliquePartition reports whether g is a disjoint union of ⌊n/c⌋
// cliques of order c, with the n mod c leftover vertices isolated.
func (g *Graph) IsCliquePartition(c int) bool {
	if c < 1 {
		return false
	}
	comps := g.Components()
	cliques := 0
	for _, comp := range comps {
		switch {
		case len(comp) == 1:
			// Isolated leftover (or a trivial clique when c == 1).
			if c == 1 {
				cliques++
			}
		case len(comp) == c:
			sub, _ := g.InducedSubgraph(comp)
			if sub.M() != c*(c-1)/2 {
				return false
			}
			cliques++
		default:
			return false
		}
	}
	leftovers := g.n - cliques*c
	return cliques == g.n/c && leftovers == g.n%c
}

// IsPerfectMatchingSize reports whether g is a matching of exactly m
// edges: m disjoint edges, all other vertices isolated.
func (g *Graph) IsPerfectMatchingSize(m int) bool {
	if g.M() != m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if g.Degree(u) > 1 {
			return false
		}
	}
	return true
}

// IsMaximumMatching reports whether g is a matching of ⌊n/2⌋ edges.
func (g *Graph) IsMaximumMatching() bool {
	return g.IsPerfectMatchingSize(g.n / 2)
}

// IsSpanning reports whether every vertex has at least one incident
// edge (the "spanning network" of Theorem 1).
func (g *Graph) IsSpanning() bool {
	if g.n < 2 {
		return false
	}
	for u := 0; u < g.n; u++ {
		if g.Degree(u) == 0 {
			return false
		}
	}
	return true
}

// IsTriangleFree reports whether g contains no 3-cycle. O(n·m).
func (g *Graph) IsTriangleFree() bool {
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if v < u {
				continue
			}
			for _, w := range g.adj[v] {
				if w > v && g.HasEdge(u, w) {
					return false
				}
			}
		}
	}
	return true
}

// MaxDegree returns the maximum vertex degree (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}
