package processes

import (
	"testing"

	"repro/internal/core"
)

// measure runs a process `trials` times and returns the mean detection
// step.
func measure(t *testing.T, proc Process, n, trials int) float64 {
	t.Helper()
	needsOneA := proc.Proto.Name() == "One-Way-Epidemic" || proc.Proto.Name() == "Meet-Everybody"
	var total float64
	for seed := 1; seed <= trials; seed++ {
		opts := core.Options{Seed: uint64(seed), Detector: proc.Detector}
		if needsOneA {
			initial, err := InitialWithOneA(proc.Proto, n)
			if err != nil {
				t.Fatal(err)
			}
			opts.Initial = initial
		}
		res, err := core.Run(proc.Proto, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s n=%d seed=%d: no convergence", proc.Proto.Name(), n, seed)
		}
		total += float64(res.Steps)
	}
	return total / float64(trials)
}

// TestMeasuredMatchesAnalytic validates Propositions 1–7: the measured
// mean convergence time must lie within a tolerance band of the
// analytic expectation. Tolerances reflect each process's variance
// (the geometric tail of "the last two nodes must meet" dominates the
// eliminations).
func TestMeasuredMatchesAnalytic(t *testing.T) {
	t.Parallel()
	const n = 48
	cases := []struct {
		proc      Process
		trials    int
		tolerance float64
	}{
		{OneWayEpidemic(), 60, 0.20},
		{OneToOneElimination(), 120, 0.25},
		{MaximumMatching(), 120, 0.25},
		{OneToAllElimination(), 60, 0.20},
		{MeetEverybody(), 40, 0.20},
		{NodeCover(), 60, 0.25},
		{EdgeCover(), 30, 0.15},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.proc.Proto.Name(), func(t *testing.T) {
			t.Parallel()
			mean := measure(t, tc.proc, n, tc.trials)
			want := tc.proc.Expected(n)
			ratio := mean / want
			if ratio < 1-tc.tolerance || ratio > 1+tc.tolerance {
				t.Fatalf("measured %f vs analytic %f (ratio %.3f beyond ±%.0f%%)",
					mean, want, ratio, 100*tc.tolerance)
			}
		})
	}
}

// TestExpectedFormulaSanity spot-checks the closed forms against
// hand-computed tiny cases.
func TestExpectedFormulaSanity(t *testing.T) {
	t.Parallel()
	// One-way epidemic on n=2: the only pair converts in 1 step.
	if got := OneWayEpidemic().Expected(2); got != 1 {
		t.Fatalf("epidemic E[X] for n=2 = %f, want 1", got)
	}
	// One-to-one elimination on n=2: the pair must meet once.
	if got := OneToOneElimination().Expected(2); got != 1 {
		t.Fatalf("elimination E[X] for n=2 = %f, want 1", got)
	}
	// Edge cover on n=2: one edge, activated on the first step.
	if got := EdgeCover().Expected(2); got != 1 {
		t.Fatalf("edge cover E[X] for n=2 = %f, want 1", got)
	}
	// Maximum matching on n=4: 1/p0 + 1/p1 = 12/12·... p0 = 12/12 = 1
	// with 4 choose 2 = 6 pairs all a–a: p0 = 1, p1 = 1/6 → E = 7.
	if got := MaximumMatching().Expected(4); got != 7 {
		t.Fatalf("matching E[X] for n=4 = %f, want 7", got)
	}
}

// TestExpectedMonotone: every closed form is increasing in n.
func TestExpectedMonotone(t *testing.T) {
	t.Parallel()
	for _, proc := range All() {
		prev := 0.0
		for n := 2; n <= 64; n *= 2 {
			cur := proc.Expected(n)
			if cur <= prev {
				t.Fatalf("%s: E[X] not increasing at n=%d (%f ≤ %f)", proc.Proto.Name(), n, cur, prev)
			}
			prev = cur
		}
	}
}

// TestThetaMetadata: the declared Θ-classes and exponents match the
// paper's Table 1.
func TestThetaMetadata(t *testing.T) {
	t.Parallel()
	want := map[string]struct {
		theta    string
		exponent float64
	}{
		"One-Way-Epidemic":       {"Θ(n log n)", 1},
		"One-To-One-Elimination": {"Θ(n²)", 2},
		"Maximum-Matching":       {"Θ(n²)", 2},
		"One-To-All-Elimination": {"Θ(n log n)", 1},
		"Meet-Everybody":         {"Θ(n² log n)", 2},
		"Node-Cover":             {"Θ(n log n)", 1},
		"Edge-Cover":             {"Θ(n² log n)", 2},
	}
	procs := All()
	if len(procs) != len(want) {
		t.Fatalf("%d processes, want %d", len(procs), len(want))
	}
	for _, proc := range procs {
		w, ok := want[proc.Proto.Name()]
		if !ok {
			t.Fatalf("unexpected process %q", proc.Proto.Name())
		}
		if proc.Theta != w.theta || proc.Exponent != w.exponent {
			t.Fatalf("%s: Θ=%q exp=%f, want %q/%f",
				proc.Proto.Name(), proc.Theta, proc.Exponent, w.theta, w.exponent)
		}
	}
}

// TestEpidemicSpreadsMonotonically: the infected count never
// decreases.
func TestEpidemicSpreadsMonotonically(t *testing.T) {
	t.Parallel()
	proc := OneWayEpidemic()
	a, _ := proc.Proto.StateIndex("a")
	last := 0
	obs := observerFunc(func(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
		cur := cfg.Count(a)
		if cur < last {
			t.Fatalf("step %d: infected count dropped %d → %d", step, last, cur)
		}
		last = cur
	})
	initial, err := InitialWithOneA(proc.Proto, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(proc.Proto, 30, core.Options{Seed: 3, Detector: proc.Detector, Initial: initial, Observer: obs}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchingIsMatching: the final active graph of the matching
// process is a maximum matching.
func TestMatchingIsMatching(t *testing.T) {
	t.Parallel()
	proc := MaximumMatching()
	for _, n := range []int{2, 5, 10, 17} {
		res, err := core.Run(proc.Proto, n, core.Options{Seed: 2, Detector: proc.Detector})
		if err != nil {
			t.Fatal(err)
		}
		edges := 0
		for u := 0; u < n; u++ {
			if d := res.Final.Degree(u); d > 1 {
				t.Fatalf("n=%d: node %d has matching degree %d", n, u, d)
			} else if d == 1 {
				edges++
			}
		}
		if edges/2 != n/2 {
			t.Fatalf("n=%d: %d matched pairs, want %d", n, edges/2, n/2)
		}
	}
}

// TestEdgeCoverActivatesAll: the edge cover ends with the complete
// graph active.
func TestEdgeCoverActivatesAll(t *testing.T) {
	t.Parallel()
	proc := EdgeCover()
	const n = 12
	res, err := core.Run(proc.Proto, n, core.Options{Seed: 1, Detector: proc.Detector})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final.ActiveEdges(); got != n*(n-1)/2 {
		t.Fatalf("%d active edges, want %d", got, n*(n-1)/2)
	}
}

func TestInitialWithOneAValidation(t *testing.T) {
	t.Parallel()
	bad := core.MustProtocol("bad", []string{"x"}, 0, nil, nil)
	if _, err := InitialWithOneA(bad, 4); err == nil {
		t.Fatal("protocol without state a accepted")
	}
}

type observerFunc func(step int64, u, v int, edgeChanged bool, cfg *core.Config)

func (f observerFunc) ObserveStep(step int64, u, v int, edgeChanged bool, cfg *core.Config) {
	f(step, u, v, edgeChanged, cfg)
}
