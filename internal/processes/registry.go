package processes

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Registry maps process names (the Proto.Name of each Table 1 process)
// to their Process values, for campaign specs and CLI tools.
func Registry() map[string]Process {
	reg := make(map[string]Process)
	for _, proc := range All() {
		reg[proc.Proto.Name()] = proc
	}
	return reg
}

// Names returns the sorted registry keys.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup fetches a registered process by name.
func Lookup(name string) (Process, error) {
	p, ok := Registry()[name]
	if !ok {
		return Process{}, fmt.Errorf("processes: unknown process %q (known: %v)", name, Names())
	}
	return p, nil
}

// Initial returns the initial configuration a measurement of this
// process must start from, or nil when the default all-q0 configuration
// is correct. One-Way-Epidemic and Meet-Everybody need one node in the
// distinguished state a; every other Table 1 process starts uniform.
func (p Process) Initial(n int) (*core.Config, error) {
	switch p.Proto.Name() {
	case "One-Way-Epidemic", "Meet-Everybody":
		return InitialWithOneA(p.Proto, n)
	}
	return nil, nil
}
