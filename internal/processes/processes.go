// Package processes implements the seven fundamental probabilistic
// processes of Section 3.3 (Table 1), which recur in the running-time
// analyses of all network constructors, together with their analytic
// expected convergence times (Propositions 1–7) for empirical
// validation.
package processes

import (
	"errors"

	"repro/internal/core"
)

// Process pairs a protocol with its detector and the analytic expected
// convergence time under the uniform random scheduler.
type Process struct {
	Proto    *core.Protocol
	Detector core.Detector
	// Expected returns the exact or asymptotically tight analytic
	// expectation E[X] for population size n (the closed forms from
	// the propositions' proofs, not just the Θ-class).
	Expected func(n int) float64
	// Theta is the paper's Θ-class as a printable string.
	Theta string
	// Exponent is the leading polynomial exponent of the Θ-class (1
	// for n log n, 2 for n², etc.), used by scaling-fit tests.
	Exponent float64
}

// Shared two-state indices.
const (
	stA core.State = iota
	stB
)

const (
	meA core.State = iota
	meB
	meC
)

// OneWayEpidemic is the process (a,b) → (a,a) started from one a:
// Θ(n log n) to infect everyone (Proposition 1).
func OneWayEpidemic() Process {
	p := core.MustProtocol(
		"One-Way-Epidemic",
		[]string{"a", "b"},
		stB,
		nil,
		[]core.Rule{{A: stA, B: stB, Edge: false, OutA: stA, OutB: stA},
			{A: stA, B: stB, Edge: true, OutA: stA, OutB: stA, OutEdge: true}},
	)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable:  func(cfg *core.Config) bool { return cfg.Count(stB) == 0 },
		},
		Expected: func(n int) float64 {
			// E[X] = Σ_{i=1}^{n−1} n(n−1) / (2 i (n−i)).
			total := 0.0
			for i := 1; i <= n-1; i++ {
				total += float64(n) * float64(n-1) / (2 * float64(i) * float64(n-i))
			}
			return total
		},
		Theta:    "Θ(n log n)",
		Exponent: 1,
	}
}

// OneToOneElimination is (a,a) → (a,b) started from all a: Θ(n²) until
// a single a remains (Proposition 2).
func OneToOneElimination() Process {
	p := core.MustProtocol(
		"One-To-One-Elimination",
		[]string{"a", "b"},
		stA,
		nil,
		[]core.Rule{{A: stA, B: stA, Edge: false, OutA: stA, OutB: stB},
			{A: stA, B: stA, Edge: true, OutA: stA, OutB: stB, OutEdge: true}},
	)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable:  func(cfg *core.Config) bool { return cfg.Count(stA) <= 1 },
		},
		Expected: func(n int) float64 {
			// E[X] = n(n−1) Σ_{i=2}^{n} 1/(i(i−1)).
			total := 0.0
			for i := 2; i <= n; i++ {
				total += 1 / (float64(i) * float64(i-1))
			}
			return float64(n) * float64(n-1) * total
		},
		Theta:    "Θ(n²)",
		Exponent: 2,
	}
}

// MaximumMatching is (a,a,0) → (b,b,1) started from all a: Θ(n²) until
// ⌊n/2⌋ disjoint edges are active (Proposition 3).
func MaximumMatching() Process {
	p := core.MustProtocol(
		"Maximum-Matching",
		[]string{"a", "b"},
		stA,
		nil,
		[]core.Rule{{A: stA, B: stA, Edge: false, OutA: stB, OutB: stB, OutEdge: true}},
	)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable:  func(cfg *core.Config) bool { return cfg.Count(stA) <= 1 },
		},
		Expected: func(n int) float64 {
			// Epochs with i matched pairs succeed with probability
			// (n−2i)(n−2i−1)/(n(n−1)).
			total := 0.0
			for i := 0; i < n/2; i++ {
				r := float64(n - 2*i)
				total += float64(n) * float64(n-1) / (r * (r - 1))
			}
			return total
		},
		Theta:    "Θ(n²)",
		Exponent: 2,
	}
}

// OneToAllElimination is (a,a) → (b,a), (a,b) → (b,b) started from all
// a: Θ(n log n) until no a remains (Proposition 4).
func OneToAllElimination() Process {
	rules := []core.Rule{
		{A: stA, B: stA, Edge: false, OutA: stB, OutB: stA},
		{A: stA, B: stA, Edge: true, OutA: stB, OutB: stA, OutEdge: true},
		{A: stA, B: stB, Edge: false, OutA: stB, OutB: stB},
		{A: stA, B: stB, Edge: true, OutA: stB, OutB: stB, OutEdge: true},
	}
	p := core.MustProtocol("One-To-All-Elimination", []string{"a", "b"}, stA, nil, rules)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable:  func(cfg *core.Config) bool { return cfg.Count(stA) == 0 },
		},
		Expected: func(n int) float64 {
			// E[X] = n(n−1) Σ_{i=0}^{n−1} 1/(n(n−1) − i(i−1)), where i
			// counts the bs.
			total := 0.0
			m := float64(n) * float64(n-1)
			for i := 0; i <= n-1; i++ {
				total += m / (m - float64(i)*float64(i-1))
			}
			return total
		},
		Theta:    "Θ(n log n)",
		Exponent: 1,
	}
}

// MeetEverybody is (a,b) → (a,c) with a unique a: Θ(n² log n) until the
// a-node has met every other node (Proposition 5).
func MeetEverybody() Process {
	rules := []core.Rule{
		{A: meA, B: meB, Edge: false, OutA: meA, OutB: meC},
		{A: meA, B: meB, Edge: true, OutA: meA, OutB: meC, OutEdge: true},
	}
	p := core.MustProtocol("Meet-Everybody", []string{"a", "b", "c"}, meB, nil, rules)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable:  func(cfg *core.Config) bool { return cfg.Count(meB) == 0 },
		},
		Expected: func(n int) float64 {
			// The unique a interacts with a uniformly random partner
			// every n/2 steps on average; coupon collection over n−1
			// partners: E[X] = Σ_{k=1}^{n−1} n(n−1)/(2k).
			total := 0.0
			for k := 1; k <= n-1; k++ {
				total += float64(n) * float64(n-1) / (2 * float64(k))
			}
			return total
		},
		Theta:    "Θ(n² log n)",
		Exponent: 2,
	}
}

// NodeCover is (a,a) → (b,b), (a,b) → (b,b) started from all a:
// Θ(n log n) until every node has interacted at least once
// (Proposition 6).
func NodeCover() Process {
	rules := []core.Rule{
		{A: stA, B: stA, Edge: false, OutA: stB, OutB: stB},
		{A: stA, B: stA, Edge: true, OutA: stB, OutB: stB, OutEdge: true},
		{A: stA, B: stB, Edge: false, OutA: stB, OutB: stB},
		{A: stA, B: stB, Edge: true, OutA: stB, OutB: stB, OutEdge: true},
	}
	p := core.MustProtocol("Node-Cover", []string{"a", "b"}, stA, nil, rules)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable:  func(cfg *core.Config) bool { return cfg.Count(stA) == 0 },
		},
		Expected: func(n int) float64 {
			// Success probability with i nodes covered is
			// 1 − i(i−1)/(n(n−1)); summing expectations over the cover
			// trajectory is bounded between the paper's Ω and O forms;
			// we use the one-to-all form as the tight upper estimate.
			total := 0.0
			m := float64(n) * float64(n-1)
			for i := 0; i <= n-1; i++ {
				total += m / (m - float64(i)*float64(i-1))
			}
			return total
		},
		Theta:    "Θ(n log n)",
		Exponent: 1,
	}
}

// EdgeCover is (a,a,0) → (a,a,1): Θ(n² log n) until every edge of the
// complete interaction graph has been activated (Proposition 7).
func EdgeCover() Process {
	p := core.MustProtocol(
		"Edge-Cover",
		[]string{"a"},
		stA,
		nil,
		[]core.Rule{{A: stA, B: stA, Edge: false, OutA: stA, OutB: stA, OutEdge: true}},
	)
	return Process{
		Proto: p,
		Detector: core.Detector{
			Trigger: core.TriggerEffective,
			Stable: func(cfg *core.Config) bool {
				n := cfg.N()
				return cfg.ActiveEdges() == n*(n-1)/2
			},
		},
		Expected: func(n int) float64 {
			// Coupon collector over m = n(n−1)/2 coupons:
			// E[X] = m · H_m.
			m := n * (n - 1) / 2
			total := 0.0
			for i := 1; i <= m; i++ {
				total += float64(m) / float64(i)
			}
			return total
		},
		Theta:    "Θ(n² log n)",
		Exponent: 2,
	}
}

// All returns the seven Table 1 processes in the paper's order.
func All() []Process {
	return []Process{
		OneWayEpidemic(),
		OneToOneElimination(),
		MaximumMatching(),
		OneToAllElimination(),
		MeetEverybody(),
		NodeCover(),
		EdgeCover(),
	}
}

// InitialWithOneA builds the initial configuration for processes that
// start with a single distinguished node (one-way epidemic's a, meet
// everybody's a): node 0 in the distinguished state, the rest in the
// protocol's initial state.
func InitialWithOneA(p *core.Protocol, n int) (*core.Config, error) {
	a, ok := p.StateIndex("a")
	if !ok {
		return nil, errNoStateA
	}
	cfg := core.NewConfig(p, n)
	cfg.SetNode(0, a)
	return cfg, nil
}

var errNoStateA = errors.New(`processes: protocol has no state named "a"`)
