package geometric

import "testing"

func TestBuildSquare(t *testing.T) {
	t.Parallel()
	for _, s := range []int{2, 3, 4} {
		s := s
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := BuildRectangle(s, s, s*s+5, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("s=%d seed=%d: no convergence", s, seed)
			}
			if !IsRectangle(res.Positions, s, s) {
				t.Fatalf("s=%d seed=%d: positions %v do not tile the square", s, seed, res.Positions)
			}
			if res.Free != 5 {
				t.Fatalf("s=%d: %d free nodes, want 5", s, res.Free)
			}
		}
	}
}

func TestBuildRectangleShapes(t *testing.T) {
	t.Parallel()
	cases := []struct{ w, h int }{{4, 1}, {1, 4}, {5, 2}, {2, 5}}
	for _, tc := range cases {
		res, err := BuildRectangle(tc.w, tc.h, tc.w*tc.h+3, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || !IsRectangle(res.Positions, tc.w, tc.h) {
			t.Fatalf("%dx%d: %+v", tc.w, tc.h, res)
		}
	}
}

func TestBuildRectangleExactPopulation(t *testing.T) {
	t.Parallel()
	// No spare nodes: rival assemblies must dissolve to free up
	// material for the winner.
	res, err := BuildRectangle(3, 3, 9, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Free != 0 {
		t.Fatalf("exact population: %+v", res)
	}
}

func TestBuildRectangleValidation(t *testing.T) {
	t.Parallel()
	if _, err := BuildRectangle(1, 1, 5, 1, 0); err == nil {
		t.Fatal("1×1 accepted")
	}
	if _, err := BuildRectangle(0, 3, 5, 1, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := BuildRectangle(4, 4, 10, 1, 0); err == nil {
		t.Fatal("undersized population accepted")
	}
}

func TestBuildRectangleBudget(t *testing.T) {
	t.Parallel()
	res, err := BuildRectangle(3, 3, 12, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged within 5 steps (impossible: needs ≥ 8 attachments)")
	}
	if res.Steps != 5 {
		t.Fatalf("steps %d", res.Steps)
	}
}

func TestIsRectangle(t *testing.T) {
	t.Parallel()
	good := map[int]Cell{0: {0, 0}, 1: {1, 0}, 2: {0, 1}, 3: {1, 1}}
	if !IsRectangle(good, 2, 2) {
		t.Fatal("valid square rejected")
	}
	if IsRectangle(good, 4, 1) {
		t.Fatal("wrong shape accepted")
	}
	dup := map[int]Cell{0: {0, 0}, 1: {0, 0}, 2: {0, 1}, 3: {1, 1}}
	if IsRectangle(dup, 2, 2) {
		t.Fatal("duplicate cell accepted")
	}
	out := map[int]Cell{0: {0, 0}, 1: {5, 0}, 2: {0, 1}, 3: {1, 1}}
	if IsRectangle(out, 2, 2) {
		t.Fatal("out-of-bounds cell accepted")
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, err := BuildRectangle(3, 3, 14, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRectangle(3, 3, 14, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("same seed diverged: %d vs %d", a.Steps, b.Steps)
	}
}
