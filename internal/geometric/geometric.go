// Package geometric implements the model variation proposed in the
// paper's conclusions (Section 7): nodes carry ports at fixed
// positions of their body (North/South/East/West), active connections
// always form at unit distance along the port's axis, and protocols
// therefore assemble rigid geometric structures on the integer grid —
// squares and rectangles here — without any mobility control.
//
// The scheduler remains the uniform random pair scheduler of the base
// model. An interaction may bond two nodes port-to-port when both
// ports are free and the bond keeps the assembly's cells collision-
// free; bonded structures are rigid (no rotation, matching the
// fixed-port hardware the paper sketches).
package geometric

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Cell is a grid coordinate within an assembly's local frame.
type Cell struct {
	X, Y int
}

// nodeState is a node's role in the assembly process.
type nodeState int

const (
	free nodeState = iota
	placed
)

// World is the population state of the geometric variant: every node
// is either free or placed at a cell of its assembly. Assemblies grow
// row-first from an anchor at (0,0); rival anchors eliminate one
// another, dissolving the loser's assembly back into free nodes.
type World struct {
	width, height int
	n             int
	state         []nodeState
	cell          []Cell
	assembly      []int   // assembly id per node, −1 if free
	members       [][]int // nodes per assembly id (nil = dissolved)
	occupied      []map[Cell]int
	anchors       int
}

// Result reports a geometric construction run.
type Result struct {
	Converged bool
	Steps     int64
	// Positions maps each node of the winning assembly to its cell.
	Positions map[int]Cell
	// Free is the number of leftover free nodes.
	Free int
}

// BuildRectangle assembles a width×height rectangle out of n nodes
// under the uniform random scheduler. Requires n ≥ width·height ≥ 2.
func BuildRectangle(width, height, n int, seed uint64, maxSteps int64) (Result, error) {
	if width < 1 || height < 1 || width*height < 2 {
		return Result{}, errors.New("geometric: rectangle must contain at least two cells")
	}
	if n < width*height {
		return Result{}, fmt.Errorf("geometric: %d nodes cannot fill a %d×%d rectangle", n, width, height)
	}
	if maxSteps <= 0 {
		maxSteps = core.DefaultMaxSteps(n)
	}
	w := &World{
		width:    width,
		height:   height,
		n:        n,
		state:    make([]nodeState, n),
		cell:     make([]Cell, n),
		assembly: make([]int, n),
	}
	for i := range w.assembly {
		w.assembly[i] = -1
	}
	rng := core.NewRNG(seed)
	var steps int64
	for steps < maxSteps {
		steps++
		u, v := rng.Pair(n)
		w.interact(u, v, rng)
		if res, done := w.stable(steps); done {
			return res, nil
		}
	}
	return Result{Steps: maxSteps}, nil
}

// interact applies the geometric protocol to the pair {u, v}.
func (w *World) interact(u, v int, rng *core.RNG) {
	su, sv := w.state[u], w.state[v]
	switch {
	case su == free && sv == free:
		// Seed a new assembly: u anchors at (0,0), v bonds along the
		// growth axis (East, or North for single-column targets).
		if rng.Coin() {
			u, v = v, u
		}
		second := Cell{1, 0}
		if w.width == 1 {
			second = Cell{0, 1}
		}
		id := len(w.members)
		w.members = append(w.members, []int{u, v})
		w.occupied = append(w.occupied, map[Cell]int{
			{0, 0}: u,
			second: v,
		})
		w.place(u, id, Cell{0, 0})
		w.place(v, id, second)
		w.anchors++
	case su == placed && sv == free:
		w.tryAttach(u, v)
	case sv == placed && su == free:
		w.tryAttach(v, u)
	default:
		// Two placed nodes: anchors of distinct assemblies eliminate.
		au, av := w.assembly[u], w.assembly[v]
		if au == av {
			return
		}
		if w.cell[u] != (Cell{0, 0}) || w.cell[v] != (Cell{0, 0}) {
			return
		}
		loser := av
		if len(w.members[au]) < len(w.members[av]) ||
			(len(w.members[au]) == len(w.members[av]) && rng.Coin()) {
			loser = au
		}
		w.dissolve(loser)
	}
}

// tryAttach bonds a free node to the assembly of the placed node if
// the placed node has a growth port available: East while its row is
// short of the width, then North while its column is short of the
// height.
func (w *World) tryAttach(anchor, candidate int) {
	id := w.assembly[anchor]
	at := w.cell[anchor]
	occ := w.occupied[id]
	// Row growth: only along y = 0.
	if at.Y == 0 && at.X+1 < w.width {
		east := Cell{at.X + 1, 0}
		if _, taken := occ[east]; !taken {
			w.place(candidate, id, east)
			w.members[id] = append(w.members[id], candidate)
			occ[east] = candidate
			return
		}
	}
	// Column growth from any placed node.
	if at.Y+1 < w.height {
		north := Cell{at.X, at.Y + 1}
		if _, taken := occ[north]; !taken {
			w.place(candidate, id, north)
			w.members[id] = append(w.members[id], candidate)
			occ[north] = candidate
		}
	}
}

func (w *World) place(node, id int, at Cell) {
	w.state[node] = placed
	w.assembly[node] = id
	w.cell[node] = at
}

func (w *World) dissolve(id int) {
	for _, node := range w.members[id] {
		w.state[node] = free
		w.assembly[node] = -1
	}
	w.members[id] = nil
	w.occupied[id] = nil
	w.anchors--
}

// stable reports completion: a single assembly remains and it fills
// the rectangle.
func (w *World) stable(steps int64) (Result, bool) {
	if w.anchors != 1 {
		return Result{}, false
	}
	for id, members := range w.members {
		if members == nil {
			continue
		}
		if len(members) != w.width*w.height {
			return Result{}, false
		}
		positions := make(map[int]Cell, len(members))
		for _, node := range members {
			positions[node] = w.cell[node]
		}
		_ = id
		return Result{
			Converged: true,
			Steps:     steps,
			Positions: positions,
			Free:      w.n - len(members),
		}, true
	}
	return Result{}, false
}

// IsRectangle verifies that positions tile exactly a width×height
// rectangle anchored at (0,0).
func IsRectangle(positions map[int]Cell, width, height int) bool {
	if len(positions) != width*height {
		return false
	}
	seen := make(map[Cell]bool, len(positions))
	for _, c := range positions {
		if c.X < 0 || c.X >= width || c.Y < 0 || c.Y >= height || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}
